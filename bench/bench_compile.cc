/**
 * @file
 * Compiler pipeline benchmark: plan time, resource utilisation and
 * multi-chip splitting on two workloads —
 *
 *  - the paper's flagship 784-800-10 model, which must fill most of
 *    (but fit) one 16x16 chip's Table 2 budget as a single stage;
 *  - an oversized 784-800-800-800-10 chain whose resident cost
 *    overflows one chip, which the cost-aware driver must split into
 *    a multi-chip plan with explicit inter-chip cuts.
 *
 * Environment:
 *   SUSHI_JSON_OUT  output path (default BENCH_compile.json)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "compiler/driver.hh"
#include "snn/binarize.hh"
#include "snn/network.hh"

#include "bench_util.hh"

using namespace sushi;

namespace {

snn::BinaryLayer
randomLayer(int in_dim, int out_dim, std::uint64_t seed)
{
    Rng rng(seed);
    snn::BinaryLayer layer;
    layer.weights.resize(static_cast<std::size_t>(out_dim));
    layer.thresholds.resize(static_cast<std::size_t>(out_dim));
    for (int o = 0; o < out_dim; ++o) {
        auto &row = layer.weights[static_cast<std::size_t>(o)];
        row.resize(static_cast<std::size_t>(in_dim));
        for (int i = 0; i < in_dim; ++i)
            row[static_cast<std::size_t>(i)] =
                rng.chance(0.5) ? -1 : 1;
        layer.thresholds[static_cast<std::size_t>(o)] =
            static_cast<int>(rng.range(1, 32));
    }
    return layer;
}

struct PlanPoint
{
    std::string workload;
    double compile_ms = 0.0;
    int stages = 0;
    long cross_chip_wires = 0;
    double jj_utilisation = 0.0;
    double area_utilisation = 0.0;
    long plan_reloads = 0;
    long disabled_neurons = 0;
    /** Per-cut wiring (the NoC's traffic input), in plan order. */
    std::vector<compiler::InterChipCut> cuts;
    long cut_traffic_total = 0;
};

PlanPoint
measure(const std::string &workload, const snn::BinarySnn &net,
        const compiler::ChipConfig &chip)
{
    const auto t0 = std::chrono::steady_clock::now();
    compiler::MultiChipPlan plan =
        compiler::CompilerDriver(compiler::DriverOptions::costAware())
            .compilePlan(net, chip);
    const auto t1 = std::chrono::steady_clock::now();

    PlanPoint p;
    p.workload = workload;
    p.compile_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    p.stages = plan.numChips();
    p.cross_chip_wires = plan.crossChipWires();
    p.jj_utilisation = plan.maxJjUtilisation();
    p.area_utilisation = plan.maxAreaUtilisation();
    for (const auto &stage : plan.stages) {
        p.plan_reloads += stage->net.plan_reloads;
        p.disabled_neurons += stage->net.disabled_count;
    }
    p.cuts = plan.cuts;
    p.cut_traffic_total = plan.cutTrafficPerStep();
    std::printf("%-22s %8.1f ms  %d chip(s)  %5ld cut wires  "
                "%5.1f%% JJ  %5.1f%% area\n",
                workload.c_str(), p.compile_ms, p.stages,
                p.cross_chip_wires, 100.0 * p.jj_utilisation,
                100.0 * p.area_utilisation);
    return p;
}

} // namespace

int
main()
{
    compiler::ChipConfig chip;
    chip.n = 16;
    chip.sc_per_npe = 10;

    std::printf("=== Cost-aware compiler pipeline ===\n");
    std::printf("16x16 mesh, Table 2 default budget "
                "(%ld JJs, %.2f mm^2 per chip)\n",
                compiler::ChipBudget::tableDefaults(16, 10).jj_cap,
                compiler::ChipBudget::tableDefaults(16, 10)
                    .area_cap_mm2);

    // Flagship: the paper's 784-800-10 MNIST model.
    snn::SnnConfig cfg;
    cfg.t_steps = 5;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, 7);
    const auto flagship_net = snn::BinarySnn::fromFloat(mlp);
    const PlanPoint flagship =
        measure("784-800-10", flagship_net, chip);

    // Oversized: a 784-800-800-800-10 chain. Every layer fits one
    // chip alone, the whole model does not.
    const auto oversized_net = snn::BinarySnn::fromLayers(
        {randomLayer(784, 800, 11), randomLayer(800, 800, 12),
         randomLayer(800, 800, 13), randomLayer(800, 10, 14)},
        5);
    const PlanPoint oversized =
        measure("784-800-800-800-10", oversized_net, chip);

    const bool flagship_ok = flagship.stages == 1 &&
                             flagship.jj_utilisation > 0.90 &&
                             flagship.jj_utilisation <= 1.0;
    const bool oversized_ok = oversized.stages >= 2 &&
                              oversized.cross_chip_wires > 0 &&
                              oversized.jj_utilisation <= 1.0;
    std::printf("flagship fits one chip at >90%% utilisation: %s\n",
                flagship_ok ? "yes" : "NO");
    std::printf("oversized model splits across chips: %s\n",
                oversized_ok ? "yes" : "NO");

    JsonWriter w;
    w.field("mesh", chip.n);
    w.field("sc_per_npe", chip.sc_per_npe);
    w.field("jj_cap",
            static_cast<std::uint64_t>(
                compiler::ChipBudget::tableDefaults(16, 10).jj_cap));
    w.field("flagship_single_chip", flagship_ok);
    w.field("oversized_splits", oversized_ok);
    w.beginArray("plans");
    for (const PlanPoint &p : {flagship, oversized}) {
        w.beginObject();
        w.field("workload", p.workload);
        w.field("compile_ms", p.compile_ms);
        w.field("chips", p.stages);
        w.field("cross_chip_wires",
                static_cast<std::uint64_t>(p.cross_chip_wires));
        w.field("jj_utilisation", p.jj_utilisation);
        w.field("area_utilisation", p.area_utilisation);
        w.field("plan_reloads",
                static_cast<std::uint64_t>(p.plan_reloads));
        w.field("disabled_neurons",
                static_cast<std::uint64_t>(p.disabled_neurons));
        w.field("cut_traffic_total",
                static_cast<std::uint64_t>(p.cut_traffic_total));
        w.beginArray("cuts");
        for (const compiler::InterChipCut &c : p.cuts) {
            w.beginObject();
            w.field("boundary_layer", c.boundary_layer);
            w.field("wires", c.wires);
            w.field("est_pulses_per_step",
                    static_cast<std::uint64_t>(c.est_pulses_per_step));
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    const std::string json = w.finish();

    const char *env_path = std::getenv("SUSHI_JSON_OUT");
    const std::string path =
        env_path != nullptr && env_path[0] != '\0'
            ? env_path
            : "BENCH_compile.json";
    if (!JsonWriter::writeFile(path, json)) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    std::printf("JSON written to %s\n", path.c_str());

    return flagship_ok && oversized_ok ? 0 : 1;
}
