/**
 * @file
 * Binarized FC forward throughput: packed XNOR/popcount kernel vs
 * the element-wise scalar oracle on the paper's layer geometry
 * (784 -> 800, Sec. 6) across a serving batch.
 *
 * The batch-major packed kernel fetches each packed weight row once
 * and streams it over the whole batch, so the headline number is
 * synaptic ops/sec (batch * out_dim * in_dim per pass). Correctness
 * is asserted bit-exactly before any number is reported — packed
 * spikes must equal both the scalar-oracle spikes and an independent
 * int8 reference — so a fast but wrong kernel fails instead of
 * "winning". A dense float linearForward pass over the XNOR-Net
 * effective weights is timed alongside as context (the path the
 * binarization-aware trainer used before the packed kernels).
 *
 * Environment:
 *   SUSHI_JSON_OUT  output path (default BENCH_snn.json)
 *   SUSHI_FULL=1    more repetitions (slower, steadier numbers)
 *
 * Exit status is nonzero when any kernel disagrees or the packed
 * kernel's speedup over the scalar oracle regresses below the 10x
 * acceptance floor (single-threaded, so the floor is a property of
 * the kernel, not of the runner's core count).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "snn/packed.hh"
#include "snn/tensor.hh"

#include "bench_util.hh"

using namespace sushi;
using snn::packed::Backend;
using snn::packed::PackedActivations;
using snn::packed::PackedLayer;

namespace {

/** Paper Sec. 6 hidden layer: INPUT 28*28 -> FC(800). */
constexpr std::size_t kInDim = 784;
constexpr std::size_t kOutDim = 800;
constexpr std::size_t kBatch = 256;

/** The packed kernel must beat the scalar oracle by at least this
 *  factor on the workload above (enforced via exit status). */
constexpr double kSpeedupFloor = 10.0;

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main()
{
    const int reps = benchutil::envFlag("SUSHI_FULL") ? 30 : 8;
    const double synops = static_cast<double>(kInDim) *
                          static_cast<double>(kOutDim) *
                          static_cast<double>(kBatch);

    // Deterministic workload: random {-1,+1} weights, thresholds,
    // and a 30%-dense binary activation batch.
    Rng rng(20260809);
    std::vector<std::vector<std::int8_t>> weights(kOutDim);
    std::vector<int> thresholds(kOutDim);
    for (std::size_t o = 0; o < kOutDim; ++o) {
        weights[o].resize(kInDim);
        for (auto &w : weights[o])
            w = rng.chance(0.5) ? 1 : -1;
        thresholds[o] = static_cast<int>(rng.range(-30, 30));
    }
    const PackedLayer layer =
        PackedLayer::fromSigned(weights, thresholds);
    if (!layer.packable()) {
        std::fprintf(stderr, "workload failed to pack\n");
        return 1;
    }

    std::vector<std::vector<std::uint8_t>> act(kBatch);
    std::vector<const std::uint8_t *> rows(kBatch);
    for (std::size_t b = 0; b < kBatch; ++b) {
        act[b].resize(kInDim);
        for (auto &v : act[b])
            v = rng.chance(0.3) ? 1 : 0;
        rows[b] = act[b].data();
    }
    PackedActivations x;
    snn::packed::packRows(rows.data(), kBatch, kInDim, x);

    // Independent int8 reference, computed once.
    std::vector<std::uint8_t> want(kBatch * kOutDim);
    for (std::size_t b = 0; b < kBatch; ++b) {
        for (std::size_t o = 0; o < kOutDim; ++o) {
            int dot = 0;
            for (std::size_t i = 0; i < kInDim; ++i)
                if (act[b][i])
                    dot += weights[o][i];
            want[b * kOutDim + o] = dot >= thresholds[o] ? 1 : 0;
        }
    }

    std::printf("=== Binarized FC forward (%zu -> %zu, batch %zu) "
                "===\n",
                kInDim, kOutDim, kBatch);
    std::printf("%.3g synaptic ops/pass, best of %d repetitions\n",
                synops, reps);

    std::vector<std::uint8_t> spikes(kBatch * kOutDim);
    bool correct = true;

    auto timeKernel = [&](Backend backend, int threads) {
        double best = 1e300;
        for (int r = 0; r < reps; ++r) {
            std::memset(spikes.data(), 0, spikes.size());
            const auto t0 = std::chrono::steady_clock::now();
            snn::packed::spikeForward(layer, x, spikes.data(),
                                      backend, threads);
            const auto t1 = std::chrono::steady_clock::now();
            best = std::min(best, seconds(t0, t1));
            correct &= spikes == want;
        }
        return synops / best;
    };

    const double scalar_ops = timeKernel(Backend::Scalar, 1);
    const double packed_ops = timeKernel(Backend::Packed, 1);
    const double packed_mt_ops = timeKernel(Backend::Packed, 0);

    // Dense float context: the effective-weight linearForward pass
    // (bias + alpha * sign(w) accumulated in float).
    snn::Tensor eff(kOutDim, kInDim);
    std::vector<float> bias(kOutDim, 0.0f);
    for (std::size_t o = 0; o < kOutDim; ++o)
        for (std::size_t i = 0; i < kInDim; ++i)
            eff.at(o, i) = weights[o][i] > 0 ? 0.5f : -0.5f;
    snn::Tensor xf(kBatch, kInDim), hf(kBatch, kOutDim);
    for (std::size_t b = 0; b < kBatch; ++b)
        for (std::size_t i = 0; i < kInDim; ++i)
            xf.at(b, i) = act[b][i] ? 1.0f : 0.0f;
    double float_best = 1e300;
    double float_sink = 0.0;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        snn::linearForward(xf, eff, bias, hf);
        const auto t1 = std::chrono::steady_clock::now();
        float_best = std::min(float_best, seconds(t0, t1));
        float_sink += hf.at(0, 0);
    }
    const double float_ops = synops / float_best;

    const double speedup = packed_ops / scalar_ops;
    const double speedup_vs_float = packed_ops / float_ops;
    const unsigned hw = std::thread::hardware_concurrency();

    std::printf("scalar oracle : %10.3g synops/sec\n", scalar_ops);
    std::printf("dense float   : %10.3g synops/sec (sink %g)\n",
                float_ops, float_sink);
    std::printf("packed (1t)   : %10.3g synops/sec\n", packed_ops);
    std::printf("packed (pool) : %10.3g synops/sec (%u hw threads)\n",
                packed_mt_ops, hw);
    std::printf("spikes %s; packed vs scalar: %.1fx (floor %.0fx), "
                "vs dense float: %.1fx\n",
                correct ? "bit-exact" : "MISMATCH", speedup,
                kSpeedupFloor, speedup_vs_float);

    JsonWriter w;
    w.field("workload", "binarized_fc_forward");
    w.field("in_dim", static_cast<std::uint64_t>(kInDim));
    w.field("out_dim", static_cast<std::uint64_t>(kOutDim));
    w.field("batch", static_cast<std::uint64_t>(kBatch));
    w.field("reps", reps);
    w.field("synops_per_pass", synops);
    w.field("spikes_ok", correct);
    w.field("scalar_synops_per_sec", scalar_ops);
    w.field("float_synops_per_sec", float_ops);
    w.field("packed_synops_per_sec", packed_ops);
    w.field("packed_pool_synops_per_sec", packed_mt_ops);
    w.field("hardware_concurrency", static_cast<std::uint64_t>(hw));
    w.field("speedup_packed_vs_scalar", speedup);
    w.field("speedup_packed_vs_float", speedup_vs_float);
    w.field("speedup_floor", kSpeedupFloor);
    w.field("floor_enforced", true);
    const std::string json = w.finish();

    const char *env_path = std::getenv("SUSHI_JSON_OUT");
    const std::string path =
        env_path != nullptr && env_path[0] != '\0' ? env_path
                                                   : "BENCH_snn.json";
    if (!JsonWriter::writeFile(path, json)) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    std::printf("JSON written to %s\n", path.c_str());

    return correct && speedup >= kSpeedupFloor ? 0 : 1;
}
