/**
 * @file
 * NoC scaling study: the Fig. 13 scaling question asked at board
 * level — how does multi-chip pipeline throughput scale with link
 * bandwidth and mesh shape when the inter-chip cuts ride the
 * modelled NoC fabric instead of the ideal transport?
 *
 * A four-stage pipeline (one layer per chip, forced by a tight JJ
 * budget) is swept across
 *
 *  - link bandwidths (flits/cycle) from uncongested down to 1, and
 *  - mesh shapes (auto near-square, degenerate row, oversized mesh)
 *
 * and the run *enforces* the acceptance contract by exit code:
 *
 *  1. spike results over every NoC configuration are bit-identical
 *     to the ideal transport (the fabric never touches payloads);
 *  2. modelled throughput drops monotonically as bandwidth shrinks,
 *     and strictly once bandwidth falls below the heaviest cut's
 *     observed per-step link demand (serialization dominates);
 *  3. the transport's flit accounting is consistent with the
 *     compiler's own cut-traffic estimate.
 *
 * Environment:
 *   SUSHI_JSON_OUT  output path (default BENCH_noc.json)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "compiler/driver.hh"
#include "engine/inference_engine.hh"
#include "noc/transport.hh"
#include "snn/binarize.hh"
#include "snn/network.hh"

using namespace sushi;
using engine::CompiledModel;
using engine::EngineConfig;
using engine::EngineRun;
using engine::InferenceEngine;
using engine::Sample;

namespace {

snn::BinaryLayer
randomLayer(int in_dim, int out_dim, std::uint64_t seed)
{
    Rng rng(seed);
    snn::BinaryLayer layer;
    layer.weights.resize(static_cast<std::size_t>(out_dim));
    layer.thresholds.resize(static_cast<std::size_t>(out_dim));
    for (int o = 0; o < out_dim; ++o) {
        auto &row = layer.weights[static_cast<std::size_t>(o)];
        row.resize(static_cast<std::size_t>(in_dim));
        for (int i = 0; i < in_dim; ++i)
            row[static_cast<std::size_t>(i)] =
                rng.chance(0.5) ? -1 : 1;
        layer.thresholds[static_cast<std::size_t>(o)] =
            static_cast<int>(rng.range(1, 16));
    }
    return layer;
}

std::vector<Sample>
randomSamples(std::size_t n, std::size_t dim, int t_steps,
              std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Sample> samples(n);
    for (auto &s : samples) {
        for (int t = 0; t < t_steps; ++t) {
            std::vector<std::uint8_t> f(dim);
            for (auto &v : f)
                v = rng.chance(0.4) ? 1 : 0;
            s.push_back(std::move(f));
        }
    }
    return samples;
}

/** One layer per chip: cap = fabric + biggest layer (the
 *  test_multichip splitting idiom). */
compiler::DriverOptions
oneLayerPerChip(const snn::BinarySnn &net,
                const compiler::ChipConfig &chip)
{
    compiler::CostModel model(chip.n, chip.sc_per_npe);
    long biggest = 0;
    for (const auto &layer : net.layers())
        biggest =
            std::max(biggest, model.layerCost(layer).totalJjs());
    compiler::DriverOptions opts;
    opts.enforce_budget = true;
    opts.allow_multichip = true;
    opts.score_schedules = false;
    opts.budget.sc_per_npe = chip.sc_per_npe;
    opts.budget.jj_cap = model.fabricJjs() + biggest;
    opts.budget.area_cap_mm2 = 1e9;
    return opts;
}

struct SweepPoint
{
    int bandwidth = 0;
    int mesh_width = 0;
    int mesh_height = 0;
    double est_time_ps = 0.0;
    double throughput_fps = 0.0; ///< modelled frames per second
    std::uint64_t noc_latency_cycles = 0;
    std::uint64_t noc_flits = 0;
    std::uint64_t hol_stall_cycles = 0;
    std::uint64_t backpressure_stalls = 0;
    std::uint64_t max_step_link_flits = 0;
    double max_link_utilisation = 0.0;
    bool bit_identical = false;
};

bool
sameResults(const EngineRun &a, const EngineRun &b)
{
    if (a.samples.size() != b.samples.size())
        return false;
    for (std::size_t i = 0; i < a.samples.size(); ++i)
        if (a.samples[i].counts != b.samples[i].counts ||
            a.samples[i].prediction != b.samples[i].prediction)
            return false;
    return true;
}

SweepPoint
measure(const std::shared_ptr<const CompiledModel> &model,
        const std::vector<Sample> &samples, const EngineRun &ideal,
        int bandwidth, int mesh_w, int mesh_h)
{
    EngineConfig cfg;
    cfg.replicas = 1;
    cfg.noc.enabled = true;
    cfg.noc.link_bandwidth_flits = bandwidth;
    cfg.noc.mesh_width = mesh_w;
    cfg.noc.mesh_height = mesh_h;
    InferenceEngine eng(model, cfg);
    const EngineRun run = eng.run(samples);

    SweepPoint p;
    p.bandwidth = bandwidth;
    p.mesh_width = eng.nocTransport(0).placement().width;
    p.mesh_height = eng.nocTransport(0).placement().height;
    p.est_time_ps = run.merged.est_time_ps;
    p.throughput_fps = static_cast<double>(run.merged.frames) /
                       (run.merged.est_time_ps * 1e-12);
    p.noc_latency_cycles = run.merged.noc_latency_cycles;
    p.noc_flits = run.merged.noc_flits;
    p.hol_stall_cycles = run.merged.noc_hol_stall_cycles;
    p.backpressure_stalls = run.merged.noc_backpressure_stalls;
    p.max_step_link_flits = run.merged.noc_max_step_link_flits;
    p.max_link_utilisation = run.merged.noc_max_link_utilisation;
    p.bit_identical = sameResults(ideal, run);
    return p;
}

void
writePoint(JsonWriter &w, const SweepPoint &p)
{
    w.beginObject();
    w.field("bandwidth_flits", p.bandwidth);
    w.field("mesh_width", p.mesh_width);
    w.field("mesh_height", p.mesh_height);
    w.field("est_time_ps", p.est_time_ps);
    w.field("throughput_fps", p.throughput_fps);
    w.field("noc_latency_cycles", p.noc_latency_cycles);
    w.field("noc_flits", p.noc_flits);
    w.field("hol_stall_cycles", p.hol_stall_cycles);
    w.field("backpressure_stalls", p.backpressure_stalls);
    w.field("max_step_link_flits", p.max_step_link_flits);
    w.field("max_link_utilisation", p.max_link_utilisation);
    w.field("bit_identical", p.bit_identical);
    w.endObject();
}

} // namespace

int
main()
{
    compiler::ChipConfig chip;
    chip.n = 8;
    chip.sc_per_npe = 10;

    // Four dense layers, one chip stage each: three inter-chip cuts
    // of 96 wires — worst-case spike packets of 49 flits under the
    // default 64b-flit / 32b-entry format.
    const auto net = snn::BinarySnn::fromLayers(
        {randomLayer(64, 96, 21), randomLayer(96, 96, 22),
         randomLayer(96, 96, 23), randomLayer(96, 12, 24)},
        4);
    auto model =
        CompiledModel::compile(net, chip, oneLayerPerChip(net, chip));
    std::printf("=== NoC scaling (Fig. 13 at board level) ===\n");
    std::printf("pipeline: %d chip stages, %ld cut wires, "
                "%ld worst-case pulses/step\n",
                model->stageCount(), model->plan()->crossChipWires(),
                model->plan()->cutTrafficPerStep());

    const auto samples = randomSamples(6, 64, 4, 97);
    EngineConfig ideal_cfg;
    ideal_cfg.replicas = 1;
    const EngineRun ideal =
        InferenceEngine(model, ideal_cfg).run(samples);

    // --- Bandwidth sweep on the auto-sized mesh ------------------
    const std::vector<int> bandwidths = {64, 32, 16, 8, 4, 2, 1};
    std::vector<SweepPoint> bw_sweep;
    std::printf("\n%8s %10s %14s %12s %8s %8s\n", "bw", "lat cyc",
                "throughput/s", "flits", "HOL", "ident");
    for (const int bw : bandwidths) {
        bw_sweep.push_back(measure(model, samples, ideal, bw, 0, 0));
        const SweepPoint &p = bw_sweep.back();
        std::printf("%8d %10llu %14.3e %12llu %8llu %8s\n",
                    p.bandwidth,
                    static_cast<unsigned long long>(
                        p.noc_latency_cycles),
                    p.throughput_fps,
                    static_cast<unsigned long long>(p.noc_flits),
                    static_cast<unsigned long long>(
                        p.hol_stall_cycles),
                    p.bit_identical ? "yes" : "NO");
    }

    // The per-step link demand is a pure function of the packet
    // schedule, not of bandwidth — every sweep point observes it
    // identically.
    const std::uint64_t demand = bw_sweep.front().max_step_link_flits;
    std::printf("\nheaviest per-step link demand: %llu flits\n",
                static_cast<unsigned long long>(demand));

    bool identical = true;
    for (const SweepPoint &p : bw_sweep)
        identical = identical && p.bit_identical;

    // Monotone throughput drop as bandwidth shrinks; strict once the
    // *upper* bandwidth of the pair already sits below the demand
    // (then halving it must lengthen serialization on the critical
    // path).
    bool monotone = true;
    bool strict_below_demand = true;
    for (std::size_t i = 1; i < bw_sweep.size(); ++i) {
        const SweepPoint &hi = bw_sweep[i - 1];
        const SweepPoint &lo = bw_sweep[i];
        if (lo.throughput_fps > hi.throughput_fps)
            monotone = false;
        if (static_cast<std::uint64_t>(hi.bandwidth) < demand &&
            !(lo.throughput_fps < hi.throughput_fps))
            strict_below_demand = false;
        if (lo.max_step_link_flits != demand)
            monotone = false; // demand must be bandwidth-invariant
    }

    // Flit accounting vs the compiler's traffic estimate: observed
    // cut flits can never exceed worst-case serialization of the
    // plan's own pulses-per-step figure.
    EngineConfig probe_cfg = ideal_cfg;
    probe_cfg.noc.enabled = true;
    InferenceEngine probe(model, probe_cfg);
    const EngineRun probe_run = probe.run(samples);
    const noc::PacketFormat fmt = probe_cfg.noc.packetFormat();
    std::uint64_t cut_flit_cap = 0;
    for (const auto &cut : model->plan()->cuts)
        cut_flit_cap += fmt.worstCaseFlits(cut.wires);
    cut_flit_cap *= probe_run.merged.time_steps;
    std::uint64_t cut_flits_seen = 0;
    for (const std::uint64_t f : probe_run.merged.noc_cut_flits)
        cut_flits_seen += f;
    const bool accounting_ok =
        cut_flits_seen > 0 && cut_flits_seen <= cut_flit_cap;

    // --- Mesh-shape sweep at a mid bandwidth ---------------------
    std::vector<SweepPoint> mesh_sweep;
    const int stages = model->stageCount();
    for (const auto &dims :
         std::vector<std::pair<int, int>>{{0, 0}, {1, stages},
                                          {stages, stages}}) {
        mesh_sweep.push_back(measure(model, samples, ideal, 8,
                                     dims.first, dims.second));
        const SweepPoint &p = mesh_sweep.back();
        std::printf("mesh %dx%d @ bw 8: %llu cycles, util %.3f, "
                    "identical %s\n",
                    p.mesh_width, p.mesh_height,
                    static_cast<unsigned long long>(
                        p.noc_latency_cycles),
                    p.max_link_utilisation,
                    p.bit_identical ? "yes" : "NO");
        identical = identical && p.bit_identical;
    }

    std::printf("\nbit-identical to ideal transport: %s\n",
                identical ? "yes" : "NO");
    std::printf("throughput monotone in bandwidth: %s\n",
                monotone ? "yes" : "NO");
    std::printf("strict drop below link demand: %s\n",
                strict_below_demand ? "yes" : "NO");
    std::printf("cut-flit accounting within plan estimate: %s\n",
                accounting_ok ? "yes" : "NO");

    JsonWriter w;
    w.field("stages", stages);
    w.field("cut_traffic_per_step",
            static_cast<std::uint64_t>(
                model->plan()->cutTrafficPerStep()));
    w.field("max_step_link_demand_flits", demand);
    w.field("ideal_est_time_ps", ideal.merged.est_time_ps);
    w.field("bit_identical", identical);
    w.field("throughput_monotone", monotone);
    w.field("strict_drop_below_demand", strict_below_demand);
    w.field("cut_flit_accounting_ok", accounting_ok);
    w.beginArray("bandwidth_sweep");
    for (const SweepPoint &p : bw_sweep)
        writePoint(w, p);
    w.endArray();
    w.beginArray("mesh_sweep");
    for (const SweepPoint &p : mesh_sweep)
        writePoint(w, p);
    w.endArray();
    const std::string json = w.finish();

    const char *env_path = std::getenv("SUSHI_JSON_OUT");
    const std::string path =
        env_path != nullptr && env_path[0] != '\0'
            ? env_path
            : "BENCH_noc.json";
    if (!JsonWriter::writeFile(path, json)) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    std::printf("JSON written to %s\n", path.c_str());

    return identical && monotone && strict_below_demand &&
                   accounting_ok
               ? 0
               : 1;
}
