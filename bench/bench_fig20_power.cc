/**
 * @file
 * Reproduces paper Fig. 20: power of SUSHI as the number of NPEs
 * grows, with a linear reference line through the first point.
 */

#include <cstdio>

#include "perf/power_model.hh"

using namespace sushi::perf;

int
main()
{
    auto sweep = scalingSweep();
    std::printf("=== Fig. 20: power of SUSHI vs number of NPEs "
                "===\n");
    std::printf("%5s %9s %10s %10s %10s %10s\n", "NPEs", "net",
                "power mW", "static", "dynamic", "linear*");
    const double per_npe = sweep[0].power_mw / sweep[0].npes;
    for (const auto &p : sweep) {
        std::printf("%5d %6dx%-2d %10.2f %10.2f %10.4f %10.2f\n",
                    p.npes, p.n, p.n, p.power_mw,
                    staticPowerMw(p.total_jjs),
                    dynamicPowerMw(p.gsops), per_npe * p.npes);
    }
    std::printf("(*linear reference through the 2-NPE point)\n");
    std::printf("paper anchor: 41.87 mW at 32 NPEs; measured "
                "%.2f mW\n",
                sweep.back().power_mw);
    return 0;
}
