/**
 * @file
 * Event-kernel throughput on the gate-level NPE workload.
 *
 * Measures events/sec of the compiled simulation core on the same
 * workload the fault campaign uses — 20k input pulses through a
 * 10-SC gate-level NPE counter — plus a queue-only microbench of the
 * calendar event queue. Correctness is asserted pulse-exactly against
 * the behavioural counter before any number is reported, so a fast
 * but wrong kernel fails instead of "winning".
 *
 * Environment:
 *   SUSHI_JSON_OUT  output path (default BENCH_sim.json)
 *   SUSHI_FULL=1    more repetitions (slower, steadier numbers)
 *
 * Exit status is nonzero when the workload result is wrong or the
 * measured throughput regresses below the 2x speedup floor over the
 * pre-compiled-core kernel.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hh"
#include "npe/npe.hh"
#include "sfq/constraints.hh"
#include "sfq/event_queue.hh"
#include "sfq/netlist.hh"
#include "sfq/parallel_simulator.hh"
#include "sfq/simulator.hh"

#include "bench_util.hh"

using namespace sushi;

namespace {

/**
 * Seed-kernel baseline on this workload: the virtual-dispatch
 * simulator (std::function events in a std::priority_queue, commit
 * 307b40c) executes the same 339,747-event NPE run at ~7.46e6
 * events/sec on the reference container (-O2). The speedup below is
 * relative to this constant so the 2x acceptance floor of the
 * compiled-core refactor stays visible run over run.
 */
constexpr double kSeedEventsPerSec = 7.46e6;

/** Pulses injected into the gate-level counter per repetition. */
constexpr int kPulses = 20000;
constexpr int kNumSc = 10;

struct RunResult
{
    double seconds = 0.0;
    std::uint64_t events = 0;
    std::uint64_t checksum = 0;
};

/** One full fresh-simulator repetition of the NPE workload. */
RunResult
runNpeWorkload()
{
    const auto t0 = std::chrono::steady_clock::now();
    sfq::Simulator sim;
    sim.setViolationPolicy(sfq::ViolationPolicy::Ignore);
    sfq::Netlist net(sim);
    npe::NpeGate gate(net, "npe", kNumSc);
    const Tick gap = sfq::safePulseSpacing();
    gate.injectSet1(gap);
    for (int i = 0; i < kPulses; ++i)
        gate.injectIn((i + 2) * gap);
    sim.run();
    const auto t1 = std::chrono::steady_clock::now();

    RunResult r;
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    r.events = sim.eventsExecuted();
    r.checksum = gate.value() + gate.outSink().count();
    return r;
}

/** Independent NPE counters in one netlist for the thread sweep:
 *  enough decoupled work that the partitioner gives every lane its
 *  own gates and the windows never exchange pulses — the scaling
 *  ceiling of the conservative-sync design. */
constexpr int kFleetGates = 8;

struct SweepResult
{
    double seconds = 0.0;
    std::uint64_t events = 0;
    bool checksum_ok = false;
    bool parallel = false;
};

/** One fresh repetition of the fleet workload on @p threads lanes.
 *  Every gate receives the identical pulse stream, so each must
 *  reproduce @p want_checksum exactly. */
SweepResult
runFleetWorkload(int threads, std::uint64_t want_checksum)
{
    const auto t0 = std::chrono::steady_clock::now();
    sfq::Simulator sim;
    sim.setViolationPolicy(sfq::ViolationPolicy::Ignore);
    sfq::Netlist net(sim);
    std::vector<std::unique_ptr<npe::NpeGate>> gates;
    for (int g = 0; g < kFleetGates; ++g)
        gates.push_back(std::make_unique<npe::NpeGate>(
            net, "npe" + std::to_string(g), kNumSc));
    const Tick gap = sfq::safePulseSpacing();
    for (auto &gate : gates) {
        gate->injectSet1(gap);
        for (int i = 0; i < kPulses; ++i)
            gate->injectIn((i + 2) * gap);
    }

    SweepResult r;
    if (threads <= 1) {
        sim.run();
    } else {
        sfq::ParallelSimulator::Options opts;
        opts.threads = threads;
        sfq::ParallelSimulator psim(sim, opts);
        psim.run();
        r.parallel = psim.lastRunParallel();
    }
    const auto t1 = std::chrono::steady_clock::now();

    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    r.events = sim.eventsExecuted();
    r.checksum_ok = true;
    for (auto &gate : gates)
        r.checksum_ok &=
            gate->value() + gate->outSink().count() == want_checksum;
    return r;
}

/** Queue-only microbench: push/pop POD events, no cell execution. */
double
queueEventsPerSec(int rounds)
{
    sfq::EventQueue q;
    std::uint64_t ops = 0;
    const auto t0 = std::chrono::steady_clock::now();
    sfq::EventQueue::Event ev{};
    for (int r = 0; r < rounds; ++r) {
        for (int i = 0; i < 10000; ++i)
            q.push((i * 7) % 997 + r, i, 0);
        while (q.popNext(kTickNever, ev))
            ++ops;
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(ops) / (s > 0 ? s : 1e-9);
}

} // namespace

int
main()
{
    const int reps = benchutil::envFlag("SUSHI_FULL") ? 15 : 5;

    // Pulse-exact reference: the behavioural counter on the same
    // pulse stream.
    npe::Npe ideal(kNumSc);
    ideal.setPolarity(npe::Polarity::Excitatory);
    const std::uint64_t ideal_spikes =
        ideal.addPulses(static_cast<std::uint64_t>(kPulses));
    const std::uint64_t want_checksum =
        ideal.value() + ideal_spikes;

    std::printf("=== Event-kernel throughput (gate-level NPE) ===\n");
    std::printf("%d pulses, %d SCs, best of %d repetitions\n",
                kPulses, kNumSc, reps);

    RunResult best{};
    bool checksum_ok = true;
    for (int r = 0; r < reps; ++r) {
        const RunResult run = runNpeWorkload();
        checksum_ok &= run.checksum == want_checksum;
        if (best.events == 0 || run.seconds < best.seconds)
            best = run;
        std::printf("  rep %d: %9.0f events/sec (%llu events)\n",
                    r,
                    static_cast<double>(run.events) / run.seconds,
                    static_cast<unsigned long long>(run.events));
    }

    const double eps =
        static_cast<double>(best.events) / best.seconds;
    const double speedup = eps / kSeedEventsPerSec;
    const double queue_eps = queueEventsPerSec(reps * 20);

    std::printf("workload checksum: %llu (want %llu) %s\n",
                static_cast<unsigned long long>(best.checksum),
                static_cast<unsigned long long>(want_checksum),
                checksum_ok ? "ok" : "MISMATCH");
    std::printf("best: %.3g events/sec, %.2fx over seed kernel "
                "(%.3g ev/s)\n",
                eps, speedup, kSeedEventsPerSec);
    std::printf("queue-only: %.3g events/sec\n", queue_eps);

    // Thread sweep on the partitioned simulator: 8 independent NPE
    // counters in one netlist. The 2x floor at 8 threads is only
    // meaningful with real cores underneath; single-core runners
    // still check correctness at every thread count.
    const unsigned hw = std::thread::hardware_concurrency();
    const bool enforce_floor = hw >= 4;
    const int sweep_reps = benchutil::envFlag("SUSHI_FULL") ? 5 : 3;
    std::printf("=== Partitioned thread sweep (%d NPE gates, "
                "%u hw threads) ===\n",
                kFleetGates, hw);
    struct SweepPoint
    {
        int threads;
        double eps;
        bool checksum_ok;
        bool parallel;
        std::uint64_t events;
    };
    std::vector<SweepPoint> sweep;
    bool sweep_checksums_ok = true;
    for (int threads : {1, 2, 4, 8}) {
        SweepResult sbest{};
        bool ok = true;
        for (int r = 0; r < sweep_reps; ++r) {
            const SweepResult run =
                runFleetWorkload(threads, want_checksum);
            ok &= run.checksum_ok;
            if (sbest.events == 0 || run.seconds < sbest.seconds)
                sbest = run;
        }
        const double teps =
            static_cast<double>(sbest.events) / sbest.seconds;
        sweep.push_back(
            {threads, teps, ok, sbest.parallel, sbest.events});
        sweep_checksums_ok &= ok;
        std::printf("  %d threads: %9.3g events/sec%s %s\n", threads,
                    teps, sbest.parallel ? " (parallel)" : "",
                    ok ? "" : "CHECKSUM MISMATCH");
    }
    const double sweep_scaling =
        sweep.back().eps / sweep.front().eps;
    const bool sweep_ok =
        sweep_checksums_ok &&
        (!enforce_floor || sweep_scaling >= 2.0);
    std::printf("8-thread scaling: %.2fx over 1 thread (floor %s)\n",
                sweep_scaling,
                enforce_floor ? "enforced: >= 2.0x" : "advisory");

    JsonWriter w;
    w.field("workload", "npe_gate_counter");
    w.field("pulses", kPulses);
    w.field("num_sc", kNumSc);
    w.field("reps", reps);
    w.field("events_per_run", best.events);
    w.field("checksum", best.checksum);
    w.field("checksum_ok", checksum_ok);
    w.field("events_per_sec", eps);
    w.field("seed_events_per_sec", kSeedEventsPerSec);
    w.field("speedup_vs_seed", speedup);
    w.field("queue_events_per_sec", queue_eps);
    w.field("sweep_gates", kFleetGates);
    w.field("sweep_reps", sweep_reps);
    w.field("hardware_concurrency", static_cast<std::uint64_t>(hw));
    w.field("sweep_floor_enforced", enforce_floor);
    w.field("sweep_scaling_8t", sweep_scaling);
    w.beginArray("sweep");
    for (const SweepPoint &p : sweep) {
        w.beginObject();
        w.field("threads", p.threads);
        w.field("events_per_sec", p.eps);
        w.field("events_per_run", p.events);
        w.field("checksum_ok", p.checksum_ok);
        w.field("ran_parallel", p.parallel);
        w.endObject();
    }
    w.endArray();
    const std::string json = w.finish();

    const char *env_path = std::getenv("SUSHI_JSON_OUT");
    const std::string path =
        env_path != nullptr && env_path[0] != '\0'
            ? env_path
            : "BENCH_sim.json";
    if (!JsonWriter::writeFile(path, json)) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    std::printf("JSON written to %s\n", path.c_str());

    return checksum_ok && speedup >= 2.0 && sweep_ok ? 0 : 1;
}
