/**
 * @file
 * Engineering microbenchmarks (google-benchmark) of the simulator
 * substrate: event-kernel throughput, cell-level pulse processing,
 * state-controller and NPE operations. Not a paper figure — these
 * guard the performance of the infrastructure everything else runs
 * on.
 */

#include <benchmark/benchmark.h>

#include "npe/npe.hh"
#include "sfq/cells.hh"
#include "sfq/constraints.hh"
#include "sfq/netlist.hh"
#include "sfq/simulator.hh"

using namespace sushi;
using namespace sushi::sfq;

namespace {

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue q;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            q.schedule(i * 7 % 997, [&sink] { ++sink; });
        while (!q.empty())
            q.runOne();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

void
BM_JtlChainPulse(benchmark::State &state)
{
    const int stages = static_cast<int>(state.range(0));
    for (auto _ : state) {
        Simulator sim;
        sim.setViolationPolicy(ViolationPolicy::Ignore);
        Netlist net(sim);
        Jtl &head = net.makeJtl("head");
        PulseSink &sink = net.makeSink("sink");
        net.makeJtlChain("chain", head, 0, sink, 0, stages);
        head.inject(0, 0);
        sim.run();
        benchmark::DoNotOptimize(sink.count());
    }
    state.SetItemsProcessed(state.iterations() * stages);
}
BENCHMARK(BM_JtlChainPulse)->Arg(16)->Arg(256);

void
BM_StateControllerGate(benchmark::State &state)
{
    for (auto _ : state) {
        Simulator sim;
        sim.setViolationPolicy(ViolationPolicy::Ignore);
        Netlist net(sim);
        npe::ScGate sc(net, "sc");
        PulseSink &out = net.makeSink("out");
        sc.connectOut(out, 0);
        const Tick gap = safePulseSpacing();
        sc.injectSet1(gap);
        for (int i = 0; i < 32; ++i)
            sc.injectIn((i + 2) * gap);
        sim.run();
        benchmark::DoNotOptimize(out.count());
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_StateControllerGate);

void
BM_NpeBehaviouralPulse(benchmark::State &state)
{
    npe::Npe npe(10);
    std::uint64_t spikes = 0;
    for (auto _ : state)
        spikes += npe.in() ? 1 : 0;
    benchmark::DoNotOptimize(spikes);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NpeBehaviouralPulse);

void
BM_NpeBatchedPulses(benchmark::State &state)
{
    npe::Npe npe(10);
    std::uint64_t spikes = 0;
    for (auto _ : state)
        spikes += npe.addPulses(1000);
    benchmark::DoNotOptimize(spikes);
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_NpeBatchedPulses);

} // namespace

BENCHMARK_MAIN();
