/**
 * @file
 * Event-kernel throughput on the gate-level NPE workload.
 *
 * Measures events/sec of the compiled simulation core on the same
 * workload the fault campaign uses — 20k input pulses through a
 * 10-SC gate-level NPE counter — plus a queue-only microbench of the
 * calendar event queue. Correctness is asserted pulse-exactly against
 * the behavioural counter before any number is reported, so a fast
 * but wrong kernel fails instead of "winning".
 *
 * Environment:
 *   SUSHI_JSON_OUT  output path (default BENCH_sim.json)
 *   SUSHI_FULL=1    more repetitions (slower, steadier numbers)
 *
 * Exit status is nonzero when the workload result is wrong or the
 * measured throughput regresses below the 2x speedup floor over the
 * pre-compiled-core kernel.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stats.hh"
#include "npe/npe.hh"
#include "sfq/constraints.hh"
#include "sfq/event_queue.hh"
#include "sfq/netlist.hh"
#include "sfq/simulator.hh"

#include "bench_util.hh"

using namespace sushi;

namespace {

/**
 * Seed-kernel baseline on this workload: the virtual-dispatch
 * simulator (std::function events in a std::priority_queue, commit
 * 307b40c) executes the same 339,747-event NPE run at ~7.46e6
 * events/sec on the reference container (-O2). The speedup below is
 * relative to this constant so the 2x acceptance floor of the
 * compiled-core refactor stays visible run over run.
 */
constexpr double kSeedEventsPerSec = 7.46e6;

/** Pulses injected into the gate-level counter per repetition. */
constexpr int kPulses = 20000;
constexpr int kNumSc = 10;

struct RunResult
{
    double seconds = 0.0;
    std::uint64_t events = 0;
    std::uint64_t checksum = 0;
};

/** One full fresh-simulator repetition of the NPE workload. */
RunResult
runNpeWorkload()
{
    const auto t0 = std::chrono::steady_clock::now();
    sfq::Simulator sim;
    sim.setViolationPolicy(sfq::ViolationPolicy::Ignore);
    sfq::Netlist net(sim);
    npe::NpeGate gate(net, "npe", kNumSc);
    const Tick gap = sfq::safePulseSpacing();
    gate.injectSet1(gap);
    for (int i = 0; i < kPulses; ++i)
        gate.injectIn((i + 2) * gap);
    sim.run();
    const auto t1 = std::chrono::steady_clock::now();

    RunResult r;
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    r.events = sim.eventsExecuted();
    r.checksum = gate.value() + gate.outSink().count();
    return r;
}

/** Queue-only microbench: push/pop POD events, no cell execution. */
double
queueEventsPerSec(int rounds)
{
    sfq::EventQueue q;
    std::uint64_t ops = 0;
    const auto t0 = std::chrono::steady_clock::now();
    sfq::EventQueue::Event ev{};
    for (int r = 0; r < rounds; ++r) {
        for (int i = 0; i < 10000; ++i)
            q.push((i * 7) % 997 + r, i, 0);
        while (q.popNext(kTickNever, ev))
            ++ops;
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(ops) / (s > 0 ? s : 1e-9);
}

} // namespace

int
main()
{
    const int reps = benchutil::envFlag("SUSHI_FULL") ? 15 : 5;

    // Pulse-exact reference: the behavioural counter on the same
    // pulse stream.
    npe::Npe ideal(kNumSc);
    ideal.setPolarity(npe::Polarity::Excitatory);
    const std::uint64_t ideal_spikes =
        ideal.addPulses(static_cast<std::uint64_t>(kPulses));
    const std::uint64_t want_checksum =
        ideal.value() + ideal_spikes;

    std::printf("=== Event-kernel throughput (gate-level NPE) ===\n");
    std::printf("%d pulses, %d SCs, best of %d repetitions\n",
                kPulses, kNumSc, reps);

    RunResult best{};
    bool checksum_ok = true;
    for (int r = 0; r < reps; ++r) {
        const RunResult run = runNpeWorkload();
        checksum_ok &= run.checksum == want_checksum;
        if (best.events == 0 || run.seconds < best.seconds)
            best = run;
        std::printf("  rep %d: %9.0f events/sec (%llu events)\n",
                    r,
                    static_cast<double>(run.events) / run.seconds,
                    static_cast<unsigned long long>(run.events));
    }

    const double eps =
        static_cast<double>(best.events) / best.seconds;
    const double speedup = eps / kSeedEventsPerSec;
    const double queue_eps = queueEventsPerSec(reps * 20);

    std::printf("workload checksum: %llu (want %llu) %s\n",
                static_cast<unsigned long long>(best.checksum),
                static_cast<unsigned long long>(want_checksum),
                checksum_ok ? "ok" : "MISMATCH");
    std::printf("best: %.3g events/sec, %.2fx over seed kernel "
                "(%.3g ev/s)\n",
                eps, speedup, kSeedEventsPerSec);
    std::printf("queue-only: %.3g events/sec\n", queue_eps);

    JsonWriter w;
    w.field("workload", "npe_gate_counter");
    w.field("pulses", kPulses);
    w.field("num_sc", kNumSc);
    w.field("reps", reps);
    w.field("events_per_run", best.events);
    w.field("checksum", best.checksum);
    w.field("checksum_ok", checksum_ok);
    w.field("events_per_sec", eps);
    w.field("seed_events_per_sec", kSeedEventsPerSec);
    w.field("speedup_vs_seed", speedup);
    w.field("queue_events_per_sec", queue_eps);
    const std::string json = w.finish();

    const char *env_path = std::getenv("SUSHI_JSON_OUT");
    const std::string path =
        env_path != nullptr && env_path[0] != '\0'
            ? env_path
            : "BENCH_sim.json";
    if (!JsonWriter::writeFile(path, json)) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    std::printf("JSON written to %s\n", path.c_str());

    return checksum_ok && speedup >= 2.0 ? 0 : 1;
}
