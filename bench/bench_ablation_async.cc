/**
 * @file
 * Ablation of SUSHI's asynchronous design choice (paper Sec. 3A /
 * Sec. 4.1): a synchronous re-implementation of the same logic needs
 * a clock tree, per-cell clock lines, and skew-balancing JTL padding
 * — "about 80 % of the total design" goes to wiring. This bench
 * constructs the synchronous counterpart of each mesh scale and
 * compares it with SUSHI's asynchronous design.
 */

#include <cstdio>

#include "fabric/resource_model.hh"
#include "fabric/sync_baseline.hh"

using namespace sushi::fabric;

int
main()
{
    std::printf("=== Ablation: asynchronous vs synchronous timing "
                "(Sec. 3A) ===\n");
    std::printf("%7s | %9s %8s | %9s %8s %9s | %7s\n", "mesh",
                "async JJ", "wiring%", "sync JJ", "wiring%",
                "clock JJ", "saved");
    for (int n : {1, 2, 4, 8, 16}) {
        const DesignPoint a = designPoint(n);
        const SyncDesign s = synchronousMesh(n);
        const long clock = s.clock_tree_jjs + s.clock_line_jjs +
                           s.balancing_jjs;
        std::printf("%4dx%-2d | %9ld %7.1f%% | %9ld %7.1f%% %9ld | "
                    "%6.1f%%\n",
                    n, n, a.total_jjs, 100.0 * a.wiring_fraction,
                    s.totalJjs(), 100.0 * s.wiringFraction(), clock,
                    100.0 *
                        static_cast<double>(s.totalJjs() -
                                            a.total_jjs) /
                        static_cast<double>(s.totalJjs()));
    }
    std::printf("paper: synchronous RSFQ structures typically spend "
                "~80%% of resources on wiring;\n"
                "SUSHI's asynchronous design reduced that to 68%% "
                "at the 4x4 scale (Table 2)\n");
    return 0;
}
