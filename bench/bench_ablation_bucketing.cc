/**
 * @file
 * Ablation of the synapse bucketing algorithm (paper Sec. 5.1 /
 * Sec. 4.2.2 claims):
 *   - bucketing controls the neuron state range (~500 states suffice
 *     with it; the unbucketed inhibitory-first traversal needs far
 *     more);
 *   - its accuracy impact is small (<1 % in the paper);
 *   - weight reloading accounts for ~20 % of inference time on
 *     average under the optimized schedule.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "chip/sushi_chip.hh"
#include "compiler/driver.hh"
#include "data/synth_digits.hh"
#include "fabric/timing_model.hh"
#include "snn/train.hh"

using namespace sushi;

namespace {

double
chipAccuracy(const snn::BinarySnn &bin,
             const compiler::ChipConfig &cfg,
             const data::Dataset &test, chip::InferenceStats *stats)
{
    auto compiled =
        compiler::CompilerDriver(compiler::DriverOptions::legacy())
            .compileSingle(bin, cfg);
    chip::SushiChip sushi_chip(cfg);
    snn::PoissonEncoder enc(99);
    std::size_t hits = 0;
    const std::size_t n = test.size();
    const std::size_t batch = 256;
    for (std::size_t start = 0; start < n; start += batch) {
        const std::size_t bsz = std::min(n, start + batch) - start;
        snn::Tensor bi(bsz, test.images.cols());
        for (std::size_t b = 0; b < bsz; ++b)
            std::copy_n(test.images.row(start + b),
                        test.images.cols(), bi.row(b));
        auto frames = enc.encodeBatch(bi, 5);
        for (std::size_t b = 0; b < bsz; ++b) {
            auto bf = benchutil::binaryFrames(frames, b);
            hits += sushi_chip.predict(compiled, bf) ==
                            test.labels[start + b]
                        ? 1
                        : 0;
        }
    }
    if (stats)
        *stats = sushi_chip.stats();
    return static_cast<double>(hits) / n;
}

} // namespace

int
main()
{
    const bool full = benchutil::envFlag("SUSHI_FULL");
    const std::size_t hidden = full ? 800 : 128;
    const std::size_t train_n = full ? 12000 : 4000;
    const std::size_t test_n = full ? 2000 : 600;

    auto all = data::synthDigits(train_n + test_n, 42);
    auto [test, train] = data::split(all, test_n);

    snn::SnnConfig cfg;
    cfg.hidden = hidden;
    cfg.t_steps = 5;
    cfg.stateless = true;
    snn::SnnMlp net(cfg, 1);
    snn::TrainConfig tc;
    tc.epochs = full ? 3 : 2;
    snn::Trainer(net, tc).fit(train.images, train.labels);
    auto bin = snn::BinarySnn::fromFloat(net);

    // --- State-range analysis (Sec. 4.1.2 / 5.1). ---
    compiler::ChipConfig base;
    base.n = 16;
    base.sc_per_npe = 10;
    std::printf("=== Ablation: synapse bucketing (Sec. 5.1) ===\n");
    std::printf("worst-case state range required per layer:\n");
    std::printf("%-8s %22s %22s\n", "layer", "bucketed (16/bkt)",
                "inhibitory-first");
    int worst_bucketed = 0, worst_unbucketed = 0;
    for (const auto &blayer : bin.layers()) {
        compiler::BucketingConfig bc = base.bucketing;
        bc.bucket_size = 16;
        bc.mesh_width = base.n;
        bc.state_bits = base.sc_per_npe;
        auto sched = compiler::scheduleLayer(blayer, bc);
        auto r = compiler::analyzeStateRange(blayer, sched, bc);
        std::printf("%-8ld %22d %22d\n",
                    static_cast<long>(&blayer - &bin.layers()[0]),
                    r.required_states, r.required_states_unbucketed);
        worst_bucketed =
            std::max(worst_bucketed, r.required_states);
        worst_unbucketed = std::max(
            worst_unbucketed, r.required_states_unbucketed);
    }
    auto bits_for = [](int states) {
        int k = 1;
        while ((1 << k) < states)
            ++k;
        return k;
    };
    std::printf("smallest NPE that always fits: %d SCs bucketed vs "
                "%d SCs inhibitory-first\n",
                bits_for(worst_bucketed),
                bits_for(worst_unbucketed));
    std::printf("paper claim: ~500 states are adequate with the "
                "method; the 10-SC NPE offers 1024\n");

    // --- Accuracy with and without bucketing at a tight budget. ---
    compiler::ChipConfig big = base;           // ample budget
    compiler::ChipConfig tight = base;         // tight budget
    tight.sc_per_npe = 6;                      // 64 states
    tight.bucketing.bucket_size = 16;
    compiler::ChipConfig tight_unbucketed = tight;
    tight_unbucketed.bucketing.bucketing = false;

    chip::InferenceStats big_stats, tight_stats, unb_stats;
    const double acc_big = chipAccuracy(bin, big, test, &big_stats);
    const double acc_tight =
        chipAccuracy(bin, tight, test, &tight_stats);
    const double acc_unb =
        chipAccuracy(bin, tight_unbucketed, test, &unb_stats);

    std::printf("\n%-44s %9s %12s\n", "configuration", "accuracy",
                "underflows");
    std::printf("%-44s %8.2f%% %12llu\n",
                "10-SC budget (1024 states), exact traversal",
                100.0 * acc_big,
                static_cast<unsigned long long>(
                    big_stats.underflow_spikes));
    std::printf("%-44s %8.2f%% %12llu\n",
                "6-SC budget (64 states), bucketed",
                100.0 * acc_tight,
                static_cast<unsigned long long>(
                    tight_stats.underflow_spikes));
    std::printf("%-44s %8.2f%% %12llu\n",
                "6-SC budget (64 states), unbucketed",
                100.0 * acc_unb,
                static_cast<unsigned long long>(
                    unb_stats.underflow_spikes));
    std::printf("at the paper's 10-SC budget the schedule is exact, "
                "so bucketing costs 0.00%% accuracy (paper: <1%%); "
                "at the extreme 64-state budget bucketing recovers "
                "%.2f%% accuracy over inhibitory-first\n",
                100.0 * (acc_tight - acc_unb));

    // --- Weight-reload time share (Sec. 4.2.2: ~20 %). ---
    const double share =
        big_stats.reload_time_ps / big_stats.est_time_ps;
    std::printf("\nweight reloading share of inference time: "
                "%.1f%% (paper: ~20%% on average)\n",
                100.0 * share);
    return 0;
}
