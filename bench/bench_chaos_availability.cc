/**
 * @file
 * Serving availability under injected replica failures: a seeded
 * Poisson stream is played through a virtual-clock Server with the
 * full resilience stack enabled (retries, hedging, circuit breaker,
 * quarantine/probe/readmit, one hot spare) while a chaos campaign
 * kills replicas.
 *
 * Headline scenario (the ISSUE acceptance bar): one of four active
 * replicas is crash-injected a quarter of the way through the run
 * and held down for an eighth of the span. The run must keep
 * availability — served AND deadline-met fraction of submissions —
 * at or above 99%, and the crashed replica must be probed back into
 * rotation before the traffic ends. A crash-rate sweep then records
 * how availability degrades as random whole-chip crashes get more
 * frequent, with and without the recovery stack.
 *
 * The virtual clock makes every scenario deterministic: the bench
 * replays the headline scenario and checks the metrics snapshots
 * are byte-identical, and the emitted BENCH_chaos.json is identical
 * on every host for the same build.
 *
 * Environment:
 *   SUSHI_JSON_OUT  output path (default BENCH_chaos.json)
 *   SUSHI_FULL=1    more requests per scenario (slower)
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "data/synth_digits.hh"
#include "engine/inference_engine.hh"
#include "serve/load_gen.hh"
#include "serve/server.hh"
#include "snn/binarize.hh"

#include "bench_util.hh"

using namespace sushi;

namespace {

/** The ISSUE acceptance floor on headline availability. */
constexpr double kAvailabilityFloor = 0.99;

serve::ServerConfig
baseConfig()
{
    serve::ServerConfig cfg;
    cfg.engine.replicas = 4;
    cfg.hot_spares = 1;
    cfg.max_batch = 8;
    cfg.max_queue = 256;
    cfg.clock = serve::ClockMode::Virtual;
    return cfg;
}

/** Switch the recovery stack on (retry + hedge + breaker + fast
 *  probing) with thresholds scaled to the measured batch service. */
void
enableRecovery(serve::ServerConfig &cfg, double batch_service_ns)
{
    cfg.retry.max_retries = 3;
    cfg.retry.backoff_ns =
        static_cast<std::int64_t>(batch_service_ns / 4.0);
    cfg.hedge.priority_floor = 1; // the deadline-critical tier
    cfg.hedge.delay_ns =
        static_cast<std::int64_t>(batch_service_ns * 2.0);
    cfg.breaker.failure_threshold = 16;
    cfg.health.quarantine_after = 2;
    cfg.health.probe_delay_ns =
        static_cast<std::int64_t>(batch_service_ns);
}

struct ScenarioResult
{
    serve::ServerMetrics metrics;
    std::string json;
};

ScenarioResult
playScenario(
    const std::shared_ptr<const engine::CompiledModel> &model,
    const serve::ServerConfig &cfg,
    const std::vector<engine::Sample> &pool,
    const serve::LoadGenConfig &lg)
{
    serve::Server server(model, cfg);
    for (const auto &a : serve::poissonArrivals(lg))
        server.submitAt(a.arrival_ns, pool[a.sample_index], a.opts);
    server.runVirtual();
    ScenarioResult r;
    r.metrics = server.metrics();
    r.json = r.metrics.toJson();
    return r;
}

} // namespace

int
main()
{
    const bool full = benchutil::envFlag("SUSHI_FULL");
    const std::size_t requests = full ? 3000 : 800;
    const std::size_t pool_n = full ? 128 : 48;
    const int t_steps = 5;

    auto data = data::synthDigits(pool_n, 42);
    snn::SnnConfig net_cfg;
    net_cfg.hidden = 96;
    net_cfg.t_steps = t_steps;
    net_cfg.stateless = true;
    snn::SnnMlp mlp(net_cfg, 7);
    auto bin = snn::BinarySnn::fromFloat(mlp);

    compiler::ChipConfig chip_cfg;
    chip_cfg.n = 16;
    chip_cfg.sc_per_npe = 10;
    auto model = engine::ModelCache::shared().get(bin, chip_cfg);
    const auto pool = engine::encodeSamples(data.images, t_steps, 99);

    // --- Calibrate ------------------------------------------------
    // One full batch per active replica on an idle pool gives the
    // batch service time; every rate and threshold scales off it.
    serve::ServerConfig probe_cfg = baseConfig();
    probe_cfg.hot_spares = 0;
    serve::Server probe(model, probe_cfg);
    for (std::size_t i = 0;
         i < probe_cfg.max_batch *
                 static_cast<std::size_t>(probe.replicas());
         ++i)
        probe.submitAt(0, pool[i % pool.size()]);
    probe.runVirtual();
    const double batch_service_ns =
        probe.metrics().service_ns.mean();
    const double capacity_rps =
        static_cast<double>(probe_cfg.engine.replicas) *
        static_cast<double>(probe_cfg.max_batch) * 1e9 /
        batch_service_ns;
    const double offered_rps = 0.6 * capacity_rps;
    const auto span_ns = static_cast<std::int64_t>(
        static_cast<double>(requests) * 1e9 / offered_rps);
    const auto deadline_ns =
        static_cast<std::int64_t>(batch_service_ns * 24.0);

    serve::LoadGenConfig lg;
    lg.rate_rps = offered_rps;
    lg.requests = requests;
    lg.sample_pool = pool.size();
    lg.seed = 4242;
    lg.deadline_ns = deadline_ns;
    lg.priorities = 2; // priority 1 is hedge-eligible

    std::printf("=== Serving availability under chaos ===\n");
    std::printf("4 active + 1 spare, batch %zu, %zu requests at "
                "%.0f rps (60%% capacity), batch service %.0f ns, "
                "deadline %.0f us\n",
                probe_cfg.max_batch, requests, offered_rps,
                batch_service_ns,
                static_cast<double>(deadline_ns) / 1e3);

    // --- Headline: 1 of 4 replicas crashes mid-run ----------------
    serve::ServerConfig crash_cfg = baseConfig();
    crash_cfg.max_delay_ns =
        static_cast<std::int64_t>(batch_service_ns / 2.0);
    enableRecovery(crash_cfg, batch_service_ns);
    crash_cfg.chaos.seed = 7;
    crash_cfg.chaos.crash_hold_ns = span_ns / 8;
    crash_cfg.chaos.script.push_back(
        {span_ns / 4, 0, serve::ChaosKind::Crash, 0});
    crash_cfg.resilience_seed = 11;

    const ScenarioResult headline =
        playScenario(model, crash_cfg, pool, lg);
    const auto &hm = headline.metrics;
    const double availability = hm.availability();
    const bool readmitted = hm.readmits >= 1;
    const bool meets_floor = availability >= kAvailabilityFloor;

    std::printf("\nheadline (scripted 1-of-4 crash at t=%.1f ms, "
                "held %.1f ms):\n",
                static_cast<double>(span_ns / 4) / 1e6,
                static_cast<double>(crash_cfg.chaos.crash_hold_ns) /
                    1e6);
    std::printf(
        "  availability %.4f (floor %.2f): %s\n", availability,
        kAvailabilityFloor, meets_floor ? "ok" : "BELOW FLOOR");
    std::printf("  served %llu/%llu, retries %llu, hedges won %llu, "
                "quarantines %llu, spares promoted %llu, probes "
                "%llu, readmits %llu: %s\n",
                static_cast<unsigned long long>(hm.completed),
                static_cast<unsigned long long>(hm.submitted),
                static_cast<unsigned long long>(hm.retries),
                static_cast<unsigned long long>(hm.hedges_won),
                static_cast<unsigned long long>(hm.quarantines),
                static_cast<unsigned long long>(hm.spares_promoted),
                static_cast<unsigned long long>(hm.probes),
                static_cast<unsigned long long>(hm.readmits),
                readmitted ? "readmitted" : "NOT READMITTED");

    // --- Crash-rate sweep, with and without recovery --------------
    std::printf("\n%-10s %-9s %12s %9s %9s %9s %9s\n", "crash", "stack",
                "availability", "served", "retries", "quaran",
                "readmit");
    struct SweepPoint
    {
        double crash_rate;
        bool recovery;
        serve::ServerMetrics metrics;
    };
    std::vector<SweepPoint> sweep;
    for (double crash_rate : {0.0, 0.005, 0.02, 0.05}) {
        for (bool recovery : {false, true}) {
            serve::ServerConfig cfg = baseConfig();
            cfg.max_delay_ns =
                static_cast<std::int64_t>(batch_service_ns / 2.0);
            if (recovery)
                enableRecovery(cfg, batch_service_ns);
            else
                cfg.hot_spares = 0;
            cfg.chaos.seed = 7;
            cfg.chaos.crash_rate = crash_rate;
            cfg.chaos.crash_hold_ns = span_ns / 16;
            cfg.health.probe_delay_ns = static_cast<std::int64_t>(
                batch_service_ns); // probes even without recovery
            cfg.resilience_seed = 11;

            SweepPoint p{crash_rate, recovery,
                         playScenario(model, cfg, pool, lg).metrics};
            const auto &m = p.metrics;
            std::printf(
                "%-10.3f %-9s %12.4f %9llu %9llu %9llu %9llu\n",
                crash_rate, recovery ? "recovery" : "bare",
                m.availability(),
                static_cast<unsigned long long>(m.completed),
                static_cast<unsigned long long>(m.retries),
                static_cast<unsigned long long>(m.quarantines),
                static_cast<unsigned long long>(m.readmits));
            sweep.push_back(std::move(p));
        }
    }

    // --- Determinism: replay the headline scenario ----------------
    const bool deterministic =
        playScenario(model, crash_cfg, pool, lg).json ==
        headline.json;
    std::printf("\nreplayed headline byte-identical: %s\n",
                deterministic ? "yes" : "NO");

    JsonWriter w;
    w.field("workload", "synth_digits");
    w.field("requests", std::uint64_t{requests});
    w.field("replicas", baseConfig().engine.replicas);
    w.field("hot_spares", baseConfig().hot_spares);
    w.field("offered_rps", offered_rps);
    w.field("batch_service_ns", batch_service_ns);
    w.field("deadline_ns", deadline_ns);
    w.field("availability_floor", kAvailabilityFloor);
    w.field("headline_availability", availability);
    w.field("headline_meets_floor", meets_floor);
    w.field("headline_readmitted", readmitted);
    w.field("deterministic_replay", deterministic);
    w.beginArray("sweep");
    for (const SweepPoint &p : sweep) {
        const auto &m = p.metrics;
        w.beginObject();
        w.field("crash_rate", p.crash_rate);
        w.field("recovery", p.recovery);
        w.field("availability", m.availability());
        w.field("goodput_rps", m.goodputRps());
        w.field("completed", m.completed);
        w.field("rejected_replica_failure",
                m.rejected_replica_failure);
        w.field("rejected_deadline", m.rejected_deadline);
        w.field("deadline_missed", m.deadline_missed);
        w.field("retries", m.retries);
        w.field("hedges_won", m.hedges_won);
        w.field("quarantines", m.quarantines);
        w.field("spares_promoted", m.spares_promoted);
        w.field("readmits", m.readmits);
        w.field("chaos_crashes", m.chaos_crashes);
        w.endObject();
    }
    w.endArray();
    std::string headline_json = headline.json;
    while (!headline_json.empty() && headline_json.back() == '\n')
        headline_json.pop_back();
    w.rawField("headline_metrics", headline_json);
    const std::string json = w.finish();

    const char *env_path = std::getenv("SUSHI_JSON_OUT");
    const std::string path =
        env_path != nullptr && env_path[0] != '\0'
            ? env_path
            : "BENCH_chaos.json";
    if (!JsonWriter::writeFile(path, json)) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    std::printf("JSON written to %s\n", path.c_str());

    return meets_floor && readmitted && deterministic ? 0 : 1;
}
