/**
 * @file
 * Accuracy-vs-fault-rate curves, in the style of the paper's chip
 * verification section (Sec. 6.2): the fabricated part is validated
 * by waveform equivalence against simulation exactly because RSFQ
 * cells fail through flux trapping, marginal junctions, and timing
 * margins. This bench quantifies how fast pulse-exact equivalence is
 * lost as each injected failure mode intensifies, running a
 * multi-threaded Monte-Carlo campaign (perf/fault_campaign) and
 * writing the byte-deterministic JSON curve.
 *
 * Environment:
 *   SUSHI_JSON_OUT  output path (default fault_sweep.bench.json)
 *   SUSHI_FULL=1    more seeds and rates (slower)
 */

#include <cstdio>
#include <cstdlib>

#include "perf/fault_campaign.hh"

#include "bench_util.hh"

using namespace sushi;

int
main()
{
    perf::FaultCampaignConfig cfg;
    cfg.kinds = {
        sfq::FaultKind::PulseDrop,
        sfq::FaultKind::SpuriousPulse,
        sfq::FaultKind::TimingJitter,
    };
    cfg.rates = {0.0, 1e-4, 1e-3, 1e-2, 1e-1};
    cfg.seeds = benchutil::envFlag("SUSHI_FULL") ? 64 : 16;
    cfg.campaign_seed = 1;
    cfg.num_sc = 5;
    cfg.pulses = 64;

    std::printf("=== Sec. 6.2: Monte-Carlo fault campaign ===\n");
    std::printf("%zu kinds x %zu rates x %d seeds, gate-level "
                "%d-SC NPE, %d pulses/trial\n",
                cfg.kinds.size(), cfg.rates.size(), cfg.seeds,
                cfg.num_sc, cfg.pulses);

    const auto result = perf::runFaultCampaign(cfg);

    std::printf("%-15s %10s %9s %10s %10s %10s %10s\n", "kind",
                "rate", "accuracy", "cnt-err", "violations",
                "dropped", "inserted");
    const std::size_t n_rates = cfg.rates.size();
    for (std::size_t i = 0; i < result.points.size(); ++i) {
        const auto &p = result.points[i];
        if (i % n_rates == 0)
            std::printf("---\n");
        std::printf("%-15s %10.2g %8.1f%% %10.2f %10.2f %10.2f "
                    "%10.2f\n",
                    sfq::faultKindName(p.kind), p.rate,
                    100.0 * p.accuracy, p.mean_count_err,
                    p.mean_violations, p.mean_dropped,
                    p.mean_inserted);
    }

    const bool monotone = perf::accuracyMonotone(result);
    std::printf("accuracy degradation monotone in rate: %s\n",
                monotone ? "yes" : "NO");

    const char *env_path = std::getenv("SUSHI_JSON_OUT");
    const std::string path =
        env_path != nullptr && env_path[0] != '\0'
            ? env_path
            : "fault_sweep.bench.json";
    if (!perf::writeCampaignJson(result, path)) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    std::printf("JSON curve written to %s\n", path.c_str());
    return monotone ? 0 : 1;
}
