/**
 * @file
 * Reproduces paper Table 4: SUSHI vs TrueNorth vs Tianjic, with
 * SUSHI's row computed from this repository's resource, timing and
 * power models at the 16x16 / 32-NPE design point.
 */

#include <cstdio>

#include "perf/baselines.hh"

using namespace sushi::perf;

namespace {

void
printRow(const Platform &p)
{
    std::printf("%-12s %-7s %-6s %-12s %-8s %8.2f %8.2f",
                p.name.c_str(), p.model.c_str(), p.memory.c_str(),
                p.technology.c_str(), p.clock.c_str(), p.area_mm2,
                p.power_mw);
    if (p.gsops > 0)
        std::printf(" %8.0f", p.gsops);
    else
        std::printf(" %8s", "-");
    std::printf(" %10.0f\n", p.gsops_per_w);
}

} // namespace

int
main()
{
    std::printf("=== Table 4: comparison with state-of-the-art "
                "neuromorphic chips ===\n");
    std::printf("%-12s %-7s %-6s %-12s %-8s %8s %8s %8s %10s\n",
                "platform", "model", "mem", "technology", "clock",
                "mm^2", "mW", "GSOPS", "GSOPS/W");
    printRow(trueNorth());
    printRow(tianjic());
    const Platform sushi = sushiPlatform();
    printRow(sushi);

    std::printf("\npaper anchors: SUSHI 103.75 mm^2, 41.87 mW, "
                "1,355 GSOPS, 32,366 GSOPS/W\n");
    std::printf("headline ratios (measured vs paper):\n");
    std::printf("  GSOPS vs TrueNorth:    %5.1fx (paper 23x)\n",
                sushi.gsops / trueNorth().gsops);
    std::printf("  GSOPS/W vs TrueNorth:  %5.1fx (paper 81x)\n",
                sushi.gsops_per_w / trueNorth().gsops_per_w);
    std::printf("  GSOPS/W vs Tianjic:    %5.1fx (paper 50x)\n",
                sushi.gsops_per_w / tianjic().gsops_per_w);
    return 0;
}
