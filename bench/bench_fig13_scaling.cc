/**
 * @file
 * Reproduces paper Fig. 13: JJs (total / logic / wiring) and chip
 * area as the number of NPEs (network size) scales from 2 (1x1) to
 * 32 (16x16), with a linear reference line through the first point.
 */

#include <cstdio>

#include "fabric/resource_model.hh"

using namespace sushi::fabric;

int
main()
{
    auto sweep = fig13Sweep();
    std::printf("=== Fig. 13(a): JJs of SUSHI vs number of NPEs "
                "===\n");
    std::printf("%5s %9s %9s %9s %9s %9s\n", "NPEs", "net", "total",
                "logic", "wiring", "linear*");
    const double per_npe =
        static_cast<double>(sweep[0].total_jjs) / sweep[0].npes;
    for (const auto &p : sweep) {
        std::printf("%5d %6dx%-2d %9ld %9ld %9ld %9.0f\n", p.npes,
                    p.n, p.n, p.total_jjs, p.logic_jjs, p.wiring_jjs,
                    per_npe * p.npes);
    }
    std::printf("(*linear reference through the 2-NPE point)\n");
    std::printf("paper anchors: 45,542 JJs at 8 NPEs (Table 2); "
                "99,982 JJs at 32 NPEs (Sec. 6.3)\n");

    std::printf("\n=== Fig. 13(b): area of SUSHI vs number of NPEs "
                "===\n");
    std::printf("%5s %9s %10s %10s\n", "NPEs", "net", "area mm^2",
                "linear*");
    const double area_per_npe = sweep[0].area_mm2 / sweep[0].npes;
    for (const auto &p : sweep) {
        std::printf("%5d %6dx%-2d %10.2f %10.2f\n", p.npes, p.n, p.n,
                    p.area_mm2, area_per_npe * p.npes);
    }
    std::printf("paper anchors: 44.73 mm^2 at 8 NPEs; 103.75 mm^2 "
                "at 32 NPEs\n");
    return 0;
}
