/**
 * @file
 * Reproduces paper Table 3: differences in SNN inference results
 * between the software reference (the SpikingJelly stand-in: float
 * weights, stateful IF, trained with adam/lr 1e-3 on T=5 Poisson
 * frames) and SUSHI (XNOR-binarized, stateless neurons, bit-sliced
 * onto the 16x16 mesh chip model), on the synthetic MNIST and
 * Fashion-MNIST stand-ins.
 *
 * Default sizes keep the run under a minute; set SUSHI_FULL=1 for
 * the paper-size 784-800-10 network on the full synthetic sets.
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "chip/sushi_chip.hh"
#include "compiler/driver.hh"
#include "data/synth_digits.hh"
#include "data/synth_fashion.hh"
#include "snn/train.hh"

using namespace sushi;

namespace {

struct Sizes
{
    std::size_t hidden;
    std::size_t train_n;
    std::size_t test_n;
    int epochs;
};

struct Row
{
    double ref_acc;
    double sushi_acc;
    double consistency;
    chip::InferenceStats stats;
};

Row
runDataset(const data::Dataset &all, const Sizes &sz,
           std::uint64_t seed)
{
    auto [test, train] = data::split(all, sz.test_n);

    // Reference: float weights, stateful IF (SpikingJelly regime).
    snn::SnnConfig ref_cfg;
    ref_cfg.hidden = sz.hidden;
    ref_cfg.t_steps = 5;
    ref_cfg.stateless = false;
    snn::SnnMlp ref(ref_cfg, seed);
    snn::TrainConfig ref_tc;
    ref_tc.epochs = sz.epochs;
    ref_tc.binary_aware = false;
    snn::Trainer(ref, ref_tc).fit(train.images, train.labels);

    // SUSHI: binarization-aware, stateless training (Sec. 5.1).
    snn::SnnConfig s_cfg = ref_cfg;
    s_cfg.stateless = true;
    snn::SnnMlp sushi_net(s_cfg, seed);
    snn::TrainConfig s_tc;
    s_tc.epochs = sz.epochs;
    s_tc.binary_aware = true;
    snn::Trainer(sushi_net, s_tc).fit(train.images, train.labels);
    auto bin = snn::BinarySnn::fromFloat(sushi_net);

    // Bit-slice compile for the 16x16 chip and run on the
    // behavioural chip model.
    compiler::ChipConfig chip_cfg;
    chip_cfg.n = 16;
    chip_cfg.sc_per_npe = 10;
    auto compiled =
        compiler::CompilerDriver(compiler::DriverOptions::legacy())
            .compileSingle(bin, chip_cfg);
    chip::SushiChip sushi_chip(chip_cfg);

    const std::size_t n = test.size();
    std::size_t ref_hits = 0, sushi_hits = 0, agree = 0;
    snn::PoissonEncoder enc(99);
    const std::size_t batch = 256;
    for (std::size_t start = 0; start < n; start += batch) {
        const std::size_t bsz = std::min(n, start + batch) - start;
        snn::Tensor bi(bsz, test.images.cols());
        for (std::size_t b = 0; b < bsz; ++b)
            std::copy_n(test.images.row(start + b),
                        test.images.cols(), bi.row(b));
        auto frames = enc.encodeBatch(bi, ref_cfg.t_steps);
        auto ref_preds = ref.predict(frames);
        for (std::size_t b = 0; b < bsz; ++b) {
            auto bf = benchutil::binaryFrames(frames, b);
            const int sp = sushi_chip.predict(compiled, bf);
            const int label = test.labels[start + b];
            ref_hits += ref_preds[b] == label ? 1 : 0;
            sushi_hits += sp == label ? 1 : 0;
            agree += sp == ref_preds[b] ? 1 : 0;
        }
    }
    Row row;
    row.ref_acc = static_cast<double>(ref_hits) / n;
    row.sushi_acc = static_cast<double>(sushi_hits) / n;
    row.consistency = static_cast<double>(agree) / n;
    row.stats = sushi_chip.stats();
    return row;
}

void
printRow(const char *name, const Row &r, double paper_ref,
         double paper_sushi, double paper_cons)
{
    std::printf("%-22s %10.2f%% %9.2f%% %12.2f%%\n", name,
                100.0 * r.ref_acc, 100.0 * r.sushi_acc,
                100.0 * r.consistency);
    std::printf("%-22s %10.2f%% %9.2f%% %12.2f%%\n",
                "  (paper, real MNIST)", paper_ref, paper_sushi,
                paper_cons);
}

} // namespace

int
main()
{
    const bool full = benchutil::envFlag("SUSHI_FULL");
    const Sizes sz = full ? Sizes{800, 12000, 2000, 3}
                          : Sizes{128, 4000, 800, 2};
    std::printf("=== Table 3: reference vs SUSHI inference "
                "(synthetic datasets%s) ===\n",
                full ? ", SUSHI_FULL" : "; SUSHI_FULL=1 for "
                                        "paper-size run");
    std::printf("network INPUT784-FC%zu-IF-FC10-IF, T=5, theta=1.0, "
                "Poisson encoder, adam lr 1e-3\n\n",
                sz.hidden);
    std::printf("%-22s %11s %10s %13s\n", "dataset", "reference",
                "SUSHI", "consistency");

    auto digits =
        data::synthDigits(sz.train_n + sz.test_n, 42);
    Row drow = runDataset(digits, sz, 1);
    printRow("synthetic digits", drow, 98.65, 97.84, 98.18);

    auto fashion =
        data::synthFashion(sz.train_n + sz.test_n, 43);
    Row frow = runDataset(fashion, sz, 2);
    printRow("synthetic fashion", frow, 88.90, 86.23, 88.71);

    std::printf("\nshape checks: SUSHI <= reference on both; "
                "fashion consistency < digits consistency: %s\n",
                (drow.sushi_acc <= drow.ref_acc + 0.02 &&
                 frow.sushi_acc <= frow.ref_acc + 0.02 &&
                 frow.consistency < drow.consistency)
                    ? "yes"
                    : "NO");
    std::printf("chip stats (fashion run): %llu synaptic ops, "
                "%llu reload events, %llu underflow pulses, "
                "%llu multi-fire neuron-steps\n",
                static_cast<unsigned long long>(
                    frow.stats.synaptic_ops),
                static_cast<unsigned long long>(
                    frow.stats.reload_events),
                static_cast<unsigned long long>(
                    frow.stats.underflow_spikes),
                static_cast<unsigned long long>(
                    frow.stats.multi_fires));
    return 0;
}
