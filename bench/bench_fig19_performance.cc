/**
 * @file
 * Reproduces paper Fig. 19: performance (GSOPS) of SUSHI as the
 * number of NPEs grows, against TrueNorth's 58-GSOPS peak, plus the
 * Sec. 6.3 FPS figure on the verification network.
 */

#include <cstdio>

#include "perf/baselines.hh"
#include "perf/power_model.hh"

using namespace sushi::perf;

int
main()
{
    auto sweep = scalingSweep();
    std::printf("=== Fig. 19: performance of SUSHI vs number of "
                "NPEs ===\n");
    std::printf("%5s %9s %12s %12s\n", "NPEs", "net", "GSOPS",
                "TrueNorth");
    for (const auto &p : sweep) {
        std::printf("%5d %6dx%-2d %12.1f %12.1f\n", p.npes, p.n, p.n,
                    p.gsops, trueNorth().gsops);
    }
    std::printf("paper anchor: 1,355 GSOPS at 32 NPEs "
                "(23x TrueNorth)\n");
    std::printf("measured peak: %.1f GSOPS (%.1fx TrueNorth)\n",
                sweep.back().gsops,
                sweep.back().gsops / trueNorth().gsops);

    // Sec. 6.3: frames per second on INPUT784-FC800-IF-FC10-IF.
    // Every synapse slot is processed once per slice pass whether or
    // not a spike is present (rate 1.0), and ~20 % of wall time goes
    // to weight reloading (Sec. 4.2.2), so the sustained throughput
    // is 0.8x peak.
    const double sops_frame = sopsPerFrame(800, 5, 1.0, 1.0);
    const double fps =
        framesPerSecond(0.8 * sweep.back().gsops, sops_frame);
    std::printf("\nFPS on the 784-800-10 network (T=5): %.3g "
                "(paper: up to 2.61e5)\n",
                fps);
    return 0;
}
