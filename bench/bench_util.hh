/**
 * @file
 * Shared helpers for the benchmark harness binaries.
 */

#ifndef SUSHI_BENCH_BENCH_UTIL_HH
#define SUSHI_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "snn/tensor.hh"

namespace sushi::benchutil {

/** True if the named environment flag is set to a truthy value. */
inline bool
envFlag(const char *name)
{
    const char *v = std::getenv(name);
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/** Row @p b of batched float frames as binary per-step frames. */
inline std::vector<std::vector<std::uint8_t>>
binaryFrames(const std::vector<snn::Tensor> &frames, std::size_t b)
{
    std::vector<std::vector<std::uint8_t>> out;
    out.reserve(frames.size());
    for (const auto &f : frames) {
        std::vector<std::uint8_t> bf(f.cols());
        for (std::size_t i = 0; i < f.cols(); ++i)
            bf[i] = f.at(b, i) > 0.5f ? 1 : 0;
        out.push_back(std::move(bf));
    }
    return out;
}

} // namespace sushi::benchutil

#endif // SUSHI_BENCH_BENCH_UTIL_HH
