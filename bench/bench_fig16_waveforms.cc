/**
 * @file
 * Reproduces paper Fig. 16: the chip-vs-simulation waveform
 * comparison and the inference-decode workflow.
 *
 * The gate-level netlist plays the fabricated chip; the behavioural
 * model plays the Synopsys VCS simulation. A 1x1 two-NPE
 * configuration (the fabricated design) runs an encoded input
 * stream; output pulses are observed through the SFQ/DC driver (the
 * oscilloscope), converted from levels back to pulses (Fig. 14) and
 * decoded to per-step bit-strings per label (Fig. 16(c)(d)).
 */

#include <cstdio>

#include "chip/gate_sim.hh"
#include "chip/sampler.hh"
#include "chip/sushi_chip.hh"
#include "common/rng.hh"
#include "compiler/driver.hh"
#include "sfq/waveform.hh"

using namespace sushi;

int
main()
{
    // A hand-built single-synapse SSNN: weight +1, threshold 2
    // (the output NPE fires when it has seen two input spikes in a
    // step).
    snn::BinaryLayer layer;
    layer.weights = {{1}};
    layer.thresholds = {1};
    auto net = snn::BinarySnn::fromLayers({layer}, 5);

    compiler::ChipConfig cfg;
    cfg.n = 1;
    cfg.sc_per_npe = 4;
    auto compiled =
        compiler::CompilerDriver(compiler::DriverOptions::legacy())
            .compileSingle(net, cfg);

    // Encoded input stream: spikes at steps 1..4 (label pattern
    // "0-1-1-1-1" as in Fig. 16(d)).
    std::vector<std::vector<std::uint8_t>> frames = {
        {0}, {1}, {1}, {1}, {1}};

    // Behavioural "VCS simulation".
    chip::SushiChip behavioural(cfg);
    std::vector<int> behav_steps;
    for (const auto &f : frames) {
        chip::PulseVector act(f.begin(), f.end());
        auto out = behavioural.stepLayer(compiled.layers[0],
                                         net.layers()[0], act);
        behav_steps.push_back(out[0]);
    }

    // Gate-level "fabricated chip".
    sfq::Simulator sim;
    sim.setViolationPolicy(sfq::ViolationPolicy::Ignore);
    sfq::Netlist netlist(sim);
    chip::GateChip gate(netlist, cfg);
    auto gate_steps = gate.run(compiled, frames);

    std::printf("=== Fig. 16: simulation vs chip waveforms (1x1, "
                "2 NPEs) ===\n");
    std::printf("%6s %12s %12s\n", "step", "simulation", "chip");
    bool all_match = true;
    for (std::size_t s = 0; s < frames.size(); ++s) {
        std::printf("%6zu %12d %12d\n", s, behav_steps[s],
                    gate_steps[s][0]);
        all_match &= behav_steps[s] == gate_steps[s][0];
    }
    std::printf("waveform equivalence: %s\n",
                all_match ? "MATCH" : "MISMATCH");

    // Oscilloscope view: the SFQ/DC driver's level toggles,
    // converted back to pulses and decoded per step.
    const auto &toggles = gate.mesh().outputDriver(0).toggles();
    sfq::PulseTrace trace(toggles.begin(), toggles.end());
    sfq::LevelWave wave = sfq::pulsesToLevels(trace);
    auto readout = chip::decodeLabels({wave}, gate.stepBounds());
    std::printf("\noscilloscope decode (Fig. 16(c)(d)):\n");
    std::printf("  => label0: %s\n", readout.per_label[0].c_str());
    std::printf("  level toggles captured: %zu\n", wave.size());

    // ASCII waveform of the output pulses (Fig. 16(a) flavour).
    std::printf("\n%s",
                sfq::asciiWaveform({"out"}, {trace},
                                   (gate.stepBounds().back() + 95) /
                                       96)
                    .c_str());
    return all_match ? 0 : 1;
}
