/**
 * @file
 * Reproduces paper Table 1: the RSFQ cell timing-constraint table,
 * and demonstrates the checker catching a violation live.
 */

#include <cstdio>

#include "sfq/cells.hh"
#include "sfq/constraints.hh"
#include "sfq/netlist.hh"
#include "sfq/simulator.hh"

using namespace sushi;
using namespace sushi::sfq;

int
main()
{
    std::printf("=== Table 1: constraints for RSFQ cells (ps) ===\n");
    std::printf("%-6s %-12s %8s\n", "cell", "rule", "min (ps)");
    for (const auto &row : constraintTable())
        std::printf("%-6s %-12s %8.2f\n", row.cell.c_str(),
                    row.rule.c_str(), row.min_ps);

    std::printf("\nsafe pulse spacing (1.25x margin): %.2f ps\n",
                ticksToPs(safePulseSpacing()));

    // Live demonstration: two pulses 5 ps apart through an SPL
    // violate din-din 19.9 ps and are reported.
    Simulator sim;
    sim.setViolationPolicy(ViolationPolicy::Ignore);
    Netlist net(sim);
    Spl &spl = net.makeSpl("spl");
    PulseSink &a = net.makeSink("a");
    PulseSink &b = net.makeSink("b");
    spl.connect(0, a, 0);
    spl.connect(1, b, 0);
    spl.inject(0, 0);
    spl.inject(0, psToTicks(5.0));
    sim.run();
    std::printf("checker demo: 2 pulses 5 ps apart through SPL -> "
                "%llu violation(s) detected\n",
                static_cast<unsigned long long>(sim.violations()));
    return 0;
}
