/**
 * @file
 * Open-loop serving latency under increasing load: a seeded Poisson
 * arrival stream is played through a virtual-clock Server at several
 * multiples of the measured saturation rate, recording the latency
 * distribution, batch-size distribution, shed counts and replica
 * utilisation at each offered rate.
 *
 * The virtual clock makes the sweep deterministic: the same build
 * emits a byte-identical BENCH_serve.json on every host, and the
 * bench itself verifies that by replaying the heaviest rate twice.
 * Past saturation the admission bound (max_queue) must both shed
 * load (nonzero QueueFull rejections) and keep the served p99 total
 * latency under the queue-depth-implied bound — the load-shedding
 * contract of the serving layer.
 *
 * Environment:
 *   SUSHI_JSON_OUT  output path (default BENCH_serve.json)
 *   SUSHI_FULL=1    more requests per rate (slower)
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "common/stats.hh"
#include "data/synth_digits.hh"
#include "engine/inference_engine.hh"
#include "serve/load_gen.hh"
#include "serve/server.hh"
#include "snn/binarize.hh"

#include "bench_util.hh"

using namespace sushi;

namespace {

struct RatePoint
{
    double multiplier = 0.0;
    double offered_rps = 0.0;
    serve::ServerMetrics metrics;
};

serve::ServerConfig
sweepConfig(std::size_t max_queue)
{
    serve::ServerConfig cfg;
    cfg.engine.replicas = 4;
    cfg.max_batch = 8;
    cfg.max_queue = max_queue;
    cfg.clock = serve::ClockMode::Virtual;
    return cfg;
}

/** Play one offered rate through a fresh server. */
serve::ServerMetrics
playRate(const std::shared_ptr<const engine::CompiledModel> &model,
         const serve::ServerConfig &cfg,
         const std::vector<engine::Sample> &pool,
         const serve::LoadGenConfig &lg)
{
    serve::Server server(model, cfg);
    for (const auto &a : serve::poissonArrivals(lg))
        server.submitAt(a.arrival_ns, pool[a.sample_index], a.opts);
    server.runVirtual();
    return server.metrics();
}

} // namespace

int
main()
{
    const bool full = benchutil::envFlag("SUSHI_FULL");
    const std::size_t requests = full ? 2000 : 500;
    const std::size_t pool_n = full ? 128 : 48;
    const int t_steps = 5;

    auto data = data::synthDigits(pool_n, 42);
    snn::SnnConfig net_cfg;
    net_cfg.hidden = 96;
    net_cfg.t_steps = t_steps;
    net_cfg.stateless = true;
    snn::SnnMlp mlp(net_cfg, 7);
    auto bin = snn::BinarySnn::fromFloat(mlp);

    compiler::ChipConfig chip_cfg;
    chip_cfg.n = 16;
    chip_cfg.sc_per_npe = 10;
    auto model = engine::ModelCache::shared().get(bin, chip_cfg);
    const auto pool = engine::encodeSamples(data.images, t_steps, 99);

    // --- Calibrate saturation -------------------------------------
    // Serve one full batch per replica on an idle server; the mean
    // batch service time gives the pool's saturation throughput.
    serve::ServerConfig probe_cfg = sweepConfig(1024);
    serve::Server probe(model, probe_cfg);
    for (std::size_t i = 0;
         i < probe_cfg.max_batch *
                 static_cast<std::size_t>(probe.replicas());
         ++i)
        probe.submitAt(0, pool[i % pool.size()]);
    probe.runVirtual();
    const serve::ServerMetrics cal = probe.metrics();
    const double batch_service_ns = cal.service_ns.mean();
    const double capacity_rps =
        static_cast<double>(probe_cfg.engine.replicas) *
        static_cast<double>(probe_cfg.max_batch) * 1e9 /
        batch_service_ns;

    // Delay knob: wait up to half a batch service for coalescing.
    // Queue bound: ~4 batch rounds of backlog per replica.
    const std::size_t max_queue = 128;
    const auto max_delay_ns =
        static_cast<std::int64_t>(batch_service_ns / 2.0);

    std::printf("=== Open-loop serving latency vs offered load ===\n");
    std::printf("%d replicas, batch %zu, queue bound %zu, "
                "%zu requests/rate, batch service %.0f ns, "
                "saturation %.0f rps (virtual)\n",
                probe_cfg.engine.replicas, probe_cfg.max_batch,
                max_queue, requests, batch_service_ns, capacity_rps);
    std::printf("%-6s %12s %9s %9s %9s %10s %10s %10s %8s\n",
                "load", "offered", "served", "shed", "missed",
                "p50 us", "p99 us", "batch", "util");

    const std::vector<double> multipliers = {0.5, 0.8, 1.1, 1.5,
                                             2.5};
    std::vector<RatePoint> points;
    for (double mult : multipliers) {
        serve::ServerConfig cfg = sweepConfig(max_queue);
        cfg.max_delay_ns = max_delay_ns;
        serve::LoadGenConfig lg;
        lg.rate_rps = capacity_rps * mult;
        lg.requests = requests;
        lg.sample_pool = pool.size();
        lg.seed = 4242;
        // Generous deadline: ~24 batch rounds. Under overload the
        // queue bound, not the deadline, is the primary shedder.
        lg.deadline_ns =
            static_cast<std::int64_t>(batch_service_ns * 24.0);
        RatePoint p;
        p.multiplier = mult;
        p.offered_rps = lg.rate_rps;
        p.metrics = playRate(model, cfg, pool, lg);

        const auto &m = p.metrics;
        const double util_sum = [&] {
            double s = 0.0;
            for (std::size_t r = 0; r < m.replicas.size(); ++r)
                s += m.utilisation(r);
            return s / static_cast<double>(m.replicas.size());
        }();
        std::printf("%-6.2f %12.0f %9llu %9llu %9llu %10.1f %10.1f "
                    "%10.2f %7.0f%%\n",
                    mult, p.offered_rps,
                    static_cast<unsigned long long>(m.completed),
                    static_cast<unsigned long long>(
                        m.rejected_queue_full + m.rejected_deadline),
                    static_cast<unsigned long long>(
                        m.deadline_missed),
                    m.total_ns.percentile(0.50) / 1e3,
                    m.total_ns.percentile(0.99) / 1e3,
                    m.batch_size.mean(), util_sum * 100.0);
        points.push_back(std::move(p));
    }

    // --- Contracts ------------------------------------------------
    // 1. Past saturation the admission bound sheds load.
    const auto &top = points.back().metrics;
    const bool sheds = top.rejected_queue_full > 0;

    // 2. ...and thereby bounds the served p99: an admitted request
    // waits at most the queued backlog (max_queue requests over all
    // replicas) plus the delay knob plus its own batch; 2x slack.
    const double worst_wait_ns =
        (static_cast<double>(max_queue) /
             static_cast<double>(probe_cfg.engine.replicas *
                                 probe_cfg.max_batch) +
         1.0) *
            batch_service_ns +
        static_cast<double>(max_delay_ns);
    const auto p99_bound =
        static_cast<std::int64_t>(2.0 * worst_wait_ns);
    bool p99_bounded = true;
    for (const RatePoint &p : points)
        p99_bounded &= p.metrics.total_ns.percentile(0.99) <=
                       p99_bound;

    // 3. The sweep is deterministic: replaying the heaviest rate
    // gives a byte-identical metrics snapshot.
    serve::ServerConfig recfg = sweepConfig(max_queue);
    recfg.max_delay_ns = max_delay_ns;
    serve::LoadGenConfig relg;
    relg.rate_rps = capacity_rps * multipliers.back();
    relg.requests = requests;
    relg.sample_pool = pool.size();
    relg.seed = 4242;
    relg.deadline_ns =
        static_cast<std::int64_t>(batch_service_ns * 24.0);
    const bool deterministic =
        playRate(model, recfg, pool, relg).toJson() == top.toJson();

    std::printf("queue-full shedding past saturation: %s\n",
                sheds ? "yes" : "NO");
    std::printf("p99 total latency within %.1f us bound: %s\n",
                p99_bound / 1e3, p99_bounded ? "yes" : "NO");
    std::printf("replayed sweep byte-identical: %s\n",
                deterministic ? "yes" : "NO");

    JsonWriter w;
    w.field("workload", "synth_digits");
    w.field("requests_per_rate", std::uint64_t{requests});
    w.field("replicas", probe_cfg.engine.replicas);
    w.field("max_batch", std::uint64_t{probe_cfg.max_batch});
    w.field("max_queue", std::uint64_t{max_queue});
    w.field("max_delay_ns", max_delay_ns);
    w.field("batch_service_ns", batch_service_ns);
    w.field("saturation_rps", capacity_rps);
    w.field("p99_bound_ns", p99_bound);
    w.field("sheds_past_saturation", sheds);
    w.field("p99_bounded", p99_bounded);
    w.field("deterministic_replay", deterministic);
    w.beginArray("rates");
    for (const RatePoint &p : points) {
        const auto &m = p.metrics;
        w.beginObject();
        w.field("load", p.multiplier);
        w.field("offered_rps", p.offered_rps);
        w.field("submitted", m.submitted);
        w.field("completed", m.completed);
        w.field("rejected_queue_full", m.rejected_queue_full);
        w.field("rejected_deadline", m.rejected_deadline);
        w.field("deadline_missed", m.deadline_missed);
        w.field("goodput_rps", m.goodputRps());
        w.field("queue_p99_ns", m.queue_ns.percentile(0.99));
        w.field("total_p50_ns", m.total_ns.percentile(0.50));
        w.field("total_p95_ns", m.total_ns.percentile(0.95));
        w.field("total_p99_ns", m.total_ns.percentile(0.99));
        w.field("mean_batch_size", m.batch_size.mean());
        w.endObject();
    }
    w.endArray();
    // toJson() is a standalone document with a trailing newline;
    // trim it so the splice nests cleanly.
    std::string top_json = top.toJson();
    while (!top_json.empty() && top_json.back() == '\n')
        top_json.pop_back();
    w.rawField("top_rate_metrics", top_json);
    const std::string json = w.finish();

    const char *env_path = std::getenv("SUSHI_JSON_OUT");
    const std::string path =
        env_path != nullptr && env_path[0] != '\0'
            ? env_path
            : "BENCH_serve.json";
    if (!JsonWriter::writeFile(path, json)) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    std::printf("JSON written to %s\n", path.c_str());

    return sheds && p99_bounded && deterministic ? 0 : 1;
}
