/**
 * @file
 * Reproduces the paper's Sec. 6.3 transmission-delay analysis: "when
 * processing a single pulse, the transmission delay accounts for
 * about 53 % of the total in the 16x16 design, while only about 6 %
 * in the 1x1 design."
 */

#include <cstdio>

#include "fabric/resource_model.hh"
#include "fabric/timing_model.hh"

using namespace sushi::fabric;

int
main()
{
    std::printf("=== Sec. 6.3: transmission-delay share of "
                "per-pulse processing time ===\n");
    std::printf("%9s %12s %12s %12s %9s\n", "design", "logic ps",
                "trans ps", "total ps", "share");
    for (int n : {1, 2, 4, 8, 16}) {
        MeshConfig cfg = scalingMeshConfig(n);
        std::printf("%6dx%-2d %12.1f %12.1f %12.1f %8.1f%%\n", n, n,
                    synapseLogicDelayPs(cfg), transmissionDelayPs(n),
                    pulseTimePs(cfg),
                    100.0 * transmissionShare(cfg));
    }
    std::printf("paper anchors: ~6%% at 1x1, ~53%% at 16x16\n");
    std::printf("measured:      %.1f%% at 1x1, %.1f%% at 16x16\n",
                100.0 * transmissionShare(scalingMeshConfig(1)),
                100.0 * transmissionShare(scalingMeshConfig(16)));
    return 0;
}
