/**
 * @file
 * Reproduces paper Table 2: resource overhead of the 4x4 mesh
 * network of NPEs (total/wiring/logic JJs and area), by building the
 * actual gate-level netlist and tallying it. Also prints the
 * tree-vs-mesh trade-off of Fig. 11.
 */

#include <cstdio>

#include "fabric/resource_model.hh"
#include "fabric/tree_network.hh"
#include "sfq/simulator.hh"

using namespace sushi;
using namespace sushi::fabric;

int
main()
{
    const DesignPoint p = designPoint(4);
    std::printf("=== Table 2: resource overhead of a 4x4 mesh "
                "network of NPEs ===\n");
    std::printf("%-22s %12s %12s %9s\n", "", "measured", "paper",
                "delta");
    std::printf("%-22s %12ld %12ld %8.2f%%\n", "total JJs",
                p.total_jjs, paper::kTable2TotalJjs,
                100.0 * (p.total_jjs - paper::kTable2TotalJjs) /
                    paper::kTable2TotalJjs);
    std::printf("%-22s %12ld %12ld %8.2f%%\n", "wiring JJs",
                p.wiring_jjs, paper::kTable2WiringJjs,
                100.0 * (p.wiring_jjs - paper::kTable2WiringJjs) /
                    paper::kTable2WiringJjs);
    std::printf("%-22s %12ld %12ld %8.2f%%\n", "logic JJs",
                p.logic_jjs, paper::kTable2LogicJjs,
                100.0 * (p.logic_jjs - paper::kTable2LogicJjs) /
                    paper::kTable2LogicJjs);
    std::printf("%-22s %11.2f%% %11.2f%%\n", "wiring share",
                100.0 * p.wiring_fraction, 68.13);
    std::printf("%-22s %9.2fmm2 %9.2fmm2 %8.2f%%\n", "total area",
                p.area_mm2, paper::kTable2AreaMm2,
                100.0 * (p.area_mm2 - paper::kTable2AreaMm2) /
                    paper::kTable2AreaMm2);

    // Fig. 11 trade-off: same input count, tree vs mesh fabric.
    sfq::Simulator sim;
    sfq::Netlist tree_net(sim);
    TreeConfig tcfg;
    tcfg.leaves = 4;
    TreeGate tree(tree_net, tcfg);
    std::printf("\n=== Fig. 11 fabric trade-off (4 inputs) ===\n");
    std::printf("tree network:  %6ld JJs (normalised weights only)\n",
                tree_net.resources().totalJjs());
    std::printf("mesh network:  %6ld JJs (arbitrary connections)\n",
                p.total_jjs);
    return 0;
}
