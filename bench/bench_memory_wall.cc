/**
 * @file
 * The memory-wall motivation (paper Sec. 3B): shift registers — the
 * common RSFQ on-chip memory — only support sequential access, so a
 * compute engine fetching operands from them loses most of its peak
 * (SuperNPU reached only 16 % of peak inference throughput). SUSHI's
 * NPEs store state *in place* (the SC flux), which "essentially
 * eliminates most of the memory requirements". This bench quantifies
 * both sides.
 */

#include <cstdio>

#include "sfq/shift_register.hh"
#include "sfq/simulator.hh"

using namespace sushi;
using namespace sushi::sfq;

int
main()
{
    std::printf("=== Sec. 3B: the RSFQ memory wall ===\n");
    std::printf("shift-register effective utilisation "
                "(4 compute clocks per access):\n");
    std::printf("%7s | %11s %11s %11s\n", "depth", "sequential",
                "85%% seq.", "random");
    for (int depth : {16, 64, 256, 1024}) {
        std::printf("%7d | %10.1f%% %10.1f%% %10.1f%%\n", depth,
                    100.0 * shiftRegisterUtilisation(depth, 1.0, 4),
                    100.0 * shiftRegisterUtilisation(depth, 0.85, 4),
                    100.0 * shiftRegisterUtilisation(depth, 0.0, 4));
    }
    std::printf("paper reference point: SuperNPU reached 16%% of "
                "peak with shift-register memory;\n"
                "our 256-deep register at an 85%%-sequential mix "
                "gives %.0f%%\n",
                100.0 * shiftRegisterUtilisation(256, 0.85, 4));

    // Gate-level demonstration: a 6-stage register streamed
    // end-to-end, with resource cost per stored bit.
    Simulator sim;
    sim.setViolationPolicy(ViolationPolicy::Ignore);
    Netlist net(sim);
    ShiftRegisterGate sr(net, "sr", 6);
    const Tick period = 4 * safePulseSpacing();
    // Write the pattern 101101, then drain with 6 clocks.
    const bool pattern[] = {true, false, true, true, false, true};
    Tick t = period;
    for (bool bit : pattern) {
        sr.injectClock(t);
        if (bit)
            sr.injectData(t + period / 2);
        t += period;
    }
    for (int c = 0; c < 6; ++c) {
        sr.injectClock(t);
        t += period;
    }
    sim.run();
    std::printf("\ngate-level 6-stage register: stored 4 ones, "
                "drained %zu output pulses, %ld JJs "
                "(%.0f JJs per stored bit)\n",
                sr.outSink().count(), net.resources().totalJjs(),
                static_cast<double>(net.resources().totalJjs()) /
                    6.0);
    std::printf("SUSHI comparison: an SC stores its state in 1 flux "
                "quantum within the processing element itself — no "
                "separate memory, no access latency\n");
    return 0;
}
