/**
 * @file
 * Reproduces paper Fig. 21: power efficiency (GSOPS/W) of SUSHI as
 * the number of NPEs grows, against TrueNorth (400 GSOPS/W) and
 * Tianjic (649 GSOPS/W).
 */

#include <cstdio>

#include "perf/baselines.hh"
#include "perf/power_model.hh"

using namespace sushi::perf;

int
main()
{
    auto sweep = scalingSweep();
    std::printf("=== Fig. 21: power efficiency of SUSHI vs number "
                "of NPEs ===\n");
    std::printf("%5s %9s %12s %11s %9s\n", "NPEs", "net", "GSOPS/W",
                "TrueNorth", "Tianjic");
    for (const auto &p : sweep) {
        std::printf("%5d %6dx%-2d %12.0f %11.0f %9.0f\n", p.npes,
                    p.n, p.n, p.gsops_per_w,
                    trueNorth().gsops_per_w, tianjic().gsops_per_w);
    }
    std::printf("paper anchor: 32,366 GSOPS/W at 32 NPEs "
                "(81x TrueNorth, 50x Tianjic)\n");
    std::printf("measured peak: %.0f GSOPS/W (%.0fx TrueNorth, "
                "%.0fx Tianjic)\n",
                sweep.back().gsops_per_w,
                sweep.back().gsops_per_w / trueNorth().gsops_per_w,
                sweep.back().gsops_per_w / tianjic().gsops_per_w);
    return 0;
}
