/**
 * @file
 * Front-door submit throughput of the sharded admission path
 * (PR 10): a closed-loop multi-threaded hammer drives submit()
 * against a server whose queue is pinned at the admission bound, so
 * every timed call is PURE front-end work — shard lock, shed scan,
 * bound check, typed rejection — with no batch execution behind it.
 *
 * The sweep compares the sharded default (admission_shards = 0, one
 * shard per replica) against the single-lock S=1 baseline under an
 * 8-thread hammer and exit-code-enforces a >= 3x throughput floor.
 * The speedup has two sources, and which dominates depends on the
 * host: on many-core machines the shard locks admit in parallel; on
 * few-core machines (including single-core CI containers) the win
 * is that the serialized critical section is S times smaller — the
 * per-submit expired-entry scan walks one shard's slots, not the
 * whole queue, and uncontended shard locks skip the futex round
 * trips the single hot lock pays for.
 *
 * The bench also replays a virtual-clock mixed workload (priorities,
 * deadlines, queue pressure) at several shard counts and requires
 * the ServerMetrics JSON to be byte-identical — the determinism
 * half of the PR 10 contract, enforced alongside the speed half.
 *
 * Environment:
 *   SUSHI_JSON_OUT  output path (default BENCH_frontend.json)
 *   SUSHI_FULL=1    more submits per thread (slower, less noisy)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "serve/load_gen.hh"
#include "serve/server.hh"
#include "snn/binarize.hh"
#include "snn/network.hh"

#include "bench_util.hh"

using namespace sushi;

namespace {

constexpr double kSpeedupFloor = 3.0;

snn::BinarySnn
tinyNet()
{
    snn::SnnConfig cfg;
    cfg.input = 16;
    cfg.hidden = 8;
    cfg.output = 4;
    cfg.t_steps = 3;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, 7);
    return snn::BinarySnn::fromFloat(mlp);
}

std::vector<engine::Sample>
randomSamples(std::size_t n, std::size_t dim, int t_steps,
              std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<engine::Sample> samples(n);
    for (auto &s : samples) {
        for (int t = 0; t < t_steps; ++t) {
            std::vector<std::uint8_t> f(dim);
            for (auto &v : f)
                v = rng.chance(0.4) ? 1 : 0;
            s.push_back(std::move(f));
        }
    }
    return samples;
}

/**
 * One hammer run: fill the queue to the admission bound (the batcher
 * is configured so it can never flush during the run — max_batch
 * above max_queue, effectively infinite delay knob), then time
 * `threads` x `per_thread` submit() calls that all reject QueueFull
 * at the front door.
 */
double
hammerRps(const std::shared_ptr<const engine::CompiledModel> &model,
          int shards, int threads, std::size_t per_thread,
          const std::vector<engine::Sample> &samples)
{
    serve::ServerConfig cfg;
    cfg.engine.replicas = 8; // default shard count = 8
    cfg.admission_shards = shards;
    cfg.max_queue = 2048;
    cfg.max_batch = cfg.max_queue * 4; // no size flush mid-hammer
    cfg.max_delay_ns = INT64_MAX / 2;  // no delay flush mid-hammer
    cfg.clock = serve::ClockMode::Real;
    serve::Server server(model, cfg);

    for (std::size_t i = 0; i < cfg.max_queue; ++i)
        server.submit(samples[i % samples.size()]);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> hammers;
    hammers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t)
        hammers.emplace_back([&, t] {
            for (std::size_t k = 0; k < per_thread; ++k) {
                serve::RequestOptions opts;
                opts.priority = static_cast<int>(k % 3);
                // The future is already resolved (typed rejection);
                // dropping it is the closed-loop steady state.
                server.submit(
                    samples[(static_cast<std::size_t>(t) + k) %
                            samples.size()],
                    opts);
            }
        });
    for (std::thread &h : hammers)
        h.join();
    const auto t1 = std::chrono::steady_clock::now();
    server.shutdown();

    const double secs =
        std::chrono::duration<double>(t1 - t0).count();
    const double total =
        static_cast<double>(threads) *
        static_cast<double>(per_thread);
    return secs > 0.0 ? total / secs : 0.0;
}

/** Best-of-N to shave scheduler noise off the closed-loop number. */
double
bestHammerRps(
    const std::shared_ptr<const engine::CompiledModel> &model,
    int shards, int threads, std::size_t per_thread,
    const std::vector<engine::Sample> &samples, int trials,
    std::vector<double> *all)
{
    double best = 0.0;
    for (int i = 0; i < trials; ++i) {
        const double rps =
            hammerRps(model, shards, threads, per_thread, samples);
        all->push_back(rps);
        if (rps > best)
            best = rps;
    }
    return best;
}

/** Virtual-clock mixed workload at a given shard count; returns the
 *  metrics JSON for the byte-identity check. */
std::string
replayJson(const std::shared_ptr<const engine::CompiledModel> &model,
           int shards, const std::vector<engine::Sample> &samples)
{
    serve::ServerConfig cfg;
    cfg.engine.replicas = 3;
    cfg.max_batch = 4;
    cfg.max_delay_ns = 40'000;
    cfg.max_queue = 24;
    cfg.admission_shards = shards;
    cfg.max_threads = 2;
    cfg.clock = serve::ClockMode::Virtual;
    cfg.retry.max_retries = 2;
    cfg.hedge.priority_floor = 2;
    cfg.hedge.delay_ns = 30'000;
    cfg.chaos.seed = 21;
    cfg.chaos.crash_rate = 0.05;
    cfg.chaos.fault_rate = 0.04;
    cfg.chaos.crash_hold_ns = 2'000'000;

    serve::LoadGenConfig lg;
    lg.rate_rps = 150'000.0;
    lg.requests = 400;
    lg.sample_pool = samples.size();
    lg.seed = 1234;
    lg.deadline_ns = 600'000;
    lg.priorities = 3;

    serve::Server server(model, cfg);
    for (const auto &a : serve::poissonArrivals(lg))
        server.submitAt(a.arrival_ns, samples[a.sample_index],
                        a.opts);
    server.runVirtual();
    return server.metrics().toJson();
}

} // namespace

int
main()
{
    const bool full = benchutil::envFlag("SUSHI_FULL");
    const int threads = 8;
    const std::size_t per_thread = full ? 20'000 : 4'000;
    const int trials = 3;

    compiler::ChipConfig chip;
    chip.n = 8;
    chip.sc_per_npe = 10;
    auto model = engine::CompiledModel::compile(tinyNet(), chip);
    const auto samples = randomSamples(8, 16, 3, 5);

    std::printf("=== Sharded front-end submit throughput ===\n");
    std::printf("%d submit threads x %zu calls, queue pinned at the "
                "admission bound, best of %d trials\n",
                threads, per_thread, trials);

    std::vector<double> s1_trials;
    std::vector<double> sharded_trials;
    const double s1_rps = bestHammerRps(
        model, 1, threads, per_thread, samples, trials, &s1_trials);
    const double sharded_rps =
        bestHammerRps(model, 0, threads, per_thread, samples, trials,
                      &sharded_trials);
    const double speedup =
        s1_rps > 0.0 ? sharded_rps / s1_rps : 0.0;

    std::printf("%-24s %14.0f submits/s\n", "single lock (S=1)",
                s1_rps);
    std::printf("%-24s %14.0f submits/s\n", "sharded (S=8, default)",
                sharded_rps);
    std::printf("speedup %.2fx (floor %.1fx): %s\n", speedup,
                kSpeedupFloor,
                speedup >= kSpeedupFloor ? "pass" : "FAIL");

    // --- Determinism half of the contract -------------------------
    const std::string reference = replayJson(model, 1, samples);
    bool identical = true;
    for (int shards : {2, 3, 8})
        identical &=
            replayJson(model, shards, samples) == reference;
    std::printf("virtual replay byte-identical across shard "
                "counts: %s\n",
                identical ? "yes" : "NO");

    JsonWriter w;
    w.field("threads", threads);
    w.field("per_thread_submits", std::uint64_t{per_thread});
    w.field("trials", trials);
    w.field("max_queue", std::uint64_t{2048});
    w.field("single_lock_rps", s1_rps);
    w.field("sharded_rps", sharded_rps);
    w.field("speedup", speedup);
    w.field("speedup_floor", kSpeedupFloor);
    w.field("speedup_ok", speedup >= kSpeedupFloor);
    w.field("replay_byte_identical", identical);
    w.beginArray("single_lock_trials_rps");
    for (double rps : s1_trials) {
        w.beginObject();
        w.field("rps", rps);
        w.endObject();
    }
    w.endArray();
    w.beginArray("sharded_trials_rps");
    for (double rps : sharded_trials) {
        w.beginObject();
        w.field("rps", rps);
        w.endObject();
    }
    w.endArray();
    const std::string json = w.finish();

    const char *env_path = std::getenv("SUSHI_JSON_OUT");
    const std::string path =
        env_path != nullptr && env_path[0] != '\0'
            ? env_path
            : "BENCH_frontend.json";
    if (!JsonWriter::writeFile(path, json)) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    std::printf("JSON written to %s\n", path.c_str());

    return speedup >= kSpeedupFloor && identical ? 0 : 1;
}
