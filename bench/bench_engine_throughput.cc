/**
 * @file
 * Batched multi-chip inference throughput: samples/sec vs replica
 * count on the synth-digits workload, plus the engine's determinism
 * contract (byte-identical merged stats across thread counts).
 *
 * Two throughput figures are recorded per replica count:
 *  - modelled system throughput: the replicas are physically
 *    independent chips, so batch latency is the slowest replica's
 *    modelled chip time (EngineRun::modeledMakespanPs). This is the
 *    "as fast as the hardware allows" number and scales with the
 *    replica count regardless of the simulation host.
 *  - host throughput: wall-clock samples/sec of the simulation
 *    itself, which scales with the host's core count.
 *
 * Environment:
 *   SUSHI_JSON_OUT  output path (default BENCH_engine.json)
 *   SUSHI_FULL=1    more samples (slower)
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "common/stats.hh"
#include "data/synth_digits.hh"
#include "engine/inference_engine.hh"
#include "snn/binarize.hh"

#include "bench_util.hh"

using namespace sushi;

int
main()
{
    const std::size_t samples_n =
        benchutil::envFlag("SUSHI_FULL") ? 1024 : 256;
    const int t_steps = 5;

    // The workload: synth-digits images through a binarized MLP on
    // the 16x16-mesh chip. Throughput is weight-independent, so the
    // network is binarized from a fresh (untrained) float model.
    auto data = data::synthDigits(samples_n, 42);
    snn::SnnConfig net_cfg;
    net_cfg.hidden = 96;
    net_cfg.t_steps = t_steps;
    net_cfg.stateless = true;
    snn::SnnMlp mlp(net_cfg, 7);
    auto bin = snn::BinarySnn::fromFloat(mlp);

    compiler::ChipConfig chip_cfg;
    chip_cfg.n = 16;
    chip_cfg.sc_per_npe = 10;

    // Compiled once, shared by every replica of every engine below.
    auto model = engine::ModelCache::shared().get(bin, chip_cfg);
    const auto samples =
        engine::encodeSamples(data.images, t_steps, 99);

    std::printf("=== Batched multi-chip inference throughput ===\n");
    std::printf("%zu synth-digit samples, %d time steps, %d-wide "
                "mesh, %u host workers\n",
                samples.size(), t_steps, chip_cfg.n,
                parallelWorkers());
    std::printf("%-9s %14s %16s %14s %16s\n", "replicas",
                "host smp/s", "host speedup", "chip smp/s",
                "chip speedup");

    struct Point
    {
        int replicas;
        double host_sps;
        double chip_sps;
    };
    std::vector<Point> points;
    double host_base = 0.0;
    double chip_base = 0.0;
    std::vector<int> prev_counts;
    bool results_stable = true;
    for (int replicas : {1, 2, 4, 8}) {
        engine::EngineConfig ecfg;
        ecfg.replicas = replicas;
        engine::InferenceEngine eng(model, ecfg);
        const auto run = eng.run(samples);

        const double host_sps =
            static_cast<double>(samples.size()) /
            (run.wall_seconds > 0 ? run.wall_seconds : 1e-9);
        const double makespan_s = run.modeledMakespanPs() * 1e-12;
        const double chip_sps =
            static_cast<double>(samples.size()) /
            (makespan_s > 0 ? makespan_s : 1e-30);
        if (host_base == 0.0) {
            host_base = host_sps;
            chip_base = chip_sps;
        }
        points.push_back({replicas, host_sps, chip_sps});
        std::printf("%-9d %14.1f %15.2fx %14.3g %15.2fx\n", replicas,
                    host_sps, host_sps / host_base, chip_sps,
                    chip_sps / chip_base);

        // Every replica count must produce identical per-sample
        // results.
        std::vector<int> flat;
        for (const auto &s : run.samples)
            flat.insert(flat.end(), s.counts.begin(),
                        s.counts.end());
        if (prev_counts.empty())
            prev_counts = std::move(flat);
        else if (flat != prev_counts)
            results_stable = false;
    }

    // Determinism: byte-identical merged stats across thread counts
    // at a fixed replica count.
    std::string digest;
    bool deterministic = true;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        engine::EngineConfig ecfg;
        ecfg.replicas = 8;
        ecfg.max_threads = threads;
        engine::InferenceEngine eng(model, ecfg);
        const auto run = eng.run(samples);
        const std::string json = engine::statsJson(run.merged);
        if (digest.empty())
            digest = json;
        else if (json != digest)
            deterministic = false;
    }
    std::printf("merged stats byte-identical across thread counts: "
                "%s\n",
                deterministic ? "yes" : "NO");
    std::printf("per-sample results identical across replica "
                "counts: %s\n",
                results_stable ? "yes" : "NO");

    const double chip_speedup_8 = points.back().chip_sps / chip_base;
    const double host_speedup_8 = points.back().host_sps / host_base;
    std::printf("8-replica speedup: %.2fx modelled chip throughput, "
                "%.2fx host wall-clock\n",
                chip_speedup_8, host_speedup_8);

    JsonWriter w;
    w.field("workload", "synth_digits");
    w.field("samples", std::uint64_t{samples_n});
    w.field("t_steps", t_steps);
    w.field("mesh", chip_cfg.n);
    w.field("host_workers", static_cast<int>(parallelWorkers()));
    w.field("deterministic_across_threads", deterministic);
    w.field("results_stable_across_replicas", results_stable);
    w.beginArray("samples_per_sec");
    for (const Point &p : points) {
        w.beginObject();
        w.field("replicas", p.replicas);
        w.field("samples_per_sec", p.chip_sps);
        w.field("speedup", p.chip_sps / chip_base);
        w.field("host_samples_per_sec", p.host_sps);
        w.field("host_speedup", p.host_sps / host_base);
        w.endObject();
    }
    w.endArray();
    w.field("speedup_at_8_replicas", chip_speedup_8);
    w.field("host_speedup_at_8_replicas", host_speedup_8);
    w.rawField("merged_stats", digest);
    const std::string json = w.finish();

    const char *env_path = std::getenv("SUSHI_JSON_OUT");
    const std::string path =
        env_path != nullptr && env_path[0] != '\0'
            ? env_path
            : "BENCH_engine.json";
    if (!JsonWriter::writeFile(path, json)) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    std::printf("JSON written to %s\n", path.c_str());

    const bool ok =
        deterministic && results_stable && chip_speedup_8 >= 3.0;
    return ok ? 0 : 1;
}
