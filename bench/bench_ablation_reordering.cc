/**
 * @file
 * Ablation of the synapse reordering optimization (paper Sec. 4.2.2):
 * reordering lets inputs of adjacent batches that share a cross
 * structure reuse the same NDRO configuration, reducing weight
 * reload events.
 */

#include <cstdio>

#include "bench_util.hh"
#include "compiler/driver.hh"
#include "data/synth_digits.hh"
#include "snn/train.hh"

using namespace sushi;

int
main()
{
    const bool full = benchutil::envFlag("SUSHI_FULL");
    const std::size_t hidden = full ? 800 : 128;
    const std::size_t train_n = full ? 8000 : 3000;

    auto train = data::synthDigits(train_n, 42);
    snn::SnnConfig cfg;
    cfg.hidden = hidden;
    cfg.t_steps = 5;
    cfg.stateless = true;
    snn::SnnMlp net(cfg, 1);
    snn::TrainConfig tc;
    tc.epochs = 2;
    snn::Trainer(net, tc).fit(train.images, train.labels);
    auto bin = snn::BinarySnn::fromFloat(net);

    compiler::ChipConfig plain;
    plain.n = 16;
    plain.bucketing.reorder = false;
    compiler::ChipConfig sorted = plain;
    sorted.bucketing.reorder = true;

    // The legacy driver preset is the paper's schedule; the scored
    // preset lets the driver pick the cheaper fitting candidate per
    // layer (Sec. 4.2.2 reload cost as the score).
    const compiler::CompilerDriver legacy(
        compiler::DriverOptions::legacy());
    compiler::DriverOptions scored_opts;
    scored_opts.score_schedules = true;
    const compiler::CompilerDriver scored(scored_opts);

    auto plain_net = legacy.compileSingle(bin, plain);
    auto sorted_net = legacy.compileSingle(bin, sorted);
    auto scored_net = scored.compileSingle(bin, sorted);

    std::printf("=== Ablation: synapse reordering (Sec. 4.2.2) "
                "===\n");
    std::printf("%-8s %18s %18s %10s\n", "layer", "reloads (plain)",
                "reloads (sorted)", "saved");
    for (std::size_t l = 0; l < plain_net.layers.size(); ++l) {
        const long a = plain_net.layers[l].switch_reloads;
        const long b = sorted_net.layers[l].switch_reloads;
        std::printf("%-8zu %18ld %18ld %9.1f%%\n", l, a, b,
                    a ? 100.0 * (a - b) / a : 0.0);
    }
    const long ta = plain_net.totalReloads();
    const long tb = sorted_net.totalReloads();
    std::printf("%-8s %18ld %18ld %9.1f%%\n", "total", ta, tb,
                ta ? 100.0 * (ta - tb) / ta : 0.0);
    std::printf("driver's reload-scored selection: %ld reloads "
                "(first-fit rule: %ld)\n",
                scored_net.totalReloads(), tb);
    std::printf("chip budget: %.1f%% of the JJ cap used\n",
                100.0 * sorted_net.budget.jjUtilisation());
    std::printf("paper: reordering + bucketing reduce reload "
                "frequency so reloading stays ~20%% of inference "
                "time\n");
    return scored_net.totalReloads() <= tb ? 0 : 1;
}
