/**
 * @file
 * End-to-end integration test: the complete Fig. 12 workflow —
 * synthetic data, binarization-aware training, XNOR binarization,
 * bit-slice compilation, behavioural-chip inference, and the
 * oscilloscope-style decode — wired together exactly as the examples
 * and benches use it.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "chip/sushi_chip.hh"
#include "data/synth_digits.hh"
#include "snn/model_io.hh"
#include "snn/train.hh"

namespace sushi {
namespace {

TEST(Integration, TrainCompileInferOnChip)
{
    // Small but real: 3,000 training digits, 96 hidden units.
    auto all = data::synthDigits(3200, 21);
    auto [test, train] = data::split(all, 200);

    snn::SnnConfig cfg;
    cfg.hidden = 96;
    cfg.t_steps = 5;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, 4);
    snn::TrainConfig tc;
    tc.epochs = 2;
    auto stats = snn::Trainer(mlp, tc).fit(train.images,
                                           train.labels);
    EXPECT_LT(stats.epoch_loss.back(), stats.epoch_loss.front());

    auto bin = snn::BinarySnn::fromFloat(mlp);

    // Round-trip the model through the serialization format, as a
    // deployment would.
    auto restored =
        snn::binarySnnFromString(snn::binarySnnToString(bin));

    compiler::ChipConfig chip_cfg;
    chip_cfg.n = 16;
    chip_cfg.sc_per_npe = 10;
    auto compiled = compiler::compileNetwork(restored, chip_cfg);
    chip::SushiChip chip(chip_cfg);

    snn::PoissonEncoder enc(99);
    std::size_t hits = 0, sw_agree = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
        std::vector<float> pix(test.images.row(i),
                               test.images.row(i) + 784);
        snn::Tensor fr = enc.encode(pix, cfg.t_steps);
        std::vector<std::vector<std::uint8_t>> frames;
        for (int t = 0; t < cfg.t_steps; ++t) {
            std::vector<std::uint8_t> f(784);
            for (std::size_t d = 0; d < 784; ++d)
                f[d] = fr.at(static_cast<std::size_t>(t), d) > 0.5f;
            frames.push_back(std::move(f));
        }
        const int hw = chip.predict(compiled, frames);
        const int sw = restored.predict(frames);
        hits += hw == test.labels[i] ? 1 : 0;
        sw_agree += hw == sw ? 1 : 0;
    }
    const double acc =
        static_cast<double>(hits) / static_cast<double>(test.size());
    // Far above the 10 % chance level even at this small budget.
    EXPECT_GT(acc, 0.7);
    // The chip must agree with the software binary model at the
    // ample 10-SC state budget.
    EXPECT_EQ(sw_agree, test.size());
    EXPECT_EQ(chip.stats().underflow_spikes, 0u);
    EXPECT_GT(chip.stats().synaptic_ops, 0u);
}

TEST(Integration, ChipStatsFeedPerfModels)
{
    // The measured chip activity plugs into the SOPS metric the
    // paper benchmarks with: sops = ops / time.
    auto all = data::synthDigits(60, 31);
    snn::SnnConfig cfg;
    cfg.hidden = 32;
    cfg.t_steps = 5;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, 6);
    auto bin = snn::BinarySnn::fromFloat(mlp);
    compiler::ChipConfig chip_cfg;
    chip_cfg.n = 16;
    auto compiled = compiler::compileNetwork(bin, chip_cfg);
    chip::SushiChip chip(chip_cfg);

    snn::PoissonEncoder enc(99);
    for (std::size_t i = 0; i < all.size(); ++i) {
        std::vector<float> pix(all.images.row(i),
                               all.images.row(i) + 784);
        snn::Tensor fr = enc.encode(pix, cfg.t_steps);
        std::vector<std::vector<std::uint8_t>> frames;
        for (int t = 0; t < cfg.t_steps; ++t) {
            std::vector<std::uint8_t> f(784);
            for (std::size_t d = 0; d < 784; ++d)
                f[d] = fr.at(static_cast<std::size_t>(t), d) > 0.5f;
            frames.push_back(std::move(f));
        }
        chip.inferCounts(compiled, frames);
    }
    const auto &st = chip.stats();
    EXPECT_EQ(st.frames, all.size());
    EXPECT_GT(st.est_time_ps, 0.0);
    const double sops = static_cast<double>(st.synaptic_ops) /
                        (st.est_time_ps * 1e-12);
    // Sustained throughput is positive and below the 16x16 peak.
    EXPECT_GT(sops, 0.0);
    EXPECT_LT(sops, 1.4e12);
    // Reload time is a minority share but nonzero (Sec. 4.2.2).
    EXPECT_GT(st.reload_time_ps, 0.0);
    EXPECT_LT(st.reload_time_ps, st.est_time_ps);
}

} // namespace
} // namespace sushi
