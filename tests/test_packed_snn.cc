/**
 * @file
 * Differential-fuzzing parity harness for the bit-packed
 * XNOR/popcount kernel layer (snn/packed) and every call site wired
 * behind the SUSHI_PACKED toggle:
 *
 *  - packed vs scalar-oracle kernels over hundreds of seeded random
 *    shapes (ragged in_dim % 64 in {0, 1, 63}, batch = 1, varying
 *    thread counts) — bit-identical spikes and floats;
 *  - BinarySnn::stepForward and SnnMlp::forwardWith toggle on/off —
 *    byte-identical results, including the fall-back cases (zero
 *    weights, non-binary structure) where packing must refuse;
 *  - SushiChip closed-form counter vs the Npe-object oracle,
 *    including wrap-around borrows (tiny counters), multi-pulse
 *    extras, degraded-mode remaps, and threaded evaluation;
 *  - InferenceEngine / Server virtual-clock replay with packed
 *    kernels forced on vs off — byte-identical stats/metrics JSON;
 *  - binarize deterministic-rounding fixes (sign of zero, NaN,
 *    denormal alpha, astronomically large raw thresholds).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <future>
#include <limits>
#include <vector>

#include "chip/sushi_chip.hh"
#include "common/rng.hh"
#include "compiler/compile.hh"
#include "engine/inference_engine.hh"
#include "serve/server.hh"
#include "snn/binarize.hh"
#include "snn/network.hh"
#include "snn/packed.hh"
#include "snn/train.hh"

namespace sushi {
namespace {

using snn::packed::Backend;
using snn::packed::PackedActivations;
using snn::packed::PackedLayer;

/** Restores the process-wide packed toggle on scope exit, so a test
 *  that flips it can never leak state into later tests. */
struct ToggleGuard
{
    bool prev = snn::packed::enabled();
    ~ToggleGuard() { snn::packed::setEnabled(prev); }
};

snn::BinarySnn
tinyNet(std::size_t input, std::size_t hidden, std::size_t output,
        int t_steps, std::uint64_t seed)
{
    snn::SnnConfig cfg;
    cfg.input = input;
    cfg.hidden = hidden;
    cfg.output = output;
    cfg.t_steps = t_steps;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, seed);
    return snn::BinarySnn::fromFloat(mlp);
}

std::vector<std::vector<std::uint8_t>>
randomFrames(std::size_t dim, int t_steps, double density,
             std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<std::uint8_t>> frames;
    for (int t = 0; t < t_steps; ++t) {
        std::vector<std::uint8_t> f(dim);
        for (auto &b : f)
            b = rng.chance(density) ? 1 : 0;
        frames.push_back(std::move(f));
    }
    return frames;
}

/** in_dim sampler forcing every lane-tail class the kernels handle:
 *  exact multiples of 64 plus the 1-past and 1-short ragged tails. */
std::size_t
sampleInDim(int c, Rng &rng)
{
    switch (c % 4) {
    case 0:
        return 64 * (1 + rng.below(3)); // % 64 == 0
    case 1:
        return 64 * rng.below(3) + 1; // % 64 == 1
    case 2:
        return 64 * rng.below(3) + 63; // % 64 == 63
    default:
        return 1 + rng.below(200);
    }
}

TEST(PackedFuzz, SpikeForwardDifferential)
{
    const int kThreads[] = {0, 1, 2, 8};
    for (int c = 0; c < 240; ++c) {
        Rng rng(1000 + static_cast<std::uint64_t>(c));
        const std::size_t in_dim = sampleInDim(c, rng);
        const std::size_t out_dim = 1 + rng.below(40);
        const std::size_t batch = c % 5 == 0 ? 1 : 1 + rng.below(6);
        const int threads = kThreads[rng.below(4)];

        std::vector<std::vector<std::int8_t>> w(out_dim);
        std::vector<int> thr(out_dim);
        for (std::size_t o = 0; o < out_dim; ++o) {
            w[o].resize(in_dim);
            for (auto &v : w[o])
                v = rng.chance(0.5) ? 1 : -1;
            thr[o] = static_cast<int>(
                rng.range(-static_cast<std::int64_t>(in_dim) - 1,
                          static_cast<std::int64_t>(in_dim) + 1));
        }
        const PackedLayer layer = PackedLayer::fromSigned(w, thr);
        ASSERT_TRUE(layer.packable()) << "case " << c;

        std::vector<std::vector<std::uint8_t>> act(batch);
        std::vector<const std::uint8_t *> rows(batch);
        for (std::size_t b = 0; b < batch; ++b) {
            act[b].resize(in_dim);
            for (auto &v : act[b])
                v = rng.chance(rng.uniform()) ? 1 : 0;
            rows[b] = act[b].data();
        }
        PackedActivations x;
        snn::packed::packRows(rows.data(), batch, in_dim, x);

        std::vector<std::uint8_t> fast(batch * out_dim, 9);
        std::vector<std::uint8_t> oracle(batch * out_dim, 9);
        snn::packed::spikeForward(layer, x, fast.data(),
                                  Backend::Packed, threads);
        snn::packed::spikeForward(layer, x, oracle.data(),
                                  Backend::Scalar, 1);
        ASSERT_EQ(fast, oracle) << "case " << c;

        // Independent plain-int reference, straight off the signed
        // weights — catches a bug shared by both kernel backends.
        for (std::size_t b = 0; b < batch; ++b) {
            for (std::size_t o = 0; o < out_dim; ++o) {
                int dot = 0;
                for (std::size_t i = 0; i < in_dim; ++i)
                    if (act[b][i])
                        dot += w[o][i];
                const std::uint8_t want = dot >= thr[o] ? 1 : 0;
                ASSERT_EQ(fast[b * out_dim + o], want)
                    << "case " << c << " b " << b << " o " << o;
            }
        }
    }
}

TEST(PackedFuzz, EffectiveForwardDifferential)
{
    const int kThreads[] = {0, 1, 2, 8};
    for (int c = 0; c < 120; ++c) {
        Rng rng(5000 + static_cast<std::uint64_t>(c));
        const std::size_t in_dim = sampleInDim(c, rng);
        const std::size_t out_dim = 1 + rng.below(24);
        const std::size_t batch = c % 5 == 0 ? 1 : 1 + rng.below(5);
        const int threads = kThreads[rng.below(4)];

        snn::Tensor w(out_dim, in_dim);
        std::vector<float> bias(out_dim);
        for (std::size_t o = 0; o < out_dim; ++o) {
            const float alpha =
                static_cast<float>(rng.uniform(0.01, 4.0));
            float *row = w.row(o);
            for (std::size_t i = 0; i < in_dim; ++i)
                row[i] = rng.chance(0.5) ? alpha : -alpha;
            bias[o] = static_cast<float>(rng.uniform(-2.0, 2.0));
        }
        const PackedLayer layer = PackedLayer::fromEffective(w, bias);
        ASSERT_TRUE(layer.packable()) << "case " << c;

        snn::Tensor x(batch, in_dim);
        for (std::size_t i = 0; i < x.size(); ++i)
            x.data()[i] = rng.chance(0.5) ? 1.0f : 0.0f;
        PackedActivations px;
        ASSERT_TRUE(snn::packed::packFloatRows(x, px));

        snn::Tensor fast(batch, out_dim), oracle(batch, out_dim);
        snn::packed::effectiveForward(layer, px, fast,
                                      Backend::Packed, threads);
        snn::packed::effectiveForward(layer, px, oracle,
                                      Backend::Scalar, 1);
        ASSERT_EQ(std::memcmp(fast.data(), oracle.data(),
                              fast.size() * sizeof(float)),
                  0)
            << "case " << c;
    }
}

TEST(PackedLayer, RejectsNonBinaryInputs)
{
    // A zero int8 weight is not packable.
    std::vector<std::vector<std::int8_t>> w = {{1, -1, 0}};
    EXPECT_FALSE(PackedLayer::fromSigned(w, {0}).packable());

    // Non-uniform magnitude within a row is not packable.
    snn::Tensor e(1, 3);
    e.at(0, 0) = 0.5f;
    e.at(0, 1) = -0.5f;
    e.at(0, 2) = 0.25f;
    EXPECT_FALSE(
        PackedLayer::fromEffective(e, {0.0f}).packable());

    // All-zero and NaN rows are not packable.
    snn::Tensor z(1, 3);
    EXPECT_FALSE(PackedLayer::fromEffective(z, {0.0f}).packable());
    snn::Tensor n(1, 3);
    n.at(0, 0) = std::numeric_limits<float>::quiet_NaN();
    EXPECT_FALSE(PackedLayer::fromEffective(n, {0.0f}).packable());

    // Non-spike float activations refuse to pack.
    snn::Tensor x(1, 3);
    x.at(0, 1) = 0.5f;
    PackedActivations px;
    EXPECT_FALSE(snn::packed::packFloatRows(x, px));
}

TEST(PackedToggle, SetterControlsBackend)
{
    ToggleGuard guard;
    snn::packed::setEnabled(false);
    EXPECT_FALSE(snn::packed::enabled());
    EXPECT_EQ(snn::packed::activeBackend(), Backend::Scalar);
    snn::packed::setEnabled(true);
    EXPECT_TRUE(snn::packed::enabled());
    EXPECT_EQ(snn::packed::activeBackend(), Backend::Packed);
}

TEST(BinarySnnParity, ToggleByteIdentical)
{
    ToggleGuard guard;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        const auto net = tinyNet(70, 12, 4, 3, 60 + seed);
        ASSERT_TRUE(net.packedReady());
        ASSERT_EQ(net.packedLayers().size(), net.layers().size());
        const auto frames = randomFrames(70, 3, 0.4, 200 + seed);

        snn::packed::setEnabled(true);
        const auto on_counts = net.forwardCounts(frames);
        const auto on_step = net.stepForward(frames[0]);
        snn::packed::setEnabled(false);
        const auto off_counts = net.forwardCounts(frames);
        const auto off_step = net.stepForward(frames[0]);

        EXPECT_EQ(on_counts, off_counts) << "seed " << seed;
        EXPECT_EQ(on_step, off_step) << "seed " << seed;
    }
}

TEST(BinarySnnParity, ZeroWeightKeepsScalarPath)
{
    ToggleGuard guard;
    // Hand-built layer with a zero weight: packing must refuse and
    // the toggle must have no effect on results.
    snn::BinaryLayer layer;
    layer.weights = {{1, 0, -1, 1}, {-1, -1, 1, 1}};
    layer.thresholds = {1, 0};
    auto net = snn::BinarySnn::fromLayers({layer}, 2);
    EXPECT_FALSE(net.packedReady());

    const auto frames = randomFrames(4, 2, 0.6, 77);
    snn::packed::setEnabled(true);
    const auto on = net.forwardCounts(frames);
    snn::packed::setEnabled(false);
    const auto off = net.forwardCounts(frames);
    EXPECT_EQ(on, off);
}

TEST(TrainerParity, ForwardWithToggleByteIdentical)
{
    ToggleGuard guard;
    snn::SnnConfig cfg;
    cfg.input = 66; // ragged lane tail
    cfg.hidden = 9;
    cfg.output = 3;
    cfg.t_steps = 3;
    snn::SnnMlp net(cfg, 17);
    const snn::Tensor e1 = snn::binaryEffectiveWeights(net.w1);
    const snn::Tensor e2 = snn::binaryEffectiveWeights(net.w2);

    Rng rng(91);
    std::vector<snn::Tensor> frames;
    for (int t = 0; t < cfg.t_steps; ++t) {
        snn::Tensor f(5, cfg.input);
        for (std::size_t i = 0; i < f.size(); ++i)
            f.data()[i] = rng.chance(0.5) ? 1.0f : 0.0f;
        frames.push_back(std::move(f));
    }

    snn::ForwardTrace tr_on, tr_off;
    snn::packed::setEnabled(true);
    const snn::Tensor on = net.forwardWith(e1, e2, frames, &tr_on);
    snn::packed::setEnabled(false);
    const snn::Tensor off = net.forwardWith(e1, e2, frames, &tr_off);

    ASSERT_EQ(on.size(), off.size());
    EXPECT_EQ(std::memcmp(on.data(), off.data(),
                          on.size() * sizeof(float)),
              0);
    for (int t = 0; t < cfg.t_steps; ++t) {
        const auto ti = static_cast<std::size_t>(t);
        EXPECT_EQ(std::memcmp(tr_on.v1_pre[ti].data(),
                              tr_off.v1_pre[ti].data(),
                              tr_on.v1_pre[ti].size() * sizeof(float)),
                  0)
            << "t " << t;
        EXPECT_EQ(std::memcmp(tr_on.s2[ti].data(),
                              tr_off.s2[ti].data(),
                              tr_on.s2[ti].size() * sizeof(float)),
                  0)
            << "t " << t;
    }
}

TEST(TrainerParity, TrainingRunToggleByteIdentical)
{
    ToggleGuard guard;
    snn::SnnConfig cfg;
    cfg.input = 12;
    cfg.hidden = 8;
    cfg.output = 3;
    cfg.t_steps = 2;

    Rng rng(3);
    snn::Tensor images(24, cfg.input);
    for (std::size_t i = 0; i < images.size(); ++i)
        images.data()[i] = static_cast<float>(rng.uniform());
    std::vector<int> labels(24);
    for (auto &l : labels)
        l = static_cast<int>(rng.below(3));

    snn::TrainConfig tcfg;
    tcfg.epochs = 2;
    tcfg.batch = 8;
    tcfg.binary_aware = true;

    auto trainOnce = [&](bool packed_on) {
        snn::packed::setEnabled(packed_on);
        snn::SnnMlp net(cfg, 29);
        snn::Trainer trainer(net, tcfg);
        const snn::TrainStats stats = trainer.fit(images, labels);
        return std::make_tuple(net.w1, net.w2, stats);
    };
    const auto [w1_on, w2_on, st_on] = trainOnce(true);
    const auto [w1_off, w2_off, st_off] = trainOnce(false);

    EXPECT_EQ(std::memcmp(w1_on.data(), w1_off.data(),
                          w1_on.size() * sizeof(float)),
              0);
    EXPECT_EQ(std::memcmp(w2_on.data(), w2_off.data(),
                          w2_on.size() * sizeof(float)),
              0);
    EXPECT_EQ(st_on.epoch_loss, st_off.epoch_loss);
    EXPECT_EQ(st_on.epoch_train_acc, st_off.epoch_train_acc);
}

void
expectStatsEq(const chip::InferenceStats &a,
              const chip::InferenceStats &b, int trial)
{
    EXPECT_EQ(a.frames, b.frames) << "trial " << trial;
    EXPECT_EQ(a.time_steps, b.time_steps) << "trial " << trial;
    EXPECT_EQ(a.input_pulses, b.input_pulses) << "trial " << trial;
    EXPECT_EQ(a.synaptic_ops, b.synaptic_ops) << "trial " << trial;
    EXPECT_EQ(a.output_spikes, b.output_spikes) << "trial " << trial;
    EXPECT_EQ(a.underflow_spikes, b.underflow_spikes)
        << "trial " << trial;
    EXPECT_EQ(a.multi_fires, b.multi_fires) << "trial " << trial;
    EXPECT_EQ(a.reload_events, b.reload_events) << "trial " << trial;
    EXPECT_EQ(a.failed_npes, b.failed_npes) << "trial " << trial;
    EXPECT_EQ(a.remapped_neurons, b.remapped_neurons)
        << "trial " << trial;
    EXPECT_EQ(a.degraded_passes, b.degraded_passes)
        << "trial " << trial;
    EXPECT_EQ(a.est_time_ps, b.est_time_ps) << "trial " << trial;
    EXPECT_EQ(a.reload_time_ps, b.reload_time_ps)
        << "trial " << trial;
    EXPECT_EQ(a.dynamic_energy_j, b.dynamic_energy_j)
        << "trial " << trial;
}

TEST(ChipParity, StepLayerFastVsOracleFuzz)
{
    for (int trial = 0; trial < 40; ++trial) {
        Rng rng(7000 + static_cast<std::uint64_t>(trial));
        const auto net = tinyNet(5 + rng.below(36), 4 + rng.below(13),
                                 2 + rng.below(5),
                                 1 + static_cast<int>(rng.below(4)),
                                 8000 + static_cast<std::uint64_t>(
                                            trial));
        compiler::ChipConfig ccfg;
        ccfg.n = rng.chance(0.5) ? 4 : 8;
        // Tiny counters force wrap-around carries and borrows.
        ccfg.sc_per_npe = 3 + static_cast<int>(rng.below(3));
        const auto compiled = compiler::compileNetwork(net, ccfg);

        chip::SushiChip fast(ccfg), oracle(ccfg);
        fast.setPackedKernels(true);
        oracle.setPackedKernels(false);
        EXPECT_TRUE(fast.packedKernels());
        EXPECT_FALSE(oracle.packedKernels());
        if (trial % 4 == 1)
            fast.setSimThreads(8); // thread-count invariance too
        if (trial % 3 == 0) {
            const int slot = static_cast<int>(rng.below(
                static_cast<std::uint64_t>(ccfg.n)));
            fast.markNpeFailed(slot);
            oracle.markNpeFailed(slot);
        }

        for (std::size_t l = 0; l < compiled.layers.size(); ++l) {
            const auto &blayer = net.layers()[l];
            for (int rep = 0; rep < 4; ++rep) {
                chip::PulseVector act(blayer.inDim());
                for (auto &v : act)
                    // Values > 1 exercise the multi-pulse extras.
                    v = static_cast<std::uint16_t>(rng.below(4));
                const auto a =
                    fast.stepLayer(compiled.layers[l], blayer, act);
                const auto b = oracle.stepLayer(compiled.layers[l],
                                                blayer, act);
                ASSERT_EQ(a, b) << "trial " << trial << " layer "
                                << l << " rep " << rep;
            }
        }
        expectStatsEq(fast.stats(), oracle.stats(), trial);
    }
}

TEST(ChipParity, InferCountsFollowsGlobalToggle)
{
    ToggleGuard guard;
    const auto net = tinyNet(24, 10, 4, 4, 41);
    compiler::ChipConfig ccfg;
    ccfg.n = 8;
    ccfg.sc_per_npe = 4;
    const auto compiled = compiler::compileNetwork(net, ccfg);
    const auto frames = randomFrames(24, 4, 0.5, 11);

    snn::packed::setEnabled(true);
    chip::SushiChip on(ccfg);
    EXPECT_TRUE(on.packedKernels());
    const auto counts_on = on.inferCounts(compiled, frames);

    snn::packed::setEnabled(false);
    chip::SushiChip off(ccfg);
    EXPECT_FALSE(off.packedKernels());
    const auto counts_off = off.inferCounts(compiled, frames);

    EXPECT_EQ(counts_on, counts_off);
    expectStatsEq(on.stats(), off.stats(), -1);
}

std::shared_ptr<const engine::CompiledModel>
smallModel()
{
    compiler::ChipConfig ccfg;
    ccfg.n = 8;
    ccfg.sc_per_npe = 10;
    return engine::CompiledModel::compile(tinyNet(16, 8, 4, 3, 7),
                                          ccfg);
}

std::vector<engine::Sample>
randomSamples(std::size_t n, std::size_t dim, int t_steps,
              std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<engine::Sample> samples(n);
    for (auto &s : samples) {
        for (int t = 0; t < t_steps; ++t) {
            std::vector<std::uint8_t> f(dim);
            for (auto &v : f)
                v = rng.chance(0.4) ? 1 : 0;
            s.push_back(std::move(f));
        }
    }
    return samples;
}

TEST(EngineParity, MergedStatsByteIdentical)
{
    const auto model = smallModel();
    const auto samples = randomSamples(24, 16, 3, 5);

    auto runWith = [&](int packed_kernels) {
        engine::EngineConfig cfg;
        cfg.replicas = 3;
        cfg.packed_kernels = packed_kernels;
        engine::InferenceEngine eng(model, cfg);
        return eng.run(samples);
    };
    const auto on = runWith(1);
    const auto off = runWith(0);

    ASSERT_EQ(on.samples.size(), off.samples.size());
    for (std::size_t i = 0; i < on.samples.size(); ++i) {
        EXPECT_EQ(on.samples[i].prediction, off.samples[i].prediction)
            << "sample " << i;
        EXPECT_EQ(on.samples[i].counts, off.samples[i].counts)
            << "sample " << i;
    }
    EXPECT_EQ(engine::statsJson(on.merged),
              engine::statsJson(off.merged));
}

TEST(ServeParity, VirtualReplayByteIdentical)
{
    const auto model = smallModel();
    const auto samples = randomSamples(20, 16, 3, 9);

    auto replay = [&](int packed_kernels) {
        serve::ServerConfig cfg;
        cfg.engine.replicas = 2;
        cfg.engine.packed_kernels = packed_kernels;
        cfg.max_batch = 4;
        cfg.max_delay_ns = 500;
        cfg.clock = serve::ClockMode::Virtual;
        serve::Server server(model, cfg);
        std::vector<std::future<serve::Response>> futs;
        for (std::size_t i = 0; i < samples.size(); ++i)
            futs.push_back(server.submitAt(
                static_cast<std::int64_t>(i) * 120, samples[i]));
        server.runVirtual();
        std::vector<int> preds;
        for (auto &f : futs)
            preds.push_back(f.get().result.prediction);
        return std::make_pair(server.metrics().toJson(),
                              std::move(preds));
    };
    const auto [json_on, preds_on] = replay(1);
    const auto [json_off, preds_off] = replay(0);
    EXPECT_EQ(preds_on, preds_off);
    EXPECT_EQ(json_on, json_off);
}

TEST(BinarizeFuzz, SignOfZeroAndNaN)
{
    snn::Tensor w(1, 4);
    w.at(0, 0) = 0.0f;
    w.at(0, 1) = -0.0f; // must binarize like +0.0f
    w.at(0, 2) = -1.0f;
    w.at(0, 3) = std::numeric_limits<float>::quiet_NaN();
    const auto layer = snn::binarizeLayer(w, {0.0f}, 1.0f);
    EXPECT_EQ(layer.weights[0][0], 1);
    EXPECT_EQ(layer.weights[0][1], 1);
    EXPECT_EQ(layer.weights[0][2], -1);
    EXPECT_EQ(layer.weights[0][3], -1);

    // Effective weights round with the identical predicate.
    const auto eff = snn::binaryEffectiveWeights(w);
    EXPECT_GT(eff.at(0, 0), 0.0f);
    EXPECT_GT(eff.at(0, 1), 0.0f);
    EXPECT_LT(eff.at(0, 2), 0.0f);
    EXPECT_LT(eff.at(0, 3), 0.0f);
}

TEST(BinarizeFuzz, ExtremeFloatsClampDeterministically)
{
    // Denormal weights: alpha is tiny but positive, the raw
    // threshold is astronomical — the clamp must keep the double ->
    // int cast defined (UBSan enforces this) and land on the
    // "never fires" sentinel in_dim + 1.
    const std::size_t in = 6;
    snn::Tensor w(2, in);
    for (std::size_t i = 0; i < in; ++i) {
        w.at(0, i) = 1.0e-42f;
        w.at(1, i) = -1.0e-42f;
    }
    const auto tiny =
        snn::binarizeLayer(w, {0.0f, 0.0f}, 1.0f);
    EXPECT_EQ(tiny.thresholds[0], static_cast<int>(in) + 1);
    EXPECT_EQ(tiny.thresholds[1], static_cast<int>(in) + 1);

    // Runaway biases push the raw threshold to +-huge; both ends
    // clamp to the always/never-fires sentinels.
    snn::Tensor w2(2, in);
    for (std::size_t i = 0; i < in; ++i) {
        w2.at(0, i) = 0.5f;
        w2.at(1, i) = 0.5f;
    }
    const auto big =
        snn::binarizeLayer(w2, {1.0e30f, -1.0e30f}, 1.0f);
    EXPECT_EQ(big.thresholds[0], -(static_cast<int>(in) + 1));
    EXPECT_EQ(big.thresholds[1], static_cast<int>(in) + 1);

    // The clamped network still runs and behaves as the sentinels
    // say: neuron 0 fires every step, neuron 1 never.
    auto net = snn::BinarySnn::fromLayers({big}, 1);
    const auto spikes =
        net.stepForward(std::vector<std::uint8_t>(in, 0));
    EXPECT_EQ(spikes[0], 1);
    EXPECT_EQ(spikes[1], 0);

    // Fuzz sweep over nasty magnitudes: every threshold must stay in
    // the defined clamp range whatever the weight/bias scales.
    Rng rng(4242);
    const float scales[] = {1.0e-42f, 1.0e-30f, 1.0e-6f, 1.0f,
                            1.0e6f,   1.0e30f,  3.4e38f};
    for (int c = 0; c < 60; ++c) {
        const std::size_t dim = 1 + rng.below(80);
        snn::Tensor wf(1, dim);
        for (std::size_t i = 0; i < dim; ++i) {
            const float s = scales[rng.below(7)];
            wf.at(0, i) = rng.chance(0.5) ? s : -s;
        }
        const float bias =
            static_cast<float>(rng.uniform(-1.0, 1.0)) *
            scales[rng.below(7)];
        const auto layer = snn::binarizeLayer(wf, {bias}, 1.0f);
        EXPECT_LE(layer.thresholds[0], static_cast<int>(dim) + 1)
            << "case " << c;
        EXPECT_GE(layer.thresholds[0], -(static_cast<int>(dim) + 1))
            << "case " << c;
    }
}

} // namespace
} // namespace sushi
