/**
 * @file
 * Tests for pulse-level conversion and waveform comparison (Fig. 14).
 */

#include <gtest/gtest.h>

#include "common/time.hh"
#include "sfq/waveform.hh"

namespace sushi::sfq {
namespace {

TEST(Waveform, PulsesToLevelsAlternate)
{
    PulseTrace pulses{100, 200, 300};
    LevelWave wave = pulsesToLevels(pulses);
    ASSERT_EQ(wave.size(), 3u);
    EXPECT_TRUE(wave[0].high);
    EXPECT_FALSE(wave[1].high);
    EXPECT_TRUE(wave[2].high);
    EXPECT_EQ(wave[0].at, 100);
}

TEST(Waveform, RoundTripPulsesLevelsPulses)
{
    PulseTrace pulses{10, 55, 300, 301, 999};
    EXPECT_EQ(levelsToPulses(pulsesToLevels(pulses)), pulses);
}

TEST(Waveform, LevelsToPulsesIgnoresRedundantSteps)
{
    LevelWave wave{{10, true}, {20, true}, {30, false}};
    PulseTrace pulses = levelsToPulses(wave);
    ASSERT_EQ(pulses.size(), 2u);
    EXPECT_EQ(pulses[0], 10);
    EXPECT_EQ(pulses[1], 30);
}

TEST(Waveform, EmptyTraceRoundTrip)
{
    EXPECT_TRUE(pulsesToLevels({}).empty());
    EXPECT_TRUE(levelsToPulses({}).empty());
}

TEST(Waveform, CompareEqualTraces)
{
    PulseTrace a{1, 2, 3};
    EXPECT_TRUE(compareTraces(a, a, 0).empty());
}

TEST(Waveform, CompareWithinTolerance)
{
    PulseTrace a{1000, 2000};
    PulseTrace b{1050, 1990};
    EXPECT_TRUE(compareTraces(a, b, 100).empty());
    EXPECT_FALSE(compareTraces(a, b, 10).empty());
}

TEST(Waveform, CompareCountMismatch)
{
    PulseTrace a{1, 2, 3};
    PulseTrace b{1, 2};
    std::string err = compareTraces(a, b, 1000);
    EXPECT_NE(err.find("count"), std::string::npos);
}

TEST(Waveform, AsciiContainsPulseMarks)
{
    PulseTrace t{0, psToTicks(100.0)};
    std::string art =
        asciiWaveform({"sig"}, {t}, psToTicks(10.0));
    EXPECT_NE(art.find("sig"), std::string::npos);
    EXPECT_NE(art.find('|'), std::string::npos);
}

TEST(Waveform, AsciiRowPerSignal)
{
    std::string art = asciiWaveform({"a", "b"}, {{0}, {0}}, 1000);
    EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 2);
}

TEST(Waveform, PulsesInWindow)
{
    PulseTrace t{10, 20, 30, 40};
    EXPECT_EQ(pulsesInWindow(t, 0, 100), 4u);
    EXPECT_EQ(pulsesInWindow(t, 15, 35), 2u);
    EXPECT_EQ(pulsesInWindow(t, 20, 21), 1u);
    EXPECT_EQ(pulsesInWindow(t, 41, 100), 0u);
}

} // namespace
} // namespace sushi::sfq
