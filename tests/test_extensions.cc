/**
 * @file
 * Tests for the extension modules: model serialization and the
 * convolutional lowering.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hh"
#include "compiler/conv_lowering.hh"
#include "snn/model_io.hh"

namespace sushi {
namespace {

snn::BinarySnn
randomNet(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<snn::BinaryLayer> layers;
    std::size_t in_dim = 12;
    for (std::size_t out_dim : {7UL, 3UL}) {
        snn::BinaryLayer layer;
        layer.weights.resize(out_dim);
        layer.thresholds.resize(out_dim);
        for (std::size_t o = 0; o < out_dim; ++o) {
            for (std::size_t i = 0; i < in_dim; ++i)
                layer.weights[o].push_back(rng.chance(0.5) ? 1
                                                           : -1);
            layer.thresholds[o] =
                static_cast<int>(rng.range(-2, 6));
        }
        layers.push_back(std::move(layer));
        in_dim = out_dim;
    }
    return snn::BinarySnn::fromLayers(std::move(layers), 5);
}

TEST(ModelIo, RoundTripPreservesEverything)
{
    auto net = randomNet(77);
    auto restored =
        snn::binarySnnFromString(snn::binarySnnToString(net));
    ASSERT_EQ(restored.layers().size(), net.layers().size());
    EXPECT_EQ(restored.tSteps(), net.tSteps());
    for (std::size_t l = 0; l < net.layers().size(); ++l) {
        EXPECT_EQ(restored.layers()[l].weights,
                  net.layers()[l].weights);
        EXPECT_EQ(restored.layers()[l].thresholds,
                  net.layers()[l].thresholds);
    }
}

TEST(ModelIo, RoundTripPreservesBehaviour)
{
    auto net = randomNet(78);
    auto restored =
        snn::binarySnnFromString(snn::binarySnnToString(net));
    Rng rng(5);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::vector<std::uint8_t>> frames;
        for (int t = 0; t < 5; ++t) {
            std::vector<std::uint8_t> f(12);
            for (auto &v : f)
                v = rng.chance(0.5);
            frames.push_back(std::move(f));
        }
        EXPECT_EQ(restored.forwardCounts(frames),
                  net.forwardCounts(frames));
    }
}

TEST(ModelIo, FormatIsHumanReadable)
{
    auto net = randomNet(79);
    const std::string text = snn::binarySnnToString(net);
    EXPECT_NE(text.find("sushi-ssnn v1"), std::string::npos);
    EXPECT_NE(text.find("t_steps 5"), std::string::npos);
    EXPECT_NE(text.find("layer 12 7"), std::string::npos);
    EXPECT_NE(text.find("row "), std::string::npos);
}

TEST(ModelIo, RejectsWrongMagic)
{
    EXPECT_EXIT(snn::binarySnnFromString("not-a-model v9\n"),
                ::testing::ExitedWithCode(1), "sushi-ssnn");
}

TEST(ModelIo, RejectsTruncated)
{
    auto net = randomNet(80);
    std::string text = snn::binarySnnToString(net);
    text.resize(text.size() / 2);
    EXPECT_EXIT(snn::binarySnnFromString(text),
                ::testing::ExitedWithCode(1), "");
}

compiler::BinaryConvSpec
randomConv(int h, int w, int ks, int kernels, int stride,
           std::uint64_t seed)
{
    Rng rng(seed);
    compiler::BinaryConvSpec spec;
    spec.in_h = h;
    spec.in_w = w;
    spec.stride = stride;
    for (int k = 0; k < kernels; ++k) {
        std::vector<std::vector<std::int8_t>> kern(
            static_cast<std::size_t>(ks));
        for (auto &row : kern)
            for (int x = 0; x < ks; ++x)
                row.push_back(rng.chance(0.5) ? 1 : -1);
        spec.kernels.push_back(std::move(kern));
        spec.thresholds.push_back(
            static_cast<int>(rng.range(0, ks)));
    }
    return spec;
}

TEST(ConvLowering, Geometry)
{
    auto spec = randomConv(8, 10, 3, 2, 1, 81);
    EXPECT_EQ(spec.outH(), 6);
    EXPECT_EQ(spec.outW(), 8);
    auto lowered = compiler::lowerConv(spec);
    EXPECT_EQ(lowered.layer.outDim(), spec.outDim());
    EXPECT_EQ(lowered.layer.inDim(), 80u);
}

TEST(ConvLowering, StrideShrinksOutput)
{
    auto spec = randomConv(9, 9, 3, 1, 2, 82);
    EXPECT_EQ(spec.outH(), 4);
    auto lowered = compiler::lowerConv(spec);
    EXPECT_EQ(lowered.layer.outDim(), 16u);
}

TEST(ConvLowering, MaskMarksExactlyKernelTaps)
{
    auto spec = randomConv(6, 6, 3, 2, 1, 83);
    auto lowered = compiler::lowerConv(spec);
    for (const auto &mask : lowered.active) {
        int taps = 0;
        for (auto m : mask)
            taps += m;
        EXPECT_EQ(taps, 9); // 3x3 kernel
    }
}

TEST(ConvLowering, LoweredMatchesDirectConvolution)
{
    Rng rng(84);
    auto spec = randomConv(7, 7, 3, 3, 2, 85);
    auto lowered = compiler::lowerConv(spec);
    const int oh = spec.outH(), ow = spec.outW();
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<std::uint8_t> frame(49);
        for (auto &v : frame)
            v = rng.chance(0.5);
        const auto spikes =
            compiler::loweredConvStep(lowered, frame);
        for (std::size_t k = 0; k < spec.kernels.size(); ++k) {
            for (int oy = 0; oy < oh; ++oy) {
                for (int ox = 0; ox < ow; ++ox) {
                    const int m = compiler::convMembrane(
                        spec, frame, static_cast<int>(k), oy, ox);
                    const std::size_t o =
                        (k * static_cast<std::size_t>(oh) + oy) *
                            static_cast<std::size_t>(ow) +
                        static_cast<std::size_t>(ox);
                    EXPECT_EQ(spikes[o],
                              m >= spec.thresholds[k] ? 1 : 0)
                        << "k=" << k << " oy=" << oy
                        << " ox=" << ox;
                }
            }
        }
    }
}

TEST(ConvLowering, SingleTapKernelIsIdentityWindow)
{
    compiler::BinaryConvSpec spec;
    spec.in_h = 3;
    spec.in_w = 3;
    spec.stride = 1;
    spec.kernels = {{{1}}};
    spec.thresholds = {1};
    auto lowered = compiler::lowerConv(spec);
    EXPECT_EQ(lowered.layer.outDim(), 9u);
    // Each output neuron fires iff its single pixel is on.
    std::vector<std::uint8_t> frame = {1, 0, 0, 0, 1, 0, 0, 0, 1};
    const auto spikes = compiler::loweredConvStep(lowered, frame);
    EXPECT_EQ(spikes,
              (std::vector<std::uint8_t>{1, 0, 0, 0, 1, 0, 0, 0,
                                         1}));
}

} // namespace
} // namespace sushi
