/**
 * @file
 * Behavioural unit tests for every RSFQ library cell, mirroring the
 * timing diagrams of paper Fig. 3.
 */

#include <gtest/gtest.h>

#include "common/time.hh"
#include "sfq/cells.hh"
#include "sfq/netlist.hh"
#include "sfq/simulator.hh"

namespace sushi::sfq {
namespace {

constexpr Tick kGap = psToTicks(50.0); // comfortably above Table 1

/** Fixture providing a simulator and netlist with safe spacing. */
class CellTest : public ::testing::Test
{
  protected:
    CellTest() : net(sim)
    {
        sim.setViolationPolicy(ViolationPolicy::Ignore);
    }

    Simulator sim;
    Netlist net;
};

TEST_F(CellTest, JtlForwardsWithDelay)
{
    Jtl &j = net.makeJtl("j");
    PulseSink &sink = net.makeSink("s");
    j.connect(0, sink, 0);
    j.inject(0, 100);
    sim.run();
    ASSERT_EQ(sink.count(), 1u);
    EXPECT_EQ(sink.pulsesSeen()[0],
              100 + cellParams(CellKind::JTL).delay);
}

TEST_F(CellTest, SplDuplicatesPulse)
{
    Spl &spl = net.makeSpl("spl");
    PulseSink &a = net.makeSink("a");
    PulseSink &b = net.makeSink("b");
    spl.connect(0, a, 0);
    spl.connect(1, b, 0);
    spl.inject(0, 0);
    spl.inject(0, kGap);
    sim.run();
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_EQ(a.pulsesSeen()[0], b.pulsesSeen()[0]);
}

TEST_F(CellTest, Spl3TriplesPulse)
{
    Spl3 &spl = net.makeSpl3("spl3");
    PulseSink *sinks[3];
    for (int i = 0; i < 3; ++i) {
        sinks[i] = &net.makeSink("s" + std::to_string(i));
        spl.connect(i, *sinks[i], 0);
    }
    spl.inject(0, 0);
    sim.run();
    for (auto *s : sinks)
        EXPECT_EQ(s->count(), 1u);
}

TEST_F(CellTest, CbMergesBothInputs)
{
    Cb &cb = net.makeCb("cb");
    PulseSink &sink = net.makeSink("s");
    cb.connect(0, sink, 0);
    cb.inject(0, 0);        // dinA
    cb.inject(1, kGap);     // dinB
    sim.run();
    EXPECT_EQ(sink.count(), 2u);
}

TEST_F(CellTest, Cb3MergesThreeInputs)
{
    Cb3 &cb = net.makeCb3("cb3");
    PulseSink &sink = net.makeSink("s");
    cb.connect(0, sink, 0);
    cb.inject(0, 0);
    cb.inject(1, kGap);
    cb.inject(2, 2 * kGap);
    sim.run();
    EXPECT_EQ(sink.count(), 3u);
}

TEST_F(CellTest, DffStoresUntilClock)
{
    // Fig. 3(e): dout pulses only when both din and clk arrived.
    Dff &dff = net.makeDff("dff");
    PulseSink &sink = net.makeSink("s");
    dff.connect(0, sink, 0);

    dff.inject(chan::kDffDin, 0);
    sim.run();
    EXPECT_EQ(sink.count(), 0u); // no clk yet
    EXPECT_TRUE(dff.stored());

    dff.inject(chan::kDffClk, sim.now() + kGap);
    sim.run();
    EXPECT_EQ(sink.count(), 1u);
    EXPECT_FALSE(dff.stored()); // destructive read
}

TEST_F(CellTest, DffClockWithoutDataIsZero)
{
    Dff &dff = net.makeDff("dff");
    PulseSink &sink = net.makeSink("s");
    dff.connect(0, sink, 0);
    dff.inject(chan::kDffClk, 0);
    dff.inject(chan::kDffClk, kGap);
    sim.run();
    EXPECT_EQ(sink.count(), 0u); // logic "0" both cycles
}

TEST_F(CellTest, DffDoubleWriteIsViolation)
{
    Dff &dff = net.makeDff("dff");
    dff.inject(chan::kDffDin, 0);
    dff.inject(chan::kDffDin, kGap);
    sim.run();
    EXPECT_GE(sim.violations(), 1u);
}

TEST_F(CellTest, NdroNonDestructiveRead)
{
    // Fig. 3(f): reads do not clear the state.
    Ndro &n = net.makeNdro("n");
    PulseSink &sink = net.makeSink("s");
    n.connect(0, sink, 0);

    n.inject(chan::kNdroDin, 0);
    n.inject(chan::kNdroClk, kGap);
    n.inject(chan::kNdroClk, 2 * kGap);
    n.inject(chan::kNdroClk, 3 * kGap);
    sim.run();
    EXPECT_EQ(sink.count(), 3u);
    EXPECT_TRUE(n.state());
}

TEST_F(CellTest, NdroResetBlocksReads)
{
    Ndro &n = net.makeNdro("n");
    PulseSink &sink = net.makeSink("s");
    n.connect(0, sink, 0);

    n.inject(chan::kNdroDin, 0);
    n.inject(chan::kNdroClk, kGap);
    n.inject(chan::kNdroRst, 2 * kGap);
    n.inject(chan::kNdroClk, 3 * kGap);
    sim.run();
    EXPECT_EQ(sink.count(), 1u);
    EXPECT_FALSE(n.state());
}

TEST_F(CellTest, NdroReadWhileClearIsZero)
{
    Ndro &n = net.makeNdro("n");
    PulseSink &sink = net.makeSink("s");
    n.connect(0, sink, 0);
    n.inject(chan::kNdroClk, 0);
    sim.run();
    EXPECT_EQ(sink.count(), 0u);
}

TEST_F(CellTest, TfflPulsesOnRisingFlip)
{
    // One output pulse per two inputs, on the 0->1 flip: inputs at
    // even positions (1st, 3rd, ...) produce output.
    Tffl &t = net.makeTffl("t");
    PulseSink &sink = net.makeSink("s");
    t.connect(0, sink, 0);
    for (int i = 0; i < 6; ++i)
        t.inject(0, i * kGap);
    sim.run();
    EXPECT_EQ(sink.count(), 3u);
    EXPECT_FALSE(t.state()); // even number of inputs -> back to 0
}

TEST_F(CellTest, TffrPulsesOnFallingFlip)
{
    Tffr &t = net.makeTffr("t");
    PulseSink &sink = net.makeSink("s");
    t.connect(0, sink, 0);
    t.inject(0, 0); // 0->1, no pulse
    sim.run();
    EXPECT_EQ(sink.count(), 0u);
    t.inject(0, sim.now() + kGap); // 1->0, pulse
    sim.run();
    EXPECT_EQ(sink.count(), 1u);
}

TEST_F(CellTest, TffPairComplementary)
{
    // TFFL and TFFR fed the same stream alternate their outputs:
    // together they reproduce every input pulse exactly once.
    Spl &spl = net.makeSpl("spl");
    Tffl &tl = net.makeTffl("tl");
    Tffr &tr = net.makeTffr("tr");
    PulseSink &sl = net.makeSink("sl");
    PulseSink &sr = net.makeSink("sr");
    spl.connect(0, tl, 0);
    spl.connect(1, tr, 0);
    tl.connect(0, sl, 0);
    tr.connect(0, sr, 0);
    const int n = 10;
    for (int i = 0; i < n; ++i)
        spl.inject(0, i * kGap);
    sim.run();
    EXPECT_EQ(sl.count() + sr.count(), static_cast<std::size_t>(n));
    EXPECT_EQ(sl.count(), 5u);
    EXPECT_EQ(sr.count(), 5u);
}

TEST_F(CellTest, DcSfqProducesPulsePerEdge)
{
    DcSfq &conv = net.makeDcSfq("in");
    PulseSink &sink = net.makeSink("s");
    conv.connect(0, sink, 0);
    conv.edge(0);
    conv.edge(kGap);
    sim.run();
    EXPECT_EQ(sink.count(), 2u);
}

TEST_F(CellTest, SfqDcTogglesLevelPerPulse)
{
    // Fig. 14: each output pulse inverts the sampled level.
    SfqDc &drv = net.makeSfqDc("out");
    drv.inject(0, 0);
    sim.run();
    EXPECT_TRUE(drv.level());
    drv.inject(0, sim.now() + kGap);
    sim.run();
    EXPECT_FALSE(drv.level());
    drv.inject(0, sim.now() + kGap);
    sim.run();
    EXPECT_TRUE(drv.level());
    EXPECT_EQ(drv.pulseCount(), 3u);
}

TEST_F(CellTest, FanOutOfTwoRejected)
{
    Jtl &j = net.makeJtl("j");
    PulseSink &a = net.makeSink("a");
    PulseSink &b = net.makeSink("b");
    j.connect(0, a, 0);
    EXPECT_EXIT(j.connect(0, b, 0),
                ::testing::ExitedWithCode(1), "fan-out");
}

TEST_F(CellTest, DanglingOutputIsLegal)
{
    Jtl &j = net.makeJtl("j");
    j.inject(0, 0);
    sim.run(); // must not crash: pulse is dropped
    EXPECT_TRUE(sim.idle());
}

TEST_F(CellTest, SwitchEnergyAccounted)
{
    Jtl &j = net.makeJtl("j");
    PulseSink &sink = net.makeSink("s");
    j.connect(0, sink, 0);
    j.inject(0, 0);
    sim.run();
    EXPECT_DOUBLE_EQ(sim.switchEnergy(),
                     cellParams(CellKind::JTL).switch_energy_j);
}

TEST_F(CellTest, PulseCountTracksDeliveries)
{
    Spl &spl = net.makeSpl("spl");
    PulseSink &a = net.makeSink("a");
    PulseSink &b = net.makeSink("b");
    spl.connect(0, a, 0);
    spl.connect(1, b, 0);
    spl.inject(0, 0);
    sim.run();
    EXPECT_EQ(sim.pulses(), 2u); // two cell-to-cell deliveries
}

} // namespace
} // namespace sushi::sfq
