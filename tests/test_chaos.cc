/**
 * @file
 * Tests for the self-healing serving layer (PR 6): chaos-campaign
 * byte-determinism across worker-thread counts, liveness (every
 * future resolves under injected crashes), quarantine / hot-spare
 * promotion / probe-and-readmit, retry budgets and
 * Reject::ReplicaFailure, hedged dispatch with first-wins
 * cancellation, the circuit-breaker state machine, injected NPE
 * degradation surfacing in ServerMetrics, ModelCache pinning,
 * engine health mutation under concurrency, real-clock chaos drain,
 * and the bursty / diurnal load-generator traces.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "chip/sushi_chip.hh"
#include "common/rng.hh"
#include "engine/compiled_model.hh"
#include "serve/load_gen.hh"
#include "serve/server.hh"
#include "snn/binarize.hh"
#include "snn/network.hh"

namespace sushi::serve {
namespace {

snn::BinarySnn
tinyNet(std::size_t input, std::size_t hidden, std::size_t output,
        int t_steps, std::uint64_t seed)
{
    snn::SnnConfig cfg;
    cfg.input = input;
    cfg.hidden = hidden;
    cfg.output = output;
    cfg.t_steps = t_steps;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, seed);
    return snn::BinarySnn::fromFloat(mlp);
}

std::vector<engine::Sample>
randomSamples(std::size_t n, std::size_t dim, int t_steps,
              std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<engine::Sample> samples(n);
    for (auto &s : samples) {
        for (int t = 0; t < t_steps; ++t) {
            std::vector<std::uint8_t> f(dim);
            for (auto &v : f)
                v = rng.chance(0.4) ? 1 : 0;
            s.push_back(std::move(f));
        }
    }
    return samples;
}

std::shared_ptr<const engine::CompiledModel>
smallModel()
{
    static std::shared_ptr<const engine::CompiledModel> model = [] {
        compiler::ChipConfig chip;
        chip.n = 8;
        chip.sc_per_npe = 10;
        return engine::CompiledModel::compile(
            tinyNet(16, 8, 4, 3, 7), chip);
    }();
    return model;
}

ServerConfig
virtualConfig(int replicas, std::size_t max_batch,
              std::int64_t max_delay_ns,
              std::size_t max_queue = 1024)
{
    ServerConfig cfg;
    cfg.engine.replicas = replicas;
    cfg.max_batch = max_batch;
    cfg.max_delay_ns = max_delay_ns;
    cfg.max_queue = max_queue;
    cfg.clock = ClockMode::Virtual;
    return cfg;
}

/** Service duration of one request on an idle virtual server. */
std::int64_t
soloServiceNs(const engine::Sample &sample)
{
    Server server(smallModel(), virtualConfig(1, 1, 0));
    auto fut = server.submitAt(0, sample);
    server.runVirtual();
    return fut.get().serviceNs();
}

/** A full resilience + chaos config: 4 active replicas, 1 hot
 *  spare, retries, hedging, breaker, health detection and a mixed
 *  random + scripted fault environment. */
ServerConfig
campaignConfig(unsigned max_threads)
{
    ServerConfig cfg = virtualConfig(4, 4, 100'000);
    cfg.max_threads = max_threads;
    cfg.hot_spares = 1;
    cfg.retry.max_retries = 3;
    cfg.retry.backoff_ns = 50'000;
    cfg.hedge.priority_floor = 1;
    cfg.hedge.delay_ns = 400'000;
    cfg.breaker.failure_threshold = 8;
    cfg.breaker.open_ns = 2'000'000;
    cfg.health.quarantine_after = 2;
    cfg.health.probe_delay_ns = 500'000;
    cfg.chaos.seed = 77;
    cfg.chaos.crash_rate = 0.02;
    cfg.chaos.stall_rate = 0.05;
    cfg.chaos.fault_rate = 0.03;
    cfg.chaos.degrade_rate = 0.01;
    cfg.chaos.crash_hold_ns = 4'000'000;
    cfg.chaos.script.push_back(
        {2'000'000, 1, ChaosKind::Crash, 0});
    cfg.chaos.script.push_back(
        {5'000'000, 2, ChaosKind::SlowDegrade, 0});
    cfg.resilience_seed = 9;
    return cfg;
}

/** Run a seeded bursty workload through a campaign server and
 *  return the metrics JSON (all futures must resolve). */
std::string
runCampaign(unsigned max_threads)
{
    const auto samples = randomSamples(8, 16, 3, 11);
    LoadGenConfig lg;
    lg.rate_rps = 10'000.0;
    lg.requests = 150;
    lg.sample_pool = samples.size();
    lg.seed = 5;
    lg.priorities = 3;
    const auto arrivals = burstyArrivals(lg);

    Server server(smallModel(), campaignConfig(max_threads));
    std::vector<std::future<Response>> futs;
    futs.reserve(arrivals.size());
    for (const auto &a : arrivals)
        futs.push_back(server.submitAt(
            a.arrival_ns, samples[a.sample_index], a.opts));
    server.runVirtual();
    for (auto &f : futs)
        f.get(); // liveness: every future resolved
    return server.metrics().toJson();
}

TEST(ChaosDeterminism, ByteIdenticalAcrossThreadsAndRepeats)
{
    const std::string base = runCampaign(1);
    EXPECT_EQ(base, runCampaign(1)) << "repeat run differs";
    EXPECT_EQ(base, runCampaign(2)) << "2 worker threads differ";
    EXPECT_EQ(base, runCampaign(8)) << "8 worker threads differ";
}

TEST(ChaosLiveness, AllFuturesResolveUnderHeavyCrashes)
{
    ServerConfig cfg = virtualConfig(2, 4, 100'000);
    cfg.hot_spares = 1;
    cfg.retry.max_retries = 2;
    cfg.retry.backoff_ns = 50'000;
    cfg.chaos.seed = 3;
    cfg.chaos.crash_rate = 0.30;
    cfg.chaos.fault_rate = 0.10;
    cfg.chaos.crash_hold_ns = 1'000'000;
    cfg.health.probe_delay_ns = 200'000;

    const auto samples = randomSamples(4, 16, 3, 21);
    Server server(smallModel(), cfg);
    std::vector<std::future<Response>> futs;
    for (int i = 0; i < 80; ++i)
        futs.push_back(server.submitAt(
            i * 50'000, samples[static_cast<std::size_t>(i) %
                                samples.size()]));
    server.runVirtual();

    std::uint64_t served = 0;
    std::uint64_t rejected = 0;
    for (auto &f : futs) {
        const Response r = f.get();
        if (r.ok())
            ++served;
        else
            ++rejected;
    }
    const ServerMetrics m = server.metrics();
    EXPECT_EQ(m.submitted, 80u);
    EXPECT_EQ(m.completed, served);
    EXPECT_EQ(m.completed + m.rejected_queue_full +
                  m.rejected_deadline + m.rejected_shutdown +
                  m.rejected_breaker + m.rejected_replica_failure,
              80u);
    EXPECT_GT(m.chaos_crashes, 0u);
    EXPECT_GT(m.quarantines, 0u);
    // The retry budget recovered most crash victims.
    EXPECT_GT(served, 60u);
    (void)rejected;
}

TEST(ChaosHealth, ScriptedCrashQuarantineSpareReadmit)
{
    ServerConfig cfg = virtualConfig(4, 4, 100'000);
    cfg.hot_spares = 1;
    cfg.retry.max_retries = 3;
    cfg.retry.backoff_ns = 50'000;
    cfg.chaos.seed = 1;
    cfg.chaos.crash_hold_ns = 8'000'000;
    cfg.chaos.script.push_back(
        {5'000'000, 0, ChaosKind::Crash, 0});
    cfg.health.probe_delay_ns = 1'000'000;

    // Replica 4 is the hot spare: instantiated but out of rotation.
    const auto samples = randomSamples(4, 16, 3, 31);
    Server server(smallModel(), cfg);
    EXPECT_EQ(server.replicas(), 5);
    EXPECT_EQ(server.replicaState(4), ReplicaState::Spare);

    // Groups of 16 simultaneous arrivals form four size-4 batches,
    // occupying every active replica — so the promoted spare serves
    // real traffic. The 10 groups span past the probe schedule
    // (quarantine ~5ms; probes at ~6, 8, 12, 20ms; crash holds
    // until 13ms), so readmission happens while work is pending.
    std::vector<std::future<Response>> futs;
    for (int g = 0; g < 10; ++g)
        for (int i = 0; i < 16; ++i)
            futs.push_back(server.submitAt(
                g * 2'500'000,
                samples[static_cast<std::size_t>(i) %
                        samples.size()]));
    server.runVirtual();
    for (auto &f : futs)
        EXPECT_TRUE(f.get().ok()); // retries absorb the crash

    const ServerMetrics m = server.metrics();
    EXPECT_GE(m.quarantines, 1u);
    EXPECT_GE(m.spares_promoted, 1u);
    EXPECT_GE(m.probes, 1u);
    EXPECT_GE(m.probe_failures, 1u); // crash_hold outlives probe 1
    EXPECT_GE(m.readmits, 1u);
    EXPECT_GE(m.replicas[0].quarantines, 1u);
    EXPECT_GE(m.replicas[0].readmissions, 1u);
    // The spare served real traffic after promotion.
    EXPECT_GT(m.replicas[4].batches, 0u);
    // Readmitted: the pool holds no quarantined replica at the end.
    for (int r = 0; r < server.replicas(); ++r)
        EXPECT_NE(server.replicaState(r), ReplicaState::Quarantined)
            << "replica " << r;
    EXPECT_EQ(m.completed, 160u);
}

TEST(ChaosRetry, BudgetExhaustionRejectsReplicaFailure)
{
    // Every dispatch dies with an injected transient TimingFault;
    // the replica itself stays reachable (quarantine disabled), so
    // each request burns its full retry budget then fast-fails.
    ServerConfig cfg = virtualConfig(1, 4, 50'000);
    cfg.retry.max_retries = 2;
    cfg.retry.backoff_ns = 20'000;
    cfg.chaos.seed = 1;
    cfg.chaos.fault_rate = 1.0;
    cfg.health.quarantine_after = 1'000'000;

    const auto samples = randomSamples(2, 16, 3, 41);
    Server server(smallModel(), cfg);
    std::vector<std::future<Response>> futs;
    for (int i = 0; i < 10; ++i)
        futs.push_back(server.submitAt(
            i * 10'000, samples[static_cast<std::size_t>(i) %
                                samples.size()]));
    server.runVirtual();

    for (auto &f : futs) {
        const Response r = f.get();
        EXPECT_EQ(r.rejected, Reject::ReplicaFailure);
        EXPECT_EQ(r.retries, 3); // initial dispatch + 2 retries
    }
    const ServerMetrics m = server.metrics();
    EXPECT_EQ(m.rejected_replica_failure, 10u);
    EXPECT_EQ(m.retries, 20u); // 2 per request
    EXPECT_GT(m.chaos_faults, 0u);
    EXPECT_EQ(m.completed, 0u);
}

TEST(ChaosRetry, DisabledRetryFailsImmediately)
{
    ServerConfig cfg = virtualConfig(1, 4, 50'000);
    cfg.chaos.seed = 1;
    cfg.chaos.fault_rate = 1.0;
    cfg.health.quarantine_after = 1'000'000;

    const auto samples = randomSamples(1, 16, 3, 43);
    Server server(smallModel(), cfg);
    auto fut = server.submitAt(0, samples[0]);
    server.runVirtual();
    const Response r = fut.get();
    EXPECT_EQ(r.rejected, Reject::ReplicaFailure);
    EXPECT_EQ(r.retries, 1);
    EXPECT_EQ(server.metrics().retries, 0u);
}

TEST(ChaosHedge, StalledPrimaryLosesToHedge)
{
    const auto samples = randomSamples(2, 16, 3, 51);
    const std::int64_t solo = soloServiceNs(samples[0]);

    ServerConfig cfg = virtualConfig(2, 1, 0);
    cfg.hedge.priority_floor = 0; // every request hedge-eligible
    cfg.hedge.delay_ns = 2 * solo;
    cfg.chaos.seed = 1;
    cfg.chaos.stall_factor = 50.0;
    cfg.chaos.script.push_back({0, 0, ChaosKind::Stall, 0});

    Server server(smallModel(), cfg);
    auto fa = server.submitAt(0, samples[0]); // lands on replica 0
    auto fb = server.submitAt(0, samples[1]); // lands on replica 1
    server.runVirtual();

    const Response ra = fa.get();
    const Response rb = fb.get();
    EXPECT_TRUE(ra.ok());
    EXPECT_TRUE(rb.ok());
    // The stalled primary (50x service) lost to its hedge copy,
    // which ran on the healthy replica after the hedge delay.
    EXPECT_TRUE(ra.hedged);
    EXPECT_EQ(ra.replica, 1);
    EXPECT_LT(ra.totalNs(), 50 * solo);
    const ServerMetrics m = server.metrics();
    EXPECT_EQ(m.chaos_stalls, 1u);
    EXPECT_EQ(m.hedges_launched, 1u);
    EXPECT_EQ(m.hedges_won, 1u);
    EXPECT_EQ(m.hedges_lost, 0u);
    EXPECT_EQ(m.completed, 2u);
    // The hedged request's counts match an unhedged run bit-for-bit.
    Server plain(smallModel(), virtualConfig(1, 1, 0));
    auto fp = plain.submitAt(0, samples[0]);
    plain.runVirtual();
    EXPECT_EQ(ra.result.counts, fp.get().result.counts);
}

TEST(ChaosBreaker, OpenFastFailsThenRecloses)
{
    ServerConfig cfg = virtualConfig(1, 2, 50'000);
    cfg.breaker.failure_threshold = 1;
    cfg.breaker.open_ns = 5'000'000;
    cfg.breaker.half_open_probes = 1;
    cfg.chaos.seed = 1;
    cfg.chaos.crash_hold_ns = 8'000'000;
    cfg.chaos.script.push_back(
        {1'000'000, 0, ChaosKind::Crash, 0});
    cfg.health.probe_delay_ns = 1'000'000;

    const auto samples = randomSamples(2, 16, 3, 61);
    Server server(smallModel(), cfg);

    auto ok_before = server.submitAt(0, samples[0]);
    // Fails at ~1.25ms (crash detect), tripping the breaker Open.
    auto victim = server.submitAt(1'200'000, samples[1]);
    // Arrivals while Open fast-fail with a typed rejection.
    std::vector<std::future<Response>> shed;
    for (int i = 0; i < 3; ++i)
        shed.push_back(
            server.submitAt(2'000'000 + i * 1'000'000, samples[0]));
    // Arrivals after open_ns land in HalfOpen, wait out the probe
    // schedule, and ride the trial batch that closes the breaker.
    auto late_a = server.submitAt(7'000'000, samples[0]);
    auto late_b = server.submitAt(7'500'000, samples[1]);
    server.runVirtual();

    EXPECT_TRUE(ok_before.get().ok());
    EXPECT_EQ(victim.get().rejected, Reject::ReplicaFailure);
    for (auto &f : shed)
        EXPECT_EQ(f.get().rejected, Reject::BreakerOpen);
    EXPECT_TRUE(late_a.get().ok());
    EXPECT_TRUE(late_b.get().ok());

    const ServerMetrics m = server.metrics();
    EXPECT_GE(m.breaker_opens, 1u);
    EXPECT_GE(m.breaker_half_opens, 1u);
    EXPECT_GE(m.breaker_closes, 1u);
    EXPECT_EQ(m.rejected_breaker, 3u);
    EXPECT_EQ(server.breakerState(), BreakerState::Closed);
}

TEST(ChaosNpe, InjectedDegradeSurfacesGaugeAndStaysCorrect)
{
    ServerConfig cfg = virtualConfig(1, 2, 50'000);
    cfg.chaos.seed = 1;
    cfg.chaos.script.push_back(
        {0, 0, ChaosKind::NpeDegrade, 2});

    const auto samples = randomSamples(4, 16, 3, 71);
    Server server(smallModel(), cfg);
    std::vector<std::future<Response>> futs;
    for (const auto &s : samples)
        futs.push_back(server.submitAt(0, s));
    server.runVirtual();

    // Degraded-mode remap keeps every answer bit-identical.
    Server clean(smallModel(), virtualConfig(1, 2, 50'000));
    std::vector<std::future<Response>> cfuts;
    for (const auto &s : samples)
        cfuts.push_back(clean.submitAt(0, s));
    clean.runVirtual();
    for (std::size_t i = 0; i < futs.size(); ++i) {
        const Response r = futs[i].get();
        EXPECT_TRUE(r.ok());
        EXPECT_EQ(r.result.counts, cfuts[i].get().result.counts);
    }

    const ServerMetrics m = server.metrics();
    EXPECT_EQ(m.chaos_degrades, 1u);
    EXPECT_EQ(m.replicas[0].failed_npes, 1u);
    EXPECT_TRUE(m.replicas[0].degraded());
    EXPECT_EQ(m.degradedReplicas(), 1u);
    EXPECT_NE(m.toJson().find("\"failed_npes\": 1"),
              std::string::npos);
    EXPECT_EQ(server.engine().replicaAccount(0).failed_npes, 1u);
}

TEST(ModelCachePin, DefersEvictionOfPinnedEntries)
{
    compiler::ChipConfig chip;
    chip.n = 8;
    chip.sc_per_npe = 10;
    const auto net_a = tinyNet(16, 8, 4, 3, 101);
    const auto net_b = tinyNet(16, 8, 4, 3, 102);
    const auto net_c = tinyNet(16, 8, 4, 3, 103);

    engine::ModelCache cache;
    cache.setCapacity(1);
    auto a = cache.get(net_a, chip);
    EXPECT_EQ(cache.size(), 1u);
    {
        engine::CompiledModel::Pin pin(a.get());
        EXPECT_EQ(cache.pinned(), 1u);
        // Inserting B overflows capacity, but the LRU victim (A) is
        // pinned: the eviction is deferred and falls on B instead.
        auto b = cache.get(net_b, chip);
        ASSERT_NE(b, nullptr);
        EXPECT_GE(cache.evictionsDeferred(), 1u);
        EXPECT_EQ(cache.size(), 1u);
        auto a2 = cache.get(net_a, chip); // still resident: a hit
        EXPECT_EQ(a2.get(), a.get());
    }
    EXPECT_EQ(cache.pinned(), 0u);
    // Unpinned, A is evictable again.
    auto c = cache.get(net_c, chip);
    EXPECT_EQ(cache.size(), 1u);
    const std::uint64_t deferred = cache.evictionsDeferred();
    auto a3 = cache.get(net_a, chip); // recompiled: a miss
    EXPECT_NE(a3.get(), a.get());
    EXPECT_EQ(cache.evictionsDeferred(), deferred);
}

TEST(EngineHealth, DegradeHealHammerKeepsResultsIdentical)
{
    engine::EngineConfig ec;
    ec.replicas = 4;
    const auto samples = randomSamples(32, 16, 3, 81);
    engine::InferenceEngine eng(smallModel(), ec);
    const engine::EngineRun clean = eng.run(samples);

    // Hammer degrade/heal on batch boundaries while batches run.
    // Slots stay in [0, 4) so a replica never loses all 8 NPEs.
    std::atomic<bool> stop{false};
    std::thread mutator([&] {
        int i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            eng.markReplicaDegraded(i % 4, i % 4);
            eng.healReplica((i + 1) % 4);
            ++i;
        }
    });
    for (int iter = 0; iter < 12; ++iter) {
        const engine::EngineRun run = eng.run(samples);
        ASSERT_EQ(run.samples.size(), samples.size());
        for (std::size_t s = 0; s < samples.size(); ++s)
            EXPECT_EQ(run.samples[s].prediction,
                      clean.samples[s].prediction);
        // The serving-layer entry point under the same hammer.
        const engine::ReplicaRun rr =
            eng.runOnReplica(iter % 4, {samples[0]});
        EXPECT_EQ(rr.results[0].counts, clean.samples[0].counts);
    }
    stop.store(true, std::memory_order_relaxed);
    mutator.join();

    for (int r = 0; r < 4; ++r)
        eng.healReplica(r);
    const engine::EngineRun after = eng.run(samples);
    for (std::size_t s = 0; s < samples.size(); ++s)
        EXPECT_EQ(after.samples[s].counts, clean.samples[s].counts);
}

TEST(ChaosReal, RealModeDrainResolvesEverything)
{
    // Wall-clock mode: crashes, faults, quarantines and probes all
    // race worker threads; drain() must still resolve every future.
    ServerConfig cfg;
    cfg.engine.replicas = 2;
    cfg.hot_spares = 1;
    cfg.max_batch = 4;
    cfg.max_delay_ns = 200'000;
    cfg.clock = ClockMode::Real;
    cfg.retry.max_retries = 2;
    cfg.retry.backoff_ns = 50'000;
    cfg.chaos.seed = 13;
    cfg.chaos.crash_rate = 0.15;
    cfg.chaos.fault_rate = 0.10;
    cfg.chaos.crash_hold_ns = 2'000'000;
    cfg.health.probe_delay_ns = 100'000;

    const auto samples = randomSamples(4, 16, 3, 91);
    Server server(smallModel(), cfg);
    std::vector<std::future<Response>> futs;
    for (int i = 0; i < 60; ++i)
        futs.push_back(server.submit(
            samples[static_cast<std::size_t>(i) % samples.size()]));
    server.drain();

    std::uint64_t served = 0;
    for (auto &f : futs) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
        if (f.get().ok())
            ++served;
    }
    const ServerMetrics m = server.metrics();
    EXPECT_EQ(m.submitted, 60u);
    EXPECT_EQ(m.completed, served);
    EXPECT_EQ(m.completed + m.rejected_queue_full +
                  m.rejected_deadline + m.rejected_shutdown +
                  m.rejected_breaker + m.rejected_replica_failure,
              60u);
    server.shutdown();
}

TEST(LoadGenTraces, BurstyDeterministicAndClumped)
{
    LoadGenConfig cfg;
    cfg.rate_rps = 1000.0;
    cfg.requests = 300;
    cfg.sample_pool = 8;
    cfg.seed = 7;
    const auto a = burstyArrivals(cfg);
    const auto b = burstyArrivals(cfg);
    ASSERT_EQ(a.size(), 300u);
    ASSERT_EQ(b.size(), 300u);
    std::int64_t max_gap = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival_ns, b[i].arrival_ns);
        EXPECT_EQ(a[i].sample_index, b[i].sample_index);
        if (i > 0) {
            EXPECT_GE(a[i].arrival_ns, a[i - 1].arrival_ns);
            max_gap = std::max(max_gap,
                               a[i].arrival_ns - a[i - 1].arrival_ns);
        }
    }
    // OFF silences dwarf the in-burst gaps.
    EXPECT_GT(max_gap, 2'000'000);
    cfg.seed = 8;
    const auto c = burstyArrivals(cfg);
    bool differs = false;
    for (std::size_t i = 0; i < c.size() && !differs; ++i)
        differs = c[i].arrival_ns != a[i].arrival_ns;
    EXPECT_TRUE(differs);
}

TEST(LoadGenTraces, DiurnalDeterministicAndRateBiased)
{
    LoadGenConfig cfg;
    cfg.rate_rps = 2000.0;
    cfg.requests = 400;
    cfg.sample_pool = 4;
    cfg.seed = 7;
    cfg.diurnal_period_ns = 20'000'000;
    cfg.diurnal_amplitude = 0.8;
    const auto a = diurnalArrivals(cfg);
    const auto b = diurnalArrivals(cfg);
    ASSERT_EQ(a.size(), 400u);
    double mean_sin = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival_ns, b[i].arrival_ns);
        if (i > 0) {
            EXPECT_GE(a[i].arrival_ns, a[i - 1].arrival_ns);
        }
        mean_sin += std::sin(
            2.0 * 3.14159265358979323846 *
            static_cast<double>(a[i].arrival_ns) /
            static_cast<double>(cfg.diurnal_period_ns));
    }
    mean_sin /= static_cast<double>(a.size());
    // Arrivals concentrate where the sinusoidal rate is high.
    EXPECT_GT(mean_sin, 0.1);
    cfg.seed = 9;
    const auto c = diurnalArrivals(cfg);
    bool differs = false;
    for (std::size_t i = 0; i < c.size() && !differs; ++i)
        differs = c[i].arrival_ns != a[i].arrival_ns;
    EXPECT_TRUE(differs);
}

} // namespace
} // namespace sushi::serve
