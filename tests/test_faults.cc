/**
 * @file
 * Fault-injection and resilience subsystem tests: deterministic
 * per-seed fault streams, targeted cell faults with flux-trap
 * windows, stuck-at NDRO behaviour, the Recover violation policy and
 * the typed TimingFault exception, Simulator::reset() reuse, the
 * Monte-Carlo fault campaign, and the chip's degraded (failed-NPE)
 * mode.
 */

#include <gtest/gtest.h>

#include <vector>

#include "chip/sushi_chip.hh"
#include "data/synth_digits.hh"
#include "npe/npe.hh"
#include "npe/state_controller.hh"
#include "perf/fault_campaign.hh"
#include "sfq/cells.hh"
#include "sfq/constraints.hh"
#include "sfq/netlist.hh"
#include "sfq/simulator.hh"
#include "snn/train.hh"

namespace sushi {
namespace {

using sfq::FaultKind;
using sfq::FaultSpec;

/** A source -> JTL chain -> sink fixture. */
struct Chain
{
    sfq::Simulator sim;
    sfq::PulseSource *src = nullptr;
    sfq::PulseSink *sink = nullptr;
    std::vector<sfq::Jtl *> jtls;

    explicit Chain(int stages)
    {
        sim.setViolationPolicy(sfq::ViolationPolicy::Ignore);
        src = new sfq::PulseSource(sim, "src");
        sfq::Component *prev = src;
        for (int i = 0; i < stages; ++i) {
            jtls.push_back(
                new sfq::Jtl(sim, "jtl" + std::to_string(i)));
            prev->connect(0, *jtls.back(), 0);
            prev = jtls.back();
        }
        sink = new sfq::PulseSink(sim, "sink");
        prev->connect(0, *sink, 0);
    }

    ~Chain()
    {
        delete src;
        delete sink;
        for (auto *j : jtls)
            delete j;
    }
};

TEST(FaultModel, SameSeedSameDropInsertSequence)
{
    auto run = [](std::uint64_t seed) {
        Chain c(6);
        c.sim.faults().reseed(seed);
        FaultSpec drop;
        drop.kind = FaultKind::PulseDrop;
        drop.rate = 0.2;
        c.sim.faults().addFault(drop);
        FaultSpec spur;
        spur.kind = FaultKind::SpuriousPulse;
        spur.rate = 0.1;
        c.sim.faults().addFault(spur);
        const Tick gap = sfq::safePulseSpacing();
        for (int i = 1; i <= 40; ++i)
            c.src->pulseAt(i * gap);
        c.sim.run();
        return std::make_tuple(c.sink->pulsesSeen(),
                               c.sim.faults().counters().dropped,
                               c.sim.faults().counters().inserted);
    };
    const auto a = run(42);
    const auto b = run(42);
    EXPECT_EQ(a, b);
    EXPECT_GT(std::get<1>(a), 0u);
    EXPECT_GT(std::get<2>(a), 0u);
    // A different seed realises a different fault pattern.
    const auto c = run(43);
    EXPECT_NE(std::get<0>(a), std::get<0>(c));
}

TEST(FaultModel, TargetedDeadCellKillsOnlyItsPath)
{
    sfq::Simulator sim;
    sim.setViolationPolicy(sfq::ViolationPolicy::Ignore);
    FaultSpec dead;
    dead.kind = FaultKind::DeadCell;
    dead.target = "path_a.jtl";
    sim.faults().addFault(dead);

    sfq::PulseSource src(sim, "src");
    sfq::Spl spl(sim, "spl");
    sfq::Jtl ja(sim, "path_a.jtl");
    sfq::Jtl jb(sim, "path_b.jtl");
    sfq::PulseSink sa(sim, "sink_a");
    sfq::PulseSink sb(sim, "sink_b");
    src.connect(0, spl, 0);
    spl.connect(0, ja, 0);
    spl.connect(1, jb, 0);
    ja.connect(0, sa, 0);
    jb.connect(0, sb, 0);

    const Tick gap = sfq::safePulseSpacing();
    for (int i = 1; i <= 10; ++i)
        src.pulseAt(i * gap);
    sim.run();

    EXPECT_EQ(sa.count(), 0u); // the dead JTL ate every pulse
    EXPECT_EQ(sb.count(), 10u);
    EXPECT_EQ(sim.faults().counters().suppressed, 10u);
}

TEST(FaultModel, FluxTrapWindowIsTransient)
{
    Chain c(2);
    const Tick gap = sfq::safePulseSpacing();
    // A trapped fluxon blocks the whole chain for pulses 4..7, then
    // escapes.
    FaultSpec trap;
    trap.kind = FaultKind::PulseDrop;
    trap.rate = 1.0;
    trap.target = "jtl0";
    trap.from = 4 * gap;
    trap.until = 8 * gap;
    c.sim.faults().addFault(trap);

    for (int i = 1; i <= 10; ++i)
        c.src->pulseAt(i * gap);
    c.sim.run();

    // 10 pulses, minus the ones emitted by jtl0 inside the window.
    EXPECT_LT(c.sink->count(), 10u);
    EXPECT_GE(c.sink->count(), 6u);
    EXPECT_EQ(c.sink->count() +
                  c.sim.faults().counters().dropped,
              10u);
}

TEST(FaultModel, StuckSetNdroIgnoresReset)
{
    sfq::Simulator sim;
    sim.setViolationPolicy(sfq::ViolationPolicy::Ignore);
    FaultSpec stuck;
    stuck.kind = FaultKind::StuckSet;
    stuck.target = "ndro";
    sim.faults().addFault(stuck);

    sfq::Ndro ndro(sim, "ndro");
    sfq::PulseSink sink(sim, "sink");
    ndro.connect(0, sink, 0);

    const Tick gap = sfq::safePulseSpacing();
    // Never set, only reset — then read. Flux is trapped: the NDRO
    // reads 1 anyway.
    ndro.inject(sfq::chan::kNdroRst, gap);
    ndro.inject(sfq::chan::kNdroClk, 2 * gap);
    sim.run();
    EXPECT_EQ(sink.count(), 1u);
    EXPECT_TRUE(ndro.state());
}

TEST(FaultModel, StuckResetNdroNeverStores)
{
    sfq::Simulator sim;
    sim.setViolationPolicy(sfq::ViolationPolicy::Ignore);
    FaultSpec stuck;
    stuck.kind = FaultKind::StuckReset;
    stuck.target = "ndro";
    sim.faults().addFault(stuck);

    sfq::Ndro ndro(sim, "ndro");
    sfq::PulseSink sink(sim, "sink");
    ndro.connect(0, sink, 0);

    const Tick gap = sfq::safePulseSpacing();
    ndro.inject(sfq::chan::kNdroDin, gap);
    ndro.inject(sfq::chan::kNdroClk, 2 * gap);
    sim.run();
    EXPECT_EQ(sink.count(), 0u);
    EXPECT_FALSE(ndro.state());
}

TEST(FaultModel, StuckNdroBreaksScAgainstFsmReference)
{
    // The SC stores the neuron state bit (Sec. 4.1.1): its NDROs arm
    // the flip outputs the NeuronFsm/NeuronMapper path relies on for
    // spike emission. With the fall-arm NDRO stuck-reset, the
    // gate-level SC diverges from the behavioural FSM reference —
    // the chain never emits the carry the neuron's fire transition
    // needs.
    auto run = [](bool stuck) {
        sfq::Simulator sim;
        sim.setViolationPolicy(sfq::ViolationPolicy::Ignore);
        if (stuck) {
            FaultSpec spec;
            spec.kind = FaultKind::StuckReset;
            spec.target = "npe.sc0.ndro1"; // SC0's fall-arm NDRO
            sim.faults().addFault(spec);
        }
        sfq::Netlist net(sim);
        npe::NpeGate gate(net, "npe", 3);
        const Tick gap = sfq::safePulseSpacing();
        gate.injectSet1(gap);
        for (int i = 0; i < 11; ++i)
            gate.injectIn((i + 2) * gap);
        sim.run();
        return std::make_pair(gate.outSink().count(), gate.value());
    };

    npe::Npe ref(3);
    ref.setPolarity(npe::Polarity::Excitatory);
    const std::uint64_t ref_spikes = ref.addPulses(11);

    const auto healthy = run(false);
    EXPECT_EQ(healthy.first, ref_spikes);
    EXPECT_EQ(healthy.second, ref.value());

    const auto faulty = run(true);
    // SC0 can never propagate a carry: the counter is cut at bit 0.
    EXPECT_EQ(faulty.first, 0u);
    EXPECT_NE(faulty.second, ref.value());
}

TEST(Violation, FatalThrowsTypedTimingFault)
{
    sfq::Simulator sim;
    sim.setViolationPolicy(sfq::ViolationPolicy::Fatal);
    sfq::Jtl jtl(sim, "jtl");
    sfq::PulseSink sink(sim, "sink");
    jtl.connect(0, sink, 0);
    jtl.inject(0, 1000);
    jtl.inject(0, 1001); // far below the 19.9 ps din-din interval
    try {
        sim.run();
        FAIL() << "expected TimingFault";
    } catch (const sfq::TimingFault &e) {
        EXPECT_EQ(e.cell(), "jtl");
        EXPECT_NE(std::string(e.what()).find("jtl"),
                  std::string::npos);
        // Full attribution: which constraint, and the two offending
        // pulse times.
        EXPECT_EQ(e.constraint(), "din-din");
        EXPECT_EQ(e.prevPulse(), 1000);
        EXPECT_EQ(e.violatingPulse(), 1001);
        EXPECT_NE(std::string(e.what()).find("pulses at 1000 fs"),
                  std::string::npos);
    }
}

TEST(Violation, RecoverDropsOffendingPulseAndAttributes)
{
    sfq::Simulator sim;
    sim.setViolationPolicy(sfq::ViolationPolicy::Recover);
    sfq::Jtl jtl(sim, "jtl");
    sfq::PulseSink sink(sim, "sink");
    jtl.connect(0, sink, 0);
    jtl.inject(0, 1000);
    jtl.inject(0, 1001);
    EXPECT_NO_THROW(sim.run());
    EXPECT_EQ(sink.count(), 1u); // the marginal second pulse is gone
    EXPECT_EQ(sim.violations(), 1u);
    EXPECT_EQ(sim.recoveredPulses(), 1u);
    ASSERT_EQ(sim.violationsByCell().count("jtl"), 1u);
    EXPECT_EQ(sim.violationsByCell().at("jtl"), 1u);
}

TEST(Simulator, ResetClearsStateForReuse)
{
    Chain c(3);
    c.sim.setPulseDropRate(0.5, 9);
    const Tick gap = sfq::safePulseSpacing();
    for (int i = 1; i <= 20; ++i)
        c.src->pulseAt(i * gap);
    c.jtls[0]->inject(0, 10); // provoke a violation vs the train
    c.sim.run();
    EXPECT_GT(c.sim.pulses(), 0u);
    EXPECT_GT(c.sim.droppedPulses(), 0u);
    EXPECT_GT(c.sim.switchEnergy(), 0.0);

    c.sim.reset();
    EXPECT_EQ(c.sim.now(), 0);
    EXPECT_TRUE(c.sim.idle());
    EXPECT_EQ(c.sim.pulses(), 0u);
    EXPECT_EQ(c.sim.droppedPulses(), 0u);
    EXPECT_EQ(c.sim.violations(), 0u);
    EXPECT_EQ(c.sim.recoveredPulses(), 0u);
    EXPECT_EQ(c.sim.switchEnergy(), 0.0);
    EXPECT_TRUE(c.sim.violationsByCell().empty());

    // The circuit is reusable: a clean run after disabling faults.
    c.sim.setPulseDropRate(0.0);
    c.sink->clear();
    for (int i = 1; i <= 5; ++i)
        c.src->pulseAt(i * gap);
    c.sim.run();
    EXPECT_EQ(c.sink->count(), 5u);
}

TEST(Campaign, DeterministicAndDegrading)
{
    perf::FaultCampaignConfig cfg;
    cfg.kinds = {FaultKind::PulseDrop, FaultKind::SpuriousPulse};
    cfg.rates = {0.0, 0.01, 0.2};
    cfg.seeds = 4;
    cfg.campaign_seed = 7;
    cfg.num_sc = 4;
    cfg.pulses = 32;

    const auto a = perf::runFaultCampaign(cfg);
    const auto b = perf::runFaultCampaign(cfg);
    EXPECT_EQ(perf::campaignToJson(a), perf::campaignToJson(b));

    ASSERT_EQ(a.points.size(), 6u);
    // Fault-free trials are pulse-exact; heavy drop rates are not.
    EXPECT_DOUBLE_EQ(a.points[0].accuracy, 1.0);
    EXPECT_LT(a.points[2].accuracy, 1.0);
    EXPECT_TRUE(perf::accuracyMonotone(a));

    const std::string json = perf::campaignToJson(a);
    EXPECT_NE(json.find("\"pulse_drop\""), std::string::npos);
    EXPECT_NE(json.find("\"accuracy\""), std::string::npos);
}

TEST(Compiler, PlanNpeRemapRoundRobinsOntoHealthySlots)
{
    const auto plan =
        compiler::planNpeRemap(4, {0, 1, 1, 0});
    EXPECT_EQ(plan.failed, 2);
    EXPECT_EQ(plan.extra_passes, 1);
    EXPECT_EQ(plan.host[0], 0);
    EXPECT_EQ(plan.host[1], 0); // first healthy host
    EXPECT_EQ(plan.host[2], 3); // next healthy host
    EXPECT_EQ(plan.host[3], 3);

    const auto identity = compiler::planNpeRemap(3, {0, 0, 0});
    EXPECT_EQ(identity.failed, 0);
    EXPECT_EQ(identity.extra_passes, 0);
}

TEST(Chip, DegradedModeRemapsAndStillClassifies)
{
    // Train a small SSNN, then run the same test set on a healthy
    // chip and on one with a failed output NPE: degraded mode must
    // complete (no abort), report the remap, charge extra time, and
    // classify identically — the remap host NPEs are bit-exact.
    auto all = data::synthDigits(2500, 17);
    auto [test, train] = data::split(all, 100);

    snn::SnnConfig cfg;
    cfg.hidden = 64;
    cfg.t_steps = 5;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, 4);
    snn::TrainConfig tc;
    tc.epochs = 2;
    snn::Trainer(mlp, tc).fit(train.images, train.labels);
    auto bin = snn::BinarySnn::fromFloat(mlp);

    compiler::ChipConfig chip_cfg;
    chip_cfg.n = 16;
    chip_cfg.sc_per_npe = 10;
    auto compiled = compiler::compileNetwork(bin, chip_cfg);

    chip::SushiChip healthy(chip_cfg);
    chip::SushiChip degraded(chip_cfg);
    degraded.markNpeFailed(3);
    ASSERT_EQ(degraded.remapPlan().failed, 1);
    EXPECT_NE(degraded.remapPlan().host[3], 3);

    snn::PoissonEncoder enc(99);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
        std::vector<float> pix(test.images.row(i),
                               test.images.row(i) + 784);
        snn::Tensor fr = enc.encode(pix, cfg.t_steps);
        std::vector<std::vector<std::uint8_t>> frames;
        for (int t = 0; t < cfg.t_steps; ++t) {
            std::vector<std::uint8_t> f(784);
            for (std::size_t d = 0; d < 784; ++d)
                f[d] = fr.at(static_cast<std::size_t>(t), d) > 0.5f;
            frames.push_back(std::move(f));
        }
        const int hp = healthy.predict(compiled, frames);
        const int dp = degraded.predict(compiled, frames);
        EXPECT_EQ(hp, dp) << "degraded remap must be bit-exact";
        hits += dp == test.labels[i] ? 1 : 0;
    }
    const double acc =
        static_cast<double>(hits) / static_cast<double>(test.size());
    EXPECT_GT(acc, 0.5); // well above the 10 % chance floor

    const auto &ds = degraded.stats();
    EXPECT_EQ(ds.failed_npes, 1u);
    EXPECT_GT(ds.remapped_neurons, 0u);
    EXPECT_GT(ds.degraded_passes, 0u);
    EXPECT_TRUE(ds.degraded());
    EXPECT_FALSE(healthy.stats().degraded());
    // The remap is reload-aware: extra passes cost configuration
    // batches and serialized time.
    EXPECT_GT(ds.reload_events, healthy.stats().reload_events);
    EXPECT_GT(ds.est_time_ps, healthy.stats().est_time_ps);

    // Clearing the failure restores the identity plan.
    degraded.clearFailedNpes();
    EXPECT_EQ(degraded.remapPlan().failed, 0);
}

} // namespace
} // namespace sushi
