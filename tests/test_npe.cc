/**
 * @file
 * Tests for the NPE: ripple-counter semantics, IF thresholding via
 * pre-load, gate-level equivalence, and the neuron FSM of Fig. 6/7.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "npe/neuron_fsm.hh"
#include "npe/npe.hh"
#include "sfq/constraints.hh"
#include "sfq/simulator.hh"

namespace sushi::npe {
namespace {

TEST(NpeBehavioural, CountsUpWhenExcitatory)
{
    Npe npe(4);
    npe.setPolarity(Polarity::Excitatory);
    for (int i = 1; i <= 10; ++i) {
        npe.in();
        EXPECT_EQ(npe.value(), static_cast<std::uint64_t>(i));
    }
}

TEST(NpeBehavioural, CountsDownWhenInhibitory)
{
    Npe npe(4);
    npe.rst();
    npe.write(10);
    npe.setPolarity(Polarity::Inhibitory);
    for (int i = 9; i >= 0; --i) {
        npe.in();
        EXPECT_EQ(npe.value(), static_cast<std::uint64_t>(i));
    }
}

TEST(NpeBehavioural, OverflowEmitsSpike)
{
    Npe npe(3); // 8 states
    npe.setPolarity(Polarity::Excitatory);
    int spikes = 0;
    for (int i = 0; i < 8; ++i)
        spikes += npe.in() ? 1 : 0;
    EXPECT_EQ(spikes, 1); // exactly one wrap in 8 pulses from 0
    EXPECT_EQ(npe.value(), 0u);
}

TEST(NpeBehavioural, UnderflowEmitsBorrowSpike)
{
    // Down-counting through zero wraps and emits from the final SC —
    // the "overflow of the lower number of states" failure mode that
    // bucketing exists to prevent (Sec. 5.1).
    Npe npe(3);
    npe.setPolarity(Polarity::Inhibitory);
    EXPECT_TRUE(npe.in()); // 0 -> 7 with a borrow out
    EXPECT_EQ(npe.value(), 7u);
}

TEST(NpeBehavioural, IfThresholdViaPreload)
{
    // Pre-load 2^K - theta: the spike appears exactly on the theta-th
    // excitatory pulse.
    const int k = 6;
    const std::uint64_t theta = 17;
    Npe npe(k);
    npe.rst();
    npe.write(npe.numStates() - theta);
    npe.setPolarity(Polarity::Excitatory);
    for (std::uint64_t i = 1; i < theta; ++i)
        EXPECT_FALSE(npe.in()) << "pulse " << i;
    EXPECT_TRUE(npe.in()); // the theta-th pulse crosses threshold
}

TEST(NpeBehavioural, RstReadsValueAndClears)
{
    Npe npe(5);
    for (int i = 0; i < 11; ++i)
        npe.in();
    EXPECT_EQ(npe.rst(), 11u);
    EXPECT_EQ(npe.value(), 0u);
}

TEST(NpeBehavioural, MixedPolarityAccumulation)
{
    // +7 then -3 then +2 = 6 (the bucketed traversal pattern).
    Npe npe(6);
    npe.rst();
    npe.write(8); // headroom below
    npe.setPolarity(Polarity::Excitatory);
    for (int i = 0; i < 7; ++i)
        npe.in();
    npe.setPolarity(Polarity::Inhibitory);
    for (int i = 0; i < 3; ++i)
        npe.in();
    npe.setPolarity(Polarity::Excitatory);
    for (int i = 0; i < 2; ++i)
        npe.in();
    EXPECT_EQ(npe.value(), 8u + 7u - 3u + 2u);
    EXPECT_EQ(npe.spikesEmitted(), 0u);
}

TEST(NpeBehavioural, StatePreservedAcrossSlices)
{
    // The bit-slice method relies on partial sums surviving between
    // input blocks with no extra storage (Sec. 5.3).
    Npe npe(8);
    for (int i = 0; i < 100; ++i)
        npe.in();
    const std::uint64_t mid = npe.value();
    // ... a different slice is processed elsewhere ...
    for (int i = 0; i < 50; ++i)
        npe.in();
    EXPECT_EQ(npe.value(), mid + 50);
}

TEST(NpeBehavioural, PulseAndSpikeCounters)
{
    Npe npe(2); // 4 states
    for (int i = 0; i < 9; ++i)
        npe.in();
    EXPECT_EQ(npe.pulsesReceived(), 9u);
    EXPECT_EQ(npe.spikesEmitted(), 2u); // wraps at 4 and 8
}

class NpeGateTest : public ::testing::Test
{
  protected:
    NpeGateTest() : net(sim), npe(net, "npe", 4)
    {
        sim.setViolationPolicy(sfq::ViolationPolicy::Fatal);
        gap = sfq::safePulseSpacing();
    }

    Tick next() { return t_ += gap; }

    sfq::Simulator sim;
    sfq::Netlist net;
    NpeGate npe;
    Tick gap;
    Tick t_ = 0;
};

TEST_F(NpeGateTest, RippleCountsUp)
{
    npe.injectSet1(next());
    for (int i = 0; i < 11; ++i)
        npe.injectIn(next());
    sim.run();
    EXPECT_EQ(npe.value(), 11u);
    EXPECT_EQ(npe.outSink().count(), 0u);
    EXPECT_EQ(sim.violations(), 0u);
}

TEST_F(NpeGateTest, OverflowSpikesOut)
{
    npe.injectSet1(next());
    for (int i = 0; i < 16; ++i)
        npe.injectIn(next());
    sim.run();
    EXPECT_EQ(npe.value(), 0u);
    EXPECT_EQ(npe.outSink().count(), 1u);
}

TEST_F(NpeGateTest, WritePreloadsCounter)
{
    npe.injectRst(next());
    // Pre-load 0b0101 = 5 through individual write channels.
    npe.injectWrite(0, next());
    npe.injectWrite(2, next());
    sim.run();
    EXPECT_EQ(npe.value(), 5u);
}

TEST_F(NpeGateTest, ThresholdBehaviour)
{
    const std::uint64_t theta = 6; // preload 16 - 6 = 10
    npe.injectRst(next());
    npe.injectWrite(1, next());
    npe.injectWrite(3, next()); // 0b1010 = 10
    npe.injectSet1(next());
    for (std::uint64_t i = 0; i < theta; ++i)
        npe.injectIn(next());
    sim.run();
    EXPECT_EQ(npe.outSink().count(), 1u);
    EXPECT_EQ(sim.violations(), 0u);
}

TEST_F(NpeGateTest, RstReadsEverySetBit)
{
    npe.injectSet1(next());
    for (int i = 0; i < 7; ++i) // 0b0111
        npe.injectIn(next());
    npe.injectRst(next());
    sim.run();
    EXPECT_EQ(npe.readSink(0).count(), 1u);
    EXPECT_EQ(npe.readSink(1).count(), 1u);
    EXPECT_EQ(npe.readSink(2).count(), 1u);
    EXPECT_EQ(npe.readSink(3).count(), 0u);
    EXPECT_EQ(npe.value(), 0u);
}

/** Property: gate and behavioural NPEs agree on random programs. */
TEST(NpeEquivalence, RandomPulsePrograms)
{
    Rng rng(7);
    for (int trial = 0; trial < 10; ++trial) {
        sfq::Simulator sim;
        sim.setViolationPolicy(sfq::ViolationPolicy::Fatal);
        sfq::Netlist net(sim);
        NpeGate gate(net, "npe", 5);
        Npe ref(5);

        const Tick gap = sfq::safePulseSpacing();
        Tick t = gap;
        std::uint64_t ref_spikes = 0;

        // rst, preload, arm, then a random pulse train.
        gate.injectRst(t);
        ref.rst();
        t += gap;
        const std::uint64_t preload = rng.below(32);
        for (int b = 0; b < 5; ++b) {
            if (preload & (1u << b)) {
                gate.injectWrite(b, t);
                t += gap;
            }
        }
        ref.write(preload);
        const bool up = rng.chance(0.5);
        if (up) {
            gate.injectSet1(t);
            ref.setPolarity(Polarity::Excitatory);
        } else {
            gate.injectSet0(t);
            ref.setPolarity(Polarity::Inhibitory);
        }
        t += gap;
        const int pulses = static_cast<int>(rng.below(40));
        for (int i = 0; i < pulses; ++i) {
            gate.injectIn(t);
            ref_spikes += ref.in() ? 1 : 0;
            t += gap;
        }
        sim.run();
        EXPECT_EQ(gate.value(), ref.value()) << "trial " << trial;
        EXPECT_EQ(gate.outSink().count(), ref_spikes)
            << "trial " << trial;
        EXPECT_EQ(sim.violations(), 0u);
    }
}

TEST(NeuronFsm, RestDecayStaysAtRest)
{
    NeuronFsm n(5, 3, 2);
    EXPECT_FALSE(n.stimulate(Stimulus::Time));
    EXPECT_TRUE(n.resting());
}

TEST(NeuronFsm, SpikesClimbTimeDecays)
{
    NeuronFsm n(5, 3, 2);
    n.stimulate(Stimulus::Spike);
    n.stimulate(Stimulus::Spike);
    EXPECT_EQ(n.stateName(), "b2");
    n.stimulate(Stimulus::Time);
    EXPECT_EQ(n.stateName(), "b1"); // failed initiation decay
}

TEST(NeuronFsm, FullActionPotential)
{
    NeuronFsm n(3, 2, 2);
    // Climb to threshold.
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(n.stimulate(Stimulus::Spike));
    EXPECT_EQ(n.stateName(), "b3");
    // Time: b3 -> r0.
    EXPECT_FALSE(n.stimulate(Stimulus::Time));
    EXPECT_EQ(n.stateName(), "r0");
    // r0 -> r1: spike is sent on the r_{R-1} -> r_R edge (R = 2).
    EXPECT_FALSE(n.stimulate(Stimulus::Time));
    EXPECT_TRUE(n.stimulate(Stimulus::Time));
    EXPECT_EQ(n.spikesSent(), 1);
    EXPECT_EQ(n.stateName(), "r2");
    // r2 -> f0 -> f1 -> f2 -> b0.
    n.stimulate(Stimulus::Time);
    EXPECT_EQ(n.stateName(), "f0");
    n.stimulate(Stimulus::Time);
    n.stimulate(Stimulus::Time);
    EXPECT_EQ(n.stateName(), "f2");
    n.stimulate(Stimulus::Time);
    EXPECT_TRUE(n.resting());
}

TEST(NeuronFsm, RefractoryIgnoresSpikes)
{
    NeuronFsm n(1, 2, 1);
    n.stimulate(Stimulus::Spike); // b1 = threshold
    n.stimulate(Stimulus::Time);  // r0
    const int before = n.linearState();
    n.stimulate(Stimulus::Spike); // ignored
    EXPECT_EQ(n.linearState(), before);
}

TEST(NeuronFsm, SaturatesAtThreshold)
{
    NeuronFsm n(2, 1, 1);
    for (int i = 0; i < 10; ++i)
        n.stimulate(Stimulus::Spike);
    EXPECT_EQ(n.stateName(), "b2");
}

TEST(NeuronFsm, LinearStateIsInjective)
{
    NeuronFsm n(3, 2, 2);
    std::vector<int> seen;
    seen.push_back(n.linearState());
    // Walk the full trajectory and confirm distinct linear indices.
    for (int i = 0; i < 3; ++i)
        n.stimulate(Stimulus::Spike);
    seen.push_back(n.linearState());
    // Six time stimuli traverse r0..r2 and f0..f2 without returning
    // to the (already-seen) resting state.
    for (int i = 0; i < 6; ++i) {
        n.stimulate(Stimulus::Time);
        seen.push_back(n.linearState());
    }
    std::sort(seen.begin(), seen.end());
    for (std::size_t i = 1; i < seen.size(); ++i)
        EXPECT_NE(seen[i], seen[i - 1]);
}

TEST(NeuronFsm, StateBudgetMatchesPaperClaim)
{
    // Sec. 4.1.2: ~500 states suffice; a 10-SC NPE offers 1024.
    const int budget = neuronStateBudget(255, 128, 112);
    EXPECT_LE(budget, 500);
    Npe npe(10);
    EXPECT_GE(npe.numStates(), 500u);
    EXPECT_GE(npe.numStates(),
              static_cast<std::uint64_t>(budget));
}

} // namespace
} // namespace sushi::npe
