/**
 * @file
 * Edge-case tests for the shared WorkerPool / parallelFor machinery
 * and the thread-safe logging sink: exception propagation through
 * drain(), nested parallelFor inlining from inside a pool worker,
 * pool reuse after a failed drain, and a multi-threaded warn()
 * hammer asserting records never tear or get lost. These run under
 * the TSan CI job.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace sushi {
namespace {

TEST(WorkerPool, DrainPropagatesFirstJobException)
{
    WorkerPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&ran, i] {
            ++ran;
            if (i == 3)
                throw std::runtime_error("job 3 failed");
        });
    }
    try {
        pool.drain();
        FAIL() << "drain() swallowed the job exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job 3 failed");
    }
    EXPECT_EQ(ran.load(), 8); // one failure doesn't cancel the rest
}

TEST(WorkerPool, ReusableAfterFailedDrain)
{
    WorkerPool pool(2);
    pool.submit([] { throw std::logic_error("boom"); });
    EXPECT_THROW(pool.drain(), std::logic_error);

    // The error must not be sticky: the pool keeps working and a
    // clean drain succeeds.
    std::atomic<int> ran{0};
    for (int i = 0; i < 16; ++i)
        pool.submit([&ran] { ++ran; });
    EXPECT_NO_THROW(pool.drain());
    EXPECT_EQ(ran.load(), 16);

    // And a second failure is reported again, not suppressed.
    pool.submit([] { throw std::logic_error("boom 2"); });
    EXPECT_THROW(pool.drain(), std::logic_error);
    EXPECT_NO_THROW(pool.drain()); // drained, nothing pending
}

TEST(WorkerPool, OnWorkerThreadDistinguishesContext)
{
    EXPECT_FALSE(WorkerPool::onWorkerThread());
    std::atomic<bool> inside{false};
    WorkerPool::shared().submit(
        [&inside] { inside = WorkerPool::onWorkerThread(); });
    WorkerPool::shared().drain();
    EXPECT_TRUE(inside.load());
}

TEST(ParallelFor, NestedCallInlinesOnPoolWorker)
{
    // Run a parallelFor from INSIDE a pool worker (every pool,
    // including a 1-wide one, has real worker threads): the nested
    // call must inline — no deadlock waiting on the pool that is
    // running us — while still covering its range exactly once.
    ASSERT_GT(WorkerPool::shared().size(), 0u);
    const std::size_t inner_n = 64;
    std::vector<int> hits(inner_n, 0);
    std::atomic<bool> on_worker{false};
    WorkerPool::shared().submit([&hits, &on_worker] {
        on_worker = WorkerPool::onWorkerThread();
        ParallelOptions grain1;
        grain1.grain = 1;
        parallelFor(
            hits.size(),
            [&hits](std::size_t b, std::size_t e) {
                for (std::size_t i = b; i < e; ++i)
                    ++hits[i];
            },
            grain1);
    });
    WorkerPool::shared().drain();
    EXPECT_TRUE(on_worker.load());
    for (std::size_t i = 0; i < inner_n; ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ParallelFor, RethrowsAtCallSiteAndStaysUsable)
{
    ParallelOptions grain1;
    grain1.grain = 1;
    EXPECT_THROW(
        parallelFor(
            8,
            [](std::size_t b, std::size_t e) {
                // Whichever chunk covers index 2 throws — fires on
                // the inline path and on every chunking.
                if (b <= 2 && 2 < e)
                    throw std::runtime_error("chunk failed");
            },
            grain1),
        std::runtime_error);

    // The shared pool survives for later loops.
    std::vector<int> out(128, 0);
    parallelFor(
        out.size(),
        [&out](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i)
                out[i] = static_cast<int>(i);
        },
        grain1);
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0),
              127 * 128 / 2);
}

// ---- logging sink thread-safety ---------------------------------

std::mutex g_records_mu;
std::vector<std::string> g_records;

void
recordHook(LogLevel level, const std::string &msg)
{
    if (level != LogLevel::Warn)
        return;
    std::lock_guard<std::mutex> lock(g_records_mu);
    g_records.push_back(msg);
}

TEST(Logging, SinkSerializesConcurrentWarnings)
{
    {
        std::lock_guard<std::mutex> lock(g_records_mu);
        g_records.clear();
    }
    setLogHook(&recordHook);
    const std::size_t n = 512;
    const std::size_t before = warnCount();

    ParallelOptions grain1;
    grain1.grain = 1;
    parallelFor(
        n,
        [](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i)
                sushi_warn("concurrent warning %zu of many", i);
        },
        grain1);
    setLogHook(nullptr);

    EXPECT_EQ(warnCount() - before, n); // none lost
    std::lock_guard<std::mutex> lock(g_records_mu);
    ASSERT_EQ(g_records.size(), n);
    std::vector<bool> seen(n, false);
    for (const auto &r : g_records) {
        // Each record arrived whole: prefix and suffix intact and
        // the index parses back out.
        const auto pos = r.find("concurrent warning ");
        ASSERT_NE(pos, std::string::npos) << r;
        EXPECT_NE(r.find(" of many"), std::string::npos) << r;
        const std::size_t idx =
            std::stoul(r.substr(pos + std::strlen("concurrent warning ")));
        ASSERT_LT(idx, n);
        EXPECT_FALSE(seen[idx]) << "duplicate record " << idx;
        seen[idx] = true;
    }
}

} // namespace
} // namespace sushi
