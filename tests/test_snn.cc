/**
 * @file
 * Tests for the SNN framework: tensors, encoder, IF dynamics,
 * training, and XNOR binarization.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "snn/binarize.hh"
#include "snn/encoder.hh"
#include "snn/network.hh"
#include "snn/train.hh"

namespace sushi::snn {
namespace {

TEST(TensorTest, ShapeAndZero)
{
    Tensor t(3, 4);
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 4u);
    EXPECT_EQ(t.size(), 12u);
    t.at(1, 2) = 5.0f;
    EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
    t.zero();
    EXPECT_FLOAT_EQ(t.at(1, 2), 0.0f);
}

TEST(TensorTest, HeInitMoments)
{
    Rng rng(5);
    Tensor t(100, 400);
    t.heInit(rng, 400);
    double sum = 0, sq = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        sum += t.data()[i];
        sq += static_cast<double>(t.data()[i]) * t.data()[i];
    }
    const double n = static_cast<double>(t.size());
    EXPECT_NEAR(sum / n, 0.0, 0.005);
    EXPECT_NEAR(sq / n, 2.0 / 400.0, 0.0005);
}

TEST(TensorTest, LinearForwardMatchesManual)
{
    Tensor x(2, 3), w(2, 3);
    std::vector<float> bias = {0.5f, -1.0f};
    float xv[] = {1, 2, 3, 0, 1, 0};
    float wv[] = {1, 0, -1, 2, 2, 2};
    std::copy_n(xv, 6, x.data());
    std::copy_n(wv, 6, w.data());
    Tensor out(2, 2);
    linearForward(x, w, bias, out);
    EXPECT_FLOAT_EQ(out.at(0, 0), 1 - 3 + 0.5f);
    EXPECT_FLOAT_EQ(out.at(0, 1), 2 + 4 + 6 - 1.0f);
    EXPECT_FLOAT_EQ(out.at(1, 0), 0 + 0.5f);
    EXPECT_FLOAT_EQ(out.at(1, 1), 2 - 1.0f);
}

TEST(TensorTest, LinearBackwardGradCheck)
{
    // Finite-difference check of dW on a tiny layer.
    Rng rng(9);
    const std::size_t B = 3, I = 4, O = 2;
    Tensor x(B, I), w(O, I), dout(B, O);
    std::vector<float> bias(O, 0.0f);
    for (std::size_t i = 0; i < x.size(); ++i)
        x.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    for (std::size_t i = 0; i < w.size(); ++i)
        w.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    for (std::size_t i = 0; i < dout.size(); ++i)
        dout.data()[i] = static_cast<float>(rng.uniform(-1, 1));

    Tensor dw(O, I), dx(B, I);
    std::vector<float> db(O, 0.0f);
    linearBackward(x, w, dout, dw, db, dx);

    // L = sum(out * dout): dL/dw analytically equals dw above.
    auto loss = [&](const Tensor &wt) {
        Tensor out(B, O);
        linearForward(x, wt, bias, out);
        double l = 0;
        for (std::size_t i = 0; i < out.size(); ++i)
            l += static_cast<double>(out.data()[i]) *
                 dout.data()[i];
        return l;
    };
    const float eps = 1e-3f;
    for (std::size_t k = 0; k < w.size(); k += 3) {
        Tensor wp = w;
        wp.data()[k] += eps;
        Tensor wm = w;
        wm.data()[k] -= eps;
        const double fd = (loss(wp) - loss(wm)) / (2 * eps);
        EXPECT_NEAR(fd, dw.data()[k], 1e-2) << "k=" << k;
    }
}

TEST(Encoder, RateMatchesIntensity)
{
    PoissonEncoder enc(3);
    std::vector<float> pixels = {0.0f, 0.25f, 1.0f};
    const int t = 4000;
    Tensor frames = enc.encode(pixels, t);
    double counts[3] = {0, 0, 0};
    for (int s = 0; s < t; ++s)
        for (int i = 0; i < 3; ++i)
            counts[i] += frames.at(static_cast<std::size_t>(s),
                                   static_cast<std::size_t>(i));
    EXPECT_DOUBLE_EQ(counts[0], 0.0);
    EXPECT_NEAR(counts[1] / t, 0.25, 0.03);
    EXPECT_DOUBLE_EQ(counts[2], static_cast<double>(t));
}

TEST(Encoder, Deterministic)
{
    std::vector<float> pixels(50, 0.5f);
    PoissonEncoder a(7), b(7);
    Tensor fa = a.encode(pixels, 10);
    Tensor fb = b.encode(pixels, 10);
    for (std::size_t i = 0; i < fa.size(); ++i)
        EXPECT_EQ(fa.data()[i], fb.data()[i]);
}

TEST(IfDynamics, StatefulAccumulatesAcrossSteps)
{
    SnnConfig cfg;
    cfg.input = 1;
    cfg.hidden = 1;
    cfg.output = 1;
    cfg.t_steps = 3;
    cfg.stateless = false;
    SnnMlp net(cfg, 1);
    // Hidden weight 0.5: needs two input spikes to reach theta=1.
    net.w1.at(0, 0) = 0.5f;
    net.b1[0] = 0.0f;
    net.w2.at(0, 0) = 1.0f;
    net.b2[0] = 0.0f;

    std::vector<Tensor> frames(3, Tensor(1, 1));
    for (auto &f : frames)
        f.at(0, 0) = 1.0f;
    Tensor counts = net.forward(frames);
    // Hidden membrane: 0.5, 1.0 (fire, reset), 0.5 — one hidden
    // spike, which drives one output spike (weight 1 = theta).
    EXPECT_FLOAT_EQ(counts.at(0, 0), 1.0f);
}

TEST(IfDynamics, StatelessNeverAccumulates)
{
    SnnConfig cfg;
    cfg.input = 1;
    cfg.hidden = 1;
    cfg.output = 1;
    cfg.t_steps = 4;
    cfg.stateless = true;
    SnnMlp net(cfg, 1);
    net.w1.at(0, 0) = 0.5f; // below threshold every step
    net.b1[0] = 0.0f;
    net.w2.at(0, 0) = 1.0f;
    net.b2[0] = 0.0f;
    std::vector<Tensor> frames(4, Tensor(1, 1));
    for (auto &f : frames)
        f.at(0, 0) = 1.0f;
    Tensor counts = net.forward(frames);
    EXPECT_FLOAT_EQ(counts.at(0, 0), 0.0f);
}

TEST(Surrogate, PeaksAtThreshold)
{
    const float at0 = surrogateGrad(0.0f, 2.0f);
    EXPECT_GT(at0, surrogateGrad(1.0f, 2.0f));
    EXPECT_GT(at0, surrogateGrad(-1.0f, 2.0f));
    EXPECT_FLOAT_EQ(surrogateGrad(0.5f, 2.0f),
                    surrogateGrad(-0.5f, 2.0f));
}

TEST(Training, LossDecreasesOnToyTask)
{
    // Two obvious classes: left-half-on vs right-half-on images.
    const std::size_t n = 200, dim = 16;
    Tensor images(n, dim);
    std::vector<int> labels(n);
    Rng rng(17);
    for (std::size_t i = 0; i < n; ++i) {
        const int cls = static_cast<int>(rng.below(2));
        labels[i] = cls;
        for (std::size_t d = 0; d < dim; ++d) {
            const bool on = cls == 0 ? d < dim / 2 : d >= dim / 2;
            images.at(i, d) = on ? 0.9f : 0.05f;
        }
    }
    SnnConfig cfg;
    cfg.input = dim;
    cfg.hidden = 16;
    cfg.output = 2;
    cfg.t_steps = 4;
    cfg.stateless = true;
    SnnMlp net(cfg, 2);
    TrainConfig tc;
    tc.epochs = 15;
    tc.batch = 20;
    // Plain float training: the binary-aware path is covered by
    // Binarize.BinaryAwareTrainingIsConsistent.
    tc.binary_aware = false;
    Trainer trainer(net, tc);
    auto stats = trainer.fit(images, labels);
    EXPECT_LT(stats.epoch_loss.back(), stats.epoch_loss.front());
    EXPECT_GT(stats.epoch_train_acc.back(), 0.85);
    EXPECT_GT(evaluate(net, images, labels), 0.85);
}

TEST(Binarize, SignsAndThresholds)
{
    Tensor w(2, 4);
    float wv[] = {0.5f, -0.5f, 0.25f, -0.25f, // alpha = 0.375
                  1.0f, 1.0f, 1.0f, 1.0f};    // alpha = 1
    std::copy_n(wv, 8, w.data());
    std::vector<float> b = {0.0f, 0.5f};
    BinaryLayer layer = binarizeLayer(w, b, 1.0f);
    EXPECT_EQ(layer.weights[0],
              (std::vector<std::int8_t>{1, -1, 1, -1}));
    EXPECT_EQ(layer.weights[1],
              (std::vector<std::int8_t>{1, 1, 1, 1}));
    // ceil((1 - 0) / 0.375) = 3; ceil((1 - 0.5) / 1) = 1.
    EXPECT_EQ(layer.thresholds[0], 3);
    EXPECT_EQ(layer.thresholds[1], 1);
}

TEST(Binarize, SynapsePolarityCounts)
{
    BinaryLayer layer;
    layer.weights = {{1, -1, 1}, {-1, -1, 1}};
    layer.thresholds = {1, 1};
    EXPECT_EQ(layer.positiveSynapses(), 3);
    EXPECT_EQ(layer.negativeSynapses(), 3);
}

TEST(Binarize, EffectiveWeightsPreserveSignAndScale)
{
    Rng rng(23);
    Tensor w(3, 8);
    for (std::size_t i = 0; i < w.size(); ++i)
        w.data()[i] = static_cast<float>(rng.uniform(-2, 2));
    Tensor eff = binaryEffectiveWeights(w);
    for (std::size_t o = 0; o < 3; ++o) {
        double alpha = 0;
        for (std::size_t i = 0; i < 8; ++i)
            alpha += std::fabs(w.at(o, i));
        alpha /= 8.0;
        for (std::size_t i = 0; i < 8; ++i) {
            EXPECT_NEAR(std::fabs(eff.at(o, i)), alpha, 1e-5);
            EXPECT_EQ(eff.at(o, i) > 0, w.at(o, i) >= 0.0f);
        }
    }
}

TEST(Binarize, StatelessStepMatchesMembraneRule)
{
    BinaryLayer layer;
    layer.weights = {{1, -1, 1}, {-1, -1, -1}};
    layer.thresholds = {1, 0};
    auto net = BinarySnn::fromLayers({layer}, 1);
    // Frame {1,0,1}: neuron 0 membrane 2 >= 1 -> fire;
    // neuron 1 membrane -2 < 0 -> silent.
    auto out = net.stepForward({1, 0, 1});
    EXPECT_EQ(out[0], 1);
    EXPECT_EQ(out[1], 0);
    // Frame {0,0,0}: membranes 0 -> neuron 1 (theta 0) fires.
    out = net.stepForward({0, 0, 0});
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(out[1], 1);
}

TEST(Binarize, CountsAccumulateOverSteps)
{
    BinaryLayer layer;
    layer.weights = {{1, 1}};
    layer.thresholds = {2};
    auto net = BinarySnn::fromLayers({layer}, 3);
    std::vector<std::vector<std::uint8_t>> frames = {
        {1, 1}, {1, 0}, {1, 1}};
    auto counts = net.forwardCounts(frames);
    EXPECT_EQ(counts[0], 2); // fires at steps 0 and 2
    EXPECT_EQ(net.predict(frames), 0);
}

TEST(Binarize, BinaryAwareTrainingIsConsistent)
{
    // After binarization-aware stateless training, the binarized
    // network must agree exactly with the effective-binary float
    // model (same inequality over integers).
    const std::size_t n = 120, dim = 16;
    Tensor images(n, dim);
    std::vector<int> labels(n);
    Rng rng(29);
    for (std::size_t i = 0; i < n; ++i) {
        const int cls = static_cast<int>(rng.below(2));
        labels[i] = cls;
        for (std::size_t d = 0; d < dim; ++d)
            images.at(i, d) =
                ((cls == 0) == (d < dim / 2)) ? 0.9f : 0.1f;
    }
    SnnConfig cfg;
    cfg.input = dim;
    cfg.hidden = 8;
    cfg.output = 2;
    cfg.t_steps = 4;
    cfg.stateless = true;
    SnnMlp net(cfg, 31);
    TrainConfig tc;
    tc.epochs = 3;
    tc.batch = 20;
    Trainer(net, tc).fit(images, labels);

    SnnMlp eff = toEffectiveBinary(net);
    auto bin = BinarySnn::fromFloat(net);
    PoissonEncoder enc(55);
    for (std::size_t i = 0; i < 30; ++i) {
        std::vector<float> pix(images.row(i), images.row(i) + dim);
        Tensor fr = enc.encode(pix, cfg.t_steps);
        std::vector<Tensor> frames;
        std::vector<std::vector<std::uint8_t>> bframes;
        for (int t = 0; t < cfg.t_steps; ++t) {
            Tensor one(1, dim);
            std::vector<std::uint8_t> bf(dim);
            for (std::size_t d = 0; d < dim; ++d) {
                one.at(0, d) =
                    fr.at(static_cast<std::size_t>(t), d);
                bf[d] = one.at(0, d) > 0.5f;
            }
            frames.push_back(one);
            bframes.push_back(bf);
        }
        EXPECT_EQ(bin.predict(bframes), eff.predict(frames)[0])
            << "sample " << i;
    }
}

} // namespace
} // namespace sushi::snn
