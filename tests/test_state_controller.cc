/**
 * @file
 * Tests for the state controller: behavioural FSM semantics (Fig. 5),
 * the gate-level netlist (Fig. 8(b)), and equivalence between them.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "npe/state_controller.hh"
#include "sfq/constraints.hh"
#include "sfq/simulator.hh"

namespace sushi::npe {
namespace {

TEST(StateControllerBehavioural, FlipsOnIn)
{
    StateController sc;
    EXPECT_FALSE(sc.state());
    sc.in();
    EXPECT_TRUE(sc.state());
    sc.in();
    EXPECT_FALSE(sc.state());
}

TEST(StateControllerBehavioural, UnarmedNeverEmits)
{
    StateController sc;
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(sc.in());
}

TEST(StateControllerBehavioural, Set0EmitsOnRise)
{
    // Fig. 5: with NDRO0 set, the 0 -> 1 flip outputs.
    StateController sc;
    sc.set0();
    EXPECT_TRUE(sc.in());  // 0 -> 1
    EXPECT_FALSE(sc.in()); // 1 -> 0
    EXPECT_TRUE(sc.in());  // 0 -> 1
}

TEST(StateControllerBehavioural, Set1EmitsOnFall)
{
    StateController sc;
    sc.set1();
    EXPECT_FALSE(sc.in()); // 0 -> 1
    EXPECT_TRUE(sc.in());  // 1 -> 0
}

TEST(StateControllerBehavioural, SetsAreExclusive)
{
    StateController sc;
    sc.set0();
    sc.set1(); // disables set0
    EXPECT_EQ(sc.arm(), ScArm::Fall);
    sc.set0();
    EXPECT_EQ(sc.arm(), ScArm::Rise);
}

TEST(StateControllerBehavioural, RstReadsAndClears)
{
    StateController sc;
    sc.set0();
    sc.in(); // state 1
    EXPECT_TRUE(sc.rst());
    EXPECT_FALSE(sc.state());
    EXPECT_EQ(sc.arm(), ScArm::None);
    EXPECT_FALSE(sc.rst()); // already clear: no read pulse
}

TEST(StateControllerBehavioural, WriteSetsState)
{
    StateController sc;
    sc.rst();
    sc.write();
    EXPECT_TRUE(sc.state());
}

TEST(StateControllerBehavioural, WriteWithoutRstPanics)
{
    StateController sc;
    sc.write();
    EXPECT_DEATH(sc.write(), "write must follow rst");
}

/** Gate-level fixture: one ScGate with its out/read captured. */
class ScGateTest : public ::testing::Test
{
  protected:
    ScGateTest() : net(sim), sc(net, "sc")
    {
        sim.setViolationPolicy(sfq::ViolationPolicy::Fatal);
        out = &net.makeSink("out");
        read = &net.makeSink("read");
        sc.connectOut(*out, 0);
        sc.connectRead(*read, 0);
        gap = sfq::safePulseSpacing();
    }

    Tick
    next()
    {
        // Keep injections strictly in the future even after earlier
        // sim.run() calls advanced time past the last injection.
        t_ = std::max(t_ + gap, sim.now() + gap);
        return t_;
    }

    sfq::Simulator sim;
    sfq::Netlist net;
    ScGate sc;
    sfq::PulseSink *out;
    sfq::PulseSink *read;
    Tick gap;
    Tick t_ = 0;
};

TEST_F(ScGateTest, UnarmedInFlipsWithoutOutput)
{
    sc.injectIn(next());
    sim.run();
    EXPECT_TRUE(sc.state());
    EXPECT_EQ(out->count(), 0u);
}

TEST_F(ScGateTest, Set0EmitsOnRise)
{
    sc.injectSet0(next());
    sc.injectIn(next());
    sim.run();
    EXPECT_EQ(out->count(), 1u);
    sc.injectIn(next());
    sim.run();
    EXPECT_EQ(out->count(), 1u); // 1 -> 0: no output
}

TEST_F(ScGateTest, Set1EmitsOnFall)
{
    sc.injectSet1(next());
    sc.injectIn(next());
    sc.injectIn(next());
    sim.run();
    EXPECT_EQ(out->count(), 1u);
    EXPECT_FALSE(sc.state());
}

TEST_F(ScGateTest, SetsExclusiveInGates)
{
    sc.injectSet0(next());
    sc.injectSet1(next());
    sim.run();
    EXPECT_EQ(sc.arm(), ScArm::Fall);
    sc.injectSet0(next());
    sim.run();
    EXPECT_EQ(sc.arm(), ScArm::Rise);
}

TEST_F(ScGateTest, RstEmitsReadPulseIffStateWasOne)
{
    sc.injectIn(next()); // state 1
    sc.injectRst(next());
    sim.run();
    EXPECT_EQ(read->count(), 1u);
    EXPECT_FALSE(sc.state());
    EXPECT_EQ(sc.arm(), ScArm::None);

    sc.injectRst(next());
    sim.run();
    EXPECT_EQ(read->count(), 1u); // state was 0: no second read
}

TEST_F(ScGateTest, RstProducesNoSpuriousOut)
{
    // Sec. 5.2 ordering: the rst-driven toggle-back must not reach
    // the out channel even when the SC was armed.
    sc.injectSet1(next());
    sc.injectIn(next()); // state 1, no out (rise with set1)
    sc.injectRst(next());
    sim.run();
    EXPECT_EQ(out->count(), 0u);
    EXPECT_EQ(read->count(), 1u);
}

TEST_F(ScGateTest, WriteAfterRstSetsStateSilently)
{
    sc.injectRst(next());
    sc.injectWrite(next());
    sim.run();
    EXPECT_TRUE(sc.state());
    EXPECT_EQ(out->count(), 0u); // unarmed after rst
}

TEST_F(ScGateTest, FullCycleRstWriteSetIn)
{
    // The Sec. 5.2 asynchronous ordering: rst -> write -> set -> in.
    sc.injectRst(next());
    sc.injectWrite(next()); // state 1
    sc.injectSet1(next());  // arm fall
    sc.injectIn(next());    // 1 -> 0: out pulse
    sim.run();
    EXPECT_EQ(out->count(), 1u);
    EXPECT_FALSE(sc.state());
}

TEST_F(ScGateTest, NoTimingViolationsUnderSafeSpacing)
{
    // Policy is Fatal: reaching the end proves constraint-cleanliness.
    sc.injectSet0(next());
    for (int i = 0; i < 8; ++i)
        sc.injectIn(next());
    sc.injectRst(next());
    sc.injectWrite(next());
    sc.injectSet1(next());
    sc.injectIn(next());
    sim.run();
    EXPECT_EQ(sim.violations(), 0u);
}

/**
 * Property test: random stimulus sequences produce identical
 * state/output traces on the behavioural and gate-level models.
 */
TEST(ScEquivalence, RandomSequences)
{
    Rng rng(2023);
    for (int trial = 0; trial < 30; ++trial) {
        sfq::Simulator sim;
        sim.setViolationPolicy(sfq::ViolationPolicy::Fatal);
        sfq::Netlist net(sim);
        ScGate gate(net, "sc");
        auto &out = net.makeSink("out");
        auto &read = net.makeSink("read");
        gate.connectOut(out, 0);
        gate.connectRead(read, 0);

        StateController ref;
        std::size_t ref_out = 0, ref_read = 0;

        const Tick gap = sfq::safePulseSpacing();
        Tick t = gap;
        bool wrote_since_rst = true; // treat initial state as written
        for (int step = 0; step < 40; ++step) {
            t = std::max(t + gap, sim.now() + gap);
            switch (rng.below(5)) {
              case 0:
                gate.injectIn(t);
                if (ref.in())
                    ++ref_out;
                break;
              case 1:
                gate.injectSet0(t);
                ref.set0();
                break;
              case 2:
                gate.injectSet1(t);
                ref.set1();
                break;
              case 3:
                gate.injectRst(t);
                if (ref.rst())
                    ++ref_read;
                wrote_since_rst = false;
                break;
              case 4:
                // The Sec. 5.2 protocol orders rst -> write -> set ->
                // input: a write is only legal while the SC is still
                // disarmed and clear after a rst.
                if (!wrote_since_rst && !ref.state() &&
                    ref.arm() == ScArm::None) {
                    gate.injectWrite(t);
                    ref.write();
                    wrote_since_rst = true;
                } else {
                    gate.injectIn(t);
                    if (ref.in())
                        ++ref_out;
                }
                break;
            }
            sim.run();
            ASSERT_EQ(gate.state(), ref.state())
                << "trial " << trial << " step " << step;
            ASSERT_EQ(gate.arm(), ref.arm())
                << "trial " << trial << " step " << step;
        }
        EXPECT_EQ(out.count(), ref_out) << "trial " << trial;
        EXPECT_EQ(read.count(), ref_read) << "trial " << trial;
        EXPECT_EQ(sim.violations(), 0u);
    }
}

TEST(ScResources, LogicJjCount)
{
    sfq::Simulator sim;
    sfq::Netlist net(sim);
    ScGate sc(net, "sc");
    EXPECT_EQ(net.resources().logic_jjs, scLogicJjs());
    EXPECT_GT(net.resources().wiring_jjs, 0); // JTLs on internal paths
}

} // namespace
} // namespace sushi::npe
