/**
 * @file
 * Golden waveform regression tests for the SFQ cell library.
 *
 * Each test drives a micro-netlist (PulseSource -> cell -> PulseSink)
 * with a fixed stimulus program and compares the output pulse trace
 * against a checked-in golden file in tests/golden/, using the
 * tolerance-aware differ (sfq::compareTraces) so intentional
 * sub-picosecond timing refactors don't churn the goldens while any
 * sequence change fails loudly.
 *
 * Regenerate the goldens after an intentional timing change with:
 *
 *   ./test_golden_waveforms --update-golden
 *
 * (or SUSHI_UPDATE_GOLDEN=1). The binary links its own main() for the
 * flag, so it must NOT link GTest::gtest_main.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/time.hh"
#include "sfq/cells.hh"
#include "sfq/constraints.hh"
#include "sfq/netlist.hh"
#include "sfq/parallel_simulator.hh"
#include "sfq/simulator.hh"
#include "sfq/waveform.hh"

#ifndef SUSHI_GOLDEN_DIR
#define SUSHI_GOLDEN_DIR "tests/golden"
#endif

namespace sushi::sfq {
namespace {

bool g_update_golden = false;

/** Allowed per-pulse jitter between golden and actual: 1 ps. */
Tick
goldenTolerance()
{
    return psToTicks(1.0);
}

std::string
goldenPath(const std::string &name)
{
    return std::string(SUSHI_GOLDEN_DIR) + "/" + name + ".golden.txt";
}

void
writeGolden(const std::string &name, const PulseTrace &trace)
{
    std::ofstream out(goldenPath(name));
    ASSERT_TRUE(out.good())
        << "cannot write " << goldenPath(name)
        << " (does tests/golden/ exist?)";
    out << "# golden pulse trace: " << name << "\n";
    out << "# one arrival tick (fs) per line; regenerate with\n";
    out << "# ./test_golden_waveforms --update-golden\n";
    for (Tick t : trace)
        out << t << "\n";
}

PulseTrace
readGolden(const std::string &name)
{
    std::ifstream in(goldenPath(name));
    EXPECT_TRUE(in.good())
        << "missing golden file " << goldenPath(name)
        << "; run ./test_golden_waveforms --update-golden";
    PulseTrace trace;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        trace.push_back(static_cast<Tick>(std::stoll(line)));
    }
    return trace;
}

/** Compare @p trace against the named golden (or rewrite it). */
void
checkGolden(const std::string &name, const PulseTrace &trace)
{
    if (g_update_golden) {
        writeGolden(name, trace);
        return;
    }
    const PulseTrace golden = readGolden(name);
    EXPECT_EQ(compareTraces(golden, trace, goldenTolerance()), "")
        << name << ": trace diverged from " << goldenPath(name);
}

/** A micro-netlist: one cell, sources on each input, sink on out 0.
 *  With @p threads > 1 the event kernel runs on the partitioned
 *  parallel simulator, split at every cell boundary (min lookahead
 *  1 tick) — the goldens must not move. */
struct MicroBench
{
    Simulator sim;
    Netlist net{sim};
    std::vector<PulseSource *> in;
    PulseSink *out = nullptr;
    Tick gap = safePulseSpacing();
    Tick t = 0;
    int threads = 0;

    explicit MicroBench(int sim_threads = 0) : threads(sim_threads)
    {
        sim.setViolationPolicy(ViolationPolicy::Fatal);
    }

    void wire(Component &cell, int num_inputs)
    {
        for (int p = 0; p < num_inputs; ++p) {
            auto &src =
                net.makeSource("in" + std::to_string(p));
            net.connectWire(src, 0, cell, p);
            in.push_back(&src);
        }
        out = &net.makeSink("out");
        net.connectWire(cell, 0, *out, 0);
    }

    /** Fire input @p port at the next safely-spaced instant. */
    void fire(int port)
    {
        t += gap;
        in[static_cast<std::size_t>(port)]->pulseAt(t);
    }

    PulseTrace finish()
    {
        if (threads > 1) {
            ParallelSimulator::Options opts;
            opts.threads = threads;
            opts.min_lookahead = 1; // split even tiny rigs
            ParallelSimulator psim(sim, opts);
            psim.run();
        } else {
            sim.run();
        }
        EXPECT_EQ(sim.violations(), 0u);
        return out->pulsesSeen();
    }
};

void
ndroScenario(int threads)
{
    // din arms, each clk reads non-destructively, rst clears
    // (Fig. 3(b)(f); the Sec. 4.1.1 configurable switch).
    MicroBench mb(threads);
    auto &cell = mb.net.makeNdro("ndro");
    mb.wire(cell, 3);
    const int din = 0, rst = 1, clk = 2;
    mb.fire(clk); // not armed: swallowed
    mb.fire(din); // arm
    mb.fire(clk); // read -> pulse
    mb.fire(clk); // read -> pulse (state survives)
    mb.fire(rst); // clear
    mb.fire(clk); // swallowed again
    mb.fire(din); // re-arm
    mb.fire(clk); // read -> pulse
    const PulseTrace trace = mb.finish();
    EXPECT_EQ(trace.size(), 3u); // sequence sanity before diffing
    checkGolden("ndro", trace);
}

void
tfflScenario(int threads)
{
    // L-variant toggle: a pulse out on every 0 -> 1 flip, i.e. on
    // odd-numbered inputs (Sec. 2.1.2 E — the frequency divider).
    MicroBench mb(threads);
    auto &cell = mb.net.makeTffl("tff");
    mb.wire(cell, 1);
    for (int i = 0; i < 6; ++i)
        mb.fire(0);
    const PulseTrace trace = mb.finish();
    EXPECT_EQ(trace.size(), 3u);
    checkGolden("tffl", trace);
}

void
cbScenario(int threads)
{
    // Confluence buffer merges both inputs onto one output.
    MicroBench mb(threads);
    auto &cell = mb.net.makeCb("cb");
    mb.wire(cell, 2);
    mb.fire(0);
    mb.fire(1);
    mb.fire(0);
    mb.fire(1);
    mb.fire(1);
    const PulseTrace trace = mb.finish();
    EXPECT_EQ(trace.size(), 5u);
    checkGolden("cb", trace);
}

void
dffScenario(int threads)
{
    // Destructive readout: dout fires only for clk after din, and
    // the read consumes the stored flux (Fig. 3(a)(e)).
    MicroBench mb(threads);
    auto &cell = mb.net.makeDff("dff");
    mb.wire(cell, 2);
    const int din = 0, clk = 1;
    mb.fire(clk); // empty: nothing out
    mb.fire(din); // store
    mb.fire(clk); // release -> pulse
    mb.fire(clk); // empty again: nothing
    mb.fire(din); // store
    mb.fire(clk); // release -> pulse
    const PulseTrace trace = mb.finish();
    EXPECT_EQ(trace.size(), 2u);
    checkGolden("dff", trace);
}

TEST(GoldenWaveforms, Ndro) { ndroScenario(0); }
TEST(GoldenWaveforms, TffL) { tfflScenario(0); }
TEST(GoldenWaveforms, Cb) { cbScenario(0); }
TEST(GoldenWaveforms, Dff) { dffScenario(0); }

// The same scenarios with the event kernel partitioned across four
// lanes: the checked-in goldens are the oracle, so any divergence
// between the sequential and parallel kernels fails here too.
TEST(GoldenWaveformsPartitioned, Ndro) { ndroScenario(4); }
TEST(GoldenWaveformsPartitioned, TffL) { tfflScenario(4); }
TEST(GoldenWaveformsPartitioned, Cb) { cbScenario(4); }
TEST(GoldenWaveformsPartitioned, Dff) { dffScenario(4); }

TEST(GoldenWaveforms, DifferAcceptsJitterWithinTolerance)
{
    // The tolerance-aware differ is what keeps sub-ps refactors from
    // churning goldens: shift every pulse by less than the tolerance
    // and the diff must stay clean; shift past it and it must not.
    PulseTrace base{psToTicks(10.0), psToTicks(20.0),
                    psToTicks(30.0)};
    PulseTrace jittered = base;
    for (Tick &t : jittered)
        t += goldenTolerance() - 1;
    EXPECT_EQ(compareTraces(base, jittered, goldenTolerance()), "");
    jittered[1] += 2; // now beyond tolerance
    EXPECT_NE(compareTraces(base, jittered, goldenTolerance()), "");
}

} // namespace
} // namespace sushi::sfq

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--update-golden")
            sushi::sfq::g_update_golden = true;
    }
    const char *env = std::getenv("SUSHI_UPDATE_GOLDEN");
    if (env != nullptr && env[0] != '\0' && env[0] != '0')
        sushi::sfq::g_update_golden = true;
    return RUN_ALL_TESTS();
}
