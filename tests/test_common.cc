/**
 * @file
 * Unit tests for the common substrate: time units, RNG, stats.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/histogram.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/time.hh"

namespace sushi {
namespace {

TEST(Time, PsRoundTrip)
{
    EXPECT_EQ(psToTicks(1.0), 1000);
    EXPECT_EQ(psToTicks(19.9), 19900);
    EXPECT_EQ(psToTicks(8.53), 8530);
    EXPECT_DOUBLE_EQ(ticksToPs(psToTicks(5.7)), 5.7);
}

TEST(Time, Seconds)
{
    EXPECT_DOUBLE_EQ(ticksToSeconds(kTicksPerNs), 1e-9);
    EXPECT_DOUBLE_EQ(ticksToSeconds(psToTicks(1.0)), 1e-12);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowBounds)
{
    Rng r(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        auto v = r.below(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all residues hit
}

TEST(Rng, RangeInclusive)
{
    Rng r(5);
    bool lo_seen = false, hi_seen = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        lo_seen |= (v == -3);
        hi_seen |= (v == 3);
    }
    EXPECT_TRUE(lo_seen);
    EXPECT_TRUE(hi_seen);
}

TEST(Rng, GaussianMoments)
{
    Rng r(13);
    double sum = 0, sq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double g = r.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ChanceProbability)
{
    Rng r(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkIndependent)
{
    Rng a(99);
    Rng child = a.fork();
    // Child stream differs from the parent's continuation.
    EXPECT_NE(child.next(), a.next());
}

TEST(Stats, Counters)
{
    StatSet s;
    EXPECT_EQ(s.counter("x"), 0u);
    s.inc("x");
    s.inc("x", 4);
    EXPECT_EQ(s.counter("x"), 5u);
    EXPECT_TRUE(s.has("x"));
    EXPECT_FALSE(s.has("y"));
}

TEST(Stats, Scalars)
{
    StatSet s;
    s.set("p", 3.25);
    EXPECT_DOUBLE_EQ(s.scalar("p"), 3.25);
    s.set("p", -1.0);
    EXPECT_DOUBLE_EQ(s.scalar("p"), -1.0);
}

TEST(Stats, DistributionMoments)
{
    StatSet s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.sample("d", v);
    const Distribution &d = s.dist("d");
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 4.0);
    EXPECT_NEAR(d.stddev(), 1.11803, 1e-4);
}

TEST(Stats, DistributionMerge)
{
    Distribution a, b;
    a.sample(1.0);
    a.sample(2.0);
    b.sample(10.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
}

TEST(Stats, Clear)
{
    StatSet s;
    s.inc("a");
    s.set("b", 1);
    s.sample("c", 1);
    s.clear();
    EXPECT_FALSE(s.has("a"));
    EXPECT_FALSE(s.has("b"));
    EXPECT_FALSE(s.has("c"));
}

TEST(Histogram, BucketAssignmentAndAggregates)
{
    Histogram h = Histogram::linear(10, 50, 10); // bounds 10..50
    h.sample(1);   // <= 10 -> bucket 0
    h.sample(10);  // inclusive upper bound -> bucket 0
    h.sample(11);  // bucket 1
    h.sample(50);  // bucket 4
    h.sample(999); // overflow
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 1 + 10 + 11 + 50 + 999);
    EXPECT_EQ(h.min(), 1);
    EXPECT_EQ(h.max(), 999);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_EQ(h.bucketCount(h.bounds().size()), 1u); // overflow
    EXPECT_DOUBLE_EQ(h.mean(), (1 + 10 + 11 + 50 + 999) / 5.0);
}

TEST(Histogram, PercentilesAreMonotoneAndClamped)
{
    Histogram h = Histogram::linear(1, 100, 1);
    for (int v = 1; v <= 100; ++v)
        h.sample(v);
    EXPECT_EQ(h.percentile(0.50), 50);
    EXPECT_EQ(h.percentile(0.95), 95);
    EXPECT_EQ(h.percentile(0.99), 99);
    EXPECT_EQ(h.percentile(0.0), 1);   // clamped to min
    EXPECT_EQ(h.percentile(1.0), 100); // clamped to max
    std::int64_t prev = 0;
    for (double p = 0.0; p <= 1.0; p += 0.01) {
        const std::int64_t v = h.percentile(p);
        EXPECT_GE(v, prev);
        prev = v;
    }

    Histogram empty = Histogram::exponential();
    EXPECT_EQ(empty.percentile(0.5), 0);
    EXPECT_EQ(empty.min(), 0);
    EXPECT_EQ(empty.max(), 0);

    // A single sample dominates every percentile, clamped to the
    // observed value even though its bucket bound is coarser.
    Histogram one = Histogram::exponential();
    one.sample(1000); // bucket bound 1024
    EXPECT_EQ(one.percentile(0.5), 1000);
    EXPECT_EQ(one.percentile(0.99), 1000);
}

TEST(Histogram, MergeMatchesBulkAndJsonIsOrderIndependent)
{
    Rng rng(77);
    std::vector<std::int64_t> values;
    for (int i = 0; i < 500; ++i)
        values.push_back(static_cast<std::int64_t>(rng.below(1 << 20)));

    Histogram bulk = Histogram::exponential();
    for (auto v : values)
        bulk.sample(v);

    // Split across two shards, merge, compare bytes.
    Histogram a = Histogram::exponential();
    Histogram b = Histogram::exponential();
    for (std::size_t i = 0; i < values.size(); ++i)
        (i % 2 ? a : b).sample(values[i]);
    a.merge(b);
    EXPECT_EQ(a.json(), bulk.json());

    // Reverse fill order: still byte-identical.
    Histogram rev = Histogram::exponential();
    for (auto it = values.rbegin(); it != values.rend(); ++it)
        rev.sample(*it);
    EXPECT_EQ(rev.json(), bulk.json());

    EXPECT_NE(bulk.json().find("\"count\": 500"), std::string::npos);
    EXPECT_NE(bulk.json().find("\"buckets\": ["), std::string::npos);
}

} // namespace
} // namespace sushi
