/**
 * @file
 * Tests for budget-driven multi-chip plans end to end: plan
 * structure, engine execution equivalence with the single-chip
 * compile, stats surfacing (utilisation gauges, plan diagnostics in
 * statsJson), determinism across thread counts, and the derived
 * energy constant shared by cost model and chip.
 */

#include <gtest/gtest.h>

#include "chip/sushi_chip.hh"
#include "common/rng.hh"
#include "compiler/driver.hh"
#include "engine/inference_engine.hh"
#include "sfq/cell_params.hh"
#include "snn/binarize.hh"
#include "snn/network.hh"

namespace sushi::engine {
namespace {

snn::BinarySnn
tinyNet(std::size_t input, std::size_t hidden, std::size_t output,
        int t_steps, std::uint64_t seed)
{
    snn::SnnConfig cfg;
    cfg.input = input;
    cfg.hidden = hidden;
    cfg.output = output;
    cfg.t_steps = t_steps;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, seed);
    return snn::BinarySnn::fromFloat(mlp);
}

std::vector<Sample>
randomSamples(std::size_t n, std::size_t dim, int t_steps,
              std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Sample> samples(n);
    for (auto &s : samples) {
        for (int t = 0; t < t_steps; ++t) {
            std::vector<std::uint8_t> f(dim);
            for (auto &v : f)
                v = rng.chance(0.4) ? 1 : 0;
            s.push_back(std::move(f));
        }
    }
    return samples;
}

snn::BinaryLayer
randomLayer(int in_dim, int out_dim, std::uint64_t seed)
{
    Rng rng(seed);
    snn::BinaryLayer layer;
    layer.weights.resize(static_cast<std::size_t>(out_dim));
    layer.thresholds.resize(static_cast<std::size_t>(out_dim));
    for (int o = 0; o < out_dim; ++o) {
        auto &row = layer.weights[static_cast<std::size_t>(o)];
        row.resize(static_cast<std::size_t>(in_dim));
        for (int i = 0; i < in_dim; ++i)
            row[static_cast<std::size_t>(i)] =
                rng.chance(0.5) ? -1 : 1;
        layer.thresholds[static_cast<std::size_t>(o)] =
            static_cast<int>(rng.range(1, 8));
    }
    return layer;
}

compiler::ChipConfig
smallChip()
{
    compiler::ChipConfig cfg;
    cfg.n = 4;
    cfg.sc_per_npe = 10;
    return cfg;
}

/**
 * Driver preset whose JJ cap fits each layer of @p net alone but not
 * all of them together, forcing a split — with legacy schedule
 * selection, so every stage's per-layer artifacts are bit-identical
 * to an unbounded single-chip compile of the same network.
 */
compiler::DriverOptions
splittingOptions(const snn::BinarySnn &net,
                 const compiler::ChipConfig &chip)
{
    compiler::CostModel model(chip.n, chip.sc_per_npe);
    long biggest = 0;
    long total = 0;
    for (const auto &layer : net.layers()) {
        const long jjs = model.layerCost(layer).totalJjs();
        biggest = std::max(biggest, jjs);
        total += jjs;
    }
    EXPECT_LT(biggest, total); // a split point must exist
    compiler::DriverOptions opts;
    opts.enforce_budget = true;
    opts.allow_multichip = true;
    opts.score_schedules = false; // keep stage artifacts legacy-equal
    opts.budget.sc_per_npe = chip.sc_per_npe;
    opts.budget.jj_cap = model.fabricJjs() + biggest;
    opts.budget.area_cap_mm2 = 1e9;
    return opts;
}

TEST(MultiChipPlan, OverflowingModelSplitsIntoStages)
{
    auto net = tinyNet(24, 16, 12, 3, 5);
    const auto chip = smallChip();
    auto model = CompiledModel::compile(
        net, chip, splittingOptions(net, chip));

    ASSERT_TRUE(model->multiChip());
    ASSERT_NE(model->plan(), nullptr);
    const compiler::MultiChipPlan &plan = *model->plan();
    ASSERT_EQ(model->stageCount(), 2);
    ASSERT_EQ(plan.cuts.size(), 1u);

    // Stages cover the layer chain contiguously, in order.
    EXPECT_EQ(plan.stages[0]->first_layer, 0);
    EXPECT_EQ(plan.stages[0]->num_layers, 1);
    EXPECT_EQ(plan.stages[1]->first_layer, 1);
    EXPECT_EQ(plan.stages[1]->num_layers, 1);

    // The cut sits after layer 0 and carries its activations.
    EXPECT_EQ(plan.cuts[0].boundary_layer, 0);
    EXPECT_EQ(plan.cuts[0].wires, 16);
    EXPECT_EQ(plan.crossChipWires(), 16);

    // Every stage artifact points into the stage's own subnet and
    // respects the per-chip caps it was planned against.
    for (int s = 0; s < model->stageCount(); ++s) {
        const auto &stage = *plan.stages[static_cast<std::size_t>(s)];
        EXPECT_EQ(model->stageNet(s).net, &stage.subnet);
        EXPECT_TRUE(stage.net.budget.fits());
        EXPECT_EQ(stage.subnet.layers().size(),
                  static_cast<std::size_t>(stage.num_layers));
    }
    EXPECT_GT(plan.maxJjUtilisation(), 0.0);
    EXPECT_LE(plan.maxJjUtilisation(), 1.0);
}

TEST(MultiChipPlan, FittingModelStaysSingleStage)
{
    auto net = tinyNet(24, 16, 12, 3, 5);
    const auto chip = smallChip();
    auto model = CompiledModel::compile(
        net, chip, compiler::DriverOptions::costAware());
    EXPECT_EQ(model->stageCount(), 1);
    EXPECT_FALSE(model->multiChip());
    EXPECT_TRUE(model->stageNet(0).budget.fits());
}

TEST(MultiChipPlan, EngineMatchesSingleChipBitExactly)
{
    auto net = tinyNet(24, 16, 12, 3, 9);
    const auto chip = smallChip();
    auto samples = randomSamples(12, 24, 3, 77);

    auto single = CompiledModel::compile(net, chip);
    auto split = CompiledModel::compile(net, chip,
                                        splittingOptions(net, chip));
    ASSERT_EQ(split->stageCount(), 2);

    EngineConfig cfg;
    cfg.replicas = 2;
    EngineRun a = InferenceEngine(single, cfg).run(samples);
    EngineRun b = InferenceEngine(split, cfg).run(samples);

    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        EXPECT_EQ(a.samples[i].counts, b.samples[i].counts) << i;
        EXPECT_EQ(a.samples[i].prediction, b.samples[i].prediction)
            << i;
    }
    // The pipelined stages execute the same compiled layers, so the
    // behavioural counters agree exactly with the single chip.
    EXPECT_EQ(a.merged.frames, b.merged.frames);
    EXPECT_EQ(a.merged.time_steps, b.merged.time_steps);
    EXPECT_EQ(a.merged.synaptic_ops, b.merged.synaptic_ops);
    EXPECT_EQ(a.merged.output_spikes, b.merged.output_spikes);
    EXPECT_EQ(a.merged.dynamic_energy_j, b.merged.dynamic_energy_j);
}

TEST(MultiChipPlan, MergedStatsDeterministicAcrossThreads)
{
    auto net = tinyNet(24, 16, 12, 3, 13);
    const auto chip = smallChip();
    auto model = CompiledModel::compile(net, chip,
                                        splittingOptions(net, chip));
    auto samples = randomSamples(10, 24, 3, 31);

    std::string baseline;
    for (unsigned threads : {1u, 2u, 4u}) {
        EngineConfig cfg;
        cfg.replicas = 3;
        cfg.max_threads = threads;
        EngineRun run = InferenceEngine(model, cfg).run(samples);
        const std::string json = statsJson(run.merged);
        if (baseline.empty())
            baseline = json;
        else
            EXPECT_EQ(json, baseline) << threads << " threads";
    }
}

TEST(MultiChipPlan, StatsSurfaceCompilerDiagnostics)
{
    auto net = tinyNet(24, 16, 12, 3, 9);
    const auto chip = smallChip();
    auto model = CompiledModel::compile(net, chip,
                                        splittingOptions(net, chip));
    auto samples = randomSamples(4, 24, 3, 5);

    EngineConfig cfg;
    cfg.replicas = 1;
    EngineRun run = InferenceEngine(model, cfg).run(samples);

    // The utilisation gauges come from the per-stage budget reports
    // (worst stage wins) and flow into the JSON rendering.
    EXPECT_GT(run.merged.jj_utilisation, 0.0);
    EXPECT_LE(run.merged.jj_utilisation, 1.0);
    EXPECT_EQ(run.merged.jj_utilisation,
              model->plan()->maxJjUtilisation());
    long disabled = 0;
    long reloads = 0;
    for (int s = 0; s < model->stageCount(); ++s) {
        disabled += model->stageNet(s).disabled_count;
        reloads += model->stageNet(s).plan_reloads;
    }
    EXPECT_EQ(run.merged.disabled_neurons,
              static_cast<std::uint64_t>(disabled));
    EXPECT_EQ(run.merged.plan_reloads,
              static_cast<std::uint64_t>(reloads));

    const std::string json = statsJson(run.merged);
    EXPECT_NE(json.find("\"jj_utilisation\""), std::string::npos);
    EXPECT_NE(json.find("\"area_utilisation\""), std::string::npos);
    EXPECT_NE(json.find("\"disabled_neurons\""), std::string::npos);
    EXPECT_NE(json.find("\"plan_reloads\""), std::string::npos);
}

TEST(MultiChipPlan, CutsAndWireListsAreDeterministicallyOrdered)
{
    // Four layers whose per-boundary widths differ, so the splitter's
    // heaviest-traffic-first contraction visits boundaries out of
    // chain order — the published plan must still come out sorted.
    const auto net = snn::BinarySnn::fromLayers(
        {randomLayer(20, 12, 3), randomLayer(12, 18, 4),
         randomLayer(18, 10, 5), randomLayer(10, 6, 6)},
        3);
    const auto chip = smallChip();
    auto model = CompiledModel::compile(net, chip,
                                        splittingOptions(net, chip));
    ASSERT_GE(model->stageCount(), 3);
    const compiler::MultiChipPlan &plan = *model->plan();
    ASSERT_EQ(plan.cuts.size(),
              static_cast<std::size_t>(model->stageCount() - 1));

    long traffic = 0;
    for (std::size_t c = 0; c < plan.cuts.size(); ++c) {
        const compiler::InterChipCut &cut = plan.cuts[c];
        if (c > 0) {
            EXPECT_LT(plan.cuts[c - 1].boundary_layer,
                      cut.boundary_layer);
        }
        // The wire list enumerates the producer's index space
        // ascending: exactly 0..wires-1.
        ASSERT_EQ(cut.wire_indices.size(),
                  static_cast<std::size_t>(cut.wires));
        for (std::size_t w = 0; w < cut.wire_indices.size(); ++w)
            EXPECT_EQ(cut.wire_indices[w], static_cast<int>(w));
        traffic += cut.est_pulses_per_step;
    }
    EXPECT_EQ(plan.cutTrafficPerStep(), traffic);
    EXPECT_EQ(plan.cutTrafficPerStep(), plan.crossChipWires());
}

TEST(InferenceStatsMerge, PipelineMergeOverThreeStages)
{
    // Three stage records of one sample: frames/time_steps are
    // per-sample gauges (every stage saw the same frames), the
    // behavioural counters and plan diagnostics add up, utilisation
    // keeps the worst chip and modelled time extends the makespan.
    chip::InferenceStats s0;
    s0.frames = 1;
    s0.time_steps = 4;
    s0.synaptic_ops = 100;
    s0.input_pulses = 10;
    s0.disabled_neurons = 2;
    s0.plan_reloads = 1;
    s0.jj_utilisation = 0.4;
    s0.est_time_ps = 50.0;
    chip::InferenceStats s1 = s0;
    s1.synaptic_ops = 200;
    s1.disabled_neurons = 3;
    s1.jj_utilisation = 0.9;
    s1.est_time_ps = 70.0;
    chip::InferenceStats s2 = s0;
    s2.synaptic_ops = 50;
    s2.output_spikes = 7;
    s2.jj_utilisation = 0.6;
    s2.est_time_ps = 30.0;

    chip::InferenceStats merged = s0;
    merged.accumulatePipeline(s1);
    merged.accumulatePipeline(s2);
    EXPECT_EQ(merged.frames, 1u);
    EXPECT_EQ(merged.time_steps, 4u);
    EXPECT_EQ(merged.synaptic_ops, 350u);
    EXPECT_EQ(merged.input_pulses, 30u);
    EXPECT_EQ(merged.output_spikes, 7u);
    EXPECT_EQ(merged.disabled_neurons, 7u);
    EXPECT_EQ(merged.plan_reloads, 3u);
    EXPECT_EQ(merged.jj_utilisation, 0.9);
    EXPECT_EQ(merged.est_time_ps, 150.0);
}

TEST(InferenceStatsMerge, GaugeVsCounterUnderDegradedStageGroup)
{
    // A degraded replica degrades every stage chip of the group in
    // lockstep: the failed-slot count is a gauge (same physical
    // failure seen by each stage — max, not sum), while the remap
    // work and extra passes are real per-stage costs that add.
    chip::InferenceStats s0;
    s0.frames = 1;
    s0.time_steps = 3;
    s0.failed_npes = 2;
    s0.remapped_neurons = 12;
    s0.degraded_passes = 3;
    chip::InferenceStats s1 = s0;
    s1.remapped_neurons = 9;
    chip::InferenceStats s2 = s0;
    s2.remapped_neurons = 4;
    s2.degraded_passes = 6;

    chip::InferenceStats merged = s0;
    merged.accumulatePipeline(s1);
    merged.accumulatePipeline(s2);
    EXPECT_EQ(merged.failed_npes, 2u);
    EXPECT_EQ(merged.remapped_neurons, 25u);
    EXPECT_EQ(merged.degraded_passes, 12u);

    // The sample-merge (accumulate) treats failed_npes the same way —
    // a gauge — while frames become a counter again.
    chip::InferenceStats across = merged;
    across.accumulate(merged);
    EXPECT_EQ(across.failed_npes, 2u);
    EXPECT_EQ(across.frames, 2u);
    EXPECT_EQ(across.remapped_neurons, 50u);
}

TEST(InferenceStatsMerge, DegradedMultiStageEngineKeepsGaugeSemantics)
{
    auto net = tinyNet(24, 16, 12, 3, 9);
    const auto chip = smallChip();
    auto model = CompiledModel::compile(net, chip,
                                        splittingOptions(net, chip));
    ASSERT_GE(model->stageCount(), 2);
    auto samples = randomSamples(3, 24, 3, 23);

    EngineConfig cfg;
    cfg.replicas = 1;
    cfg.drain_degraded = false;
    InferenceEngine eng(model, cfg);
    eng.markReplicaDegraded(0, 1);
    EngineRun run = eng.run(samples);

    // One failed slot, mirrored on every stage chip of the group and
    // across every sample: the gauge must stay 1 through both the
    // pipeline merge and the sample merge, never the stage- or
    // sample-count multiple.
    EXPECT_EQ(run.merged.failed_npes, 1u);
    // The remap work is a counter: each stage that hosts remapped
    // neurons contributes per time step, summed over samples.
    EXPECT_GT(run.merged.remapped_neurons, 0u);
    EXPECT_EQ(run.merged.frames, samples.size());
}

TEST(MultiChipPlan, DegradedReplicaKeepsResults)
{
    auto net = tinyNet(24, 16, 12, 3, 9);
    const auto chip = smallChip();
    auto model = CompiledModel::compile(net, chip,
                                        splittingOptions(net, chip));
    auto samples = randomSamples(6, 24, 3, 19);

    EngineConfig cfg;
    cfg.replicas = 1;
    cfg.drain_degraded = false; // force work onto the degraded group
    InferenceEngine healthy(model, cfg);
    EngineRun want = healthy.run(samples);

    InferenceEngine degraded(model, cfg);
    degraded.markReplicaDegraded(0, 1);
    EXPECT_GT(degraded.failedNpeSlots(0), 0);
    EngineRun got = degraded.run(samples);
    for (std::size_t i = 0; i < want.samples.size(); ++i)
        EXPECT_EQ(want.samples[i].counts, got.samples[i].counts) << i;

    degraded.healReplica(0);
    EXPECT_EQ(degraded.failedNpeSlots(0), 0);
}

TEST(EnergyModel, ChipAndCostModelShareTheDerivedConstant)
{
    // The chip's per-op energy and the compiler's cost model must be
    // the same derived quantity: the 30-JJ synapse event path times
    // the per-JJ switching energy.
    compiler::CostModel model(4, 10);
    EXPECT_EQ(chip::dynamicEnergyJ(1), model.switchEnergyPerSynOpJ());
    EXPECT_EQ(chip::dynamicEnergyJ(1),
              sfq::synapseEventJjs() * sfq::switchEnergyPerJj());
}

} // namespace
} // namespace sushi::engine
