/**
 * @file
 * Tests for the netlist builder and resource accounting.
 */

#include <gtest/gtest.h>

#include "sfq/netlist.hh"
#include "sfq/simulator.hh"

namespace sushi::sfq {
namespace {

class NetlistTest : public ::testing::Test
{
  protected:
    NetlistTest() : net(sim) {}

    Simulator sim;
    Netlist net;
};

TEST_F(NetlistTest, LogicCellsAccounted)
{
    net.makeNdro("n");
    net.makeTffl("t");
    const ResourceTally &r = net.resources();
    EXPECT_EQ(r.logic_jjs, cellParams(CellKind::NDRO).jjs +
                               cellParams(CellKind::TFFL).jjs);
    EXPECT_EQ(r.wiring_jjs, 0);
    EXPECT_GT(r.logic_area_um2, 0.0);
}

TEST_F(NetlistTest, JtlCountsAsWiring)
{
    net.makeJtl("j");
    const ResourceTally &r = net.resources();
    EXPECT_EQ(r.logic_jjs, 0);
    EXPECT_EQ(r.wiring_jjs, cellParams(CellKind::JTL).jjs);
}

TEST_F(NetlistTest, ConnectWireAccountsStages)
{
    Spl &spl = net.makeSpl("spl");
    PulseSink &sink = net.makeSink("s");
    const long before = net.resources().wiring_jjs;
    net.connectWire(spl, 0, sink, 0, 10);
    EXPECT_EQ(net.resources().wiring_jjs - before,
              10 * cellParams(CellKind::JTL).jjs);
}

TEST_F(NetlistTest, ConnectWireAddsDelay)
{
    Jtl &j = net.makeJtl("j");
    PulseSink &sink = net.makeSink("s");
    net.connectWire(j, 0, sink, 0, 4);
    j.inject(0, 0);
    sim.run();
    ASSERT_EQ(sink.count(), 1u);
    EXPECT_EQ(sink.pulsesSeen()[0],
              cellParams(CellKind::JTL).delay * 5); // cell + 4 stages
}

TEST_F(NetlistTest, JtlChainEquivalentToWireDelay)
{
    // An explicit JTL chain and an accounted wire of the same length
    // must deliver the pulse at the same time.
    Netlist net2(sim);
    Jtl &a1 = net.makeJtl("a1");
    PulseSink &s1 = net.makeSink("s1");
    net.makeJtlChain("chain", a1, 0, s1, 0, 6);

    Jtl &a2 = net2.makeJtl("a2");
    PulseSink &s2 = net2.makeSink("s2");
    net2.connectWire(a2, 0, s2, 0, 6);

    a1.inject(0, 0);
    a2.inject(0, 0);
    sim.run();
    ASSERT_EQ(s1.count(), 1u);
    ASSERT_EQ(s2.count(), 1u);
    EXPECT_EQ(s1.pulsesSeen()[0], s2.pulsesSeen()[0]);
}

TEST_F(NetlistTest, JtlChainAccountsSameAsWire)
{
    Simulator sim2;
    Netlist chain_net(sim2), wire_net(sim2);
    Jtl &a = chain_net.makeJtl("a");
    PulseSink &sa = chain_net.makeSink("sa");
    chain_net.makeJtlChain("c", a, 0, sa, 0, 8);

    Jtl &b = wire_net.makeJtl("b");
    PulseSink &sb = wire_net.makeSink("sb");
    wire_net.connectWire(b, 0, sb, 0, 8);

    EXPECT_EQ(chain_net.resources().wiring_jjs,
              wire_net.resources().wiring_jjs);
}

TEST_F(NetlistTest, WiringOverheadAdds)
{
    const long before = net.resources().wiring_jjs;
    net.addWiringOverhead(100);
    EXPECT_EQ(net.resources().wiring_jjs - before, 100);
}

TEST_F(NetlistTest, WiringFraction)
{
    net.makeNdro("n"); // 11 logic JJs
    net.addWiringOverhead(11);
    EXPECT_DOUBLE_EQ(net.resources().wiringFraction(), 0.5);
}

TEST_F(NetlistTest, TallyAddition)
{
    ResourceTally a, b;
    a.logic_jjs = 10;
    a.wiring_jjs = 5;
    b.logic_jjs = 1;
    b.wiring_jjs = 2;
    b.cells_by_kind[0] = 3;
    a += b;
    EXPECT_EQ(a.logic_jjs, 11);
    EXPECT_EQ(a.wiring_jjs, 7);
    EXPECT_EQ(a.totalJjs(), 18);
    EXPECT_EQ(a.cells_by_kind[0], 3);
}

TEST_F(NetlistTest, AreaConversion)
{
    ResourceTally t;
    t.logic_area_um2 = 2.5e6;
    t.wiring_area_um2 = 0.5e6;
    EXPECT_DOUBLE_EQ(t.totalAreaMm2(), 3.0);
}

TEST_F(NetlistTest, CellsByKindCounts)
{
    net.makeSpl("s1");
    net.makeSpl("s2");
    net.makeCb("c");
    const auto &by_kind = net.resources().cells_by_kind;
    EXPECT_EQ(by_kind[static_cast<std::size_t>(CellKind::SPL)], 2);
    EXPECT_EQ(by_kind[static_cast<std::size_t>(CellKind::CB)], 1);
}

} // namespace
} // namespace sushi::sfq
