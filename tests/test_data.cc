/**
 * @file
 * Tests for the synthetic dataset generators and the perf models.
 */

#include <gtest/gtest.h>

#include <set>

#include "data/synth_digits.hh"
#include "data/synth_fashion.hh"
#include "perf/baselines.hh"
#include "perf/power_model.hh"

namespace sushi {
namespace {

TEST(Canvas, StrokeLeavesInk)
{
    data::Canvas c;
    c.stroke({5, 5}, {22, 22}, 2.0f);
    double ink = 0;
    for (float p : c.pixels())
        ink += p;
    EXPECT_GT(ink, 10.0);
}

TEST(Canvas, FillConvexCoversInterior)
{
    data::Canvas c;
    c.fillConvex({{8, 8}, {20, 8}, {20, 20}, {8, 20}});
    // Centre pixel must be inked, far corner must not.
    EXPECT_GT(c.pixels()[14 * 28 + 14], 0.5f);
    EXPECT_FLOAT_EQ(c.pixels()[1 * 28 + 1], 0.0f);
}

TEST(Canvas, NoiseStaysInRange)
{
    data::Canvas c;
    Rng rng(3);
    c.addNoise(rng, 0.5f);
    for (float p : c.pixels()) {
        EXPECT_GE(p, 0.0f);
        EXPECT_LE(p, 1.0f);
    }
}

TEST(SynthDigits, ShapesAndLabels)
{
    auto ds = data::synthDigits(200, 1);
    EXPECT_EQ(ds.size(), 200u);
    EXPECT_EQ(ds.images.cols(),
              static_cast<std::size_t>(data::kImageDim));
    std::set<int> seen(ds.labels.begin(), ds.labels.end());
    EXPECT_EQ(seen.size(), 10u); // all classes occur
    for (int l : ds.labels) {
        EXPECT_GE(l, 0);
        EXPECT_LT(l, 10);
    }
}

TEST(SynthDigits, Deterministic)
{
    auto a = data::synthDigits(20, 7);
    auto b = data::synthDigits(20, 7);
    EXPECT_EQ(a.labels, b.labels);
    for (std::size_t i = 0; i < a.images.size(); ++i)
        EXPECT_EQ(a.images.data()[i], b.images.data()[i]);
}

TEST(SynthDigits, SeedsDiffer)
{
    auto a = data::synthDigits(20, 7);
    auto b = data::synthDigits(20, 8);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.images.size(); ++i)
        any_diff |= a.images.data()[i] != b.images.data()[i];
    EXPECT_TRUE(any_diff);
}

TEST(SynthDigits, GlyphsAreDistinct)
{
    // Every pair of clean glyphs differs in enough pixels.
    for (int a = 0; a < 10; ++a) {
        auto ga = data::digitGlyph(a);
        for (int b = a + 1; b < 10; ++b) {
            auto gb = data::digitGlyph(b);
            double diff = 0;
            for (std::size_t i = 0; i < ga.size(); ++i)
                diff += std::abs(ga[i] - gb[i]);
            EXPECT_GT(diff, 15.0) << a << " vs " << b;
        }
    }
}

TEST(SynthFashion, ShapesAndNames)
{
    auto ds = data::synthFashion(100, 2);
    EXPECT_EQ(ds.size(), 100u);
    std::set<int> seen(ds.labels.begin(), ds.labels.end());
    EXPECT_GE(seen.size(), 8u);
    EXPECT_STREQ(data::fashionClassName(0), "t-shirt");
    EXPECT_STREQ(data::fashionClassName(9), "ankle-boot");
}

TEST(SynthFashion, ImagesHaveInk)
{
    auto ds = data::synthFashion(50, 3);
    for (std::size_t i = 0; i < ds.size(); ++i) {
        double ink = 0;
        for (std::size_t d = 0; d < ds.images.cols(); ++d)
            ink += ds.images.at(i, d);
        EXPECT_GT(ink, 5.0) << "image " << i;
    }
}

TEST(DatasetSplit, PreservesRows)
{
    auto ds = data::synthDigits(30, 4);
    auto [head, tail] = data::split(ds, 10);
    EXPECT_EQ(head.size(), 10u);
    EXPECT_EQ(tail.size(), 20u);
    EXPECT_EQ(head.labels[3], ds.labels[3]);
    EXPECT_EQ(tail.labels[0], ds.labels[10]);
    for (std::size_t d = 0; d < ds.images.cols(); ++d)
        EXPECT_EQ(tail.images.at(5, d), ds.images.at(15, d));
}

TEST(PerfBaselines, PaperRowValues)
{
    const auto &tn = perf::trueNorth();
    EXPECT_DOUBLE_EQ(tn.gsops, 58.0);
    EXPECT_DOUBLE_EQ(tn.gsops_per_w, 400.0);
    const auto &tj = perf::tianjic();
    EXPECT_DOUBLE_EQ(tj.gsops_per_w, 649.0);
    EXPECT_DOUBLE_EQ(tj.power_mw, 950.0);
}

TEST(PerfModel, SushiTable4Anchors)
{
    const auto sushi = perf::sushiPlatform();
    // Table 4: 1,355 GSOPS; 32,366 GSOPS/W; 41.87 mW; 103.75 mm^2.
    EXPECT_NEAR(sushi.gsops, 1355.0, 14.0);
    EXPECT_NEAR(sushi.gsops_per_w, 32366.0, 500.0);
    EXPECT_NEAR(sushi.power_mw, 41.87, 0.5);
    EXPECT_NEAR(sushi.area_mm2, 103.75, 1.1);
    // Headline ratios: 23x TrueNorth GSOPS; 81x / 50x efficiency.
    EXPECT_NEAR(sushi.gsops / perf::trueNorth().gsops, 23.0, 1.0);
    EXPECT_NEAR(sushi.gsops_per_w / perf::trueNorth().gsops_per_w,
                81.0, 3.0);
    EXPECT_NEAR(sushi.gsops_per_w / perf::tianjic().gsops_per_w,
                50.0, 2.0);
}

TEST(PerfModel, StaticPowerDominates)
{
    const double stat = perf::staticPowerMw(99982);
    const double dyn = perf::dynamicPowerMw(1355.0);
    EXPECT_GT(stat, 100.0 * dyn);
}

TEST(PerfModel, SweepShapes)
{
    auto sweep = perf::scalingSweep();
    ASSERT_EQ(sweep.size(), 5u);
    // GSOPS, power and efficiency all rise with scale (Figs. 19-21).
    for (std::size_t i = 1; i < sweep.size(); ++i) {
        EXPECT_GT(sweep[i].gsops, sweep[i - 1].gsops);
        EXPECT_GT(sweep[i].power_mw, sweep[i - 1].power_mw);
        EXPECT_GT(sweep[i].gsops_per_w, sweep[i - 1].gsops_per_w);
    }
    // SUSHI crosses TrueNorth's peak GSOPS between 4 and 8 NPEs
    // (Fig. 19) and its efficiency is above both baselines
    // everywhere (Fig. 21).
    EXPECT_LT(sweep[1].gsops, 58.0);
    EXPECT_GT(sweep[2].gsops, 58.0);
    for (const auto &p : sweep) {
        EXPECT_GT(p.gsops_per_w, 649.0);
    }
}

TEST(PerfModel, FpsNearPaperValue)
{
    // Sec. 6.3: up to 2.61e5 FPS. With the measured ~42 % average
    // spike rates of the verification network the model lands in
    // the same decade.
    const double sops_frame = perf::sopsPerFrame(800, 5, 0.42, 0.42);
    const double fps = perf::framesPerSecond(1355.0, sops_frame);
    EXPECT_GT(fps, 1.0e5);
    EXPECT_LT(fps, 2.0e6);
}

} // namespace
} // namespace sushi
