/**
 * @file
 * Tests for weight structures, the mesh/tree networks and the
 * resource/timing models.
 */

#include <gtest/gtest.h>

#include "fabric/mesh_network.hh"
#include "fabric/resource_model.hh"
#include "fabric/timing_model.hh"
#include "fabric/tree_network.hh"
#include "fabric/weight_structure.hh"
#include "sfq/constraints.hh"
#include "sfq/simulator.hh"

namespace sushi::fabric {
namespace {

TEST(WeightStructureBehavioural, DefaultStrengthOne)
{
    WeightStructure ws(8);
    EXPECT_EQ(ws.strength(), 1);
    EXPECT_EQ(ws.process(), 1);
}

TEST(WeightStructureBehavioural, ConfigurableGain)
{
    WeightStructure ws(8);
    ws.configure(5);
    EXPECT_EQ(ws.process(), 5);
    ws.configure(0); // synapse off
    EXPECT_EQ(ws.process(), 0);
}

TEST(WeightStructureBehavioural, ReloadCountsChangesOnly)
{
    WeightStructure ws(8);
    ws.configure(3);
    ws.configure(3); // no change, no reload
    ws.configure(4);
    EXPECT_EQ(ws.reloads(), 2);
}

/** Param: (w_max, strength) gate-level gain sweep. */
class WsGateTest
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(WsGateTest, GateGainMatchesStrength)
{
    auto [w_max, strength] = GetParam();
    sfq::Simulator sim;
    sim.setViolationPolicy(sfq::ViolationPolicy::Fatal);
    sfq::Netlist net(sim);
    WeightStructureGate ws(net, "ws", w_max);
    sfq::PulseSink &sink = net.makeSink("out");
    ws.connectOut(sink, 0);

    const Tick gap = sfq::safePulseSpacing();
    Tick t = ws.configure(strength, gap, gap);
    EXPECT_EQ(sim.violations(), 0u);
    sim.run();
    EXPECT_EQ(ws.strength(), strength);

    // One input pulse -> `strength` output pulses.
    ws.inPort().inject(ws.inChan(), t + gap);
    sim.run();
    EXPECT_EQ(sink.count(), static_cast<std::size_t>(strength));
    EXPECT_EQ(sim.violations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Gains, WsGateTest,
    ::testing::Values(std::make_pair(1, 0), std::make_pair(1, 1),
                      std::make_pair(3, 0), std::make_pair(3, 1),
                      std::make_pair(3, 2), std::make_pair(3, 3),
                      std::make_pair(5, 4), std::make_pair(5, 5),
                      std::make_pair(4, 2), std::make_pair(8, 8),
                      std::make_pair(12, 7), std::make_pair(16, 16),
                      std::make_pair(16, 1)));

TEST(WsGate, ReconfigurationChangesGain)
{
    sfq::Simulator sim;
    sim.setViolationPolicy(sfq::ViolationPolicy::Fatal);
    sfq::Netlist net(sim);
    WeightStructureGate ws(net, "ws", 4);
    sfq::PulseSink &sink = net.makeSink("out");
    ws.connectOut(sink, 0);
    const Tick gap = sfq::safePulseSpacing();

    Tick t = ws.configure(3, gap, gap);
    ws.inPort().inject(ws.inChan(), t + gap);
    sim.run();
    EXPECT_EQ(sink.count(), 3u);

    sink.clear();
    t = ws.configure(1, sim.now() + gap, gap);
    ws.inPort().inject(ws.inChan(), t + gap);
    sim.run();
    EXPECT_EQ(sink.count(), 1u);
    EXPECT_EQ(sim.violations(), 0u);
}

TEST(WsGate, MultiplePulsesEachAmplified)
{
    sfq::Simulator sim;
    sim.setViolationPolicy(sfq::ViolationPolicy::Fatal);
    sfq::Netlist net(sim);
    WeightStructureGate ws(net, "ws", 3);
    sfq::PulseSink &sink = net.makeSink("out");
    ws.connectOut(sink, 0);
    const Tick gap = 4 * sfq::safePulseSpacing();

    Tick t = ws.configure(2, gap, sfq::safePulseSpacing());
    for (int i = 0; i < 5; ++i)
        ws.inPort().inject(ws.inChan(), t + (i + 1) * gap);
    sim.run();
    EXPECT_EQ(sink.count(), 10u);
    EXPECT_EQ(sim.violations(), 0u);
}

TEST(WeightStructureResources, FreeFunctionsMatchBuilder)
{
    for (int w : {1, 2, 4, 8, 16}) {
        sfq::Simulator sim;
        sfq::Netlist net(sim);
        WeightStructureGate ws(net, "ws", w);
        EXPECT_EQ(net.resources().logic_jjs, weightStructureLogicJjs(w))
            << "w=" << w;
        EXPECT_EQ(net.resources().wiring_jjs,
                  weightStructureWiringJjs(w))
            << "w=" << w;
    }
}

TEST(WeightStructureResources, WiringQuadraticInGain)
{
    // The staggered tap delays make wiring grow faster than linearly.
    const long w4 = weightStructureWiringJjs(4);
    const long w8 = weightStructureWiringJjs(8);
    const long w16 = weightStructureWiringJjs(16);
    EXPECT_GT(w8, 2 * w4);
    EXPECT_GT(w16, 2 * w8);
}

TEST(MeshConfigTest, WMaxShrinksWithScale)
{
    EXPECT_EQ(wMaxForN(1), 16);
    EXPECT_EQ(wMaxForN(4), 16);
    EXPECT_EQ(wMaxForN(8), 8);
    EXPECT_EQ(wMaxForN(16), 4);
    EXPECT_EQ(wMaxForN(64), 3); // floor
}

TEST(MeshConfigTest, Geometry)
{
    MeshConfig cfg;
    cfg.n = 4;
    EXPECT_EQ(cfg.numNpes(), 8);
    EXPECT_EQ(cfg.numSynapses(), 16);
}

/** End-to-end gate-level mesh: 2x2, programmed weights, pulses in. */
TEST(MeshGateTest, RoutesWeightedPulses)
{
    sfq::Simulator sim;
    sim.setViolationPolicy(sfq::ViolationPolicy::Ignore);
    sfq::Netlist net(sim);
    MeshConfig cfg;
    cfg.n = 2;
    cfg.sc_per_npe = 4;
    cfg.w_max = 3;
    MeshGate mesh(net, cfg);

    const Tick gap = sfq::safePulseSpacing();
    // Weights: input 0 -> outputs with strengths {2, 1};
    //          input 1 -> outputs with strengths {0, 3}.
    Tick t = mesh.configureWeights({{2, 1}, {0, 3}}, gap, gap);

    // Arm everything excitatory; make the input NPEs fire on every
    // external pulse (threshold 1: preload 2^4 - 1 = 15) and let the
    // output NPEs just count (no spikes).
    for (int i = 0; i < 2; ++i) {
        auto &in_npe = mesh.inputNpe(i);
        in_npe.injectRst(t + gap);
        for (int b = 0; b < 4; ++b)
            in_npe.injectWrite(b, t + (2 + b) * gap);
        in_npe.injectSet1(t + 7 * gap);
        mesh.outputNpe(i).injectRst(t + gap);
        mesh.outputNpe(i).injectSet1(t + 7 * gap);
    }
    sim.run();

    // One external pulse into input NPE 0: it fires once; the spike
    // fans across row 0 and lands weighted on both output NPEs.
    Tick start = sim.now() + 4 * gap;
    mesh.injectInput(0, start);
    sim.run();
    EXPECT_EQ(mesh.outputNpe(0).value(), 2u);
    EXPECT_EQ(mesh.outputNpe(1).value(), 1u);

    // NOTE: input NPE 0 wrapped to 0 when it fired, so re-arm its
    // threshold before the next pulse.
    auto &in0 = mesh.inputNpe(0);
    Tick t2 = sim.now() + gap;
    in0.injectRst(t2);
    for (int b = 0; b < 4; ++b)
        in0.injectWrite(b, t2 + (1 + b) * gap);
    in0.injectSet1(t2 + 6 * gap);
    auto &in1 = mesh.inputNpe(1);
    in1.injectRst(t2);
    for (int b = 0; b < 4; ++b)
        in1.injectWrite(b, t2 + (1 + b) * gap);
    in1.injectSet1(t2 + 6 * gap);
    sim.run();

    // Pulse into input NPE 1: synapse (1,0) is off (strength 0),
    // synapse (1,1) has strength 3.
    mesh.injectInput(1, sim.now() + 4 * gap);
    sim.run();
    EXPECT_EQ(mesh.outputNpe(0).value(), 2u); // unchanged
    EXPECT_EQ(mesh.outputNpe(1).value(), 1u + 3u);
}

TEST(MeshGateTest, OutputDriverTogglesPerSpike)
{
    sfq::Simulator sim;
    sim.setViolationPolicy(sfq::ViolationPolicy::Ignore);
    sfq::Netlist net(sim);
    MeshConfig cfg;
    cfg.n = 1;
    cfg.sc_per_npe = 2; // 4 states
    cfg.w_max = 1;
    MeshGate mesh(net, cfg);

    const Tick gap = sfq::safePulseSpacing();
    Tick t = mesh.configureWeights({{1}}, gap, gap);
    // Input NPE: fire on every pulse (preload 3). Output NPE: spike
    // every 4th pulse (threshold 4, preload 0).
    auto &in0 = mesh.inputNpe(0);
    in0.injectRst(t + gap);
    in0.injectWrite(0, t + 2 * gap);
    in0.injectWrite(1, t + 3 * gap);
    in0.injectSet1(t + 4 * gap);
    mesh.outputNpe(0).injectRst(t + gap);
    mesh.outputNpe(0).injectSet1(t + 4 * gap);
    sim.run();

    // 4 external pulses -> 4 input spikes -> output NPE wraps once.
    // Re-arm the input threshold after each fire (it wraps to 0).
    for (int p = 0; p < 4; ++p) {
        Tick s = sim.now() + 2 * gap;
        mesh.injectInput(0, s);
        sim.run();
        Tick r = sim.now() + gap;
        in0.injectRst(r);
        in0.injectWrite(0, r + gap);
        in0.injectWrite(1, r + 2 * gap);
        in0.injectSet1(r + 3 * gap);
        sim.run();
    }
    EXPECT_EQ(mesh.outputDriver(0).pulseCount(), 1u);
    EXPECT_TRUE(mesh.outputDriver(0).level());
}

TEST(TreeGateTest, MergesLeavesOntoRoot)
{
    sfq::Simulator sim;
    sim.setViolationPolicy(sfq::ViolationPolicy::Ignore);
    sfq::Netlist net(sim);
    TreeConfig cfg;
    cfg.leaves = 4;
    cfg.sc_per_npe = 3;
    TreeGate tree(net, cfg);

    const Tick gap = sfq::safePulseSpacing();
    Tick t = gap;
    for (int i = 0; i < 4; ++i) {
        auto &leaf = tree.inputNpe(i);
        leaf.injectRst(t);
        for (int b = 0; b < 3; ++b)
            leaf.injectWrite(b, t + (1 + b) * gap);
        leaf.injectSet1(t + 5 * gap);
    }
    tree.outputNpe().injectRst(t);
    tree.outputNpe().injectSet1(t + 5 * gap);
    sim.run();

    // One pulse into each leaf: each fires once; the root counts 4.
    for (int i = 0; i < 4; ++i) {
        tree.injectInput(i, sim.now() + 2 * gap);
        sim.run();
    }
    EXPECT_EQ(tree.outputNpe().value(), 4u);
}

TEST(TreeVsMesh, TreeIsCheaper)
{
    // Fig. 11 trade-off: for the same number of inputs, the tree
    // fabric costs far fewer JJs than the all-to-all mesh.
    sfq::Simulator sim;
    sfq::Netlist tree_net(sim), mesh_net(sim);
    TreeConfig tcfg;
    tcfg.leaves = 8;
    TreeGate tree(tree_net, tcfg);
    MeshConfig mcfg = scalingMeshConfig(8);
    MeshGate mesh(mesh_net, mcfg);
    EXPECT_LT(tree_net.resources().totalJjs(),
              mesh_net.resources().totalJjs() / 2);
}

TEST(ResourceModel, Table2Anchors)
{
    const DesignPoint p = designPoint(4);
    // Within 1 % of the paper's Table 2.
    EXPECT_NEAR(static_cast<double>(p.total_jjs),
                static_cast<double>(paper::kTable2TotalJjs),
                0.01 * paper::kTable2TotalJjs);
    EXPECT_NEAR(static_cast<double>(p.logic_jjs),
                static_cast<double>(paper::kTable2LogicJjs),
                0.01 * paper::kTable2LogicJjs);
    EXPECT_NEAR(static_cast<double>(p.wiring_jjs),
                static_cast<double>(paper::kTable2WiringJjs),
                0.01 * paper::kTable2WiringJjs);
    EXPECT_NEAR(p.area_mm2, paper::kTable2AreaMm2,
                0.01 * paper::kTable2AreaMm2);
    EXPECT_NEAR(p.wiring_fraction, 0.6813, 0.01);
}

TEST(ResourceModel, PeakDesignAnchors)
{
    const DesignPoint p = designPoint(16);
    EXPECT_EQ(p.npes, 32);
    EXPECT_NEAR(static_cast<double>(p.total_jjs),
                static_cast<double>(paper::kPeakJjs),
                0.01 * paper::kPeakJjs);
    EXPECT_NEAR(p.area_mm2, paper::kPeakAreaMm2,
                0.01 * paper::kPeakAreaMm2);
}

TEST(ResourceModel, SweepMonotone)
{
    auto sweep = fig13Sweep();
    ASSERT_EQ(sweep.size(), 5u);
    for (std::size_t i = 1; i < sweep.size(); ++i) {
        EXPECT_GT(sweep[i].total_jjs, sweep[i - 1].total_jjs);
        EXPECT_GT(sweep[i].area_mm2, sweep[i - 1].area_mm2);
        EXPECT_GT(sweep[i].npes, sweep[i - 1].npes);
    }
}

TEST(TimingModel, TransmissionShareAnchors)
{
    // Sec. 6.3: ~6 % at 1x1, ~53 % at 16x16.
    EXPECT_NEAR(transmissionShare(scalingMeshConfig(1)), 0.06, 0.015);
    EXPECT_NEAR(transmissionShare(scalingMeshConfig(16)), 0.53, 0.03);
}

TEST(TimingModel, TransmissionShareMonotone)
{
    double prev = 0.0;
    for (int n : {1, 2, 4, 8, 16}) {
        const double share = transmissionShare(scalingMeshConfig(n));
        EXPECT_GT(share, prev);
        prev = share;
    }
}

TEST(TimingModel, PeakGsopsAnchor)
{
    // Table 4: 1,355 GSOPS at the 16x16 design.
    EXPECT_NEAR(peakGsops(scalingMeshConfig(16)), 1355.0, 14.0);
}

TEST(TimingModel, GsopsGrowsWithScale)
{
    double prev = 0.0;
    for (int n : {1, 2, 4, 8, 16}) {
        const double g = peakGsops(scalingMeshConfig(n));
        EXPECT_GT(g, prev);
        prev = g;
    }
}

TEST(TimingModel, ReloadShareBounds)
{
    EXPECT_DOUBLE_EQ(reloadTimeShare(0, 100), 0.0);
    EXPECT_GT(reloadTimeShare(10, 100), 0.0);
    EXPECT_LT(reloadTimeShare(10, 100), 1.0);
    // More reloads -> larger share.
    EXPECT_GT(reloadTimeShare(50, 100), reloadTimeShare(10, 100));
}

} // namespace
} // namespace sushi::fabric
