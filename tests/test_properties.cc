/**
 * @file
 * Cross-module property tests: invariants that must hold across
 * random inputs and parameter sweeps, beyond the per-module unit
 * tests.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "chip/sushi_chip.hh"
#include "common/rng.hh"
#include "engine/inference_engine.hh"
#include "fabric/resource_model.hh"
#include "fabric/timing_model.hh"
#include "npe/npe.hh"
#include "sfq/constraints.hh"
#include "sfq/waveform.hh"
#include "snn/binarize.hh"

namespace sushi {
namespace {

TEST(Property, NpeCounterIsModularArithmetic)
{
    // For any preload, polarity sequence and pulse counts, the NPE
    // value equals the signed sum mod 2^K, and the emitted spikes
    // equal the number of boundary wraps.
    Rng rng(404);
    for (int trial = 0; trial < 200; ++trial) {
        const int k = 3 + static_cast<int>(rng.below(8));
        const std::int64_t modulus = std::int64_t{1} << k;
        npe::Npe npe(k);
        npe.rst();
        const std::uint64_t preload =
            rng.below(static_cast<std::uint64_t>(modulus));
        npe.write(preload);

        std::int64_t signed_sum = static_cast<std::int64_t>(preload);
        std::uint64_t wraps = 0;
        for (int burst = 0; burst < 6; ++burst) {
            const bool up = rng.chance(0.5);
            const std::uint64_t count = rng.below(3 * modulus);
            npe.setPolarity(up ? npe::Polarity::Excitatory
                               : npe::Polarity::Inhibitory);
            wraps += npe.addPulses(count);
            signed_sum += up ? static_cast<std::int64_t>(count)
                             : -static_cast<std::int64_t>(count);
        }
        const std::int64_t expect =
            ((signed_sum % modulus) + modulus) % modulus;
        EXPECT_EQ(npe.value(),
                  static_cast<std::uint64_t>(expect))
            << "trial " << trial;
        EXPECT_GT(wraps + 1, 0u); // wraps consistent (smoke)
    }
}

TEST(Property, WaveformRoundTripRandom)
{
    Rng rng(405);
    for (int trial = 0; trial < 50; ++trial) {
        sfq::PulseTrace pulses;
        Tick t = 0;
        const int n = static_cast<int>(rng.below(40));
        for (int i = 0; i < n; ++i) {
            t += 1 + static_cast<Tick>(rng.below(100000));
            pulses.push_back(t);
        }
        EXPECT_EQ(sfq::levelsToPulses(sfq::pulsesToLevels(pulses)),
                  pulses);
    }
}

TEST(Property, SafeSpacingNeverViolatesAnyCell)
{
    // Protocol-legal random traffic at >= safe spacing produces zero
    // constraint violations through a pipeline of every asynchronous
    // cell type.
    Rng rng(406);
    sfq::Simulator sim;
    sim.setViolationPolicy(sfq::ViolationPolicy::Ignore);
    sfq::Netlist net(sim);
    const Tick gap = sfq::safePulseSpacing();

    auto &spl = net.makeSpl("spl");
    auto &cb = net.makeCb("cb");
    auto &tff = net.makeTffl("tff");
    auto &ndro = net.makeNdro("ndro");
    net.connectWire(spl, 0, cb, 0);
    // Delay the second branch past the CB cross-channel constraint
    // AND far enough that the two merged pulses respect the TFF's
    // 39.9 ps clk-clk interval (12 JTL stages = 42 ps).
    net.connectWire(spl, 1, cb, 1, 12);
    net.connectWire(cb, 0, tff, 0);
    net.connectWire(tff, 0, ndro, sfq::chan::kNdroClk);
    auto &sink = net.makeSink("sink");
    net.connectWire(ndro, 0, sink, 0);

    Tick t = gap;
    bool armed = false;
    for (int i = 0; i < 300; ++i) {
        switch (rng.below(3)) {
          case 0:
            spl.inject(0, t);
            break;
          case 1:
            ndro.inject(armed ? sfq::chan::kNdroRst
                              : sfq::chan::kNdroDin,
                        t);
            armed = !armed;
            break;
          case 2:
            spl.inject(0, t);
            break;
        }
        // Two injections through the split/merge interleave a
        // 42 ps-delayed branch between direct branches; keep the
        // injection spacing comfortably above gap + that stagger.
        t += 2 * gap + static_cast<Tick>(rng.below(50000));
    }
    sim.run();
    EXPECT_EQ(sim.violations(), 0u);
}

TEST(Property, ResourceModelMonotoneInWmax)
{
    using fabric::weightStructureLogicJjs;
    using fabric::weightStructureWiringJjs;
    for (int w = 2; w <= 16; ++w) {
        EXPECT_GT(weightStructureLogicJjs(w),
                  weightStructureLogicJjs(w - 1));
        EXPECT_GE(weightStructureWiringJjs(w),
                  weightStructureWiringJjs(w - 1));
    }
}

TEST(Property, PulseTimeMonotoneInMeshSize)
{
    // Transmission time rises with the die; the total per-pulse time
    // is dominated by it at scale.
    double prev_trans = 0.0;
    for (int n : {1, 2, 4, 8, 16}) {
        const double trans = fabric::transmissionDelayPs(n);
        EXPECT_GT(trans, prev_trans);
        prev_trans = trans;
    }
}

TEST(Property, ChipDeterministic)
{
    // Identical compiled networks and frames give identical counts
    // and identical stats across runs.
    snn::SnnConfig cfg;
    cfg.input = 30;
    cfg.hidden = 12;
    cfg.output = 4;
    cfg.t_steps = 4;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, 3);
    auto bin = snn::BinarySnn::fromFloat(mlp);
    compiler::ChipConfig chip_cfg;
    chip_cfg.n = 8;
    auto compiled = compiler::compileNetwork(bin, chip_cfg);

    Rng rng(407);
    std::vector<std::vector<std::uint8_t>> frames;
    for (int t = 0; t < 4; ++t) {
        std::vector<std::uint8_t> f(30);
        for (auto &v : f)
            v = rng.chance(0.5);
        frames.push_back(std::move(f));
    }
    chip::SushiChip a(chip_cfg), b(chip_cfg);
    EXPECT_EQ(a.inferCounts(compiled, frames),
              b.inferCounts(compiled, frames));
    EXPECT_EQ(a.stats().synaptic_ops, b.stats().synaptic_ops);
    EXPECT_EQ(a.stats().est_time_ps, b.stats().est_time_ps);
}

TEST(Property, ChipMatchesSoftwareAcrossMeshWidths)
{
    // The bit-slice decomposition must not change results: any mesh
    // width gives the same counts as the software model (ample state
    // budget).
    snn::SnnConfig cfg;
    cfg.input = 40;
    cfg.hidden = 16;
    cfg.output = 5;
    cfg.t_steps = 3;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, 9);
    auto bin = snn::BinarySnn::fromFloat(mlp);

    Rng rng(408);
    std::vector<std::vector<std::uint8_t>> frames;
    for (int t = 0; t < 3; ++t) {
        std::vector<std::uint8_t> f(40);
        for (auto &v : f)
            v = rng.chance(0.4);
        frames.push_back(std::move(f));
    }
    const auto sw = bin.forwardCounts(frames);
    for (int n : {2, 4, 8, 16, 64}) {
        compiler::ChipConfig chip_cfg;
        chip_cfg.n = n;
        chip_cfg.sc_per_npe = 12;
        auto compiled = compiler::compileNetwork(bin, chip_cfg);
        chip::SushiChip chip(chip_cfg);
        EXPECT_EQ(chip.inferCounts(compiled, frames), sw)
            << "mesh width " << n;
    }
}

TEST(Property, BinaryPredictionInRange)
{
    Rng rng(409);
    snn::SnnConfig cfg;
    cfg.input = 20;
    cfg.hidden = 10;
    cfg.output = 7;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, 5);
    auto bin = snn::BinarySnn::fromFloat(mlp);
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<std::vector<std::uint8_t>> frames;
        for (int t = 0; t < cfg.t_steps; ++t) {
            std::vector<std::uint8_t> f(20);
            for (auto &v : f)
                v = rng.chance(0.5);
            frames.push_back(std::move(f));
        }
        const int p = bin.predict(frames);
        EXPECT_GE(p, 0);
        EXPECT_LT(p, 7);
    }
}

TEST(Property, DesignPointsInternallyConsistent)
{
    for (int n : {1, 2, 4, 8, 16}) {
        const auto p = fabric::designPoint(n);
        EXPECT_EQ(p.total_jjs, p.logic_jjs + p.wiring_jjs);
        EXPECT_NEAR(p.wiring_fraction,
                    static_cast<double>(p.wiring_jjs) /
                        static_cast<double>(p.total_jjs),
                    1e-12);
        EXPECT_GT(p.area_mm2, 0.0);
        EXPECT_EQ(p.npes, 2 * n);
    }
}


TEST(Property, FaultInjectionDropsPulsesDeterministically)
{
    // Same seed, same faults; higher rates lose more pulses; the
    // lost pulses change observable behaviour (the chip verification
    // of Sec. 6.2 would catch such a part).
    auto run = [](double rate, std::uint64_t seed) {
        sfq::Simulator sim;
        sim.setViolationPolicy(sfq::ViolationPolicy::Ignore);
        sim.setPulseDropRate(rate, seed);
        sfq::Netlist net(sim);
        npe::NpeGate npe(net, "npe", 4);
        const Tick gap = sfq::safePulseSpacing();
        npe.injectSet1(gap);
        for (int i = 0; i < 64; ++i)
            npe.injectIn((i + 2) * gap);
        sim.run();
        return std::make_pair(npe.outSink().count(),
                              sim.droppedPulses());
    };
    const auto clean = run(0.0, 1);
    EXPECT_EQ(clean.second, 0u);
    EXPECT_EQ(clean.first, 4u); // 64 pulses through 16 states

    const auto faulty_a = run(0.05, 7);
    const auto faulty_b = run(0.05, 7);
    EXPECT_EQ(faulty_a, faulty_b); // deterministic in the seed
    EXPECT_GT(faulty_a.second, 0u);

    const auto heavy = run(0.5, 7);
    EXPECT_GT(heavy.second, faulty_a.second);
    EXPECT_LT(heavy.first, clean.first);
}

TEST(Property, EngineEqualsSequentialSingleChip)
{
    // For any replica count, sharding a batch across the engine's
    // chip pool is observationally identical to one chip running the
    // batch sequentially: same per-sample counts and predictions,
    // same merged counters.
    snn::SnnConfig cfg;
    cfg.input = 24;
    cfg.hidden = 10;
    cfg.output = 4;
    cfg.t_steps = 3;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, 13);
    auto bin = snn::BinarySnn::fromFloat(mlp);
    compiler::ChipConfig chip_cfg;
    chip_cfg.n = 8;
    auto model = engine::CompiledModel::compile(bin, chip_cfg);

    Rng rng(410);
    std::vector<engine::Sample> samples(21);
    for (auto &s : samples) {
        for (int t = 0; t < cfg.t_steps; ++t) {
            std::vector<std::uint8_t> f(24);
            for (auto &v : f)
                v = rng.chance(0.5);
            s.push_back(std::move(f));
        }
    }

    chip::SushiChip single(chip_cfg);
    std::vector<std::vector<int>> seq;
    chip::InferenceStats seq_merged;
    for (const auto &s : samples) {
        single.resetStats();
        seq.push_back(single.inferCounts(model->compiled(), s));
        seq_merged.accumulate(single.stats());
    }

    for (int replicas : {1, 2, 5}) {
        engine::EngineConfig ecfg;
        ecfg.replicas = replicas;
        engine::InferenceEngine eng(model, ecfg);
        const auto run = eng.run(samples);
        for (std::size_t i = 0; i < samples.size(); ++i)
            EXPECT_EQ(run.samples[i].counts, seq[i])
                << "replicas " << replicas << " sample " << i;
        EXPECT_EQ(run.merged.synaptic_ops, seq_merged.synaptic_ops)
            << "replicas " << replicas;
        EXPECT_EQ(run.merged.output_spikes, seq_merged.output_spikes)
            << "replicas " << replicas;
        EXPECT_EQ(run.merged.reload_events, seq_merged.reload_events)
            << "replicas " << replicas;
    }
}

TEST(Property, FaultInjectionBreaksCosimEquivalence)
{
    // A lossy gate-level chip must diverge from the ideal
    // behavioural model — the check the paper's waveform comparison
    // performs on fabricated parts.
    sfq::Simulator sim;
    sim.setViolationPolicy(sfq::ViolationPolicy::Ignore);
    sim.setPulseDropRate(0.3, 3);
    sfq::Netlist net(sim);
    npe::NpeGate gate(net, "npe", 5);
    npe::Npe ref(5);
    ref.setPolarity(npe::Polarity::Excitatory);
    const Tick gap = sfq::safePulseSpacing();
    gate.injectSet1(gap);
    for (int i = 0; i < 40; ++i) {
        gate.injectIn((i + 2) * gap);
        ref.in();
    }
    sim.run();
    EXPECT_NE(gate.value(), ref.value());
}

} // namespace
} // namespace sushi
