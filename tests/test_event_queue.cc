/**
 * @file
 * Unit tests for the discrete-event kernel and simulator.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sfq/event_queue.hh"
#include "sfq/simulator.hh"

namespace sushi::sfq {
namespace {

TEST(EventQueue, OrdersByTime)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    while (!q.empty())
        q.runOne();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableAtEqualTicks)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.runOne();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTick)
{
    EventQueue q;
    EXPECT_EQ(q.nextTick(), kTickNever);
    q.schedule(42, [] {});
    EXPECT_EQ(q.nextTick(), 42);
}

TEST(EventQueue, ExecutedCount)
{
    EventQueue q;
    q.schedule(1, [] {});
    q.schedule(2, [] {});
    q.runOne();
    EXPECT_EQ(q.executed(), 1u);
    q.runOne();
    EXPECT_EQ(q.executed(), 2u);
}

TEST(EventQueue, EventsCanSchedule)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        q.schedule(2, [&] { ++fired; });
    });
    while (!q.empty())
        q.runOne();
    EXPECT_EQ(fired, 1);
}

TEST(Simulator, TimeAdvances)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), 0);
    Tick seen = -1;
    sim.schedule(100, [&] { seen = sim.now(); });
    sim.run();
    EXPECT_EQ(seen, 100);
    EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, RunUntilStopsEarly)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(10, [&] { ++fired; });
    sim.schedule(1000, [&] { ++fired; });
    sim.run(500);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(sim.idle());
    sim.run();
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(sim.idle());
}

TEST(Simulator, ScheduleInRelative)
{
    Simulator sim;
    Tick at = -1;
    sim.schedule(50, [&] {
        sim.scheduleIn(25, [&] { at = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(at, 75);
}

TEST(Simulator, ViolationPolicyIgnoreCounts)
{
    Simulator sim;
    sim.setViolationPolicy(ViolationPolicy::Ignore);
    sim.reportViolation("test");
    sim.reportViolation("test2");
    EXPECT_EQ(sim.violations(), 2u);
    EXPECT_EQ(sim.stats().counter("sim.constraint_violations"), 2u);
}

TEST(Simulator, EnergyAccumulates)
{
    Simulator sim;
    sim.addSwitchEnergy(1e-19);
    sim.addSwitchEnergy(2e-19);
    EXPECT_DOUBLE_EQ(sim.switchEnergy(), 3e-19);
}

} // namespace
} // namespace sushi::sfq
