/**
 * @file
 * Unit tests for the discrete-event kernel and simulator.
 *
 * The queue under test is the calendar queue of POD events: checks
 * cover time ordering, equal-tick insertion-order stability (within a
 * day and across the calendar horizon), interleaved push/pop,
 * far-future scheduling past the ring horizon, and reuse after
 * Simulator::reset().
 */

#include <gtest/gtest.h>

#include <vector>

#include "sfq/cells.hh"
#include "sfq/constraints.hh"
#include "sfq/event_queue.hh"
#include "sfq/simulator.hh"

namespace sushi::sfq {
namespace {

/** Drain the queue fully, returning (cell, port) pairs in pop order. */
std::vector<std::pair<std::int32_t, std::int32_t>>
drain(EventQueue &q)
{
    std::vector<std::pair<std::int32_t, std::int32_t>> order;
    EventQueue::Event ev{};
    while (q.popNext(kTickNever, ev))
        order.emplace_back(ev.cell, ev.port);
    return order;
}

TEST(EventQueue, OrdersByTime)
{
    EventQueue q;
    q.push(30, 3, 0);
    q.push(10, 1, 0);
    q.push(20, 2, 0);
    std::vector<std::pair<std::int32_t, std::int32_t>> expect{
        {1, 0}, {2, 0}, {3, 0}};
    EXPECT_EQ(drain(q), expect);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StableAtEqualTicks)
{
    EventQueue q;
    for (int i = 0; i < 10; ++i)
        q.push(5, i, i);
    const auto order = drain(q);
    ASSERT_EQ(order.size(), 10u);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(order[static_cast<std::size_t>(i)].first, i);
        EXPECT_EQ(order[static_cast<std::size_t>(i)].second, i);
    }
}

TEST(EventQueue, NextTickAndEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextTick(), kTickNever);
    q.push(42, 0, 0);
    EXPECT_FALSE(q.empty());
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.nextTick(), 42);
}

TEST(EventQueue, ExecutedCount)
{
    EventQueue q;
    q.push(1, 0, 0);
    q.push(2, 0, 0);
    EventQueue::Event ev{};
    ASSERT_TRUE(q.popNext(kTickNever, ev));
    EXPECT_EQ(q.executed(), 1u);
    ASSERT_TRUE(q.popNext(kTickNever, ev));
    EXPECT_EQ(q.executed(), 2u);
    EXPECT_FALSE(q.popNext(kTickNever, ev));
    EXPECT_EQ(q.executed(), 2u);
}

TEST(EventQueue, PopNextRespectsUntil)
{
    EventQueue q;
    q.push(10, 1, 0);
    q.push(1000, 2, 0);
    EventQueue::Event ev{};
    ASSERT_TRUE(q.popNext(500, ev));
    EXPECT_EQ(ev.when, 10);
    EXPECT_EQ(ev.cell, 1);
    EXPECT_FALSE(q.popNext(500, ev)); // earliest is at 1000
    EXPECT_EQ(q.size(), 1u);
    ASSERT_TRUE(q.popNext(kTickNever, ev));
    EXPECT_EQ(ev.when, 1000);
}

TEST(EventQueue, InterleavedPushPop)
{
    // Pop, then push at the same (and later) tick: new equal-tick
    // events must still come out after nothing earlier remains, and
    // ordering must hold as the draining day refills.
    EventQueue q;
    q.push(100, 0, 0);
    q.push(200, 1, 0);
    EventQueue::Event ev{};
    ASSERT_TRUE(q.popNext(kTickNever, ev));
    EXPECT_EQ(ev.when, 100);
    q.push(100, 2, 0); // same tick as the event just popped
    q.push(150, 3, 0);
    ASSERT_TRUE(q.popNext(kTickNever, ev));
    EXPECT_EQ(ev.cell, 2);
    ASSERT_TRUE(q.popNext(kTickNever, ev));
    EXPECT_EQ(ev.cell, 3);
    ASSERT_TRUE(q.popNext(kTickNever, ev));
    EXPECT_EQ(ev.cell, 1);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FarFutureBeyondHorizon)
{
    // Events far past the calendar ring land in the overflow heap and
    // must still pop in global time order, including ones pushed
    // several horizons out.
    EventQueue q;
    const Tick h = EventQueue::kHorizonTicks;
    q.push(3 * h + 7, 3, 0);
    q.push(5, 0, 0);
    q.push(h + 1, 1, 0);
    q.push(2 * h, 2, 0);
    q.push(10 * h, 4, 0);
    EventQueue::Event ev{};
    Tick prev = -1;
    std::vector<std::int32_t> cells;
    while (q.popNext(kTickNever, ev)) {
        EXPECT_GE(ev.when, prev);
        prev = ev.when;
        cells.push_back(ev.cell);
    }
    EXPECT_EQ(cells, (std::vector<std::int32_t>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EqualTickStabilityAcrossHorizon)
{
    // Equal-tick events scheduled beyond the horizon (overflow heap)
    // keep insertion order once they migrate into the calendar.
    EventQueue q;
    const Tick t = 2 * EventQueue::kHorizonTicks + 3;
    for (int i = 0; i < 8; ++i)
        q.push(t, i, 0);
    const auto order = drain(q);
    ASSERT_EQ(order.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)].first, i);
}

TEST(EventQueue, ClearKeepsCountersAndAllowsReuse)
{
    EventQueue q;
    q.push(1, 0, 0);
    q.push(EventQueue::kHorizonTicks * 4, 1, 0);
    EventQueue::Event ev{};
    ASSERT_TRUE(q.popNext(kTickNever, ev));
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.executed(), 1u); // executed survives clear()
    q.push(7, 5, 2);
    ASSERT_TRUE(q.popNext(kTickNever, ev));
    EXPECT_EQ(ev.when, 7);
    EXPECT_EQ(ev.cell, 5);
    EXPECT_EQ(ev.port, 2);
    EXPECT_EQ(q.executed(), 2u);
}

TEST(Simulator, TimeAdvances)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), 0);
    Tick seen = -1;
    sim.schedule(100, [&] { seen = sim.now(); });
    sim.run();
    EXPECT_EQ(seen, 100);
    EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, RunUntilStopsEarly)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(10, [&] { ++fired; });
    sim.schedule(1000, [&] { ++fired; });
    sim.run(500);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(sim.idle());
    sim.run();
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(sim.idle());
}

TEST(Simulator, ScheduleInRelative)
{
    Simulator sim;
    Tick at = -1;
    sim.schedule(50, [&] {
        sim.scheduleIn(25, [&] { at = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(at, 75);
}

TEST(Simulator, ViolationPolicyIgnoreCounts)
{
    Simulator sim;
    sim.setViolationPolicy(ViolationPolicy::Ignore);
    sim.reportViolation("test");
    sim.reportViolation("test2");
    EXPECT_EQ(sim.violations(), 2u);
    EXPECT_EQ(sim.stats().counter("sim.constraint_violations"), 2u);
}

TEST(Simulator, EnergyAccumulates)
{
    Simulator sim;
    sim.addSwitchEnergy(1e-19);
    sim.addSwitchEnergy(2e-19);
    EXPECT_DOUBLE_EQ(sim.switchEnergy(), 3e-19);
}

TEST(Simulator, QueueReusableAfterReset)
{
    Simulator sim;
    sim.setViolationPolicy(ViolationPolicy::Ignore);
    Jtl jtl(sim, "jtl");
    PulseSink sink(sim, "sink");
    jtl.connect(0, sink, 0);

    const Tick gap = safePulseSpacing();
    jtl.inject(0, gap);
    jtl.inject(0, 2 * gap);
    sim.run();
    EXPECT_EQ(sink.count(), 2u);

    sim.reset();
    sink.clear();
    EXPECT_EQ(sim.now(), 0);
    EXPECT_TRUE(sim.idle());

    // The same compiled netlist keeps working on the cleared queue.
    jtl.inject(0, gap);
    jtl.inject(0, 2 * gap);
    sim.run();
    EXPECT_EQ(sink.count(), 2u);
}

} // namespace
} // namespace sushi::sfq
