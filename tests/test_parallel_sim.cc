/**
 * @file
 * Property tests for the partitioned parallel simulator (PR 5).
 *
 * The contract under test is absolute: ParallelSimulator::run() must
 * be byte-identical to Simulator::run() at every thread count — pulse
 * traces, counters, energy, fault statistics, violation attribution,
 * and thrown TimingFaults all included. The suite drives the same
 * gate-level NPE workloads the determinism and fault suites use, both
 * in the embarrassingly-parallel regime (independent gates, no cross
 * edges) and the windowed regime (min_lookahead=1 scatters one gate
 * across lanes, forcing boundary-pulse exchange every window).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "npe/npe.hh"
#include "sfq/compiled_netlist.hh"
#include "sfq/constraints.hh"
#include "sfq/fault_model.hh"
#include "sfq/netlist.hh"
#include "sfq/parallel_simulator.hh"
#include "sfq/partition.hh"
#include "sfq/simulator.hh"

namespace sushi {
namespace {

constexpr int kNumSc = 5;

/** Everything observable about one run, for byte-comparisons. */
struct RunRecord
{
    std::vector<std::vector<Tick>> traces; // per gate
    std::vector<std::uint64_t> values;     // per gate
    std::uint64_t events = 0;
    std::uint64_t pulses = 0;
    std::uint64_t violations = 0;
    std::uint64_t recovered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t inserted = 0;
    double energy_j = 0.0;
    std::string last_violation;

    bool operator==(const RunRecord &o) const
    {
        return traces == o.traces && values == o.values &&
               events == o.events && pulses == o.pulses &&
               violations == o.violations &&
               recovered == o.recovered && dropped == o.dropped &&
               inserted == o.inserted && energy_j == o.energy_j &&
               last_violation == o.last_violation;
    }
};

/** A rig of @p num_gates independent gate-level NPE counters with a
 *  staggered pulse stimulus (gates diverge, ties still happen). */
struct Rig
{
    sfq::Simulator sim;
    sfq::Netlist net{sim};
    std::vector<std::unique_ptr<npe::NpeGate>> gates;

    explicit Rig(int num_gates,
                 sfq::ViolationPolicy policy =
                     sfq::ViolationPolicy::Warn)
    {
        sim.setViolationPolicy(policy);
        for (int g = 0; g < num_gates; ++g)
            gates.push_back(std::make_unique<npe::NpeGate>(
                net, "npe" + std::to_string(g), kNumSc));
    }

    void inject(int pulses, Tick gap)
    {
        for (std::size_t g = 0; g < gates.size(); ++g) {
            gates[g]->injectSet1(gap);
            for (int i = 0; i < pulses + static_cast<int>(g); ++i)
                gates[g]->injectIn((i + 2) * gap + ticksFor(g));
        }
    }

    /** Small per-gate phase shift; gate 0 stays on the shared grid
     *  so same-tick deliveries across lanes still occur. */
    static Tick ticksFor(std::size_t g)
    {
        return static_cast<Tick>((g % 2) * 17);
    }

    RunRecord record() const
    {
        RunRecord r;
        for (const auto &gate : gates) {
            r.traces.push_back(gate->outSink().pulsesSeen());
            r.values.push_back(gate->value());
        }
        r.events = sim.eventsExecuted();
        r.pulses = sim.pulses();
        r.violations = sim.violations();
        r.recovered = sim.recoveredPulses();
        r.dropped = sim.faults().counters().dropped;
        r.inserted = sim.faults().counters().inserted;
        r.energy_j = sim.switchEnergy();
        r.last_violation = sim.lastViolation();
        return r;
    }
};

RunRecord
runSequential(int num_gates, int pulses, Tick gap)
{
    Rig rig(num_gates);
    rig.inject(pulses, gap);
    rig.sim.run();
    return rig.record();
}

RunRecord
runParallel(int num_gates, int pulses, Tick gap, int threads,
            Tick min_lookahead = 0)
{
    Rig rig(num_gates);
    rig.inject(pulses, gap);
    sfq::ParallelSimulator::Options opts;
    opts.threads = threads;
    if (min_lookahead > 0)
        opts.min_lookahead = min_lookahead;
    sfq::ParallelSimulator psim(rig.sim, opts);
    psim.run();
    return rig.record();
}

// ---------------------------------------------------------------
// Partitioner
// ---------------------------------------------------------------

TEST(Partitioner, EveryCellLandsOnExactlyOneLane)
{
    Rig rig(4);
    rig.sim.core().freeze();
    const sfq::PartitionPlan plan =
        sfq::partitionNetlist(rig.sim.core(), 4, psToTicks(10.0));
    ASSERT_EQ(plan.lane_of.size(), rig.sim.core().numCells());
    EXPECT_GT(plan.num_lanes, 1);
    for (std::int32_t lane : plan.lane_of) {
        EXPECT_GE(lane, 0);
        EXPECT_LT(lane, plan.num_lanes);
    }
}

TEST(Partitioner, ShortEdgesNeverCrossLanes)
{
    Rig rig(3);
    const sfq::CompiledNetlist &core = rig.sim.core();
    rig.sim.core().freeze();
    const Tick min_la = psToTicks(10.0);
    const sfq::PartitionPlan plan =
        sfq::partitionNetlist(core, 8, min_la);
    Tick min_cross = kTickNever;
    std::uint64_t crossings = 0;
    for (std::size_t i = 0; i < core.numCells(); ++i) {
        const auto id = static_cast<std::int32_t>(i);
        const Tick src_delay = core.kindDelay(core.cellKind(id));
        for (int p = 0; p < core.numOutputs(id); ++p) {
            const sfq::OutConn &c = core.connection(id, p);
            if (c.dst < 0)
                continue;
            const Tick edge = src_delay + c.wire_delay;
            if (edge < min_la) {
                // Contracted: must share a component and a lane.
                EXPECT_EQ(plan.component_of[i],
                          plan.component_of[static_cast<std::size_t>(
                              c.dst)]);
                EXPECT_EQ(plan.lane_of[i],
                          plan.lane_of[static_cast<std::size_t>(
                              c.dst)]);
            }
            if (plan.lane_of[i] !=
                plan.lane_of[static_cast<std::size_t>(c.dst)]) {
                ++crossings;
                min_cross = std::min(min_cross, edge);
            }
        }
    }
    EXPECT_EQ(crossings, plan.cross_edges);
    if (plan.cross_edges > 0) {
        EXPECT_EQ(plan.lookahead, min_cross);
        EXPECT_GE(plan.lookahead, min_la);
    } else {
        EXPECT_EQ(plan.lookahead, kTickNever);
    }
}

TEST(Partitioner, IndependentGatesPartitionWithoutCrossEdges)
{
    Rig rig(6);
    rig.sim.core().freeze();
    const sfq::PartitionPlan plan =
        sfq::partitionNetlist(rig.sim.core(), 4, psToTicks(10.0));
    // Each gate's internal edges are tighter than the default
    // min-lookahead, so a gate is one component; six components on
    // four lanes leave no lane-crossing edges.
    EXPECT_EQ(plan.num_lanes, 4);
    EXPECT_EQ(plan.cross_edges, 0u);
    EXPECT_EQ(plan.lookahead, kTickNever);
}

// ---------------------------------------------------------------
// Byte-identity, clean workloads
// ---------------------------------------------------------------

TEST(ParallelSim, ByteIdenticalAcrossThreadCounts)
{
    const Tick gap = sfq::safePulseSpacing();
    const RunRecord seq = runSequential(5, 120, gap);
    ASSERT_FALSE(seq.traces[0].empty());
    for (int threads : {1, 2, 8}) {
        const RunRecord par = runParallel(5, 120, gap, threads);
        EXPECT_TRUE(seq == par) << "threads=" << threads;
    }
}

TEST(ParallelSim, ByteIdenticalUnderWindowedSync)
{
    // min_lookahead=1 stops the partitioner from contracting the
    // gate graph: one NPE scatters across lanes and every window
    // exchanges boundary pulses. Results must not move.
    const Tick gap = sfq::safePulseSpacing();
    const RunRecord seq = runSequential(1, 100, gap);
    for (int threads : {2, 8}) {
        const RunRecord par = runParallel(1, 100, gap, threads, 1);
        EXPECT_TRUE(seq == par) << "threads=" << threads;
    }
}

TEST(ParallelSim, RepeatedRunsAreStable)
{
    const Tick gap = sfq::safePulseSpacing();
    const RunRecord a = runParallel(4, 80, gap, 8);
    const RunRecord b = runParallel(4, 80, gap, 8);
    EXPECT_TRUE(a == b);
}

TEST(ParallelSim, MarginalTimingKeepsViolationParity)
{
    // Spacing tight enough to trip constraints: the violation count,
    // recovered-pulse count, and max-key last_violation report must
    // all match the sequential run.
    const Tick gap = psToTicks(30.0);
    Rig seq_rig(2, sfq::ViolationPolicy::Recover);
    seq_rig.inject(25, gap);
    seq_rig.sim.run();
    const RunRecord seq = seq_rig.record();
    EXPECT_GT(seq.violations, 0u);

    Rig par_rig(2, sfq::ViolationPolicy::Recover);
    par_rig.inject(25, gap);
    sfq::ParallelSimulator::Options opts;
    opts.threads = 4;
    sfq::ParallelSimulator psim(par_rig.sim, opts);
    psim.run();
    EXPECT_TRUE(seq == par_rig.record());
}

// ---------------------------------------------------------------
// Faults
// ---------------------------------------------------------------

RunRecord
runFaulty(int threads, sfq::FaultKind kind, double rate,
          bool *was_parallel = nullptr)
{
    Rig rig(4, sfq::ViolationPolicy::Recover);
    rig.sim.faults().reseed(0xfeedULL);
    sfq::FaultSpec spec;
    spec.kind = kind;
    if (kind == sfq::FaultKind::TimingJitter)
        spec.jitter_sigma = rate;
    else
        spec.rate = rate;
    rig.sim.faults().addFault(spec);
    rig.inject(60, sfq::safePulseSpacing());
    if (threads <= 0) {
        rig.sim.run();
    } else {
        sfq::ParallelSimulator::Options opts;
        opts.threads = threads;
        sfq::ParallelSimulator psim(rig.sim, opts);
        psim.run();
        if (was_parallel != nullptr)
            *was_parallel = psim.lastRunParallel();
    }
    return rig.record();
}

TEST(ParallelSim, DropAndSpuriousFaultsStayByteIdentical)
{
    for (sfq::FaultKind kind : {sfq::FaultKind::PulseDrop,
                                sfq::FaultKind::SpuriousPulse}) {
        const RunRecord seq = runFaulty(0, kind, 0.05);
        EXPECT_GT(seq.dropped + seq.inserted, 0u);
        for (int threads : {2, 8}) {
            bool parallel = false;
            const RunRecord par =
                runFaulty(threads, kind, 0.05, &parallel);
            EXPECT_TRUE(parallel);
            EXPECT_TRUE(seq == par)
                << "kind=" << static_cast<int>(kind)
                << " threads=" << threads;
        }
    }
}

TEST(ParallelSim, JitterFallsBackToSequentialPath)
{
    // Jitter breaks the lookahead bound; the run must transparently
    // degrade to the (byte-compatible) sequential path.
    bool parallel = true;
    const RunRecord par = runFaulty(
        4, sfq::FaultKind::TimingJitter, 500.0, &parallel);
    EXPECT_FALSE(parallel);
    const RunRecord seq =
        runFaulty(0, sfq::FaultKind::TimingJitter, 500.0);
    EXPECT_TRUE(seq == par);
}

// ---------------------------------------------------------------
// Fatal attribution
// ---------------------------------------------------------------

TEST(ParallelSim, FatalFaultAttributionMatchesSequential)
{
    const Tick gap = psToTicks(30.0); // marginal: trips constraints
    auto capture = [&](int threads) {
        Rig rig(3, sfq::ViolationPolicy::Fatal);
        rig.inject(25, gap);
        std::string cell, constraint;
        Tick prev = kTickNever, at = kTickNever;
        try {
            if (threads <= 0) {
                rig.sim.run();
            } else {
                sfq::ParallelSimulator::Options opts;
                opts.threads = threads;
                sfq::ParallelSimulator psim(rig.sim, opts);
                psim.run();
            }
            ADD_FAILURE() << "expected a TimingFault";
        } catch (const sfq::TimingFault &tf) {
            cell = tf.cell();
            constraint = tf.constraint();
            prev = tf.prevPulse();
            at = tf.violatingPulse();
        }
        return std::make_tuple(cell, constraint, prev, at);
    };
    const auto seq = capture(0);
    for (int threads : {2, 8})
        EXPECT_EQ(seq, capture(threads)) << "threads=" << threads;
}

// ---------------------------------------------------------------
// Snapshot reset + structure sharing
// ---------------------------------------------------------------

TEST(ParallelSim, SnapshotResetRoundTripsExactly)
{
    const Tick gap = sfq::safePulseSpacing();
    Rig rig(2);
    rig.inject(50, gap);
    rig.sim.run();
    const RunRecord first = rig.record();

    rig.sim.reset();
    EXPECT_EQ(rig.sim.pulses(), 0u);
    EXPECT_EQ(rig.sim.switchEnergy(), 0.0);
    EXPECT_TRUE(rig.gates[0]->outSink().pulsesSeen().empty());

    rig.inject(50, gap);
    rig.sim.run();
    const RunRecord second = rig.record();
    EXPECT_EQ(first.traces, second.traces);
    EXPECT_EQ(first.values, second.values);
    EXPECT_EQ(first.pulses, second.pulses);
    EXPECT_EQ(first.energy_j, second.energy_j);
}

TEST(ParallelSim, SharedStructureReplicasMatchTheMaster)
{
    const Tick gap = sfq::safePulseSpacing();
    Rig master(1);
    master.inject(40, gap);
    master.sim.run();

    std::shared_ptr<const sfq::NetStructure> structure =
        master.sim.core().shareStructure();
    sfq::Simulator replica(structure);
    EXPECT_EQ(replica.core().structure().get(), structure.get());

    const std::int32_t in = replica.core().cellId("npe0.in");
    const std::int32_t set1 = replica.core().cellId("npe0.set1");
    const std::int32_t out = replica.core().cellId("npe0.out");
    ASSERT_GE(in, 0);
    ASSERT_GE(set1, 0);
    ASSERT_GE(out, 0);
    replica.schedulePulse(gap, set1, 0);
    for (int i = 0; i < 40; ++i)
        replica.schedulePulse((i + 2) * gap, in, 0);
    replica.run();

    EXPECT_EQ(replica.core().trace(out),
              master.gates[0]->outSink().pulsesSeen());
    EXPECT_EQ(replica.pulses(), master.sim.pulses());
    EXPECT_EQ(replica.switchEnergy(), master.sim.switchEnergy());
}

TEST(ParallelSim, CallbacksFallBackToSequentialPath)
{
    const Tick gap = sfq::safePulseSpacing();
    Rig rig(2);
    rig.inject(20, gap);
    bool fired = false;
    rig.sim.schedule(5 * gap, [&] { fired = true; });
    sfq::ParallelSimulator::Options opts;
    opts.threads = 4;
    sfq::ParallelSimulator psim(rig.sim, opts);
    psim.run();
    EXPECT_FALSE(psim.lastRunParallel());
    EXPECT_TRUE(fired);
    EXPECT_TRUE(runSequential(2, 20, gap).traces ==
                rig.record().traces);
}

} // namespace
} // namespace sushi
