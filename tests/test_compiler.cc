/**
 * @file
 * Tests for the SSNN compiler: slicing, bucketing/reordering,
 * state-range analysis and network compilation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hh"
#include "compiler/compile.hh"

namespace sushi::compiler {
namespace {

snn::BinaryLayer
randomLayer(int in_dim, int out_dim, double neg_fraction,
            int theta_lo, int theta_hi, std::uint64_t seed)
{
    Rng rng(seed);
    snn::BinaryLayer layer;
    layer.weights.resize(static_cast<std::size_t>(out_dim));
    layer.thresholds.resize(static_cast<std::size_t>(out_dim));
    for (int o = 0; o < out_dim; ++o) {
        auto &row = layer.weights[static_cast<std::size_t>(o)];
        row.resize(static_cast<std::size_t>(in_dim));
        for (int i = 0; i < in_dim; ++i)
            row[static_cast<std::size_t>(i)] =
                rng.chance(neg_fraction) ? -1 : 1;
        layer.thresholds[static_cast<std::size_t>(o)] =
            static_cast<int>(rng.range(theta_lo, theta_hi));
    }
    return layer;
}

TEST(BitSlice, ExactFit)
{
    LayerSlices s = sliceLayer(16, 16, 16);
    EXPECT_EQ(s.numInBlocks(), 1);
    EXPECT_EQ(s.numOutBlocks(), 1);
    EXPECT_EQ(s.inBlock(0).size(), 16);
}

TEST(BitSlice, RaggedTail)
{
    LayerSlices s = sliceLayer(784, 800, 16);
    EXPECT_EQ(s.numInBlocks(), 49);
    EXPECT_EQ(s.numOutBlocks(), 50);
    EXPECT_EQ(s.inBlock(48).size(), 784 - 48 * 16);
    EXPECT_EQ(s.totalBlocks(), 49L * 50L);
}

TEST(BitSlice, BlocksCoverEverything)
{
    LayerSlices s = sliceLayer(100, 30, 7);
    int covered = 0;
    for (int k = 0; k < s.numInBlocks(); ++k)
        covered += s.inBlock(k).size();
    EXPECT_EQ(covered, 100);
    covered = 0;
    for (int k = 0; k < s.numOutBlocks(); ++k)
        covered += s.outBlock(k).size();
    EXPECT_EQ(covered, 30);
}

TEST(Bucketing, OrderIsPermutation)
{
    auto layer = randomLayer(97, 8, 0.4, 1, 5, 3);
    BucketingConfig cfg;
    auto sched = scheduleLayer(layer, cfg);
    std::vector<int> sorted = sched.order;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 97; ++i)
        EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Bucketing, BucketsCoverInputs)
{
    auto layer = randomLayer(130, 4, 0.5, 1, 3, 5);
    BucketingConfig cfg;
    cfg.bucket_size = 32;
    auto sched = scheduleLayer(layer, cfg);
    int covered = 0;
    int prev_end = 0;
    for (const Block &b : sched.buckets) {
        EXPECT_EQ(b.begin, prev_end);
        covered += b.size();
        prev_end = b.end;
    }
    EXPECT_EQ(covered, 130);
}

TEST(Bucketing, DisabledYieldsSingleBucket)
{
    auto layer = randomLayer(64, 4, 0.5, 1, 3, 7);
    BucketingConfig cfg;
    cfg.bucketing = false;
    auto sched = scheduleLayer(layer, cfg);
    ASSERT_EQ(sched.buckets.size(), 1u);
    EXPECT_EQ(sched.buckets[0].size(), 64);
}

TEST(Bucketing, BucketingShrinksStateRange)
{
    // Sec. 5.1: bucketing "controls the range of states of the
    // neuron". A heavily inhibitory layer needs far fewer states
    // with alternating passes.
    auto layer = randomLayer(512, 8, 0.5, 1, 8, 11);
    BucketingConfig cfg;
    cfg.bucket_size = 32;
    auto sched = scheduleLayer(layer, cfg);
    auto report = analyzeStateRange(layer, sched, cfg);
    EXPECT_LT(report.required_states,
              report.required_states_unbucketed / 3);
    EXPECT_GT(report.required_states_unbucketed, 256);
}

TEST(Bucketing, UnbucketedRangeMatchesInhibitoryCount)
{
    snn::BinaryLayer layer;
    layer.weights = {{-1, -1, -1, 1, 1}};
    layer.thresholds = {2};
    BucketingConfig cfg;
    cfg.bucketing = false;
    auto sched = scheduleLayer(layer, cfg);
    auto report = analyzeStateRange(layer, sched, cfg);
    // theta (2) + all three inhibitory synapses.
    EXPECT_EQ(report.required_states_unbucketed, 5);
    EXPECT_EQ(report.required_states, 5);
}

TEST(Bucketing, StateBudgetFromBits)
{
    auto layer = randomLayer(16, 2, 0.5, 1, 2, 13);
    BucketingConfig cfg;
    cfg.state_bits = 7;
    auto sched = scheduleLayer(layer, cfg);
    auto report = analyzeStateRange(layer, sched, cfg);
    EXPECT_EQ(report.state_budget, 128);
}

TEST(Bucketing, ReorderReducesReloads)
{
    // Sec. 4.2.2: reordering lets adjacent slices share crosspoint
    // configurations. Trained layers have correlated signs per
    // input; model that with inputs whose polarity is uniform
    // across columns but pseudo-shuffled across inputs.
    snn::BinaryLayer layer;
    const int in_dim = 256, out_dim = 16;
    layer.weights.resize(out_dim);
    layer.thresholds.assign(out_dim, 3);
    for (int o = 0; o < out_dim; ++o) {
        auto &row = layer.weights[static_cast<std::size_t>(o)];
        row.resize(in_dim);
        for (int i = 0; i < in_dim; ++i) {
            const bool neg =
                ((static_cast<unsigned>(i) * 2654435761u) >> 16) & 1;
            row[static_cast<std::size_t>(i)] = neg ? -1 : 1;
        }
    }
    BucketingConfig plain;
    plain.reorder = false;
    plain.mesh_width = 16;
    BucketingConfig sorted;
    sorted.reorder = true;
    sorted.mesh_width = 16;
    const long plain_reloads =
        countReloads(layer, scheduleLayer(layer, plain), 16);
    const long sorted_reloads =
        countReloads(layer, scheduleLayer(layer, sorted), 16);
    // Sorting groups equal-polarity inputs into contiguous runs per
    // crosspoint: at most two transitions per (row, column) plus the
    // initial configuration, far below the random baseline.
    EXPECT_LT(sorted_reloads, plain_reloads / 2);
}

TEST(Bucketing, ReloadsCountFirstConfiguration)
{
    // A single slice still needs its one-time configuration.
    auto layer = randomLayer(8, 4, 0.5, 1, 2, 19);
    BucketingConfig cfg;
    auto sched = scheduleLayer(layer, cfg);
    EXPECT_EQ(countReloads(layer, sched, 8), 4 * 8L);
}

TEST(Compile, PreloadsEncodeThresholds)
{
    snn::BinaryLayer layer;
    layer.weights = {{1, 1, 1}, {1, -1, 1}};
    layer.thresholds = {2, 1};
    snn::BinarySnn net; // assemble via fromFloat path is heavier;
    // compile a hand-built network through the public API instead.
    // BinarySnn has no public constructor for layers, so test the
    // layer-level invariants through compileNetwork on a trained
    // net below; here check the slicing piece only.
    ChipConfig chip;
    chip.n = 4;
    auto slices = sliceLayer(3, 2, chip.n);
    EXPECT_EQ(slices.numInBlocks(), 1);
}

TEST(Compile, FullNetworkCompiles)
{
    snn::SnnConfig cfg;
    cfg.input = 36;
    cfg.hidden = 12;
    cfg.output = 4;
    cfg.t_steps = 3;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, 21);
    auto bin = snn::BinarySnn::fromFloat(mlp);

    ChipConfig chip;
    chip.n = 8;
    chip.sc_per_npe = 10;
    auto compiled = compileNetwork(bin, chip);
    ASSERT_EQ(compiled.layers.size(), 2u);

    const auto &l0 = compiled.layers[0];
    EXPECT_EQ(l0.slices.numInBlocks(), 5); // ceil(36/8)
    EXPECT_EQ(l0.slices.numOutBlocks(), 2); // ceil(12/8)
    EXPECT_EQ(l0.preload.size(), 12u);
    const std::uint64_t budget = 1u << 10;
    for (std::size_t o = 0; o < 12; ++o) {
        if (compiled.layers[0].disabled[o])
            continue;
        const int theta = bin.layers()[0].thresholds[o];
        const int eff = theta + l0.bias_pulses[o];
        EXPECT_GE(eff, 1);
        EXPECT_EQ(l0.preload[o],
                  budget - static_cast<std::uint64_t>(eff));
    }
    EXPECT_GT(compiled.totalReloads(), 0);
}

TEST(Compile, MasksPartitionInputs)
{
    snn::SnnConfig cfg;
    cfg.input = 70;
    cfg.hidden = 9;
    cfg.output = 3;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, 23);
    auto bin = snn::BinarySnn::fromFloat(mlp);
    ChipConfig chip;
    chip.n = 4;
    auto compiled = compileNetwork(bin, chip);
    const auto &l0 = compiled.layers[0];
    for (std::size_t o = 0; o < 9; ++o) {
        // Every input position is in exactly one of the two masks.
        for (std::size_t w = 0; w < l0.neg_masks[o].size(); ++w) {
            EXPECT_EQ(l0.neg_masks[o][w] & l0.pos_masks[o][w], 0u);
        }
        std::uint64_t bits = 0;
        for (std::size_t w = 0; w < l0.neg_masks[o].size(); ++w) {
            bits += static_cast<std::uint64_t>(
                std::popcount(l0.neg_masks[o][w]) +
                std::popcount(l0.pos_masks[o][w]));
        }
        EXPECT_EQ(bits, 70u);
    }
}

} // namespace
} // namespace sushi::compiler
