/**
 * @file
 * Tests for the SSNN compiler: slicing, bucketing/reordering,
 * state-range analysis, network compilation, the pass-based driver
 * (cost model, budgets, typed validation) and multi-chip splitting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hh"
#include "compiler/compile.hh"
#include "compiler/driver.hh"
#include "sfq/cell_params.hh"

namespace sushi::compiler {
namespace {

snn::BinaryLayer
randomLayer(int in_dim, int out_dim, double neg_fraction,
            int theta_lo, int theta_hi, std::uint64_t seed)
{
    Rng rng(seed);
    snn::BinaryLayer layer;
    layer.weights.resize(static_cast<std::size_t>(out_dim));
    layer.thresholds.resize(static_cast<std::size_t>(out_dim));
    for (int o = 0; o < out_dim; ++o) {
        auto &row = layer.weights[static_cast<std::size_t>(o)];
        row.resize(static_cast<std::size_t>(in_dim));
        for (int i = 0; i < in_dim; ++i)
            row[static_cast<std::size_t>(i)] =
                rng.chance(neg_fraction) ? -1 : 1;
        layer.thresholds[static_cast<std::size_t>(o)] =
            static_cast<int>(rng.range(theta_lo, theta_hi));
    }
    return layer;
}

TEST(BitSlice, ExactFit)
{
    LayerSlices s = sliceLayer(16, 16, 16);
    EXPECT_EQ(s.numInBlocks(), 1);
    EXPECT_EQ(s.numOutBlocks(), 1);
    EXPECT_EQ(s.inBlock(0).size(), 16);
}

TEST(BitSlice, RaggedTail)
{
    LayerSlices s = sliceLayer(784, 800, 16);
    EXPECT_EQ(s.numInBlocks(), 49);
    EXPECT_EQ(s.numOutBlocks(), 50);
    EXPECT_EQ(s.inBlock(48).size(), 784 - 48 * 16);
    EXPECT_EQ(s.totalBlocks(), 49L * 50L);
}

TEST(BitSlice, BlocksCoverEverything)
{
    LayerSlices s = sliceLayer(100, 30, 7);
    int covered = 0;
    for (int k = 0; k < s.numInBlocks(); ++k)
        covered += s.inBlock(k).size();
    EXPECT_EQ(covered, 100);
    covered = 0;
    for (int k = 0; k < s.numOutBlocks(); ++k)
        covered += s.outBlock(k).size();
    EXPECT_EQ(covered, 30);
}

TEST(Bucketing, OrderIsPermutation)
{
    auto layer = randomLayer(97, 8, 0.4, 1, 5, 3);
    BucketingConfig cfg;
    auto sched = scheduleLayer(layer, cfg);
    std::vector<int> sorted = sched.order;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 97; ++i)
        EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Bucketing, BucketsCoverInputs)
{
    auto layer = randomLayer(130, 4, 0.5, 1, 3, 5);
    BucketingConfig cfg;
    cfg.bucket_size = 32;
    auto sched = scheduleLayer(layer, cfg);
    int covered = 0;
    int prev_end = 0;
    for (const Block &b : sched.buckets) {
        EXPECT_EQ(b.begin, prev_end);
        covered += b.size();
        prev_end = b.end;
    }
    EXPECT_EQ(covered, 130);
}

TEST(Bucketing, DisabledYieldsSingleBucket)
{
    auto layer = randomLayer(64, 4, 0.5, 1, 3, 7);
    BucketingConfig cfg;
    cfg.bucketing = false;
    auto sched = scheduleLayer(layer, cfg);
    ASSERT_EQ(sched.buckets.size(), 1u);
    EXPECT_EQ(sched.buckets[0].size(), 64);
}

TEST(Bucketing, BucketingShrinksStateRange)
{
    // Sec. 5.1: bucketing "controls the range of states of the
    // neuron". A heavily inhibitory layer needs far fewer states
    // with alternating passes.
    auto layer = randomLayer(512, 8, 0.5, 1, 8, 11);
    BucketingConfig cfg;
    cfg.bucket_size = 32;
    auto sched = scheduleLayer(layer, cfg);
    auto report = analyzeStateRange(layer, sched, cfg);
    EXPECT_LT(report.required_states,
              report.required_states_unbucketed / 3);
    EXPECT_GT(report.required_states_unbucketed, 256);
}

TEST(Bucketing, UnbucketedRangeMatchesInhibitoryCount)
{
    snn::BinaryLayer layer;
    layer.weights = {{-1, -1, -1, 1, 1}};
    layer.thresholds = {2};
    BucketingConfig cfg;
    cfg.bucketing = false;
    auto sched = scheduleLayer(layer, cfg);
    auto report = analyzeStateRange(layer, sched, cfg);
    // theta (2) + all three inhibitory synapses.
    EXPECT_EQ(report.required_states_unbucketed, 5);
    EXPECT_EQ(report.required_states, 5);
}

TEST(Bucketing, StateBudgetFromBits)
{
    auto layer = randomLayer(16, 2, 0.5, 1, 2, 13);
    BucketingConfig cfg;
    cfg.state_bits = 7;
    auto sched = scheduleLayer(layer, cfg);
    auto report = analyzeStateRange(layer, sched, cfg);
    EXPECT_EQ(report.state_budget, 128);
}

TEST(Bucketing, ReorderReducesReloads)
{
    // Sec. 4.2.2: reordering lets adjacent slices share crosspoint
    // configurations. Trained layers have correlated signs per
    // input; model that with inputs whose polarity is uniform
    // across columns but pseudo-shuffled across inputs.
    snn::BinaryLayer layer;
    const int in_dim = 256, out_dim = 16;
    layer.weights.resize(out_dim);
    layer.thresholds.assign(out_dim, 3);
    for (int o = 0; o < out_dim; ++o) {
        auto &row = layer.weights[static_cast<std::size_t>(o)];
        row.resize(in_dim);
        for (int i = 0; i < in_dim; ++i) {
            const bool neg =
                ((static_cast<unsigned>(i) * 2654435761u) >> 16) & 1;
            row[static_cast<std::size_t>(i)] = neg ? -1 : 1;
        }
    }
    BucketingConfig plain;
    plain.reorder = false;
    plain.mesh_width = 16;
    BucketingConfig sorted;
    sorted.reorder = true;
    sorted.mesh_width = 16;
    const long plain_reloads =
        countReloads(layer, scheduleLayer(layer, plain), 16);
    const long sorted_reloads =
        countReloads(layer, scheduleLayer(layer, sorted), 16);
    // Sorting groups equal-polarity inputs into contiguous runs per
    // crosspoint: at most two transitions per (row, column) plus the
    // initial configuration, far below the random baseline.
    EXPECT_LT(sorted_reloads, plain_reloads / 2);
}

TEST(Bucketing, ReloadsCountFirstConfiguration)
{
    // A single slice still needs its one-time configuration.
    auto layer = randomLayer(8, 4, 0.5, 1, 2, 19);
    BucketingConfig cfg;
    auto sched = scheduleLayer(layer, cfg);
    EXPECT_EQ(countReloads(layer, sched, 8), 4 * 8L);
}

TEST(Compile, PreloadsEncodeThresholds)
{
    snn::BinaryLayer layer;
    layer.weights = {{1, 1, 1}, {1, -1, 1}};
    layer.thresholds = {2, 1};
    snn::BinarySnn net; // assemble via fromFloat path is heavier;
    // compile a hand-built network through the public API instead.
    // BinarySnn has no public constructor for layers, so test the
    // layer-level invariants through compileNetwork on a trained
    // net below; here check the slicing piece only.
    ChipConfig chip;
    chip.n = 4;
    auto slices = sliceLayer(3, 2, chip.n);
    EXPECT_EQ(slices.numInBlocks(), 1);
}

TEST(Compile, FullNetworkCompiles)
{
    snn::SnnConfig cfg;
    cfg.input = 36;
    cfg.hidden = 12;
    cfg.output = 4;
    cfg.t_steps = 3;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, 21);
    auto bin = snn::BinarySnn::fromFloat(mlp);

    ChipConfig chip;
    chip.n = 8;
    chip.sc_per_npe = 10;
    auto compiled = compileNetwork(bin, chip);
    ASSERT_EQ(compiled.layers.size(), 2u);

    const auto &l0 = compiled.layers[0];
    EXPECT_EQ(l0.slices.numInBlocks(), 5); // ceil(36/8)
    EXPECT_EQ(l0.slices.numOutBlocks(), 2); // ceil(12/8)
    EXPECT_EQ(l0.preload.size(), 12u);
    const std::uint64_t budget = 1u << 10;
    for (std::size_t o = 0; o < 12; ++o) {
        if (compiled.layers[0].disabled[o])
            continue;
        const int theta = bin.layers()[0].thresholds[o];
        const int eff = theta + l0.bias_pulses[o];
        EXPECT_GE(eff, 1);
        EXPECT_EQ(l0.preload[o],
                  budget - static_cast<std::uint64_t>(eff));
    }
    EXPECT_GT(compiled.totalReloads(), 0);
}

TEST(Compile, MasksPartitionInputs)
{
    snn::SnnConfig cfg;
    cfg.input = 70;
    cfg.hidden = 9;
    cfg.output = 3;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, 23);
    auto bin = snn::BinarySnn::fromFloat(mlp);
    ChipConfig chip;
    chip.n = 4;
    auto compiled = compileNetwork(bin, chip);
    const auto &l0 = compiled.layers[0];
    for (std::size_t o = 0; o < 9; ++o) {
        // Every input position is in exactly one of the two masks.
        for (std::size_t w = 0; w < l0.neg_masks[o].size(); ++w) {
            EXPECT_EQ(l0.neg_masks[o][w] & l0.pos_masks[o][w], 0u);
        }
        std::uint64_t bits = 0;
        for (std::size_t w = 0; w < l0.neg_masks[o].size(); ++w) {
            bits += static_cast<std::uint64_t>(
                std::popcount(l0.neg_masks[o][w]) +
                std::popcount(l0.pos_masks[o][w]));
        }
        EXPECT_EQ(bits, 70u);
    }
}

TEST(Validate, RejectsBadGeometry)
{
    snn::BinaryLayer layer;
    layer.weights = {{1, -1}};
    layer.thresholds = {1};
    auto net = snn::BinarySnn::fromLayers({layer}, 1);

    ChipConfig bad_n;
    bad_n.n = 0;
    EXPECT_THROW(
        {
            try {
                compileNetwork(net, bad_n);
            } catch (const CompileError &e) {
                EXPECT_EQ(e.kind(),
                          CompileError::Kind::BadChipConfig);
                throw;
            }
        },
        CompileError);

    ChipConfig bad_sc;
    bad_sc.sc_per_npe = 0;
    EXPECT_THROW(compileNetwork(net, bad_sc), CompileError);
    bad_sc.sc_per_npe = 31;
    EXPECT_THROW(compileNetwork(net, bad_sc), CompileError);

    ChipConfig bad_bucket;
    bad_bucket.bucketing.bucket_size = 0;
    EXPECT_THROW(compileNetwork(net, bad_bucket), CompileError);
}

TEST(Validate, RejectsNegativeBudgetCaps)
{
    snn::BinaryLayer layer;
    layer.weights = {{1, -1}};
    layer.thresholds = {1};
    auto net = snn::BinarySnn::fromLayers({layer}, 1);
    ChipConfig chip;
    chip.n = 2;
    DriverOptions opts = DriverOptions::costAware();
    opts.budget.jj_cap = -1;
    EXPECT_THROW(
        {
            try {
                CompilerDriver(opts).compileSingle(net, chip);
            } catch (const CompileError &e) {
                EXPECT_EQ(e.kind(), CompileError::Kind::BadBudget);
                throw;
            }
        },
        CompileError);
}

TEST(Validate, EmptyNetworkIsTyped)
{
    snn::BinarySnn net; // no layers
    ChipConfig chip;
    chip.n = 2;
    EXPECT_THROW(
        {
            try {
                CompilerDriver().compilePlan(net, chip);
            } catch (const CompileError &e) {
                EXPECT_EQ(e.kind(), CompileError::Kind::EmptyNetwork);
                EXPECT_STREQ(CompileError::kindName(e.kind()),
                             "EmptyNetwork");
                throw;
            }
        },
        CompileError);
}

TEST(Remap, SingleHealthySlot)
{
    // Three of four slots dead: every failed slot lands on the one
    // healthy host, needing three extra serialized passes.
    NpeRemap plan = planNpeRemap(4, {1, 1, 0, 1});
    EXPECT_EQ(plan.failed, 3);
    EXPECT_EQ(plan.extra_passes, 3);
    EXPECT_EQ(plan.host[0], 2);
    EXPECT_EQ(plan.host[1], 2);
    EXPECT_EQ(plan.host[2], 2);
    EXPECT_EQ(plan.host[3], 2);
}

TEST(Remap, AlternatingFailures)
{
    // Odd slots dead: the round-robin deals them across the even
    // hosts, one extra pass covers them all.
    NpeRemap plan = planNpeRemap(8, {0, 1, 0, 1, 0, 1, 0, 1});
    EXPECT_EQ(plan.failed, 4);
    EXPECT_EQ(plan.extra_passes, 1);
    for (int s = 0; s < 8; s += 2)
        EXPECT_EQ(plan.host[static_cast<std::size_t>(s)], s);
    // Failed slots cycle through the healthy hosts in order.
    EXPECT_EQ(plan.host[1], 0);
    EXPECT_EQ(plan.host[3], 2);
    EXPECT_EQ(plan.host[5], 4);
    EXPECT_EQ(plan.host[7], 6);
}

TEST(Remap, SingleSlotMesh)
{
    NpeRemap plan = planNpeRemap(1, {0});
    EXPECT_EQ(plan.failed, 0);
    EXPECT_EQ(plan.extra_passes, 0);
    EXPECT_EQ(plan.host[0], 0);
}

TEST(CostModel, EnergyDerivedFromCellTable)
{
    // The 30-JJ synapse-event path is derived from the cell table,
    // not restated.
    EXPECT_EQ(sfq::synapseEventJjs(), 30);
    CostModel model(4, 10);
    EXPECT_EQ(model.switchEnergyPerSynOpJ(),
              30 * sfq::switchEnergyPerJj());
}

TEST(CostModel, FlagshipFitsOneChip)
{
    // The paper's 784-800-10 model must fill most of — but fit —
    // the default n = 16 budget (the Table 2 story).
    CostModel model(16, 10);
    std::vector<LayerCost> costs = {model.layerCost(784, 800),
                                    model.layerCost(800, 10)};
    const ChipBudget budget = ChipBudget::tableDefaults(16, 10);
    const BudgetReport r = model.rollUp(costs, budget);
    EXPECT_TRUE(r.fits());
    EXPECT_GT(r.jjUtilisation(), 0.90);
    EXPECT_LE(r.jjUtilisation(), 1.0);
    EXPECT_EQ(r.synapses, 784L * 800 + 800L * 10);
}

TEST(Driver, LegacyPresetMatchesCompileNetwork)
{
    snn::SnnConfig cfg;
    cfg.input = 48;
    cfg.hidden = 20;
    cfg.output = 6;
    cfg.t_steps = 2;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, 31);
    auto bin = snn::BinarySnn::fromFloat(mlp);
    ChipConfig chip;
    chip.n = 4;
    chip.sc_per_npe = 6; // tight: exercises the bucketed fallback

    const auto a = compileNetwork(bin, chip);
    const auto b =
        CompilerDriver(DriverOptions::legacy()).compileSingle(bin,
                                                              chip);
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (std::size_t l = 0; l < a.layers.size(); ++l) {
        EXPECT_EQ(a.layers[l].schedule.order,
                  b.layers[l].schedule.order);
        EXPECT_EQ(a.layers[l].schedule.buckets.size(),
                  b.layers[l].schedule.buckets.size());
        EXPECT_EQ(a.layers[l].switch_reloads,
                  b.layers[l].switch_reloads);
        EXPECT_EQ(a.layers[l].preload, b.layers[l].preload);
        EXPECT_EQ(a.layers[l].bias_pulses, b.layers[l].bias_pulses);
        EXPECT_EQ(a.layers[l].disabled, b.layers[l].disabled);
        EXPECT_EQ(a.layers[l].neg_masks, b.layers[l].neg_masks);
        EXPECT_EQ(a.layers[l].pos_masks, b.layers[l].pos_masks);
    }
    EXPECT_EQ(a.totalReloads(), b.totalReloads());
    EXPECT_EQ(a.disabled_count, a.disabledNeurons());
    EXPECT_EQ(a.plan_reloads, a.totalReloads());
    EXPECT_GT(a.budget.totalJjs(), 0);
}

TEST(Driver, LegacyKeepsAdaptiveBucketingRule)
{
    // The legacy selection must reproduce the Sec. 5.1 rule: the
    // exact unbucketed traversal wins whenever its range fits.
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        auto layer = randomLayer(128, 8, 0.5, 1, 6, seed);
        auto net = snn::BinarySnn::fromLayers({layer}, 1);
        ChipConfig chip;
        chip.n = 8;
        chip.sc_per_npe = 6;
        auto compiled = compileNetwork(net, chip);

        BucketingConfig single = chip.bucketing;
        single.state_bits = chip.sc_per_npe;
        single.mesh_width = chip.n;
        single.bucketing = false;
        auto unb = scheduleLayer(layer, single);
        auto unb_range = analyzeStateRange(layer, unb, single);
        if (unb_range.fitsUnbucketed())
            EXPECT_EQ(compiled.layers[0].schedule.buckets.size(), 1u)
                << "seed " << seed;
        else
            EXPECT_GT(compiled.layers[0].schedule.buckets.size(), 1u)
                << "seed " << seed;
    }
}

TEST(Driver, ScoredSelectionNeverLosesFit)
{
    // Scoring may pick a different fitting schedule (cheaper
    // reloads) but must never choose an unfitting one when a
    // fitting candidate exists.
    for (std::uint64_t seed = 11; seed <= 16; ++seed) {
        auto layer = randomLayer(96, 8, 0.5, 1, 5, seed);
        auto net = snn::BinarySnn::fromLayers({layer}, 1);
        ChipConfig chip;
        chip.n = 8;
        chip.sc_per_npe = 6;
        DriverOptions opts;
        opts.score_schedules = true;
        auto scored =
            CompilerDriver(opts).compileSingle(net, chip);
        auto legacy = compileNetwork(net, chip);
        if (legacy.layers[0].range.fits()) {
            EXPECT_TRUE(scored.layers[0].range.fits())
                << "seed " << seed;
        }
        EXPECT_LE(scored.layers[0].switch_reloads,
                  legacy.layers[0].switch_reloads)
            << "seed " << seed;
    }
}

TEST(MultiChipSplit, ExactCapBoundary)
{
    // A budget of exactly fabric + model cost fits one chip; one JJ
    // less forces a split.
    CostModel model(2, 10);
    std::vector<LayerCost> costs = {model.layerCost(8, 8),
                                    model.layerCost(8, 4)};
    std::vector<int> wires = {8, 4};
    ChipBudget budget;
    budget.sc_per_npe = 10;
    budget.area_cap_mm2 = 1e9; // isolate the JJ cap
    const long total = costs[0].totalJjs() + costs[1].totalJjs();

    budget.jj_cap = model.fabricJjs() + total;
    StageSplit fit = splitLayersUnderBudget(costs, wires, model,
                                            budget, 8);
    EXPECT_EQ(fit.stages.size(), 1u);
    EXPECT_TRUE(fit.cuts.empty());

    budget.jj_cap = model.fabricJjs() + total - 1;
    StageSplit split = splitLayersUnderBudget(costs, wires, model,
                                              budget, 8);
    ASSERT_EQ(split.stages.size(), 2u);
    EXPECT_EQ(split.stages[0].begin, 0);
    EXPECT_EQ(split.stages[0].end, 1);
    EXPECT_EQ(split.stages[1].begin, 1);
    EXPECT_EQ(split.stages[1].end, 2);
    ASSERT_EQ(split.cuts.size(), 1u);
    EXPECT_EQ(split.cuts[0].boundary_layer, 0);
    EXPECT_EQ(split.cuts[0].wires, 8);
}

TEST(MultiChipSplit, ContractsWidestBoundariesFirst)
{
    // Three layers; the budget allows merging exactly one boundary.
    // The heavier-traffic boundary (wider producer) must be the one
    // contracted, leaving the cheap cut.
    CostModel model(2, 10);
    std::vector<LayerCost> costs = {model.layerCost(8, 16),
                                    model.layerCost(16, 8),
                                    model.layerCost(8, 2)};
    std::vector<int> wires = {16, 8, 2};
    ChipBudget budget;
    budget.sc_per_npe = 10;
    budget.area_cap_mm2 = 1e9;
    // Fits layers 0+1 together (the wide boundary) but not 1+2+0.
    budget.jj_cap = model.fabricJjs() + costs[0].totalJjs() +
                    costs[1].totalJjs();
    StageSplit split = splitLayersUnderBudget(costs, wires, model,
                                              budget, 8);
    ASSERT_EQ(split.stages.size(), 2u);
    EXPECT_EQ(split.stages[0].end, 2); // layers 0,1 share a chip
    ASSERT_EQ(split.cuts.size(), 1u);
    EXPECT_EQ(split.cuts[0].boundary_layer, 1);
    EXPECT_EQ(split.cuts[0].wires, 8);
}

TEST(MultiChipSplit, SingleLayerOverflowIsTyped)
{
    CostModel model(2, 10);
    std::vector<LayerCost> costs = {model.layerCost(64, 64)};
    std::vector<int> wires = {64};
    ChipBudget budget;
    budget.sc_per_npe = 10;
    budget.area_cap_mm2 = 1e9;
    budget.jj_cap = model.fabricJjs() + 1; // no layer can fit
    EXPECT_THROW(
        {
            try {
                splitLayersUnderBudget(costs, wires, model, budget,
                                       8);
            } catch (const CompileError &e) {
                EXPECT_EQ(e.kind(),
                          CompileError::Kind::BudgetOverflow);
                throw;
            }
        },
        CompileError);
}

TEST(MultiChipSplit, MaxChipsIsTyped)
{
    CostModel model(2, 10);
    std::vector<LayerCost> costs = {model.layerCost(8, 8),
                                    model.layerCost(8, 8),
                                    model.layerCost(8, 8)};
    std::vector<int> wires = {8, 8, 8};
    ChipBudget budget;
    budget.sc_per_npe = 10;
    budget.area_cap_mm2 = 1e9;
    budget.jj_cap = model.fabricJjs() + costs[0].totalJjs();
    EXPECT_THROW(
        splitLayersUnderBudget(costs, wires, model, budget, 2),
        CompileError);
}

} // namespace
} // namespace sushi::compiler
