/**
 * @file
 * Tests for the SUSHI chip models: behavioural execution agrees with
 * the software BinarySnn, batched pulse delivery is bit-exact with
 * per-pulse delivery, the sampler decodes labels correctly, and the
 * gate-level chip matches the behavioural chip (the Sec. 6.2
 * chip-vs-simulation validation).
 */

#include <gtest/gtest.h>

#include "chip/gate_sim.hh"
#include "chip/sampler.hh"
#include "chip/sushi_chip.hh"
#include "common/rng.hh"
#include "snn/encoder.hh"

namespace sushi::chip {
namespace {

/** Tiny trained-ish binary network via the float path. */
snn::BinarySnn
tinyNet(std::size_t input, std::size_t hidden, std::size_t output,
        int t_steps, std::uint64_t seed)
{
    snn::SnnConfig cfg;
    cfg.input = input;
    cfg.hidden = hidden;
    cfg.output = output;
    cfg.t_steps = t_steps;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, seed);
    return snn::BinarySnn::fromFloat(mlp);
}

std::vector<std::vector<std::uint8_t>>
randomFrames(std::size_t dim, int t_steps, double density,
             std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<std::uint8_t>> frames;
    for (int t = 0; t < t_steps; ++t) {
        std::vector<std::uint8_t> f(dim);
        for (auto &b : f)
            b = rng.chance(density) ? 1 : 0;
        frames.push_back(std::move(f));
    }
    return frames;
}

TEST(NpeBatch, AddPulsesMatchesRepeatedIn)
{
    Rng rng(31);
    for (int trial = 0; trial < 50; ++trial) {
        const int k = 3 + static_cast<int>(rng.below(6));
        npe::Npe a(k), b(k);
        const auto preload = rng.below(1u << k);
        a.rst();
        b.rst();
        a.write(preload);
        b.write(preload);
        const bool up = rng.chance(0.5);
        a.setPolarity(up ? npe::Polarity::Excitatory
                         : npe::Polarity::Inhibitory);
        b.setPolarity(up ? npe::Polarity::Excitatory
                         : npe::Polarity::Inhibitory);
        const auto count = rng.below(200);
        std::uint64_t slow_spikes = 0;
        for (std::uint64_t i = 0; i < count; ++i)
            slow_spikes += a.in() ? 1 : 0;
        const std::uint64_t fast_spikes = b.addPulses(count);
        EXPECT_EQ(fast_spikes, slow_spikes) << "trial " << trial;
        EXPECT_EQ(a.value(), b.value()) << "trial " << trial;
    }
}

TEST(BehaviouralChip, MatchesBinarySnn)
{
    // With a 10-bit state budget (huge headroom) the chip must agree
    // with the software model exactly.
    auto net = tinyNet(24, 10, 4, 4, 41);
    compiler::ChipConfig chip_cfg;
    chip_cfg.n = 8;
    chip_cfg.sc_per_npe = 10;
    auto compiled = compiler::compileNetwork(net, chip_cfg);
    SushiChip chip(chip_cfg);

    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        auto frames = randomFrames(24, 4, 0.4, 100 + seed);
        const auto sw = net.forwardCounts(frames);
        const auto hw = chip.inferCounts(compiled, frames);
        ASSERT_EQ(sw.size(), hw.size());
        for (std::size_t o = 0; o < sw.size(); ++o)
            EXPECT_EQ(hw[o], sw[o]) << "seed " << seed << " o " << o;
    }
    EXPECT_EQ(chip.stats().underflow_spikes, 0u);
}

TEST(BehaviouralChip, WholeLayerBucketEqualsUnbucketed)
{
    // A bucket spanning the whole layer is exactly the unbucketed
    // inhibitory-first traversal.
    auto net = tinyNet(40, 12, 4, 3, 43);
    auto frames = randomFrames(40, 3, 0.5, 7);

    compiler::ChipConfig with;
    with.n = 8;
    with.sc_per_npe = 12;
    with.bucketing.bucketing = true;
    with.bucketing.bucket_size = 4096;

    compiler::ChipConfig without = with;
    without.bucketing.bucketing = false;

    SushiChip chip_a(with), chip_b(without);
    const auto a =
        chip_a.inferCounts(compiler::compileNetwork(net, with),
                           frames);
    const auto b =
        chip_b.inferCounts(compiler::compileNetwork(net, without),
                           frames);
    EXPECT_EQ(a, b);
}

/** A layer with alternating signs and a deep inhibitory total. */
snn::BinarySnn
alternatingNet(int in_dim, int out_dim, int theta, int t_steps)
{
    snn::BinaryLayer layer;
    layer.weights.resize(static_cast<std::size_t>(out_dim));
    layer.thresholds.assign(static_cast<std::size_t>(out_dim),
                            theta);
    for (int o = 0; o < out_dim; ++o) {
        auto &row = layer.weights[static_cast<std::size_t>(o)];
        row.resize(static_cast<std::size_t>(in_dim));
        for (int i = 0; i < in_dim; ++i)
            row[static_cast<std::size_t>(i)] = i % 2 ? 1 : -1;
    }
    return snn::BinarySnn::fromLayers({layer}, t_steps);
}

TEST(BehaviouralChip, SmallBudgetUnderflowsWithoutBucketing)
{
    // Sec. 5.1's failure mode: 60 inhibitory synapses against a
    // 64-state budget with threshold 30 leaves only 34 states of
    // headroom — the inhibitory-first traversal wraps below zero and
    // emits spurious borrow spikes. Alternating-polarity buckets
    // keep the excursion within +-4.
    auto net = alternatingNet(120, 2, 30, 2);

    compiler::ChipConfig tight;
    tight.n = 8;
    tight.sc_per_npe = 6; // 64 states only
    tight.bucketing.bucketing = false;
    tight.bucketing.reorder = false;

    compiler::ChipConfig bucketed = tight;
    bucketed.bucketing.bucketing = true;
    bucketed.bucketing.bucket_size = 8;

    // All inputs active: the worst case of the range analysis.
    std::vector<std::vector<std::uint8_t>> frames(
        2, std::vector<std::uint8_t>(120, 1));

    SushiChip chip_plain(tight), chip_bucketed(bucketed);
    chip_plain.inferCounts(compiler::compileNetwork(net, tight),
                           frames);
    chip_bucketed.inferCounts(
        compiler::compileNetwork(net, bucketed), frames);
    EXPECT_GT(chip_plain.stats().underflow_spikes, 0u);
    EXPECT_EQ(chip_bucketed.stats().underflow_spikes, 0u);
}

TEST(BehaviouralChip, RangeAnalysisPredictsUnderflow)
{
    // The compile-time range report must agree with what actually
    // happens on the chip for the all-active worst case.
    auto net = alternatingNet(120, 2, 30, 1);
    compiler::ChipConfig tight;
    tight.n = 8;
    tight.sc_per_npe = 6;
    tight.bucketing.bucketing = false;
    tight.bucketing.reorder = false;
    auto compiled = compiler::compileNetwork(net, tight);
    EXPECT_FALSE(compiled.layers[0].range.fitsUnbucketed());

    compiler::ChipConfig bucketed = tight;
    bucketed.bucketing.bucketing = true;
    bucketed.bucketing.bucket_size = 8;
    auto compiled_b = compiler::compileNetwork(net, bucketed);
    EXPECT_TRUE(compiled_b.layers[0].range.fits());
}

TEST(BehaviouralChip, StatsAccumulate)
{
    auto net = tinyNet(16, 8, 4, 3, 53);
    compiler::ChipConfig cfg;
    cfg.n = 4;
    auto compiled = compiler::compileNetwork(net, cfg);
    SushiChip chip(cfg);
    auto frames = randomFrames(16, 3, 0.5, 3);
    chip.inferCounts(compiled, frames);
    EXPECT_EQ(chip.stats().frames, 1u);
    EXPECT_EQ(chip.stats().time_steps, 3u);
    EXPECT_GT(chip.stats().synaptic_ops, 0u);
    EXPECT_GT(chip.stats().est_time_ps, 0.0);
    EXPECT_GT(chip.stats().dynamic_energy_j, 0.0);
    chip.resetStats();
    EXPECT_EQ(chip.stats().frames, 0u);
}

TEST(BehaviouralChip, ReusableAcrossBatches)
{
    // The engine pools chips across batches: after any sequence of
    // inferences (and a resetStats), a reused chip must be
    // indistinguishable from a fresh one — both in results and in
    // the stats it reports for the next batch.
    auto net = tinyNet(20, 8, 4, 3, 57);
    compiler::ChipConfig cfg;
    cfg.n = 8;
    cfg.sc_per_npe = 10;
    auto compiled = compiler::compileNetwork(net, cfg);

    SushiChip reused(cfg);
    for (std::uint64_t seed = 0; seed < 5; ++seed)
        reused.inferCounts(compiled, randomFrames(20, 3, 0.4, seed));
    reused.resetStats();

    auto batch_b = randomFrames(20, 3, 0.5, 99);
    SushiChip fresh(cfg);
    EXPECT_EQ(reused.inferCounts(compiled, batch_b),
              fresh.inferCounts(compiled, batch_b));
    EXPECT_EQ(reused.stats().frames, fresh.stats().frames);
    EXPECT_EQ(reused.stats().input_pulses,
              fresh.stats().input_pulses);
    EXPECT_EQ(reused.stats().synaptic_ops,
              fresh.stats().synaptic_ops);
    EXPECT_EQ(reused.stats().est_time_ps, fresh.stats().est_time_ps);
    EXPECT_EQ(reused.stats().dynamic_energy_j,
              fresh.stats().dynamic_energy_j);
}

TEST(BehaviouralChip, FailedNpeGaugeTracksRemapState)
{
    // failed_npes is a gauge of the *current* degraded state: it must
    // appear as soon as a slot is marked failed, survive resetStats()
    // (the slot is still failed), and clear with clearFailedNpes().
    auto net = tinyNet(16, 8, 4, 3, 59);
    compiler::ChipConfig cfg;
    cfg.n = 4;
    cfg.sc_per_npe = 10;
    auto compiled = compiler::compileNetwork(net, cfg);

    SushiChip chip(cfg);
    chip.markNpeFailed(2);
    EXPECT_EQ(chip.stats().failed_npes, 1u);
    chip.resetStats();
    EXPECT_EQ(chip.stats().failed_npes, 1u); // still degraded
    chip.inferCounts(compiled, randomFrames(16, 3, 0.5, 5));
    EXPECT_GT(chip.stats().remapped_neurons, 0u);

    chip.clearFailedNpes();
    EXPECT_EQ(chip.stats().failed_npes, 0u); // healed immediately
    chip.resetStats();
    chip.inferCounts(compiled, randomFrames(16, 3, 0.5, 5));
    EXPECT_EQ(chip.stats().remapped_neurons, 0u);
    EXPECT_EQ(chip.stats().failed_npes, 0u);

    // Full reset() = heal + clear stats in one call.
    chip.markNpeFailed(1);
    chip.reset();
    EXPECT_EQ(chip.stats().failed_npes, 0u);
    EXPECT_EQ(chip.stats().frames, 0u);
}

TEST(Sampler, SpikesPerStepWindows)
{
    std::vector<sfq::PulseTrace> traces = {
        {100, 250, 900}, // label 0
        {150},           // label 1
    };
    std::vector<Tick> bounds = {0, 500, 1000};
    auto spikes = spikesPerStep(traces, bounds);
    EXPECT_EQ(spikes[0][0], 2);
    EXPECT_EQ(spikes[0][1], 1);
    EXPECT_EQ(spikes[1][0], 1);
    EXPECT_EQ(spikes[1][1], 0);
}

TEST(Sampler, DecodeLabelsPicksMostActive)
{
    // Fig. 16(d): label1 pulses 4 of 5 steps -> inference result 1.
    std::vector<sfq::PulseTrace> traces(3);
    traces[1] = {psToTicks(150.0), psToTicks(250.0),
                 psToTicks(350.0), psToTicks(450.0)};
    traces[2] = {psToTicks(460.0)};
    std::vector<sfq::LevelWave> waves;
    for (const auto &t : traces)
        waves.push_back(sfq::pulsesToLevels(t));
    std::vector<Tick> bounds;
    for (int s = 0; s <= 5; ++s)
        bounds.push_back(psToTicks(100.0 * (s + 1)));
    auto readout = decodeLabels(waves, bounds);
    EXPECT_EQ(readout.winner, 1);
    EXPECT_EQ(readout.per_label[0], "0-0-0-0-0");
    EXPECT_EQ(readout.per_label[1], "1-1-1-1-0");
    EXPECT_EQ(readout.per_label[2], "0-0-0-1-0");
}

/** Gate-level vs behavioural chip on the fabricated-scale config. */
TEST(GateCosim, SingleSynapseChip)
{
    // The paper's fabricated chip: 2 NPEs, no weight structures
    // (1x1 mesh). One input relay NPE feeding one output NPE.
    auto net = tinyNet(1, 1, 1, 5, 61);

    compiler::ChipConfig cfg;
    cfg.n = 1;
    cfg.sc_per_npe = 4;
    auto compiled = compiler::compileNetwork(net, cfg);
    // Keep thresholds gate-friendly (>= 1).
    if (compiled.layers[0].bias_pulses[0] > 0 ||
        compiled.layers[0].disabled[0]) {
        GTEST_SKIP() << "random threshold unsuited to gate test";
    }

    auto frames = randomFrames(1, 5, 0.8, 77);

    SushiChip behavioural(cfg);
    std::vector<std::vector<int>> behav_steps;
    {
        PulseVector act;
        for (const auto &f : frames) {
            act.assign(f.begin(), f.end());
            auto out = behavioural.stepLayer(
                compiled.layers[0], net.layers()[0], act);
            behav_steps.push_back(
                std::vector<int>(out.begin(), out.end()));
        }
    }

    sfq::Simulator sim;
    sim.setViolationPolicy(sfq::ViolationPolicy::Ignore);
    sfq::Netlist netlist(sim);
    GateChip gate(netlist, cfg);
    compiler::CompiledNetwork first_layer_only;
    first_layer_only.chip = compiled.chip;
    first_layer_only.net = compiled.net;
    first_layer_only.layers = {compiled.layers[0]};
    auto gate_steps = gate.run(first_layer_only, frames);

    ASSERT_EQ(gate_steps.size(), behav_steps.size());
    for (std::size_t s = 0; s < gate_steps.size(); ++s)
        EXPECT_EQ(gate_steps[s], behav_steps[s]) << "step " << s;
}

TEST(GateCosim, TwoByTwoMesh)
{
    auto net = tinyNet(2, 2, 2, 4, 67);
    compiler::ChipConfig cfg;
    cfg.n = 2;
    cfg.sc_per_npe = 5;
    // Only the first layer runs at gate level; restrict the net by
    // compiling and checking layer 0 dimensions fit.
    auto compiled = compiler::compileNetwork(net, cfg);
    bool gate_friendly = true;
    for (std::size_t o = 0; o < 2; ++o) {
        gate_friendly &= compiled.layers[0].bias_pulses[o] == 0;
        gate_friendly &= compiled.layers[0].disabled[o] == 0;
    }
    if (!gate_friendly)
        GTEST_SKIP() << "random thresholds unsuited to gate test";

    auto frames = randomFrames(2, 4, 0.7, 19);

    SushiChip behavioural(cfg);
    std::vector<std::vector<int>> behav_steps;
    for (const auto &f : frames) {
        PulseVector act(f.begin(), f.end());
        auto out = behavioural.stepLayer(compiled.layers[0],
                                         net.layers()[0], act);
        behav_steps.push_back(
            std::vector<int>(out.begin(), out.end()));
    }

    sfq::Simulator sim;
    sim.setViolationPolicy(sfq::ViolationPolicy::Ignore);
    sfq::Netlist netlist(sim);
    // The gate chip runs a single compiled layer; feed it a network
    // whose only layer is layer 0 by reusing the compiled plan.
    compiler::CompiledNetwork first_layer_only;
    first_layer_only.chip = compiled.chip;
    first_layer_only.net = compiled.net;
    first_layer_only.layers = {compiled.layers[0]};
    // gate.run asserts single layer; BinarySnn still has two layers,
    // but only layers()[0] is read.
    GateChip gate(netlist, cfg);
    auto gate_steps = gate.run(first_layer_only, frames);

    ASSERT_EQ(gate_steps.size(), behav_steps.size());
    for (std::size_t s = 0; s < gate_steps.size(); ++s)
        EXPECT_EQ(gate_steps[s], behav_steps[s]) << "step " << s;
}

} // namespace
} // namespace sushi::chip
