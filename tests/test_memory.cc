/**
 * @file
 * Tests for the shift-register memory (Sec. 3B) and the
 * synchronous-timing baseline model (Sec. 3A).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "fabric/resource_model.hh"
#include "fabric/sync_baseline.hh"
#include "sfq/constraints.hh"
#include "sfq/shift_register.hh"
#include "sfq/simulator.hh"

namespace sushi {
namespace {

TEST(ShiftRegister, ShiftsInOrder)
{
    sfq::ShiftRegister sr(4);
    // Push 1,0,1,1 then drain.
    EXPECT_FALSE(sr.clock(true));
    EXPECT_FALSE(sr.clock(false));
    EXPECT_FALSE(sr.clock(true));
    EXPECT_FALSE(sr.clock(true));
    EXPECT_TRUE(sr.clock(false));
    EXPECT_FALSE(sr.clock(false));
    EXPECT_TRUE(sr.clock(false));
    EXPECT_TRUE(sr.clock(false));
}

TEST(ShiftRegister, ContentsHeadFirst)
{
    sfq::ShiftRegister sr(3);
    sr.clock(true);
    sr.clock(false);
    // Contents: [false(head, initial), true, false].
    auto c = sr.contents();
    ASSERT_EQ(c.size(), 3u);
    EXPECT_FALSE(c[0]);
    EXPECT_TRUE(c[1]);
    EXPECT_FALSE(c[2]);
}

TEST(ShiftRegister, AccessLatencyGrowsWithDepth)
{
    sfq::ShiftRegister sr(64);
    EXPECT_EQ(sr.accessLatency(0), 1);
    EXPECT_EQ(sr.accessLatency(63), 64);
}

TEST(ShiftRegister, UtilisationModel)
{
    // Fully sequential access barely hurts; random access on a deep
    // register craters utilisation — the Sec. 3B memory wall.
    const double seq =
        sfq::shiftRegisterUtilisation(256, 1.0, 4.0);
    const double rnd =
        sfq::shiftRegisterUtilisation(256, 0.0, 4.0);
    EXPECT_GT(seq, 0.75);
    EXPECT_LT(rnd, 0.05);
    // SuperNPU's reported 16 % utilisation is reachable with a
    // mostly-random access mix.
    const double supernpu =
        sfq::shiftRegisterUtilisation(256, 0.85, 4.0);
    EXPECT_NEAR(supernpu, 0.16, 0.05);
}

TEST(ShiftRegisterGate, MatchesBehaviouralModel)
{
    Rng rng(99);
    sfq::Simulator sim;
    sim.setViolationPolicy(sfq::ViolationPolicy::Ignore);
    sfq::Netlist net(sim);
    const int depth = 5;
    sfq::ShiftRegisterGate gate(net, "sr", depth);
    sfq::ShiftRegister ref(depth);

    const Tick period = 4 * sfq::safePulseSpacing();
    Tick t = period;
    std::size_t expected_out = 0;
    for (int cycle = 0; cycle < 24; ++cycle) {
        // The clock shifts first; the new bit then lands in the
        // freed tail stage — matching the behavioural clock(din).
        const bool din = rng.chance(0.5);
        gate.injectClock(t);
        if (din)
            gate.injectData(t + period / 2);
        expected_out += ref.clock(din) ? 1 : 0;
        t += period;
        sim.run();
        EXPECT_EQ(gate.contents(), ref.contents())
            << "cycle " << cycle;
    }
    EXPECT_EQ(gate.outSink().count(), expected_out);
}

TEST(ShiftRegisterGate, EmptyRegisterOutputsNothing)
{
    sfq::Simulator sim;
    sfq::Netlist net(sim);
    sfq::ShiftRegisterGate gate(net, "sr", 3);
    const Tick period = 4 * sfq::safePulseSpacing();
    for (int c = 1; c <= 6; ++c)
        gate.injectClock(c * period);
    sim.run();
    EXPECT_EQ(gate.outSink().count(), 0u);
}

TEST(SyncBaseline, ClockNetworkDominates)
{
    // Sec. 3A: synchronous designs spend ~80 % of resources on
    // wiring because every clocked cell needs its own clock line.
    auto sync = fabric::synchronousMesh(4);
    EXPECT_GT(sync.wiringFraction(), 0.75);
    EXPECT_LT(sync.wiringFraction(), 0.90);
    // The clock network alone exceeds the data wiring.
    EXPECT_GT(sync.clock_tree_jjs + sync.clock_line_jjs +
                  sync.balancing_jjs,
              0L);
}

TEST(SyncBaseline, AsyncSavesJjs)
{
    for (int n : {2, 4, 8}) {
        const auto sync = fabric::synchronousMesh(n);
        const auto async_design = fabric::designPoint(n);
        EXPECT_GT(sync.totalJjs(), async_design.total_jjs)
            << "n=" << n;
        EXPECT_GT(sync.wiringFraction(),
                  async_design.wiring_fraction)
            << "n=" << n;
    }
}

TEST(SyncBaseline, CounterpartArithmetic)
{
    auto d = fabric::synchronousCounterpart(1000, 100, 500);
    EXPECT_EQ(d.logic_jjs, 1000);
    EXPECT_EQ(d.data_wiring_jjs, 500);
    EXPECT_EQ(d.clock_tree_jjs, 99 * 3);
    EXPECT_EQ(d.clock_line_jjs, 100 * 6 * 2);
    EXPECT_GT(d.balancing_jjs, 0);
    EXPECT_EQ(d.totalJjs(), d.logic_jjs + d.wiringJjs());
}

} // namespace
} // namespace sushi
