/**
 * @file
 * Behavioural/gate co-simulation equivalence harness.
 *
 * The behavioural models (npe::Npe, npe::NeuronFsm,
 * chip::SushiChip::stepLayer) are the fast path used for whole-network
 * inference and by the batched engine; the gate-level models
 * (npe::NpeGate, chip::GateChip) are the circuit-true SFQ netlists.
 * This suite drives both sides with identical pulse programs —
 * well over 100 randomized cases — and requires spike-for-spike
 * agreement under ViolationPolicy::Fatal, so any Table-1 timing
 * violation aborts the test.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "chip/gate_sim.hh"
#include "sfq/parallel_simulator.hh"
#include "chip/sushi_chip.hh"
#include "common/rng.hh"
#include "compiler/pulse_encoder.hh"
#include "npe/neuron_fsm.hh"
#include "npe/npe.hh"
#include "sfq/constraints.hh"
#include "sfq/simulator.hh"

namespace sushi {
namespace {

/**
 * 100 randomized multi-burst counter programs: random chain length,
 * random preload, polarity flips between bursts, spike counts checked
 * after every burst (not just at the end). With @p threads > 1 every
 * drain runs on the partitioned parallel simulator with the gate
 * scattered across lanes (min lookahead 1 tick) — same oracle, same
 * spike-for-spike requirement.
 */
void
multiBurstPrograms(int threads)
{
    Rng rng(1234);
    for (int trial = 0; trial < 100; ++trial) {
        const int k = 3 + static_cast<int>(rng.below(5)); // K in 3..7
        sfq::Simulator sim;
        sim.setViolationPolicy(sfq::ViolationPolicy::Fatal);
        sfq::Netlist netlist(sim);
        npe::NpeGate gate(netlist, "npe", k);
        npe::Npe ref(k);

        std::unique_ptr<sfq::ParallelSimulator> psim;
        if (threads > 1) {
            sfq::ParallelSimulator::Options opts;
            opts.threads = threads;
            opts.min_lookahead = 1;
            psim = std::make_unique<sfq::ParallelSimulator>(sim,
                                                            opts);
        }
        auto drain = [&] {
            if (psim != nullptr)
                psim->run();
            else
                sim.run();
        };

        const Tick gap = sfq::safePulseSpacing();
        Tick t = gap;

        gate.injectRst(t);
        ref.rst();
        t += gap;
        const std::uint64_t preload = rng.below(ref.numStates());
        for (int b = 0; b < k; ++b) {
            if (preload & (std::uint64_t{1} << b)) {
                gate.injectWrite(b, t);
                t += gap;
            }
        }
        ref.write(preload);

        std::uint64_t ref_spikes = 0;
        const int bursts = 2 + static_cast<int>(rng.below(3));
        for (int burst = 0; burst < bursts; ++burst) {
            // Each burst re-arms the polarity — this is exactly how
            // the chip switches between excitatory and inhibitory
            // weight groups mid-accumulation (Sec. 4.2.1).
            if (rng.chance(0.5)) {
                gate.injectSet1(t);
                ref.setPolarity(npe::Polarity::Excitatory);
            } else {
                gate.injectSet0(t);
                ref.setPolarity(npe::Polarity::Inhibitory);
            }
            t += gap;
            const int pulses = static_cast<int>(rng.below(26));
            for (int i = 0; i < pulses; ++i) {
                gate.injectIn(t);
                ref_spikes += ref.in() ? 1 : 0;
                t += gap;
            }
            // Spike-for-spike agreement at every burst boundary.
            // Draining advances simulator time past the injection
            // cursor (ripple/propagation delays), so resume injecting
            // after now().
            drain();
            t = std::max(t, sim.now() + gap);
            ASSERT_EQ(gate.outSink().count(), ref_spikes)
                << "trial " << trial << " burst " << burst;
        }
        EXPECT_EQ(gate.value(), ref.value()) << "trial " << trial;
        EXPECT_EQ(gate.states(), ref.states()) << "trial " << trial;
        EXPECT_EQ(sim.violations(), 0u) << "trial " << trial;
    }
}

TEST(CosimNpe, RandomMultiBurstPrograms) { multiBurstPrograms(0); }

TEST(CosimNpe, RandomMultiBurstProgramsPartitioned)
{
    multiBurstPrograms(4);
}

/**
 * The rst channel reads the counter out destructively on both sides:
 * one read pulse per set bit, then a cleared chain.
 */
TEST(CosimNpe, RandomReadoutPrograms)
{
    Rng rng(77);
    for (int trial = 0; trial < 20; ++trial) {
        const int k = 4;
        sfq::Simulator sim;
        sim.setViolationPolicy(sfq::ViolationPolicy::Fatal);
        sfq::Netlist netlist(sim);
        npe::NpeGate gate(netlist, "npe", k);
        npe::Npe ref(k);

        const Tick gap = sfq::safePulseSpacing();
        Tick t = gap;
        gate.injectSet1(t);
        ref.setPolarity(npe::Polarity::Excitatory);
        t += gap;
        const int pulses = static_cast<int>(rng.below(15));
        for (int i = 0; i < pulses; ++i) {
            gate.injectIn(t);
            ref.in();
            t += gap;
        }
        const std::uint64_t before = ref.value();
        // Let the last input's carry finish rippling through the
        // chain before the destructive read.
        t += 2 * gap;
        gate.injectRst(t);
        const std::uint64_t ref_read = ref.rst();
        sim.run();

        EXPECT_EQ(ref_read, before) << "trial " << trial;
        std::uint64_t gate_read = 0;
        for (int b = 0; b < k; ++b)
            gate_read |= gate.readSink(b).count() > 0
                             ? std::uint64_t{1} << b
                             : 0;
        EXPECT_EQ(gate_read, before) << "trial " << trial;
        EXPECT_EQ(gate.value(), 0u) << "trial " << trial;
        EXPECT_EQ(sim.violations(), 0u);
    }
}

/**
 * 20 randomized neuron trajectories: the Fig. 6/7 FSM's linearised
 * state is tracked on a gate-level NPE by translating each state
 * transition into the corresponding delta of counter pulses
 * (Sec. 4.1.2 — "state index maps to an NPE counter value").
 */
TEST(CosimNeuronFsm, LinearStateTrackedOnGateNpe)
{
    Rng rng(4321);
    for (int trial = 0; trial < 20; ++trial) {
        const int threshold = 2 + static_cast<int>(rng.below(3));
        const int rising = 1 + static_cast<int>(rng.below(3));
        const int falling = 1 + static_cast<int>(rng.below(3));
        npe::NeuronFsm fsm(threshold, rising, falling);

        // A chain wide enough that the trajectory never wraps.
        int k = 1;
        while ((1 << k) < fsm.numStates())
            ++k;
        sfq::Simulator sim;
        sim.setViolationPolicy(sfq::ViolationPolicy::Fatal);
        sfq::Netlist netlist(sim);
        npe::NpeGate gate(netlist, "neuron", k);

        const Tick gap = sfq::safePulseSpacing();
        Tick t = gap;
        gate.injectRst(t); // start at b0 = counter 0
        t += gap;

        int armed = 0; // 0 = none, +1 = up, -1 = down
        int expected = 0;
        for (int op = 0; op < 40; ++op) {
            const auto s = rng.chance(0.5) ? npe::Stimulus::Spike
                                           : npe::Stimulus::Time;
            const int before = fsm.linearState();
            fsm.stimulate(s);
            const int delta = fsm.linearState() - before;
            if (delta == 0)
                continue; // saturation/refractory: no pulses
            const int dir = delta > 0 ? 1 : -1;
            if (dir != armed) {
                // Let in-flight ripples drain and the re-arm pulse
                // reach every SC through its splitter tree before the
                // next input (the distribution skew would otherwise
                // mix polarities mid-ripple).
                t += static_cast<Tick>(k + 2) * gap;
                if (dir > 0)
                    gate.injectSet1(t);
                else
                    gate.injectSet0(t);
                armed = dir;
                t += static_cast<Tick>(k + 2) * gap;
            }
            for (int i = 0; i < std::abs(delta); ++i) {
                gate.injectIn(t);
                t += gap;
            }
            expected += delta;
        }
        sim.run();
        ASSERT_EQ(expected, fsm.linearState());
        EXPECT_EQ(gate.value(),
                  static_cast<std::uint64_t>(fsm.linearState()))
            << "trial " << trial << " state " << fsm.stateName();
        // The trajectory stays within the chain: no wrap spikes.
        EXPECT_EQ(gate.outSink().count(), 0u) << "trial " << trial;
        EXPECT_EQ(sim.violations(), 0u);
    }
}

/**
 * Randomized single-layer networks: the compiler's encoded pulse
 * program, executed open-loop on the gate-level chip, reproduces the
 * behavioural chip's per-step spike counts exactly (mesh sizes 1-3,
 * three random nets each).
 */
class LayerCosim
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(LayerCosim, GateChipMatchesBehaviouralStepLayer)
{
    const int n = std::get<0>(GetParam());
    const int variant = std::get<1>(GetParam());
    Rng rng(9000 + static_cast<std::uint64_t>(n * 10 + variant));

    std::vector<std::vector<std::int8_t>> weights(
        static_cast<std::size_t>(n));
    std::vector<int> thresholds(static_cast<std::size_t>(n));
    for (int o = 0; o < n; ++o) {
        for (int i = 0; i < n; ++i)
            weights[static_cast<std::size_t>(o)].push_back(
                rng.chance(0.5) ? -1 : 1);
        thresholds[static_cast<std::size_t>(o)] =
            1 + static_cast<int>(rng.below(3));
    }
    const int t_steps = 3 + variant;
    snn::BinaryLayer layer;
    layer.weights = std::move(weights);
    layer.thresholds = std::move(thresholds);
    auto net = snn::BinarySnn::fromLayers({layer}, t_steps);

    compiler::ChipConfig cfg;
    cfg.n = n;
    cfg.sc_per_npe = 5;
    auto compiled = compiler::compileNetwork(net, cfg);

    std::vector<std::vector<std::uint8_t>> frames;
    for (int t = 0; t < t_steps; ++t) {
        std::vector<std::uint8_t> f(static_cast<std::size_t>(n));
        for (auto &v : f)
            v = rng.chance(0.5) ? 1 : 0;
        frames.push_back(std::move(f));
    }

    chip::SushiChip behavioural(cfg);
    std::vector<std::vector<int>> behav_steps;
    for (const auto &f : frames) {
        chip::PulseVector act(f.begin(), f.end());
        auto out = behavioural.stepLayer(compiled.layers[0],
                                         net.layers()[0], act);
        behav_steps.push_back(
            std::vector<int>(out.begin(), out.end()));
    }

    compiler::PulseProgram prog =
        compiler::encodeLayerProgram(compiled, frames);
    ASSERT_EQ(prog.validate(), "");
    sfq::Simulator sim;
    sim.setViolationPolicy(sfq::ViolationPolicy::Fatal);
    sfq::Netlist netlist(sim);
    chip::GateChip gate(netlist, cfg);
    auto gate_steps = gate.runProgram(compiled, prog);
    EXPECT_EQ(sim.violations(), 0u);

    ASSERT_EQ(gate_steps.size(), behav_steps.size());
    for (std::size_t s = 0; s < gate_steps.size(); ++s)
        EXPECT_EQ(gate_steps[s], behav_steps[s])
            << "n=" << n << " variant " << variant << " step " << s;

    // Third party to the agreement: the same program on a second
    // gate chip whose event kernel runs partitioned across two
    // lanes. The mesh is one tight component at the default
    // lookahead, so this also covers the single-lane fallback at
    // small n.
    sfq::Simulator psim_sim;
    psim_sim.setViolationPolicy(sfq::ViolationPolicy::Fatal);
    sfq::Netlist pnetlist(psim_sim);
    chip::GateChip pgate(pnetlist, cfg);
    pgate.setSimThreads(2);
    auto pgate_steps = pgate.runProgram(compiled, prog);
    EXPECT_EQ(psim_sim.violations(), 0u);
    EXPECT_EQ(pgate_steps, gate_steps)
        << "partitioned gate chip diverged, n=" << n << " variant "
        << variant;
}

INSTANTIATE_TEST_SUITE_P(
    RandomNets, LayerCosim,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0, 1, 2)));

} // namespace
} // namespace sushi
