/**
 * @file
 * Tests for the batched multi-chip inference engine: compiled-model
 * cache behaviour, shard-plan determinism (byte-identical merged
 * stats across thread counts), equivalence with single-chip
 * sequential inference, degraded-replica draining, and replica reuse
 * across batches.
 */

#include <gtest/gtest.h>

#include "chip/sushi_chip.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "engine/inference_engine.hh"
#include "snn/binarize.hh"
#include "snn/network.hh"

namespace sushi::engine {
namespace {

snn::BinarySnn
tinyNet(std::size_t input, std::size_t hidden, std::size_t output,
        int t_steps, std::uint64_t seed)
{
    snn::SnnConfig cfg;
    cfg.input = input;
    cfg.hidden = hidden;
    cfg.output = output;
    cfg.t_steps = t_steps;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, seed);
    return snn::BinarySnn::fromFloat(mlp);
}

std::vector<Sample>
randomSamples(std::size_t n, std::size_t dim, int t_steps,
              std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Sample> samples(n);
    for (auto &s : samples) {
        for (int t = 0; t < t_steps; ++t) {
            std::vector<std::uint8_t> f(dim);
            for (auto &v : f)
                v = rng.chance(0.4) ? 1 : 0;
            s.push_back(std::move(f));
        }
    }
    return samples;
}

compiler::ChipConfig
smallChip()
{
    compiler::ChipConfig cfg;
    cfg.n = 8;
    cfg.sc_per_npe = 10;
    return cfg;
}

TEST(CompiledModel, FingerprintSeparatesModelsAndChips)
{
    auto a = tinyNet(12, 6, 3, 3, 1);
    auto b = tinyNet(12, 6, 3, 3, 2);
    const auto chip_a = smallChip();
    compiler::ChipConfig chip_b = chip_a;
    chip_b.n = 4;
    EXPECT_EQ(CompiledModel::fingerprintOf(a, chip_a),
              CompiledModel::fingerprintOf(a, chip_a));
    EXPECT_NE(CompiledModel::fingerprintOf(a, chip_a),
              CompiledModel::fingerprintOf(b, chip_a));
    EXPECT_NE(CompiledModel::fingerprintOf(a, chip_a),
              CompiledModel::fingerprintOf(a, chip_b));
}

TEST(ModelCache, CompilesOnceAndShares)
{
    ModelCache cache;
    auto net = tinyNet(16, 8, 4, 3, 11);
    const auto chip = smallChip();
    auto first = cache.get(net, chip);
    auto second = cache.get(net, chip);
    EXPECT_EQ(first.get(), second.get()); // same artifact
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);

    // A different chip geometry is a different artifact.
    compiler::ChipConfig other = chip;
    other.n = 4;
    auto third = cache.get(net, other);
    EXPECT_NE(first.get(), third.get());
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ModelCache, ArtifactPointsIntoItsOwnNetwork)
{
    ModelCache cache;
    auto model = cache.get(tinyNet(10, 5, 3, 2, 21), smallChip());
    // CompiledNetwork::net must reference the artifact's own copy,
    // not the (destroyed) temporary it was compiled from.
    EXPECT_EQ(model->compiled().net, &model->network());
    EXPECT_EQ(model->compiled().layers.size(),
              model->network().layers().size());
}

TEST(ModelCache, LruEvictionAndRefetchRecompiles)
{
    ModelCache cache;
    EXPECT_EQ(cache.capacity(), ModelCache::kDefaultCapacity);
    cache.setCapacity(2);
    const auto chip = smallChip();
    auto net_a = tinyNet(12, 6, 3, 2, 101);
    auto net_b = tinyNet(12, 6, 3, 2, 102);
    auto net_c = tinyNet(12, 6, 3, 2, 103);

    auto a = cache.get(net_a, chip);
    auto b = cache.get(net_b, chip);
    auto a_again = cache.get(net_a, chip); // hit: A becomes MRU
    EXPECT_EQ(a.get(), a_again.get());

    // Inserting C evicts the LRU artifact — B, not A.
    auto c = cache.get(net_c, chip);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.get(net_a, chip).get(), a.get()); // still cached

    // Eviction dropped only the cache's reference: our handle to B
    // stays valid, but refetching recompiles a fresh artifact.
    EXPECT_EQ(b->compiled().net, &b->network());
    auto b_refetched = cache.get(net_b, chip);
    EXPECT_NE(b_refetched.get(), b.get());
    EXPECT_EQ(b_refetched->fingerprint(), b->fingerprint());
    EXPECT_EQ(cache.evictions(), 2u); // refetching B evicted C
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 4u); // A, B, C, B-again

    // Shrinking the bound evicts down immediately, keeping the MRU.
    cache.setCapacity(1);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.get(net_b, chip).get(), b_refetched.get());
    EXPECT_EQ(cache.capacity(), 1u);
}

TEST(Engine, MatchesSingleChipSequential)
{
    auto net = tinyNet(20, 10, 4, 3, 31);
    const auto chip_cfg = smallChip();
    auto model = CompiledModel::compile(net, chip_cfg);
    auto samples = randomSamples(23, 20, 3, 5);

    EngineConfig ecfg;
    ecfg.replicas = 4;
    InferenceEngine eng(model, ecfg);
    const auto run = eng.run(samples);

    chip::SushiChip single(chip_cfg);
    std::uint64_t seq_ops = 0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        single.resetStats();
        const auto counts =
            single.inferCounts(model->compiled(), samples[i]);
        EXPECT_EQ(run.samples[i].counts, counts) << "sample " << i;
        seq_ops += single.stats().synaptic_ops;
    }
    EXPECT_EQ(run.merged.synaptic_ops, seq_ops);
    EXPECT_EQ(run.merged.frames,
              static_cast<std::uint64_t>(samples.size()));
}

TEST(Engine, MergedStatsByteIdenticalAcrossThreadCounts)
{
    auto net = tinyNet(24, 12, 5, 3, 41);
    auto model = CompiledModel::compile(net, smallChip());
    auto samples = randomSamples(33, 24, 3, 6);

    std::string digest;
    for (unsigned threads : {1u, 2u, 3u, 8u}) {
        EngineConfig ecfg;
        ecfg.replicas = 4;
        ecfg.max_threads = threads;
        InferenceEngine eng(model, ecfg);
        const std::string json = statsJson(eng.run(samples).merged);
        if (digest.empty())
            digest = json;
        EXPECT_EQ(json, digest) << "threads " << threads;
    }
}

TEST(Engine, MergedStatsByteIdenticalAcrossReplicaCounts)
{
    // Stronger than the thread-count contract: per-sample stats are
    // captured from a reset chip, so even the shard plan (which
    // changes with the replica count) cannot perturb the merge.
    auto net = tinyNet(24, 12, 5, 3, 43);
    auto model = CompiledModel::compile(net, smallChip());
    auto samples = randomSamples(17, 24, 3, 7);

    std::string digest;
    for (int replicas : {1, 2, 3, 8}) {
        EngineConfig ecfg;
        ecfg.replicas = replicas;
        InferenceEngine eng(model, ecfg);
        const std::string json = statsJson(eng.run(samples).merged);
        if (digest.empty())
            digest = json;
        EXPECT_EQ(json, digest) << "replicas " << replicas;
    }
}

TEST(Engine, SimThreadsByteIdenticalResultsAndStats)
{
    // sim_threads fans the per-replica neuron-evaluation loop out
    // over worker threads; like max_threads it must never move a
    // result or a stats byte.
    auto net = tinyNet(24, 12, 5, 3, 47);
    auto model = CompiledModel::compile(net, smallChip());
    auto samples = randomSamples(19, 24, 3, 9);

    std::string digest;
    std::vector<SampleResult> base;
    for (int sim_threads : {0, 2, 8}) {
        EngineConfig ecfg;
        ecfg.replicas = 2;
        ecfg.sim_threads = sim_threads;
        InferenceEngine eng(model, ecfg);
        const EngineRun run = eng.run(samples);
        const std::string json = statsJson(run.merged);
        if (digest.empty()) {
            digest = json;
            base = run.samples;
        }
        EXPECT_EQ(json, digest) << "sim_threads " << sim_threads;
        ASSERT_EQ(run.samples.size(), base.size());
        for (std::size_t i = 0; i < base.size(); ++i)
            EXPECT_EQ(run.samples[i].counts, base[i].counts)
                << "sim_threads " << sim_threads << " sample " << i;
    }
}

TEST(Engine, ShardPlanCoversEverySampleOnce)
{
    auto net = tinyNet(16, 8, 4, 2, 51);
    auto model = CompiledModel::compile(net, smallChip());
    auto samples = randomSamples(40, 16, 2, 8);

    EngineConfig ecfg;
    ecfg.replicas = 3;
    ecfg.shard_block = 4;
    InferenceEngine eng(model, ecfg);
    const auto run = eng.run(samples);
    ASSERT_EQ(run.shard_of.size(), samples.size());
    std::vector<int> served(3, 0);
    for (int owner : run.shard_of) {
        ASSERT_GE(owner, 0);
        ASSERT_LT(owner, 3);
        ++served[static_cast<std::size_t>(owner)];
    }
    // Block round-robin: every replica gets work on a 40-sample
    // batch with block 4.
    for (int r = 0; r < 3; ++r)
        EXPECT_GT(served[static_cast<std::size_t>(r)], 0)
            << "replica " << r;
}

TEST(Engine, DrainsDegradedReplicaAndRedistributes)
{
    auto net = tinyNet(16, 8, 4, 3, 61);
    auto model = CompiledModel::compile(net, smallChip());
    auto samples = randomSamples(24, 16, 3, 9);

    EngineConfig ecfg;
    ecfg.replicas = 3;
    InferenceEngine healthy_eng(model, ecfg);
    const auto healthy = healthy_eng.run(samples);

    InferenceEngine eng(model, ecfg);
    eng.markReplicaDegraded(1, 2);
    EXPECT_TRUE(eng.replicaDegraded(1));
    const auto run = eng.run(samples);

    // The degraded replica serves nothing; results and merged stats
    // are unchanged (the drain removes the degraded surcharges).
    EXPECT_EQ(run.active_replicas, 2);
    for (int owner : run.shard_of)
        EXPECT_NE(owner, 1);
    for (std::size_t i = 0; i < samples.size(); ++i)
        EXPECT_EQ(run.samples[i].counts, healthy.samples[i].counts);
    EXPECT_EQ(statsJson(run.merged), statsJson(healthy.merged));
    EXPECT_EQ(run.merged.degraded_passes, 0u);

    // Healing restores the replica to the shard plan.
    eng.healReplica(1);
    EXPECT_FALSE(eng.replicaDegraded(1));
    const auto healed = eng.run(samples);
    EXPECT_EQ(healed.active_replicas, 3);
}

TEST(Engine, UndrainedDegradedReplicaStillBitIdentical)
{
    // Sec. 6.2 failure tolerance: degraded-mode results are
    // bit-identical; only time/reload surcharges appear. With
    // draining off the degraded replica keeps serving.
    auto net = tinyNet(16, 8, 4, 3, 71);
    auto model = CompiledModel::compile(net, smallChip());
    auto samples = randomSamples(18, 16, 3, 10);

    EngineConfig ecfg;
    ecfg.replicas = 2;
    InferenceEngine healthy_eng(model, ecfg);
    const auto healthy = healthy_eng.run(samples);

    ecfg.drain_degraded = false;
    InferenceEngine eng(model, ecfg);
    eng.markReplicaDegraded(0, 1);
    const auto run = eng.run(samples);
    EXPECT_EQ(run.active_replicas, 2);
    bool degraded_served = false;
    for (int owner : run.shard_of)
        degraded_served |= owner == 0;
    EXPECT_TRUE(degraded_served);
    for (std::size_t i = 0; i < samples.size(); ++i)
        EXPECT_EQ(run.samples[i].counts, healthy.samples[i].counts);
    EXPECT_GT(run.merged.remapped_neurons, 0u);
    EXPECT_GT(run.merged.degraded_passes, 0u);
}

TEST(Engine, BackToBackBatchesAreIndependent)
{
    // Replica pooling reuses chips across batches: the second batch
    // must be indistinguishable from a run on a fresh engine.
    auto net = tinyNet(20, 10, 4, 3, 81);
    auto model = CompiledModel::compile(net, smallChip());
    auto batch_a = randomSamples(15, 20, 3, 11);
    auto batch_b = randomSamples(15, 20, 3, 12);

    EngineConfig ecfg;
    ecfg.replicas = 3;
    InferenceEngine eng(model, ecfg);
    eng.run(batch_a);
    const auto second = eng.run(batch_b);

    InferenceEngine fresh(model, ecfg);
    const auto reference = fresh.run(batch_b);
    for (std::size_t i = 0; i < batch_b.size(); ++i)
        EXPECT_EQ(second.samples[i].counts,
                  reference.samples[i].counts);
    EXPECT_EQ(statsJson(second.merged), statsJson(reference.merged));
}

TEST(Engine, EmptyBatch)
{
    auto net = tinyNet(10, 5, 3, 2, 91);
    auto model = CompiledModel::compile(net, smallChip());
    InferenceEngine eng(model, EngineConfig{});
    const auto run = eng.run({});
    EXPECT_TRUE(run.samples.empty());
    EXPECT_EQ(run.merged.frames, 0u);
    EXPECT_EQ(run.modeledMakespanPs(), 0.0);
}

TEST(Engine, EncodeSamplesIsPerSampleDeterministic)
{
    snn::Tensor images(4, 16);
    Rng rng(101);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 16; ++c)
            images.at(r, c) = static_cast<float>(rng.uniform());

    const auto all = encodeSamples(images, 3, 7);
    ASSERT_EQ(all.size(), 4u);

    // Encoding the first two rows alone gives the same streams: the
    // per-sample seed derivation is independent of batch size.
    snn::Tensor head(2, 16);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 16; ++c)
            head.at(r, c) = images.at(r, c);
    const auto prefix = encodeSamples(head, 3, 7);
    EXPECT_EQ(prefix[0], all[0]);
    EXPECT_EQ(prefix[1], all[1]);
}

TEST(WorkerPool, DrainRunsEverySubmittedJob)
{
    WorkerPool pool(3);
    std::vector<int> done(64, 0);
    for (std::size_t i = 0; i < done.size(); ++i)
        pool.submit([&done, i] { done[i] = 1; });
    pool.drain();
    for (std::size_t i = 0; i < done.size(); ++i)
        EXPECT_EQ(done[i], 1) << "job " << i;
}

TEST(WorkerPool, DrainRethrowsJobException)
{
    WorkerPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.drain(), std::runtime_error);
    // The pool stays usable after an error.
    bool ran = false;
    pool.submit([&ran] { ran = true; });
    pool.drain();
    EXPECT_TRUE(ran);
}

TEST(ParallelFor, CoversRangeExactlyOnceAtAnyWidth)
{
    for (unsigned width : {1u, 2u, 5u}) {
        std::vector<int> hits(1000, 0);
        ParallelOptions opts;
        opts.grain = 1;
        opts.max_workers = width;
        parallelFor(
            hits.size(),
            [&](std::size_t b, std::size_t e) {
                for (std::size_t i = b; i < e; ++i)
                    ++hits[i];
            },
            opts);
        for (std::size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i], 1) << "width " << width << " i " << i;
    }
}

} // namespace
} // namespace sushi::engine
