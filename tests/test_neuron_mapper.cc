/**
 * @file
 * Property tests: the NPE-backed neuron mapper tracks the reference
 * Fig. 6/7 state machine exactly — same states, same spikes — over
 * random stimulus streams and across neuron geometries.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "npe/neuron_mapper.hh"

namespace sushi::npe {
namespace {

TEST(NeuronMapper, TracksActionPotential)
{
    NeuronFsm ref(3, 2, 2);
    NeuronMapper npe_neuron(3, 2, 2, 5);

    auto step = [&](Stimulus s) {
        const bool a = ref.stimulate(s);
        const bool b = npe_neuron.stimulate(s);
        EXPECT_EQ(a, b);
        EXPECT_EQ(npe_neuron.linearState(), ref.linearState());
    };
    for (int i = 0; i < 3; ++i)
        step(Stimulus::Spike);
    for (int i = 0; i < 9; ++i)
        step(Stimulus::Time);
    EXPECT_EQ(npe_neuron.spikesEmitted(), 1);
    EXPECT_EQ(ref.spikesSent(), 1);
    // Back at rest, ready for another round.
    EXPECT_EQ(npe_neuron.linearState(), 0);
}

TEST(NeuronMapper, SpikeEmittedByCounterOverflow)
{
    NeuronMapper m(2, 1, 1, 4);
    m.stimulate(Stimulus::Spike);
    m.stimulate(Stimulus::Spike); // b2 = threshold
    m.stimulate(Stimulus::Time);  // -> r0
    EXPECT_EQ(m.npe().spikesEmitted(), 0u);
    EXPECT_TRUE(m.stimulate(Stimulus::Time)); // r0 -> r1: fire
    EXPECT_EQ(m.npe().spikesEmitted(), 1u);
}

/** Geometry sweep parameter: (threshold, rising, falling, sc). */
using Geometry = std::tuple<int, int, int, int>;

class MapperSweep : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(MapperSweep, RandomStimuliMatchReference)
{
    auto [threshold, rising, falling, sc] = GetParam();
    NeuronFsm ref(threshold, rising, falling);
    NeuronMapper mapper(threshold, rising, falling, sc);
    Rng rng(static_cast<std::uint64_t>(threshold * 7919 + rising));

    for (int i = 0; i < 400; ++i) {
        const Stimulus s =
            rng.chance(0.4) ? Stimulus::Spike : Stimulus::Time;
        const bool a = ref.stimulate(s);
        const bool b = mapper.stimulate(s);
        ASSERT_EQ(a, b) << "step " << i;
        ASSERT_EQ(mapper.linearState(), ref.linearState())
            << "step " << i;
    }
    EXPECT_EQ(mapper.spikesEmitted(), ref.spikesSent());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, MapperSweep,
    ::testing::Values(Geometry{1, 1, 0, 3}, Geometry{2, 1, 1, 4},
                      Geometry{3, 2, 2, 5}, Geometry{5, 3, 4, 5},
                      Geometry{10, 4, 4, 6}, Geometry{30, 10, 10, 7},
                      Geometry{255, 128, 112, 10}));

TEST(NeuronMapper, PaperScaleNeuronFitsTenScs)
{
    // Sec. 4.1.2: ~500 states suffice; the (255,128,112) neuron has
    // 498 states and runs on a 10-SC NPE.
    NeuronMapper m(255, 128, 112, 10);
    NeuronFsm ref(255, 128, 112);
    EXPECT_EQ(ref.numStates(), 498);
    // Climb to threshold and fire once.
    for (int i = 0; i < 255; ++i) {
        ref.stimulate(Stimulus::Spike);
        m.stimulate(Stimulus::Spike);
    }
    long fired = 0;
    for (int i = 0; i < 400; ++i) {
        ref.stimulate(Stimulus::Time);
        fired += m.stimulate(Stimulus::Time) ? 1 : 0;
    }
    EXPECT_EQ(fired, ref.spikesSent());
    EXPECT_EQ(m.linearState(), ref.linearState());
}

} // namespace
} // namespace sushi::npe
