/**
 * @file
 * Determinism property tests for the compiled simulation core.
 *
 * The simulator's contract is reproducibility: the same netlist and
 * stimulus must produce a byte-identical pulse trace on every run —
 * across fresh simulator instances and across violation policies
 * that observe (rather than alter) the pulse stream. This pins the
 * calendar queue's equal-tick tie-break and the compiled core's
 * delivery order, which golden-waveform comparisons and the fault
 * campaign's seeded trials all build on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "npe/npe.hh"
#include "sfq/constraints.hh"
#include "sfq/netlist.hh"
#include "sfq/simulator.hh"

namespace sushi {
namespace {

struct NpeRun
{
    std::vector<Tick> out_trace;
    std::uint64_t events = 0;
    std::uint64_t pulses = 0;
    std::uint64_t violations = 0;
    std::uint64_t value = 0;
    double energy_j = 0.0;
};

/** Drive a gate-level NPE with @p pulses spaced @p gap apart. */
NpeRun
runNpe(sfq::ViolationPolicy policy, int pulses, Tick gap)
{
    sfq::Simulator sim;
    sim.setViolationPolicy(policy);
    sfq::Netlist net(sim);
    npe::NpeGate gate(net, "npe", 6);
    gate.injectSet1(gap);
    for (int i = 0; i < pulses; ++i)
        gate.injectIn((i + 2) * gap);
    sim.run();

    NpeRun r;
    r.out_trace = gate.outSink().pulsesSeen();
    r.events = sim.eventsExecuted();
    r.pulses = sim.pulses();
    r.violations = sim.violations();
    r.value = gate.value();
    r.energy_j = sim.switchEnergy();
    return r;
}

TEST(Determinism, FreshSimulatorsProduceIdenticalTraces)
{
    const Tick gap = sfq::safePulseSpacing();
    const NpeRun a = runNpe(sfq::ViolationPolicy::Warn, 200, gap);
    const NpeRun b = runNpe(sfq::ViolationPolicy::Warn, 200, gap);

    EXPECT_FALSE(a.out_trace.empty());
    EXPECT_EQ(a.out_trace, b.out_trace); // byte-identical pulse trace
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.pulses, b.pulses);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.energy_j, b.energy_j);
}

TEST(Determinism, ObservingPoliciesDoNotPerturbTheTrace)
{
    // A spacing tight enough to trip hold/separation constraints:
    // Ignore and Warn both let every pulse through, so the resulting
    // trace and counters must be identical — reporting must never
    // change what is simulated.
    const Tick gap = psToTicks(30.0);
    const NpeRun ign =
        runNpe(sfq::ViolationPolicy::Ignore, 20, gap);
    const NpeRun warn =
        runNpe(sfq::ViolationPolicy::Warn, 20, gap);

    EXPECT_GT(ign.violations, 0u); // the stimulus really is marginal
    EXPECT_EQ(ign.out_trace, warn.out_trace);
    EXPECT_EQ(ign.events, warn.events);
    EXPECT_EQ(ign.pulses, warn.pulses);
    EXPECT_EQ(ign.violations, warn.violations);
    EXPECT_EQ(ign.value, warn.value);
    EXPECT_EQ(ign.energy_j, warn.energy_j);
}

} // namespace
} // namespace sushi
