/**
 * @file
 * Tests for the pulse-program IR and the encoder (Fig. 12(c)-(f)):
 * well-formedness, Sec. 5.2 ordering validation, and open-loop
 * program execution matching the behavioural chip at gate level.
 */

#include <gtest/gtest.h>

#include "chip/gate_sim.hh"
#include "chip/sushi_chip.hh"
#include "common/rng.hh"
#include "compiler/pulse_encoder.hh"

namespace sushi::compiler {
namespace {

snn::BinarySnn
handNet(std::vector<std::vector<std::int8_t>> weights,
        std::vector<int> thresholds, int t_steps)
{
    snn::BinaryLayer layer;
    layer.weights = std::move(weights);
    layer.thresholds = std::move(thresholds);
    return snn::BinarySnn::fromLayers({layer}, t_steps);
}

TEST(PulseProgram, ChannelNames)
{
    EXPECT_STREQ(channelName(Channel::Input), "input");
    EXPECT_STREQ(channelName(Channel::SynStrength), "syn.strength");
}

TEST(PulseProgram, ValidateDetectsUnsorted)
{
    PulseProgram prog;
    prog.ops.push_back(PulseOp{100, Channel::OutRst, 0});
    prog.ops.push_back(PulseOp{50, Channel::OutRst, 0});
    EXPECT_NE(prog.validate().find("not sorted"), std::string::npos);
}

TEST(PulseProgram, ValidateDetectsWriteWithoutRst)
{
    PulseProgram prog;
    prog.ops.push_back(PulseOp{10, Channel::OutWrite, 0, 1});
    EXPECT_NE(prog.validate().find("without rst"),
              std::string::npos);
}

TEST(PulseProgram, ValidateDetectsInputBeforeSet)
{
    PulseProgram prog;
    prog.ops.push_back(PulseOp{10, Channel::InRst, 0});
    prog.ops.push_back(PulseOp{20, Channel::Input, 0});
    EXPECT_NE(prog.validate().find("before set"), std::string::npos);
}

TEST(PulseProgram, WindowQueries)
{
    PulseProgram prog;
    prog.ops.push_back(PulseOp{10, Channel::OutRst, 0});
    prog.ops.push_back(PulseOp{20, Channel::OutSet1, 0});
    prog.ops.push_back(PulseOp{30, Channel::InSet1, 0});
    EXPECT_EQ(prog.opsInWindow(15, 30).size(), 1u);
    EXPECT_EQ(prog.endTime(), 30);
}

TEST(PulseEncoder, ProgramIsValid)
{
    auto net = handNet({{1, -1}, {1, 1}}, {1, 2}, 3);
    ChipConfig cfg;
    cfg.n = 2;
    cfg.sc_per_npe = 4;
    auto compiled = compileNetwork(net, cfg);
    std::vector<std::vector<std::uint8_t>> frames = {
        {1, 0}, {1, 1}, {0, 1}};
    PulseProgram prog = encodeLayerProgram(compiled, frames);
    EXPECT_EQ(prog.validate(), "");
    EXPECT_EQ(prog.step_bounds.size(), 4u);
    EXPECT_GT(prog.totalPulses(), 0);
    // Dump contains the weight and input streams.
    const std::string text = prog.dump();
    EXPECT_NE(text.find("syn.strength"), std::string::npos);
    EXPECT_NE(text.find("input"), std::string::npos);
}

TEST(PulseEncoder, OpsRespectSafeSpacing)
{
    auto net = handNet({{1}}, {1}, 2);
    ChipConfig cfg;
    cfg.n = 1;
    cfg.sc_per_npe = 3;
    auto compiled = compileNetwork(net, cfg);
    PulseProgram prog =
        encodeLayerProgram(compiled, {{1}, {1}});
    const Tick gap = sfq::safePulseSpacing();
    for (std::size_t i = 1; i < prog.ops.size(); ++i)
        EXPECT_GE(prog.ops[i].at - prog.ops[i - 1].at, gap);
}

/** Open-loop program execution == behavioural chip, 1x1 and 2x2. */
class ProgramCosim : public ::testing::TestWithParam<int>
{
};

TEST_P(ProgramCosim, MatchesBehaviouralChip)
{
    const int n = GetParam();
    Rng rng(2024 + static_cast<std::uint64_t>(n));
    // Random binary single-layer net sized to the mesh.
    std::vector<std::vector<std::int8_t>> weights(
        static_cast<std::size_t>(n));
    std::vector<int> thresholds(static_cast<std::size_t>(n));
    for (int o = 0; o < n; ++o) {
        for (int i = 0; i < n; ++i)
            weights[static_cast<std::size_t>(o)].push_back(
                rng.chance(0.4) ? -1 : 1);
        thresholds[static_cast<std::size_t>(o)] =
            1 + static_cast<int>(rng.below(2));
    }
    auto net = handNet(weights, thresholds, 4);

    ChipConfig cfg;
    cfg.n = n;
    cfg.sc_per_npe = 5;
    auto compiled = compileNetwork(net, cfg);

    std::vector<std::vector<std::uint8_t>> frames;
    for (int t = 0; t < 4; ++t) {
        std::vector<std::uint8_t> f(static_cast<std::size_t>(n));
        for (auto &v : f)
            v = rng.chance(0.6) ? 1 : 0;
        frames.push_back(std::move(f));
    }

    // Behavioural reference.
    chip::SushiChip behavioural(cfg);
    std::vector<std::vector<int>> behav_steps;
    for (const auto &f : frames) {
        chip::PulseVector act(f.begin(), f.end());
        auto out = behavioural.stepLayer(compiled.layers[0],
                                         net.layers()[0], act);
        behav_steps.push_back(
            std::vector<int>(out.begin(), out.end()));
    }

    // Encoded program applied open-loop at gate level.
    PulseProgram prog = encodeLayerProgram(compiled, frames);
    ASSERT_EQ(prog.validate(), "");
    sfq::Simulator sim;
    // Encoded programs honour every Table-1 constraint: run with the
    // Fatal policy so any violation aborts the test.
    sim.setViolationPolicy(sfq::ViolationPolicy::Fatal);
    sfq::Netlist netlist(sim);
    chip::GateChip gate(netlist, cfg);
    auto gate_steps = gate.runProgram(compiled, prog);
    EXPECT_EQ(sim.violations(), 0u);

    ASSERT_EQ(gate_steps.size(), behav_steps.size());
    for (std::size_t s = 0; s < gate_steps.size(); ++s)
        EXPECT_EQ(gate_steps[s], behav_steps[s])
            << "n=" << n << " step " << s;
}

INSTANTIATE_TEST_SUITE_P(MeshSizes, ProgramCosim,
                         ::testing::Values(1, 2, 3));

} // namespace
} // namespace sushi::compiler
