/**
 * @file
 * Tests for the NoC subsystem: mesh geometry and XY routing, spike-
 * packet serialization, the discrete-event fabric's closed-form
 * timing (HOL stalls, NIC backpressure, per-link counters), the
 * traffic-aware placement pass, and the engine integration contract —
 * NoC-transport spike results bit-identical to the ideal transport,
 * NoC metrics byte-deterministic across thread counts, and the
 * transport block surfaced through statsJson / ServerMetrics.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "compiler/driver.hh"
#include "engine/inference_engine.hh"
#include "noc/fabric.hh"
#include "noc/packet.hh"
#include "noc/placement.hh"
#include "noc/topology.hh"
#include "noc/transport.hh"
#include "serve/metrics.hh"
#include "snn/binarize.hh"
#include "snn/network.hh"

namespace sushi {
namespace {

using engine::CompiledModel;
using engine::EngineConfig;
using engine::EngineRun;
using engine::InferenceEngine;
using engine::Sample;

// --- Topology ---------------------------------------------------

TEST(NocTopology, RowMajorNodesAndLinkCount)
{
    noc::MeshTopology topo(3, 2);
    EXPECT_EQ(topo.numNodes(), 6);
    // Directed links: 2 per horizontal + vertical neighbour pair.
    EXPECT_EQ(topo.numLinks(), 2 * (2 * 3 * 2 - 3 - 2));
    EXPECT_EQ(topo.nodeAt({2, 1}), 5);
    EXPECT_EQ(topo.coordOf(4).x, 1);
    EXPECT_EQ(topo.coordOf(4).y, 1);
    // A physical channel is two directed links with distinct ids.
    EXPECT_NE(topo.linkBetween(0, 1), topo.linkBetween(1, 0));
    EXPECT_THROW(topo.linkBetween(0, 5), noc::NocError);
    EXPECT_THROW(noc::MeshTopology(0, 3), noc::NocError);
}

TEST(NocTopology, XyRouteCorrectsXThenY)
{
    noc::MeshTopology topo(3, 3);
    const int src = topo.nodeAt({0, 0});
    const int dst = topo.nodeAt({2, 1});
    const std::vector<int> route = topo.route(src, dst);
    ASSERT_EQ(route.size(), 3u);
    EXPECT_EQ(topo.hopDistance(src, dst), 3);
    // Hop endpoints chain src -> dst, x corrected before y.
    EXPECT_EQ(topo.linkSource(route[0]), (noc::Coord{0, 0}));
    EXPECT_EQ(topo.linkDest(route[0]), (noc::Coord{1, 0}));
    EXPECT_EQ(topo.linkDest(route[1]), (noc::Coord{2, 0}));
    EXPECT_EQ(topo.linkDest(route[2]), (noc::Coord{2, 1}));
    EXPECT_TRUE(topo.route(src, src).empty());
    // Pure function: the same query yields the same route.
    EXPECT_EQ(topo.route(src, dst), route);
}

TEST(NocTopology, SnakeOrderVisitsAllNodesAdjacent)
{
    noc::MeshTopology topo(4, 3);
    const std::vector<int> order = topo.snakeOrder();
    ASSERT_EQ(order.size(), 12u);
    std::vector<int> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 12; ++i)
        EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
    for (std::size_t i = 1; i < order.size(); ++i)
        EXPECT_EQ(topo.hopDistance(order[i - 1], order[i]), 1) << i;
}

// --- Packet format ----------------------------------------------

TEST(NocPacket, HeaderPlusPackedEntries)
{
    noc::PacketFormat fmt; // 64-bit flits, 32-bit entries
    EXPECT_EQ(fmt.entriesPerFlit(), 2);
    EXPECT_EQ(fmt.flitsFor(0), 1u); // header only
    EXPECT_EQ(fmt.flitsFor(1), 2u);
    EXPECT_EQ(fmt.flitsFor(5), 4u); // 1 + ceil(5/2)
    EXPECT_EQ(fmt.worstCaseFlits(16), fmt.flitsFor(16));

    // Only nonzero wires serialize; an all-silent step still pays
    // the header flit for the step boundary.
    const noc::PacketSize silent =
        noc::packetOf({0, 0, 0, 0}, fmt);
    EXPECT_EQ(silent.entries, 0u);
    EXPECT_EQ(silent.flits, 1u);
    const noc::PacketSize sparse =
        noc::packetOf({0, 2, 0, 1, 1}, fmt);
    EXPECT_EQ(sparse.entries, 3u);
    EXPECT_EQ(sparse.flits, 1u + 2u);
    EXPECT_THROW(noc::packetOf({1}, noc::PacketFormat{0, 32}),
                 noc::NocError);
}

// --- Fabric timing ----------------------------------------------

noc::NocConfig
fabricConfig(int bandwidth, int queue)
{
    noc::NocConfig cfg;
    cfg.link_latency_cycles = 1;
    cfg.link_bandwidth_flits = bandwidth;
    cfg.nic_queue_flits = queue;
    return cfg;
}

TEST(NocFabric, ClosedFormSinglePacketLatency)
{
    noc::MeshTopology topo(3, 1);
    noc::NocFabric fab(topo, fabricConfig(4, 64));
    const std::vector<int> route = topo.route(0, 2); // 2 hops
    fab.resetSample();
    fab.beginStep();
    // 8 flits at bandwidth 4: 2 serialization cycles + 1 latency per
    // hop = (2 + 1) * 2 = 6 cycles, no contention.
    EXPECT_EQ(fab.send(route, 8), 6u);
    fab.endStep();
    EXPECT_EQ(fab.clock().cycles, 6u);
    EXPECT_EQ(fab.packets(), 1u);
    EXPECT_EQ(fab.totalFlits(), 8u);
    EXPECT_EQ(fab.flitHops(), 16u);
    EXPECT_EQ(fab.holStallCycles(), 0u);
    EXPECT_EQ(fab.backpressureStalls(), 0u);
    EXPECT_EQ(fab.maxStepLinkFlits(), 8u);
    EXPECT_EQ(fab.link(route[0]).busy_cycles, 2u);
}

TEST(NocFabric, SharedLinkCountsHeadOfLineStalls)
{
    noc::MeshTopology topo(2, 1);
    noc::NocFabric fab(topo, fabricConfig(4, 64));
    const std::vector<int> route = topo.route(0, 1);
    fab.resetSample();
    fab.beginStep();
    EXPECT_EQ(fab.send(route, 4), 2u); // occupies the link 1 cycle
    // The second packet waits for the first's serialization slot.
    EXPECT_EQ(fab.send(route, 4), 3u);
    fab.endStep();
    EXPECT_EQ(fab.holStallCycles(), 1u);
    EXPECT_EQ(fab.link(route[0]).hol_stall_cycles, 1u);
    EXPECT_EQ(fab.maxStepLinkFlits(), 8u);
    // Occupancy resets at the next step: no cross-step stall.
    fab.beginStep();
    EXPECT_EQ(fab.send(route, 4), 2u);
    fab.endStep();
    EXPECT_EQ(fab.holStallCycles(), 1u);
    EXPECT_EQ(fab.clock().cycles, 3u + 2u);
    EXPECT_GT(fab.maxLinkUtilisation(), 0.0);
    EXPECT_LE(fab.maxLinkUtilisation(), 1.0);
}

TEST(NocFabric, NicBackpressureChargesCreditStalls)
{
    noc::MeshTopology topo(2, 1);
    noc::NocFabric fab(topo, fabricConfig(4, 8));
    const std::vector<int> route = topo.route(0, 1);
    fab.resetSample();
    fab.beginStep();
    // 11 flits into an 8-flit credit window: 3 credit-return waits
    // before injection, then ceil(11/4)=3 serialization + 1 latency.
    EXPECT_EQ(fab.send(route, 11), 3u + 3u + 1u);
    fab.endStep();
    EXPECT_EQ(fab.backpressureStalls(), 3u);
}

TEST(NocFabric, GuardsAgainstProtocolMisuse)
{
    noc::MeshTopology topo(2, 1);
    noc::NocFabric fab(topo, fabricConfig(4, 8));
    EXPECT_THROW(fab.send(topo.route(0, 1), 1), noc::NocError);
    EXPECT_THROW(fab.endStep(), noc::NocError);
    EXPECT_THROW(noc::NocFabric(topo, fabricConfig(0, 8)),
                 noc::NocError);
    EXPECT_THROW(noc::NocFabric(topo, fabricConfig(4, 0)),
                 noc::NocError);
}

// --- Placement --------------------------------------------------

std::vector<noc::CutTraffic>
chainEdges(int stages, long weight)
{
    std::vector<noc::CutTraffic> edges;
    for (int s = 0; s + 1 < stages; ++s)
        edges.push_back(noc::CutTraffic{s, s + 1, weight});
    return edges;
}

TEST(NocPlacement, PipelineChainLandsOnAdjacentNodes)
{
    const noc::Placement p =
        noc::placeStages(4, chainEdges(4, 16));
    EXPECT_EQ(p.width * p.height, 4); // auto-sized near-square
    noc::MeshTopology topo(p.width, p.height);
    ASSERT_EQ(p.stage_node.size(), 4u);
    // The contraction chains the pipeline along the snake order, so
    // every cut travels exactly one hop.
    for (int s = 0; s + 1 < 4; ++s)
        EXPECT_EQ(topo.hopDistance(
                      p.stage_node[static_cast<std::size_t>(s)],
                      p.stage_node[static_cast<std::size_t>(s + 1)]),
                  1)
            << s;
    // Deterministic: same inputs, same placement.
    const noc::Placement q =
        noc::placeStages(4, chainEdges(4, 16));
    EXPECT_EQ(q.stage_node, p.stage_node);
    EXPECT_EQ(p.host_node, 0);
}

TEST(NocPlacement, ExplicitDimensionsRespectedOrRejected)
{
    const noc::Placement p =
        noc::placeStages(3, chainEdges(3, 8), 3, 1);
    EXPECT_EQ(p.width, 3);
    EXPECT_EQ(p.height, 1);
    std::vector<int> nodes = p.stage_node;
    std::sort(nodes.begin(), nodes.end());
    EXPECT_EQ(nodes, (std::vector<int>{0, 1, 2}));
    EXPECT_THROW(noc::placeStages(5, chainEdges(5, 8), 2, 2),
                 noc::NocError);
}

// --- Engine integration -----------------------------------------

snn::BinarySnn
tinyNet(std::size_t input, std::size_t hidden, std::size_t output,
        int t_steps, std::uint64_t seed)
{
    snn::SnnConfig cfg;
    cfg.input = input;
    cfg.hidden = hidden;
    cfg.output = output;
    cfg.t_steps = t_steps;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, seed);
    return snn::BinarySnn::fromFloat(mlp);
}

snn::BinaryLayer
randomLayer(int in_dim, int out_dim, std::uint64_t seed)
{
    Rng rng(seed);
    snn::BinaryLayer layer;
    layer.weights.resize(static_cast<std::size_t>(out_dim));
    layer.thresholds.resize(static_cast<std::size_t>(out_dim));
    for (int o = 0; o < out_dim; ++o) {
        auto &row = layer.weights[static_cast<std::size_t>(o)];
        row.resize(static_cast<std::size_t>(in_dim));
        for (int i = 0; i < in_dim; ++i)
            row[static_cast<std::size_t>(i)] =
                rng.chance(0.5) ? -1 : 1;
        layer.thresholds[static_cast<std::size_t>(o)] =
            static_cast<int>(rng.range(1, 8));
    }
    return layer;
}

std::vector<Sample>
randomSamples(std::size_t n, std::size_t dim, int t_steps,
              std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Sample> samples(n);
    for (auto &s : samples) {
        for (int t = 0; t < t_steps; ++t) {
            std::vector<std::uint8_t> f(dim);
            for (auto &v : f)
                v = rng.chance(0.4) ? 1 : 0;
            s.push_back(std::move(f));
        }
    }
    return samples;
}

compiler::ChipConfig
smallChip()
{
    compiler::ChipConfig cfg;
    cfg.n = 4;
    cfg.sc_per_npe = 10;
    return cfg;
}

/** Budget that fits each layer alone but never two together, so the
 *  driver splits one stage per layer (test_multichip idiom). */
compiler::DriverOptions
splittingOptions(const snn::BinarySnn &net,
                 const compiler::ChipConfig &chip)
{
    compiler::CostModel model(chip.n, chip.sc_per_npe);
    long biggest = 0;
    for (const auto &layer : net.layers())
        biggest = std::max(biggest, model.layerCost(layer).totalJjs());
    compiler::DriverOptions opts;
    opts.enforce_budget = true;
    opts.allow_multichip = true;
    opts.score_schedules = false;
    opts.budget.sc_per_npe = chip.sc_per_npe;
    opts.budget.jj_cap = model.fabricJjs() + biggest;
    opts.budget.area_cap_mm2 = 1e9;
    return opts;
}

std::shared_ptr<const CompiledModel>
twoStageModel()
{
    auto net = tinyNet(24, 16, 12, 3, 9);
    return CompiledModel::compile(net, smallChip(),
                                  splittingOptions(net, smallChip()));
}

std::shared_ptr<const CompiledModel>
fourStageModel()
{
    const auto net = snn::BinarySnn::fromLayers(
        {randomLayer(20, 12, 3), randomLayer(12, 18, 4),
         randomLayer(18, 10, 5), randomLayer(10, 6, 6)},
        3);
    return CompiledModel::compile(net, smallChip(),
                                  splittingOptions(net, smallChip()));
}

TEST(NocEngine, SpikeResultsBitIdenticalToIdealTransport)
{
    // The acceptance contract: for every tested plan, results over
    // the NoC match the ideal transport bit for bit — the fabric
    // only charges time, never touches the payload.
    for (const auto &model : {twoStageModel(), fourStageModel()}) {
        ASSERT_GE(model->stageCount(), 2);
        const std::size_t in_dim =
            model->network().layers().front().inDim();
        auto samples = randomSamples(8, in_dim, 3, 71);

        EngineConfig ideal;
        ideal.replicas = 2;
        EngineConfig noced = ideal;
        noced.noc.enabled = true;
        noced.noc.link_bandwidth_flits = 2;
        noced.noc.nic_queue_flits = 4; // force congestion accounting

        InferenceEngine a(model, ideal);
        InferenceEngine b(model, noced);
        EXPECT_FALSE(a.nocEnabled());
        ASSERT_TRUE(b.nocEnabled());
        EngineRun ra = a.run(samples);
        EngineRun rb = b.run(samples);
        for (std::size_t i = 0; i < samples.size(); ++i) {
            EXPECT_EQ(ra.samples[i].counts, rb.samples[i].counts)
                << i;
            EXPECT_EQ(ra.samples[i].prediction,
                      rb.samples[i].prediction)
                << i;
        }
        // Behavioural counters agree; only transport accounting and
        // the modelled makespan differ.
        EXPECT_EQ(ra.merged.synaptic_ops, rb.merged.synaptic_ops);
        EXPECT_EQ(ra.merged.output_spikes, rb.merged.output_spikes);
        EXPECT_EQ(ra.merged.dynamic_energy_j,
                  rb.merged.dynamic_energy_j);
        EXPECT_EQ(ra.merged.noc_packets, 0u);
        EXPECT_GT(rb.merged.noc_packets, 0u);
        EXPECT_GT(rb.merged.noc_flits, 0u);
        EXPECT_GT(rb.merged.noc_latency_ps, 0.0);
        EXPECT_GT(rb.merged.est_time_ps, ra.merged.est_time_ps);
        EXPECT_EQ(rb.merged.noc_latency_cycles * 20,
                  static_cast<std::uint64_t>(
                      rb.merged.noc_latency_ps));
    }
}

TEST(NocEngine, TransportStatsSizedToThePlan)
{
    auto model = fourStageModel();
    EngineConfig cfg;
    cfg.replicas = 1;
    cfg.noc.enabled = true;
    InferenceEngine eng(model, cfg);
    ASSERT_TRUE(eng.nocEnabled());
    const noc::NocTransport &nt = eng.nocTransport(0);
    EXPECT_EQ(nt.cuts(), model->stageCount() - 1);
    EXPECT_EQ(nt.placement().stage_node.size(),
              static_cast<std::size_t>(model->stageCount()));
    EXPECT_GT(nt.worstCaseCutFlits(), 0u);

    const std::size_t in_dim =
        model->network().layers().front().inDim();
    EngineRun run = eng.run(randomSamples(4, in_dim, 3, 5));
    ASSERT_EQ(run.merged.noc_cut_flits.size(),
              static_cast<std::size_t>(model->stageCount() - 1));
    for (const std::uint64_t f : run.merged.noc_cut_flits)
        EXPECT_GT(f, 0u); // every step pays at least the header flit
    // Per-step packets: ingress + cuts + egress, per sample frame.
    EXPECT_EQ(run.merged.noc_packets,
              run.merged.time_steps *
                  static_cast<std::uint64_t>(model->stageCount() + 1));
}

TEST(NocEngine, MetricsReplayByteIdenticallyAcrossThreads)
{
    auto model = fourStageModel();
    const std::size_t in_dim =
        model->network().layers().front().inDim();
    auto samples = randomSamples(10, in_dim, 3, 41);

    std::string baseline;
    for (unsigned threads : {1u, 2u, 8u}) {
        EngineConfig cfg;
        cfg.replicas = 3;
        cfg.max_threads = threads;
        cfg.noc.enabled = true;
        cfg.noc.link_bandwidth_flits = 2;
        EngineRun run = InferenceEngine(model, cfg).run(samples);
        const std::string json = engine::statsJson(run.merged);
        if (baseline.empty())
            baseline = json;
        else
            EXPECT_EQ(json, baseline) << threads << " threads";
    }
    EXPECT_NE(baseline.find("\"noc_flits\""), std::string::npos);
    EXPECT_NE(baseline.find("\"noc_cut_flits\": ["),
              std::string::npos);
    EXPECT_NE(baseline.find("\"noc_max_link_utilisation\""),
              std::string::npos);
}

TEST(NocEngine, SingleStagePlansIgnoreTheToggle)
{
    auto net = tinyNet(24, 16, 12, 3, 5);
    auto model = CompiledModel::compile(
        net, smallChip(), compiler::DriverOptions::costAware());
    ASSERT_EQ(model->stageCount(), 1);
    EngineConfig cfg;
    cfg.replicas = 1;
    cfg.noc.enabled = true;
    InferenceEngine eng(model, cfg);
    EXPECT_FALSE(eng.nocEnabled());
    EngineRun run = eng.run(randomSamples(3, 24, 3, 7));
    EXPECT_EQ(run.merged.noc_packets, 0u);
    EXPECT_TRUE(run.merged.noc_cut_flits.empty());
}

TEST(NocEngine, ServerMetricsSurfaceTheTransportBlock)
{
    // ServerMetrics renders merged engine stats through statsJson,
    // so the transport block reaches the serving observability
    // snapshot unchanged.
    serve::ServerMetrics m;
    m.merged.noc_flits = 42;
    m.merged.noc_cut_flits = {40, 2};
    const std::string json = m.toJson();
    EXPECT_NE(json.find("\"noc_flits\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"noc_cut_flits\": [40, 2]"),
              std::string::npos);
}

} // namespace
} // namespace sushi
