/**
 * @file
 * Tests for the request-level serving layer: dynamic-batcher flush
 * rules (size / delay / drain), deadline shedding before execution
 * and late-completion accounting, queue-full admission control,
 * priority ordering under contention, drain/shutdown semantics, the
 * virtual-clock determinism property (same seed + config ==>
 * byte-identical ServerMetrics JSON across worker-thread counts and
 * repeated runs), and request-level bit-equivalence with a lone
 * SushiChip.
 */

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "chip/sushi_chip.hh"
#include "common/rng.hh"
#include "serve/load_gen.hh"
#include "serve/server.hh"
#include "snn/binarize.hh"
#include "snn/network.hh"

namespace sushi::serve {
namespace {

snn::BinarySnn
tinyNet(std::size_t input, std::size_t hidden, std::size_t output,
        int t_steps, std::uint64_t seed)
{
    snn::SnnConfig cfg;
    cfg.input = input;
    cfg.hidden = hidden;
    cfg.output = output;
    cfg.t_steps = t_steps;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, seed);
    return snn::BinarySnn::fromFloat(mlp);
}

std::vector<engine::Sample>
randomSamples(std::size_t n, std::size_t dim, int t_steps,
              std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<engine::Sample> samples(n);
    for (auto &s : samples) {
        for (int t = 0; t < t_steps; ++t) {
            std::vector<std::uint8_t> f(dim);
            for (auto &v : f)
                v = rng.chance(0.4) ? 1 : 0;
            s.push_back(std::move(f));
        }
    }
    return samples;
}

std::shared_ptr<const engine::CompiledModel>
smallModel()
{
    static std::shared_ptr<const engine::CompiledModel> model = [] {
        compiler::ChipConfig chip;
        chip.n = 8;
        chip.sc_per_npe = 10;
        return engine::CompiledModel::compile(
            tinyNet(16, 8, 4, 3, 7), chip);
    }();
    return model;
}

ServerConfig
virtualConfig(int replicas, std::size_t max_batch,
              std::int64_t max_delay_ns,
              std::size_t max_queue = 1024)
{
    ServerConfig cfg;
    cfg.engine.replicas = replicas;
    cfg.max_batch = max_batch;
    cfg.max_delay_ns = max_delay_ns;
    cfg.max_queue = max_queue;
    cfg.clock = ClockMode::Virtual;
    return cfg;
}

/** Service duration of one request on an idle virtual server. */
std::int64_t
soloServiceNs(const engine::Sample &sample)
{
    Server server(smallModel(), virtualConfig(1, 1, 0));
    auto fut = server.submitAt(0, sample);
    server.runVirtual();
    return fut.get().serviceNs();
}

TEST(ServeBatcher, FlushesOnSize)
{
    Server server(smallModel(),
                  virtualConfig(1, 4, /*max_delay=*/1'000'000'000));
    const auto samples = randomSamples(8, 16, 3, 1);
    std::vector<std::future<Response>> futs;
    for (const auto &s : samples)
        futs.push_back(server.submitAt(0, s));
    server.runVirtual();

    for (auto &f : futs) {
        const Response r = f.get();
        EXPECT_TRUE(r.ok());
        EXPECT_EQ(r.batch_size, 4);
    }
    const ServerMetrics m = server.metrics();
    EXPECT_EQ(m.accepted, 8u);
    EXPECT_EQ(m.completed, 8u);
    EXPECT_EQ(m.batches, 2u);
    EXPECT_EQ(m.flush_size, 2u);
    EXPECT_EQ(m.flush_delay, 0u);
    EXPECT_EQ(m.batch_size.bucketCount(3), 2u); // two batches of 4
}

TEST(ServeBatcher, FlushesOnDelay)
{
    const std::int64_t delay = 500;
    Server server(smallModel(), virtualConfig(1, 8, delay));
    const auto samples = randomSamples(2, 16, 3, 2);
    auto f0 = server.submitAt(0, samples[0]);
    auto f1 = server.submitAt(100, samples[1]);
    server.runVirtual();

    const Response r0 = f0.get();
    const Response r1 = f1.get();
    EXPECT_TRUE(r0.ok());
    EXPECT_TRUE(r1.ok());
    // The partial batch flushed when the OLDEST request hit the
    // queue-delay bound, carrying both requests.
    EXPECT_EQ(r0.dispatch_ns, delay);
    EXPECT_EQ(r1.dispatch_ns, delay);
    EXPECT_EQ(r0.batch_size, 2);
    const ServerMetrics m = server.metrics();
    EXPECT_EQ(m.flush_delay, 1u);
    EXPECT_EQ(m.flush_size, 0u);
}

TEST(ServeDeadline, RejectsBeforeExecution)
{
    const auto samples = randomSamples(3, 16, 3, 3);
    Server server(smallModel(), virtualConfig(1, 1, 0));

    // A occupies the replica; B's deadline passes while it queues;
    // C is dead on arrival.
    auto fa = server.submitAt(0, samples[0]);
    RequestOptions ob;
    ob.deadline_ns = 1;
    auto fb = server.submitAt(0, samples[1], ob);
    RequestOptions oc;
    oc.deadline_ns = 5;
    auto fc = server.submitAt(10, samples[2], oc);
    server.runVirtual();

    EXPECT_TRUE(fa.get().ok());
    const Response rb = fb.get();
    EXPECT_EQ(rb.rejected, Reject::DeadlineExceeded);
    EXPECT_TRUE(rb.result.counts.empty()); // never executed
    EXPECT_EQ(fc.get().rejected, Reject::DeadlineExceeded);
    const ServerMetrics m = server.metrics();
    EXPECT_EQ(m.rejected_deadline, 2u);
    EXPECT_EQ(m.completed, 1u);
    EXPECT_EQ(m.deadline_missed, 0u);
}

TEST(ServeDeadline, LateCompletionCountsAsMissed)
{
    const auto samples = randomSamples(2, 16, 3, 4);
    const std::int64_t service = soloServiceNs(samples[0]);
    ASSERT_GT(service, 1);

    // B dequeues when A's service ends and its deadline passes
    // mid-service: it completes, but late.
    Server server(smallModel(), virtualConfig(1, 1, 0));
    auto fa = server.submitAt(0, samples[0]);
    RequestOptions ob;
    ob.deadline_ns = service + 1;
    auto fb = server.submitAt(0, samples[1], ob);
    server.runVirtual();

    EXPECT_TRUE(fa.get().ok());
    const Response rb = fb.get();
    EXPECT_TRUE(rb.ok());
    EXPECT_TRUE(rb.deadline_missed);
    EXPECT_GT(rb.complete_ns, ob.deadline_ns);
    const ServerMetrics m = server.metrics();
    EXPECT_EQ(m.completed, 2u);
    EXPECT_EQ(m.deadline_missed, 1u);
    EXPECT_EQ(m.rejected_deadline, 0u);
}

TEST(ServeAdmission, QueueFullSheds)
{
    const auto samples = randomSamples(6, 16, 3, 5);
    Server server(smallModel(),
                  virtualConfig(1, 1, 0, /*max_queue=*/2));
    std::vector<std::future<Response>> futs;
    for (const auto &s : samples)
        futs.push_back(server.submitAt(0, s));
    server.runVirtual();

    std::size_t ok = 0, shed = 0;
    for (auto &f : futs) {
        const Response r = f.get();
        if (r.ok())
            ++ok;
        else if (r.rejected == Reject::QueueFull)
            ++shed;
    }
    EXPECT_EQ(ok, 2u);
    EXPECT_EQ(shed, 4u);
    const ServerMetrics m = server.metrics();
    EXPECT_EQ(m.rejected_queue_full, 4u);
    EXPECT_EQ(m.accepted, 2u);
    EXPECT_EQ(m.submitted, 6u);
}

TEST(ServePriority, HigherPriorityDispatchesFirst)
{
    const auto samples = randomSamples(4, 16, 3, 6);
    Server server(smallModel(), virtualConfig(1, 1, 0));
    const int priorities[] = {0, 1, 5, 3};
    std::vector<std::future<Response>> futs;
    for (std::size_t i = 0; i < 4; ++i) {
        RequestOptions opts;
        opts.priority = priorities[i];
        futs.push_back(server.submitAt(0, samples[i], opts));
    }
    server.runVirtual();

    std::vector<Response> rs;
    for (auto &f : futs)
        rs.push_back(f.get());
    // Contention on one replica: dispatch order follows priority
    // (5, 3, 1, 0), not submission order.
    EXPECT_LT(rs[2].dispatch_ns, rs[3].dispatch_ns);
    EXPECT_LT(rs[3].dispatch_ns, rs[1].dispatch_ns);
    EXPECT_LT(rs[1].dispatch_ns, rs[0].dispatch_ns);
}

TEST(ServePriority, TiesServeInArrivalOrder)
{
    const auto samples = randomSamples(3, 16, 3, 16);
    Server server(smallModel(), virtualConfig(1, 1, 0));
    std::vector<std::future<Response>> futs;
    for (const auto &s : samples)
        futs.push_back(server.submitAt(0, s));
    server.runVirtual();
    std::vector<Response> rs;
    for (auto &f : futs)
        rs.push_back(f.get());
    EXPECT_LE(rs[0].dispatch_ns, rs[1].dispatch_ns);
    EXPECT_LE(rs[1].dispatch_ns, rs[2].dispatch_ns);
}

TEST(ServeEquivalence, ResultsBitIdenticalToLoneChip)
{
    const auto samples = randomSamples(17, 16, 3, 8);
    ServerConfig cfg = virtualConfig(3, 4, 1000);
    Server server(smallModel(), cfg);
    LoadGenConfig lg;
    lg.rate_rps = 1e6;
    lg.requests = samples.size();
    lg.sample_pool = samples.size();
    lg.seed = 99;
    const auto arrivals = poissonArrivals(lg);
    std::vector<std::future<Response>> futs;
    for (const auto &a : arrivals)
        futs.push_back(server.submitAt(
            a.arrival_ns, samples[a.sample_index], a.opts));
    server.runVirtual();

    chip::SushiChip chip(smallModel()->chip());
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        const Response r = futs[i].get();
        ASSERT_TRUE(r.ok());
        chip.resetStats();
        const auto expect = chip.inferCounts(
            smallModel()->compiled(),
            samples[arrivals[i].sample_index]);
        EXPECT_EQ(r.result.counts, expect) << "request " << i;
    }
}

TEST(ServeDeterminism, MetricsByteIdenticalAcrossThreadCounts)
{
    const auto samples = randomSamples(12, 16, 3, 9);
    LoadGenConfig lg;
    lg.rate_rps = 2e6; // near saturation: queueing + shedding occur
    lg.requests = 150;
    lg.sample_pool = samples.size();
    lg.seed = 1234;
    lg.deadline_ns = 400'000;
    lg.priorities = 3;
    const auto arrivals = poissonArrivals(lg);

    std::string digest;
    for (unsigned threads : {1u, 2u, 8u}) {
        for (int repeat = 0; repeat < 2; ++repeat) {
            ServerConfig cfg =
                virtualConfig(4, 4, 2000, /*max_queue=*/16);
            cfg.max_threads = threads;
            Server server(smallModel(), cfg);
            for (const auto &a : arrivals)
                server.submitAt(a.arrival_ns,
                                samples[a.sample_index], a.opts);
            server.runVirtual();
            const std::string json = server.metrics().toJson();
            if (digest.empty())
                digest = json;
            EXPECT_EQ(json, digest)
                << "threads " << threads << " repeat " << repeat;
        }
    }
    // The workload actually exercised the interesting paths.
    Server probe(smallModel(), virtualConfig(4, 4, 2000, 16));
    for (const auto &a : arrivals)
        probe.submitAt(a.arrival_ns, samples[a.sample_index],
                       a.opts);
    probe.runVirtual();
    const ServerMetrics m = probe.metrics();
    EXPECT_GT(m.completed, 0u);
    EXPECT_GT(m.batches, 0u);
    EXPECT_GT(m.rejected_queue_full + m.rejected_deadline, 0u);
}

TEST(ServeDrain, VirtualDrainFlushesQueuedAndRejectsLater)
{
    const auto samples = randomSamples(3, 16, 3, 10);
    Server server(smallModel(),
                  virtualConfig(2, 8, /*max_delay=*/1'000'000'000));
    std::vector<std::future<Response>> futs;
    for (const auto &s : samples)
        futs.push_back(server.submitAt(0, s));
    server.drain(); // plays the timeline; partial batch flushes

    for (auto &f : futs)
        EXPECT_TRUE(f.get().ok());
    const ServerMetrics m = server.metrics();
    EXPECT_EQ(m.completed, 3u);
    EXPECT_GE(m.flush_drain, 1u);

    auto late = server.submit(samples[0]);
    EXPECT_EQ(late.get().rejected, Reject::ShuttingDown);
}

TEST(ServeDrain, DestructorResolvesOutstandingFutures)
{
    const auto samples = randomSamples(2, 16, 3, 11);
    std::vector<std::future<Response>> futs;
    {
        Server server(smallModel(), virtualConfig(1, 4, 1000));
        for (const auto &s : samples)
            futs.push_back(server.submitAt(0, s));
        // No runVirtual(): the destructor must drain gracefully.
    }
    for (auto &f : futs)
        EXPECT_TRUE(f.get().ok());
}

TEST(ServeRealMode, ServesTrafficAndDrainsInFlight)
{
    const auto samples = randomSamples(24, 16, 3, 12);
    ServerConfig cfg;
    cfg.engine.replicas = 2;
    cfg.max_batch = 4;
    cfg.max_delay_ns = 1'000'000; // 1 ms
    cfg.clock = ClockMode::Real;
    Server server(smallModel(), cfg);

    std::vector<std::future<Response>> futs;
    for (const auto &s : samples)
        futs.push_back(server.submit(s));
    server.drain(); // in-flight and queued requests all finish

    chip::SushiChip chip(smallModel()->chip());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Response r = futs[i].get();
        ASSERT_TRUE(r.ok()) << "request " << i;
        EXPECT_GE(r.queueNs(), 0);
        EXPECT_GE(r.serviceNs(), 0);
        chip.resetStats();
        EXPECT_EQ(r.result.counts,
                  chip.inferCounts(smallModel()->compiled(),
                                   samples[i]));
    }
    const ServerMetrics m = server.metrics();
    EXPECT_EQ(m.completed, samples.size());
    EXPECT_EQ(m.accepted, samples.size());
    EXPECT_EQ(m.merged.frames,
              static_cast<std::uint64_t>(samples.size()));

    auto late = server.submit(samples[0]);
    EXPECT_EQ(late.get().rejected, Reject::ShuttingDown);
    server.shutdown();
    server.shutdown(); // idempotent
}

TEST(ServeRealMode, PartialBatchFlushesWithoutDrain)
{
    const auto samples = randomSamples(2, 16, 3, 13);
    ServerConfig cfg;
    cfg.engine.replicas = 1;
    cfg.max_batch = 64;          // never reached
    cfg.max_delay_ns = 2'000'000; // 2 ms
    cfg.clock = ClockMode::Real;
    Server server(smallModel(), cfg);
    auto f0 = server.submit(samples[0]);
    auto f1 = server.submit(samples[1]);
    // The delay flush must fire on its own.
    EXPECT_TRUE(f0.get().ok());
    EXPECT_TRUE(f1.get().ok());
    EXPECT_GE(server.metrics().flush_delay, 1u);
}

TEST(ServeMetrics, SnapshotJsonRoundsTrip)
{
    const auto samples = randomSamples(5, 16, 3, 14);
    Server server(smallModel(), virtualConfig(2, 2, 100));
    for (const auto &s : samples)
        server.submitAt(0, s);
    server.runVirtual();
    const ServerMetrics m = server.metrics();
    const std::string json = m.toJson();
    EXPECT_NE(json.find("\"completed\": 5"), std::string::npos);
    EXPECT_NE(json.find("\"queue_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"merged_stats\""), std::string::npos);
    EXPECT_NE(json.find("\"replicas\""), std::string::npos);
    // Two snapshots of an idle server are byte-identical.
    EXPECT_EQ(json, server.metrics().toJson());
    EXPECT_GT(m.spanNs(), 0);
    EXPECT_GT(m.utilisation(0), 0.0);
}

TEST(ServeLoadGen, SchedulesAreSeedDeterministic)
{
    LoadGenConfig lg;
    lg.rate_rps = 5e5;
    lg.requests = 64;
    lg.sample_pool = 7;
    lg.seed = 42;
    lg.deadline_ns = 1000;
    lg.priorities = 4;
    const auto a = poissonArrivals(lg);
    const auto b = poissonArrivals(lg);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival_ns, b[i].arrival_ns);
        EXPECT_EQ(a[i].sample_index, b[i].sample_index);
        EXPECT_EQ(a[i].opts.priority, b[i].opts.priority);
        EXPECT_EQ(a[i].opts.deadline_ns, b[i].opts.deadline_ns);
        if (i > 0) {
            EXPECT_GE(a[i].arrival_ns, a[i - 1].arrival_ns);
        }
        EXPECT_LT(a[i].sample_index, lg.sample_pool);
        EXPECT_EQ(a[i].opts.deadline_ns,
                  a[i].arrival_ns + lg.deadline_ns);
    }
    lg.seed = 43;
    const auto c = poissonArrivals(lg);
    bool differs = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        differs |= a[i].arrival_ns != c[i].arrival_ns;
    EXPECT_TRUE(differs);
}

} // namespace
} // namespace sushi::serve
