/**
 * @file
 * Tests for the Table-1 timing-constraint machinery.
 */

#include <gtest/gtest.h>

#include "common/time.hh"
#include "sfq/cells.hh"
#include "sfq/constraints.hh"
#include "sfq/netlist.hh"
#include "sfq/simulator.hh"

namespace sushi::sfq {
namespace {

TEST(Constraints, TableMatchesPaperValues)
{
    // Paper Table 1, spot checks of every row.
    auto find = [](CellKind k, const std::string &label) -> double {
        for (const auto &r : constraintRules(k))
            if (label == r.label)
                return ticksToPs(r.min_interval);
        return -1.0;
    };
    EXPECT_DOUBLE_EQ(find(CellKind::CB, "dinA-dinA"), 19.9);
    EXPECT_DOUBLE_EQ(find(CellKind::CB, "dinA-dinB"), 5.7);
    EXPECT_DOUBLE_EQ(find(CellKind::SPL, "din-din"), 19.9);
    EXPECT_DOUBLE_EQ(find(CellKind::NDRO, "din-rst"), 39.9);
    EXPECT_DOUBLE_EQ(find(CellKind::NDRO, "rst-din"), 39.9);
    EXPECT_DOUBLE_EQ(find(CellKind::NDRO, "clk-clk"), 39.9);
    EXPECT_DOUBLE_EQ(find(CellKind::NDRO, "din-clk"), 14.81);
    EXPECT_DOUBLE_EQ(find(CellKind::NDRO, "rst-clk"), 16.61);
    EXPECT_DOUBLE_EQ(find(CellKind::DFF, "din-din"), 19.9);
    EXPECT_DOUBLE_EQ(find(CellKind::DFF, "din-clk"), 8.53);
    EXPECT_DOUBLE_EQ(find(CellKind::DFF, "clk-clk"), 19.9);
    EXPECT_DOUBLE_EQ(find(CellKind::TFFL, "clk-clk"), 39.9);
    EXPECT_DOUBLE_EQ(find(CellKind::JTL, "din-din"), 19.9);
}

TEST(Constraints, MaxConstraintPerCell)
{
    EXPECT_EQ(maxConstraint(CellKind::NDRO), psToTicks(39.9));
    EXPECT_EQ(maxConstraint(CellKind::DFF), psToTicks(19.9));
    EXPECT_EQ(maxConstraint(CellKind::DCSFQ), 0);
}

TEST(Constraints, SafeSpacingCoversLibrary)
{
    const Tick spacing = safePulseSpacing();
    EXPECT_GE(spacing, psToTicks(39.9));
    for (int k = 0; k < static_cast<int>(CellKind::kNumKinds); ++k)
        EXPECT_GE(spacing, maxConstraint(static_cast<CellKind>(k)));
}

TEST(Constraints, CheckerFlagsTooClose)
{
    ConstraintChecker c(CellKind::SPL, 1);
    EXPECT_TRUE(c.arrive(0, 0).empty());
    // 10 ps < 19.9 ps din-din: violation.
    EXPECT_FALSE(c.arrive(0, psToTicks(10.0)).empty());
}

TEST(Constraints, CheckerAcceptsExactInterval)
{
    ConstraintChecker c(CellKind::SPL, 1);
    EXPECT_TRUE(c.arrive(0, 0).empty());
    EXPECT_TRUE(c.arrive(0, psToTicks(19.9)).empty());
}

TEST(Constraints, CheckerCrossChannel)
{
    ConstraintChecker c(CellKind::NDRO, 3);
    EXPECT_TRUE(c.arrive(chan::kNdroDin, 0).empty());
    // clk 10 ps after din violates din-clk 14.81 ps.
    EXPECT_FALSE(c.arrive(chan::kNdroClk, psToTicks(10.0)).empty());
    // next clk 50 ps later is fine (clk-clk 39.9).
    EXPECT_TRUE(c.arrive(chan::kNdroClk, psToTicks(60.0)).empty());
}

TEST(Constraints, CheckerResetForgetsHistory)
{
    ConstraintChecker c(CellKind::SPL, 1);
    EXPECT_TRUE(c.arrive(0, 0).empty());
    c.reset();
    EXPECT_TRUE(c.arrive(0, psToTicks(1.0)).empty());
}

TEST(Constraints, SimulatorCountsCellViolations)
{
    Simulator sim;
    sim.setViolationPolicy(ViolationPolicy::Ignore);
    Netlist net(sim);
    Spl &spl = net.makeSpl("spl");
    PulseSink &a = net.makeSink("a");
    PulseSink &b = net.makeSink("b");
    spl.connect(0, a, 0);
    spl.connect(1, b, 0);
    spl.inject(0, 0);
    spl.inject(0, psToTicks(5.0)); // violates din-din 19.9
    sim.run();
    EXPECT_EQ(sim.violations(), 1u);
}

TEST(Constraints, NoViolationAtSafeSpacing)
{
    Simulator sim;
    sim.setViolationPolicy(ViolationPolicy::Ignore);
    Netlist net(sim);
    Ndro &n = net.makeNdro("n");
    PulseSink &s = net.makeSink("s");
    n.connect(0, s, 0);
    const Tick gap = safePulseSpacing();
    n.inject(chan::kNdroDin, 0);
    n.inject(chan::kNdroClk, gap);
    n.inject(chan::kNdroClk, 2 * gap);
    n.inject(chan::kNdroRst, 3 * gap);
    sim.run();
    EXPECT_EQ(sim.violations(), 0u);
    EXPECT_EQ(s.count(), 2u);
}

TEST(Constraints, PrintableTableComplete)
{
    auto rows = constraintTable();
    // CB 4 rules + SPL 1 + NDRO 5 + DFF 3 + TFF 1 + JTL 1 = 15 rows.
    EXPECT_EQ(rows.size(), 15u);
    for (const auto &r : rows) {
        EXPECT_FALSE(r.cell.empty());
        EXPECT_GT(r.min_ps, 0.0);
    }
}

class ViolationParamTest
    : public ::testing::TestWithParam<std::pair<double, bool>>
{
};

TEST_P(ViolationParamTest, DffDinClkBoundary)
{
    // Property sweep around the 8.53 ps din->clk constraint.
    auto [gap_ps, ok] = GetParam();
    ConstraintChecker c(CellKind::DFF, 2);
    EXPECT_TRUE(c.arrive(chan::kDffDin, 0).empty());
    std::string v = c.arrive(chan::kDffClk, psToTicks(gap_ps));
    EXPECT_EQ(v.empty(), ok) << "gap " << gap_ps << ": " << v;
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, ViolationParamTest,
    ::testing::Values(std::make_pair(1.0, false),
                      std::make_pair(8.52, false),
                      std::make_pair(8.53, true),
                      std::make_pair(8.54, true),
                      std::make_pair(100.0, true)));

} // namespace
} // namespace sushi::sfq
