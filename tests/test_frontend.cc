/**
 * @file
 * Tests for the sharded serving front-end (PR 10): RequestPool slab
 * / lane invariants, MetricsDelta fold semantics, the extended
 * determinism property (ServerMetrics::toJson() byte-identical
 * across admission_shards x max_threads, with and without the
 * resilience/chaos policies engaged), real-clock conservation under
 * an 8-thread submit hammer (runs under TSan in CI), and the
 * closed-loop load-generator contract.
 */

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "serve/load_gen.hh"
#include "serve/request_pool.hh"
#include "serve/server.hh"
#include "snn/binarize.hh"
#include "snn/network.hh"

namespace sushi::serve {
namespace {

snn::BinarySnn
tinyNet(std::size_t input, std::size_t hidden, std::size_t output,
        int t_steps, std::uint64_t seed)
{
    snn::SnnConfig cfg;
    cfg.input = input;
    cfg.hidden = hidden;
    cfg.output = output;
    cfg.t_steps = t_steps;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, seed);
    return snn::BinarySnn::fromFloat(mlp);
}

std::vector<engine::Sample>
randomSamples(std::size_t n, std::size_t dim, int t_steps,
              std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<engine::Sample> samples(n);
    for (auto &s : samples) {
        for (int t = 0; t < t_steps; ++t) {
            std::vector<std::uint8_t> f(dim);
            for (auto &v : f)
                v = rng.chance(0.4) ? 1 : 0;
            s.push_back(std::move(f));
        }
    }
    return samples;
}

std::shared_ptr<const engine::CompiledModel>
smallModel()
{
    static std::shared_ptr<const engine::CompiledModel> model = [] {
        compiler::ChipConfig chip;
        chip.n = 8;
        chip.sc_per_npe = 10;
        return engine::CompiledModel::compile(
            tinyNet(16, 8, 4, 3, 7), chip);
    }();
    return model;
}

PendingReq
poolReq(std::uint64_t id, int priority)
{
    PendingReq req;
    req.id = id;
    req.request_id = id;
    req.priority = priority;
    return req;
}

// ---------------------------------------------------------------
// RequestPool: slab + per-priority lane invariants.
// ---------------------------------------------------------------

TEST(RequestPool, PopsPriorityDescThenIdAsc)
{
    RequestPool pool;
    const int prios[] = {0, 2, 1, 2, 0, 1};
    for (std::uint64_t id = 1; id <= 6; ++id)
        pool.enqueue(poolReq(id, prios[id - 1]));
    ASSERT_EQ(pool.size(), 6u);

    const std::uint64_t want[] = {2, 4, 3, 6, 1, 5};
    for (std::uint64_t expect : want) {
        const PendingReq *peek = pool.peekBest();
        ASSERT_NE(peek, nullptr);
        EXPECT_EQ(peek->id, expect);
        EXPECT_EQ(pool.popBest().id, expect);
    }
    EXPECT_TRUE(pool.empty());
    EXPECT_EQ(pool.peekBest(), nullptr);
}

TEST(RequestPool, RemoveIfLeavesLazyLaneEntries)
{
    RequestPool pool;
    for (std::uint64_t id = 1; id <= 3; ++id)
        pool.enqueue(poolReq(id, 0));

    std::vector<std::uint64_t> removed;
    const std::size_t n = pool.removeIf(
        [](const PendingReq &r) { return r.id == 2; },
        [&](PendingReq &&r) { removed.push_back(r.id); });
    EXPECT_EQ(n, 1u);
    ASSERT_EQ(removed.size(), 1u);
    EXPECT_EQ(removed[0], 2u);
    EXPECT_EQ(pool.size(), 2u);

    // The stale lane entry of id 2 is skipped transparently.
    EXPECT_EQ(pool.popBest().id, 1u);
    EXPECT_EQ(pool.popBest().id, 3u);
    EXPECT_TRUE(pool.empty());
}

TEST(RequestPool, SlabSlotReuseDoesNotResurrectStaleEntries)
{
    RequestPool pool;
    for (std::uint64_t id = 1; id <= 3; ++id)
        pool.enqueue(poolReq(id, 0));
    // Free every slot without consuming the lane entries...
    pool.removeIf([](const PendingReq &) { return true; },
                  [](PendingReq &&) {});
    EXPECT_TRUE(pool.empty());

    // ...then reuse the slots under fresh (monotone) ids. The stale
    // entries alias the reused slots but carry the old ids, so peek
    // and pop must drop them instead of double-serving.
    pool.enqueue(poolReq(10, 0));
    pool.enqueue(poolReq(11, 1));
    ASSERT_EQ(pool.size(), 2u);
    EXPECT_EQ(pool.popBest().id, 11u);
    EXPECT_EQ(pool.popBest().id, 10u);
    EXPECT_TRUE(pool.empty());
}

TEST(RequestPool, ReenqueuedOldIdKeepsArrivalOrder)
{
    RequestPool pool;
    pool.enqueue(poolReq(10, 0));
    pool.enqueue(poolReq(12, 0));
    PendingReq popped = pool.popBest();
    EXPECT_EQ(popped.id, 10u);

    // A retry re-enqueue keeps its original id: the sorted insert
    // must restore it AHEAD of the younger id 12.
    pool.enqueue(std::move(popped));
    EXPECT_EQ(pool.popBest().id, 10u);
    EXPECT_EQ(pool.popBest().id, 12u);
}

TEST(RequestPool, ForEachLiveVisitsExactlyLiveEntries)
{
    RequestPool pool;
    for (std::uint64_t id = 1; id <= 4; ++id)
        pool.enqueue(poolReq(id, static_cast<int>(id % 2)));
    pool.removeIf([](const PendingReq &r) { return r.id == 3; },
                  [](PendingReq &&) {});

    std::uint64_t mask = 0;
    pool.forEachLive(
        [&](const PendingReq &r) { mask |= 1ull << r.id; });
    EXPECT_EQ(mask, (1ull << 1) | (1ull << 2) | (1ull << 4));
}

// ---------------------------------------------------------------
// MetricsDelta: commutative fold + reset-in-place semantics.
// ---------------------------------------------------------------

TEST(MetricsDelta, FoldIntoAddsAndResets)
{
    MetricsDelta d;
    EXPECT_TRUE(d.empty());
    d.submitted = 3;
    d.accepted = 2;
    d.rejected_queue_full = 1;
    d.completed = 2;
    d.first_submit_ns = 50;
    d.last_event_ns = 900;
    d.queue_ns.sample(10);
    d.total_ns.sample(40);
    EXPECT_FALSE(d.empty());

    ServerMetrics m;
    m.submitted = 5;
    m.first_submit_ns = 100;
    m.last_event_ns = 200;
    d.foldInto(m);

    EXPECT_EQ(m.submitted, 8u);
    EXPECT_EQ(m.accepted, 2u);
    EXPECT_EQ(m.rejected_queue_full, 1u);
    EXPECT_EQ(m.completed, 2u);
    EXPECT_EQ(m.first_submit_ns, 50);  // min merge
    EXPECT_EQ(m.last_event_ns, 900);   // max merge
    EXPECT_EQ(m.queue_ns.count(), 1u);
    EXPECT_EQ(m.total_ns.count(), 1u);

    // The delta is reset in place: a second fold is a no-op.
    EXPECT_TRUE(d.empty());
    const std::string before = m.toJson();
    d.foldInto(m);
    EXPECT_EQ(m.toJson(), before);
}

TEST(MetricsDelta, FirstSubmitMinIgnoresEmptySides)
{
    // An empty delta (first_submit_ns == -1) must not clobber an
    // established watermark, and vice versa.
    ServerMetrics m;
    m.first_submit_ns = 77;
    MetricsDelta d;
    d.submitted = 1; // non-empty so the fold runs
    d.foldInto(m);
    EXPECT_EQ(m.first_submit_ns, 77);

    ServerMetrics fresh;
    MetricsDelta d2;
    d2.submitted = 1;
    d2.first_submit_ns = 42;
    d2.foldInto(fresh);
    EXPECT_EQ(fresh.first_submit_ns, 42);
}

// ---------------------------------------------------------------
// Virtual-clock determinism across shard AND thread counts.
// ---------------------------------------------------------------

std::string
runMatrixPoint(int shards, unsigned threads, bool resilience)
{
    ServerConfig cfg;
    cfg.engine.replicas = 3;
    cfg.max_batch = 4;
    cfg.max_delay_ns = 40'000;
    cfg.max_queue = 24; // tight: exercises QueueFull shedding
    cfg.admission_shards = shards;
    cfg.max_threads = threads;
    cfg.clock = ClockMode::Virtual;
    if (resilience) {
        cfg.retry.max_retries = 2;
        cfg.retry.backoff_ns = 20'000;
        cfg.hedge.priority_floor = 2;
        cfg.hedge.delay_ns = 30'000;
        cfg.chaos.seed = 21;
        cfg.chaos.crash_rate = 0.08;
        cfg.chaos.stall_rate = 0.05;
        cfg.chaos.fault_rate = 0.04;
        cfg.chaos.crash_hold_ns = 2'000'000;
        cfg.resilience_seed = 9;
    }

    LoadGenConfig load;
    load.rate_rps = 150'000.0;
    load.requests = 400;
    load.sample_pool = 8;
    load.seed = 1234;
    load.deadline_ns = 600'000; // some arrivals shed
    load.priorities = 3;

    const auto samples = randomSamples(8, 16, 3, 5);
    Server server(smallModel(), cfg);
    std::vector<std::future<Response>> futs;
    for (const GeneratedArrival &a : poissonArrivals(load))
        futs.push_back(server.submitAt(
            a.arrival_ns, samples[a.sample_index], a.opts));
    server.runVirtual();
    for (auto &f : futs)
        f.get(); // every future resolves
    return server.metrics().toJson();
}

TEST(ServeFrontend, MetricsByteIdenticalAcrossShardsAndThreads)
{
    const std::string reference = runMatrixPoint(1, 1, false);
    EXPECT_FALSE(reference.empty());
    for (int shards : {1, 2, 8})
        for (unsigned threads : {1u, 2u, 8u}) {
            SCOPED_TRACE("shards=" + std::to_string(shards) +
                         " threads=" + std::to_string(threads));
            EXPECT_EQ(runMatrixPoint(shards, threads, false),
                      reference);
        }
}

TEST(ServeFrontend, MetricsByteIdenticalWithResilienceAndChaos)
{
    const std::string reference = runMatrixPoint(1, 1, true);
    EXPECT_FALSE(reference.empty());
    for (int shards : {1, 2, 8})
        for (unsigned threads : {1u, 2u, 8u}) {
            SCOPED_TRACE("shards=" + std::to_string(shards) +
                         " threads=" + std::to_string(threads));
            EXPECT_EQ(runMatrixPoint(shards, threads, true),
                      reference);
        }
}

// ---------------------------------------------------------------
// Shard-count plumbing.
// ---------------------------------------------------------------

TEST(ServeFrontend, AdmissionShardsDefaultToReplicaCount)
{
    ServerConfig cfg;
    cfg.engine.replicas = 3;
    cfg.clock = ClockMode::Virtual;
    Server by_default(smallModel(), cfg);
    EXPECT_EQ(by_default.admissionShards(), 3);

    cfg.admission_shards = 5;
    Server explicit_count(smallModel(), cfg);
    EXPECT_EQ(explicit_count.admissionShards(), 5);
}

// ---------------------------------------------------------------
// Real clock: 8-thread submit hammer, conservation after drain.
// (Label `serve` puts this file in the TSan CI selection.)
// ---------------------------------------------------------------

TEST(ServeFrontend, RealModeEightThreadSubmitConservation)
{
    ServerConfig cfg;
    cfg.engine.replicas = 2;
    cfg.max_batch = 4;
    cfg.max_delay_ns = 50'000;
    cfg.max_queue = 8; // small: forces QueueFull under the hammer
    cfg.clock = ClockMode::Real;
    Server server(smallModel(), cfg);

    const auto samples = randomSamples(4, 16, 3, 11);
    constexpr int kThreads = 8;
    constexpr int kPerThread = 150;
    std::vector<std::uint64_t> ok(kThreads, 0);
    std::vector<std::uint64_t> rejected(kThreads, 0);

    std::vector<std::thread> hammers;
    hammers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        hammers.emplace_back([&, t] {
            std::vector<std::future<Response>> futs;
            futs.reserve(kPerThread);
            for (int k = 0; k < kPerThread; ++k) {
                RequestOptions opts;
                opts.priority = k % 3;
                futs.push_back(server.submit(
                    samples[static_cast<std::size_t>(k) %
                            samples.size()],
                    opts));
            }
            for (auto &f : futs) {
                const Response r = f.get();
                if (r.ok())
                    ++ok[t];
                else
                    ++rejected[t];
            }
        });
    for (std::thread &h : hammers)
        h.join();
    server.drain();

    std::uint64_t total_ok = 0;
    std::uint64_t total_rejected = 0;
    for (int t = 0; t < kThreads; ++t) {
        total_ok += ok[t];
        total_rejected += rejected[t];
    }
    EXPECT_EQ(total_ok + total_rejected,
              static_cast<std::uint64_t>(kThreads * kPerThread));

    const ServerMetrics m = server.metrics();
    const std::uint64_t all_rejections =
        m.rejected_queue_full + m.rejected_deadline +
        m.rejected_shutdown + m.rejected_breaker +
        m.rejected_replica_failure;
    EXPECT_EQ(m.submitted,
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(m.submitted, m.completed + all_rejections);
    EXPECT_EQ(m.completed, total_ok);
    EXPECT_EQ(all_rejections, total_rejected);
    // No deadlines were set, so every accepted request completed.
    EXPECT_EQ(m.accepted, m.completed);
    EXPECT_GT(m.completed, 0u);
}

// ---------------------------------------------------------------
// Closed-loop load generator.
// ---------------------------------------------------------------

TEST(ServeFrontend, ClosedLoopConservesAndMatchesMetrics)
{
    ServerConfig cfg;
    cfg.engine.replicas = 2;
    cfg.max_batch = 4;
    cfg.max_delay_ns = 50'000;
    cfg.clock = ClockMode::Real;
    Server server(smallModel(), cfg);

    ClosedLoopConfig loop;
    loop.concurrency = 8;
    loop.requests = 320;
    loop.sample_pool = 4;
    loop.seed = 7;
    loop.priorities = 2;

    const auto samples = randomSamples(4, 16, 3, 13);
    const ClosedLoopReport report =
        runClosedLoop(server, samples, loop);
    server.drain();

    EXPECT_EQ(report.submitted, 320u);
    EXPECT_EQ(report.served + report.rejected, report.submitted);
    EXPECT_GT(report.wall_seconds, 0.0);

    const ServerMetrics m = server.metrics();
    EXPECT_EQ(m.submitted, report.submitted);
    EXPECT_EQ(m.completed, report.served);
    const std::uint64_t all_rejections =
        m.rejected_queue_full + m.rejected_deadline +
        m.rejected_shutdown + m.rejected_breaker +
        m.rejected_replica_failure;
    EXPECT_EQ(all_rejections, report.rejected);
}

} // namespace
} // namespace sushi::serve
