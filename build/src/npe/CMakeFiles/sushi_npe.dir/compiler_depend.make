# Empty compiler generated dependencies file for sushi_npe.
# This may be replaced when dependencies are built.
