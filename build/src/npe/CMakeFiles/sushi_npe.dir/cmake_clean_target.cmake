file(REMOVE_RECURSE
  "libsushi_npe.a"
)
