file(REMOVE_RECURSE
  "CMakeFiles/sushi_npe.dir/neuron_fsm.cc.o"
  "CMakeFiles/sushi_npe.dir/neuron_fsm.cc.o.d"
  "CMakeFiles/sushi_npe.dir/neuron_mapper.cc.o"
  "CMakeFiles/sushi_npe.dir/neuron_mapper.cc.o.d"
  "CMakeFiles/sushi_npe.dir/npe.cc.o"
  "CMakeFiles/sushi_npe.dir/npe.cc.o.d"
  "CMakeFiles/sushi_npe.dir/state_controller.cc.o"
  "CMakeFiles/sushi_npe.dir/state_controller.cc.o.d"
  "libsushi_npe.a"
  "libsushi_npe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sushi_npe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
