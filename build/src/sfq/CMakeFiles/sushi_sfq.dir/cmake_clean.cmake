file(REMOVE_RECURSE
  "CMakeFiles/sushi_sfq.dir/cell_params.cc.o"
  "CMakeFiles/sushi_sfq.dir/cell_params.cc.o.d"
  "CMakeFiles/sushi_sfq.dir/cells.cc.o"
  "CMakeFiles/sushi_sfq.dir/cells.cc.o.d"
  "CMakeFiles/sushi_sfq.dir/component.cc.o"
  "CMakeFiles/sushi_sfq.dir/component.cc.o.d"
  "CMakeFiles/sushi_sfq.dir/constraints.cc.o"
  "CMakeFiles/sushi_sfq.dir/constraints.cc.o.d"
  "CMakeFiles/sushi_sfq.dir/event_queue.cc.o"
  "CMakeFiles/sushi_sfq.dir/event_queue.cc.o.d"
  "CMakeFiles/sushi_sfq.dir/netlist.cc.o"
  "CMakeFiles/sushi_sfq.dir/netlist.cc.o.d"
  "CMakeFiles/sushi_sfq.dir/shift_register.cc.o"
  "CMakeFiles/sushi_sfq.dir/shift_register.cc.o.d"
  "CMakeFiles/sushi_sfq.dir/simulator.cc.o"
  "CMakeFiles/sushi_sfq.dir/simulator.cc.o.d"
  "CMakeFiles/sushi_sfq.dir/waveform.cc.o"
  "CMakeFiles/sushi_sfq.dir/waveform.cc.o.d"
  "libsushi_sfq.a"
  "libsushi_sfq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sushi_sfq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
