
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfq/cell_params.cc" "src/sfq/CMakeFiles/sushi_sfq.dir/cell_params.cc.o" "gcc" "src/sfq/CMakeFiles/sushi_sfq.dir/cell_params.cc.o.d"
  "/root/repo/src/sfq/cells.cc" "src/sfq/CMakeFiles/sushi_sfq.dir/cells.cc.o" "gcc" "src/sfq/CMakeFiles/sushi_sfq.dir/cells.cc.o.d"
  "/root/repo/src/sfq/component.cc" "src/sfq/CMakeFiles/sushi_sfq.dir/component.cc.o" "gcc" "src/sfq/CMakeFiles/sushi_sfq.dir/component.cc.o.d"
  "/root/repo/src/sfq/constraints.cc" "src/sfq/CMakeFiles/sushi_sfq.dir/constraints.cc.o" "gcc" "src/sfq/CMakeFiles/sushi_sfq.dir/constraints.cc.o.d"
  "/root/repo/src/sfq/event_queue.cc" "src/sfq/CMakeFiles/sushi_sfq.dir/event_queue.cc.o" "gcc" "src/sfq/CMakeFiles/sushi_sfq.dir/event_queue.cc.o.d"
  "/root/repo/src/sfq/netlist.cc" "src/sfq/CMakeFiles/sushi_sfq.dir/netlist.cc.o" "gcc" "src/sfq/CMakeFiles/sushi_sfq.dir/netlist.cc.o.d"
  "/root/repo/src/sfq/shift_register.cc" "src/sfq/CMakeFiles/sushi_sfq.dir/shift_register.cc.o" "gcc" "src/sfq/CMakeFiles/sushi_sfq.dir/shift_register.cc.o.d"
  "/root/repo/src/sfq/simulator.cc" "src/sfq/CMakeFiles/sushi_sfq.dir/simulator.cc.o" "gcc" "src/sfq/CMakeFiles/sushi_sfq.dir/simulator.cc.o.d"
  "/root/repo/src/sfq/waveform.cc" "src/sfq/CMakeFiles/sushi_sfq.dir/waveform.cc.o" "gcc" "src/sfq/CMakeFiles/sushi_sfq.dir/waveform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sushi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
