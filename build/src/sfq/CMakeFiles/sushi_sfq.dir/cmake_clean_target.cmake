file(REMOVE_RECURSE
  "libsushi_sfq.a"
)
