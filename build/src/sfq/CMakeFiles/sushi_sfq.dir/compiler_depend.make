# Empty compiler generated dependencies file for sushi_sfq.
# This may be replaced when dependencies are built.
