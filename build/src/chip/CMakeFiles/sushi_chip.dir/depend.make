# Empty dependencies file for sushi_chip.
# This may be replaced when dependencies are built.
