file(REMOVE_RECURSE
  "CMakeFiles/sushi_chip.dir/gate_sim.cc.o"
  "CMakeFiles/sushi_chip.dir/gate_sim.cc.o.d"
  "CMakeFiles/sushi_chip.dir/sampler.cc.o"
  "CMakeFiles/sushi_chip.dir/sampler.cc.o.d"
  "CMakeFiles/sushi_chip.dir/sushi_chip.cc.o"
  "CMakeFiles/sushi_chip.dir/sushi_chip.cc.o.d"
  "libsushi_chip.a"
  "libsushi_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sushi_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
