file(REMOVE_RECURSE
  "libsushi_chip.a"
)
