file(REMOVE_RECURSE
  "CMakeFiles/sushi_common.dir/logging.cc.o"
  "CMakeFiles/sushi_common.dir/logging.cc.o.d"
  "CMakeFiles/sushi_common.dir/parallel.cc.o"
  "CMakeFiles/sushi_common.dir/parallel.cc.o.d"
  "CMakeFiles/sushi_common.dir/rng.cc.o"
  "CMakeFiles/sushi_common.dir/rng.cc.o.d"
  "CMakeFiles/sushi_common.dir/stats.cc.o"
  "CMakeFiles/sushi_common.dir/stats.cc.o.d"
  "libsushi_common.a"
  "libsushi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sushi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
