file(REMOVE_RECURSE
  "libsushi_common.a"
)
