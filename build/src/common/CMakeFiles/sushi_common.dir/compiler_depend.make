# Empty compiler generated dependencies file for sushi_common.
# This may be replaced when dependencies are built.
