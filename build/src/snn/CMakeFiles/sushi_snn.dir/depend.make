# Empty dependencies file for sushi_snn.
# This may be replaced when dependencies are built.
