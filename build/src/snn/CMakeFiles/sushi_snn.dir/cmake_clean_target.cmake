file(REMOVE_RECURSE
  "libsushi_snn.a"
)
