
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/snn/binarize.cc" "src/snn/CMakeFiles/sushi_snn.dir/binarize.cc.o" "gcc" "src/snn/CMakeFiles/sushi_snn.dir/binarize.cc.o.d"
  "/root/repo/src/snn/encoder.cc" "src/snn/CMakeFiles/sushi_snn.dir/encoder.cc.o" "gcc" "src/snn/CMakeFiles/sushi_snn.dir/encoder.cc.o.d"
  "/root/repo/src/snn/model_io.cc" "src/snn/CMakeFiles/sushi_snn.dir/model_io.cc.o" "gcc" "src/snn/CMakeFiles/sushi_snn.dir/model_io.cc.o.d"
  "/root/repo/src/snn/network.cc" "src/snn/CMakeFiles/sushi_snn.dir/network.cc.o" "gcc" "src/snn/CMakeFiles/sushi_snn.dir/network.cc.o.d"
  "/root/repo/src/snn/tensor.cc" "src/snn/CMakeFiles/sushi_snn.dir/tensor.cc.o" "gcc" "src/snn/CMakeFiles/sushi_snn.dir/tensor.cc.o.d"
  "/root/repo/src/snn/train.cc" "src/snn/CMakeFiles/sushi_snn.dir/train.cc.o" "gcc" "src/snn/CMakeFiles/sushi_snn.dir/train.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sushi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
