file(REMOVE_RECURSE
  "CMakeFiles/sushi_snn.dir/binarize.cc.o"
  "CMakeFiles/sushi_snn.dir/binarize.cc.o.d"
  "CMakeFiles/sushi_snn.dir/encoder.cc.o"
  "CMakeFiles/sushi_snn.dir/encoder.cc.o.d"
  "CMakeFiles/sushi_snn.dir/model_io.cc.o"
  "CMakeFiles/sushi_snn.dir/model_io.cc.o.d"
  "CMakeFiles/sushi_snn.dir/network.cc.o"
  "CMakeFiles/sushi_snn.dir/network.cc.o.d"
  "CMakeFiles/sushi_snn.dir/tensor.cc.o"
  "CMakeFiles/sushi_snn.dir/tensor.cc.o.d"
  "CMakeFiles/sushi_snn.dir/train.cc.o"
  "CMakeFiles/sushi_snn.dir/train.cc.o.d"
  "libsushi_snn.a"
  "libsushi_snn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sushi_snn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
