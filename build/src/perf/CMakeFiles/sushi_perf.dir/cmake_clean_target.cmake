file(REMOVE_RECURSE
  "libsushi_perf.a"
)
