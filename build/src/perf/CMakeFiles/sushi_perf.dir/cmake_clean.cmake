file(REMOVE_RECURSE
  "CMakeFiles/sushi_perf.dir/baselines.cc.o"
  "CMakeFiles/sushi_perf.dir/baselines.cc.o.d"
  "CMakeFiles/sushi_perf.dir/power_model.cc.o"
  "CMakeFiles/sushi_perf.dir/power_model.cc.o.d"
  "libsushi_perf.a"
  "libsushi_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sushi_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
