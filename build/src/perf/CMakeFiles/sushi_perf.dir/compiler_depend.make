# Empty compiler generated dependencies file for sushi_perf.
# This may be replaced when dependencies are built.
