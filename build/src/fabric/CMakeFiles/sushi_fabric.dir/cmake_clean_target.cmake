file(REMOVE_RECURSE
  "libsushi_fabric.a"
)
