
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/mesh_network.cc" "src/fabric/CMakeFiles/sushi_fabric.dir/mesh_network.cc.o" "gcc" "src/fabric/CMakeFiles/sushi_fabric.dir/mesh_network.cc.o.d"
  "/root/repo/src/fabric/resource_model.cc" "src/fabric/CMakeFiles/sushi_fabric.dir/resource_model.cc.o" "gcc" "src/fabric/CMakeFiles/sushi_fabric.dir/resource_model.cc.o.d"
  "/root/repo/src/fabric/sync_baseline.cc" "src/fabric/CMakeFiles/sushi_fabric.dir/sync_baseline.cc.o" "gcc" "src/fabric/CMakeFiles/sushi_fabric.dir/sync_baseline.cc.o.d"
  "/root/repo/src/fabric/timing_model.cc" "src/fabric/CMakeFiles/sushi_fabric.dir/timing_model.cc.o" "gcc" "src/fabric/CMakeFiles/sushi_fabric.dir/timing_model.cc.o.d"
  "/root/repo/src/fabric/tree_network.cc" "src/fabric/CMakeFiles/sushi_fabric.dir/tree_network.cc.o" "gcc" "src/fabric/CMakeFiles/sushi_fabric.dir/tree_network.cc.o.d"
  "/root/repo/src/fabric/weight_structure.cc" "src/fabric/CMakeFiles/sushi_fabric.dir/weight_structure.cc.o" "gcc" "src/fabric/CMakeFiles/sushi_fabric.dir/weight_structure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/npe/CMakeFiles/sushi_npe.dir/DependInfo.cmake"
  "/root/repo/build/src/sfq/CMakeFiles/sushi_sfq.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sushi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
