file(REMOVE_RECURSE
  "CMakeFiles/sushi_fabric.dir/mesh_network.cc.o"
  "CMakeFiles/sushi_fabric.dir/mesh_network.cc.o.d"
  "CMakeFiles/sushi_fabric.dir/resource_model.cc.o"
  "CMakeFiles/sushi_fabric.dir/resource_model.cc.o.d"
  "CMakeFiles/sushi_fabric.dir/sync_baseline.cc.o"
  "CMakeFiles/sushi_fabric.dir/sync_baseline.cc.o.d"
  "CMakeFiles/sushi_fabric.dir/timing_model.cc.o"
  "CMakeFiles/sushi_fabric.dir/timing_model.cc.o.d"
  "CMakeFiles/sushi_fabric.dir/tree_network.cc.o"
  "CMakeFiles/sushi_fabric.dir/tree_network.cc.o.d"
  "CMakeFiles/sushi_fabric.dir/weight_structure.cc.o"
  "CMakeFiles/sushi_fabric.dir/weight_structure.cc.o.d"
  "libsushi_fabric.a"
  "libsushi_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sushi_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
