# Empty dependencies file for sushi_fabric.
# This may be replaced when dependencies are built.
