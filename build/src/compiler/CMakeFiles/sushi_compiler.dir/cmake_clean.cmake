file(REMOVE_RECURSE
  "CMakeFiles/sushi_compiler.dir/bitslice.cc.o"
  "CMakeFiles/sushi_compiler.dir/bitslice.cc.o.d"
  "CMakeFiles/sushi_compiler.dir/bucketing.cc.o"
  "CMakeFiles/sushi_compiler.dir/bucketing.cc.o.d"
  "CMakeFiles/sushi_compiler.dir/compile.cc.o"
  "CMakeFiles/sushi_compiler.dir/compile.cc.o.d"
  "CMakeFiles/sushi_compiler.dir/conv_lowering.cc.o"
  "CMakeFiles/sushi_compiler.dir/conv_lowering.cc.o.d"
  "CMakeFiles/sushi_compiler.dir/program.cc.o"
  "CMakeFiles/sushi_compiler.dir/program.cc.o.d"
  "CMakeFiles/sushi_compiler.dir/pulse_encoder.cc.o"
  "CMakeFiles/sushi_compiler.dir/pulse_encoder.cc.o.d"
  "libsushi_compiler.a"
  "libsushi_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sushi_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
