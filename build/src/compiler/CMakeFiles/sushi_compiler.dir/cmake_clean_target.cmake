file(REMOVE_RECURSE
  "libsushi_compiler.a"
)
