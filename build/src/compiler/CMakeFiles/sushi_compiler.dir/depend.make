# Empty dependencies file for sushi_compiler.
# This may be replaced when dependencies are built.
