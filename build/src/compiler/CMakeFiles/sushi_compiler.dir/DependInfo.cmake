
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/bitslice.cc" "src/compiler/CMakeFiles/sushi_compiler.dir/bitslice.cc.o" "gcc" "src/compiler/CMakeFiles/sushi_compiler.dir/bitslice.cc.o.d"
  "/root/repo/src/compiler/bucketing.cc" "src/compiler/CMakeFiles/sushi_compiler.dir/bucketing.cc.o" "gcc" "src/compiler/CMakeFiles/sushi_compiler.dir/bucketing.cc.o.d"
  "/root/repo/src/compiler/compile.cc" "src/compiler/CMakeFiles/sushi_compiler.dir/compile.cc.o" "gcc" "src/compiler/CMakeFiles/sushi_compiler.dir/compile.cc.o.d"
  "/root/repo/src/compiler/conv_lowering.cc" "src/compiler/CMakeFiles/sushi_compiler.dir/conv_lowering.cc.o" "gcc" "src/compiler/CMakeFiles/sushi_compiler.dir/conv_lowering.cc.o.d"
  "/root/repo/src/compiler/program.cc" "src/compiler/CMakeFiles/sushi_compiler.dir/program.cc.o" "gcc" "src/compiler/CMakeFiles/sushi_compiler.dir/program.cc.o.d"
  "/root/repo/src/compiler/pulse_encoder.cc" "src/compiler/CMakeFiles/sushi_compiler.dir/pulse_encoder.cc.o" "gcc" "src/compiler/CMakeFiles/sushi_compiler.dir/pulse_encoder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/snn/CMakeFiles/sushi_snn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sushi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
