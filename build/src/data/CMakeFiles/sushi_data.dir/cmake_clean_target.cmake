file(REMOVE_RECURSE
  "libsushi_data.a"
)
