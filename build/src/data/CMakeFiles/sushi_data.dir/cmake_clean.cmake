file(REMOVE_RECURSE
  "CMakeFiles/sushi_data.dir/dataset.cc.o"
  "CMakeFiles/sushi_data.dir/dataset.cc.o.d"
  "CMakeFiles/sushi_data.dir/synth_digits.cc.o"
  "CMakeFiles/sushi_data.dir/synth_digits.cc.o.d"
  "CMakeFiles/sushi_data.dir/synth_fashion.cc.o"
  "CMakeFiles/sushi_data.dir/synth_fashion.cc.o.d"
  "libsushi_data.a"
  "libsushi_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sushi_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
