# Empty dependencies file for sushi_data.
# This may be replaced when dependencies are built.
