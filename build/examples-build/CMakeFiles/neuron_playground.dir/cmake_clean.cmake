file(REMOVE_RECURSE
  "../examples/neuron_playground"
  "../examples/neuron_playground.pdb"
  "CMakeFiles/neuron_playground.dir/neuron_playground.cpp.o"
  "CMakeFiles/neuron_playground.dir/neuron_playground.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neuron_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
