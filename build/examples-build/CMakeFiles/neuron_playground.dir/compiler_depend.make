# Empty compiler generated dependencies file for neuron_playground.
# This may be replaced when dependencies are built.
