file(REMOVE_RECURSE
  "../examples/fabric_explorer"
  "../examples/fabric_explorer.pdb"
  "CMakeFiles/fabric_explorer.dir/fabric_explorer.cpp.o"
  "CMakeFiles/fabric_explorer.dir/fabric_explorer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
