file(REMOVE_RECURSE
  "../examples/chip_datasheet"
  "../examples/chip_datasheet.pdb"
  "CMakeFiles/chip_datasheet.dir/chip_datasheet.cpp.o"
  "CMakeFiles/chip_datasheet.dir/chip_datasheet.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_datasheet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
