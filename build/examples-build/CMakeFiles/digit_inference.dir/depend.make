# Empty dependencies file for digit_inference.
# This may be replaced when dependencies are built.
