
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/digit_inference.cpp" "examples-build/CMakeFiles/digit_inference.dir/digit_inference.cpp.o" "gcc" "examples-build/CMakeFiles/digit_inference.dir/digit_inference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chip/CMakeFiles/sushi_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/sushi_data.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/sushi_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/sushi_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/npe/CMakeFiles/sushi_npe.dir/DependInfo.cmake"
  "/root/repo/build/src/sfq/CMakeFiles/sushi_sfq.dir/DependInfo.cmake"
  "/root/repo/build/src/snn/CMakeFiles/sushi_snn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sushi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
