file(REMOVE_RECURSE
  "../examples/digit_inference"
  "../examples/digit_inference.pdb"
  "CMakeFiles/digit_inference.dir/digit_inference.cpp.o"
  "CMakeFiles/digit_inference.dir/digit_inference.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digit_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
