# Empty dependencies file for test_npe.
# This may be replaced when dependencies are built.
