file(REMOVE_RECURSE
  "CMakeFiles/test_npe.dir/test_npe.cc.o"
  "CMakeFiles/test_npe.dir/test_npe.cc.o.d"
  "test_npe"
  "test_npe.pdb"
  "test_npe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_npe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
