file(REMOVE_RECURSE
  "CMakeFiles/test_pulse_program.dir/test_pulse_program.cc.o"
  "CMakeFiles/test_pulse_program.dir/test_pulse_program.cc.o.d"
  "test_pulse_program"
  "test_pulse_program.pdb"
  "test_pulse_program[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pulse_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
