file(REMOVE_RECURSE
  "CMakeFiles/test_snn.dir/test_snn.cc.o"
  "CMakeFiles/test_snn.dir/test_snn.cc.o.d"
  "test_snn"
  "test_snn.pdb"
  "test_snn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
