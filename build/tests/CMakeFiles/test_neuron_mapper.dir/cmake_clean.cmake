file(REMOVE_RECURSE
  "CMakeFiles/test_neuron_mapper.dir/test_neuron_mapper.cc.o"
  "CMakeFiles/test_neuron_mapper.dir/test_neuron_mapper.cc.o.d"
  "test_neuron_mapper"
  "test_neuron_mapper.pdb"
  "test_neuron_mapper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neuron_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
