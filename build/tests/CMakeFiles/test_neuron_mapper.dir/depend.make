# Empty dependencies file for test_neuron_mapper.
# This may be replaced when dependencies are built.
