file(REMOVE_RECURSE
  "CMakeFiles/test_state_controller.dir/test_state_controller.cc.o"
  "CMakeFiles/test_state_controller.dir/test_state_controller.cc.o.d"
  "test_state_controller"
  "test_state_controller.pdb"
  "test_state_controller[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_state_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
