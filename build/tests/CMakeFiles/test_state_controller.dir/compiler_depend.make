# Empty compiler generated dependencies file for test_state_controller.
# This may be replaced when dependencies are built.
