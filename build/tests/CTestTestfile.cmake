# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_cells[1]_include.cmake")
include("/root/repo/build/tests/test_constraints[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_waveform[1]_include.cmake")
include("/root/repo/build/tests/test_state_controller[1]_include.cmake")
include("/root/repo/build/tests/test_npe[1]_include.cmake")
include("/root/repo/build/tests/test_fabric[1]_include.cmake")
include("/root/repo/build/tests/test_snn[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_chip[1]_include.cmake")
include("/root/repo/build/tests/test_pulse_program[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_neuron_mapper[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
