# Empty dependencies file for bench_table1_constraints.
# This may be replaced when dependencies are built.
