file(REMOVE_RECURSE
  "../bench/bench_table1_constraints"
  "../bench/bench_table1_constraints.pdb"
  "CMakeFiles/bench_table1_constraints.dir/bench_table1_constraints.cc.o"
  "CMakeFiles/bench_table1_constraints.dir/bench_table1_constraints.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
