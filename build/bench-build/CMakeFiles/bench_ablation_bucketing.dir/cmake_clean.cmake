file(REMOVE_RECURSE
  "../bench/bench_ablation_bucketing"
  "../bench/bench_ablation_bucketing.pdb"
  "CMakeFiles/bench_ablation_bucketing.dir/bench_ablation_bucketing.cc.o"
  "CMakeFiles/bench_ablation_bucketing.dir/bench_ablation_bucketing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bucketing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
