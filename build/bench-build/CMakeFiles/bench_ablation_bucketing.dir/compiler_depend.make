# Empty compiler generated dependencies file for bench_ablation_bucketing.
# This may be replaced when dependencies are built.
