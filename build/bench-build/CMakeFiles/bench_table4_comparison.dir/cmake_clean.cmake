file(REMOVE_RECURSE
  "../bench/bench_table4_comparison"
  "../bench/bench_table4_comparison.pdb"
  "CMakeFiles/bench_table4_comparison.dir/bench_table4_comparison.cc.o"
  "CMakeFiles/bench_table4_comparison.dir/bench_table4_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
