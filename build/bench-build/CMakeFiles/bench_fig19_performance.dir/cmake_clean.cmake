file(REMOVE_RECURSE
  "../bench/bench_fig19_performance"
  "../bench/bench_fig19_performance.pdb"
  "CMakeFiles/bench_fig19_performance.dir/bench_fig19_performance.cc.o"
  "CMakeFiles/bench_fig19_performance.dir/bench_fig19_performance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
