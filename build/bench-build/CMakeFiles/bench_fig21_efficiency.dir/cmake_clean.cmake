file(REMOVE_RECURSE
  "../bench/bench_fig21_efficiency"
  "../bench/bench_fig21_efficiency.pdb"
  "CMakeFiles/bench_fig21_efficiency.dir/bench_fig21_efficiency.cc.o"
  "CMakeFiles/bench_fig21_efficiency.dir/bench_fig21_efficiency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
