file(REMOVE_RECURSE
  "../bench/bench_fig16_waveforms"
  "../bench/bench_fig16_waveforms.pdb"
  "CMakeFiles/bench_fig16_waveforms.dir/bench_fig16_waveforms.cc.o"
  "CMakeFiles/bench_fig16_waveforms.dir/bench_fig16_waveforms.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_waveforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
