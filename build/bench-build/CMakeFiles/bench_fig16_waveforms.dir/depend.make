# Empty dependencies file for bench_fig16_waveforms.
# This may be replaced when dependencies are built.
