# Empty dependencies file for bench_fig20_power.
# This may be replaced when dependencies are built.
