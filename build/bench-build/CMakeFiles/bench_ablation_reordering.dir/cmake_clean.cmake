file(REMOVE_RECURSE
  "../bench/bench_ablation_reordering"
  "../bench/bench_ablation_reordering.pdb"
  "CMakeFiles/bench_ablation_reordering.dir/bench_ablation_reordering.cc.o"
  "CMakeFiles/bench_ablation_reordering.dir/bench_ablation_reordering.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
