file(REMOVE_RECURSE
  "../bench/bench_memory_wall"
  "../bench/bench_memory_wall.pdb"
  "CMakeFiles/bench_memory_wall.dir/bench_memory_wall.cc.o"
  "CMakeFiles/bench_memory_wall.dir/bench_memory_wall.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_wall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
