# Empty compiler generated dependencies file for bench_memory_wall.
# This may be replaced when dependencies are built.
