# Empty compiler generated dependencies file for bench_transmission_delay.
# This may be replaced when dependencies are built.
