file(REMOVE_RECURSE
  "../bench/bench_transmission_delay"
  "../bench/bench_transmission_delay.pdb"
  "CMakeFiles/bench_transmission_delay.dir/bench_transmission_delay.cc.o"
  "CMakeFiles/bench_transmission_delay.dir/bench_transmission_delay.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transmission_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
