file(REMOVE_RECURSE
  "../bench/bench_fig13_scaling"
  "../bench/bench_fig13_scaling.pdb"
  "CMakeFiles/bench_fig13_scaling.dir/bench_fig13_scaling.cc.o"
  "CMakeFiles/bench_fig13_scaling.dir/bench_fig13_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
