/**
 * @file
 * Mesh interconnect geometry for the multi-chip NoC co-simulation.
 *
 * A W x H mesh of NoC nodes, each hosting one chip stage behind a
 * NIC, connected by *directed* links between orthogonal neighbours
 * (a physical bidirectional channel is two directed links with
 * independent occupancy). Routing is XY dimension-order — x first,
 * then y — which is deadlock-free on a mesh and, being a pure
 * function of (src, dst), keeps every packet schedule deterministic.
 *
 * The paper's chip is a 4x4 crosspoint mesh internally; this layer
 * models the *board-level* fabric between chips, so W and H are free
 * (Fig. 13-class scaling studies sweep them).
 */

#ifndef SUSHI_NOC_TOPOLOGY_HH
#define SUSHI_NOC_TOPOLOGY_HH

#include <array>
#include <stdexcept>
#include <string>
#include <vector>

namespace sushi::noc {

/** Typed error for invalid NoC geometry or configuration. */
class NocError : public std::runtime_error
{
  public:
    explicit NocError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Node coordinate on the mesh. */
struct Coord
{
    int x = 0;
    int y = 0;

    bool operator==(const Coord &o) const
    {
        return x == o.x && y == o.y;
    }
};

/**
 * The W x H mesh: node ids are row-major (node = y * W + x), link
 * ids enumerate each node's outgoing links in a fixed direction
 * order (+x, -x, +y, -y), so the whole id space is a pure function
 * of the dimensions.
 */
class MeshTopology
{
  public:
    MeshTopology(int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }
    int numNodes() const { return width_ * height_; }
    int numLinks() const { return num_links_; }

    int nodeAt(Coord c) const;
    Coord coordOf(int node) const;

    /** Directed link id from @p from to an adjacent @p to; throws
     *  NocError if the nodes are not mesh neighbours. */
    int linkBetween(int from, int to) const;

    /** Endpoints of link @p id (for diagnostics). */
    Coord linkSource(int id) const;
    Coord linkDest(int id) const;

    /**
     * XY dimension-order route: the link ids a packet traverses from
     * @p src to @p dst (empty when src == dst). x is corrected
     * first, then y.
     */
    std::vector<int> route(int src, int dst) const;

    /** Manhattan hop count of the XY route. */
    int hopDistance(int src, int dst) const;

    /**
     * Boustrophedon (snake) node order: row 0 left-to-right, row 1
     * right-to-left, ... Consecutive nodes in this order are always
     * mesh neighbours, which is what the placement pass lays chains
     * of pipeline stages along.
     */
    std::vector<int> snakeOrder() const;

  private:
    int checkNode(int node) const;

    int width_;
    int height_;
    int num_links_ = 0;
    /** link_of_[node][dir], dir in {+x, -x, +y, -y}; -1 = no link. */
    std::vector<std::array<int, 4>> link_of_;
};

} // namespace sushi::noc

#endif // SUSHI_NOC_TOPOLOGY_HH
