#include "noc/transport.hh"

#include <algorithm>

namespace sushi::noc {

namespace {

std::vector<CutTraffic>
edgesOf(const compiler::MultiChipPlan &plan)
{
    std::vector<CutTraffic> edges;
    edges.reserve(plan.cuts.size());
    for (std::size_t c = 0; c < plan.cuts.size(); ++c)
        edges.push_back(CutTraffic{static_cast<int>(c),
                                   static_cast<int>(c) + 1,
                                   plan.cuts[c].wires});
    return edges;
}

} // namespace

NocTransport::NocTransport(const compiler::MultiChipPlan &plan,
                           const NocConfig &cfg)
    : cfg_(cfg), format_(cfg.packetFormat()),
      placement_(placeStages(plan.numChips(), edgesOf(plan),
                             cfg.mesh_width, cfg.mesh_height)),
      fabric_(MeshTopology(placement_.width, placement_.height),
              cfg)
{
    const MeshTopology &topo = fabric_.topology();
    routes_.reserve(plan.cuts.size());
    for (std::size_t c = 0; c < plan.cuts.size(); ++c) {
        routes_.push_back(topo.route(
            placement_.stage_node[c], placement_.stage_node[c + 1]));
        worst_case_cut_flits_ = std::max(
            worst_case_cut_flits_,
            format_.worstCaseFlits(plan.cuts[c].wires));
    }
    ingress_route_ = topo.route(placement_.host_node,
                                placement_.stage_node.front());
    egress_route_ = topo.route(placement_.stage_node.back(),
                               placement_.host_node);
    cut_flits_.assign(routes_.size(), 0);
}

std::uint64_t
NocTransport::worstCaseCutFlits() const
{
    return worst_case_cut_flits_;
}

void
NocTransport::beginSample()
{
    fabric_.resetSample();
    std::fill(cut_flits_.begin(), cut_flits_.end(), 0);
}

void
NocTransport::beginStep()
{
    fabric_.beginStep();
}

void
NocTransport::sendPacket(const std::vector<int> &route,
                         const std::vector<std::uint16_t> &act,
                         std::uint64_t *cut_counter)
{
    const PacketSize size = packetOf(act, format_);
    fabric_.send(route, size.flits);
    if (cut_counter != nullptr)
        *cut_counter += size.flits;
}

void
NocTransport::hostIngress(const std::vector<std::uint16_t> &act)
{
    if (cfg_.model_host_ports)
        sendPacket(ingress_route_, act, nullptr);
}

void
NocTransport::transferCut(int cut,
                          const std::vector<std::uint16_t> &act)
{
    if (cut < 0 || cut >= cuts())
        throw NocError("cut " + std::to_string(cut) +
                       " outside the plan's " +
                       std::to_string(cuts()) + " cuts");
    sendPacket(routes_[static_cast<std::size_t>(cut)], act,
               &cut_flits_[static_cast<std::size_t>(cut)]);
}

void
NocTransport::hostEgress(const std::vector<std::uint16_t> &act)
{
    if (cfg_.model_host_ports)
        sendPacket(egress_route_, act, nullptr);
}

void
NocTransport::endStep()
{
    fabric_.endStep();
}

NocSampleStats
NocTransport::finishSample()
{
    NocSampleStats stats;
    stats.packets = fabric_.packets();
    stats.flits = fabric_.totalFlits();
    stats.flit_hops = fabric_.flitHops();
    stats.hol_stall_cycles = fabric_.holStallCycles();
    stats.backpressure_stalls = fabric_.backpressureStalls();
    stats.latency_cycles = fabric_.clock().cycles;
    stats.max_step_link_flits = fabric_.maxStepLinkFlits();
    stats.latency_ps = fabric_.clock().ps();
    stats.max_link_utilisation = fabric_.maxLinkUtilisation();
    stats.cut_flits = cut_flits_;
    return stats;
}

} // namespace sushi::noc
