/**
 * @file
 * NocTransport: a MultiChipPlan's stages behind NIC adapters on the
 * mesh fabric.
 *
 * One transport instance models one replica group's board: the
 * placement pass pins every `ChipStage` to a mesh node, routes are
 * precomputed (host -> stage 0, stage s -> stage s+1 per cut, last
 * stage -> host), and each SNN time step serializes the crossing
 * activation vectors into spike packets through the shared fabric.
 *
 * The transport never touches the activation payload — it only
 * charges modelled cycles and counts congestion — so spike results
 * over the NoC are bit-identical to the ideal transport by
 * construction; only latency/energy-class statistics change. Each
 * sample starts from a reset fabric (beginSample), so a sample's
 * transport stats are independent of its shard position, exactly
 * like the chip's per-sample stats contract.
 */

#ifndef SUSHI_NOC_TRANSPORT_HH
#define SUSHI_NOC_TRANSPORT_HH

#include <cstdint>
#include <vector>

#include "compiler/multichip.hh"
#include "noc/fabric.hh"
#include "noc/placement.hh"

namespace sushi::noc {

/** One sample's transport totals (the InferenceStats payload). */
struct NocSampleStats
{
    std::uint64_t packets = 0;
    std::uint64_t flits = 0;
    std::uint64_t flit_hops = 0;
    std::uint64_t hol_stall_cycles = 0;
    std::uint64_t backpressure_stalls = 0;
    std::uint64_t latency_cycles = 0;
    /** Heaviest per-step flit load any link saw (gauge). */
    std::uint64_t max_step_link_flits = 0;
    double latency_ps = 0.0;
    double max_link_utilisation = 0.0;
    /** Flits per plan cut (index = cut index). */
    std::vector<std::uint64_t> cut_flits;
};

/** The per-replica NIC/mesh adapter of a multi-chip plan. */
class NocTransport
{
  public:
    NocTransport(const compiler::MultiChipPlan &plan,
                 const NocConfig &cfg);

    const Placement &placement() const { return placement_; }
    const MeshTopology &topology() const
    {
        return fabric_.topology();
    }
    const NocFabric &fabric() const { return fabric_; }
    int cuts() const { return static_cast<int>(routes_.size()); }

    /** Worst-case flits of the plan's heaviest cut (every wire
     *  firing) — the demand figure the bandwidth sweep compares
     *  against. */
    std::uint64_t worstCaseCutFlits() const;

    /// @name Per-sample protocol (mirrors the chip's frame loop).
    /// @{
    void beginSample();
    void beginStep();
    /** Host input frame into stage 0's NIC. */
    void hostIngress(const std::vector<std::uint16_t> &act);
    /** Activations crossing plan cut @p cut (stage cut -> cut+1). */
    void transferCut(int cut,
                     const std::vector<std::uint16_t> &act);
    /** Final-stage outputs back to the host NIC. */
    void hostEgress(const std::vector<std::uint16_t> &act);
    void endStep();
    /** Close the sample and return its transport totals. */
    NocSampleStats finishSample();
    /// @}

  private:
    void sendPacket(const std::vector<int> &route,
                    const std::vector<std::uint16_t> &act,
                    std::uint64_t *cut_counter);

    NocConfig cfg_;
    PacketFormat format_;
    Placement placement_;
    NocFabric fabric_;
    std::vector<std::vector<int>> routes_; ///< per cut
    std::vector<int> ingress_route_;       ///< host -> stage 0
    std::vector<int> egress_route_;        ///< last stage -> host
    std::vector<std::uint64_t> cut_flits_;
    std::uint64_t worst_case_cut_flits_ = 0;
};

} // namespace sushi::noc

#endif // SUSHI_NOC_TRANSPORT_HH
