#include "noc/fabric.hh"

#include <algorithm>

namespace sushi::noc {

NocFabric::NocFabric(const MeshTopology &topo, const NocConfig &cfg)
    : topo_(topo), cfg_(cfg)
{
    if (cfg_.link_latency_cycles < 0)
        throw NocError("link latency must be non-negative");
    if (cfg_.link_bandwidth_flits <= 0)
        throw NocError("link bandwidth must be positive");
    if (cfg_.nic_queue_flits <= 0)
        throw NocError("NIC queue depth must be positive");
    clock_.cycle_ps = cfg_.cycle_ps;
    links_.assign(static_cast<std::size_t>(topo_.numLinks()),
                  LinkCounters{});
    free_at_.assign(links_.size(), 0);
    step_flits_.assign(links_.size(), 0);
}

void
NocFabric::resetSample()
{
    clock_.cycles = 0;
    std::fill(links_.begin(), links_.end(), LinkCounters{});
    std::fill(free_at_.begin(), free_at_.end(), 0);
    std::fill(step_flits_.begin(), step_flits_.end(), 0);
    step_makespan_ = 0;
    step_open_ = false;
    packets_ = 0;
    total_flits_ = 0;
    flit_hops_ = 0;
    hol_stalls_ = 0;
    backpressure_stalls_ = 0;
    max_step_link_flits_ = 0;
}

void
NocFabric::beginStep()
{
    std::fill(free_at_.begin(), free_at_.end(), 0);
    std::fill(step_flits_.begin(), step_flits_.end(), 0);
    step_makespan_ = 0;
    step_open_ = true;
}

std::uint64_t
NocFabric::send(const std::vector<int> &route, std::uint64_t flits)
{
    if (!step_open_)
        throw NocError("send outside an open step");
    const auto bandwidth =
        static_cast<std::uint64_t>(cfg_.link_bandwidth_flits);
    const auto queue =
        static_cast<std::uint64_t>(cfg_.nic_queue_flits);

    // Credit-based NIC backpressure: flits past the queue window
    // each wait one cycle for a returned credit.
    const std::uint64_t over = flits > queue ? flits - queue : 0;
    backpressure_stalls_ += over;
    std::uint64_t t = over;

    for (const int id : route) {
        const auto l = static_cast<std::size_t>(id);
        const std::uint64_t start = std::max(t, free_at_[l]);
        const std::uint64_t stall = start - t;
        links_[l].hol_stall_cycles += stall;
        hol_stalls_ += stall;
        const std::uint64_t serialize =
            (flits + bandwidth - 1) / bandwidth;
        free_at_[l] = start + serialize;
        links_[l].busy_cycles += serialize;
        links_[l].flits += flits;
        step_flits_[l] += flits;
        flit_hops_ += flits;
        t = start + serialize +
            static_cast<std::uint64_t>(cfg_.link_latency_cycles);
    }

    ++packets_;
    total_flits_ += flits;
    step_makespan_ = std::max(step_makespan_, t);
    return t;
}

void
NocFabric::endStep()
{
    if (!step_open_)
        throw NocError("endStep without an open step");
    clock_.cycles += step_makespan_;
    for (const std::uint64_t f : step_flits_)
        max_step_link_flits_ = std::max(max_step_link_flits_, f);
    step_open_ = false;
}

double
NocFabric::maxLinkUtilisation() const
{
    if (clock_.cycles == 0)
        return 0.0;
    std::uint64_t busiest = 0;
    for (const LinkCounters &l : links_)
        busiest = std::max(busiest, l.busy_cycles);
    return static_cast<double>(busiest) /
           static_cast<double>(clock_.cycles);
}

} // namespace sushi::noc
