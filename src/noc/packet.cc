#include "noc/packet.hh"

#include "noc/topology.hh"

namespace sushi::noc {

int
PacketFormat::entriesPerFlit() const
{
    if (flit_payload_bits <= 0 || entry_bits <= 0)
        throw NocError("packet format needs positive flit and entry "
                       "widths");
    const int per = flit_payload_bits / entry_bits;
    return per > 0 ? per : 1;
}

std::uint64_t
PacketFormat::flitsFor(std::uint64_t entries) const
{
    const auto per = static_cast<std::uint64_t>(entriesPerFlit());
    return 1 + (entries + per - 1) / per;
}

std::uint64_t
PacketFormat::worstCaseFlits(int wires) const
{
    return flitsFor(
        static_cast<std::uint64_t>(wires > 0 ? wires : 0));
}

PacketSize
packetOf(const std::vector<std::uint16_t> &act,
         const PacketFormat &format)
{
    PacketSize size;
    for (const std::uint16_t v : act)
        size.entries += v != 0 ? 1 : 0;
    size.flits = format.flitsFor(size.entries);
    return size;
}

} // namespace sushi::noc
