#include "noc/placement.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sushi::noc {

namespace {

/** Union-find with path compression (partitionNetlist idiom). */
int
findRoot(std::vector<int> &parent, int x)
{
    while (parent[static_cast<std::size_t>(x)] != x) {
        parent[static_cast<std::size_t>(x)] =
            parent[static_cast<std::size_t>(
                parent[static_cast<std::size_t>(x)])];
        x = parent[static_cast<std::size_t>(x)];
    }
    return x;
}

} // namespace

Placement
placeStages(int n_stages, const std::vector<CutTraffic> &edges,
            int width, int height)
{
    if (n_stages <= 0)
        throw NocError("placement needs at least one stage");
    if (width <= 0 || height <= 0) {
        width = static_cast<int>(std::ceil(
            std::sqrt(static_cast<double>(n_stages))));
        height = (n_stages + width - 1) / width;
    }
    if (width * height < n_stages)
        throw NocError("mesh " + std::to_string(width) + "x" +
                       std::to_string(height) + " has " +
                       std::to_string(width * height) +
                       " nodes for " + std::to_string(n_stages) +
                       " stages");

    // Contract edges heaviest-first (ties by index, for rebuild
    // stability); a contraction concatenates the two endpoint
    // chains, committing the stages to adjacent snake slots.
    std::vector<int> parent(static_cast<std::size_t>(n_stages));
    std::iota(parent.begin(), parent.end(), 0);
    std::vector<std::vector<int>> chain(
        static_cast<std::size_t>(n_stages));
    for (int s = 0; s < n_stages; ++s)
        chain[static_cast<std::size_t>(s)] = {s};

    std::vector<std::size_t> order(edges.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t i, std::size_t j) {
                         return edges[i].weight > edges[j].weight;
                     });

    for (std::size_t e : order) {
        const CutTraffic &edge = edges[e];
        if (edge.a < 0 || edge.a >= n_stages || edge.b < 0 ||
            edge.b >= n_stages)
            throw NocError("cut edge references stage outside the "
                           "plan");
        const int ra = findRoot(parent, edge.a);
        const int rb = findRoot(parent, edge.b);
        if (ra == rb)
            continue;
        auto &ca = chain[static_cast<std::size_t>(ra)];
        auto &cb = chain[static_cast<std::size_t>(rb)];
        // Adjacency is only realizable when both endpoints sit at a
        // chain end; interior stages already committed both of their
        // snake neighbours to heavier cuts.
        const bool a_end =
            ca.front() == edge.a || ca.back() == edge.a;
        const bool b_end =
            cb.front() == edge.b || cb.back() == edge.b;
        if (!a_end || !b_end)
            continue;
        if (ca.front() == edge.a)
            std::reverse(ca.begin(), ca.end());
        if (cb.back() == edge.b)
            std::reverse(cb.begin(), cb.end());
        ca.insert(ca.end(), cb.begin(), cb.end());
        cb.clear();
        parent[static_cast<std::size_t>(rb)] = ra;
    }

    // Deterministic global order: chains sorted by their smallest
    // stage id, each oriented so its smaller endpoint leads.
    std::vector<std::vector<int> *> chains;
    for (int s = 0; s < n_stages; ++s)
        if (findRoot(parent, s) == s)
            chains.push_back(&chain[static_cast<std::size_t>(s)]);
    for (auto *c : chains)
        if (c->front() > c->back())
            std::reverse(c->begin(), c->end());
    std::stable_sort(chains.begin(), chains.end(),
                     [](const std::vector<int> *x,
                        const std::vector<int> *y) {
                         return *std::min_element(x->begin(),
                                                  x->end()) <
                                *std::min_element(y->begin(),
                                                  y->end());
                     });

    Placement placement;
    placement.width = width;
    placement.height = height;
    placement.stage_node.assign(static_cast<std::size_t>(n_stages),
                                0);
    const std::vector<int> snake =
        MeshTopology(width, height).snakeOrder();
    std::size_t slot = 0;
    for (const auto *c : chains)
        for (const int stage : *c)
            placement.stage_node[static_cast<std::size_t>(stage)] =
                snake[slot++];
    placement.host_node = 0;
    return placement;
}

} // namespace sushi::noc
