/**
 * @file
 * The deterministic discrete-event mesh fabric.
 *
 * Model (per time step of the SNN): every cut's packet is injected
 * at cycle 0 of the step and walks its XY route link by link —
 *
 *  - NIC backpressure: a packet larger than the bounded NIC queue
 *    stalls one cycle per flit over capacity before injection
 *    (credit-based flow control: past the queue's credits, flits
 *    proceed at the credit-return rate);
 *  - per link: the packet waits until the link is free (head-of-line
 *    stall cycles, counted per link), then occupies it for
 *    ceil(flits / bandwidth) serialization cycles and arrives after
 *    the link's propagation latency;
 *  - packets within a step are processed in a fixed schedule order
 *    (host ingress, cuts by index, host egress), sharing link
 *    occupancy state, so route overlap shows up as HOL stalls.
 *
 * The step's added latency is the slowest packet's completion cycle;
 * the NocClock accumulates it across steps. Everything is a pure
 * function of (topology, config, packet schedule) with no host-time
 * or RNG input, so fabric counters compose with the engine's
 * virtual-clock determinism contract: any run replays byte-
 * identically at any thread count.
 */

#ifndef SUSHI_NOC_FABRIC_HH
#define SUSHI_NOC_FABRIC_HH

#include <cstdint>
#include <vector>

#include "noc/packet.hh"
#include "noc/topology.hh"

namespace sushi::noc {

/** NoC model knobs (EngineConfig::noc). */
struct NocConfig
{
    /** Route multi-chip cut traffic over the modelled fabric. Off
     *  (the default) keeps the ideal zero-cost transport,
     *  bit-identical to the historical engine path. */
    bool enabled = false;

    /** Mesh dimensions; 0 auto-sizes to the smallest near-square
     *  mesh holding every plan stage. */
    int mesh_width = 0;
    int mesh_height = 0;

    /** Propagation cycles per link hop. */
    int link_latency_cycles = 1;

    /** Flits a link accepts per cycle (serialization rate). */
    int link_bandwidth_flits = 16;

    /** Bounded NIC queue depth in flits (credit window). */
    int nic_queue_flits = 64;

    /** Spike-packet serialization geometry. */
    int flit_payload_bits = 64;
    int entry_bits = 32;

    /** Model the host ingress (into stage 0) and egress (out of the
     *  last stage) ports at the host node's NIC, not just the
     *  inter-stage cuts. */
    bool model_host_ports = true;

    /** Fabric cycle period (50 GHz board-level SFQ clock). */
    double cycle_ps = 20.0;

    PacketFormat packetFormat() const
    {
        return PacketFormat{flit_payload_bits, entry_bits};
    }
};

/**
 * Virtual fabric clock: cycles accumulated across steps of one
 * sample, converted to modelled picoseconds for InferenceStats.
 */
struct NocClock
{
    std::uint64_t cycles = 0;
    double cycle_ps = 20.0;

    double ps() const
    {
        return static_cast<double>(cycles) * cycle_ps;
    }
};

/** Per-link congestion counters, accumulated over one sample. */
struct LinkCounters
{
    std::uint64_t flits = 0;            ///< flits carried
    std::uint64_t busy_cycles = 0;      ///< serialization occupancy
    std::uint64_t hol_stall_cycles = 0; ///< waits behind busy link
};

/** The fabric simulator. */
class NocFabric
{
  public:
    NocFabric(const MeshTopology &topo, const NocConfig &cfg);

    const MeshTopology &topology() const { return topo_; }
    const NocClock &clock() const { return clock_; }

    /** Forget all per-sample state (clock, counters, step state). */
    void resetSample();

    /** Open one SNN time step: link occupancy restarts at cycle 0. */
    void beginStep();

    /**
     * Send @p flits along @p route within the open step.
     * @return the packet's completion cycle within the step.
     */
    std::uint64_t send(const std::vector<int> &route,
                       std::uint64_t flits);

    /** Close the step: fold its makespan into the clock. */
    void endStep();

    /// @name Sample-scope counters.
    /// @{
    std::uint64_t packets() const { return packets_; }
    std::uint64_t totalFlits() const { return total_flits_; }
    std::uint64_t flitHops() const { return flit_hops_; }
    std::uint64_t holStallCycles() const { return hol_stalls_; }
    std::uint64_t backpressureStalls() const
    {
        return backpressure_stalls_;
    }
    /** Heaviest per-step flit load any single link saw. */
    std::uint64_t maxStepLinkFlits() const
    {
        return max_step_link_flits_;
    }
    const LinkCounters &link(int id) const
    {
        return links_[static_cast<std::size_t>(id)];
    }
    /** Worst link's busy fraction of the accumulated clock. */
    double maxLinkUtilisation() const;
    /// @}

  private:
    MeshTopology topo_;
    NocConfig cfg_;
    NocClock clock_;

    std::vector<LinkCounters> links_;
    /** Cycle each link frees up within the open step. */
    std::vector<std::uint64_t> free_at_;
    /** Flits each link carried within the open step. */
    std::vector<std::uint64_t> step_flits_;
    std::uint64_t step_makespan_ = 0;
    bool step_open_ = false;

    std::uint64_t packets_ = 0;
    std::uint64_t total_flits_ = 0;
    std::uint64_t flit_hops_ = 0;
    std::uint64_t hol_stalls_ = 0;
    std::uint64_t backpressure_stalls_ = 0;
    std::uint64_t max_step_link_flits_ = 0;
};

} // namespace sushi::noc

#endif // SUSHI_NOC_FABRIC_HH
