/**
 * @file
 * Stage-to-mesh placement: assign each chip stage of a multi-chip
 * plan to a NoC node so the heaviest inter-stage traffic travels the
 * fewest hops.
 *
 * The pass reuses the union-find contraction idiom of
 * `sfq::partitionNetlist` / `compiler::splitLayersUnderBudget`:
 * every stage starts as its own chain, then cut edges are contracted
 * heaviest-traffic-first (ties by edge index) whenever both
 * endpoints sit at the ends of their chains — the merge concatenates
 * the chains so the two stages become physical neighbours. The final
 * chains are laid along the mesh's boustrophedon (snake) order,
 * where consecutive nodes are always adjacent, so every contracted
 * edge gets hop distance 1.
 *
 * Everything is a pure function of (stage count, edge list, mesh
 * dims): the placement — and therefore every packet route — is
 * deterministic across rebuilds and thread counts.
 */

#ifndef SUSHI_NOC_PLACEMENT_HH
#define SUSHI_NOC_PLACEMENT_HH

#include <vector>

#include "noc/topology.hh"

namespace sushi::noc {

/** One weighted traffic edge between two stages. */
struct CutTraffic
{
    int a = 0;       ///< stage index
    int b = 0;       ///< stage index
    long weight = 0; ///< wires (worst-case pulses per step)
};

/** The placement result. */
struct Placement
{
    int width = 0;  ///< mesh width actually used
    int height = 0; ///< mesh height actually used
    /** Mesh node id per stage. */
    std::vector<int> stage_node;
    /** Node whose NIC carries the host ingress/egress port. */
    int host_node = 0;
};

/**
 * Place @p n_stages stages connected by @p edges onto a mesh.
 * Dimensions of 0 auto-size to the smallest near-square mesh with
 * enough nodes; explicit dimensions must fit every stage (throws
 * NocError otherwise).
 */
Placement placeStages(int n_stages,
                      const std::vector<CutTraffic> &edges,
                      int width = 0, int height = 0);

} // namespace sushi::noc

#endif // SUSHI_NOC_PLACEMENT_HH
