/**
 * @file
 * Spike-packet format: how one time step's activations crossing an
 * inter-chip cut serialize into link flits.
 *
 * A packet carries the nonzero pulse counts of one activation
 * vector, as (wire index, count) entries in ascending wire order —
 * the deterministic order guaranteed by `InterChipCut`'s sorted wire
 * list, so the flit schedule of a rebuilt plan is byte-stable. Every
 * packet pays one header flit (cut id, time step, entry count); the
 * payload packs `entry_bits`-wide entries into `flit_payload_bits`
 * flits. An all-silent step still sends the header — the downstream
 * stage needs the step boundary either way.
 */

#ifndef SUSHI_NOC_PACKET_HH
#define SUSHI_NOC_PACKET_HH

#include <cstdint>
#include <vector>

namespace sushi::noc {

/** Serialization geometry of the spike-packet format. */
struct PacketFormat
{
    /** Payload bits per flit. */
    int flit_payload_bits = 64;
    /** Bits per (wire index, pulse count) entry. */
    int entry_bits = 32;

    /** Entries one flit carries (at least one). */
    int entriesPerFlit() const;

    /** Flits for @p entries payload entries, header included. */
    std::uint64_t flitsFor(std::uint64_t entries) const;

    /**
     * Worst-case flits of a cut carrying @p wires lines (every wire
     * fires): the per-step link demand the scaling bench compares
     * bandwidth against.
     */
    std::uint64_t worstCaseFlits(int wires) const;
};

/** Flit accounting of one serialized activation vector. */
struct PacketSize
{
    std::uint64_t entries = 0; ///< nonzero wires
    std::uint64_t flits = 0;   ///< header + payload flits
};

/** Serialize @p act (per-wire pulse counts) under @p format. */
PacketSize packetOf(const std::vector<std::uint16_t> &act,
                    const PacketFormat &format);

} // namespace sushi::noc

#endif // SUSHI_NOC_PACKET_HH
