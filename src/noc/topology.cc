#include "noc/topology.hh"

#include <cstdlib>

namespace sushi::noc {

namespace {

/** Direction index in the fixed enumeration order. */
enum Dir { PlusX = 0, MinusX = 1, PlusY = 2, MinusY = 3 };

} // namespace

MeshTopology::MeshTopology(int width, int height)
    : width_(width), height_(height)
{
    if (width <= 0 || height <= 0)
        throw NocError("mesh dimensions must be positive, got " +
                       std::to_string(width) + "x" +
                       std::to_string(height));
    link_of_.assign(static_cast<std::size_t>(numNodes()),
                    {-1, -1, -1, -1});
    for (int y = 0; y < height_; ++y) {
        for (int x = 0; x < width_; ++x) {
            auto &links =
                link_of_[static_cast<std::size_t>(y * width_ + x)];
            if (x + 1 < width_)
                links[PlusX] = num_links_++;
            if (x > 0)
                links[MinusX] = num_links_++;
            if (y + 1 < height_)
                links[PlusY] = num_links_++;
            if (y > 0)
                links[MinusY] = num_links_++;
        }
    }
}

int
MeshTopology::checkNode(int node) const
{
    if (node < 0 || node >= numNodes())
        throw NocError("node " + std::to_string(node) +
                       " outside the " + std::to_string(width_) +
                       "x" + std::to_string(height_) + " mesh");
    return node;
}

int
MeshTopology::nodeAt(Coord c) const
{
    if (c.x < 0 || c.x >= width_ || c.y < 0 || c.y >= height_)
        throw NocError("coordinate (" + std::to_string(c.x) + ", " +
                       std::to_string(c.y) + ") outside the " +
                       std::to_string(width_) + "x" +
                       std::to_string(height_) + " mesh");
    return c.y * width_ + c.x;
}

Coord
MeshTopology::coordOf(int node) const
{
    checkNode(node);
    return Coord{node % width_, node / width_};
}

int
MeshTopology::linkBetween(int from, int to) const
{
    const Coord a = coordOf(from);
    const Coord b = coordOf(to);
    const int dx = b.x - a.x;
    const int dy = b.y - a.y;
    int dir = -1;
    if (dy == 0 && dx == 1)
        dir = PlusX;
    else if (dy == 0 && dx == -1)
        dir = MinusX;
    else if (dx == 0 && dy == 1)
        dir = PlusY;
    else if (dx == 0 && dy == -1)
        dir = MinusY;
    if (dir < 0)
        throw NocError("nodes " + std::to_string(from) + " and " +
                       std::to_string(to) +
                       " are not mesh neighbours");
    return link_of_[static_cast<std::size_t>(from)]
                   [static_cast<std::size_t>(dir)];
}

Coord
MeshTopology::linkSource(int id) const
{
    for (int node = 0; node < numNodes(); ++node)
        for (int d = 0; d < 4; ++d)
            if (link_of_[static_cast<std::size_t>(node)]
                        [static_cast<std::size_t>(d)] == id)
                return coordOf(node);
    throw NocError("unknown link id " + std::to_string(id));
}

Coord
MeshTopology::linkDest(int id) const
{
    for (int node = 0; node < numNodes(); ++node)
        for (int d = 0; d < 4; ++d)
            if (link_of_[static_cast<std::size_t>(node)]
                        [static_cast<std::size_t>(d)] == id) {
                Coord c = coordOf(node);
                if (d == PlusX)
                    ++c.x;
                else if (d == MinusX)
                    --c.x;
                else if (d == PlusY)
                    ++c.y;
                else
                    --c.y;
                return c;
            }
    throw NocError("unknown link id " + std::to_string(id));
}

std::vector<int>
MeshTopology::route(int src, int dst) const
{
    checkNode(src);
    checkNode(dst);
    std::vector<int> links;
    Coord at = coordOf(src);
    const Coord to = coordOf(dst);
    while (at.x != to.x) {
        const int next_x = at.x + (to.x > at.x ? 1 : -1);
        links.push_back(
            linkBetween(nodeAt(at), nodeAt(Coord{next_x, at.y})));
        at.x = next_x;
    }
    while (at.y != to.y) {
        const int next_y = at.y + (to.y > at.y ? 1 : -1);
        links.push_back(
            linkBetween(nodeAt(at), nodeAt(Coord{at.x, next_y})));
        at.y = next_y;
    }
    return links;
}

int
MeshTopology::hopDistance(int src, int dst) const
{
    const Coord a = coordOf(src);
    const Coord b = coordOf(dst);
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

std::vector<int>
MeshTopology::snakeOrder() const
{
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(numNodes()));
    for (int y = 0; y < height_; ++y) {
        if (y % 2 == 0)
            for (int x = 0; x < width_; ++x)
                order.push_back(nodeAt(Coord{x, y}));
        else
            for (int x = width_ - 1; x >= 0; --x)
                order.push_back(nodeAt(Coord{x, y}));
    }
    return order;
}

} // namespace sushi::noc
