#include "npe/neuron_mapper.hh"

#include "common/logging.hh"

namespace sushi::npe {

NeuronMapper::NeuronMapper(int threshold, int rising, int falling,
                           int num_sc)
    : threshold_(threshold), rising_(rising), falling_(falling),
      num_states_(neuronStateBudget(threshold, rising, falling)),
      npe_(num_sc),
      fire_state_(threshold + 1 + rising)
{
    sushi_assert(npe_.numStates() >=
                 static_cast<std::uint64_t>(num_states_));
    // Pre-load so that the increment *into* r_R overflows the final
    // SC: P + fire_state = 2^K.
    npe_.rst();
    npe_.write(npe_.numStates() -
               static_cast<std::uint64_t>(fire_state_));
}

std::uint64_t
NeuronMapper::counterFor(int s) const
{
    const std::uint64_t p =
        npe_.numStates() - static_cast<std::uint64_t>(fire_state_);
    if (!wrapped_)
        return p + static_cast<std::uint64_t>(s);
    return static_cast<std::uint64_t>(s - fire_state_);
}

int
NeuronMapper::linearState() const
{
    const std::uint64_t p =
        npe_.numStates() - static_cast<std::uint64_t>(fire_state_);
    if (!wrapped_)
        return static_cast<int>(npe_.value() - p);
    return static_cast<int>(npe_.value()) + fire_state_;
}

bool
NeuronMapper::stimulate(Stimulus stim)
{
    const int s = linearState();
    bool fired = false;

    auto up = [&] {
        npe_.setPolarity(Polarity::Excitatory);
        return npe_.in();
    };
    auto down = [&] {
        npe_.setPolarity(Polarity::Inhibitory);
        npe_.in();
    };

    if (s <= threshold_) {
        // Below-threshold phase.
        if (stim == Stimulus::Spike) {
            if (s < threshold_)
                up(); // delta(b_i, spike) = b_{i+1}
        } else {
            if (s == threshold_) {
                up(); // delta(b_T, time) = r0
            } else if (s > 0) {
                down(); // failed-initiation decay
            }
        }
    } else if (s < fire_state_) {
        // Rising phase; spikes are refractory-ignored.
        if (stim == Stimulus::Time) {
            fired = up();
            if (fired) {
                // The overflow re-based the counter at r_R.
                wrapped_ = true;
                ++spikes_;
            }
        }
    } else if (s < num_states_ - 1) {
        // r_R and the falling phase walk forward on time.
        if (stim == Stimulus::Time)
            up();
    } else {
        // f_F -> b0: the refractory walk ends; re-base the counter
        // with the rst -> write batch the chip performs between
        // input batches anyway (Sec. 5.2).
        if (stim == Stimulus::Time) {
            wrapped_ = false; // back to pre-fire representation
            npe_.rst();
            npe_.write(counterFor(0)); // P: the resting state b0
        }
    }
    return fired;
}

} // namespace sushi::npe
