/**
 * @file
 * The neuromorphic processing element (NPE), paper Sec. 4.1.2/4.1.3.
 *
 * An NPE is a serial chain of K state controllers (Fig. 9). Because
 * each SC emits its out pulse on exactly one flip direction — set1
 * arms the 1->0 (carry) flip, set0 the 0->1 (borrow) flip — the chain
 * behaves as an asynchronous K-bit ripple counter that counts *up*
 * when all SCs are armed with set1 and *down* when armed with set0.
 * This is how SUSHI realises the two weight polarities on the neuron
 * ("the polarity of the weights is ... distinguished when the weights
 * reach the neuron, through the set channels", Sec. 4.2.1).
 *
 * Integrate-and-fire thresholding comes for free: the write channels
 * pre-load the counter with 2^K - theta, so the carry pulse out of
 * the final SC — the NPE's serial `out` — appears exactly when the
 * accumulated input count crosses theta. The SCs' state-preserving
 * ability carries partial sums across bit-slices with no memory
 * (Sec. 5.3).
 */

#ifndef SUSHI_NPE_NPE_HH
#define SUSHI_NPE_NPE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "npe/state_controller.hh"

namespace sushi::npe {

/** Counting direction, i.e. weight polarity at the neuron. */
enum class Polarity
{
    Excitatory, ///< set1 on all SCs: input pulses count up
    Inhibitory, ///< set0 on all SCs: input pulses count down
};

/**
 * Behavioural NPE: the fast model used for whole-network inference.
 *
 * Tracks the exact per-SC bit states so it can be co-verified against
 * the gate-level NpeGate.
 */
class Npe
{
  public:
    /** @param num_sc chain length K (2^K states). */
    explicit Npe(int num_sc);

    /** Number of SCs in the chain. */
    int numSc() const { return static_cast<int>(scs_.size()); }

    /** Total representable states, 2^K. */
    std::uint64_t numStates() const
    {
        return std::uint64_t{1} << numSc();
    }

    /** Apply set0/set1 to every SC (channels bound together). */
    void setPolarity(Polarity p);
    Polarity polarity() const { return polarity_; }

    /**
     * Asynchronous reset of every SC.
     * @return the counter value that was read out (one read pulse
     *         per SC that held a 1).
     */
    std::uint64_t rst();

    /**
     * Pre-load the counter (per-SC writes). Must follow rst: panics
     * if any SC already holds a 1.
     */
    void write(std::uint64_t value);

    /**
     * One input pulse: ripple through the chain.
     * @return true if the final SC emitted a pulse (IF spike).
     */
    bool in();

    /**
     * Deliver @p count input pulses at once. Bit-exact with calling
     * in() @p count times (including wrap-around spikes), but O(1):
     * the fast path for whole-network inference.
     * @return the number of spikes emitted from the final SC.
     */
    std::uint64_t addPulses(std::uint64_t count);

    /** Current counter value (LSB = SC0). */
    std::uint64_t value() const;

    /** Per-SC states (index 0 = LSB). */
    std::vector<bool> states() const;

    /** Total spikes emitted since construction. */
    std::uint64_t spikesEmitted() const { return spikes_; }

    /** Total input pulses received since construction. */
    std::uint64_t pulsesReceived() const { return pulses_in_; }

  private:
    std::vector<StateController> scs_;
    Polarity polarity_ = Polarity::Excitatory;
    std::uint64_t spikes_ = 0;
    std::uint64_t pulses_in_ = 0;
};

/**
 * Gate-level NPE: a chain of ScGate netlists, with rst/set0/set1
 * distributed over splitter trees (the channels "can be arbitrarily
 * bound together", Sec. 4.1.3) and individual write channels.
 */
/** NpeGate construction options. */
struct NpeGateOptions
{
    /** JTL stages on each SC-to-SC serial link. */
    int link_stages = 1;
    /** Leave the chain input to be wired externally (fabric). */
    bool external_in = false;
    /** Leave the spike output to be wired externally (fabric). */
    bool external_out = false;
};

class NpeGate
{
  public:
    using Options = NpeGateOptions;

    /**
     * @param net     netlist to build into
     * @param name    instance name
     * @param num_sc  chain length
     * @param opts    wiring options
     */
    NpeGate(sfq::Netlist &net, const std::string &name, int num_sc,
            Options opts = {});

    int numSc() const { return static_cast<int>(scs_.size()); }

    /// @name Drive the bound control channels / per-SC channels.
    /// @{
    void injectIn(Tick when);
    void injectRst(Tick when);
    void injectSet0(Tick when);
    void injectSet1(Tick when);
    void injectWrite(int sc_index, Tick when);
    /// @}

    /** The chain input port (for wiring from a network fabric). */
    sfq::Component &inPort();
    int inChan() const { return ScGate::kInChan; }

    /**
     * Connect the spike output onward (external_out mode only;
     * otherwise the output is captured by outSink()).
     */
    void connectOut(sfq::Component &dst, int port, int jtl_stages = 0);

    /** Sink capturing the NPE's spike output (panics in
     *  external_out mode). */
    sfq::PulseSink &outSink();

    /** Sink capturing SC @p i's read channel. */
    sfq::PulseSink &readSink(int i) { return *read_sinks_[i]; }

    /** Decode the current counter value from the SC states. */
    std::uint64_t value() const;

    /** Per-SC stored bits. */
    std::vector<bool> states() const;

  private:
    std::vector<std::unique_ptr<ScGate>> scs_;
    sfq::PulseSource *in_src_;
    sfq::PulseSource *rst_src_;
    sfq::PulseSource *set0_src_;
    sfq::PulseSource *set1_src_;
    std::vector<sfq::PulseSource *> write_srcs_;
    sfq::PulseSink *out_sink_;
    std::vector<sfq::PulseSink *> read_sinks_;
};

} // namespace sushi::npe

#endif // SUSHI_NPE_NPE_HH
