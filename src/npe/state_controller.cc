#include "npe/state_controller.hh"

#include "common/logging.hh"
#include "sfq/constraints.hh"

namespace sushi::npe {

using sfq::chan::kNdroClk;
using sfq::chan::kNdroDin;
using sfq::chan::kNdroRst;

bool
StateController::in()
{
    state_ = !state_;
    if (state_) // 0 -> 1 flip, TFFL path
        return arm_ == ScArm::Rise;
    // 1 -> 0 flip, TFFR path
    return arm_ == ScArm::Fall;
}

bool
StateController::rst()
{
    arm_ = ScArm::None;
    const bool read = state_;
    state_ = false;
    return read;
}

void
StateController::write()
{
    if (state_)
        sushi_panic("SC write while state is 1: write must follow rst");
    state_ = true;
}

ScGate::ScGate(sfq::Netlist &net, const std::string &name)
{
    auto n = [&name](const char *suffix) { return name + "." + suffix; };

    cb_in_ = &net.makeCb3(n("cb_in"));
    spl_in_ = &net.makeSpl(n("spl_in"));
    tffl_ = &net.makeTffl(n("tffl"));
    tffr_ = &net.makeTffr(n("tffr"));
    spl_l_ = &net.makeSpl(n("spl_l"));
    spl_r_ = &net.makeSpl(n("spl_r"));
    ndro0_ = &net.makeNdro(n("ndro0"));
    ndro1_ = &net.makeNdro(n("ndro1"));
    ndro2_ = &net.makeNdro(n("ndro2"));
    cb_out_ = &net.makeCb(n("cb_out"));
    spl_s0_ = &net.makeSpl(n("spl_s0"));
    spl_s1_ = &net.makeSpl(n("spl_s1"));
    spl_rst_ = &net.makeSpl3(n("spl_rst"));
    spl_read_ = &net.makeSpl3(n("spl_read"));
    cb_r0_ = &net.makeCb(n("cb_r0"));
    cb_r1_ = &net.makeCb(n("cb_r1"));
    cb_n2rst_ = &net.makeCb(n("cb_n2rst"));

    // Input merge (in / write / toggle-back) feeding both TFFs.
    net.connectWire(*cb_in_, 0, *spl_in_, 0);
    net.connectWire(*spl_in_, 0, *tffl_, 0);
    net.connectWire(*spl_in_, 1, *tffr_, 0);

    // Rising flip: TFFL -> armed NDRO0 -> out; mirror set.
    net.connectWire(*tffl_, 0, *spl_l_, 0);
    net.connectWire(*spl_l_, 0, *ndro0_, kNdroClk);
    net.connectWire(*spl_l_, 1, *ndro2_, kNdroDin);

    // Falling flip: TFFR -> armed NDRO1 -> out; mirror clear.
    net.connectWire(*tffr_, 0, *spl_r_, 0);
    net.connectWire(*spl_r_, 0, *ndro1_, kNdroClk);
    net.connectWire(*spl_r_, 1, *cb_n2rst_, 0);

    // Flip outputs merge onto the serial out channel.
    net.connectWire(*ndro0_, 0, *cb_out_, 0);
    net.connectWire(*ndro1_, 0, *cb_out_, 1);

    // set0 arms NDRO0 and disarms NDRO1; set1 the reverse. The rst
    // channel also clears both, so each NDRO's rst input is a merge.
    net.connectWire(*spl_s0_, 0, *ndro0_, kNdroDin);
    net.connectWire(*spl_s0_, 1, *cb_r1_, 0);
    net.connectWire(*spl_s1_, 0, *ndro1_, kNdroDin);
    net.connectWire(*spl_s1_, 1, *cb_r0_, 0);
    net.connectWire(*spl_rst_, 0, *cb_r0_, 1);
    net.connectWire(*spl_rst_, 1, *cb_r1_, 1);
    net.connectWire(*cb_r0_, 0, *ndro0_, kNdroRst);
    net.connectWire(*cb_r1_, 0, *ndro1_, kNdroRst);

    // rst also reads the NDRO2 state mirror. Its output (a pulse iff
    // the state is 1) fans out to: the read channel, the toggle-back
    // path that returns the TFFs to 0, and NDRO2's own reset. Two
    // JTL stages delay the toggle-back so the out-path NDROs are
    // already disarmed when the TFFR fires (no spurious out pulse).
    net.connectWire(*spl_rst_, 2, *ndro2_, kNdroClk, 1);
    net.connectWire(*ndro2_, 0, *spl_read_, 0);
    net.connectWire(*spl_read_, 1, *cb_in_, 2, 2);
    net.connectWire(*spl_read_, 2, *cb_n2rst_, 1);
    net.connectWire(*cb_n2rst_, 0, *ndro2_, kNdroRst);
    // spl_read_ output 0 is the external read channel.
}

void
ScGate::connectOut(sfq::Component &dst, int port, int jtl_stages)
{
    cb_out_->connect(0, dst, port,
                     jtl_stages *
                         sfq::cellParams(sfq::CellKind::JTL).delay);
}

void
ScGate::connectRead(sfq::Component &dst, int port, int jtl_stages)
{
    spl_read_->connect(0, dst, port,
                       jtl_stages *
                           sfq::cellParams(sfq::CellKind::JTL).delay);
}

bool
ScGate::state() const
{
    // Both TFFs always toggle together; either holds the SC state.
    return tffl_->state();
}

ScArm
ScGate::arm() const
{
    if (ndro0_->state() && ndro1_->state())
        sushi_panic("SC %s: both NDROs armed", tffl_->name().c_str());
    if (ndro0_->state())
        return ScArm::Rise;
    if (ndro1_->state())
        return ScArm::Fall;
    return ScArm::None;
}

long
scLogicJjs()
{
    using sfq::CellKind;
    using sfq::cellParams;
    return cellParams(CellKind::CB3).jjs +
           4 * cellParams(CellKind::CB).jjs +
           5 * cellParams(CellKind::SPL).jjs +
           2 * cellParams(CellKind::SPL3).jjs +
           cellParams(CellKind::TFFL).jjs +
           cellParams(CellKind::TFFR).jjs +
           3 * cellParams(CellKind::NDRO).jjs;
}

} // namespace sushi::npe
