/**
 * @file
 * The superconducting state controller (SC), paper Sec. 4.1.1/4.1.3.
 *
 * The SC is the minimal asynchronous element of the NPE (Fig. 4/5/8):
 * a one-bit state held in a TFFL/TFFR pair, with NDRO-armed flip
 * outputs and an NDRO state mirror for asynchronous reset / read /
 * write. Channels (Fig. 8(a)):
 *
 *   in    flips the state; emits an `out` pulse on the 0->1 flip when
 *         NDRO0 is armed (set0) or on the 1->0 flip when NDRO1 is
 *         armed (set1)
 *   set0 / set1  arm one flip direction and disarm the other
 *                (mutually exclusive, Sec. 4.1.3)
 *   rst   disarms both outputs, reads the state out on the `read`
 *         channel (Sec. 5.2: "the read pulse output is triggered by
 *         the rst pulse and aligned with it") and clears the state
 *   write flips the state 0 -> 1; per the asynchronous timing rules
 *         it must follow a rst, so the state is known to be 0
 *
 * Both a behavioural model and a gate-level netlist (cells of Fig.
 * 8(b)) are provided; tests and the Fig. 16 bench co-verify them.
 */

#ifndef SUSHI_NPE_STATE_CONTROLLER_HH
#define SUSHI_NPE_STATE_CONTROLLER_HH

#include <string>

#include "sfq/netlist.hh"

namespace sushi::npe {

/** Which flip direction produces an output pulse. */
enum class ScArm
{
    None,   ///< both NDROs clear (after rst, before set)
    Rise,   ///< set0: pulse on the 0 -> 1 flip (TFFL path)
    Fall,   ///< set1: pulse on the 1 -> 0 flip (TFFR path)
};

/**
 * Behavioural state controller.
 *
 * Pure FSM, no simulator required; used by the fast NPE model and as
 * the reference in gate-level equivalence tests.
 */
class StateController
{
  public:
    /** Apply an `in` pulse. @return true if an out pulse is emitted. */
    bool in();

    /** Arm the rise (set0) output, disarming the fall output. */
    void set0() { arm_ = ScArm::Rise; }

    /** Arm the fall (set1) output, disarming the rise output. */
    void set1() { arm_ = ScArm::Fall; }

    /**
     * Asynchronous reset: disarms both outputs and clears the state.
     * @return true if a pulse is emitted on the `read` channel
     *         (i.e. the state was 1).
     */
    bool rst();

    /** Write: flip 0 -> 1. Panics if the state is not 0 (the "write
     *  must follow rst" rule was violated). */
    void write();

    bool state() const { return state_; }
    ScArm arm() const { return arm_; }

  private:
    bool state_ = false;
    ScArm arm_ = ScArm::None;
};

/**
 * Gate-level state controller: builds the Fig. 8(b) cell netlist in
 * a Netlist and exposes the channel ports.
 *
 * Inputs are driven with inject* (or wired from other components via
 * the exposed cells); `out` must be connected onward with
 * connectOut(), and `read` with connectRead() (or left dangling).
 */
class ScGate
{
  public:
    ScGate(sfq::Netlist &net, const std::string &name);

    /// @name Drive a channel at absolute time @p when.
    /// @{
    void injectIn(Tick when) { cb_in_->inject(0, when); }
    void injectWrite(Tick when) { cb_in_->inject(1, when); }
    void injectSet0(Tick when) { spl_s0_->inject(0, when); }
    void injectSet1(Tick when) { spl_s1_->inject(0, when); }
    void injectRst(Tick when) { spl_rst_->inject(0, when); }
    /// @}

    /** Connect the serial `out` channel onward. */
    void connectOut(sfq::Component &dst, int port, int jtl_stages = 0);

    /** Connect the `read` channel onward. */
    void connectRead(sfq::Component &dst, int port, int jtl_stages = 0);

    /** Input-port handles so upstream cells can drive this SC. */
    sfq::Component &inPort() { return *cb_in_; }
    static constexpr int kInChan = 0;
    static constexpr int kWriteChan = 1;
    sfq::Component &set0Port() { return *spl_s0_; }
    sfq::Component &set1Port() { return *spl_s1_; }
    sfq::Component &rstPort() { return *spl_rst_; }

    /** Current stored state (TFF internal flux). */
    bool state() const;

    /** Current arm configuration (decoded from the NDROs). */
    ScArm arm() const;

  private:
    sfq::Cb3 *cb_in_;
    sfq::Spl *spl_in_;
    sfq::Tffl *tffl_;
    sfq::Tffr *tffr_;
    sfq::Spl *spl_l_;
    sfq::Spl *spl_r_;
    sfq::Ndro *ndro0_;
    sfq::Ndro *ndro1_;
    sfq::Ndro *ndro2_;
    sfq::Cb *cb_out_;
    sfq::Spl *spl_s0_;
    sfq::Spl *spl_s1_;
    sfq::Spl3 *spl_rst_;
    sfq::Spl3 *spl_read_;
    sfq::Cb *cb_r0_;
    sfq::Cb *cb_r1_;
    sfq::Cb *cb_n2rst_;
};

/** Logic JJ count of one gate-level SC (for resource modelling). */
long scLogicJjs();

} // namespace sushi::npe

#endif // SUSHI_NPE_STATE_CONTROLLER_HH
