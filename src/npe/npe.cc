#include "npe/npe.hh"

#include "common/logging.hh"

namespace sushi::npe {

Npe::Npe(int num_sc)
{
    sushi_assert(num_sc >= 1 && num_sc <= 62);
    scs_.resize(static_cast<std::size_t>(num_sc));
    setPolarity(Polarity::Excitatory);
}

void
Npe::setPolarity(Polarity p)
{
    polarity_ = p;
    for (auto &sc : scs_) {
        if (p == Polarity::Excitatory)
            sc.set1(); // carry on the 1->0 flip: up-count
        else
            sc.set0(); // borrow on the 0->1 flip: down-count
    }
}

std::uint64_t
Npe::rst()
{
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < scs_.size(); ++i)
        if (scs_[i].rst())
            v |= std::uint64_t{1} << i;
    // rst disarms every SC; restore the polarity arming so the NPE
    // stays usable (the real chip re-sends set pulses, which the
    // pulse encoder emits explicitly — see compiler/pulse_encoder).
    setPolarity(polarity_);
    return v;
}

void
Npe::write(std::uint64_t value)
{
    sushi_assert(value < numStates());
    for (std::size_t i = 0; i < scs_.size(); ++i)
        if (value & (std::uint64_t{1} << i))
            scs_[i].write();
}

bool
Npe::in()
{
    ++pulses_in_;
    // Ripple: an SC's out pulse is the next SC's in pulse.
    for (auto &sc : scs_) {
        if (!sc.in())
            return false; // ripple stopped inside the chain
    }
    // The final SC emitted: the NPE fires.
    ++spikes_;
    return true;
}

std::uint64_t
Npe::addPulses(std::uint64_t count)
{
    if (count == 0)
        return 0;
    const std::uint64_t s = numStates();
    const std::uint64_t v = value();
    std::uint64_t spikes;
    std::uint64_t next;
    if (polarity_ == Polarity::Excitatory) {
        // Up-count: a carry out of the final SC per wrap past 2^K.
        spikes = (v + count) / s;
        next = (v + count) % s;
    } else {
        // Down-count: a borrow out of the final SC per wrap below 0.
        if (count <= v) {
            spikes = 0;
            next = v - count;
        } else {
            spikes = (count - v + s - 1) / s;
            next = (v + spikes * s - count) % s;
        }
    }
    pulses_in_ += count;
    spikes_ += spikes;
    // Materialise the new counter value in the SC bit states so the
    // slow path and readouts stay consistent.
    for (std::size_t i = 0; i < scs_.size(); ++i) {
        const bool bit = (next >> i) & 1;
        if (scs_[i].state() != bit)
            scs_[i].in(); // flip without consuming arm semantics
    }
    return spikes;
}

std::uint64_t
Npe::value() const
{
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < scs_.size(); ++i)
        if (scs_[i].state())
            v |= std::uint64_t{1} << i;
    return v;
}

std::vector<bool>
Npe::states() const
{
    std::vector<bool> s;
    s.reserve(scs_.size());
    for (const auto &sc : scs_)
        s.push_back(sc.state());
    return s;
}

NpeGate::NpeGate(sfq::Netlist &net, const std::string &name, int num_sc,
                 Options opts)
{
    sushi_assert(num_sc >= 1);
    const int link_stages = opts.link_stages;
    for (int i = 0; i < num_sc; ++i) {
        scs_.push_back(std::make_unique<ScGate>(
            net, name + ".sc" + std::to_string(i)));
    }

    // Serial links: SC_i out -> SC_{i+1} in.
    for (int i = 0; i + 1 < num_sc; ++i) {
        auto &next = scs_[static_cast<std::size_t>(i + 1)];
        scs_[static_cast<std::size_t>(i)]->connectOut(
            next->inPort(), ScGate::kInChan, link_stages);
    }

    // IO pads.
    in_src_ = nullptr;
    out_sink_ = nullptr;
    if (!opts.external_in) {
        in_src_ = &net.makeSource(name + ".in");
        net.connectWire(*in_src_, 0, scs_[0]->inPort(),
                        ScGate::kInChan, link_stages);
    }
    rst_src_ = &net.makeSource(name + ".rst");
    set0_src_ = &net.makeSource(name + ".set0");
    set1_src_ = &net.makeSource(name + ".set1");
    if (!opts.external_out) {
        out_sink_ = &net.makeSink(name + ".out");
        scs_.back()->connectOut(*out_sink_, 0, link_stages);
    }

    // Bound control channels distributed over splitter trees.
    std::vector<std::pair<sfq::Component *, int>> rst_dsts, s0_dsts,
        s1_dsts;
    for (auto &sc : scs_) {
        rst_dsts.emplace_back(&sc->rstPort(), 0);
        s0_dsts.emplace_back(&sc->set0Port(), 0);
        s1_dsts.emplace_back(&sc->set1Port(), 0);
    }
    net.fanout(name + ".rst_tree", *rst_src_, 0, rst_dsts, 1);
    net.fanout(name + ".set0_tree", *set0_src_, 0, s0_dsts, 1);
    net.fanout(name + ".set1_tree", *set1_src_, 0, s1_dsts, 1);

    // Individual write channels and read sinks (Sec. 4.1.3: "read and
    // write must be set up individually").
    for (int i = 0; i < num_sc; ++i) {
        auto &sc = scs_[static_cast<std::size_t>(i)];
        auto &wsrc = net.makeSource(name + ".write" +
                                    std::to_string(i));
        net.connectWire(wsrc, 0, sc->inPort(), ScGate::kWriteChan, 1);
        write_srcs_.push_back(&wsrc);
        auto &rsink = net.makeSink(name + ".read" + std::to_string(i));
        sc->connectRead(rsink, 0, 1);
        read_sinks_.push_back(&rsink);
    }
}

void
NpeGate::injectIn(Tick when)
{
    sushi_assert(in_src_ != nullptr);
    in_src_->pulseAt(when);
}

void
NpeGate::connectOut(sfq::Component &dst, int port, int jtl_stages)
{
    sushi_assert(out_sink_ == nullptr);
    scs_.back()->connectOut(dst, port, jtl_stages);
}

sfq::PulseSink &
NpeGate::outSink()
{
    sushi_assert(out_sink_ != nullptr);
    return *out_sink_;
}

void
NpeGate::injectRst(Tick when)
{
    rst_src_->pulseAt(when);
}

void
NpeGate::injectSet0(Tick when)
{
    set0_src_->pulseAt(when);
}

void
NpeGate::injectSet1(Tick when)
{
    set1_src_->pulseAt(when);
}

void
NpeGate::injectWrite(int sc_index, Tick when)
{
    sushi_assert(sc_index >= 0 && sc_index < numSc());
    write_srcs_[static_cast<std::size_t>(sc_index)]->pulseAt(when);
}

sfq::Component &
NpeGate::inPort()
{
    return scs_[0]->inPort();
}

std::uint64_t
NpeGate::value() const
{
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < scs_.size(); ++i)
        if (scs_[i]->state())
            v |= std::uint64_t{1} << i;
    return v;
}

std::vector<bool>
NpeGate::states() const
{
    std::vector<bool> s;
    s.reserve(scs_.size());
    for (const auto &sc : scs_)
        s.push_back(sc->state());
    return s;
}

} // namespace sushi::npe
