/**
 * @file
 * The multi-phase biological neuron model of paper Fig. 6/7.
 *
 * The neuron is a state machine over three phases:
 *   below-threshold  b0 .. b_T   (resting state b0)
 *   rising           r0 .. r_R
 *   falling/undershoot f0 .. f_F
 *
 * Spike stimuli climb the b-states; time stimuli decay them (failed
 * initiations). Reaching b_T starts the action potential: the rising
 * phase advances on time stimuli, the neuron *sends a spike* on the
 * r_{R-1} -> r_R transition, then traverses the falling/undershoot
 * phase back to rest. This is the state-transition function of
 * Fig. 7, verbatim.
 *
 * The FSM demonstrates the generality of the multi-state NPE
 * (Sec. 4.1.2): state index maps to an NPE counter value, spike
 * stimuli to excitatory pulses, time-stimulus decay to inhibitory
 * pulses. SSNN inference itself uses the simpler stateless neuron
 * (Sec. 5.1).
 */

#ifndef SUSHI_NPE_NEURON_FSM_HH
#define SUSHI_NPE_NEURON_FSM_HH

#include <string>

namespace sushi::npe {

/** The two stimulus kinds of Fig. 6/7. */
enum class Stimulus
{
    Spike, ///< an input spike arrived
    Time,  ///< one time quantum elapsed
};

/** Phase of the membrane trajectory. */
enum class NeuronPhase
{
    BelowThreshold,
    Rising,
    Falling,
};

/** The Fig. 6/7 neuron state machine. */
class NeuronFsm
{
  public:
    /**
     * @param threshold number of b-states above rest (T); the action
     *                  potential starts at b_T
     * @param rising    number of rising states R
     * @param falling   number of falling/undershoot states F
     */
    NeuronFsm(int threshold, int rising, int falling);

    /**
     * Apply one stimulus per the Fig. 7 transition function.
     * @return true if the neuron sent a spike on this transition
     *         (the r_{R-1} -> r_R edge).
     */
    bool stimulate(Stimulus s);

    /** Current phase. */
    NeuronPhase phase() const { return phase_; }

    /** Index within the current phase (the subscript in Fig. 6(b)). */
    int index() const { return index_; }

    /** True if at the resting state b0. */
    bool resting() const
    {
        return phase_ == NeuronPhase::BelowThreshold && index_ == 0;
    }

    /**
     * Linearised state number: b_i -> i, r_j -> T+1+j,
     * f_k -> T+R+2+k. This is the NPE counter value that represents
     * the state (Sec. 4.1.2).
     */
    int linearState() const;

    /** Total number of distinct states, T+1 + R+1 + F+1. */
    int numStates() const;

    /** Spikes sent since construction. */
    long spikesSent() const { return spikes_; }

    /** Short name of the current state, e.g. "b3", "r0", "f7". */
    std::string stateName() const;

    int threshold() const { return threshold_; }
    int rising() const { return rising_; }
    int falling() const { return falling_; }

  private:
    int threshold_;
    int rising_;
    int falling_;
    NeuronPhase phase_ = NeuronPhase::BelowThreshold;
    int index_ = 0;
    long spikes_ = 0;
};

/**
 * The paper's quantitative claim (Sec. 4.1.2): ~500 states suffice to
 * model a neuron usable directly for SNN inference. Returns the state
 * count of a neuron with the given geometry so benches/tests can
 * check it against the NPE budget (10 SCs = 1024 states).
 */
int neuronStateBudget(int threshold, int rising, int falling);

} // namespace sushi::npe

#endif // SUSHI_NPE_NEURON_FSM_HH
