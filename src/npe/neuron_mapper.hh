/**
 * @file
 * Mapping the Fig. 6/7 multi-phase neuron onto an NPE (Sec. 4.1.2).
 *
 * "Using the multi-state neuromorphic processing unit, we can
 * represent the states of the neuron model ... We employ the state
 * series that are triggered by the time stimulus to represent the
 * different phases of the neuron model." The mapper keeps an NPE
 * counter equal to the neuron's linearised state and realises every
 * Fig. 7 transition with counter pulses:
 *
 *   - spike stimulus in the below-threshold phase: +1 (excitatory)
 *   - time-stimulus decay: -1 (inhibitory)
 *   - phase progression on time stimuli: +1
 *   - the spike is *emitted by the hardware* on the r_{R-1} -> r_R
 *     transition: the counter is pre-loaded so that exactly that
 *     state increment overflows the final SC
 *   - the wrap after firing re-bases the counter; the mapper
 *     re-писes it during the refractory walk (a rst/write batch,
 *     which the real chip performs between batches anyway)
 *
 * The mapper is exercised against the reference NeuronFsm in
 * tests/test_neuron_mapper.cc: same spikes, same state trajectory.
 */

#ifndef SUSHI_NPE_NEURON_MAPPER_HH
#define SUSHI_NPE_NEURON_MAPPER_HH

#include "npe/neuron_fsm.hh"
#include "npe/npe.hh"

namespace sushi::npe {

/** Runs a Fig. 6/7 neuron on an NPE counter. */
class NeuronMapper
{
  public:
    /**
     * @param threshold,rising,falling the neuron geometry
     * @param num_sc NPE chain length; 2^num_sc must cover the
     *        neuron's state count
     */
    NeuronMapper(int threshold, int rising, int falling, int num_sc);

    /**
     * Apply a stimulus; drives the NPE pulses that realise the
     * Fig. 7 transition.
     * @return true if the NPE emitted the spike (the counter
     *         overflow on the r_{R-1} -> r_R edge).
     */
    bool stimulate(Stimulus s);

    /** The neuron's linear state decoded from the NPE counter. */
    int linearState() const;

    /** The NPE being driven. */
    const Npe &npe() const { return npe_; }

    /** Spikes the NPE has emitted. */
    long spikesEmitted() const { return spikes_; }

    int threshold() const { return threshold_; }
    int rising() const { return rising_; }
    int falling() const { return falling_; }

  private:
    /** Counter value representing linear state @p s (pre-fire). */
    std::uint64_t counterFor(int s) const;

    int threshold_;
    int rising_;
    int falling_;
    int num_states_;
    Npe npe_;
    long spikes_ = 0;
    /** Linear state of the fire transition (entering r_R). */
    int fire_state_;
    /** True once the counter has wrapped (post-fire re-base). */
    bool wrapped_ = false;
};

} // namespace sushi::npe

#endif // SUSHI_NPE_NEURON_MAPPER_HH
