#include "npe/neuron_fsm.hh"

#include "common/logging.hh"

namespace sushi::npe {

NeuronFsm::NeuronFsm(int threshold, int rising, int falling)
    : threshold_(threshold), rising_(rising), falling_(falling)
{
    sushi_assert(threshold >= 1);
    sushi_assert(rising >= 1);
    sushi_assert(falling >= 0);
}

bool
NeuronFsm::stimulate(Stimulus s)
{
    switch (phase_) {
      case NeuronPhase::BelowThreshold:
        if (s == Stimulus::Spike) {
            // delta(b_i, spike) = b_{i+1}; saturate at b_T (the
            // action potential launches on the next time stimulus).
            if (index_ < threshold_)
                ++index_;
        } else {
            if (index_ >= threshold_) {
                // delta(b_T, time) = r0: threshold reached, start
                // the rising phase.
                phase_ = NeuronPhase::Rising;
                index_ = 0;
                if (rising_ == 1) {
                    // Degenerate geometry: r0 is already r_{R-1}.
                    // Handled on the next time stimulus.
                }
            } else if (index_ > 0) {
                // delta(b_i, time) = b_{i-1}: failed initiation
                // decays toward rest; delta(b0, time) = b0.
                --index_;
            }
        }
        return false;

      case NeuronPhase::Rising:
        if (s == Stimulus::Spike)
            return false; // refractory: input spikes are ignored
        if (index_ < rising_) {
            ++index_;
            if (index_ == rising_) {
                // delta(r_{R-1}, time) = r_R, send a spike.
                ++spikes_;
                return true;
            }
            return false;
        }
        // delta(r_R, time) = f0.
        phase_ = NeuronPhase::Falling;
        index_ = 0;
        return false;

      case NeuronPhase::Falling:
        if (s == Stimulus::Spike)
            return false; // refractory
        if (index_ < falling_) {
            ++index_;
        } else {
            // delta(f_F, time) = b0: back to rest.
            phase_ = NeuronPhase::BelowThreshold;
            index_ = 0;
        }
        return false;
    }
    sushi_panic("unreachable neuron phase");
}

int
NeuronFsm::linearState() const
{
    switch (phase_) {
      case NeuronPhase::BelowThreshold:
        return index_;
      case NeuronPhase::Rising:
        return threshold_ + 1 + index_;
      case NeuronPhase::Falling:
        return threshold_ + rising_ + 2 + index_;
    }
    sushi_panic("unreachable neuron phase");
}

int
NeuronFsm::numStates() const
{
    return neuronStateBudget(threshold_, rising_, falling_);
}

std::string
NeuronFsm::stateName() const
{
    const char prefix = phase_ == NeuronPhase::BelowThreshold ? 'b'
                        : phase_ == NeuronPhase::Rising       ? 'r'
                                                              : 'f';
    return prefix + std::to_string(index_);
}

int
neuronStateBudget(int threshold, int rising, int falling)
{
    // b0..b_T, r0..r_R, f0..f_F.
    return (threshold + 1) + (rising + 1) + (falling + 1);
}

} // namespace sushi::npe
