/**
 * @file
 * The oscilloscope-side sampler, paper Sec. 5.2 / Fig. 14 / Fig. 16.
 *
 * The fabricated chip's outputs are SFQ/DC drivers: each output
 * pulse inverts a DC level that the oscilloscope records. Decoding
 * an inference result therefore means: capture the level waveform,
 * recover the pulse sequence (each toggle = one pulse), window the
 * pulses by time step, and pick the label whose channel pulsed most
 * (Fig. 16(d): "judging the inference result by the pulse output
 * from each label").
 */

#ifndef SUSHI_CHIP_SAMPLER_HH
#define SUSHI_CHIP_SAMPLER_HH

#include <string>
#include <vector>

#include "sfq/waveform.hh"

namespace sushi::chip {

/** Per-label pulse bit-strings, e.g. "0-1-1-1-1" (Fig. 16(d)). */
struct LabelReadout
{
    std::vector<std::string> per_label; ///< one string per channel
    int winner;                         ///< decoded label
};

/**
 * Decode label waveforms.
 * @param waves       one recorded level waveform per label channel
 * @param step_bounds time-step window boundaries (size = steps + 1)
 * @return per-step pulse presence per label and the argmax winner
 */
LabelReadout decodeLabels(const std::vector<sfq::LevelWave> &waves,
                          const std::vector<Tick> &step_bounds);

/**
 * Per-step spike matrix from pulse traces: out[label][step] is the
 * number of pulses channel `label` produced within step window
 * `step`.
 */
std::vector<std::vector<int>>
spikesPerStep(const std::vector<sfq::PulseTrace> &traces,
              const std::vector<Tick> &step_bounds);

} // namespace sushi::chip

#endif // SUSHI_CHIP_SAMPLER_HH
