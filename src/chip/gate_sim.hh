/**
 * @file
 * Gate-level chip execution for small configurations.
 *
 * Drives a full cell-level MeshGate netlist through the same
 * rst -> write -> set -> input protocol (Sec. 5.2) the behavioural
 * SushiChip models, one time step at a time: per bucket pass the
 * synapse switches are configured for one polarity, the output NPEs
 * are armed with set0/set1, and the encoded input pulses are
 * replayed. Output spikes are observed through the SFQ/DC drivers —
 * the oscilloscope interface — so the Fig. 16 waveform comparison
 * can be reproduced end to end.
 *
 * Used for configurations the paper could fabricate (the 2-NPE 1x1
 * chip) up to a few mesh units; whole-network inference runs on the
 * behavioural model.
 */

#ifndef SUSHI_CHIP_GATE_SIM_HH
#define SUSHI_CHIP_GATE_SIM_HH

#include <memory>
#include <vector>

#include "compiler/compile.hh"
#include "compiler/program.hh"
#include "fabric/mesh_network.hh"
#include "sfq/parallel_simulator.hh"

namespace sushi::chip {

/** Gate-level single-layer chip runner. */
class GateChip
{
  public:
    /**
     * Build the mesh netlist for @p cfg in @p net. The compiled
     * network executed later must be a single layer with
     * in_dim <= n and out_dim <= n (no slicing at gate level).
     */
    GateChip(sfq::Netlist &net, const compiler::ChipConfig &cfg);

    /**
     * Execute binary input frames (one per time step).
     * @return per-step output pulse counts [step][neuron]
     */
    std::vector<std::vector<int>>
    run(const compiler::CompiledNetwork &cnet,
        const std::vector<std::vector<std::uint8_t>> &frames);

    /**
     * Execute a pre-encoded PulseProgram (open-loop: the exact pulse
     * streams the pulse input device would play into the fabricated
     * chip, Fig. 12). Requires the program's mesh to have been
     * compiled for this chip configuration (w_max is 1 at gate
     * scale).
     * @return per-step output pulse counts [step][neuron]
     */
    std::vector<std::vector<int>>
    runProgram(const compiler::CompiledNetwork &cnet,
               const compiler::PulseProgram &prog);

    /** Step window boundaries of the last run (size steps + 1). */
    const std::vector<Tick> &stepBounds() const { return bounds_; }

    /** The underlying mesh (for waveform capture). */
    fabric::MeshGate &mesh() { return *mesh_; }

    /** The compiled flat representation this chip executes on. */
    const sfq::CompiledNetlist &compiled() const
    {
        return net_.sim().core();
    }

    /** Timing-constraint violations observed during the run. */
    std::uint64_t violations() const;

    /**
     * Execute the event kernel on @p threads worker threads via the
     * partitioned parallel simulator (<= 1 restores the sequential
     * path). Results are byte-identical at any thread count; the
     * knob only trades wall-clock for cores.
     */
    void setSimThreads(int threads);

    /** Configured worker threads (0 = sequential default). */
    int simThreads() const { return sim_threads_; }

  private:
    /** Re-arm input NPE @p i as a fire-per-pulse relay. */
    Tick rearmInputNpe(int i, Tick t);

    /** Drain pending events (parallel when configured). */
    Tick runSim();

    sfq::Netlist &net_;
    compiler::ChipConfig cfg_;
    std::unique_ptr<fabric::MeshGate> mesh_;
    std::vector<Tick> bounds_;
    Tick gap_;
    int sim_threads_ = 0;
    std::unique_ptr<sfq::ParallelSimulator> psim_;
};

} // namespace sushi::chip

#endif // SUSHI_CHIP_GATE_SIM_HH
