#include "chip/gate_sim.hh"

#include "common/logging.hh"
#include "sfq/constraints.hh"

namespace sushi::chip {

GateChip::GateChip(sfq::Netlist &net, const compiler::ChipConfig &cfg)
    : net_(net), cfg_(cfg)
{
    fabric::MeshConfig mesh_cfg;
    mesh_cfg.n = cfg.n;
    mesh_cfg.sc_per_npe = cfg.sc_per_npe;
    mesh_cfg.w_max = 1; // binary SSNN: strength is the on/off switch
    mesh_ = std::make_unique<fabric::MeshGate>(net, mesh_cfg);
    gap_ = sfq::safePulseSpacing();
    net.compile(); // whole mesh lowered; runs on the compiled core
}

void
GateChip::setSimThreads(int threads)
{
    sim_threads_ = threads;
    if (threads <= 1) {
        psim_.reset();
        return;
    }
    sfq::ParallelSimulator::Options opts;
    opts.threads = threads;
    psim_ = std::make_unique<sfq::ParallelSimulator>(net_.sim(),
                                                     opts);
}

Tick
GateChip::runSim()
{
    return psim_ != nullptr ? psim_->run() : net_.sim().run();
}

Tick
GateChip::rearmInputNpe(int i, Tick t)
{
    // Fire-per-pulse relay: threshold 1, i.e. preload 2^K - 1 (all
    // SC bits written). Must follow the Sec. 5.2 order: rst, write,
    // set.
    auto &npe = mesh_->inputNpe(i);
    npe.injectRst(t);
    t += gap_;
    for (int b = 0; b < cfg_.sc_per_npe; ++b) {
        npe.injectWrite(b, t);
        t += gap_;
    }
    npe.injectSet1(t);
    return t + gap_;
}

std::vector<std::vector<int>>
GateChip::run(const compiler::CompiledNetwork &cnet,
              const std::vector<std::vector<std::uint8_t>> &frames)
{
    sushi_assert(cnet.net != nullptr);
    sushi_assert(cnet.layers.size() == 1);
    const auto &layer = cnet.layers[0];
    const auto &blayer = cnet.net->layers()[0];
    const int in_dim = static_cast<int>(blayer.inDim());
    const int out_dim = static_cast<int>(blayer.outDim());
    sushi_assert(in_dim <= cfg_.n && out_dim <= cfg_.n);

    sfq::Simulator &sim = net_.sim();
    std::vector<std::vector<int>> result;
    bounds_.clear();

    Tick t = sim.now() + gap_;
    for (const auto &frame : frames) {
        sushi_assert(static_cast<int>(frame.size()) == in_dim);
        bounds_.push_back(t);
        const std::size_t spikes_before_step =
            [&] {
                std::size_t total = 0;
                for (int j = 0; j < out_dim; ++j)
                    total += mesh_->outputDriver(j).pulseCount();
                return total;
            }();
        (void)spikes_before_step;

        // Step start: reset and pre-load the output NPEs.
        for (int j = 0; j < out_dim; ++j) {
            auto &npe = mesh_->outputNpe(j);
            npe.injectRst(t);
            Tick wt = t + gap_;
            const std::uint64_t preload = layer.preload[
                static_cast<std::size_t>(j)];
            for (int b = 0; b < cfg_.sc_per_npe; ++b) {
                if (preload & (std::uint64_t{1} << b)) {
                    npe.injectWrite(b, wt);
                    wt += gap_;
                }
            }
        }
        t += gap_ * (cfg_.sc_per_npe + 2);
        runSim();
        t = std::max(t, sim.now() + gap_);

        // Bias pulses (thresholds <= 0) are delivered excitatory
        // before the passes.
        bool any_bias = false;
        for (int j = 0; j < out_dim; ++j)
            any_bias |= layer.bias_pulses[
                            static_cast<std::size_t>(j)] > 0;
        if (any_bias) {
            for (int j = 0; j < out_dim; ++j)
                mesh_->outputNpe(j).injectSet1(t);
            t += gap_;
            // Feed biases through the diagonal synapse with all
            // others switched off.
            sushi_panic("gate-level bias pulses not supported; "
                        "use thresholds >= 1 in gate tests");
        }

        // Two polarity passes per bucket (tiny nets: one bucket).
        for (int pass = 0; pass < 2; ++pass) {
            const bool neg = pass == 0;
            // Configure the crosspoint switches for this pass.
            std::vector<std::vector<int>> strengths(
                static_cast<std::size_t>(cfg_.n),
                std::vector<int>(static_cast<std::size_t>(cfg_.n),
                                 0));
            for (int i = 0; i < in_dim; ++i) {
                for (int j = 0; j < out_dim; ++j) {
                    const bool w_neg =
                        blayer.weights[static_cast<std::size_t>(j)]
                                      [static_cast<std::size_t>(i)] <
                        0;
                    strengths[static_cast<std::size_t>(i)]
                             [static_cast<std::size_t>(j)] =
                                 (w_neg == neg) ? 1 : 0;
                }
            }
            t = std::max(mesh_->configureWeights(strengths, t, gap_),
                         t);
            // Polarity at the output neurons.
            for (int j = 0; j < out_dim; ++j) {
                if (neg)
                    mesh_->outputNpe(j).injectSet0(t);
                else
                    mesh_->outputNpe(j).injectSet1(t);
            }
            t += gap_;
            runSim();
            t = std::max(t, sim.now() + gap_);

            // Replay the input spikes for this pass, one relay
            // firing at a time.
            for (int i = 0; i < in_dim; ++i) {
                if (!frame[static_cast<std::size_t>(i)])
                    continue;
                t = rearmInputNpe(i, t);
                mesh_->injectInput(i, t);
                t += 2 * gap_;
                runSim();
                t = std::max(t, sim.now() + gap_);
            }
        }
        runSim();
        t = std::max(t, sim.now() + 2 * gap_);

        // Collect this step's output pulses from the drivers.
        std::vector<int> step_counts(
            static_cast<std::size_t>(out_dim), 0);
        for (int j = 0; j < out_dim; ++j) {
            const auto &toggles = mesh_->outputDriver(j).toggles();
            int count = 0;
            for (Tick tt : toggles)
                if (tt >= bounds_.back())
                    ++count;
            step_counts[static_cast<std::size_t>(j)] = count;
        }
        result.push_back(std::move(step_counts));
    }
    bounds_.push_back(t);
    return result;
}

std::vector<std::vector<int>>
GateChip::runProgram(const compiler::CompiledNetwork &cnet,
                     const compiler::PulseProgram &prog)
{
    sushi_assert(cnet.net != nullptr);
    sushi_assert(cnet.layers.size() == 1);
    const int out_dim =
        static_cast<int>(cnet.net->layers()[0].outDim());
    sushi_assert(out_dim <= cfg_.n);

    using compiler::Channel;
    for (const auto &op : prog.ops) {
        switch (op.channel) {
          case Channel::Input:
            mesh_->injectInput(op.a, op.at);
            break;
          case Channel::InRst:
            mesh_->inputNpe(op.a).injectRst(op.at);
            break;
          case Channel::InWrite:
            mesh_->inputNpe(op.a).injectWrite(op.b, op.at);
            break;
          case Channel::InSet0:
            mesh_->inputNpe(op.a).injectSet0(op.at);
            break;
          case Channel::InSet1:
            mesh_->inputNpe(op.a).injectSet1(op.at);
            break;
          case Channel::OutRst:
            mesh_->outputNpe(op.a).injectRst(op.at);
            break;
          case Channel::OutWrite:
            mesh_->outputNpe(op.a).injectWrite(op.b, op.at);
            break;
          case Channel::OutSet0:
            mesh_->outputNpe(op.a).injectSet0(op.at);
            break;
          case Channel::OutSet1:
            mesh_->outputNpe(op.a).injectSet1(op.at);
            break;
          case Channel::SynRst:
            mesh_->synapse(op.a, op.b).injectSwitchClear(op.at);
            break;
          case Channel::SynStrength:
            // w_max is 1 at gate scale: the strength operand arms
            // the series switch only.
            sushi_assert(op.c == 1);
            mesh_->synapse(op.a, op.b).injectSwitchArm(op.at);
            break;
        }
    }
    runSim();

    bounds_ = prog.step_bounds;
    std::vector<std::vector<int>> result;
    for (std::size_t s = 0; s + 1 < bounds_.size(); ++s) {
        std::vector<int> step_counts(
            static_cast<std::size_t>(out_dim), 0);
        for (int j = 0; j < out_dim; ++j) {
            for (Tick tt : mesh_->outputDriver(j).toggles()) {
                if (tt >= bounds_[s] && tt < bounds_[s + 1])
                    ++step_counts[static_cast<std::size_t>(j)];
            }
        }
        result.push_back(std::move(step_counts));
    }
    return result;
}

std::uint64_t
GateChip::violations() const
{
    return net_.sim().violations();
}

} // namespace sushi::chip
