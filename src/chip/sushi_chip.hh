/**
 * @file
 * The behavioural SUSHI chip model: executes a compiled SSNN on the
 * NPE mesh exactly as the hardware would — per time step, per output
 * group, per bucket, inhibitory pass then excitatory pass — using
 * the bit-exact NPE counter semantics (including wrap-around borrow
 * and carry pulses, the physical failure mode bucketing exists to
 * control).
 *
 * The gate-level counterpart for small configurations lives in
 * chip/gate_sim; tests assert pulse-level agreement between the two,
 * mirroring the paper's chip-vs-simulation validation (Sec. 6.2).
 */

#ifndef SUSHI_CHIP_SUSHI_CHIP_HH
#define SUSHI_CHIP_SUSHI_CHIP_HH

#include <cstdint>
#include <vector>

#include "compiler/compile.hh"
#include "npe/npe.hh"
#include "snn/packed.hh"

namespace sushi::chip {

/** Aggregate statistics of one inference run. */
struct InferenceStats
{
    std::uint64_t frames = 0;        ///< images processed
    std::uint64_t time_steps = 0;    ///< SNN steps executed
    std::uint64_t input_pulses = 0;  ///< pulses fed to NPEs
    std::uint64_t synaptic_ops = 0;  ///< pulses through synapses
    std::uint64_t output_spikes = 0; ///< final-layer output pulses
    std::uint64_t underflow_spikes = 0; ///< spurious borrow pulses
    std::uint64_t multi_fires = 0;   ///< neuron-steps with >1 spike
    std::uint64_t reload_events = 0; ///< cross-structure reloads

    /// @name Degraded-mode (failed-NPE) reporting.
    /// @{
    std::uint64_t failed_npes = 0;       ///< failed output slots
    std::uint64_t remapped_neurons = 0;  ///< neuron-steps served by a
                                         ///< remap host NPE
    std::uint64_t degraded_passes = 0;   ///< extra group passes run
    /// @}

    /// @name Compile-plan gauges (realizability headroom).
    /// Snapshot of the executed plan's compiler diagnostics, set by
    /// the chip from `CompiledNetwork::budget` each network step so
    /// serving metrics expose how close the resident model sits to
    /// the chip's Table 2 caps. Gauges, not counters: accumulate()
    /// keeps the maximum; stage merges sum the per-chip neuron /
    /// reload counts and keep the worst utilisation.
    /// @{
    std::uint64_t disabled_neurons = 0; ///< compile-disabled neurons
    std::uint64_t plan_reloads = 0;  ///< compiled reloads per step
    double jj_utilisation = 0.0;     ///< worst chip JJ cap fraction
    double area_utilisation = 0.0;   ///< worst chip area cap fraction
    /// @}

    /// @name NoC transport (modelled mesh fabric; EngineConfig::noc
    /// multi-chip runs only — all zero under the ideal transport).
    /// The engine folds one NocSampleStats per sample into these
    /// after the stage-pipeline merge; chip code never sets them.
    /// accumulate() sums the counters and keeps the utilisation /
    /// step-load gauges' maxima; noc_cut_flits merges element-wise
    /// (index = plan cut index).
    /// @{
    std::uint64_t noc_packets = 0; ///< spike packets injected
    std::uint64_t noc_flits = 0;   ///< flits injected
    std::uint64_t noc_flit_hops = 0; ///< flits x links traversed
    std::uint64_t noc_hol_stall_cycles = 0; ///< head-of-line waits
    std::uint64_t noc_backpressure_stalls = 0; ///< NIC credit waits
    std::uint64_t noc_latency_cycles = 0; ///< added fabric cycles
    std::uint64_t noc_max_step_link_flits = 0; ///< worst step link
                                               ///< load (gauge)
    double noc_latency_ps = 0.0; ///< added transport latency
    double noc_max_link_utilisation = 0.0; ///< worst link busy
                                           ///< fraction (gauge)
    std::vector<std::uint64_t> noc_cut_flits; ///< flits per plan cut
    /// @}

    double est_time_ps = 0.0;        ///< modelled wall time
    double reload_time_ps = 0.0;     ///< serialised reload time
    double dynamic_energy_j = 0.0;   ///< switching energy

    void reset() { *this = InferenceStats{}; }

    /**
     * Fold another stats record into this one. Counters and time /
     * energy totals add; failed_npes and the compile-plan fields are
     * gauges (current failed slots / plan shape), so the maximum is
     * kept. Addition order matters for the floating-point fields:
     * merging per-sample records in sample order gives byte-identical
     * totals regardless of how the samples were sharded across
     * replicas or threads.
     */
    void accumulate(const InferenceStats &other);

    /**
     * Fold the stats of another *pipeline stage of the same sample*
     * into this one (multi-chip plans: one record per stage chip).
     * Unlike accumulate, frames and time_steps take the maximum —
     * every stage saw the same frames — while the per-chip plan
     * diagnostics (disabled_neurons, plan_reloads) add up across the
     * plan's chips and utilisation keeps the worst chip. Energy is
     * recomputed from the merged synaptic_ops by the caller's
     * dynamicEnergyJ so stage merge order cannot perturb it.
     */
    void accumulatePipeline(const InferenceStats &stage);

    /** True if any inference ran with failed NPEs remapped. */
    bool degraded() const { return remapped_neurons > 0; }
};

/** Switching-energy model shared by chip and engine: every synaptic
 *  op flips ~30 JJs along the synapse->NPE path at ~2e-19 J each. */
double dynamicEnergyJ(std::uint64_t synaptic_ops);

/** Per-step activation pulses flowing between layers. */
using PulseVector = std::vector<std::uint16_t>;

/** The behavioural chip. */
class SushiChip
{
  public:
    explicit SushiChip(const compiler::ChipConfig &cfg);

    const compiler::ChipConfig &config() const { return cfg_; }

    /**
     * Execute one layer for one time step.
     * @param layer    compiled layer
     * @param blayer   the binarized weights it was compiled from
     * @param act      input pulse counts (original index space)
     * @return output pulse counts per neuron (0, 1, or more — extra
     *         pulses are physical wrap artefacts, counted in stats)
     */
    PulseVector stepLayer(const compiler::CompiledLayer &layer,
                          const snn::BinaryLayer &blayer,
                          const PulseVector &act);

    /**
     * Full rate-coded inference of a compiled network over binary
     * input frames (one per time step). Composed from beginFrame /
     * stepNetwork / countOutputSpikes / finishRun below, so a
     * multi-chip engine can chain several chips per time step with
     * the same arithmetic.
     * @return output pulse counts summed over time steps
     */
    std::vector<int>
    inferCounts(const compiler::CompiledNetwork &net,
                const std::vector<std::vector<std::uint8_t>> &frames);

    /// @name Staged execution (multi-chip plans).
    /// One sample = beginFrame once, then per time step a stepNetwork
    /// per stage chip (chained through the activation vector), then
    /// finishRun on every chip. inferCounts is exactly this sequence
    /// on a single chip.
    /// @{

    /** Account the start of one input sample. */
    void beginFrame() { ++stats_.frames; }

    /**
     * Run every layer of @p net for one time step: the full chip
     * pass of one stage. Also refreshes the compile-plan gauges in
     * stats() from the network's budget report.
     */
    PulseVector stepNetwork(const compiler::CompiledNetwork &net,
                            const PulseVector &act);

    /** Account final-layer output pulses. */
    void countOutputSpikes(const PulseVector &act);

    /** Recompute the cumulative dynamic energy from synaptic_ops. */
    void finishRun();

    /// @}

    /** Argmax label from inferCounts. */
    int predict(const compiler::CompiledNetwork &net,
                const std::vector<std::vector<std::uint8_t>> &frames);

    /** Statistics accumulated since the last reset. */
    const InferenceStats &stats() const { return stats_; }

    /** Clear accumulated statistics; the failed_npes gauge keeps
     *  tracking the chip's current failure state. */
    void resetStats();

    /**
     * Evaluate output neurons on up to @p threads worker threads
     * (<= 1: sequential, the default). Neuron counters are
     * independent and the spilled statistics are integer sums, so
     * results and InferenceStats are identical at any setting.
     */
    void setSimThreads(int threads) { sim_threads_ = threads; }
    int simThreads() const { return sim_threads_; }

    /// @name Packed-kernel selection.
    /// The fast path evaluates each neuron-step with closed-form
    /// counter arithmetic (the exact recurrence Npe::addPulses
    /// implements) instead of materialising an Npe object per
    /// neuron. Pulse outputs and every InferenceStats counter are
    /// bit-identical either way; tests/test_packed_snn.cc fuzzes the
    /// equivalence. Per-chip override defaults to following the
    /// process-wide snn::packed toggle (SUSHI_PACKED).
    /// @{

    /** Force the fast (true) or oracle (false) kernel on this chip. */
    void setPackedKernels(bool on) { packed_kernels_ = on ? 1 : 0; }

    /** Revert to following the process-wide toggle. */
    void clearPackedKernelsOverride() { packed_kernels_ = -1; }

    /** The kernel stepLayer will use right now. */
    bool packedKernels() const
    {
        return packed_kernels_ < 0 ? snn::packed::enabled()
                                   : packed_kernels_ == 1;
    }

    /// @}

    /**
     * Return the chip to its just-constructed state: statistics
     * cleared and every NPE slot healthy. Replica pools call this
     * between batches so a reused chip is indistinguishable from a
     * fresh one.
     */
    void reset();

    /// @name Degraded mode (Sec. 6.2 failure tolerance).
    /// Marking an output-NPE slot failed remaps its neurons onto the
    /// healthy slots (compiler::planNpeRemap): inference results are
    /// bit-identical, but extra serialized passes and configuration
    /// reloads are charged and reported in InferenceStats.
    /// @{

    /** Mark output-NPE slot @p slot (0..n-1) as failed. */
    void markNpeFailed(int slot);

    /** Restore every slot to healthy. */
    void clearFailedNpes();

    /** Per-slot failure flags (size n). */
    const std::vector<std::uint8_t> &failedNpes() const
    {
        return failed_npes_;
    }

    /** The active remap plan (identity when nothing failed). */
    const compiler::NpeRemap &remapPlan() const { return remap_; }

    /// @}

  private:
    compiler::ChipConfig cfg_;
    InferenceStats stats_;
    std::vector<std::uint8_t> failed_npes_;
    compiler::NpeRemap remap_;
    int sim_threads_ = 0;
    int packed_kernels_ = -1; ///< -1 follow global, else 0/1
};

} // namespace sushi::chip

#endif // SUSHI_CHIP_SUSHI_CHIP_HH
