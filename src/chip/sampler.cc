#include "chip/sampler.hh"

#include "common/logging.hh"

namespace sushi::chip {

std::vector<std::vector<int>>
spikesPerStep(const std::vector<sfq::PulseTrace> &traces,
              const std::vector<Tick> &step_bounds)
{
    sushi_assert(step_bounds.size() >= 2);
    const std::size_t steps = step_bounds.size() - 1;
    std::vector<std::vector<int>> out(
        traces.size(), std::vector<int>(steps, 0));
    for (std::size_t c = 0; c < traces.size(); ++c) {
        for (std::size_t s = 0; s < steps; ++s) {
            out[c][s] = static_cast<int>(sfq::pulsesInWindow(
                traces[c], step_bounds[s], step_bounds[s + 1]));
        }
    }
    return out;
}

LabelReadout
decodeLabels(const std::vector<sfq::LevelWave> &waves,
             const std::vector<Tick> &step_bounds)
{
    sushi_assert(!waves.empty());
    std::vector<sfq::PulseTrace> traces;
    traces.reserve(waves.size());
    for (const auto &w : waves)
        traces.push_back(sfq::levelsToPulses(w));
    const auto spikes = spikesPerStep(traces, step_bounds);

    LabelReadout readout;
    readout.per_label.reserve(waves.size());
    int best = 0, best_count = -1;
    for (std::size_t c = 0; c < spikes.size(); ++c) {
        std::string bits;
        int total = 0;
        for (std::size_t s = 0; s < spikes[c].size(); ++s) {
            if (s)
                bits += '-';
            bits += spikes[c][s] > 0 ? '1' : '0';
            total += spikes[c][s];
        }
        readout.per_label.push_back(bits);
        if (total > best_count) {
            best_count = total;
            best = static_cast<int>(c);
        }
    }
    readout.winner = best;
    return readout;
}

} // namespace sushi::chip
