#include "chip/sushi_chip.hh"

#include <algorithm>
#include <bit>
#include <mutex>
#include <utility>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "fabric/resource_model.hh"
#include "fabric/timing_model.hh"
#include "sfq/cell_params.hh"

namespace sushi::chip {

namespace {

/** Popcount of (act & mask) over scheduled positions [begin, end). */
std::uint64_t
popcountRange(const std::vector<std::uint64_t> &act,
              const std::vector<std::uint64_t> &mask, int begin,
              int end)
{
    std::uint64_t count = 0;
    const int w0 = begin / 64;
    const int w1 = (end + 63) / 64;
    for (int w = w0; w < w1; ++w) {
        std::uint64_t bits =
            act[static_cast<std::size_t>(w)] &
            mask[static_cast<std::size_t>(w)];
        if (w == w0 && begin % 64)
            bits &= ~std::uint64_t{0} << (begin % 64);
        if (w == w1 - 1 && end % 64)
            bits &= ~std::uint64_t{0} >> (64 - end % 64);
        count += static_cast<std::uint64_t>(std::popcount(bits));
    }
    return count;
}

/**
 * Closed-form NPE counter: the exact recurrence Npe::addPulses
 * implements (carry per wrap past 2^K counting up, borrow per wrap
 * below zero counting down) without the per-SC bit materialisation.
 * Any divergence from the Npe object is a bug the packed-vs-oracle
 * fuzzer catches.
 */
struct FastCounter
{
    std::uint64_t v;      ///< counter value
    std::uint64_t states; ///< 2^K

    std::uint64_t addUp(std::uint64_t count)
    {
        const std::uint64_t spikes = (v + count) / states;
        v = (v + count) % states;
        return spikes;
    }

    std::uint64_t addDown(std::uint64_t count)
    {
        if (count <= v) {
            v -= count;
            return 0;
        }
        const std::uint64_t borrows = (count - v + states - 1) / states;
        v = (v + borrows * states - count) % states;
        return borrows;
    }
};

/** Element-wise sum of per-cut flit counters (ragged-safe). */
void
mergeCutFlits(std::vector<std::uint64_t> &into,
              const std::vector<std::uint64_t> &from)
{
    if (into.size() < from.size())
        into.resize(from.size(), 0);
    for (std::size_t c = 0; c < from.size(); ++c)
        into[c] += from[c];
}

} // namespace

void
InferenceStats::accumulate(const InferenceStats &other)
{
    frames += other.frames;
    time_steps += other.time_steps;
    input_pulses += other.input_pulses;
    synaptic_ops += other.synaptic_ops;
    output_spikes += other.output_spikes;
    underflow_spikes += other.underflow_spikes;
    multi_fires += other.multi_fires;
    reload_events += other.reload_events;
    failed_npes = std::max(failed_npes, other.failed_npes);
    remapped_neurons += other.remapped_neurons;
    degraded_passes += other.degraded_passes;
    disabled_neurons = std::max(disabled_neurons,
                                other.disabled_neurons);
    plan_reloads = std::max(plan_reloads, other.plan_reloads);
    jj_utilisation = std::max(jj_utilisation, other.jj_utilisation);
    area_utilisation =
        std::max(area_utilisation, other.area_utilisation);
    noc_packets += other.noc_packets;
    noc_flits += other.noc_flits;
    noc_flit_hops += other.noc_flit_hops;
    noc_hol_stall_cycles += other.noc_hol_stall_cycles;
    noc_backpressure_stalls += other.noc_backpressure_stalls;
    noc_latency_cycles += other.noc_latency_cycles;
    noc_max_step_link_flits = std::max(noc_max_step_link_flits,
                                       other.noc_max_step_link_flits);
    noc_latency_ps += other.noc_latency_ps;
    noc_max_link_utilisation = std::max(
        noc_max_link_utilisation, other.noc_max_link_utilisation);
    mergeCutFlits(noc_cut_flits, other.noc_cut_flits);
    est_time_ps += other.est_time_ps;
    reload_time_ps += other.reload_time_ps;
    dynamic_energy_j += other.dynamic_energy_j;
}

void
InferenceStats::accumulatePipeline(const InferenceStats &stage)
{
    frames = std::max(frames, stage.frames);
    time_steps = std::max(time_steps, stage.time_steps);
    input_pulses += stage.input_pulses;
    synaptic_ops += stage.synaptic_ops;
    output_spikes += stage.output_spikes;
    underflow_spikes += stage.underflow_spikes;
    multi_fires += stage.multi_fires;
    reload_events += stage.reload_events;
    failed_npes = std::max(failed_npes, stage.failed_npes);
    remapped_neurons += stage.remapped_neurons;
    degraded_passes += stage.degraded_passes;
    // Per-chip plan diagnostics add up across the plan's stages;
    // utilisation reports the worst chip of the plan.
    disabled_neurons += stage.disabled_neurons;
    plan_reloads += stage.plan_reloads;
    jj_utilisation = std::max(jj_utilisation, stage.jj_utilisation);
    area_utilisation =
        std::max(area_utilisation, stage.area_utilisation);
    // Transport is accounted once per replica group (the engine
    // folds it in after this merge), but stray per-stage records
    // still merge with counter/gauge semantics.
    noc_packets += stage.noc_packets;
    noc_flits += stage.noc_flits;
    noc_flit_hops += stage.noc_flit_hops;
    noc_hol_stall_cycles += stage.noc_hol_stall_cycles;
    noc_backpressure_stalls += stage.noc_backpressure_stalls;
    noc_latency_cycles += stage.noc_latency_cycles;
    noc_max_step_link_flits = std::max(noc_max_step_link_flits,
                                       stage.noc_max_step_link_flits);
    noc_latency_ps += stage.noc_latency_ps;
    noc_max_link_utilisation = std::max(
        noc_max_link_utilisation, stage.noc_max_link_utilisation);
    mergeCutFlits(noc_cut_flits, stage.noc_cut_flits);
    // Stages run sequentially within a time step: latency adds.
    est_time_ps += stage.est_time_ps;
    reload_time_ps += stage.reload_time_ps;
    dynamic_energy_j += stage.dynamic_energy_j;
}

double
dynamicEnergyJ(std::uint64_t synaptic_ops)
{
    return static_cast<double>(synaptic_ops) * 30.0 * 2.0e-19;
}

SushiChip::SushiChip(const compiler::ChipConfig &cfg)
    : cfg_(cfg),
      failed_npes_(static_cast<std::size_t>(cfg.n), 0),
      remap_(compiler::planNpeRemap(cfg.n, failed_npes_))
{
    sushi_assert(cfg.n >= 1);
}

void
SushiChip::markNpeFailed(int slot)
{
    sushi_assert(slot >= 0 && slot < cfg_.n);
    failed_npes_[static_cast<std::size_t>(slot)] = 1;
    remap_ = compiler::planNpeRemap(cfg_.n, failed_npes_);
    stats_.failed_npes = static_cast<std::uint64_t>(remap_.failed);
}

void
SushiChip::clearFailedNpes()
{
    std::fill(failed_npes_.begin(), failed_npes_.end(), 0);
    remap_ = compiler::planNpeRemap(cfg_.n, failed_npes_);
    // The gauge must not report slots that are healthy again.
    stats_.failed_npes = 0;
}

void
SushiChip::resetStats()
{
    stats_.reset();
    stats_.failed_npes = static_cast<std::uint64_t>(remap_.failed);
}

void
SushiChip::reset()
{
    clearFailedNpes();
    stats_.reset();
}

PulseVector
SushiChip::stepLayer(const compiler::CompiledLayer &layer,
                     const snn::BinaryLayer &blayer,
                     const PulseVector &act)
{
    const std::size_t in_dim = blayer.inDim();
    const std::size_t out_dim = blayer.outDim();
    sushi_assert(act.size() == in_dim);

    // Activation bitset over scheduled positions, plus the (rare)
    // multi-pulse entries from upstream wrap artefacts.
    const std::size_t words = (in_dim + 63) / 64;
    std::vector<std::uint64_t> act_bits(words, 0);
    std::vector<std::pair<std::size_t, int>> extras; // (pos, extra)
    std::uint64_t active_inputs = 0;
    for (std::size_t k = 0; k < in_dim; ++k) {
        const auto idx = static_cast<std::size_t>(
            layer.schedule.order[k]);
        if (act[idx] > 0) {
            act_bits[k / 64] |= std::uint64_t{1} << (k % 64);
            ++active_inputs;
            if (act[idx] > 1)
                extras.emplace_back(k, act[idx] - 1);
        }
    }

    PulseVector out(out_dim, 0);
    const bool degraded = remap_.failed > 0;

    // Counters spilled from the neuron loop. Neurons are independent
    // and these are integer sums (exact, order-free), so evaluating
    // neurons across worker threads yields the same out[] and the
    // same InferenceStats as the sequential loop, bit for bit.
    struct NeuronTally
    {
        std::uint64_t remapped = 0;
        std::uint64_t underflow = 0;
        std::uint64_t syn_ops = 0; // also counts input_pulses
        std::uint64_t multi = 0;
    };

    // Pulse traffic of one (neuron, bucket) pair: scheduled-range
    // popcounts plus the rare multi-pulse extras. Shared by both
    // kernels so they can only differ in counter arithmetic.
    auto bucketCounts = [&](std::size_t o,
                            const compiler::Block &bucket) {
        std::uint64_t neg = popcountRange(
            act_bits, layer.neg_masks[o], bucket.begin, bucket.end);
        std::uint64_t pos = popcountRange(
            act_bits, layer.pos_masks[o], bucket.begin, bucket.end);
        for (const auto &[k, extra] : extras) {
            if (static_cast<int>(k) >= bucket.begin &&
                static_cast<int>(k) < bucket.end) {
                const std::uint64_t bit = std::uint64_t{1}
                                          << (k % 64);
                if (layer.neg_masks[o][k / 64] & bit)
                    neg += static_cast<std::uint64_t>(extra);
                else
                    pos += static_cast<std::uint64_t>(extra);
            }
        }
        return std::pair<std::uint64_t, std::uint64_t>{neg, pos};
    };

    const bool fast_kernel = packedKernels();

    auto evalNeuron = [&](std::size_t o, NeuronTally &tl) {
        if (layer.disabled[o])
            return;
        // Degraded mode: the neuron's home slot is o mod N; if that
        // NPE failed, a healthy host NPE serves it in an extra pass.
        // The counter arithmetic is slot-independent, so results stay
        // bit-identical — only time/reload accounting changes.
        if (degraded &&
            failed_npes_[o % static_cast<std::size_t>(cfg_.n)])
            ++tl.remapped;

        if (fast_kernel) {
            // Closed-form counter, no Npe object per neuron-step.
            FastCounter npe{layer.preload[o],
                            std::uint64_t{1}
                                << static_cast<unsigned>(
                                       cfg_.sc_per_npe)};
            std::uint64_t spikes = npe.addUp(
                static_cast<std::uint64_t>(layer.bias_pulses[o]));
            for (const compiler::Block &bucket :
                 layer.schedule.buckets) {
                const auto [neg, pos] = bucketCounts(o, bucket);
                if (neg) {
                    const std::uint64_t borrows = npe.addDown(neg);
                    tl.underflow += borrows;
                    spikes += borrows;
                }
                if (pos)
                    spikes += npe.addUp(pos);
                tl.syn_ops += neg + pos;
            }
            if (spikes > 1)
                ++tl.multi;
            out[o] = static_cast<std::uint16_t>(spikes);
            return;
        }

        // A fresh counter per neuron-step is behaviourally identical
        // to the time-multiplexed physical NPE (rst + write).
        npe::Npe npe(cfg_.sc_per_npe);
        npe.rst();
        npe.write(layer.preload[o]);
        npe.setPolarity(npe::Polarity::Excitatory);
        std::uint64_t spikes = npe.addPulses(
            static_cast<std::uint64_t>(layer.bias_pulses[o]));

        for (const compiler::Block &bucket : layer.schedule.buckets) {
            // Inhibitory pass first within every bucket (Sec. 5.1).
            const auto [neg, pos] = bucketCounts(o, bucket);
            if (neg) {
                npe.setPolarity(npe::Polarity::Inhibitory);
                const std::uint64_t borrows = npe.addPulses(neg);
                tl.underflow += borrows;
                spikes += borrows;
            }
            if (pos) {
                npe.setPolarity(npe::Polarity::Excitatory);
                spikes += npe.addPulses(pos);
            }
            tl.syn_ops += neg + pos;
        }
        if (spikes > 1)
            ++tl.multi;
        out[o] = static_cast<std::uint16_t>(spikes);
    };

    NeuronTally tally;
    if (sim_threads_ > 1 && out_dim > 1) {
        std::mutex mu;
        ParallelOptions popts;
        popts.grain = 16;
        popts.max_workers = sim_threads_;
        parallelFor(
            out_dim,
            [&](std::size_t begin, std::size_t end) {
                NeuronTally local;
                for (std::size_t o = begin; o < end; ++o)
                    evalNeuron(o, local);
                std::lock_guard<std::mutex> lock(mu);
                tally.remapped += local.remapped;
                tally.underflow += local.underflow;
                tally.syn_ops += local.syn_ops;
                tally.multi += local.multi;
            },
            popts);
    } else {
        for (std::size_t o = 0; o < out_dim; ++o)
            evalNeuron(o, tally);
    }
    stats_.remapped_neurons += tally.remapped;
    stats_.underflow_spikes += tally.underflow;
    stats_.synaptic_ops += tally.syn_ops;
    stats_.input_pulses += tally.syn_ops;
    stats_.multi_fires += tally.multi;

    // Reload + timing accounting for this layer-step.
    stats_.reload_events +=
        static_cast<std::uint64_t>(layer.switch_reloads);
    fabric::MeshConfig mesh = fabric::scalingMeshConfig(cfg_.n);
    const double pulse_ps = fabric::pulseTimePs(mesh);
    // Synapses process in parallel across the mesh: the serialised
    // work per step is the per-output-group pulse traffic.
    const double serial_pulses =
        static_cast<double>(active_inputs) *
        static_cast<double>(layer.slices.numOutBlocks());
    // Weight reloading is parallel per synapse (Sec. 4.2.2): the
    // serialised cost is one configuration batch per block
    // transition whose crosspoints actually change — reordering
    // makes many transitions configuration-free.
    const double blocks =
        static_cast<double>(layer.slices.totalBlocks());
    const double change_fraction = std::min(
        1.0, static_cast<double>(layer.switch_reloads) /
                 (blocks * static_cast<double>(cfg_.n) * cfg_.n));
    double reload_ps = blocks * change_fraction * 250.0;
    double degraded_pulses = 0.0;
    if (degraded) {
        // Each output group runs extra_passes more times to serve the
        // remapped neurons: the input slice is re-streamed and the
        // crosspoints are reconfigured to the remapped weights (and
        // back), one configuration batch per extra pass per block.
        const auto extra_group_passes =
            static_cast<std::uint64_t>(layer.slices.numOutBlocks()) *
            static_cast<std::uint64_t>(remap_.extra_passes);
        stats_.degraded_passes += extra_group_passes;
        stats_.failed_npes =
            static_cast<std::uint64_t>(remap_.failed);
        degraded_pulses =
            static_cast<double>(active_inputs) *
            static_cast<double>(extra_group_passes);
        reload_ps += blocks *
                     static_cast<double>(remap_.extra_passes) * 250.0;
        stats_.reload_events += extra_group_passes;
    }
    stats_.reload_time_ps += reload_ps;
    stats_.est_time_ps +=
        (serial_pulses + degraded_pulses) * pulse_ps + reload_ps;
    return out;
}

PulseVector
SushiChip::stepNetwork(const compiler::CompiledNetwork &net,
                       const PulseVector &input)
{
    sushi_assert(net.net != nullptr);
    sushi_assert(net.layers.size() == net.net->layers().size());
    ++stats_.time_steps;
    // Refresh the compile-plan gauges from the compiler's cached
    // diagnostics (O(1): computed once at compile time).
    stats_.disabled_neurons =
        std::max(stats_.disabled_neurons,
                 static_cast<std::uint64_t>(net.disabled_count));
    stats_.plan_reloads =
        std::max(stats_.plan_reloads,
                 static_cast<std::uint64_t>(net.plan_reloads));
    stats_.jj_utilisation = std::max(stats_.jj_utilisation,
                                     net.budget.jjUtilisation());
    stats_.area_utilisation = std::max(
        stats_.area_utilisation, net.budget.areaUtilisation());
    PulseVector act = input;
    for (std::size_t l = 0; l < net.layers.size(); ++l)
        act = stepLayer(net.layers[l], net.net->layers()[l], act);
    return act;
}

void
SushiChip::countOutputSpikes(const PulseVector &act)
{
    for (const auto pulses : act)
        stats_.output_spikes += static_cast<std::uint64_t>(pulses);
}

void
SushiChip::finishRun()
{
    stats_.dynamic_energy_j = dynamicEnergyJ(stats_.synaptic_ops);
}

std::vector<int>
SushiChip::inferCounts(
    const compiler::CompiledNetwork &net,
    const std::vector<std::vector<std::uint8_t>> &frames)
{
    sushi_assert(net.net != nullptr);
    sushi_assert(net.layers.size() == net.net->layers().size());
    const std::size_t out_dim = net.net->layers().back().outDim();
    std::vector<int> counts(out_dim, 0);
    beginFrame();
    for (const auto &frame : frames) {
        const PulseVector act =
            stepNetwork(net, PulseVector(frame.begin(), frame.end()));
        for (std::size_t o = 0; o < out_dim; ++o)
            counts[o] += act[o];
        countOutputSpikes(act);
    }
    finishRun();
    return counts;
}

int
SushiChip::predict(const compiler::CompiledNetwork &net,
                   const std::vector<std::vector<std::uint8_t>> &frames)
{
    const auto counts = inferCounts(net, frames);
    int best = 0;
    for (std::size_t c = 1; c < counts.size(); ++c)
        if (counts[c] > counts[static_cast<std::size_t>(best)])
            best = static_cast<int>(c);
    return best;
}

} // namespace sushi::chip
