/**
 * @file
 * Logging and error-reporting primitives for the SUSHI library.
 *
 * Follows the gem5 convention:
 *  - panic()  : an internal invariant was violated (a library bug);
 *               aborts so a debugger/core dump can capture state.
 *  - fatal()  : the *user* asked for something impossible (bad config,
 *               out-of-range parameter); exits with an error code.
 *  - warn()   : something is suspicious but simulation can continue.
 *  - inform() : status messages with no connotation of misbehaviour.
 *
 * The sink is thread-safe: records are serialized, so concurrent
 * workers (serve/engine pools) never interleave output, and an
 * installed LogHook receives one complete record per call.
 */

#ifndef SUSHI_COMMON_LOGGING_HH
#define SUSHI_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdlib>
#include <sstream>
#include <string>

namespace sushi {

/** Severity levels understood by the log sink. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail {

/** Format a printf-style message into a std::string. */
std::string vformat(const char *fmt, va_list ap);

/** Emit one log record to the active sink. */
void emit(LogLevel level, const std::string &msg,
          const char *file, int line);

[[noreturn]] void panicImpl(const char *file, int line,
                            const char *fmt, ...);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const char *fmt, ...);
void warnImpl(const char *file, int line, const char *fmt, ...);
void informImpl(const char *file, int line, const char *fmt, ...);

} // namespace detail

/**
 * Install a callback that receives every warn/inform record (used by
 * tests to assert that warnings fire). Pass nullptr to restore the
 * default stderr sink. Fatal/panic always also print to stderr.
 */
using LogHook = void (*)(LogLevel, const std::string &);
void setLogHook(LogHook hook);

/** Count of warnings emitted since process start (for tests). */
std::size_t warnCount();

/**
 * Abort with a message: internal invariant violated.
 * Usage: sushi_panic("bad state %d", s);
 */
#define sushi_panic(...) \
    ::sushi::detail::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Exit with a message: user-caused error (bad configuration). */
#define sushi_fatal(...) \
    ::sushi::detail::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Non-fatal suspicious-condition report. */
#define sushi_warn(...) \
    ::sushi::detail::warnImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Status message. */
#define sushi_inform(...) \
    ::sushi::detail::informImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Assert an invariant; panics (not UB) when violated. */
#define sushi_assert(cond, ...)                                          \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::sushi::detail::panicImpl(__FILE__, __LINE__,               \
                                       "assertion failed: " #cond);      \
        }                                                                \
    } while (0)

} // namespace sushi

#endif // SUSHI_COMMON_LOGGING_HH
