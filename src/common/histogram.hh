/**
 * @file
 * Fixed-bucket latency/size histogram for the serving layer.
 *
 * Buckets are frozen at construction (a sorted list of inclusive
 * upper bounds plus one implicit overflow bucket), samples are
 * integers, and every aggregate (count, sum, min, max, per-bucket
 * counts) is integer-valued — so filling order never changes the
 * result and two histograms built from the same multiset of samples
 * render byte-identical JSON. Histograms with identical bounds merge
 * by bucket-wise addition, which keeps the per-replica → global
 * rollup deterministic too.
 *
 * Percentiles are bucket-resolution: percentile(p) returns the upper
 * bound of the bucket holding the rank-p sample, clamped to the
 * observed [min, max]. That is deterministic and monotone in p,
 * which is all the serving metrics need.
 */

#ifndef SUSHI_COMMON_HISTOGRAM_HH
#define SUSHI_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sushi {

class JsonWriter;

/** Fixed-bucket, mergeable, byte-deterministic histogram. */
class Histogram
{
  public:
    /** @param bounds strictly increasing inclusive upper bounds;
     *  values above the last bound land in the overflow bucket. */
    explicit Histogram(std::vector<std::int64_t> bounds);

    /** Power-of-two bounds 1, 2, 4, ... 2^40 — six decades of
     *  nanoseconds at ~2x resolution, the latency default. */
    static Histogram exponential();

    /** Linear bounds lo, lo+step, ... up to hi (inclusive). */
    static Histogram linear(std::int64_t lo, std::int64_t hi,
                            std::int64_t step);

    /** Record one sample. */
    void sample(std::int64_t v);

    /** Bucket-wise merge; bounds must be identical. */
    void merge(const Histogram &other);

    /** Forget every sample but keep the bucket bounds (and their
     *  allocation) — the delta-accumulator reuse path: a shard's
     *  histogram delta is merged into the global rollup and reset in
     *  place, so the steady-state fold allocates nothing. */
    void reset();

    std::uint64_t count() const { return count_; }
    std::int64_t sum() const { return sum_; }
    std::int64_t min() const { return count_ ? min_ : 0; }
    std::int64_t max() const { return count_ ? max_ : 0; }
    double mean() const;

    /** Upper bound of the bucket holding the rank-ceil(p*count)
     *  sample, clamped to [min, max]; 0 on an empty histogram.
     *  @param p in [0, 1]. */
    std::int64_t percentile(double p) const;

    const std::vector<std::int64_t> &bounds() const { return bounds_; }

    /** Count in bucket @p i; i == bounds().size() is the overflow
     *  bucket. */
    std::uint64_t bucketCount(std::size_t i) const;

    /**
     * Byte-deterministic single-line JSON object:
     * {"count": .., "sum": .., "min": .., "max": .., "mean": ..,
     *  "p50": .., "p95": .., "p99": ..,
     *  "buckets": [{"le": b, "n": c}, ...], "overflow": c}
     * Only non-empty buckets are listed. Splice into a document with
     * JsonWriter::rawField.
     */
    std::string json() const;

  private:
    std::vector<std::int64_t> bounds_;
    std::vector<std::uint64_t> counts_; ///< bounds_.size() + 1 slots
    std::uint64_t count_ = 0;
    std::int64_t sum_ = 0;
    std::int64_t min_ = 0;
    std::int64_t max_ = 0;
};

} // namespace sushi

#endif // SUSHI_COMMON_HISTOGRAM_HH
