#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <vector>

namespace sushi {

namespace {

std::atomic<LogHook> g_hook{nullptr};
std::atomic<std::size_t> g_warn_count{0};

/** Serializes the sink: concurrent serve/engine workers must not
 *  interleave log records, and a test hook must observe one complete
 *  record per call (the hook runs under this lock too). */
std::mutex g_emit_mu;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

void
setLogHook(LogHook hook)
{
    g_hook.store(hook);
}

std::size_t
warnCount()
{
    return g_warn_count.load();
}

namespace detail {

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n <= 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<std::size_t>(n));
}

void
emit(LogLevel level, const std::string &msg, const char *file, int line)
{
    std::lock_guard<std::mutex> lock(g_emit_mu);
    LogHook hook = g_hook.load();
    if (hook && (level == LogLevel::Warn || level == LogLevel::Inform)) {
        hook(level, msg);
        return;
    }
    if (level == LogLevel::Fatal || level == LogLevel::Panic) {
        std::fprintf(stderr, "%s: %s (%s:%d)\n",
                     levelName(level), msg.c_str(), file, line);
    } else {
        std::fprintf(stderr, "%s: %s\n", levelName(level), msg.c_str());
    }
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit(LogLevel::Panic, msg, file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit(LogLevel::Fatal, msg, file, line);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    g_warn_count.fetch_add(1);
    emit(LogLevel::Warn, msg, file, line);
}

void
informImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit(LogLevel::Inform, msg, file, line);
}

} // namespace detail
} // namespace sushi
