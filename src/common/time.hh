/**
 * @file
 * Simulation time representation.
 *
 * SFQ pulses are ~1 ps wide and the SIMIT-Nb03 constraint table
 * (paper Table 1) is specified to 10 fs precision (e.g. 8.53 ps), so
 * the simulator counts time in integer femtoseconds. Integer ticks
 * make event ordering exact and reproducible.
 */

#ifndef SUSHI_COMMON_TIME_HH
#define SUSHI_COMMON_TIME_HH

#include <cstdint>

namespace sushi {

/** Simulation tick: one femtosecond. */
using Tick = std::int64_t;

/** Ticks per picosecond. */
constexpr Tick kTicksPerPs = 1000;

/** Ticks per nanosecond. */
constexpr Tick kTicksPerNs = 1000 * kTicksPerPs;

/** Convert picoseconds (possibly fractional) to ticks. */
constexpr Tick
psToTicks(double ps)
{
    // Round to nearest tick; constraint values like 8.53 ps are exact.
    return static_cast<Tick>(ps * static_cast<double>(kTicksPerPs) +
                             (ps >= 0 ? 0.5 : -0.5));
}

/** Convert ticks back to picoseconds. */
constexpr double
ticksToPs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerPs);
}

/** Convert ticks to seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) * 1e-15;
}

/** A time value that means "never". */
constexpr Tick kTickNever = INT64_MAX;

} // namespace sushi

#endif // SUSHI_COMMON_TIME_HH
