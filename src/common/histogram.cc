#include "common/histogram.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/stats.hh"

namespace sushi {

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1, 0)
{
    sushi_assert(!bounds_.empty());
    for (std::size_t i = 1; i < bounds_.size(); ++i)
        sushi_assert(bounds_[i - 1] < bounds_[i]);
}

Histogram
Histogram::exponential()
{
    std::vector<std::int64_t> bounds;
    bounds.reserve(41);
    for (int p = 0; p <= 40; ++p)
        bounds.push_back(std::int64_t{1} << p);
    return Histogram(std::move(bounds));
}

Histogram
Histogram::linear(std::int64_t lo, std::int64_t hi, std::int64_t step)
{
    sushi_assert(step > 0 && lo <= hi);
    std::vector<std::int64_t> bounds;
    for (std::int64_t b = lo; b <= hi; b += step)
        bounds.push_back(b);
    return Histogram(std::move(bounds));
}

void
Histogram::sample(std::int64_t v)
{
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), v);
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

void
Histogram::merge(const Histogram &other)
{
    sushi_assert(bounds_ == other.bounds_);
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
}

std::int64_t
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    p = std::clamp(p, 0.0, 1.0);
    auto rank = static_cast<std::uint64_t>(
        p * static_cast<double>(count_) + 0.9999999999);
    rank = std::clamp<std::uint64_t>(rank, 1, count_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen >= rank) {
            const std::int64_t le =
                i < bounds_.size() ? bounds_[i] : max_;
            return std::clamp(le, min_, max_);
        }
    }
    return max_;
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    sushi_assert(i < counts_.size());
    return counts_[i];
}

std::string
Histogram::json() const
{
    std::string out = "{";
    out += "\"count\": " + std::to_string(count_);
    out += ", \"sum\": " + std::to_string(sum_);
    out += ", \"min\": " + std::to_string(min());
    out += ", \"max\": " + std::to_string(max());
    out += ", \"mean\": " + JsonWriter::number(mean());
    out += ", \"p50\": " + std::to_string(percentile(0.50));
    out += ", \"p95\": " + std::to_string(percentile(0.95));
    out += ", \"p99\": " + std::to_string(percentile(0.99));
    out += ", \"buckets\": [";
    bool first = true;
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        if (!first)
            out += ", ";
        first = false;
        out += "{\"le\": " + std::to_string(bounds_[i]) +
               ", \"n\": " + std::to_string(counts_[i]) + "}";
    }
    out += "], \"overflow\": " + std::to_string(counts_.back());
    out += "}";
    return out;
}

} // namespace sushi
