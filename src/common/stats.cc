#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>

namespace sushi {

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    sum_sq_ += v * v;
}

void
Distribution::merge(const Distribution &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
    sum_sq_ += other.sum_sq_;
}

double
Distribution::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Distribution::stddev() const
{
    if (count_ == 0)
        return 0.0;
    const double m = mean();
    const double var =
        sum_sq_ / static_cast<double>(count_) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
StatSet::inc(const std::string &name, std::uint64_t delta)
{
    counters_[name] += delta;
}

void
StatSet::set(const std::string &name, double value)
{
    scalars_[name] = value;
}

void
StatSet::sample(const std::string &name, double value)
{
    dists_[name].sample(value);
}

std::uint64_t
StatSet::counter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
StatSet::scalar(const std::string &name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? 0.0 : it->second;
}

const Distribution &
StatSet::dist(const std::string &name) const
{
    static const Distribution empty;
    auto it = dists_.find(name);
    return it == dists_.end() ? empty : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return counters_.count(name) || scalars_.count(name) ||
           dists_.count(name);
}

void
StatSet::clear()
{
    counters_.clear();
    scalars_.clear();
    dists_.clear();
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &[name, v] : counters_)
        os << std::left << std::setw(40) << name << v << "\n";
    for (const auto &[name, v] : scalars_)
        os << std::left << std::setw(40) << name << v << "\n";
    for (const auto &[name, d] : dists_) {
        os << std::left << std::setw(40) << name
           << "n=" << d.count() << " mean=" << d.mean()
           << " sd=" << d.stddev() << " min=" << d.min()
           << " max=" << d.max() << "\n";
    }
}

namespace {

/** Minimal JSON string escaping (quotes, backslash, control). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

void
JsonWriter::entry(const std::string &name)
{
    auto &[scope, count] = stack_.back();
    if (scope == Scope::Inline) {
        // Row object: fields stay on one line.
        out_ += count > 0 ? ", " : "";
    } else {
        if (count > 0)
            out_ += ",";
        out_ += "\n";
        out_.append(2 * stack_.size(), ' ');
    }
    ++count;
    if (scope != Scope::Array) {
        out_ += "\"";
        out_ += jsonEscape(name);
        out_ += "\": ";
    }
}

void
JsonWriter::field(const std::string &name, double v)
{
    entry(name);
    out_ += number(v);
}

void
JsonWriter::field(const std::string &name, bool v)
{
    entry(name);
    out_ += v ? "true" : "false";
}

void
JsonWriter::field(const std::string &name, std::uint64_t v)
{
    entry(name);
    out_ += std::to_string(v);
}

void
JsonWriter::field(const std::string &name, std::int64_t v)
{
    entry(name);
    out_ += std::to_string(v);
}

void
JsonWriter::field(const std::string &name, int v)
{
    entry(name);
    out_ += std::to_string(v);
}

void
JsonWriter::field(const std::string &name, const std::string &v)
{
    entry(name);
    out_ += "\"";
    out_ += jsonEscape(v);
    out_ += "\"";
}

void
JsonWriter::field(const std::string &name, const char *v)
{
    field(name, std::string(v));
}

void
JsonWriter::rawField(const std::string &name, const std::string &json)
{
    entry(name);
    out_ += json;
}

void
JsonWriter::beginArray(const std::string &name)
{
    entry(name);
    out_ += "[";
    stack_.emplace_back(Scope::Array, 0);
}

void
JsonWriter::endArray()
{
    const bool had_rows = stack_.back().second > 0;
    stack_.pop_back();
    if (had_rows) {
        out_ += "\n";
        out_.append(2 * stack_.size(), ' ');
    }
    out_ += "]";
}

void
JsonWriter::beginObject()
{
    entry("");
    out_ += "{";
    stack_.emplace_back(Scope::Inline, 0);
}

void
JsonWriter::endObject()
{
    stack_.pop_back();
    out_ += "}";
}

std::string
JsonWriter::finish()
{
    out_ += "\n}\n";
    return std::move(out_);
}

std::string
JsonWriter::number(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    return buf;
}

bool
JsonWriter::writeFile(const std::string &path,
                      const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    return std::fclose(f) == 0 && ok;
}

} // namespace sushi
