#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

namespace sushi {

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    sum_sq_ += v * v;
}

void
Distribution::merge(const Distribution &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
    sum_sq_ += other.sum_sq_;
}

double
Distribution::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Distribution::stddev() const
{
    if (count_ == 0)
        return 0.0;
    const double m = mean();
    const double var =
        sum_sq_ / static_cast<double>(count_) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
StatSet::inc(const std::string &name, std::uint64_t delta)
{
    counters_[name] += delta;
}

void
StatSet::set(const std::string &name, double value)
{
    scalars_[name] = value;
}

void
StatSet::sample(const std::string &name, double value)
{
    dists_[name].sample(value);
}

std::uint64_t
StatSet::counter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
StatSet::scalar(const std::string &name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? 0.0 : it->second;
}

const Distribution &
StatSet::dist(const std::string &name) const
{
    static const Distribution empty;
    auto it = dists_.find(name);
    return it == dists_.end() ? empty : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return counters_.count(name) || scalars_.count(name) ||
           dists_.count(name);
}

void
StatSet::clear()
{
    counters_.clear();
    scalars_.clear();
    dists_.clear();
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &[name, v] : counters_)
        os << std::left << std::setw(40) << name << v << "\n";
    for (const auto &[name, v] : scalars_)
        os << std::left << std::setw(40) << name << v << "\n";
    for (const auto &[name, d] : dists_) {
        os << std::left << std::setw(40) << name
           << "n=" << d.count() << " mean=" << d.mean()
           << " sd=" << d.stddev() << " min=" << d.min()
           << " max=" << d.max() << "\n";
    }
}

} // namespace sushi
