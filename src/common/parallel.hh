/**
 * @file
 * Data-parallel helpers: a persistent worker pool plus parallelFor
 * built on top of it.
 *
 * The pool is shared process-wide (WorkerPool::shared) so repeated
 * parallel regions — SNN training epochs, fault-campaign trials,
 * inference-engine batches — reuse the same threads instead of
 * paying thread start-up per call. Worker count comes from the
 * hardware, overridable with the SUSHI_WORKERS environment variable.
 *
 * Determinism contract: parallelFor assigns contiguous index chunks
 * to jobs; callers that write results only through their own indices
 * get results independent of the worker count. Nested parallelFor
 * calls from inside a pool worker run inline (no deadlock, no
 * oversubscription).
 */

#ifndef SUSHI_COMMON_PARALLEL_HH
#define SUSHI_COMMON_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sushi {

/**
 * A reusable rendezvous barrier for a fixed party count.
 *
 * Built for tightly-coupled lock-step loops (the parallel gate
 * simulator's time windows, where every window ends in two barriers):
 * arrivals spin briefly on the generation counter — the common case
 * when all parties run in parallel on real cores — then fall back to
 * a condition variable so oversubscribed or single-core hosts don't
 * burn their timeslice spinning on a party that cannot be running.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(unsigned parties) : parties_(parties) {}

    SpinBarrier(const SpinBarrier &) = delete;
    SpinBarrier &operator=(const SpinBarrier &) = delete;

    /** Block until all parties have arrived; reusable immediately. */
    void
    arriveAndWait()
    {
        const std::uint64_t gen =
            generation_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            parties_) {
            // Last arrival opens the next generation. The reset of
            // arrived_ is published by the release store below, so
            // early risers of the new generation can't observe a
            // stale count.
            arrived_.store(0, std::memory_order_relaxed);
            {
                std::lock_guard<std::mutex> lk(mu_);
                generation_.store(gen + 1,
                                  std::memory_order_release);
            }
            cv_.notify_all();
            return;
        }
        for (int spin = 0; spin < kSpins; ++spin) {
            if (generation_.load(std::memory_order_acquire) != gen)
                return;
            if ((spin & 63) == 63)
                std::this_thread::yield();
        }
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] {
            return generation_.load(std::memory_order_acquire) !=
                   gen;
        });
    }

  private:
    static constexpr int kSpins = 1024;

    const unsigned parties_;
    std::atomic<unsigned> arrived_{0};
    std::atomic<std::uint64_t> generation_{0};
    std::mutex mu_;
    std::condition_variable cv_;
};

/** Knobs for parallelFor. */
struct ParallelOptions
{
    /** Minimum items per chunk before the loop is split; loops
     *  smaller than one grain run inline. Use grain = 1 for jobs
     *  whose per-item work is heavy (e.g. one chip replica). */
    std::size_t grain = 256;

    /** Cap on concurrent chunks (0 = pool size). Determinism checks
     *  use this to re-run identical work at different widths. */
    unsigned max_workers = 0;
};

/**
 * A fixed-size pool of worker threads draining a FIFO job queue.
 *
 * submit() never blocks; drain() blocks until every submitted job
 * has finished and rethrows the first exception a job raised.
 */
class WorkerPool
{
  public:
    /** @param workers thread count; 0 selects parallelWorkers(). */
    explicit WorkerPool(unsigned workers = 0);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** Enqueue a job; runs it inline if the pool has no threads. */
    void submit(std::function<void()> job);

    /** Wait until every submitted job finished; rethrows the first
     *  job exception. */
    void drain();

    /** The process-wide pool (created on first use, sized by
     *  parallelWorkers()). */
    static WorkerPool &shared();

    /** True when called from inside a pool worker thread. */
    static bool onWorkerThread();

  private:
    void workerMain();

    mutable std::mutex mu_;
    std::condition_variable work_cv_;
    std::condition_variable idle_cv_;
    std::deque<std::function<void()>> queue_;
    std::size_t in_flight_ = 0;
    bool stop_ = false;
    std::exception_ptr error_;
    std::vector<std::thread> threads_;
};

/**
 * Run fn(begin, end) over [0, n) split across the shared pool.
 * Chunks are contiguous; fn must be safe to run concurrently on
 * disjoint ranges. Runs inline when n is small (per opts.grain) or
 * when already on a pool worker thread.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t, std::size_t)> &fn,
                 const ParallelOptions &opts);

/** parallelFor with default options (grain 256). */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t, std::size_t)> &fn);

/** Number of worker threads the shared pool uses: the SUSHI_WORKERS
 *  environment variable when set, else hardware concurrency. */
unsigned parallelWorkers();

} // namespace sushi

#endif // SUSHI_COMMON_PARALLEL_HH
