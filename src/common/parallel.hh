/**
 * @file
 * Minimal data-parallel helper for CPU-bound loops (SNN training).
 */

#ifndef SUSHI_COMMON_PARALLEL_HH
#define SUSHI_COMMON_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace sushi {

/**
 * Run fn(begin, end) over [0, n) split across hardware threads.
 * Chunks are contiguous; fn must be safe to run concurrently on
 * disjoint ranges. Runs inline when n is small.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t, std::size_t)> &fn);

/** Number of worker threads parallelFor will use. */
unsigned parallelWorkers();

} // namespace sushi

#endif // SUSHI_COMMON_PARALLEL_HH
