#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace sushi {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // Use the top 53 bits for a uniform double in [0,1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    sushi_assert(n > 0);
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    sushi_assert(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double
Rng::gaussian()
{
    if (have_spare_) {
        have_spare_ = false;
        return spare_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586;
    spare_ = mag * std::sin(two_pi * u2);
    have_spare_ = true;
    return mag * std::cos(two_pi * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xa02bdbf7bb3c0a7ULL);
}

double
keyedGaussian(double mean, double stddev, std::uint64_t seed,
              std::uint64_t stream, std::uint32_t &counter)
{
    // Box-Muller on exactly two keyed uniforms. u1 is mapped into
    // (0, 1] so log() never sees zero without a variable-length
    // rejection loop (fixed consumption is the whole point here).
    const double u1 =
        1.0 - keyedUniform(seed, stream, counter); // (0, 1]
    const double u2 = keyedUniform(seed, stream, counter);
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586;
    return mean + stddev * (mag * std::cos(two_pi * u2));
}

} // namespace sushi
