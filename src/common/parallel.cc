#include "common/parallel.hh"

#include <algorithm>
#include <thread>
#include <vector>

namespace sushi {

unsigned
parallelWorkers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
parallelFor(std::size_t n,
            const std::function<void(std::size_t, std::size_t)> &fn)
{
    if (n == 0)
        return;
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(parallelWorkers(),
                                                    n));
    if (workers <= 1 || n < 256) {
        fn(0, n);
        return;
    }
    const std::size_t chunk = (n + workers - 1) / workers;
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        const std::size_t begin = w * chunk;
        const std::size_t end = std::min(n, begin + chunk);
        if (begin >= end)
            break;
        threads.emplace_back([&fn, begin, end] { fn(begin, end); });
    }
    for (auto &t : threads)
        t.join();
}

} // namespace sushi
