#include "common/parallel.hh"

#include <algorithm>
#include <cstdlib>

namespace sushi {

namespace {

thread_local bool t_on_worker = false;

} // namespace

unsigned
parallelWorkers()
{
    static const unsigned workers = [] {
        if (const char *env = std::getenv("SUSHI_WORKERS")) {
            const long v = std::strtol(env, nullptr, 10);
            if (v >= 1)
                return static_cast<unsigned>(v);
        }
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1u : hw;
    }();
    return workers;
}

WorkerPool::WorkerPool(unsigned workers)
{
    if (workers == 0)
        workers = parallelWorkers();
    // A 1-wide pool still gets a thread: submit() must never run the
    // job on the caller's stack while other jobs are in flight, or
    // drain()-free pipelining would break.
    threads_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        threads_.emplace_back([this] { workerMain(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
WorkerPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(job));
        ++in_flight_;
    }
    work_cv_.notify_one();
}

void
WorkerPool::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
    if (error_) {
        std::exception_ptr err;
        std::swap(err, error_);
        std::rethrow_exception(err);
    }
}

WorkerPool &
WorkerPool::shared()
{
    static WorkerPool pool;
    return pool;
}

bool
WorkerPool::onWorkerThread()
{
    return t_on_worker;
}

void
WorkerPool::workerMain()
{
    t_on_worker = true;
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock,
                          [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and queue drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            job();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (!error_)
                error_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--in_flight_ == 0)
                idle_cv_.notify_all();
        }
    }
}

void
parallelFor(std::size_t n,
            const std::function<void(std::size_t, std::size_t)> &fn,
            const ParallelOptions &opts)
{
    if (n == 0)
        return;
    WorkerPool &pool = WorkerPool::shared();
    std::size_t workers = pool.size();
    if (opts.max_workers != 0)
        workers = std::min<std::size_t>(workers, opts.max_workers);
    if (opts.grain > 1)
        workers = std::min(workers,
                           (n + opts.grain - 1) / opts.grain);
    workers = std::min(workers, n);
    if (workers <= 1 || WorkerPool::onWorkerThread()) {
        fn(0, n);
        return;
    }

    // Per-call completion latch: concurrent parallelFor calls (and
    // other pool users) must not wait on each other's jobs.
    struct Latch
    {
        std::mutex mu;
        std::condition_variable cv;
        std::size_t remaining;
        std::exception_ptr error;
    } latch;

    const std::size_t chunk = (n + workers - 1) / workers;
    std::size_t chunks = 0;
    for (std::size_t begin = 0; begin < n; begin += chunk)
        ++chunks;
    latch.remaining = chunks;

    for (std::size_t begin = 0; begin < n; begin += chunk) {
        const std::size_t end = std::min(n, begin + chunk);
        pool.submit([&fn, &latch, begin, end] {
            try {
                fn(begin, end);
            } catch (...) {
                std::lock_guard<std::mutex> lock(latch.mu);
                if (!latch.error)
                    latch.error = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(latch.mu);
            if (--latch.remaining == 0)
                latch.cv.notify_all();
        });
    }

    std::unique_lock<std::mutex> lock(latch.mu);
    latch.cv.wait(lock, [&latch] { return latch.remaining == 0; });
    if (latch.error)
        std::rethrow_exception(latch.error);
}

void
parallelFor(std::size_t n,
            const std::function<void(std::size_t, std::size_t)> &fn)
{
    parallelFor(n, fn, ParallelOptions{});
}

} // namespace sushi
