/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * A small xoshiro256** implementation is used instead of <random>
 * engines so that streams are bit-identical across platforms and
 * standard-library versions: every experiment in the repository is
 * seeded and reproducible.
 *
 * Alongside the sequential Rng there is a *keyed* (counter-based)
 * draw family: each variate is a pure function of (seed, stream,
 * counter), with no generator state shared between streams. Consumers
 * that must produce identical decisions regardless of the order in
 * which independent streams interleave — the partitioned parallel
 * simulator's per-cell fault draws — key every draw by the cell id
 * and a per-cell counter, so the global execution order drops out of
 * the randomness entirely.
 */

#ifndef SUSHI_COMMON_RNG_HH
#define SUSHI_COMMON_RNG_HH

#include <cstdint>

namespace sushi {

/** xoshiro256** generator with splitmix64 seeding. */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x5f0e1c2b3a495867ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Standard normal variate (Box-Muller). */
    double gaussian();

    /** Gaussian with given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli trial with probability p of true. */
    bool chance(double p);

    /** Derive an independent child stream (for per-worker RNGs). */
    Rng fork();

  private:
    std::uint64_t s_[4];
    bool have_spare_ = false;
    double spare_ = 0.0;
};

/** SplitMix64 finalizer: a strong 64-bit bit mixer. */
constexpr std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Raw 64 bits of the keyed stream (seed, stream) at @p counter. */
constexpr std::uint64_t
keyedBits(std::uint64_t seed, std::uint64_t stream,
          std::uint64_t counter)
{
    std::uint64_t z = mix64(seed);
    z ^= mix64(stream + 0x9e3779b97f4a7c15ULL);
    z ^= mix64(counter + 0xbf58476d1ce4e5b9ULL);
    return mix64(z);
}

/** Keyed uniform double in [0, 1); consumes one counter value. */
inline double
keyedUniform(std::uint64_t seed, std::uint64_t stream,
             std::uint32_t &counter)
{
    const std::uint64_t bits = keyedBits(seed, stream, counter++);
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/** Keyed Bernoulli trial; consumes one counter value. */
inline bool
keyedChance(double p, std::uint64_t seed, std::uint64_t stream,
            std::uint32_t &counter)
{
    return keyedUniform(seed, stream, counter) < p;
}

/**
 * Keyed standard normal variate (Box-Muller). Always consumes exactly
 * two counter values — unlike Rng::gaussian there is no spare-value
 * caching, so consumption per call is fixed and the stream position
 * stays a pure function of the draw count.
 */
double keyedGaussian(double mean, double stddev, std::uint64_t seed,
                     std::uint64_t stream, std::uint32_t &counter);

} // namespace sushi

#endif // SUSHI_COMMON_RNG_HH
