/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * A small xoshiro256** implementation is used instead of <random>
 * engines so that streams are bit-identical across platforms and
 * standard-library versions: every experiment in the repository is
 * seeded and reproducible.
 */

#ifndef SUSHI_COMMON_RNG_HH
#define SUSHI_COMMON_RNG_HH

#include <cstdint>

namespace sushi {

/** xoshiro256** generator with splitmix64 seeding. */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x5f0e1c2b3a495867ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Standard normal variate (Box-Muller). */
    double gaussian();

    /** Gaussian with given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli trial with probability p of true. */
    bool chance(double p);

    /** Derive an independent child stream (for per-worker RNGs). */
    Rng fork();

  private:
    std::uint64_t s_[4];
    bool have_spare_ = false;
    double spare_ = 0.0;
};

} // namespace sushi

#endif // SUSHI_COMMON_RNG_HH
