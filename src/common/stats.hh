/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Components register scalar counters and distributions under
 * hierarchical dotted names (e.g. "chip.npe0.flips"); a StatSet can be
 * dumped as aligned text for benches and inspected from tests.
 */

#ifndef SUSHI_COMMON_STATS_HH
#define SUSHI_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace sushi {

/** Running summary of a sampled quantity. */
class Distribution
{
  public:
    /** Record one sample. */
    void sample(double v);

    /** Merge another distribution into this one. */
    void merge(const Distribution &other);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const;
    /** Population standard deviation. */
    double stddev() const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** A flat registry of counters and distributions keyed by name. */
class StatSet
{
  public:
    /** Add delta to the named counter (created at zero on first use). */
    void inc(const std::string &name, std::uint64_t delta = 1);

    /** Set the named scalar to an explicit value. */
    void set(const std::string &name, double value);

    /** Record a sample into the named distribution. */
    void sample(const std::string &name, double value);

    /** Counter value (0 if never touched). */
    std::uint64_t counter(const std::string &name) const;

    /** Scalar value (0.0 if never set). */
    double scalar(const std::string &name) const;

    /** Distribution by name (empty distribution if absent). */
    const Distribution &dist(const std::string &name) const;

    /** True if the given counter/scalar/distribution exists. */
    bool has(const std::string &name) const;

    /** Remove everything. */
    void clear();

    /** Dump all stats as aligned "name value" lines. */
    void dump(std::ostream &os) const;

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> scalars_;
    std::map<std::string, Distribution> dists_;
};

/**
 * Byte-deterministic JSON emitter for bench/report files.
 *
 * One writer serves every BENCH_*.json producer so the number
 * formatting ("%.12g" doubles), indentation (two spaces per level)
 * and field ordering (insertion order, never sorted) are identical
 * across emitters — CI diffs two runs' artifacts byte-for-byte.
 *
 * Objects nested directly inside arrays are rendered inline (one row
 * per line), matching the long-standing shape of the campaign and
 * bench files:
 *
 *   {
 *     "workload": "npe_counter",
 *     "points": [
 *       {"rate": 0, "accuracy": 1},
 *       {"rate": 0.01, "accuracy": 0.9}
 *     ]
 *   }
 */
class JsonWriter
{
  public:
    JsonWriter() { out_ += "{"; }

    /** Scalar fields, insertion-ordered. */
    void field(const std::string &name, double v);
    void field(const std::string &name, bool v);
    void field(const std::string &name, std::uint64_t v);
    void field(const std::string &name, std::int64_t v);
    void field(const std::string &name, int v);
    void field(const std::string &name, const std::string &v);
    void field(const std::string &name, const char *v);

    /** Field whose value is pre-rendered JSON, spliced verbatim. */
    void rawField(const std::string &name, const std::string &json);

    /** Open / close a named array of inline-object rows. */
    void beginArray(const std::string &name);
    void endArray();

    /** Open / close one row object inside the current array. */
    void beginObject();
    void endObject();

    /** Close the root object and return the document (with final
     *  newline). The writer must not be used afterwards. */
    std::string finish();

    /** Shared double rendering: shortest round-trippable "%.12g". */
    static std::string number(double v);

    /** Write @p text to @p path; false on any I/O error. */
    static bool writeFile(const std::string &path,
                          const std::string &text);

  private:
    enum class Scope { Object, Array, Inline };

    void entry(const std::string &name);

    std::string out_;
    std::vector<std::pair<Scope, int>> stack_{{Scope::Object, 0}};
};

} // namespace sushi

#endif // SUSHI_COMMON_STATS_HH
