/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Components register scalar counters and distributions under
 * hierarchical dotted names (e.g. "chip.npe0.flips"); a StatSet can be
 * dumped as aligned text for benches and inspected from tests.
 */

#ifndef SUSHI_COMMON_STATS_HH
#define SUSHI_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace sushi {

/** Running summary of a sampled quantity. */
class Distribution
{
  public:
    /** Record one sample. */
    void sample(double v);

    /** Merge another distribution into this one. */
    void merge(const Distribution &other);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const;
    /** Population standard deviation. */
    double stddev() const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** A flat registry of counters and distributions keyed by name. */
class StatSet
{
  public:
    /** Add delta to the named counter (created at zero on first use). */
    void inc(const std::string &name, std::uint64_t delta = 1);

    /** Set the named scalar to an explicit value. */
    void set(const std::string &name, double value);

    /** Record a sample into the named distribution. */
    void sample(const std::string &name, double value);

    /** Counter value (0 if never touched). */
    std::uint64_t counter(const std::string &name) const;

    /** Scalar value (0.0 if never set). */
    double scalar(const std::string &name) const;

    /** Distribution by name (empty distribution if absent). */
    const Distribution &dist(const std::string &name) const;

    /** True if the given counter/scalar/distribution exists. */
    bool has(const std::string &name) const;

    /** Remove everything. */
    void clear();

    /** Dump all stats as aligned "name value" lines. */
    void dump(std::ostream &os) const;

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> scalars_;
    std::map<std::string, Distribution> dists_;
};

} // namespace sushi

#endif // SUSHI_COMMON_STATS_HH
