/**
 * @file
 * Calendar event queue for the RSFQ simulator.
 *
 * Events are POD records ({tick, seq, cell_id, port} — 24 bytes, no
 * per-event allocation) kept in a calendar of day-wide buckets:
 *
 *  - the *draining day* is a small binary min-heap (`cur_`) ordered
 *    by (when, cell, port, seq) — an *intrinsic* tie-break: the pop
 *    order of equal-tick events depends only on what the events are,
 *    never on the order they were pushed. That is what lets the
 *    partitioned parallel simulator reproduce the sequential order
 *    exactly — each partition pops its own events in the same
 *    relative order the single queue would have, regardless of when
 *    boundary pulses were merged in (callbacks sort first at a tick,
 *    in schedule order);
 *  - days within the ring horizon land in unsorted per-day buckets
 *    and are only heapified when their day starts draining;
 *  - events past the horizon go to an overflow min-heap and migrate
 *    into the calendar as the draining day advances (including a
 *    direct jump when the ring runs dry, so sparse far-future
 *    schedules cost no empty-day scans).
 *
 * All storage is pooled vectors: clear() keeps capacity, so campaign
 * loops re-use the same allocations run after run.
 */

#ifndef SUSHI_SFQ_EVENT_QUEUE_HH
#define SUSHI_SFQ_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/time.hh"

namespace sushi::sfq {

/** A time-ordered queue of POD pulse-delivery events. */
class EventQueue
{
  public:
    /** Pseudo cell id marking a pooled Simulator callback; the
     *  event's port field then holds the callback pool slot. */
    static constexpr std::int32_t kCallbackCell = -1;

    /** One scheduled delivery: pulse into input @p port of compiled
     *  cell @p cell at tick @p when. Equal-tick ties order by
     *  (cell, port); @p seq only breaks full (when, cell, port)
     *  collisions, in insertion order. */
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        std::int32_t cell;
        std::int32_t port;
    };

    /** Width of one calendar day: 2^15 ticks = 32.768 ps, a couple of
     *  cell-cascade depths, so a day's heap stays small. */
    static constexpr int kDayBits = 15;
    static constexpr Tick kDayTicks = Tick{1} << kDayBits;

    /** Ring size in days (power of two for cheap masking). */
    static constexpr Tick kNumDays = 256;

    /** Pushes this far past the draining day overflow to the heap. */
    static constexpr Tick kHorizonTicks = kDayTicks * kNumDays;

    EventQueue() : days_(static_cast<std::size_t>(kNumDays)) {}

    /** Schedule delivery at absolute tick @p when. */
    void
    push(Tick when, std::int32_t cell, std::int32_t port)
    {
        sushi_assert(when >= 0);
        const Event ev{when, next_seq_++, cell, port};
        const Tick d = when >> kDayBits;
        if (d <= cur_day_) {
            // The draining day (or, without a simulator enforcing
            // monotonic time, an earlier one): joins the live heap.
            cur_.push_back(ev);
            std::push_heap(cur_.begin(), cur_.end(), Later{});
        } else if (d - cur_day_ < kNumDays) {
            days_[static_cast<std::size_t>(d & (kNumDays - 1))]
                .push_back(ev);
            ++ring_count_;
        } else {
            overflow_.push_back(ev);
            std::push_heap(overflow_.begin(), overflow_.end(),
                           Later{});
        }
        ++size_;
    }

    /** True if no events are pending. */
    bool empty() const { return size_ == 0; }

    /** Number of pending events. */
    std::size_t size() const { return size_; }

    /** Tick of the earliest pending event; kTickNever if empty. */
    Tick
    nextTick()
    {
        if (size_ == 0)
            return kTickNever;
        if (cur_.empty())
            refill();
        return cur_.front().when;
    }

    /**
     * Pop the earliest event into @p out if its tick is <= @p until.
     * @return false (leaving the queue untouched) when the queue is
     *         empty or the earliest event lies past @p until.
     */
    bool
    popNext(Tick until, Event &out)
    {
        if (size_ == 0)
            return false;
        if (cur_.empty())
            refill();
        if (cur_.front().when > until)
            return false;
        out = cur_.front();
        std::pop_heap(cur_.begin(), cur_.end(), Later{});
        cur_.pop_back();
        --size_;
        ++executed_;
        return true;
    }

    /** Pop the earliest event unconditionally (must not be empty). */
    Event
    pop()
    {
        Event ev{};
        const bool ok = popNext(kTickNever, ev);
        sushi_assert(ok);
        return ev;
    }

    /**
     * Pop the earliest event into @p out *without* counting it as
     * executed. Used to migrate pending events between queues (the
     * parallel simulator drains the owning simulator's queue into
     * per-partition queues and back); migration must not inflate
     * eventsExecuted().
     * @return false when the queue is empty.
     */
    bool
    take(Event &out)
    {
        if (size_ == 0)
            return false;
        if (cur_.empty())
            refill();
        out = cur_.front();
        std::pop_heap(cur_.begin(), cur_.end(), Later{});
        cur_.pop_back();
        --size_;
        return true;
    }

    /** Total events popped for execution since construction. */
    std::uint64_t executed() const { return executed_; }

    /** Drop all pending events; keeps capacity, seq, and executed
     *  counters (matching the historical clear() contract). */
    void clear();

  private:
    /** Min-heap order on (when, cell, port, seq). Callback events
     *  (cell == kCallbackCell == -1) sort before every pulse at the
     *  same tick and among themselves by seq alone: callback slots
     *  are pool-recycled, so their port is not a stable identity. */
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.cell != b.cell)
                return a.cell > b.cell;
            if (a.cell != kCallbackCell && a.port != b.port)
                return a.port > b.port;
            return a.seq > b.seq;
        }
    };

    /** Advance the calendar until the draining-day heap is non-empty.
     *  Precondition: cur_ empty, size_ > 0. */
    void refill();

    std::vector<std::vector<Event>> days_; ///< ring of day buckets
    std::vector<Event> cur_;               ///< draining-day min-heap
    std::vector<Event> overflow_;          ///< beyond-horizon min-heap
    Tick cur_day_ = 0;
    std::size_t ring_count_ = 0;
    std::size_t size_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace sushi::sfq

#endif // SUSHI_SFQ_EVENT_QUEUE_HH
