/**
 * @file
 * Discrete-event queue for the RSFQ simulator.
 *
 * Events at equal ticks are delivered in insertion order (a stable
 * sequence number breaks ties), which keeps gate-level simulations
 * deterministic regardless of heap internals.
 */

#ifndef SUSHI_SFQ_EVENT_QUEUE_HH
#define SUSHI_SFQ_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.hh"

namespace sushi::sfq {

/** A time-ordered queue of callbacks. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule a callback at absolute tick @p when. */
    void schedule(Tick when, Callback cb);

    /** True if no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Tick of the earliest pending event; kTickNever if empty. */
    Tick nextTick() const;

    /**
     * Pop and run the earliest event.
     * @return the tick the event ran at.
     */
    Tick runOne();

    /** Total events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /** Drop all pending events. */
    void clear();

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace sushi::sfq

#endif // SUSHI_SFQ_EVENT_QUEUE_HH
