/**
 * @file
 * Base class for RSFQ circuit components and pulse plumbing.
 *
 * An RSFQ design is a directed graph of components; SFQ pulses travel
 * along point-to-point connections. RSFQ cells have a fan-out of one
 * (paper Sec. 2.1.2), so connecting an output that is already driven
 * is rejected — a splitter (SPL) must be inserted instead, exactly as
 * in a real design.
 */

#ifndef SUSHI_SFQ_COMPONENT_HH
#define SUSHI_SFQ_COMPONENT_HH

#include <string>
#include <vector>

#include "common/time.hh"
#include "sfq/simulator.hh"

namespace sushi::sfq {

/** A node in the circuit graph that can receive and emit pulses. */
class Component
{
  public:
    /**
     * @param sim        owning simulator
     * @param name       instance name (for diagnostics)
     * @param num_inputs number of input ports
     * @param num_outputs number of output ports
     */
    Component(Simulator &sim, std::string name,
              int num_inputs, int num_outputs);

    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    /** Deliver a pulse arriving on input @p port at time now(). */
    virtual void receive(int port) = 0;

    /** Instance name. */
    const std::string &name() const { return name_; }

    /** Number of input / output ports. */
    int numInputs() const { return num_inputs_; }
    int numOutputs() const { return num_outputs_; }

    /**
     * Connect output @p out_port to @p dst input @p dst_port.
     * @param wire_delay extra propagation delay of the interconnect
     *        (e.g. a chain of JTL stages), added to the cell delay.
     *
     * Fatal if the output is already connected (fan-out must be 1).
     */
    void connect(int out_port, Component &dst, int dst_port,
                 Tick wire_delay = 0);

    /** True if output @p out_port has a destination. */
    bool outputConnected(int out_port) const;

    /**
     * Inject a pulse into input @p port at absolute time @p when.
     * Used by stimulus generators and netlist primary inputs.
     */
    void inject(int port, Tick when);

  protected:
    /**
     * Emit a pulse from output @p out_port after @p delay from now.
     * Silently drops the pulse if the output is unconnected (a
     * dangling output is legal, e.g. an unused NPE readout).
     */
    void send(int out_port, Tick delay);

    Simulator &sim_;

  private:
    struct Conn
    {
        Component *dst = nullptr;
        int dst_port = 0;
        Tick wire_delay = 0;
    };

    std::string name_;
    int num_inputs_;
    int num_outputs_;
    std::vector<Conn> outs_;
};

/**
 * Records every pulse arriving at its single input; used as a circuit
 * primary output / probe.
 */
class PulseSink : public Component
{
  public:
    PulseSink(Simulator &sim, std::string name);

    void receive(int port) override;

    /** Arrival times of all recorded pulses, in order. */
    const std::vector<Tick> &pulsesSeen() const { return times_; }

    /** Number of pulses recorded. */
    std::size_t count() const { return times_.size(); }

    /** Forget all recorded pulses. */
    void clear() { times_.clear(); }

  private:
    std::vector<Tick> times_;
};

/**
 * Drives a pre-programmed pulse train into its single output; used as
 * a circuit primary input.
 */
class PulseSource : public Component
{
  public:
    PulseSource(Simulator &sim, std::string name);

    void receive(int port) override;

    /** Schedule an output pulse at absolute time @p when. */
    void pulseAt(Tick when);

    /** Schedule pulses at each time in @p times. */
    void pulseTrain(const std::vector<Tick> &times);
};

} // namespace sushi::sfq

#endif // SUSHI_SFQ_COMPONENT_HH
