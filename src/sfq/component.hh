/**
 * @file
 * Component facade over the compiled circuit core.
 *
 * An RSFQ design is a directed graph of components; SFQ pulses travel
 * along point-to-point connections. RSFQ cells have a fan-out of one
 * (paper Sec. 2.1.2), so connecting an output that is already driven
 * is rejected — a splitter (SPL) must be inserted instead, exactly as
 * in a real design.
 *
 * Since the compiled-core refactor a Component carries no execution
 * state of its own: construction registers the cell into the owning
 * simulator's CompiledNetlist (which allocates its SoA table row and
 * CSR fan-out slots), and every accessor reads back through the dense
 * cell id. Pulse execution never touches this class — the simulator
 * delivers index-addressed events straight into the compiled tables.
 */

#ifndef SUSHI_SFQ_COMPONENT_HH
#define SUSHI_SFQ_COMPONENT_HH

#include <string>
#include <vector>

#include "common/time.hh"
#include "sfq/simulator.hh"

namespace sushi::sfq {

/** A handle to one node of the compiled circuit graph. */
class Component
{
  public:
    /**
     * Register a cell with the simulator's compiled core.
     * @param sim        owning simulator
     * @param name       instance name (for diagnostics)
     * @param num_inputs number of input ports
     * @param num_outputs number of output ports
     * @param exec_kind  CompiledNetlist execution kind byte (a
     *        CellKind value, or kKindSource / kKindSink)
     */
    Component(Simulator &sim, std::string name, int num_inputs,
              int num_outputs, std::uint8_t exec_kind);

    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    /** Instance name. */
    const std::string &name() const { return sim_.core().cellName(id_); }

    /** Dense id of this cell in the compiled core. */
    std::int32_t cellId() const { return id_; }

    /** Number of input / output ports. */
    int numInputs() const { return num_inputs_; }
    int numOutputs() const { return num_outputs_; }

    /**
     * Connect output @p out_port to @p dst input @p dst_port.
     * @param wire_delay extra propagation delay of the interconnect
     *        (e.g. a chain of JTL stages), added to the cell delay.
     *
     * Fatal if the output is already connected (fan-out must be 1).
     */
    void connect(int out_port, Component &dst, int dst_port,
                 Tick wire_delay = 0);

    /** True if output @p out_port has a destination. */
    bool outputConnected(int out_port) const;

    /**
     * Inject a pulse into input @p port at absolute time @p when.
     * Used by stimulus generators and netlist primary inputs.
     */
    void inject(int port, Tick when);

  protected:
    Simulator &sim_;
    std::int32_t id_;

  private:
    int num_inputs_;
    int num_outputs_;
};

/**
 * Records every pulse arriving at its single input; used as a circuit
 * primary output / probe. The arrival times live in the compiled
 * core's pooled trace storage.
 */
class PulseSink : public Component
{
  public:
    PulseSink(Simulator &sim, std::string name);

    /** Arrival times of all recorded pulses, in order. */
    const std::vector<Tick> &pulsesSeen() const
    {
        return sim_.core().trace(id_);
    }

    /** Number of pulses recorded. */
    std::size_t count() const { return pulsesSeen().size(); }

    /** Forget all recorded pulses. */
    void clear() { sim_.core().traceMut(id_).clear(); }
};

/**
 * Drives a pre-programmed pulse train into its single output; used as
 * a circuit primary input.
 */
class PulseSource : public Component
{
  public:
    PulseSource(Simulator &sim, std::string name);

    /** Schedule an output pulse at absolute time @p when. */
    void pulseAt(Tick when);

    /** Schedule pulses at each time in @p times. */
    void pulseTrain(const std::vector<Tick> &times);
};

} // namespace sushi::sfq

#endif // SUSHI_SFQ_COMPONENT_HH
