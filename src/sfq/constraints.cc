#include "sfq/constraints.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sushi::sfq {

namespace {

using namespace chan;

ConstraintRule
rule(int a, int b, double ps, const char *label)
{
    return ConstraintRule{a, b, psToTicks(ps), label};
}

/** Paper Table 1, expanded to explicit per-channel-pair rules. */
const std::vector<ConstraintRule> kCbRules = {
    // dinA/B-dinA/B 19.9: same-channel re-arm interval.
    rule(kCbDinA, kCbDinA, 19.9, "dinA-dinA"),
    rule(kCbDinB, kCbDinB, 19.9, "dinB-dinB"),
    // dinA/B-dinB/A 5.7: cross-channel interval.
    rule(kCbDinA, kCbDinB, 5.7, "dinA-dinB"),
    rule(kCbDinB, kCbDinA, 5.7, "dinB-dinA"),
};

const std::vector<ConstraintRule> kCb3Rules = {
    rule(kCbDinA, kCbDinA, 19.9, "dinA-dinA"),
    rule(kCbDinB, kCbDinB, 19.9, "dinB-dinB"),
    rule(kCbDinC, kCbDinC, 19.9, "dinC-dinC"),
    rule(kCbDinA, kCbDinB, 5.7, "dinA-dinB"),
    rule(kCbDinB, kCbDinA, 5.7, "dinB-dinA"),
    rule(kCbDinA, kCbDinC, 5.7, "dinA-dinC"),
    rule(kCbDinC, kCbDinA, 5.7, "dinC-dinA"),
    rule(kCbDinB, kCbDinC, 5.7, "dinB-dinC"),
    rule(kCbDinC, kCbDinB, 5.7, "dinC-dinB"),
};

const std::vector<ConstraintRule> kSplRules = {
    rule(kDin, kDin, 19.9, "din-din"),
};

const std::vector<ConstraintRule> kJtlRules = {
    rule(kDin, kDin, 19.9, "din-din"),
};

const std::vector<ConstraintRule> kDffRules = {
    rule(kDffDin, kDffDin, 19.9, "din-din"),
    rule(kDffDin, kDffClk, 8.53, "din-clk"),
    rule(kDffClk, kDffClk, 19.9, "clk-clk"),
};

const std::vector<ConstraintRule> kNdroRules = {
    // din/rst-rst/din 39.9: set and reset must be separated both ways.
    rule(kNdroDin, kNdroRst, 39.9, "din-rst"),
    rule(kNdroRst, kNdroDin, 39.9, "rst-din"),
    rule(kNdroClk, kNdroClk, 39.9, "clk-clk"),
    rule(kNdroDin, kNdroClk, 14.81, "din-clk"),
    rule(kNdroRst, kNdroClk, 16.61, "rst-clk"),
};

const std::vector<ConstraintRule> kTffRules = {
    rule(kTffClk, kTffClk, 39.9, "clk-clk"),
};

const std::vector<ConstraintRule> kNoRules = {};

} // namespace

const std::vector<ConstraintRule> &
constraintRules(CellKind kind)
{
    switch (kind) {
      case CellKind::CB:    return kCbRules;
      case CellKind::CB3:   return kCb3Rules;
      case CellKind::SPL:
      case CellKind::SPL3:  return kSplRules;
      case CellKind::JTL:   return kJtlRules;
      case CellKind::DFF:   return kDffRules;
      case CellKind::NDRO:  return kNdroRules;
      case CellKind::TFFL:
      case CellKind::TFFR:  return kTffRules;
      default:              return kNoRules;
    }
}

Tick
maxConstraint(CellKind kind)
{
    Tick best = 0;
    for (const auto &r : constraintRules(kind))
        best = std::max(best, r.min_interval);
    return best;
}

Tick
safePulseSpacing(double margin)
{
    Tick best = 0;
    for (int k = 0; k < static_cast<int>(CellKind::kNumKinds); ++k)
        best = std::max(best, maxConstraint(static_cast<CellKind>(k)));
    return static_cast<Tick>(static_cast<double>(best) * margin);
}

IncomingRuleSpan
incomingRules(CellKind kind, int channel)
{
    sushi_assert(channel >= 0 && channel < kMaxChannels);
    // Flat [kind][channel] table of per-destination-channel rule runs,
    // built once from constraintRules() so the two views can never
    // disagree.
    struct Table
    {
        std::vector<IncomingRule> rules;
        IncomingRuleSpan spans[static_cast<std::size_t>(
                                   CellKind::kNumKinds) *
                               kMaxChannels];
        Table()
        {
            std::size_t total = 0;
            for (int k = 0; k < static_cast<int>(CellKind::kNumKinds);
                 ++k)
                total += constraintRules(static_cast<CellKind>(k))
                             .size();
            rules.reserve(total); // spans borrow: no reallocation
            for (int k = 0; k < static_cast<int>(CellKind::kNumKinds);
                 ++k) {
                for (int c = 0; c < kMaxChannels; ++c) {
                    const std::size_t start = rules.size();
                    for (const auto &r :
                         constraintRules(static_cast<CellKind>(k))) {
                        if (r.chan_b == c)
                            rules.push_back(IncomingRule{
                                r.chan_a, r.min_interval, r.label});
                    }
                    spans[static_cast<std::size_t>(k) * kMaxChannels +
                          static_cast<std::size_t>(c)] =
                        IncomingRuleSpan{
                            rules.data() + start,
                            static_cast<int>(rules.size() - start)};
                }
            }
        }
    };
    static const Table table;
    return table.spans[static_cast<std::size_t>(kind) * kMaxChannels +
                       static_cast<std::size_t>(channel)];
}

std::string
violationMessage(CellKind kind, const char *label, Tick min_interval,
                 Tick prev, Tick now)
{
    return std::string(cellKindName(kind)) + " " + label +
           ": interval " + std::to_string(ticksToPs(now - prev)) +
           " ps < " + std::to_string(ticksToPs(min_interval)) +
           " ps (pulses at " + std::to_string(prev) + " fs and " +
           std::to_string(now) + " fs)";
}

ConstraintChecker::ConstraintChecker(CellKind kind, int num_channels)
    : kind_(kind),
      last_(static_cast<std::size_t>(num_channels), kTickNever)
{
}

std::string
ConstraintChecker::arrive(int channel, Tick now)
{
    sushi_assert(channel >= 0 &&
                 channel < static_cast<int>(last_.size()));
    std::string violated;
    for (const auto &r : constraintRules(kind_)) {
        if (r.chan_b != channel)
            continue;
        const Tick prev = last_[static_cast<std::size_t>(r.chan_a)];
        if (prev == kTickNever)
            continue;
        if (now - prev < r.min_interval) {
            violated = violationMessage(kind_, r.label,
                                        r.min_interval, prev, now);
            break;
        }
    }
    last_[static_cast<std::size_t>(channel)] = now;
    return violated;
}

void
ConstraintChecker::reset()
{
    std::fill(last_.begin(), last_.end(), kTickNever);
}

std::vector<ConstraintTableRow>
constraintTable()
{
    std::vector<ConstraintTableRow> rows;
    const CellKind kinds[] = {
        CellKind::CB, CellKind::SPL, CellKind::NDRO,
        CellKind::DFF, CellKind::TFFL, CellKind::JTL,
    };
    for (CellKind k : kinds) {
        for (const auto &r : constraintRules(k)) {
            rows.push_back(ConstraintTableRow{
                cellKindName(k), r.label, ticksToPs(r.min_interval)});
        }
    }
    return rows;
}

} // namespace sushi::sfq
