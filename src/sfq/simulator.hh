/**
 * @file
 * Top-level discrete-event RSFQ simulator.
 *
 * Owns the event queue, the global clockless time, aggregate energy
 * accounting, and the timing-constraint violation policy. Components
 * (cells) register themselves and exchange SFQ pulses as events.
 */

#ifndef SUSHI_SFQ_SIMULATOR_HH
#define SUSHI_SFQ_SIMULATOR_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/time.hh"
#include "sfq/event_queue.hh"

namespace sushi::sfq {

/** How Table-1 timing-constraint violations are handled. */
enum class ViolationPolicy
{
    Ignore, ///< count only
    Warn,   ///< count and warn()
    Fatal,  ///< abort the simulation (user design error)
};

/** The RSFQ circuit simulator. */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulation time. */
    Tick now() const { return now_; }

    /** Schedule @p cb at absolute tick @p when (>= now). */
    void schedule(Tick when, EventQueue::Callback cb);

    /** Schedule @p cb at now() + @p delta. */
    void scheduleIn(Tick delta, EventQueue::Callback cb);

    /**
     * Run until the queue drains or the next event is past @p until.
     * @return the tick of the last executed event (now()).
     */
    Tick run(Tick until = kTickNever);

    /** True if no events remain. */
    bool idle() const { return queue_.empty(); }

    /** Record one timing-constraint violation. */
    void reportViolation(const std::string &what);

    /** Number of constraint violations observed so far. */
    std::uint64_t violations() const { return violations_; }

    /** Set the violation handling policy (default Warn). */
    void setViolationPolicy(ViolationPolicy p) { policy_ = p; }
    ViolationPolicy violationPolicy() const { return policy_; }

    /** Accumulate switching energy (joules). */
    void addSwitchEnergy(double joules) { switch_energy_j_ += joules; }

    /** Total dynamic (switching) energy dissipated so far, joules. */
    double switchEnergy() const { return switch_energy_j_; }

    /** Count a pulse delivery (for throughput stats). */
    void countPulse() { ++pulses_; }

    /**
     * Fault injection: drop each cell-to-cell pulse with probability
     * @p rate (deterministic in @p seed). Models marginal junctions
     * or flux trapping — the failure modes chip verification
     * (Sec. 6.2) exists to catch. 0 disables (the default).
     */
    void setPulseDropRate(double rate, std::uint64_t seed = 1);

    /** True if fault injection says this delivery is lost. */
    bool pulseDropped();

    /** Pulses lost to injected faults so far. */
    std::uint64_t droppedPulses() const { return dropped_; }

    /** Total pulses delivered between cells. */
    std::uint64_t pulses() const { return pulses_; }

    /** Events executed so far. */
    std::uint64_t eventsExecuted() const { return queue_.executed(); }

    /** Mutable stats registry shared by all components. */
    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

  private:
    EventQueue queue_;
    Tick now_ = 0;
    double drop_rate_ = 0.0;
    Rng fault_rng_{1};
    std::uint64_t dropped_ = 0;
    std::uint64_t violations_ = 0;
    std::uint64_t pulses_ = 0;
    double switch_energy_j_ = 0.0;
    ViolationPolicy policy_ = ViolationPolicy::Warn;
    StatSet stats_;
};

} // namespace sushi::sfq

#endif // SUSHI_SFQ_SIMULATOR_HH
