/**
 * @file
 * Top-level discrete-event RSFQ simulator.
 *
 * Owns the event queue, the global clockless time, aggregate energy
 * accounting, the fault-injection model, and the timing-constraint
 * violation policy. Components (cells) register themselves and
 * exchange SFQ pulses as events.
 */

#ifndef SUSHI_SFQ_SIMULATOR_HH
#define SUSHI_SFQ_SIMULATOR_HH

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "common/stats.hh"
#include "common/time.hh"
#include "sfq/event_queue.hh"
#include "sfq/fault_model.hh"

namespace sushi::sfq {

/** How Table-1 timing-constraint violations are handled. */
enum class ViolationPolicy
{
    Ignore,  ///< count only
    Warn,    ///< count and warn()
    Recover, ///< count, attribute to the cell, drop the offending
             ///< pulse, and continue (graceful degradation)
    Fatal,   ///< throw TimingFault (user design error)
};

/**
 * Thrown when a timing constraint is violated under
 * ViolationPolicy::Fatal, so callers can catch it and degrade
 * gracefully (e.g. fall back to a healthy NPE) instead of losing the
 * whole process to an abort.
 */
class TimingFault : public std::runtime_error
{
  public:
    TimingFault(std::string cell, const std::string &what)
        : std::runtime_error("timing constraint violated: " + what),
          cell_(std::move(cell))
    {
    }

    /** Instance name of the offending cell ("" if unattributed). */
    const std::string &cell() const { return cell_; }

  private:
    std::string cell_;
};

/** The RSFQ circuit simulator. */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulation time. */
    Tick now() const { return now_; }

    /** Schedule @p cb at absolute tick @p when (>= now). */
    void schedule(Tick when, EventQueue::Callback cb);

    /** Schedule @p cb at now() + @p delta. */
    void scheduleIn(Tick delta, EventQueue::Callback cb);

    /**
     * Run until the queue drains or the next event is past @p until.
     * @return the tick of the last executed event (now()).
     */
    Tick run(Tick until = kTickNever);

    /** True if no events remain. */
    bool idle() const { return queue_.empty(); }

    /**
     * Rewind the simulator for reuse: drops all pending events and
     * clears time, energy, pulse, violation, and fault counters plus
     * the stats registry. The fault *configuration* is kept (reseed
     * via faults().reseed()); registered components are untouched —
     * campaign iterations reuse one simulator without realloc churn.
     */
    void reset();

    /**
     * Record one timing-constraint violation attributed to @p cell.
     * Ignore/Warn count (and log) it; Recover additionally asks the
     * caller to drop the offending pulse; Fatal throws TimingFault
     * (it no longer aborts the process).
     * @return true if the offending pulse must be dropped (Recover).
     */
    bool reportViolation(const std::string &cell,
                         const std::string &what);

    /** Unattributed violation (kept for older call sites). */
    void reportViolation(const std::string &what)
    {
        reportViolation(std::string{}, what);
    }

    /** Number of constraint violations observed so far. */
    std::uint64_t violations() const { return violations_; }

    /** Violations attributed per cell (Recover/any policy). */
    const std::map<std::string, std::uint64_t> &
    violationsByCell() const
    {
        return violations_by_cell_;
    }

    /** Pulses dropped by the Recover policy so far. */
    std::uint64_t recoveredPulses() const { return recovered_; }

    /** Set the violation handling policy (default Warn). */
    void setViolationPolicy(ViolationPolicy p) { policy_ = p; }
    ViolationPolicy violationPolicy() const { return policy_; }

    /** Accumulate switching energy (joules). */
    void addSwitchEnergy(double joules) { switch_energy_j_ += joules; }

    /** Total dynamic (switching) energy dissipated so far, joules. */
    double switchEnergy() const { return switch_energy_j_; }

    /** Count a pulse delivery (for throughput stats). */
    void countPulse() { ++pulses_; }

    /** The fault-injection model consulted on every delivery. */
    FaultModel &faults() { return faults_; }
    const FaultModel &faults() const { return faults_; }

    /**
     * Shim over faults(): clear the configuration, reseed, and (for
     * @p rate > 0) install a single untargeted PulseDrop fault.
     * Prefer faults().addFault() for anything richer.
     */
    void setPulseDropRate(double rate, std::uint64_t seed = 1);

    /** True if fault injection says this delivery is lost (shim —
     *  components consult faults().onDeliver() directly). */
    bool pulseDropped();

    /** Pulses lost to injected faults so far. */
    std::uint64_t droppedPulses() const
    {
        return faults_.counters().dropped;
    }

    /** Total pulses delivered between cells. */
    std::uint64_t pulses() const { return pulses_; }

    /** Events executed so far. */
    std::uint64_t eventsExecuted() const { return queue_.executed(); }

    /** Mutable stats registry shared by all components. */
    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

  private:
    EventQueue queue_;
    Tick now_ = 0;
    FaultModel faults_{1};
    std::uint64_t violations_ = 0;
    std::uint64_t recovered_ = 0;
    std::uint64_t pulses_ = 0;
    double switch_energy_j_ = 0.0;
    ViolationPolicy policy_ = ViolationPolicy::Warn;
    std::map<std::string, std::uint64_t> violations_by_cell_;
    StatSet stats_;
};

} // namespace sushi::sfq

#endif // SUSHI_SFQ_SIMULATOR_HH
