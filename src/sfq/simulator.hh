/**
 * @file
 * Top-level discrete-event RSFQ simulator.
 *
 * Owns the event queue, the global clockless time, aggregate energy
 * accounting, the fault-injection model, the timing-constraint
 * violation policy — and the CompiledNetlist, the flat data-oriented
 * circuit core every Component lowers itself into at construction.
 * Pulse exchange runs entirely on POD {tick, seq, cell, port} events
 * against the compiled tables; std::function callbacks remain
 * available for test harnesses and stimulus generators via a pooled
 * side channel that never touches the pulse hot path.
 *
 * Execution goes through an ExecCtx: the sequential run() wires one
 * context to the simulator's own queue and counters, while the
 * partitioned ParallelSimulator (parallel_simulator.hh) drives the
 * same compiled core with one context per partition and merges the
 * counters back, so both paths produce identical aggregates.
 */

#ifndef SUSHI_SFQ_SIMULATOR_HH
#define SUSHI_SFQ_SIMULATOR_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/time.hh"
#include "sfq/compiled_netlist.hh"
#include "sfq/event_queue.hh"
#include "sfq/fault_model.hh"

namespace sushi::sfq {

/** How Table-1 timing-constraint violations are handled. */
enum class ViolationPolicy
{
    Ignore,  ///< count only
    Warn,    ///< count and warn()
    Recover, ///< count, attribute to the cell, drop the offending
             ///< pulse, and continue (graceful degradation)
    Fatal,   ///< throw TimingFault (user design error)
};

/**
 * Thrown when a timing constraint is violated under
 * ViolationPolicy::Fatal, so callers can catch it and degrade
 * gracefully (e.g. fall back to a healthy NPE) instead of losing the
 * whole process to an abort. Carries the full attribution: the
 * hierarchical cell name, the violated constraint label, and the two
 * offending pulse times.
 */
class TimingFault : public std::runtime_error
{
  public:
    TimingFault(std::string cell, const std::string &what,
                std::string constraint = {}, Tick prev = kTickNever,
                Tick at = kTickNever)
        : std::runtime_error("timing constraint violated: " + what),
          cell_(std::move(cell)), constraint_(std::move(constraint)),
          prev_(prev), at_(at)
    {
    }

    /** Instance name of the offending cell ("" if unattributed). */
    const std::string &cell() const { return cell_; }

    /** Violated rule label, e.g. "din-din" ("" if unattributed). */
    const std::string &constraint() const { return constraint_; }

    /** Tick of the earlier of the two offending pulses
     *  (kTickNever if not applicable). */
    Tick prevPulse() const { return prev_; }

    /** Tick of the arrival that violated the constraint
     *  (kTickNever if not applicable). */
    Tick violatingPulse() const { return at_; }

  private:
    std::string cell_;
    std::string constraint_;
    Tick prev_;
    Tick at_;
};

/** The RSFQ circuit simulator. */
class Simulator
{
  public:
    /** Arbitrary scheduled work (stimulus/test side channel). */
    using Callback = std::function<void()>;

    Simulator() : core_(*this) {}

    /**
     * Build a replica simulator over a sealed structure shared with
     * other simulators (CompiledNetlist::shareStructure()): only the
     * mutable per-sim state is allocated — the circuit is not
     * re-lowered. Replicas address cells by dense id / name through
     * core(); Component facades belong to the original netlist.
     */
    explicit Simulator(std::shared_ptr<const NetStructure> structure)
        : core_(*this, std::move(structure))
    {
    }

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulation time. */
    Tick now() const { return now_; }

    /** The compiled circuit this simulator executes. */
    CompiledNetlist &core() { return core_; }
    const CompiledNetlist &core() const { return core_; }

    /**
     * Schedule a pulse into input @p port of compiled cell @p cell at
     * absolute tick @p when (>= now). The hot path: one POD queue
     * push, no allocation.
     */
    void
    schedulePulse(Tick when, std::int32_t cell, std::int32_t port)
    {
        if (when < now_) {
            sushi_panic("scheduling into the past: t=%lld now=%lld",
                        static_cast<long long>(when),
                        static_cast<long long>(now_));
        }
        queue_.push(when, cell, port);
    }

    /** Schedule @p cb at absolute tick @p when (>= now). */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb at now() + @p delta. */
    void scheduleIn(Tick delta, Callback cb);

    /**
     * Run until the queue drains or the next event is past @p until.
     * Freezes the compiled core first (fault-mask refresh), so the
     * compiled tables are always what executes.
     * @return the tick of the last executed event (now()).
     */
    Tick run(Tick until = kTickNever);

    /** True if no events remain. */
    bool idle() const { return queue_.empty(); }

    /**
     * Rewind the simulator for reuse: drops all pending events and
     * clears time, energy, pulse, violation, and fault counters plus
     * the stats registry; the compiled core's storage bits, arrival
     * history, and probe traces rewind to their post-compile snapshot
     * by flat copies (CompiledNetlist::restoreState()) — no per-cell
     * walk. The fault *configuration* is kept (reseed via
     * faults().reseed()); registered components are untouched —
     * campaign iterations reuse one simulator without realloc churn.
     */
    void reset();

    /**
     * Record one timing-constraint violation attributed to @p cell.
     * Ignore/Warn count (and log) it; Recover additionally asks the
     * caller to drop the offending pulse; Fatal throws TimingFault
     * (it no longer aborts the process). @p constraint is the rule
     * label and @p prev / @p at the two offending pulse ticks, all
     * forwarded into the TimingFault for attribution.
     * @return true if the offending pulse must be dropped (Recover).
     */
    bool reportViolation(const std::string &cell,
                         const std::string &what,
                         const char *constraint, Tick prev, Tick at);

    /**
     * Violation report keyed by the event that exposed it — the
     * (when, cell id, port) of the delivery being executed. The key
     * makes aggregation order-free: lastViolation() keeps the report
     * with the maximum key, which under sequential execution is
     * simply the latest one, and under partitioned execution is the
     * same report regardless of which lane finds it first. Thread
     * safe (parallel lanes report concurrently).
     */
    bool reportViolationEvt(const std::string &cell,
                            const std::string &what,
                            const char *constraint, Tick prev,
                            Tick at, Tick ev_when,
                            std::int32_t ev_cell,
                            std::int32_t ev_port);

    /** Attributed violation without pulse-timing details. */
    bool
    reportViolation(const std::string &cell, const std::string &what)
    {
        return reportViolation(cell, what, "", kTickNever,
                               kTickNever);
    }

    /** Unattributed violation (kept for older call sites). */
    void reportViolation(const std::string &what)
    {
        reportViolation(std::string{}, what);
    }

    /** Full text of the most recent violation ("" if none yet). */
    const std::string &lastViolation() const
    {
        return last_violation_;
    }

    /** Number of constraint violations observed so far. */
    std::uint64_t violations() const { return violations_; }

    /** Violations attributed per cell (Recover/any policy). */
    const std::map<std::string, std::uint64_t> &
    violationsByCell() const
    {
        return violations_by_cell_;
    }

    /** Pulses dropped by the Recover policy so far. */
    std::uint64_t recoveredPulses() const { return recovered_; }

    /** Set the violation handling policy (default Warn). */
    void setViolationPolicy(ViolationPolicy p) { policy_ = p; }
    ViolationPolicy violationPolicy() const { return policy_; }

    /** Accumulate switching energy (joules) on top of what the
     *  compiled cells dissipate (tests, external estimates). */
    void addSwitchEnergy(double joules) { extra_energy_j_ += joules; }

    /**
     * Total dynamic (switching) energy dissipated so far, joules:
     * the per-kind switch tallies priced by the cell library, plus
     * anything added via addSwitchEnergy(). Count-based, so the sum
     * is exact (and merge-order-free) however execution interleaved.
     */
    double switchEnergy() const
    {
        return extra_energy_j_ + core_.switchEnergyOf(switch_count_);
    }

    /** Count a pulse delivery (for throughput stats). */
    void countPulse() { ++pulses_; }

    /** The fault-injection model consulted on every delivery. */
    FaultModel &faults() { return faults_; }
    const FaultModel &faults() const { return faults_; }

    /**
     * Shim over faults(): clear the configuration, reseed, and (for
     * @p rate > 0) install a single untargeted PulseDrop fault.
     * Prefer faults().addFault() for anything richer.
     */
    void setPulseDropRate(double rate, std::uint64_t seed = 1);

    /** True if fault injection says this delivery is lost (shim —
     *  components consult faults().onDeliver() directly). */
    bool pulseDropped();

    /** Pulses lost to injected faults so far. */
    std::uint64_t droppedPulses() const
    {
        return faults_.counters().dropped;
    }

    /** Total pulses delivered between cells. */
    std::uint64_t pulses() const { return pulses_; }

    /** Events executed so far (including events executed on lane
     *  queues during partitioned runs). */
    std::uint64_t eventsExecuted() const
    {
        return queue_.executed() + extra_events_;
    }

    /** Mutable stats registry shared by all components. */
    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

  private:
    EventQueue queue_;
    CompiledNetlist core_;
    Tick now_ = 0;
    FaultModel faults_{1};
    std::uint64_t violations_ = 0;
    std::uint64_t recovered_ = 0;
    std::uint64_t pulses_ = 0;
    std::uint64_t switch_count_[CompiledNetlist::kNumExecKinds] = {};
    double extra_energy_j_ = 0.0;
    std::uint64_t extra_events_ = 0; ///< lane-queue executed events
    ViolationPolicy policy_ = ViolationPolicy::Warn;
    std::map<std::string, std::uint64_t> violations_by_cell_;
    std::string last_violation_;

    // Event key of the stored last_violation_ (max-key-wins merge);
    // when = -1 marks "no keyed report yet" so the next keyed report
    // always wins. Guarded by violation_mu_ with the counters above.
    Tick last_v_when_ = -1;
    std::int32_t last_v_cell_ = -1;
    std::int32_t last_v_port_ = -1;
    std::mutex violation_mu_;

    StatSet stats_;

    // Pooled callback storage: the queue carries only the slot index
    // (EventQueue::kCallbackCell events), so callbacks never allocate
    // per-event heap nodes either.
    std::vector<Callback> cb_pool_;
    std::vector<std::int32_t> cb_free_;

    friend class ParallelSimulator;
};

} // namespace sushi::sfq

#endif // SUSHI_SFQ_SIMULATOR_HH
