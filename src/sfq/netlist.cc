#include "sfq/netlist.hh"

#include "common/logging.hh"

namespace sushi::sfq {

ResourceTally &
ResourceTally::operator+=(const ResourceTally &other)
{
    logic_jjs += other.logic_jjs;
    wiring_jjs += other.wiring_jjs;
    logic_area_um2 += other.logic_area_um2;
    wiring_area_um2 += other.wiring_area_um2;
    for (std::size_t i = 0; i < cells_by_kind.size(); ++i)
        cells_by_kind[i] += other.cells_by_kind[i];
    return *this;
}

template <typename T>
T &
Netlist::addCell(const std::string &name, CellKind kind)
{
    auto cell = std::make_unique<T>(sim_, name);
    T &ref = *cell;
    cells_.push_back(std::move(cell));
    accountCell(kind, /*wiring=*/kind == CellKind::JTL);
    return ref;
}

void
Netlist::accountCell(CellKind kind, bool wiring)
{
    const CellParams &p = cellParams(kind);
    ++tally_.cells_by_kind[static_cast<std::size_t>(kind)];
    if (wiring) {
        tally_.wiring_jjs += p.jjs;
        tally_.wiring_area_um2 += p.jjs * wiringAreaPerJj();
    } else {
        tally_.logic_jjs += p.jjs;
        tally_.logic_area_um2 += p.area_um2;
    }
}

Jtl &
Netlist::makeJtl(const std::string &name)
{
    return addCell<Jtl>(name, CellKind::JTL);
}

Spl &
Netlist::makeSpl(const std::string &name)
{
    return addCell<Spl>(name, CellKind::SPL);
}

Spl3 &
Netlist::makeSpl3(const std::string &name)
{
    return addCell<Spl3>(name, CellKind::SPL3);
}

Cb &
Netlist::makeCb(const std::string &name)
{
    return addCell<Cb>(name, CellKind::CB);
}

Cb3 &
Netlist::makeCb3(const std::string &name)
{
    return addCell<Cb3>(name, CellKind::CB3);
}

Dff &
Netlist::makeDff(const std::string &name)
{
    return addCell<Dff>(name, CellKind::DFF);
}

Ndro &
Netlist::makeNdro(const std::string &name)
{
    return addCell<Ndro>(name, CellKind::NDRO);
}

Tffl &
Netlist::makeTffl(const std::string &name)
{
    return addCell<Tffl>(name, CellKind::TFFL);
}

Tffr &
Netlist::makeTffr(const std::string &name)
{
    return addCell<Tffr>(name, CellKind::TFFR);
}

DcSfq &
Netlist::makeDcSfq(const std::string &name)
{
    return addCell<DcSfq>(name, CellKind::DCSFQ);
}

SfqDc &
Netlist::makeSfqDc(const std::string &name)
{
    return addCell<SfqDc>(name, CellKind::SFQDC);
}

PulseSource &
Netlist::makeSource(const std::string &name)
{
    auto cell = std::make_unique<PulseSource>(sim_, name);
    PulseSource &ref = *cell;
    cells_.push_back(std::move(cell));
    return ref; // IO pads carry no on-chip resources
}

PulseSink &
Netlist::makeSink(const std::string &name)
{
    auto cell = std::make_unique<PulseSink>(sim_, name);
    PulseSink &ref = *cell;
    cells_.push_back(std::move(cell));
    return ref;
}

void
Netlist::connectWire(Component &src, int out_port,
                     Component &dst, int in_port, int jtl_stages)
{
    sushi_assert(jtl_stages >= 0);
    const CellParams &jtl = cellParams(CellKind::JTL);
    const Tick delay = jtl_stages * jtl.delay;
    src.connect(out_port, dst, in_port, delay);
    tally_.wiring_jjs += static_cast<long>(jtl_stages) * jtl.jjs;
    tally_.wiring_area_um2 +=
        static_cast<double>(jtl_stages) * jtl.jjs * wiringAreaPerJj();
    tally_.cells_by_kind[static_cast<std::size_t>(CellKind::JTL)] +=
        jtl_stages;
}

void
Netlist::makeJtlChain(const std::string &name, Component &src,
                      int out_port, Component &dst, int in_port,
                      int stages)
{
    sushi_assert(stages >= 1);
    Component *prev = &src;
    int prev_port = out_port;
    for (int i = 0; i < stages; ++i) {
        Jtl &j = makeJtl(name + ".jtl" + std::to_string(i));
        // The chain's JTLs are wiring, but makeJtl accounted them as
        // wiring already via the kind check.
        prev->connect(prev_port, j, 0, 0);
        prev = &j;
        prev_port = 0;
    }
    prev->connect(prev_port, dst, in_port, 0);
}

void
Netlist::fanout(const std::string &name, Component &src, int out_port,
                const std::vector<std::pair<Component *, int>> &dsts,
                int jtl_per_hop)
{
    sushi_assert(!dsts.empty());
    if (dsts.size() == 1) {
        connectWire(src, out_port, *dsts[0].first, dsts[0].second,
                    jtl_per_hop);
        return;
    }
    // Binary splitter tree: split the destination list in half and
    // recurse; each split point is one SPL.
    Spl &spl = makeSpl(name + ".spl");
    connectWire(src, out_port, spl, 0, jtl_per_hop);
    const std::size_t mid = dsts.size() / 2;
    std::vector<std::pair<Component *, int>> lo(dsts.begin(),
                                                dsts.begin() + mid);
    std::vector<std::pair<Component *, int>> hi(dsts.begin() + mid,
                                                dsts.end());
    fanout(name + ".l", spl, 0, lo, jtl_per_hop);
    fanout(name + ".r", spl, 1, hi, jtl_per_hop);
}

void
Netlist::mergeTree(const std::string &name,
                   const std::vector<std::pair<Component *, int>> &srcs,
                   Component &dst, int dst_port, int jtl_per_hop)
{
    sushi_assert(!srcs.empty());
    if (srcs.size() == 1) {
        connectWire(*srcs[0].first, srcs[0].second, dst, dst_port,
                    jtl_per_hop);
        return;
    }
    Cb &cb = makeCb(name + ".cb");
    const std::size_t mid = srcs.size() / 2;
    std::vector<std::pair<Component *, int>> lo(srcs.begin(),
                                                srcs.begin() + mid);
    std::vector<std::pair<Component *, int>> hi(srcs.begin() + mid,
                                                srcs.end());
    mergeTree(name + ".l", lo, cb, 0, jtl_per_hop);
    mergeTree(name + ".r", hi, cb, 1, jtl_per_hop);
    connectWire(cb, 0, dst, dst_port, jtl_per_hop);
}

void
Netlist::addWiringOverhead(int jjs)
{
    sushi_assert(jjs >= 0);
    tally_.wiring_jjs += jjs;
    tally_.wiring_area_um2 += jjs * wiringAreaPerJj();
}

void
Netlist::addLogicOverhead(int jjs)
{
    sushi_assert(jjs >= 0);
    tally_.logic_jjs += jjs;
    tally_.logic_area_um2 += jjs * cellParams(CellKind::JTL).area_um2 /
                             cellParams(CellKind::JTL).jjs * 1.0;
}

} // namespace sushi::sfq
