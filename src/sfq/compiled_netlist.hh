/**
 * @file
 * The compiled, data-oriented execution core of the RSFQ simulator.
 *
 * Every Component registers itself here at construction, which lowers
 * the circuit into flat contiguous arrays as it is built:
 *
 *  - a cell table in struct-of-arrays form: one byte of kind, one
 *    byte of storage state (NDRO flux bit / TFF phase / DFF latch /
 *    SFQDC level) per cell;
 *  - a CSR fan-out table: RSFQ fan-out is one (paper Sec. 2.1.2), so
 *    each output port owns exactly one {dst, port, wire_delay} slot
 *    and the per-cell offsets are plain prefix sums maintained at
 *    registration time — no rebuild pass is ever needed;
 *  - flat per-channel last-arrival ticks for the Table-1 constraint
 *    checks;
 *  - pooled pulse traces for the probes (PulseSink, SFQDC), the
 *    index-addressed Waveform capture;
 *  - an interned name table (ids are dense registration order), so
 *    the name-based public APIs — fault targeting substrings,
 *    violation attribution, TimingFault diagnostics — keep working
 *    on top of index-addressed execution.
 *
 * deliver() is the pulse-delivery inner loop: a switch on the kind
 * byte over indices. No virtual dispatch, no std::function, no
 * allocation, no string handling on the fault-free hot path (see
 * DESIGN.md §2.1). freeze() completes the lowering by caching one
 * fault-target bitmask per cell, so fault campaigns skip substring
 * matching per event as well.
 */

#ifndef SUSHI_SFQ_COMPILED_NETLIST_HH
#define SUSHI_SFQ_COMPILED_NETLIST_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/time.hh"
#include "sfq/cell_params.hh"

namespace sushi::sfq {

class Simulator;

/** Flat, index-addressed circuit representation plus its executor. */
class CompiledNetlist
{
  public:
    /** Pseudo-kinds for the IO pads, after the library cell kinds. */
    static constexpr std::uint8_t kKindSource =
        static_cast<std::uint8_t>(CellKind::kNumKinds);
    static constexpr std::uint8_t kKindSink = kKindSource + 1;
    static constexpr std::uint8_t kNumExecKinds = kKindSink + 1;

    /** One CSR fan-out slot (fan-out is 1 per output port). */
    struct OutConn
    {
        std::int32_t dst = -1; ///< destination cell id, -1 dangling
        std::int32_t port = 0; ///< destination input port
        Tick wire_delay = 0;   ///< interconnect (JTL chain) delay
    };

    explicit CompiledNetlist(Simulator &sim);

    CompiledNetlist(const CompiledNetlist &) = delete;
    CompiledNetlist &operator=(const CompiledNetlist &) = delete;

    /// @name Lowering (driven by Component registration)
    /// @{

    /** Register a cell; returns its dense id. */
    std::int32_t addCell(std::string name, std::uint8_t kind,
                         int num_inputs, int num_outputs);

    /** Wire src output port to dst input port (fan-out of one). */
    void connect(std::int32_t src, int out_port, std::int32_t dst,
                 int dst_port, Tick wire_delay);

    /** True if the output port already has a destination. */
    bool
    outputConnected(std::int32_t id, int out_port) const
    {
        return conn(id, out_port).dst >= 0;
    }

    /**
     * Finish the lowering: refresh the per-cell fault-target bitmask
     * cache against the simulator's current fault configuration.
     * Idempotent and cheap when nothing changed; Simulator::run()
     * calls it before executing, so the compiled path is always the
     * one that runs.
     */
    void freeze();

    /// @}
    /// @name Interned name table
    /// @{

    std::size_t numCells() const { return kind_.size(); }
    std::size_t numConnections() const { return live_conns_; }

    const std::string &
    cellName(std::int32_t id) const
    {
        return names_[checkId(id)];
    }

    /** Dense id for an instance name; -1 if unknown. Duplicate names
     *  (legal, discouraged) resolve to the first registration. */
    std::int32_t cellId(const std::string &name) const;

    /** Execution kind byte (CellKind value, or kKindSource/Sink). */
    std::uint8_t
    cellKind(std::int32_t id) const
    {
        return kind_[checkId(id)];
    }

    /// @}
    /// @name SoA state access (used by the cell facades and tests)
    /// @{

    /** One-bit storage state: NDRO flux, TFF phase, DFF latch,
     *  SFQDC output level. */
    bool stateBit(std::int32_t id) const
    {
        return state_[checkId(id)] != 0;
    }
    void setStateBit(std::int32_t id, bool v)
    {
        state_[checkId(id)] = v ? 1 : 0;
    }

    /** Recorded pulse trace of a probe cell (PulseSink / SFQDC). */
    const std::vector<Tick> &
    trace(std::int32_t id) const
    {
        const std::int32_t slot = trace_slot_[checkId(id)];
        sushi_assert(slot >= 0);
        return traces_[static_cast<std::size_t>(slot)];
    }
    std::vector<Tick> &
    traceMut(std::int32_t id)
    {
        const std::int32_t slot = trace_slot_[checkId(id)];
        sushi_assert(slot >= 0);
        return traces_[static_cast<std::size_t>(slot)];
    }

    /** Last arrival tick on an input channel (kTickNever if none). */
    Tick
    lastArrival(std::int32_t id, int channel) const
    {
        const std::size_t i = checkId(id);
        sushi_assert(channel >= 0 && channel < n_in_[i]);
        return last_[static_cast<std::size_t>(in_off_[i]) +
                     static_cast<std::size_t>(channel)];
    }

    /** CSR fan-out slot of an output port. */
    const OutConn &
    connection(std::int32_t id, int out_port) const
    {
        return conn(id, out_port);
    }

    /// @}

    /**
     * Execute one pulse arriving on input @p port of cell @p id at
     * the simulator's current time. The inner loop of the simulator.
     */
    void deliver(std::int32_t id, std::int32_t port);

  private:
    /** Dead-cell / constraint / energy bookkeeping shared by every
     *  library cell. @return false if the pulse must be discarded. */
    bool arriveCell(std::int32_t id, std::uint8_t kind, int port);

    /** Emit one pulse out of @p out_port after @p delay. */
    void emit(std::int32_t id, int out_port, Tick delay);

    /** True if the cached fault bitmasks match the live config. */
    bool masksCurrent() const;

    std::size_t
    checkId(std::int32_t id) const
    {
        sushi_assert(id >= 0 &&
                     static_cast<std::size_t>(id) < kind_.size());
        return static_cast<std::size_t>(id);
    }

    const OutConn &
    conn(std::int32_t id, int out_port) const
    {
        const std::size_t i = checkId(id);
        sushi_assert(out_port >= 0 &&
                     static_cast<std::size_t>(out_port) <
                         connCount(i));
        return conns_[static_cast<std::size_t>(out_off_[i]) +
                      static_cast<std::size_t>(out_port)];
    }

    std::size_t
    connCount(std::size_t i) const
    {
        const std::size_t end = i + 1 < out_off_.size()
            ? static_cast<std::size_t>(out_off_[i + 1])
            : conns_.size();
        return end - static_cast<std::size_t>(out_off_[i]);
    }

    Simulator &sim_;

    // Hot SoA cell table (indexed by dense cell id).
    std::vector<std::uint8_t> kind_;
    std::vector<std::uint8_t> state_;
    std::vector<std::uint8_t> n_in_;
    std::vector<std::int32_t> out_off_; ///< CSR offsets into conns_
    std::vector<OutConn> conns_;
    std::vector<std::int32_t> in_off_;  ///< offsets into last_
    std::vector<Tick> last_;            ///< per-channel last arrival
    std::vector<std::int32_t> trace_slot_;
    std::deque<std::vector<Tick>> traces_; ///< stable refs for probes

    // Cold: diagnostics / name-based APIs.
    std::deque<std::string> names_; ///< stable refs for name()
    std::unordered_map<std::string, std::int32_t> by_name_;
    std::size_t live_conns_ = 0;

    // Per-kind parameter cache (delay, switch energy).
    Tick kind_delay_[kNumExecKinds];
    double kind_energy_[kNumExecKinds];

    // Fault lowering: bit s of fault_mask_[i] says fault spec s
    // targets cell i. Rebuilt by freeze() when the configuration
    // version moves; unusable (name fallback) past 64 specs.
    std::vector<std::uint64_t> fault_mask_;
    std::uint64_t fault_cfg_version_ = ~std::uint64_t{0};
    bool fault_masks_usable_ = false;
};

} // namespace sushi::sfq

#endif // SUSHI_SFQ_COMPILED_NETLIST_HH
