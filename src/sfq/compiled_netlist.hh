/**
 * @file
 * The compiled, data-oriented execution core of the RSFQ simulator.
 *
 * Every Component registers itself here at construction, which lowers
 * the circuit into flat contiguous arrays as it is built. The tables
 * are split along the mutability boundary:
 *
 *  - NetStructure holds everything *immutable after compilation* —
 *    the SoA kind/input-count bytes, the CSR fan-out table (RSFQ
 *    fan-out is one, paper Sec. 2.1.2, so each output port owns
 *    exactly one {dst, port, wire_delay} slot), the per-cell
 *    constraint-presence flags, and the interned name table. One
 *    NetStructure can be shared (shared_ptr) by many simulators:
 *    replica fleets — fault-campaign workers, engine replicas —
 *    clone only the mutable state below instead of re-lowering the
 *    whole circuit per replica;
 *
 *  - the per-simulator mutable state: one byte of storage state
 *    (NDRO flux bit / TFF phase / DFF latch / SFQDC level) per cell,
 *    flat per-channel last-arrival ticks for the Table-1 constraint
 *    checks, pooled pulse traces for the probes (PulseSink, SFQDC),
 *    per-cell keyed-RNG draw counters, and the cached fault-target
 *    bitmasks.
 *
 * deliver() is the pulse-delivery inner loop: a switch on the kind
 * byte over indices. No virtual dispatch, no std::function, no
 * allocation, no string handling on the fault-free hot path (see
 * DESIGN.md §2.1). It executes against an ExecCtx — a bundle of
 * pointers naming the clock, event queue, and counters to use — so
 * the same compiled tables serve both the sequential simulator (one
 * context wired to the Simulator's own members) and the partitioned
 * parallel simulator (one context per partition, with cross-partition
 * pulses routed into per-edge outboxes). freeze() completes the
 * lowering by caching one fault-target bitmask per cell and taking
 * the state snapshot that makes Simulator::reset() a memcpy.
 */

#ifndef SUSHI_SFQ_COMPILED_NETLIST_HH
#define SUSHI_SFQ_COMPILED_NETLIST_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/time.hh"
#include "sfq/cell_params.hh"

namespace sushi::sfq {

class Simulator;
class EventQueue;
struct FaultCounters;

/** One CSR fan-out slot (fan-out is 1 per output port). */
struct OutConn
{
    std::int32_t dst = -1; ///< destination cell id, -1 dangling
    std::int32_t port = 0; ///< destination input port
    Tick wire_delay = 0;   ///< interconnect (JTL chain) delay
};

/**
 * The immutable-after-compilation half of a compiled netlist. Built
 * through CompiledNetlist's lowering API, then optionally sealed and
 * shared across simulators via CompiledNetlist::shareStructure().
 */
struct NetStructure
{
    std::vector<std::uint8_t> kind;     ///< execution kind byte
    std::vector<std::uint8_t> n_in;     ///< input port count
    std::vector<std::uint8_t> has_rules; ///< any Table-1 rule on kind
    std::vector<std::int32_t> out_off;  ///< CSR offsets into conns
    std::vector<OutConn> conns;
    std::vector<std::int32_t> in_off;   ///< offsets into last-arrival
    std::vector<std::int32_t> trace_slot;
    std::deque<std::string> names;      ///< stable refs for name()
    std::unordered_map<std::string, std::int32_t> by_name;
    std::size_t live_conns = 0;
    std::size_t num_traces = 0;
    std::size_t num_inputs = 0;         ///< total input channels
};

/** One pulse bound for another partition, parked in an outbox until
 *  the window barrier (parallel simulation only). */
struct CrossEvent
{
    Tick when;
    std::int32_t cell;
    std::int32_t port;
};

/**
 * Execution context for deliver(): names the clock, event queue, and
 * counters one delivery should use. The sequential Simulator wires a
 * single context to its own members; the parallel simulator gives
 * each partition its own (queue, counters, outboxes) so partitions
 * never write shared state. All pointers are non-owning.
 */
struct ExecCtx
{
    Tick now = 0;                       ///< current simulation time
    EventQueue *queue = nullptr;        ///< same-partition pushes
    std::uint64_t *pulses = nullptr;    ///< delivered-pulse tally
    std::uint64_t *switch_count = nullptr; ///< per-kind switch tally
    FaultCounters *faults = nullptr;    ///< injected-fault tally

    /// Partition routing: null lane_of means everything is local.
    const std::int32_t *lane_of = nullptr; ///< cell id -> partition
    std::int32_t lane = 0;                 ///< executing partition
    std::vector<CrossEvent> *outbox = nullptr; ///< per-dst-partition
};

/** Flat, index-addressed circuit representation plus its executor. */
class CompiledNetlist
{
  public:
    /** Pseudo-kinds for the IO pads, after the library cell kinds. */
    static constexpr std::uint8_t kKindSource =
        static_cast<std::uint8_t>(CellKind::kNumKinds);
    static constexpr std::uint8_t kKindSink = kKindSource + 1;
    static constexpr std::uint8_t kNumExecKinds = kKindSink + 1;

    explicit CompiledNetlist(Simulator &sim);

    /** Adopt a sealed structure shared with other simulators; this
     *  instance allocates only the mutable per-sim state. */
    CompiledNetlist(Simulator &sim,
                    std::shared_ptr<const NetStructure> structure);

    CompiledNetlist(const CompiledNetlist &) = delete;
    CompiledNetlist &operator=(const CompiledNetlist &) = delete;

    /// @name Lowering (driven by Component registration)
    /// @{

    /** Register a cell; returns its dense id. Fatal once the
     *  structure has been sealed by shareStructure(). */
    std::int32_t addCell(std::string name, std::uint8_t kind,
                         int num_inputs, int num_outputs);

    /** Wire src output port to dst input port (fan-out of one). */
    void connect(std::int32_t src, int out_port, std::int32_t dst,
                 int dst_port, Tick wire_delay);

    /** True if the output port already has a destination. */
    bool
    outputConnected(std::int32_t id, int out_port) const
    {
        return conn(id, out_port).dst >= 0;
    }

    /**
     * Finish the lowering: refresh the per-cell fault-target bitmask
     * cache against the simulator's current fault configuration, and
     * capture the post-compile state snapshot (first freeze after a
     * structural change) that restoreState() rewinds to. Idempotent
     * and cheap when nothing changed; Simulator::run() calls it
     * before executing, so the compiled path is always the one that
     * runs.
     */
    void freeze();

    /**
     * Seal the structure and return it for sharing with replica
     * simulators (Simulator's structure-adopting constructor).
     * Further addCell/connect calls on any simulator using this
     * structure are fatal — replicas would see the mutation.
     */
    std::shared_ptr<const NetStructure> shareStructure();

    /** The structure (shared or exclusively owned). */
    const std::shared_ptr<const NetStructure> &structure() const
    {
        return struct_;
    }

    /// @}
    /// @name Interned name table
    /// @{

    std::size_t numCells() const { return struct_->kind.size(); }
    std::size_t numConnections() const
    {
        return struct_->live_conns;
    }

    const std::string &
    cellName(std::int32_t id) const
    {
        return struct_->names[checkId(id)];
    }

    /** Dense id for an instance name; -1 if unknown. Duplicate names
     *  (legal, discouraged) resolve to the first registration. */
    std::int32_t cellId(const std::string &name) const;

    /** Execution kind byte (CellKind value, or kKindSource/Sink). */
    std::uint8_t
    cellKind(std::int32_t id) const
    {
        return struct_->kind[checkId(id)];
    }

    /** Propagation delay of an execution kind. */
    Tick
    kindDelay(std::uint8_t kind) const
    {
        sushi_assert(kind < kNumExecKinds);
        return kind_delay_[kind];
    }

    /** Number of output ports of a cell. */
    int
    numOutputs(std::int32_t id) const
    {
        return static_cast<int>(connCount(checkId(id)));
    }

    /// @}
    /// @name SoA state access (used by the cell facades and tests)
    /// @{

    /** One-bit storage state: NDRO flux, TFF phase, DFF latch,
     *  SFQDC output level. */
    bool stateBit(std::int32_t id) const
    {
        return state_[checkId(id)] != 0;
    }
    void setStateBit(std::int32_t id, bool v)
    {
        state_[checkId(id)] = v ? 1 : 0;
    }

    /** Recorded pulse trace of a probe cell (PulseSink / SFQDC). */
    const std::vector<Tick> &
    trace(std::int32_t id) const
    {
        const std::int32_t slot = struct_->trace_slot[checkId(id)];
        sushi_assert(slot >= 0);
        return traces_[static_cast<std::size_t>(slot)];
    }
    std::vector<Tick> &
    traceMut(std::int32_t id)
    {
        const std::int32_t slot = struct_->trace_slot[checkId(id)];
        sushi_assert(slot >= 0);
        return traces_[static_cast<std::size_t>(slot)];
    }

    /** Last arrival tick on an input channel (kTickNever if none). */
    Tick
    lastArrival(std::int32_t id, int channel) const
    {
        const std::size_t i = checkId(id);
        sushi_assert(channel >= 0 &&
                     channel < static_cast<int>(struct_->n_in[i]));
        return last_[static_cast<std::size_t>(struct_->in_off[i]) +
                     static_cast<std::size_t>(channel)];
    }

    /** CSR fan-out slot of an output port. */
    const OutConn &
    connection(std::int32_t id, int out_port) const
    {
        return conn(id, out_port);
    }

    /// @}
    /// @name Snapshot-fast reset
    /// @{

    /**
     * Rewind the mutable state to the snapshot freeze() captured:
     * storage bits, last-arrival ticks, and keyed-RNG counters are
     * restored by flat array copies (memcpy under the hood) and the
     * probe traces truncated to their snapshot length — no per-cell
     * walk. No-op before the first freeze.
     */
    void restoreState();

    /// @}

    /** Dynamic switching energy implied by a per-kind switch tally
     *  (joules): sum over kinds of count x per-switch energy. */
    double switchEnergyOf(const std::uint64_t counts[]) const;

    /**
     * Execute one pulse arriving on input @p port of cell @p id at
     * time @p cx.now, against @p cx's queue and counters. The inner
     * loop of the simulator.
     */
    void deliver(std::int32_t id, std::int32_t port, ExecCtx &cx);

  private:
    /** Dead-cell / constraint / energy bookkeeping shared by every
     *  library cell. @return false if the pulse must be discarded. */
    bool arriveCell(std::int32_t id, std::uint8_t kind, int port,
                    ExecCtx &cx);

    /** Emit one pulse out of @p out_port after @p delay. */
    void emit(std::int32_t id, int out_port, Tick delay, ExecCtx &cx);

    /** Route one scheduled delivery: local queue push, or outbox
     *  append when @p dst lives in another partition. */
    void pushOut(ExecCtx &cx, Tick when, std::int32_t dst,
                 std::int32_t port);

    /** True if the cached fault bitmasks match the live config. */
    bool masksCurrent() const;

    /** The builder-writable structure (null once sealed/adopted). */
    NetStructure &mut();

    std::size_t
    checkId(std::int32_t id) const
    {
        sushi_assert(id >= 0 && static_cast<std::size_t>(id) <
                                    struct_->kind.size());
        return static_cast<std::size_t>(id);
    }

    const OutConn &
    conn(std::int32_t id, int out_port) const
    {
        const std::size_t i = checkId(id);
        sushi_assert(out_port >= 0 &&
                     static_cast<std::size_t>(out_port) <
                         connCount(i));
        return struct_
            ->conns[static_cast<std::size_t>(struct_->out_off[i]) +
                    static_cast<std::size_t>(out_port)];
    }

    std::size_t
    connCount(std::size_t i) const
    {
        const std::size_t end = i + 1 < struct_->out_off.size()
            ? static_cast<std::size_t>(struct_->out_off[i + 1])
            : struct_->conns.size();
        return end - static_cast<std::size_t>(struct_->out_off[i]);
    }

    Simulator &sim_;

    // The structural half: owned exclusively while building, possibly
    // shared (and then immutable) afterwards. mut_ aliases struct_
    // while this instance may still lower cells into it.
    std::shared_ptr<const NetStructure> struct_;
    NetStructure *mut_ = nullptr;

    // Mutable per-simulator state (indexed by dense cell id).
    std::vector<std::uint8_t> state_;
    std::vector<Tick> last_;            ///< per-channel last arrival
    std::vector<std::uint32_t> rng_ctr_; ///< keyed fault-draw counters
    std::deque<std::vector<Tick>> traces_; ///< stable refs for probes

    // Post-compile snapshot for restoreState().
    std::vector<std::uint8_t> snap_state_;
    std::vector<Tick> snap_last_;
    std::vector<std::uint32_t> snap_rng_ctr_;
    std::vector<std::size_t> snap_trace_size_;
    bool snapped_ = false;

    // Per-kind parameter cache (delay, switch energy).
    Tick kind_delay_[kNumExecKinds];
    double kind_energy_[kNumExecKinds];
    bool kind_has_rules_[kNumExecKinds];

    // Fault lowering: bit s of fault_mask_[i] says fault spec s
    // targets cell i. Rebuilt by freeze() when the configuration
    // version moves; unusable (name fallback) past 64 specs.
    std::vector<std::uint64_t> fault_mask_;
    std::uint64_t fault_cfg_version_ = ~std::uint64_t{0};
    bool fault_masks_usable_ = false;

    /** Masks usable for the keyed fault path (parallel runs need
     *  this or a fault-free config). */
    bool faultMasksUsable() const { return fault_masks_usable_; }

    friend class ParallelSimulator;
};

} // namespace sushi::sfq

#endif // SUSHI_SFQ_COMPILED_NETLIST_HH
