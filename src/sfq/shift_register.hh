/**
 * @file
 * DFF shift-register memory — the conventional RSFQ on-chip storage
 * (paper Sec. 3B).
 *
 * "Shift registers made up of multiple DFFs in series are the most
 * commonly used on-chip memory, leveraging the gate-level pipeline
 * characteristics of DFF cells. However, shift registers are only
 * suitable for sequential access, and achieving efficient random
 * access is challenging." This module builds that memory — both
 * behaviourally and as a gate-level DFF chain — so the memory-wall
 * motivation (e.g. SuperNPU reaching only 16 % of peak because of
 * it) can be quantified against SUSHI's storage-free design in
 * bench_memory_wall.
 */

#ifndef SUSHI_SFQ_SHIFT_REGISTER_HH
#define SUSHI_SFQ_SHIFT_REGISTER_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sfq/netlist.hh"

namespace sushi::sfq {

/** Behavioural shift-register memory of fixed depth. */
class ShiftRegister
{
  public:
    explicit ShiftRegister(int depth);

    int depth() const { return depth_; }

    /**
     * One clock: shifts the register; the head bit leaves (and is
     * returned), @p din enters at the tail.
     */
    bool clock(bool din);

    /** Current contents, head (next out) first. */
    std::vector<bool> contents() const;

    /**
     * Clocks needed to bring position @p index (0 = head) to the
     * output: the sequential-access cost model. Random access to a
     * uniformly distributed position averages depth/2 clocks.
     */
    int accessLatency(int index) const;

    /** Total clocks applied. */
    long clocks() const { return clocks_; }

  private:
    int depth_;
    std::deque<bool> bits_;
    long clocks_ = 0;
};

/**
 * Gate-level shift register: a chain of DFF cells with a clock
 * splitter tree, exactly the Sec. 3B structure.
 */
class ShiftRegisterGate
{
  public:
    ShiftRegisterGate(Netlist &net, const std::string &name,
                      int depth);

    int depth() const { return depth_; }

    /** Feed a data pulse (a stored 1) into the tail at @p when. */
    void injectData(Tick when);

    /** Clock the whole chain at @p when. */
    void injectClock(Tick when);

    /** Pulses that have left the head so far. */
    PulseSink &outSink() { return *out_; }

    /** Stored bits, head first (from the DFF internal states). */
    std::vector<bool> contents() const;

  private:
    int depth_;
    std::vector<Dff *> dffs_;
    PulseSource *din_;
    PulseSource *clk_;
    PulseSink *out_;
};

/**
 * Memory-wall model: effective utilisation of a compute engine that
 * must fetch each operand from a shift register.
 * @param depth         register depth
 * @param sequential    fraction of accesses that are sequential
 *                      (next element already at the head)
 * @param compute_clocks compute cycles available per access
 *
 * Sequential accesses cost 1 clock; random ones average depth / 2.
 * Utilisation = compute / (compute + average access cost).
 */
double shiftRegisterUtilisation(int depth, double sequential,
                                double compute_clocks);

} // namespace sushi::sfq

#endif // SUSHI_SFQ_SHIFT_REGISTER_HH
