/**
 * @file
 * The RSFQ standard-cell library (paper Sec. 2.1.2, Fig. 3).
 *
 * Every cell checks its Table-1 input-timing constraints on each
 * arrival and accounts its switching energy to the simulator. Output
 * fan-out is one everywhere (enforced by Component::connect).
 *
 * These classes are construction-time facades: the per-cell behaviour
 * (DFF latch, NDRO flux loop, TFF phase, splitter/confluence routing)
 * executes inside CompiledNetlist::deliver()'s kind switch, and the
 * accessors here read the one-bit storage state back out of the
 * compiled SoA tables.
 */

#ifndef SUSHI_SFQ_CELLS_HH
#define SUSHI_SFQ_CELLS_HH

#include <string>
#include <vector>

#include "sfq/cell_params.hh"
#include "sfq/component.hh"
#include "sfq/constraints.hh"

namespace sushi::sfq {

/** Common base of all library cells. */
class Cell : public Component
{
  public:
    Cell(Simulator &sim, std::string name, CellKind kind,
         int num_inputs, int num_outputs);

    /** The library cell type. */
    CellKind kind() const { return kind_; }

    /** Convenience: this cell's parameter record. */
    const CellParams &params() const { return cellParams(kind_); }

  private:
    CellKind kind_;
};

/** Josephson transmission line stage: pure unit-delay repeater. */
class Jtl : public Cell
{
  public:
    Jtl(Simulator &sim, std::string name);
};

/** 1-to-2 splitter. Ports: in 0 -> out 0 (A), out 1 (B). */
class Spl : public Cell
{
  public:
    Spl(Simulator &sim, std::string name);
};

/** 1-to-3 splitter. */
class Spl3 : public Cell
{
  public:
    Spl3(Simulator &sim, std::string name);
};

/** 2-to-1 confluence buffer. Inputs 0 (dinA), 1 (dinB) -> out 0. */
class Cb : public Cell
{
  public:
    Cb(Simulator &sim, std::string name);
};

/** 3-to-1 confluence buffer. */
class Cb3 : public Cell
{
  public:
    Cb3(Simulator &sim, std::string name);
};

/**
 * D flip-flop: destructive-readout storage (Fig. 3(a)(e)).
 * Inputs: 0 din, 1 clk. Output 0: dout.
 * A pulse appears on dout only when both din and clk have arrived;
 * clk releases (destroys) the stored flux.
 */
class Dff : public Cell
{
  public:
    Dff(Simulator &sim, std::string name);

    /** True if a flux quantum is currently stored. */
    bool stored() const { return sim_.core().stateBit(id_); }
};

/**
 * Non-destructive readout cell (Fig. 3(b)(f)).
 * Inputs: 0 din (set), 1 rst (reset), 2 clk (read).
 * Output 0: dout — a pulse per clk while the cell holds a 1.
 * Also usable as a configurable switch (paper Sec. 4.1.1): din arms
 * it, clk pulses pass through while armed.
 */
class Ndro : public Cell
{
  public:
    Ndro(Simulator &sim, std::string name);

    /** Current stored state. */
    bool state() const { return sim_.core().stateBit(id_); }
};

/**
 * Toggle flip-flop, L variant: emits a pulse on the 0 -> 1 internal
 * flip (paper Sec. 2.1.2 E). Input 0: clk. Output 0: dout.
 */
class Tffl : public Cell
{
  public:
    Tffl(Simulator &sim, std::string name);

    bool state() const { return sim_.core().stateBit(id_); }

    /** Force the internal state (used when initialising a design). */
    void setState(bool s) { sim_.core().setStateBit(id_, s); }
};

/** Toggle flip-flop, R variant: emits a pulse on the 1 -> 0 flip. */
class Tffr : public Cell
{
  public:
    Tffr(Simulator &sim, std::string name);

    bool state() const { return sim_.core().stateBit(id_); }
    void setState(bool s) { sim_.core().setStateBit(id_, s); }
};

/**
 * DC-to-SFQ converter: the chip input interface. Each call of
 * edge() (a level transition on the room-temperature side) produces
 * one SFQ pulse (Fig. 14 "input" -> "real input").
 */
class DcSfq : public Cell
{
  public:
    DcSfq(Simulator &sim, std::string name);

    /** Drive a level edge at absolute time @p when. */
    void edge(Tick when) { inject(0, when); }
};

/**
 * SFQ-to-DC converter: the chip output driver. Every incoming SFQ
 * pulse toggles an output voltage level, which is what an
 * oscilloscope sees (Fig. 14 "output" -> "real output", Fig. 16).
 */
class SfqDc : public Cell
{
  public:
    SfqDc(Simulator &sim, std::string name);

    /** Current output level. */
    bool level() const { return sim_.core().stateBit(id_); }

    /** Times of all level toggles so far. */
    const std::vector<Tick> &toggles() const
    {
        return sim_.core().trace(id_);
    }

    /** Number of pulses received (= number of toggles). */
    std::size_t pulseCount() const { return toggles().size(); }
};

} // namespace sushi::sfq

#endif // SUSHI_SFQ_CELLS_HH
