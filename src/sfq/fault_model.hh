/**
 * @file
 * Pluggable cell-level fault injection for the RSFQ simulator.
 *
 * Fabricated RSFQ parts fail in characteristic ways that waveform
 * verification (paper Sec. 6.2) exists to catch: marginal Josephson
 * junctions lose pulses, flux trapped during cooldown biases storage
 * loops, punch-through doubles pulses, and parameter spread shifts
 * cell delays until timing constraints are violated. The FaultModel
 * turns each of those physical failure modes into an injectable,
 * seed-deterministic fault that can be aimed at individual cells (by
 * instance-name substring) and gated to transient activation windows
 * (a "flux-trap window": the interval during which a trapped fluxon
 * sits in a loop before escaping).
 *
 * Every Simulator owns one FaultModel; components consult it on each
 * pulse delivery and cell arrival. With no faults configured the
 * queries reduce to a flag test, so the fault-free hot path is
 * unchanged.
 */

#ifndef SUSHI_SFQ_FAULT_MODEL_HH
#define SUSHI_SFQ_FAULT_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/time.hh"

namespace sushi::sfq {

/** The injectable physical failure modes. */
enum class FaultKind
{
    PulseDrop,     ///< delivery lost in flight (marginal JJ)
    SpuriousPulse, ///< extra pulse inserted behind a delivery
                   ///< (punch-through / reflection)
    TimingJitter,  ///< Gaussian jitter on propagation delay
                   ///< (parameter spread, thermal noise)
    StuckSet,      ///< NDRO stuck holding a 1 (trapped flux)
    StuckReset,    ///< NDRO stuck holding a 0 (dead storage loop)
    DeadCell,      ///< cell never switches (shorted/open junction)
};

/** Short stable name for JSON output and diagnostics. */
const char *faultKindName(FaultKind kind);

/** One configured fault. */
struct FaultSpec
{
    FaultKind kind = FaultKind::PulseDrop;

    /** Per-delivery probability (PulseDrop / SpuriousPulse). */
    double rate = 0.0;

    /** Jitter standard deviation in ticks (TimingJitter). */
    double jitter_sigma = 0.0;

    /**
     * Instance-name substring this fault applies to; empty matches
     * every cell. Hierarchical names ("npe.sc3.ndro2") make it easy
     * to aim at one cell, one SC, or one whole NPE.
     */
    std::string target;

    /**
     * Activation window [from, until): outside it the fault is
     * dormant. The default covers all time (a hard defect); a finite
     * window models transient flux trapping.
     */
    Tick from = 0;
    Tick until = kTickNever;
};

/** Running tally of injected-fault effects. */
struct FaultCounters
{
    std::uint64_t dropped = 0;    ///< deliveries lost
    std::uint64_t inserted = 0;   ///< spurious pulses added
    std::uint64_t jittered = 0;   ///< deliveries with nonzero jitter
    std::uint64_t suppressed = 0; ///< arrivals eaten by dead cells
};

/** The per-simulator fault injector. */
class FaultModel
{
  public:
    explicit FaultModel(std::uint64_t seed = 1);

    /**
     * Re-seed the fault stream. Equal seeds (with equal fault
     * configurations driving a deterministic event sequence) give
     * bit-identical fault decisions.
     */
    void reseed(std::uint64_t seed);
    std::uint64_t seed() const { return seed_; }

    /** Add a fault. Faults are evaluated in insertion order. */
    void addFault(FaultSpec spec);

    /** Remove every configured fault (counters are kept). */
    void clearFaults();

    const std::vector<FaultSpec> &faults() const { return specs_; }

    /** Number of configured fault specs. */
    std::size_t numFaults() const { return specs_.size(); }

    /**
     * Monotonic configuration version: bumped by addFault() and
     * clearFaults() (reseed() keeps it — the target set is
     * unchanged). CompiledNetlist caches per-cell target bitmasks
     * keyed on this, so substring matching runs once per freeze, not
     * once per delivered pulse.
     */
    std::uint64_t configVersion() const { return config_version_; }

    /** True if spec @p i name-targets @p cell (time window excluded —
     *  that part stays a per-event check). For mask building. */
    bool
    targetMatches(std::size_t i, const std::string &cell) const
    {
        const FaultSpec &spec = specs_[i];
        return spec.target.empty() ||
               cell.find(spec.target) != std::string::npos;
    }

    /** The net effect of faults on one pulse delivery. */
    struct Delivery
    {
        bool dropped = false; ///< the pulse is lost in flight
        int inserted = 0;     ///< spurious extra pulses to schedule
        Tick jitter = 0;      ///< signed shift of the arrival time
    };

    /**
     * Decide the fate of a delivery leaving component @p src at time
     * @p now. Consumes randomness only for matching active faults,
     * in insertion order, so streams are reproducible.
     */
    Delivery onDeliver(const std::string &src, Tick now);

    /** True if @p cell is dead at @p now; counts the suppression. */
    bool suppressArrival(const std::string &cell, Tick now);

    /** True if an NDRO named @p cell is stuck-set at @p now. */
    bool stuckSet(const std::string &cell, Tick now) const;

    /** True if an NDRO named @p cell is stuck-reset at @p now. */
    bool stuckReset(const std::string &cell, Tick now) const;

    /// @name Mask-addressed queries (compiled path)
    ///
    /// Bit i of @p mask caches targetMatches(i, cell) for the cell in
    /// question, so the per-event work is a bit test plus the time
    /// window. Each query consumes randomness for exactly the same
    /// spec set as its name-based twin, so fault streams — and every
    /// downstream decision — are bit-identical across the two paths.
    /// @{
    Delivery onDeliverMasked(std::uint64_t mask, Tick now);
    bool suppressArrivalMasked(std::uint64_t mask, Tick now);
    bool stuckSetMasked(std::uint64_t mask, Tick now) const;
    bool stuckResetMasked(std::uint64_t mask, Tick now) const;
    /// @}

    /// @name Keyed queries (compiled / parallel path)
    ///
    /// Counter-based randomness: every draw is a pure function of
    /// (seed, cell id, per-cell counter), so fault decisions depend
    /// only on the per-cell delivery sequence — never on the global
    /// interleaving of cells. That is what lets the partitioned
    /// parallel simulator reproduce the sequential fault stream
    /// exactly: each partition advances only its own cells' counters.
    /// Effects are tallied into the caller's @p c (per-partition in
    /// parallel runs, the model's own counters sequentially), so the
    /// queries are const and race-free across partitions.
    /// @{

    /** Keyed twin of onDeliverMasked: the fate of a delivery leaving
     *  cell @p cell, whose draw counter is @p ctr. Matching drop /
     *  spurious specs consume one counter value each, jitter specs
     *  exactly two, independent of earlier outcomes. */
    Delivery onDeliverKeyed(std::uint64_t mask, Tick now,
                            std::uint64_t cell, std::uint32_t &ctr,
                            FaultCounters &c) const;

    /** Keyed twin of suppressArrivalMasked (no randomness; counts
     *  the suppression into @p c instead of the model). */
    bool suppressArrivalKeyed(std::uint64_t mask, Tick now,
                              FaultCounters &c) const;
    /// @}

    /** Mutable counters (for merging per-partition tallies back). */
    FaultCounters &countersMut() { return counters_; }

    /** Fast-path guards: any fault of the given class configured? */
    bool anyDeliveryFaults() const { return delivery_faults_ > 0; }
    bool anyCellFaults() const { return cell_faults_ > 0; }

    /** Any TimingJitter spec configured? Jitter shifts delivery
     *  times arbitrarily, which defeats the parallel simulator's
     *  min-link-delay lookahead — it falls back to sequential. */
    bool anyJitterFaults() const { return jitter_faults_ > 0; }

    const FaultCounters &counters() const { return counters_; }

    /** Zero the counters (the configuration is kept). */
    void resetCounters() { counters_ = FaultCounters{}; }

  private:
    /** True if @p spec applies to @p cell at @p now. */
    static bool matches(const FaultSpec &spec, const std::string &cell,
                        Tick now);

    /** True if spec @p i applies at @p now given its cached target
     *  bit. Mirrors matches() with the substring test precomputed. */
    bool
    maskedMatch(std::size_t i, std::uint64_t mask, Tick now) const
    {
        if ((mask & (std::uint64_t{1} << i)) == 0)
            return false;
        const FaultSpec &spec = specs_[i];
        return now >= spec.from && now < spec.until;
    }

    std::uint64_t seed_;
    Rng rng_;
    std::vector<FaultSpec> specs_;
    int delivery_faults_ = 0; ///< drop/spurious/jitter spec count
    int cell_faults_ = 0;     ///< stuck/dead spec count
    int jitter_faults_ = 0;   ///< TimingJitter spec count
    std::uint64_t config_version_ = 0;
    FaultCounters counters_;
};

} // namespace sushi::sfq

#endif // SUSHI_SFQ_FAULT_MODEL_HH
