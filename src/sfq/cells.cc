#include "sfq/cells.hh"

#include <utility>

#include "common/logging.hh"

namespace sushi::sfq {

Cell::Cell(Simulator &sim, std::string name, CellKind kind,
           int num_inputs, int num_outputs)
    : Component(sim, std::move(name), num_inputs, num_outputs),
      kind_(kind), checker_(kind, num_inputs)
{
}

bool
Cell::arrive(int port)
{
    // A dead cell (shorted/open junction) eats the pulse before any
    // junction switches: no energy, no constraint bookkeeping.
    if (sim_.faults().anyCellFaults() &&
        sim_.faults().suppressArrival(name(), sim_.now()))
        return false;
    std::string violation = checker_.arrive(port, sim_.now());
    if (!violation.empty() &&
        sim_.reportViolation(name(), violation)) {
        // Recover policy: the marginal arrival is attributed to this
        // cell and the offending pulse is discarded.
        return false;
    }
    sim_.addSwitchEnergy(params().switch_energy_j);
    return true;
}

Jtl::Jtl(Simulator &sim, std::string name)
    : Cell(sim, std::move(name), CellKind::JTL, 1, 1)
{
}

void
Jtl::receive(int port)
{
    if (!arrive(port))
        return;
    send(0, params().delay);
}

Spl::Spl(Simulator &sim, std::string name)
    : Cell(sim, std::move(name), CellKind::SPL, 1, 2)
{
}

void
Spl::receive(int port)
{
    if (!arrive(port))
        return;
    send(0, params().delay);
    send(1, params().delay);
}

Spl3::Spl3(Simulator &sim, std::string name)
    : Cell(sim, std::move(name), CellKind::SPL3, 1, 3)
{
}

void
Spl3::receive(int port)
{
    if (!arrive(port))
        return;
    send(0, params().delay);
    send(1, params().delay);
    send(2, params().delay);
}

Cb::Cb(Simulator &sim, std::string name)
    : Cell(sim, std::move(name), CellKind::CB, 2, 1)
{
}

void
Cb::receive(int port)
{
    if (!arrive(port))
        return;
    send(0, params().delay);
}

Cb3::Cb3(Simulator &sim, std::string name)
    : Cell(sim, std::move(name), CellKind::CB3, 3, 1)
{
}

void
Cb3::receive(int port)
{
    if (!arrive(port))
        return;
    send(0, params().delay);
}

Dff::Dff(Simulator &sim, std::string name)
    : Cell(sim, std::move(name), CellKind::DFF, 2, 1)
{
}

void
Dff::receive(int port)
{
    if (!arrive(port))
        return;
    if (port == chan::kDffDin) {
        if (stored_) {
            // A second din before a clk would push a second flux
            // quantum into the storage loop — a design error. Under
            // Recover the surplus din is simply discarded.
            if (sim_.reportViolation(name(),
                                     "din while already storing"))
                return;
        }
        stored_ = true;
    } else {
        // clk: destructive read. No stored flux means logic 0 — no
        // output pulse.
        if (stored_) {
            stored_ = false;
            send(0, params().delay);
        }
    }
}

Ndro::Ndro(Simulator &sim, std::string name)
    : Cell(sim, std::move(name), CellKind::NDRO, 3, 1)
{
}

void
Ndro::receive(int port)
{
    if (!arrive(port))
        return;
    // Stuck-at faults model flux trapped in (stuck-set) or a dead
    // (stuck-reset) storage loop: while active, the loop holds its
    // forced value and writes in the opposing direction are lost.
    bool s_set = false, s_rst = false;
    if (sim_.faults().anyCellFaults()) {
        s_set = sim_.faults().stuckSet(name(), sim_.now());
        s_rst = sim_.faults().stuckReset(name(), sim_.now());
    }
    if (s_set)
        state_ = true;
    if (s_rst)
        state_ = false;
    switch (port) {
      case chan::kNdroDin:
        if (!s_rst)
            state_ = true;
        break;
      case chan::kNdroRst:
        if (!s_set)
            state_ = false;
        break;
      case chan::kNdroClk:
        if (state_)
            send(0, params().delay);
        break;
      default:
        sushi_panic("NDRO %s: bad port %d", name().c_str(), port);
    }
}

Tffl::Tffl(Simulator &sim, std::string name)
    : Cell(sim, std::move(name), CellKind::TFFL, 1, 1)
{
}

void
Tffl::receive(int port)
{
    if (!arrive(port))
        return;
    state_ = !state_;
    if (state_) // pulses on the 0 -> 1 flip
        send(0, params().delay);
}

Tffr::Tffr(Simulator &sim, std::string name)
    : Cell(sim, std::move(name), CellKind::TFFR, 1, 1)
{
}

void
Tffr::receive(int port)
{
    if (!arrive(port))
        return;
    state_ = !state_;
    if (!state_) // pulses on the 1 -> 0 flip
        send(0, params().delay);
}

DcSfq::DcSfq(Simulator &sim, std::string name)
    : Cell(sim, std::move(name), CellKind::DCSFQ, 1, 1)
{
}

void
DcSfq::receive(int port)
{
    if (!arrive(port))
        return;
    send(0, params().delay);
}

void
DcSfq::edge(Tick when)
{
    inject(0, when);
}

SfqDc::SfqDc(Simulator &sim, std::string name)
    : Cell(sim, std::move(name), CellKind::SFQDC, 1, 0)
{
}

void
SfqDc::receive(int port)
{
    if (!arrive(port))
        return;
    level_ = !level_;
    toggles_.push_back(sim_.now());
}

} // namespace sushi::sfq
