#include "sfq/cells.hh"

#include <utility>

namespace sushi::sfq {

Cell::Cell(Simulator &sim, std::string name, CellKind kind,
           int num_inputs, int num_outputs)
    : Component(sim, std::move(name), num_inputs, num_outputs,
                static_cast<std::uint8_t>(kind)),
      kind_(kind)
{
}

Jtl::Jtl(Simulator &sim, std::string name)
    : Cell(sim, std::move(name), CellKind::JTL, 1, 1)
{
}

Spl::Spl(Simulator &sim, std::string name)
    : Cell(sim, std::move(name), CellKind::SPL, 1, 2)
{
}

Spl3::Spl3(Simulator &sim, std::string name)
    : Cell(sim, std::move(name), CellKind::SPL3, 1, 3)
{
}

Cb::Cb(Simulator &sim, std::string name)
    : Cell(sim, std::move(name), CellKind::CB, 2, 1)
{
}

Cb3::Cb3(Simulator &sim, std::string name)
    : Cell(sim, std::move(name), CellKind::CB3, 3, 1)
{
}

Dff::Dff(Simulator &sim, std::string name)
    : Cell(sim, std::move(name), CellKind::DFF, 2, 1)
{
}

Ndro::Ndro(Simulator &sim, std::string name)
    : Cell(sim, std::move(name), CellKind::NDRO, 3, 1)
{
}

Tffl::Tffl(Simulator &sim, std::string name)
    : Cell(sim, std::move(name), CellKind::TFFL, 1, 1)
{
}

Tffr::Tffr(Simulator &sim, std::string name)
    : Cell(sim, std::move(name), CellKind::TFFR, 1, 1)
{
}

DcSfq::DcSfq(Simulator &sim, std::string name)
    : Cell(sim, std::move(name), CellKind::DCSFQ, 1, 1)
{
}

SfqDc::SfqDc(Simulator &sim, std::string name)
    : Cell(sim, std::move(name), CellKind::SFQDC, 1, 0)
{
}

} // namespace sushi::sfq
