#include "sfq/waveform.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace sushi::sfq {

LevelWave
pulsesToLevels(const PulseTrace &pulses)
{
    LevelWave wave;
    wave.reserve(pulses.size());
    bool level = false;
    for (Tick t : pulses) {
        level = !level;
        wave.push_back(LevelStep{t, level});
    }
    return wave;
}

PulseTrace
levelsToPulses(const LevelWave &wave)
{
    PulseTrace pulses;
    pulses.reserve(wave.size());
    bool level = false;
    for (const LevelStep &s : wave) {
        if (s.high != level) {
            pulses.push_back(s.at);
            level = s.high;
        }
        // A step that does not change the level carries no pulse
        // (oscilloscope re-sample of an unchanged line).
    }
    return pulses;
}

std::string
compareTraces(const PulseTrace &a, const PulseTrace &b, Tick tolerance)
{
    if (a.size() != b.size()) {
        std::ostringstream os;
        os << "pulse count mismatch: " << a.size() << " vs "
           << b.size();
        return os.str();
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        const Tick d = std::llabs(a[i] - b[i]);
        if (d > tolerance) {
            std::ostringstream os;
            os << "pulse " << i << " skew " << ticksToPs(d)
               << " ps exceeds tolerance " << ticksToPs(tolerance)
               << " ps";
            return os.str();
        }
    }
    return {};
}

std::string
asciiWaveform(const std::vector<std::string> &names,
              const std::vector<PulseTrace> &traces,
              Tick bucket, int max_cols)
{
    sushi_assert(names.size() == traces.size());
    sushi_assert(bucket > 0);

    Tick horizon = 0;
    for (const auto &tr : traces)
        if (!tr.empty())
            horizon = std::max(horizon, tr.back());
    int cols = static_cast<int>(horizon / bucket) + 1;
    cols = std::min(cols, max_cols);

    std::size_t name_w = 0;
    for (const auto &n : names)
        name_w = std::max(name_w, n.size());

    std::ostringstream os;
    for (std::size_t s = 0; s < traces.size(); ++s) {
        os << names[s];
        os << std::string(name_w - names[s].size() + 1, ' ');
        std::string row(static_cast<std::size_t>(cols), '_');
        for (Tick t : traces[s]) {
            const Tick c = t / bucket;
            if (c < cols)
                row[static_cast<std::size_t>(c)] = '|';
        }
        os << row << "\n";
    }
    return os.str();
}

std::size_t
pulsesInWindow(const PulseTrace &trace, Tick from, Tick to)
{
    auto lo = std::lower_bound(trace.begin(), trace.end(), from);
    auto hi = std::lower_bound(trace.begin(), trace.end(), to);
    return static_cast<std::size_t>(hi - lo);
}

} // namespace sushi::sfq
