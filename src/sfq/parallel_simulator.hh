/**
 * @file
 * Partitioned parallel execution of a compiled netlist.
 *
 * ParallelSimulator wraps a Simulator and runs its compiled core
 * across several threads while producing *byte-identical* results —
 * traces, probe output, violation attribution, pulse/energy/fault
 * counters — at any thread count, including 1 (and including the
 * plain Simulator::run() path).
 *
 * How (DESIGN.md §4.9):
 *
 *  - the netlist is partitioned along slow inter-component links
 *    (partition.hh); the minimum delay of a lane-crossing link is
 *    the *lookahead* L;
 *  - all lanes advance in lock-step windows [W, W + L): a pulse
 *    crossing lanes is dated >= W + L, so inside a window each lane
 *    is causally independent and executes its own calendar queue
 *    exactly as the sequential simulator would;
 *  - cross-lane pulses are parked in per-(src, dst) outboxes and
 *    merged at the window barrier in fixed lane order. Merge order
 *    cannot matter for replay: the event queue pops in intrinsic
 *    (when, cell, port) order, and events identical in all three are
 *    the same physical delivery;
 *  - fault randomness is counter-keyed per cell (fault_model.hh), so
 *    decisions depend only on each cell's own delivery sequence,
 *    never on global interleaving; per-lane tallies merge by sum;
 *  - a Fatal timing violation aborts that lane at its event key
 *    (when, cell, port); every other lane still finishes the window,
 *    and the fault with the minimum key — exactly the one sequential
 *    execution would hit first — is rethrown.
 *
 * Workloads the window protocol cannot reproduce fall back to the
 *  sequential path transparently (lastRunParallel() says which ran):
 *  TimingJitter faults (jitter breaks the lookahead bound), fault
 *  configs too large for the per-cell mask cache, pending callback
 *  events (host-side stimulus closures), or a netlist that contracts
 *  to a single partition.
 */

#ifndef SUSHI_SFQ_PARALLEL_SIMULATOR_HH
#define SUSHI_SFQ_PARALLEL_SIMULATOR_HH

#include "common/time.hh"
#include "sfq/partition.hh"
#include "sfq/simulator.hh"

namespace sushi::sfq {

/** Lock-step multi-threaded driver for one Simulator. */
class ParallelSimulator
{
  public:
    struct Options
    {
        /** Worker threads (= max lanes); 0 picks
         *  std::thread::hardware_concurrency(). 1 is sequential. */
        int threads = 0;

        /**
         * Connections faster than this are never cut (partition.hh).
         * The default keeps every intra-component path (cell delays
         * run 3.5–10 ps) in one lane and cuts only long NoC-class
         * links, giving windows wide enough to amortize the two
         * barriers each costs. Lower it to force finer partitions
         * (tests use 1 tick to exercise cuts on tiny rigs).
         */
        Tick min_lookahead = psToTicks(10.0);
    };

    explicit ParallelSimulator(Simulator &sim)
        : ParallelSimulator(sim, Options{})
    {
    }
    ParallelSimulator(Simulator &sim, Options opts);

    /**
     * Equivalent of sim.run(until): execute every pending event with
     * tick <= @p until, in parallel when the workload allows it.
     * @return the tick of the last executed event (sim.now()).
     */
    Tick run(Tick until = kTickNever);

    /** The partition plan of the last run (rebuilt on netlist
     *  growth). Valid after the first run(). */
    const PartitionPlan &plan() const { return plan_; }

    /** True if the last run() actually executed in parallel (false:
     *  it delegated to the sequential Simulator::run()). */
    bool lastRunParallel() const { return last_parallel_; }

    /** Resolved thread count this instance will try to use. */
    int threads() const { return threads_; }

  private:
    void refreshPlan();
    Tick runParallel(Tick until);

    Simulator &sim_;
    Options opts_;
    int threads_;
    PartitionPlan plan_;
    bool plan_valid_ = false;
    bool last_parallel_ = false;
};

} // namespace sushi::sfq

#endif // SUSHI_SFQ_PARALLEL_SIMULATOR_HH
