#include "sfq/component.hh"

#include <utility>

#include "common/logging.hh"

namespace sushi::sfq {

Component::Component(Simulator &sim, std::string name,
                     int num_inputs, int num_outputs,
                     std::uint8_t exec_kind)
    : sim_(sim),
      id_(sim.core().addCell(std::move(name), exec_kind, num_inputs,
                             num_outputs)),
      num_inputs_(num_inputs), num_outputs_(num_outputs)
{
    sushi_assert(num_inputs >= 0 && num_outputs >= 0);
}

void
Component::connect(int out_port, Component &dst, int dst_port,
                   Tick wire_delay)
{
    sushi_assert(out_port >= 0 && out_port < num_outputs_);
    sushi_assert(dst_port >= 0 && dst_port < dst.numInputs());
    if (sim_.core().outputConnected(id_, out_port)) {
        sushi_fatal("%s output %d already driven; RSFQ fan-out is 1 — "
                    "insert an SPL", name().c_str(), out_port);
    }
    sim_.core().connect(id_, out_port, dst.id_, dst_port, wire_delay);
}

bool
Component::outputConnected(int out_port) const
{
    sushi_assert(out_port >= 0 && out_port < num_outputs_);
    return sim_.core().outputConnected(id_, out_port);
}

void
Component::inject(int port, Tick when)
{
    sushi_assert(port >= 0 && port < num_inputs_);
    sim_.schedulePulse(when, id_, port);
}

PulseSink::PulseSink(Simulator &sim, std::string name)
    : Component(sim, std::move(name), 1, 0,
                CompiledNetlist::kKindSink)
{
}

PulseSource::PulseSource(Simulator &sim, std::string name)
    : Component(sim, std::move(name), 0, 1,
                CompiledNetlist::kKindSource)
{
}

void
PulseSource::pulseAt(Tick when)
{
    // A source firing is an event targeting the source cell itself;
    // delivery emits through output 0 (port is ignored).
    sim_.schedulePulse(when, id_, 0);
}

void
PulseSource::pulseTrain(const std::vector<Tick> &times)
{
    for (Tick t : times)
        pulseAt(t);
}

} // namespace sushi::sfq
