#include "sfq/component.hh"

#include <utility>

#include "common/logging.hh"

namespace sushi::sfq {

Component::Component(Simulator &sim, std::string name,
                     int num_inputs, int num_outputs)
    : sim_(sim), name_(std::move(name)),
      num_inputs_(num_inputs), num_outputs_(num_outputs),
      outs_(static_cast<std::size_t>(num_outputs))
{
    sushi_assert(num_inputs >= 0 && num_outputs >= 0);
}

void
Component::connect(int out_port, Component &dst, int dst_port,
                   Tick wire_delay)
{
    sushi_assert(out_port >= 0 && out_port < num_outputs_);
    sushi_assert(dst_port >= 0 && dst_port < dst.numInputs());
    Conn &c = outs_[static_cast<std::size_t>(out_port)];
    if (c.dst != nullptr) {
        sushi_fatal("%s output %d already driven; RSFQ fan-out is 1 — "
                    "insert an SPL", name_.c_str(), out_port);
    }
    c.dst = &dst;
    c.dst_port = dst_port;
    c.wire_delay = wire_delay;
}

bool
Component::outputConnected(int out_port) const
{
    sushi_assert(out_port >= 0 && out_port < num_outputs_);
    return outs_[static_cast<std::size_t>(out_port)].dst != nullptr;
}

void
Component::inject(int port, Tick when)
{
    sushi_assert(port >= 0 && port < num_inputs_);
    sim_.schedule(when, [this, port] { receive(port); });
}

void
Component::send(int out_port, Tick delay)
{
    sushi_assert(out_port >= 0 && out_port < num_outputs_);
    const Conn &c = outs_[static_cast<std::size_t>(out_port)];
    if (c.dst == nullptr)
        return;
    Component *dst = c.dst;
    int dst_port = c.dst_port;
    FaultModel &faults = sim_.faults();
    if (faults.anyDeliveryFaults()) {
        const FaultModel::Delivery fate =
            faults.onDeliver(name_, sim_.now());
        if (fate.dropped)
            return; // injected fault: the pulse is lost in flight
        Tick total = delay + c.wire_delay + fate.jitter;
        if (total < 0)
            total = 0; // jitter cannot deliver into the past
        sim_.countPulse();
        sim_.scheduleIn(total,
                        [dst, dst_port] { dst->receive(dst_port); });
        // Spurious pulses (punch-through) trail the real delivery.
        for (int i = 1; i <= fate.inserted; ++i) {
            sim_.countPulse();
            sim_.scheduleIn(total + i, [dst, dst_port] {
                dst->receive(dst_port);
            });
        }
        return;
    }
    sim_.countPulse();
    sim_.scheduleIn(delay + c.wire_delay,
                    [dst, dst_port] { dst->receive(dst_port); });
}

PulseSink::PulseSink(Simulator &sim, std::string name)
    : Component(sim, std::move(name), 1, 0)
{
}

void
PulseSink::receive(int port)
{
    sushi_assert(port == 0);
    times_.push_back(sim_.now());
}

PulseSource::PulseSource(Simulator &sim, std::string name)
    : Component(sim, std::move(name), 0, 1)
{
}

void
PulseSource::receive(int)
{
    sushi_panic("PulseSource has no inputs");
}

void
PulseSource::pulseAt(Tick when)
{
    sim_.schedule(when, [this] { send(0, 0); });
}

void
PulseSource::pulseTrain(const std::vector<Tick> &times)
{
    for (Tick t : times)
        pulseAt(t);
}

} // namespace sushi::sfq
