#include "sfq/partition.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "sfq/compiled_netlist.hh"

namespace sushi::sfq {

namespace {

/** Union-find with path halving (no ranks: the id-order tie-breaks
 *  below want the minimum cell id as the stable representative). */
class UnionFind
{
  public:
    explicit UnionFind(std::size_t n) : parent_(n)
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    std::size_t
    find(std::size_t x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]]; // path halving
            x = parent_[x];
        }
        return x;
    }

    /** Merge; the smaller root index wins, keeping representatives
     *  equal to each component's minimum cell id. */
    void
    merge(std::size_t a, std::size_t b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return;
        if (b < a)
            std::swap(a, b);
        parent_[b] = a;
    }

  private:
    std::vector<std::size_t> parent_;
};

} // namespace

PartitionPlan
partitionNetlist(const CompiledNetlist &core, int max_lanes,
                 Tick min_lookahead)
{
    sushi_assert(max_lanes >= 1);
    sushi_assert(min_lookahead >= 1);
    PartitionPlan plan;
    const std::size_t n = core.numCells();
    plan.num_cells = n;
    plan.lane_of.assign(n, 0);
    plan.component_of.assign(n, 0);
    if (n == 0)
        return plan;

    // 1. Contract every connection too fast to serve as a window
    //    boundary. End-to-end edge delay is the earliest a pulse
    //    executing at the source can be dated at the destination:
    //    source propagation delay + interconnect delay.
    UnionFind uf(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto id = static_cast<std::int32_t>(i);
        const Tick src_delay = core.kindDelay(core.cellKind(id));
        const int outs = core.numOutputs(id);
        for (int p = 0; p < outs; ++p) {
            const OutConn &c = core.connection(id, p);
            if (c.dst < 0)
                continue;
            if (src_delay + c.wire_delay < min_lookahead)
                uf.merge(i, static_cast<std::size_t>(c.dst));
        }
    }

    // 2. Collect components: representative (minimum cell id) ->
    //    dense component index, in ascending representative order so
    //    component numbering is stable.
    std::vector<std::int32_t> comp_index(n, -1);
    std::vector<std::size_t> comp_size;
    std::vector<std::int32_t> comp_order; // dense index by discovery
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t root = uf.find(i);
        if (comp_index[root] < 0) {
            comp_index[root] =
                static_cast<std::int32_t>(comp_size.size());
            comp_size.push_back(0);
        }
        const std::int32_t ci = comp_index[root];
        plan.component_of[i] = ci;
        ++comp_size[ci];
    }
    const std::size_t num_comps = comp_size.size();

    // 3. Pack components onto lanes, largest first (LPT): sort by
    //    size descending, component index ascending on ties (the
    //    index encodes the minimum cell id order), assigning each to
    //    the currently lightest lane, lowest index on ties. Wholly
    //    deterministic.
    const int lanes = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(max_lanes),
                              num_comps));
    plan.num_lanes = std::max(lanes, 1);
    std::vector<std::int32_t> by_size(num_comps);
    std::iota(by_size.begin(), by_size.end(), 0);
    std::sort(by_size.begin(), by_size.end(),
              [&](std::int32_t a, std::int32_t b) {
                  const std::size_t sa =
                      comp_size[static_cast<std::size_t>(a)];
                  const std::size_t sb =
                      comp_size[static_cast<std::size_t>(b)];
                  if (sa != sb)
                      return sa > sb;
                  return a < b;
              });
    std::vector<std::size_t> lane_load(
        static_cast<std::size_t>(plan.num_lanes), 0);
    std::vector<std::int32_t> lane_of_comp(num_comps, 0);
    for (const std::int32_t ci : by_size) {
        std::size_t best = 0;
        for (std::size_t l = 1; l < lane_load.size(); ++l)
            if (lane_load[l] < lane_load[best])
                best = l;
        lane_of_comp[static_cast<std::size_t>(ci)] =
            static_cast<std::int32_t>(best);
        lane_load[best] += comp_size[static_cast<std::size_t>(ci)];
    }
    for (std::size_t i = 0; i < n; ++i)
        plan.lane_of[i] = lane_of_comp[static_cast<std::size_t>(
            plan.component_of[i])];

    // 4. The achievable lookahead: minimum end-to-end delay over
    //    connections that ended up crossing lanes.
    plan.lookahead = kTickNever;
    plan.cross_edges = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const auto id = static_cast<std::int32_t>(i);
        const Tick src_delay = core.kindDelay(core.cellKind(id));
        const int outs = core.numOutputs(id);
        for (int p = 0; p < outs; ++p) {
            const OutConn &c = core.connection(id, p);
            if (c.dst < 0)
                continue;
            if (plan.lane_of[i] ==
                plan.lane_of[static_cast<std::size_t>(c.dst)])
                continue;
            ++plan.cross_edges;
            plan.lookahead = std::min(plan.lookahead,
                                      src_delay + c.wire_delay);
        }
    }
    sushi_assert(plan.cross_edges == 0 ||
                 plan.lookahead >= min_lookahead);
    return plan;
}

} // namespace sushi::sfq
