#include "sfq/shift_register.hh"

#include "common/logging.hh"

namespace sushi::sfq {

ShiftRegister::ShiftRegister(int depth)
    : depth_(depth),
      bits_(static_cast<std::size_t>(depth), false)
{
    sushi_assert(depth >= 1);
}

bool
ShiftRegister::clock(bool din)
{
    ++clocks_;
    const bool out = bits_.front();
    bits_.pop_front();
    bits_.push_back(din);
    return out;
}

std::vector<bool>
ShiftRegister::contents() const
{
    return std::vector<bool>(bits_.begin(), bits_.end());
}

int
ShiftRegister::accessLatency(int index) const
{
    sushi_assert(index >= 0 && index < depth_);
    return index + 1;
}

ShiftRegisterGate::ShiftRegisterGate(Netlist &net,
                                     const std::string &name,
                                     int depth)
    : depth_(depth)
{
    sushi_assert(depth >= 1);
    for (int i = 0; i < depth; ++i)
        dffs_.push_back(&net.makeDff(name + ".dff" +
                                     std::to_string(i)));

    din_ = &net.makeSource(name + ".din");
    clk_ = &net.makeSource(name + ".clk");
    out_ = &net.makeSink(name + ".out");

    // Data path: tail DFF's dout feeds the next DFF's din; the head
    // DFF's dout is the memory output. The tail takes external din.
    net.connectWire(*din_, 0, *dffs_.back(), chan::kDffDin, 1);
    for (int i = depth - 1; i >= 1; --i) {
        net.connectWire(*dffs_[static_cast<std::size_t>(i)], 0,
                        *dffs_[static_cast<std::size_t>(i - 1)],
                        chan::kDffDin, 1);
    }
    net.connectWire(*dffs_[0], 0, *out_, 0, 1);

    // Clock distribution: a splitter tree to every DFF. Stage counts
    // grow toward the head so the head releases *before* upstream
    // data arrives (counter-flow clocking, the standard RSFQ
    // shift-register discipline).
    std::vector<std::pair<Component *, int>> dsts;
    for (int i = 0; i < depth; ++i)
        dsts.emplace_back(dffs_[static_cast<std::size_t>(i)],
                          chan::kDffClk);
    net.fanout(name + ".clk_tree", *clk_, 0, dsts, 1);
    net.compile(); // lowered; runs on the compiled core
}

void
ShiftRegisterGate::injectData(Tick when)
{
    din_->pulseAt(when);
}

void
ShiftRegisterGate::injectClock(Tick when)
{
    clk_->pulseAt(when);
}

std::vector<bool>
ShiftRegisterGate::contents() const
{
    std::vector<bool> out;
    out.reserve(dffs_.size());
    for (const Dff *d : dffs_)
        out.push_back(d->stored());
    return out;
}

double
shiftRegisterUtilisation(int depth, double sequential,
                         double compute_clocks)
{
    sushi_assert(depth >= 1);
    sushi_assert(sequential >= 0.0 && sequential <= 1.0);
    const double random_cost = static_cast<double>(depth) / 2.0;
    const double avg_access =
        sequential * 1.0 + (1.0 - sequential) * random_cost;
    return compute_clocks / (compute_clocks + avg_access);
}

} // namespace sushi::sfq
