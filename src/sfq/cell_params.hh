/**
 * @file
 * Per-cell physical parameters of the RSFQ standard-cell library.
 *
 * The paper builds on the SIMIT-Nb03 standard-cell library [Gao et al.,
 * IEEE TAS 2021] but reports only aggregate resource numbers (Table 2,
 * Fig. 13, Table 4). The per-cell values here are *calibrated*: JJ
 * counts follow typical published RSFQ cell sizes, and the remaining
 * free constants (JTL pitch, bias power per JJ, wiring growth) are fit
 * so that the assembled designs reproduce the paper's aggregates:
 *
 *   - 4x4 mesh of 8 NPEs  -> 45,542 JJs, 44.73 mm^2, 68.13 % wiring
 *   - 16x16 mesh, 32 NPEs -> 99,982 JJs, 103.75 mm^2, 41.87 mW
 *
 * See fabric/resource_model.cc for the fit itself.
 */

#ifndef SUSHI_SFQ_CELL_PARAMS_HH
#define SUSHI_SFQ_CELL_PARAMS_HH

#include <string>

#include "common/time.hh"

namespace sushi::sfq {

/** Every RSFQ cell type used in the SUSHI design. */
enum class CellKind
{
    JTL,    ///< Josephson transmission line stage (wiring)
    SPL,    ///< 1-to-2 splitter
    SPL3,   ///< 1-to-3 splitter
    CB,     ///< 2-to-1 confluence buffer
    CB3,    ///< 3-to-1 confluence buffer
    DFF,    ///< destructive-readout D flip-flop
    NDRO,   ///< non-destructive readout cell
    TFFL,   ///< toggle FF, pulses on 0->1 flip
    TFFR,   ///< toggle FF, pulses on 1->0 flip
    DCSFQ,  ///< DC-to-SFQ input converter
    SFQDC,  ///< SFQ-to-DC output driver
    kNumKinds
};

/** Physical/timing parameters of one cell type. */
struct CellParams
{
    /** Input-to-output propagation delay. */
    Tick delay;
    /** Josephson junction count. */
    int jjs;
    /** Layout area in square micrometres. */
    double area_um2;
    /** Energy dissipated per switching event, joules. */
    double switch_energy_j;
};

/** Parameters for @p kind from the calibrated library table. */
const CellParams &cellParams(CellKind kind);

/** Human-readable cell-type name ("NDRO", "SPL", ...). */
const char *cellKindName(CellKind kind);

/** Static bias power drawn per JJ, watts (calibrated to Table 4). */
double biasPowerPerJj();

/** Area occupied per wiring (JTL) JJ including track spacing, um^2. */
double wiringAreaPerJj();

/** Switching energy of one JJ flip, joules (paper Sec. 1). */
double switchEnergyPerJj();

/**
 * JJs flipped along the synapse event path — one pulse traversing
 * NDRO (strength readout) + SPL + CB3 (row merge) + four JTL wiring
 * stages into the NPE. The 30-JJ figure the chip's dynamic-energy
 * model charges per synaptic op is *derived* from the cell table
 * here, not restated (tests assert the two agree).
 */
int synapseEventJjs();

/**
 * Area-packing density of banked storage (resident weight/preload
 * bits) relative to logic cells: a storage loop in a bank shares
 * bias rails and drive lines and carries no per-cell splitter/merge
 * fan-out, so it packs denser than the same cell placed as logic.
 * Multiplies CellParams::area_um2 for bank bits in the compiler's
 * cost model and in the ChipBudget default caps (same constant on
 * both sides keeps the caps and the costs commensurable).
 */
double storageArrayDensity();

} // namespace sushi::sfq

#endif // SUSHI_SFQ_CELL_PARAMS_HH
