/**
 * @file
 * Per-cell physical parameters of the RSFQ standard-cell library.
 *
 * The paper builds on the SIMIT-Nb03 standard-cell library [Gao et al.,
 * IEEE TAS 2021] but reports only aggregate resource numbers (Table 2,
 * Fig. 13, Table 4). The per-cell values here are *calibrated*: JJ
 * counts follow typical published RSFQ cell sizes, and the remaining
 * free constants (JTL pitch, bias power per JJ, wiring growth) are fit
 * so that the assembled designs reproduce the paper's aggregates:
 *
 *   - 4x4 mesh of 8 NPEs  -> 45,542 JJs, 44.73 mm^2, 68.13 % wiring
 *   - 16x16 mesh, 32 NPEs -> 99,982 JJs, 103.75 mm^2, 41.87 mW
 *
 * See fabric/resource_model.cc for the fit itself.
 */

#ifndef SUSHI_SFQ_CELL_PARAMS_HH
#define SUSHI_SFQ_CELL_PARAMS_HH

#include <string>

#include "common/time.hh"

namespace sushi::sfq {

/** Every RSFQ cell type used in the SUSHI design. */
enum class CellKind
{
    JTL,    ///< Josephson transmission line stage (wiring)
    SPL,    ///< 1-to-2 splitter
    SPL3,   ///< 1-to-3 splitter
    CB,     ///< 2-to-1 confluence buffer
    CB3,    ///< 3-to-1 confluence buffer
    DFF,    ///< destructive-readout D flip-flop
    NDRO,   ///< non-destructive readout cell
    TFFL,   ///< toggle FF, pulses on 0->1 flip
    TFFR,   ///< toggle FF, pulses on 1->0 flip
    DCSFQ,  ///< DC-to-SFQ input converter
    SFQDC,  ///< SFQ-to-DC output driver
    kNumKinds
};

/** Physical/timing parameters of one cell type. */
struct CellParams
{
    /** Input-to-output propagation delay. */
    Tick delay;
    /** Josephson junction count. */
    int jjs;
    /** Layout area in square micrometres. */
    double area_um2;
    /** Energy dissipated per switching event, joules. */
    double switch_energy_j;
};

/** Parameters for @p kind from the calibrated library table. */
const CellParams &cellParams(CellKind kind);

/** Human-readable cell-type name ("NDRO", "SPL", ...). */
const char *cellKindName(CellKind kind);

/** Static bias power drawn per JJ, watts (calibrated to Table 4). */
double biasPowerPerJj();

/** Area occupied per wiring (JTL) JJ including track spacing, um^2. */
double wiringAreaPerJj();

} // namespace sushi::sfq

#endif // SUSHI_SFQ_CELL_PARAMS_HH
