#include "sfq/parallel_simulator.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "sfq/event_queue.hh"
#include "sfq/fault_model.hh"

namespace sushi::sfq {

namespace {

/** Per-lane execution state. Lanes only ever write their own Lane;
 *  reads of other lanes' fields are separated by a barrier. */
struct Lane
{
    EventQueue queue;
    std::uint64_t pulses = 0;
    std::uint64_t switch_count[CompiledNetlist::kNumExecKinds] = {};
    FaultCounters faults;

    /** Cross-lane pulses produced this window, indexed by
     *  destination lane (own slot unused). */
    std::vector<std::vector<CrossEvent>> outbox;

    /** Earliest pending tick, published at the window barrier. */
    Tick next_tick = kTickNever;

    /** Tick of the last event this lane executed (-1: none). */
    Tick last_exec = -1;

    /** First Fatal timing fault this lane hit, keyed by the event
     *  that exposed it (for the deterministic min-key rethrow). */
    bool faulted = false;
    Tick fault_when = kTickNever;
    std::int32_t fault_cell = 0;
    std::int32_t fault_port = 0;
    std::exception_ptr fault_eptr;

    /** Any other exception (propagated as-is). */
    std::exception_ptr error;
};

/** Exclusive execution cap of the window starting at @p start. */
Tick
windowCap(Tick start, Tick lookahead, Tick until)
{
    if (lookahead == kTickNever || start > kTickNever - lookahead)
        return until;
    return std::min(start + lookahead - 1, until);
}

/** Strict (when, cell, port) order; full ties are identical
 *  deliveries and may land in any relative order. */
bool
eventKeyLess(const EventQueue::Event &a, const EventQueue::Event &b)
{
    if (a.when != b.when)
        return a.when < b.when;
    if (a.cell != b.cell)
        return a.cell < b.cell;
    return a.port < b.port;
}

} // namespace

ParallelSimulator::ParallelSimulator(Simulator &sim, Options opts)
    : sim_(sim), opts_(opts)
{
    sushi_assert(opts_.min_lookahead >= 1);
    threads_ = opts_.threads > 0
        ? opts_.threads
        : static_cast<int>(
              std::max(1u, std::thread::hardware_concurrency()));
}

void
ParallelSimulator::refreshPlan()
{
    if (plan_valid_ && plan_.num_cells == sim_.core().numCells())
        return;
    plan_ =
        partitionNetlist(sim_.core(), threads_, opts_.min_lookahead);
    plan_valid_ = true;
}

Tick
ParallelSimulator::run(Tick until)
{
    last_parallel_ = false;
    if (threads_ <= 1)
        return sim_.run(until);
    sim_.core().freeze(); // masks + snapshot, as Simulator::run does
    refreshPlan();
    if (plan_.num_lanes <= 1)
        return sim_.run(until);
    const FaultModel &fm = sim_.faults();
    // Jitter shifts deliveries by unbounded amounts, breaking the
    // min-link-delay lookahead bound; oversized fault configs can't
    // use the per-cell masks the keyed (interleaving-free) fault
    // path needs. Both degrade to the sequential path, which is
    // always byte-compatible.
    if (fm.anyJitterFaults())
        return sim_.run(until);
    if ((fm.anyDeliveryFaults() || fm.anyCellFaults()) &&
        !sim_.core().faultMasksUsable())
        return sim_.run(until);
    return runParallel(until);
}

Tick
ParallelSimulator::runParallel(Tick until)
{
    EventQueue &mq = sim_.queue_;
    const int num_lanes = plan_.num_lanes;
    const std::int32_t *lane_of = plan_.lane_of.data();
    const Tick lookahead = plan_.lookahead;

    // Migrate pending events off the main queue. Host callbacks
    // (arbitrary closures) cannot run on lanes; their presence sends
    // the whole run down the sequential path.
    std::vector<EventQueue::Event> pending;
    pending.reserve(mq.size());
    bool has_callback = false;
    EventQueue::Event ev;
    while (mq.take(ev)) {
        if (ev.cell == EventQueue::kCallbackCell)
            has_callback = true;
        pending.push_back(ev);
    }
    if (has_callback) {
        // take() preserved queue order, so re-pushing in sequence
        // reconstructs it (fresh seq numbers, same relative order).
        for (const EventQueue::Event &e : pending)
            mq.push(e.when, e.cell, e.port);
        return sim_.run(until);
    }

    Tick first = kTickNever;
    for (const EventQueue::Event &e : pending)
        first = std::min(first, e.when);
    if (first == kTickNever || first > until) {
        for (const EventQueue::Event &e : pending)
            mq.push(e.when, e.cell, e.port);
        return sim_.now();
    }
    last_parallel_ = true;

    std::vector<Lane> lanes(static_cast<std::size_t>(num_lanes));
    for (Lane &ln : lanes)
        ln.outbox.resize(static_cast<std::size_t>(num_lanes));
    for (const EventQueue::Event &e : pending)
        lanes[static_cast<std::size_t>(lane_of[e.cell])].queue.push(
            e.when, e.cell, e.port);

    SpinBarrier barrier(static_cast<unsigned>(num_lanes));
    std::atomic<bool> stop{false};
    const Tick first_cap = windowCap(first, lookahead, until);
    CompiledNetlist &core = sim_.core_;

    auto laneMain = [&](int me) {
        Lane &ln = lanes[static_cast<std::size_t>(me)];
        ExecCtx cx;
        cx.queue = &ln.queue;
        cx.pulses = &ln.pulses;
        cx.switch_count = ln.switch_count;
        cx.faults = &ln.faults;
        cx.lane_of = lane_of;
        cx.lane = me;
        cx.outbox = ln.outbox.data();
        Tick cap = first_cap;
        EventQueue::Event e{};
        for (;;) {
            // Execute this lane's slice of the window [W, cap]. The
            // lookahead guarantees no other lane can produce an
            // event dated <= cap for us, so this is exactly the
            // sequential pop order restricted to this lane's cells.
            // Every lane ALWAYS runs its slice of the current window
            // — even if another lane has already faulted and set
            // `stop` — so the globally earliest fault is known and
            // Fatal attribution never depends on which lane happened
            // to fault first in wall-clock time. `stop` only cuts
            // off *subsequent* windows (the break below the merge).
            try {
                while (ln.queue.popNext(cap, e)) {
                    cx.now = e.when;
                    ln.last_exec = e.when;
                    core.deliver(e.cell, e.port, cx);
                }
            } catch (const TimingFault &) {
                // Remember our first fault with its event key.
                ln.faulted = true;
                ln.fault_when = e.when;
                ln.fault_cell = e.cell;
                ln.fault_port = e.port;
                ln.fault_eptr = std::current_exception();
                stop.store(true, std::memory_order_relaxed);
            } catch (...) {
                ln.error = std::current_exception();
                stop.store(true, std::memory_order_relaxed);
            }
            barrier.arriveAndWait();
            // Merge boundary pulses addressed to us, in fixed source
            // order. Their ticks all lie past the window, and the
            // queue's intrinsic ordering makes the arrival order
            // irrelevant to replay.
            for (int src = 0; src < num_lanes; ++src) {
                if (src == me)
                    continue;
                std::vector<CrossEvent> &box =
                    lanes[static_cast<std::size_t>(src)]
                        .outbox[static_cast<std::size_t>(me)];
                for (const CrossEvent &ce : box)
                    ln.queue.push(ce.when, ce.cell, ce.port);
                box.clear();
            }
            ln.next_tick = ln.queue.nextTick();
            barrier.arriveAndWait();
            if (stop.load(std::memory_order_relaxed))
                break;
            // Every lane independently computes the same next window
            // start from the published next_ticks (skip-ahead over
            // globally idle stretches).
            Tick m = kTickNever;
            for (const Lane &o : lanes)
                m = std::min(m, o.next_tick);
            if (m == kTickNever || m > until)
                break;
            cap = windowCap(m, lookahead, until);
        }
    };

    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(num_lanes - 1));
    for (int t = 1; t < num_lanes; ++t)
        workers.emplace_back(laneMain, t);
    laneMain(0);
    for (std::thread &w : workers)
        w.join();

    // Fold the lane tallies back into the simulator. Sums are
    // order-free; time advances to the latest executed event.
    FaultCounters &fc = sim_.faults_.countersMut();
    for (Lane &ln : lanes) {
        sim_.pulses_ += ln.pulses;
        for (int k = 0; k < static_cast<int>(
                                CompiledNetlist::kNumExecKinds);
             ++k)
            sim_.switch_count_[k] += ln.switch_count[k];
        fc.dropped += ln.faults.dropped;
        fc.inserted += ln.faults.inserted;
        fc.jittered += ln.faults.jittered;
        fc.suppressed += ln.faults.suppressed;
        sim_.extra_events_ += ln.queue.executed();
        if (ln.last_exec > sim_.now_)
            sim_.now_ = ln.last_exec;
    }

    // Events past `until` (or past an aborting fault's window) go
    // back to the main queue in key order, so a follow-up run —
    // sequential or parallel — sees the same queue state.
    std::vector<EventQueue::Event> leftover;
    for (Lane &ln : lanes)
        while (ln.queue.take(ev))
            leftover.push_back(ev);
    std::stable_sort(leftover.begin(), leftover.end(), eventKeyLess);
    for (const EventQueue::Event &e : leftover)
        mq.push(e.when, e.cell, e.port);

    // Deterministic Fatal attribution: the fault with the smallest
    // event key is the one sequential execution hits first.
    const Lane *worst = nullptr;
    for (const Lane &ln : lanes) {
        if (!ln.faulted)
            continue;
        if (worst == nullptr ||
            ln.fault_when < worst->fault_when ||
            (ln.fault_when == worst->fault_when &&
             (ln.fault_cell < worst->fault_cell ||
              (ln.fault_cell == worst->fault_cell &&
               ln.fault_port < worst->fault_port))))
            worst = &ln;
    }
    if (worst != nullptr)
        std::rethrow_exception(worst->fault_eptr);
    for (const Lane &ln : lanes)
        if (ln.error)
            std::rethrow_exception(ln.error);
    return sim_.now();
}

} // namespace sushi::sfq
