#include "sfq/compiled_netlist.hh"

#include <utility>

#include "sfq/constraints.hh"
#include "sfq/fault_model.hh"
#include "sfq/simulator.hh"

namespace sushi::sfq {

namespace {

constexpr std::uint8_t
u8(CellKind k)
{
    return static_cast<std::uint8_t>(k);
}

} // namespace

CompiledNetlist::CompiledNetlist(Simulator &sim) : sim_(sim)
{
    for (int k = 0; k < static_cast<int>(CellKind::kNumKinds); ++k) {
        const CellParams &p = cellParams(static_cast<CellKind>(k));
        kind_delay_[k] = p.delay;
        kind_energy_[k] = p.switch_energy_j;
    }
    kind_delay_[kKindSource] = 0;
    kind_energy_[kKindSource] = 0.0;
    kind_delay_[kKindSink] = 0;
    kind_energy_[kKindSink] = 0.0;
}

std::int32_t
CompiledNetlist::addCell(std::string name, std::uint8_t kind,
                         int num_inputs, int num_outputs)
{
    sushi_assert(kind < kNumExecKinds);
    sushi_assert(num_inputs >= 0 && num_inputs <= 255);
    sushi_assert(num_outputs >= 0);
    const auto id = static_cast<std::int32_t>(kind_.size());
    kind_.push_back(kind);
    state_.push_back(0);
    n_in_.push_back(static_cast<std::uint8_t>(num_inputs));
    in_off_.push_back(static_cast<std::int32_t>(last_.size()));
    last_.insert(last_.end(), static_cast<std::size_t>(num_inputs),
                 kTickNever);
    out_off_.push_back(static_cast<std::int32_t>(conns_.size()));
    conns_.insert(conns_.end(),
                  static_cast<std::size_t>(num_outputs), OutConn{});
    if (kind == u8(CellKind::SFQDC) || kind == kKindSink) {
        trace_slot_.push_back(
            static_cast<std::int32_t>(traces_.size()));
        traces_.emplace_back();
    } else {
        trace_slot_.push_back(-1);
    }
    names_.push_back(std::move(name));
    by_name_.emplace(names_.back(), id); // duplicates: first one wins
    return id;
}

void
CompiledNetlist::connect(std::int32_t src, int out_port,
                         std::int32_t dst, int dst_port,
                         Tick wire_delay)
{
    const std::size_t i = checkId(src);
    sushi_assert(out_port >= 0 &&
                 static_cast<std::size_t>(out_port) < connCount(i));
    const std::size_t j = checkId(dst);
    sushi_assert(dst_port >= 0 &&
                 dst_port < static_cast<int>(n_in_[j]));
    OutConn &c = conns_[static_cast<std::size_t>(out_off_[i]) +
                        static_cast<std::size_t>(out_port)];
    // Component::connect raises the user-facing fan-out fatal first;
    // this guards direct core callers.
    sushi_assert(c.dst < 0);
    c.dst = dst;
    c.port = dst_port;
    c.wire_delay = wire_delay;
    ++live_conns_;
}

std::int32_t
CompiledNetlist::cellId(const std::string &name) const
{
    auto it = by_name_.find(name);
    return it == by_name_.end() ? -1 : it->second;
}

bool
CompiledNetlist::masksCurrent() const
{
    return fault_masks_usable_ &&
           fault_mask_.size() == kind_.size() &&
           fault_cfg_version_ == sim_.faults().configVersion();
}

void
CompiledNetlist::freeze()
{
    const FaultModel &fm = sim_.faults();
    const std::uint64_t ver = fm.configVersion();
    if (ver == fault_cfg_version_ &&
        fault_mask_.size() == kind_.size())
        return;
    fault_masks_usable_ = fm.numFaults() <= 64;
    fault_mask_.assign(kind_.size(), 0);
    if (fault_masks_usable_) {
        for (std::size_t i = 0; i < kind_.size(); ++i) {
            std::uint64_t m = 0;
            for (std::size_t s = 0; s < fm.numFaults(); ++s)
                if (fm.targetMatches(s, names_[i]))
                    m |= std::uint64_t{1} << s;
            fault_mask_[i] = m;
        }
    }
    fault_cfg_version_ = ver;
}

bool
CompiledNetlist::arriveCell(std::int32_t id, std::uint8_t kind,
                            int port)
{
    const auto i = static_cast<std::size_t>(id);
    const Tick now = sim_.now();
    sushi_assert(port >= 0 && port < static_cast<int>(n_in_[i]));
    FaultModel &fm = sim_.faults();
    // A dead cell (shorted/open junction) eats the pulse before any
    // junction switches: no energy, no constraint bookkeeping.
    if (fm.anyCellFaults()) {
        const bool dead =
            masksCurrent()
                ? fm.suppressArrivalMasked(fault_mask_[i], now)
                : fm.suppressArrival(names_[i], now);
        if (dead)
            return false;
    }
    // Table-1 constraint check: first violated rule wins, in the
    // constraintRules() order, exactly as ConstraintChecker does.
    const auto ck = static_cast<CellKind>(kind);
    Tick *last = last_.data() + in_off_[i];
    const IncomingRule *hit = nullptr;
    Tick hit_prev = kTickNever;
    for (const IncomingRule &r : incomingRules(ck, port)) {
        const Tick prev =
            last[static_cast<std::size_t>(r.chan_a)];
        if (prev == kTickNever)
            continue;
        if (now - prev < r.min_interval) {
            hit = &r;
            hit_prev = prev;
            break;
        }
    }
    // The arrival is recorded whether or not it violated: the pulse
    // did hit the input, and later spacing is measured from it.
    last[static_cast<std::size_t>(port)] = now;
    if (hit != nullptr &&
        sim_.reportViolation(names_[i],
                             violationMessage(ck, hit->label,
                                              hit->min_interval,
                                              hit_prev, now),
                             hit->label, hit_prev, now)) {
        // Recover policy: the marginal arrival is attributed to this
        // cell and the offending pulse is discarded.
        return false;
    }
    sim_.addSwitchEnergy(kind_energy_[kind]);
    return true;
}

void
CompiledNetlist::emit(std::int32_t id, int out_port, Tick delay)
{
    const auto i = static_cast<std::size_t>(id);
    const OutConn &c =
        conns_[static_cast<std::size_t>(out_off_[i]) +
               static_cast<std::size_t>(out_port)];
    if (c.dst < 0)
        return; // dangling output is legal (unused readout)
    FaultModel &fm = sim_.faults();
    if (fm.anyDeliveryFaults()) {
        const Tick now = sim_.now();
        const FaultModel::Delivery fate =
            masksCurrent()
                ? fm.onDeliverMasked(fault_mask_[i], now)
                : fm.onDeliver(names_[i], now);
        if (fate.dropped)
            return; // injected fault: the pulse is lost in flight
        Tick total = delay + c.wire_delay + fate.jitter;
        if (total < 0)
            total = 0; // jitter cannot deliver into the past
        sim_.countPulse();
        sim_.schedulePulse(now + total, c.dst, c.port);
        // Spurious pulses (punch-through) trail the real delivery.
        for (int s = 1; s <= fate.inserted; ++s) {
            sim_.countPulse();
            sim_.schedulePulse(now + total + s, c.dst, c.port);
        }
        return;
    }
    sim_.countPulse();
    sim_.schedulePulse(sim_.now() + delay + c.wire_delay, c.dst,
                       c.port);
}

void
CompiledNetlist::deliver(std::int32_t id, std::int32_t port)
{
    const std::size_t i = checkId(id);
    const std::uint8_t kind = kind_[i];
    const Tick delay = kind_delay_[kind];
    switch (kind) {
      case u8(CellKind::JTL):
      case u8(CellKind::DCSFQ):
        if (!arriveCell(id, kind, port))
            return;
        emit(id, 0, delay);
        break;
      case u8(CellKind::SPL):
        if (!arriveCell(id, kind, port))
            return;
        emit(id, 0, delay);
        emit(id, 1, delay);
        break;
      case u8(CellKind::SPL3):
        if (!arriveCell(id, kind, port))
            return;
        emit(id, 0, delay);
        emit(id, 1, delay);
        emit(id, 2, delay);
        break;
      case u8(CellKind::CB):
      case u8(CellKind::CB3):
        if (!arriveCell(id, kind, port))
            return;
        emit(id, 0, delay);
        break;
      case u8(CellKind::DFF):
        if (!arriveCell(id, kind, port))
            return;
        if (port == chan::kDffDin) {
            if (state_[i] != 0) {
                // A second din before a clk would push a second flux
                // quantum into the storage loop — a design error.
                // Under Recover the surplus din is simply discarded.
                if (sim_.reportViolation(
                        names_[i], "din while already storing"))
                    return;
            }
            state_[i] = 1;
        } else {
            // clk: destructive read. No stored flux means logic 0 —
            // no output pulse.
            if (state_[i] != 0) {
                state_[i] = 0;
                emit(id, 0, delay);
            }
        }
        break;
      case u8(CellKind::NDRO): {
        if (!arriveCell(id, kind, port))
            return;
        // Stuck-at faults model flux trapped in (stuck-set) or a
        // dead (stuck-reset) storage loop: while active, the loop
        // holds its forced value and writes in the opposing
        // direction are lost.
        bool s_set = false, s_rst = false;
        FaultModel &fm = sim_.faults();
        if (fm.anyCellFaults()) {
            const Tick now = sim_.now();
            if (masksCurrent()) {
                s_set = fm.stuckSetMasked(fault_mask_[i], now);
                s_rst = fm.stuckResetMasked(fault_mask_[i], now);
            } else {
                s_set = fm.stuckSet(names_[i], now);
                s_rst = fm.stuckReset(names_[i], now);
            }
        }
        if (s_set)
            state_[i] = 1;
        if (s_rst)
            state_[i] = 0;
        switch (port) {
          case chan::kNdroDin:
            if (!s_rst)
                state_[i] = 1;
            break;
          case chan::kNdroRst:
            if (!s_set)
                state_[i] = 0;
            break;
          case chan::kNdroClk:
            if (state_[i] != 0)
                emit(id, 0, delay);
            break;
          default:
            sushi_panic("NDRO %s: bad port %d", names_[i].c_str(),
                        port);
        }
        break;
      }
      case u8(CellKind::TFFL):
        if (!arriveCell(id, kind, port))
            return;
        state_[i] ^= 1;
        if (state_[i] != 0) // pulses on the 0 -> 1 flip
            emit(id, 0, delay);
        break;
      case u8(CellKind::TFFR):
        if (!arriveCell(id, kind, port))
            return;
        state_[i] ^= 1;
        if (state_[i] == 0) // pulses on the 1 -> 0 flip
            emit(id, 0, delay);
        break;
      case u8(CellKind::SFQDC):
        if (!arriveCell(id, kind, port))
            return;
        state_[i] ^= 1; // output level toggles per pulse
        traces_[static_cast<std::size_t>(trace_slot_[i])]
            .push_back(sim_.now());
        break;
      case kKindSink:
        sushi_assert(port == 0);
        traces_[static_cast<std::size_t>(trace_slot_[i])]
            .push_back(sim_.now());
        break;
      case kKindSource:
        // A source "delivery" is its scheduled firing: emit through
        // output 0 with zero cell delay, as PulseSource::pulseAt did.
        emit(id, 0, 0);
        break;
      default:
        sushi_panic("cell %s: bad kind %d", names_[i].c_str(),
                    static_cast<int>(kind));
    }
}

} // namespace sushi::sfq
