#include "sfq/compiled_netlist.hh"

#include <utility>

#include "sfq/constraints.hh"
#include "sfq/event_queue.hh"
#include "sfq/fault_model.hh"
#include "sfq/simulator.hh"

namespace sushi::sfq {

namespace {

constexpr std::uint8_t
u8(CellKind k)
{
    return static_cast<std::uint8_t>(k);
}

} // namespace

CompiledNetlist::CompiledNetlist(Simulator &sim) : sim_(sim)
{
    for (int k = 0; k < static_cast<int>(CellKind::kNumKinds); ++k) {
        const CellParams &p = cellParams(static_cast<CellKind>(k));
        kind_delay_[k] = p.delay;
        kind_energy_[k] = p.switch_energy_j;
        // Per-kind constraint presence: cells of a kind with no
        // Table-1 rules skip the per-arrival rule scan entirely.
        kind_has_rules_[k] =
            !constraintRules(static_cast<CellKind>(k)).empty();
    }
    kind_delay_[kKindSource] = 0;
    kind_energy_[kKindSource] = 0.0;
    kind_has_rules_[kKindSource] = false;
    kind_delay_[kKindSink] = 0;
    kind_energy_[kKindSink] = 0.0;
    kind_has_rules_[kKindSink] = false;
    auto s = std::make_shared<NetStructure>();
    mut_ = s.get();
    struct_ = std::move(s);
}

CompiledNetlist::CompiledNetlist(
    Simulator &sim, std::shared_ptr<const NetStructure> structure)
    : CompiledNetlist(sim)
{
    sushi_assert(structure != nullptr);
    struct_ = std::move(structure);
    mut_ = nullptr; // adopted structures are sealed
    const NetStructure &st = *struct_;
    state_.assign(st.kind.size(), 0);
    last_.assign(st.num_inputs, kTickNever);
    rng_ctr_.assign(st.kind.size(), 0);
    traces_.resize(st.num_traces);
}

NetStructure &
CompiledNetlist::mut()
{
    if (mut_ == nullptr) {
        sushi_panic("compiled netlist structure is sealed (shared "
                    "with replicas); cannot add or connect cells");
    }
    return *mut_;
}

std::int32_t
CompiledNetlist::addCell(std::string name, std::uint8_t kind,
                         int num_inputs, int num_outputs)
{
    sushi_assert(kind < kNumExecKinds);
    sushi_assert(num_inputs >= 0 && num_inputs <= 255);
    sushi_assert(num_outputs >= 0);
    NetStructure &st = mut();
    const auto id = static_cast<std::int32_t>(st.kind.size());
    st.kind.push_back(kind);
    state_.push_back(0);
    rng_ctr_.push_back(0);
    st.n_in.push_back(static_cast<std::uint8_t>(num_inputs));
    st.has_rules.push_back(kind_has_rules_[kind] ? 1 : 0);
    st.in_off.push_back(static_cast<std::int32_t>(last_.size()));
    last_.insert(last_.end(), static_cast<std::size_t>(num_inputs),
                 kTickNever);
    st.num_inputs = last_.size();
    st.out_off.push_back(static_cast<std::int32_t>(st.conns.size()));
    st.conns.insert(st.conns.end(),
                    static_cast<std::size_t>(num_outputs), OutConn{});
    if (kind == u8(CellKind::SFQDC) || kind == kKindSink) {
        st.trace_slot.push_back(
            static_cast<std::int32_t>(traces_.size()));
        traces_.emplace_back();
        st.num_traces = traces_.size();
    } else {
        st.trace_slot.push_back(-1);
    }
    st.names.push_back(std::move(name));
    st.by_name.emplace(st.names.back(), id); // duplicates: first wins
    return id;
}

void
CompiledNetlist::connect(std::int32_t src, int out_port,
                         std::int32_t dst, int dst_port,
                         Tick wire_delay)
{
    const std::size_t i = checkId(src);
    sushi_assert(out_port >= 0 &&
                 static_cast<std::size_t>(out_port) < connCount(i));
    const std::size_t j = checkId(dst);
    sushi_assert(dst_port >= 0 &&
                 dst_port < static_cast<int>(struct_->n_in[j]));
    NetStructure &st = mut();
    OutConn &c = st.conns[static_cast<std::size_t>(st.out_off[i]) +
                          static_cast<std::size_t>(out_port)];
    // Component::connect raises the user-facing fan-out fatal first;
    // this guards direct core callers.
    sushi_assert(c.dst < 0);
    c.dst = dst;
    c.port = dst_port;
    c.wire_delay = wire_delay;
    ++st.live_conns;
}

std::int32_t
CompiledNetlist::cellId(const std::string &name) const
{
    auto it = struct_->by_name.find(name);
    return it == struct_->by_name.end() ? -1 : it->second;
}

std::shared_ptr<const NetStructure>
CompiledNetlist::shareStructure()
{
    mut_ = nullptr;
    return struct_;
}

bool
CompiledNetlist::masksCurrent() const
{
    return fault_masks_usable_ &&
           fault_mask_.size() == struct_->kind.size() &&
           fault_cfg_version_ == sim_.faults().configVersion();
}

void
CompiledNetlist::freeze()
{
    const NetStructure &st = *struct_;
    // Snapshot the post-compile mutable state on the first freeze
    // after a structural change: restoreState() rewinds to exactly
    // this point by flat copies.
    if (!snapped_ || snap_state_.size() != state_.size()) {
        snap_state_ = state_;
        snap_last_ = last_;
        snap_rng_ctr_ = rng_ctr_;
        snap_trace_size_.resize(traces_.size());
        for (std::size_t t = 0; t < traces_.size(); ++t)
            snap_trace_size_[t] = traces_[t].size();
        snapped_ = true;
    }
    const FaultModel &fm = sim_.faults();
    const std::uint64_t ver = fm.configVersion();
    if (ver == fault_cfg_version_ &&
        fault_mask_.size() == st.kind.size())
        return;
    fault_masks_usable_ = fm.numFaults() <= 64;
    fault_mask_.assign(st.kind.size(), 0);
    if (fault_masks_usable_) {
        for (std::size_t i = 0; i < st.kind.size(); ++i) {
            std::uint64_t m = 0;
            for (std::size_t s = 0; s < fm.numFaults(); ++s)
                if (fm.targetMatches(s, st.names[i]))
                    m |= std::uint64_t{1} << s;
            fault_mask_[i] = m;
        }
    }
    fault_cfg_version_ = ver;
}

void
CompiledNetlist::restoreState()
{
    if (!snapped_)
        return;
    sushi_assert(snap_state_.size() == state_.size());
    state_ = snap_state_;
    last_ = snap_last_;
    rng_ctr_ = snap_rng_ctr_;
    for (std::size_t t = 0; t < traces_.size(); ++t) {
        const std::size_t want = snap_trace_size_[t];
        if (traces_[t].size() > want)
            traces_[t].resize(want);
    }
}

double
CompiledNetlist::switchEnergyOf(const std::uint64_t counts[]) const
{
    double e = 0.0;
    for (int k = 0; k < static_cast<int>(kNumExecKinds); ++k)
        e += static_cast<double>(counts[k]) * kind_energy_[k];
    return e;
}

bool
CompiledNetlist::arriveCell(std::int32_t id, std::uint8_t kind,
                            int port, ExecCtx &cx)
{
    const auto i = static_cast<std::size_t>(id);
    const NetStructure &st = *struct_;
    const Tick now = cx.now;
    sushi_assert(port >= 0 && port < static_cast<int>(st.n_in[i]));
    FaultModel &fm = sim_.faults();
    // A dead cell (shorted/open junction) eats the pulse before any
    // junction switches: no energy, no constraint bookkeeping.
    if (fm.anyCellFaults()) {
        const bool dead =
            masksCurrent()
                ? fm.suppressArrivalKeyed(fault_mask_[i], now,
                                          *cx.faults)
                : fm.suppressArrival(st.names[i], now);
        if (dead)
            return false;
    }
    Tick *last = last_.data() + st.in_off[i];
    if (st.has_rules[i] != 0) {
        // Table-1 constraint check: first violated rule wins, in the
        // constraintRules() order, exactly as ConstraintChecker does.
        const auto ck = static_cast<CellKind>(kind);
        const IncomingRule *hit = nullptr;
        Tick hit_prev = kTickNever;
        for (const IncomingRule &r : incomingRules(ck, port)) {
            const Tick prev =
                last[static_cast<std::size_t>(r.chan_a)];
            if (prev == kTickNever)
                continue;
            if (now - prev < r.min_interval) {
                hit = &r;
                hit_prev = prev;
                break;
            }
        }
        // The arrival is recorded whether or not it violated: the
        // pulse did hit the input, and later spacing is measured
        // from it.
        last[static_cast<std::size_t>(port)] = now;
        if (hit != nullptr &&
            sim_.reportViolationEvt(
                st.names[i],
                violationMessage(ck, hit->label, hit->min_interval,
                                 hit_prev, now),
                hit->label, hit_prev, now, now, id, port)) {
            // Recover policy: the marginal arrival is attributed to
            // this cell and the offending pulse is discarded.
            return false;
        }
    } else {
        last[static_cast<std::size_t>(port)] = now;
    }
    ++cx.switch_count[kind];
    return true;
}

void
CompiledNetlist::pushOut(ExecCtx &cx, Tick when, std::int32_t dst,
                         std::int32_t port)
{
    ++*cx.pulses;
    if (cx.lane_of == nullptr || cx.lane_of[dst] == cx.lane) {
        cx.queue->push(when, dst, port);
    } else {
        // Crossing a partition boundary: park in the per-destination
        // outbox; the window barrier merges it into the destination
        // partition's queue in deterministic order.
        cx.outbox[cx.lane_of[dst]].push_back(
            CrossEvent{when, dst, port});
    }
}

void
CompiledNetlist::emit(std::int32_t id, int out_port, Tick delay,
                      ExecCtx &cx)
{
    const auto i = static_cast<std::size_t>(id);
    const NetStructure &st = *struct_;
    const OutConn &c =
        st.conns[static_cast<std::size_t>(st.out_off[i]) +
                 static_cast<std::size_t>(out_port)];
    if (c.dst < 0)
        return; // dangling output is legal (unused readout)
    FaultModel &fm = sim_.faults();
    if (fm.anyDeliveryFaults()) {
        const Tick now = cx.now;
        const FaultModel::Delivery fate =
            masksCurrent()
                ? fm.onDeliverKeyed(
                      fault_mask_[i], now,
                      static_cast<std::uint64_t>(id), rng_ctr_[i],
                      *cx.faults)
                : fm.onDeliver(st.names[i], now);
        if (fate.dropped)
            return; // injected fault: the pulse is lost in flight
        Tick total = delay + c.wire_delay + fate.jitter;
        if (total < 0)
            total = 0; // jitter cannot deliver into the past
        pushOut(cx, now + total, c.dst, c.port);
        // Spurious pulses (punch-through) trail the real delivery.
        for (int s = 1; s <= fate.inserted; ++s)
            pushOut(cx, now + total + s, c.dst, c.port);
        return;
    }
    pushOut(cx, cx.now + delay + c.wire_delay, c.dst, c.port);
}

void
CompiledNetlist::deliver(std::int32_t id, std::int32_t port,
                         ExecCtx &cx)
{
    const std::size_t i = checkId(id);
    const std::uint8_t kind = struct_->kind[i];
    const Tick delay = kind_delay_[kind];
    switch (kind) {
      case u8(CellKind::JTL):
      case u8(CellKind::DCSFQ):
        if (!arriveCell(id, kind, port, cx))
            return;
        emit(id, 0, delay, cx);
        break;
      case u8(CellKind::SPL):
        if (!arriveCell(id, kind, port, cx))
            return;
        emit(id, 0, delay, cx);
        emit(id, 1, delay, cx);
        break;
      case u8(CellKind::SPL3):
        if (!arriveCell(id, kind, port, cx))
            return;
        emit(id, 0, delay, cx);
        emit(id, 1, delay, cx);
        emit(id, 2, delay, cx);
        break;
      case u8(CellKind::CB):
      case u8(CellKind::CB3):
        if (!arriveCell(id, kind, port, cx))
            return;
        emit(id, 0, delay, cx);
        break;
      case u8(CellKind::DFF):
        if (!arriveCell(id, kind, port, cx))
            return;
        if (port == chan::kDffDin) {
            if (state_[i] != 0) {
                // A second din before a clk would push a second flux
                // quantum into the storage loop — a design error.
                // Under Recover the surplus din is simply discarded.
                if (sim_.reportViolationEvt(
                        struct_->names[i],
                        "din while already storing", "", kTickNever,
                        kTickNever, cx.now, id, port))
                    return;
            }
            state_[i] = 1;
        } else {
            // clk: destructive read. No stored flux means logic 0 —
            // no output pulse.
            if (state_[i] != 0) {
                state_[i] = 0;
                emit(id, 0, delay, cx);
            }
        }
        break;
      case u8(CellKind::NDRO): {
        if (!arriveCell(id, kind, port, cx))
            return;
        // Stuck-at faults model flux trapped in (stuck-set) or a
        // dead (stuck-reset) storage loop: while active, the loop
        // holds its forced value and writes in the opposing
        // direction are lost.
        bool s_set = false, s_rst = false;
        FaultModel &fm = sim_.faults();
        if (fm.anyCellFaults()) {
            const Tick now = cx.now;
            if (masksCurrent()) {
                s_set = fm.stuckSetMasked(fault_mask_[i], now);
                s_rst = fm.stuckResetMasked(fault_mask_[i], now);
            } else {
                s_set = fm.stuckSet(struct_->names[i], now);
                s_rst = fm.stuckReset(struct_->names[i], now);
            }
        }
        if (s_set)
            state_[i] = 1;
        if (s_rst)
            state_[i] = 0;
        switch (port) {
          case chan::kNdroDin:
            if (!s_rst)
                state_[i] = 1;
            break;
          case chan::kNdroRst:
            if (!s_set)
                state_[i] = 0;
            break;
          case chan::kNdroClk:
            if (state_[i] != 0)
                emit(id, 0, delay, cx);
            break;
          default:
            sushi_panic("NDRO %s: bad port %d",
                        struct_->names[i].c_str(), port);
        }
        break;
      }
      case u8(CellKind::TFFL):
        if (!arriveCell(id, kind, port, cx))
            return;
        state_[i] ^= 1;
        if (state_[i] != 0) // pulses on the 0 -> 1 flip
            emit(id, 0, delay, cx);
        break;
      case u8(CellKind::TFFR):
        if (!arriveCell(id, kind, port, cx))
            return;
        state_[i] ^= 1;
        if (state_[i] == 0) // pulses on the 1 -> 0 flip
            emit(id, 0, delay, cx);
        break;
      case u8(CellKind::SFQDC):
        if (!arriveCell(id, kind, port, cx))
            return;
        state_[i] ^= 1; // output level toggles per pulse
        traces_[static_cast<std::size_t>(struct_->trace_slot[i])]
            .push_back(cx.now);
        break;
      case kKindSink:
        sushi_assert(port == 0);
        traces_[static_cast<std::size_t>(struct_->trace_slot[i])]
            .push_back(cx.now);
        break;
      case kKindSource:
        // A source "delivery" is its scheduled firing: emit through
        // output 0 with zero cell delay, as PulseSource::pulseAt did.
        emit(id, 0, 0, cx);
        break;
      default:
        sushi_panic("cell %s: bad kind %d",
                    struct_->names[i].c_str(),
                    static_cast<int>(kind));
    }
}

} // namespace sushi::sfq
