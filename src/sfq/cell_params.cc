#include "sfq/cell_params.hh"

#include "common/logging.hh"

namespace sushi::sfq {

namespace {

/**
 * Calibrated library table.
 *
 * JJ counts: typical RSFQ cell compositions (Brock, "RSFQ technology:
 * circuits and systems", 2001; SIMIT-Nb03 cell descriptions).
 * Delays: consistent with the Table-1 minimum input intervals (a cell
 * must finish its internal flux relaxation before the next pulse).
 * Area: the SIMIT Nb03 2 um process averages ~0.98e-3 mm^2 per JJ over
 * the assembled SUSHI mesh (Table 2: 44.73 mm^2 / 45,542 JJ), so cell
 * areas are jjs * ~980 um^2.
 * Switching energy: ~2e-19 J per JJ flip (paper Sec. 1: ~1e-19 J per
 * state flip; a cell operation flips a couple of JJs).
 */
constexpr double kAreaPerJjUm2 = 982.0;
constexpr double kEswPerJj = 2.0e-19;

CellParams
make(double delay_ps, int jjs)
{
    return CellParams{psToTicks(delay_ps), jjs,
                      jjs * kAreaPerJjUm2, jjs * kEswPerJj};
}

const CellParams kTable[] = {
    /* JTL   */ make(3.5, 2),
    /* SPL   */ make(5.1, 3),
    /* SPL3  */ make(5.6, 5),
    /* CB    */ make(5.3, 5),
    /* CB3   */ make(5.9, 8),
    /* DFF   */ make(6.2, 6),
    /* NDRO  */ make(7.3, 11),
    /* TFFL  */ make(7.7, 8),
    /* TFFR  */ make(7.7, 8),
    /* DCSFQ */ make(5.0, 6),
    /* SFQDC */ make(10.0, 13),
};

const char *kNames[] = {
    "JTL", "SPL", "SPL3", "CB", "CB3", "DFF",
    "NDRO", "TFFL", "TFFR", "DCSFQ", "SFQDC",
};

static_assert(sizeof(kTable) / sizeof(kTable[0]) ==
              static_cast<std::size_t>(CellKind::kNumKinds));
static_assert(sizeof(kNames) / sizeof(kNames[0]) ==
              static_cast<std::size_t>(CellKind::kNumKinds));

} // namespace

const CellParams &
cellParams(CellKind kind)
{
    auto idx = static_cast<std::size_t>(kind);
    sushi_assert(idx < static_cast<std::size_t>(CellKind::kNumKinds));
    return kTable[idx];
}

const char *
cellKindName(CellKind kind)
{
    auto idx = static_cast<std::size_t>(kind);
    sushi_assert(idx < static_cast<std::size_t>(CellKind::kNumKinds));
    return kNames[idx];
}

double
biasPowerPerJj()
{
    // Fit: 41.87 mW total for the 99,982-JJ 16x16 design (Table 4).
    return 41.87e-3 / 99982.0;
}

double
wiringAreaPerJj()
{
    // JTL tracks pay an extra ~7 % over logic cells for track spacing
    // and crossings; fit against Table 2's area split.
    return kAreaPerJjUm2 * 1.07;
}

double
switchEnergyPerJj()
{
    return kEswPerJj;
}

int
synapseEventJjs()
{
    // One synaptic event reads the resident strength bit (NDRO),
    // fans it toward the row merge (SPL), joins the row (CB3) and
    // rides four JTL wiring stages into the NPE.
    return cellParams(CellKind::NDRO).jjs +
           cellParams(CellKind::SPL).jjs +
           cellParams(CellKind::CB3).jjs +
           4 * cellParams(CellKind::JTL).jjs;
}

double
storageArrayDensity()
{
    // Banked loops share bias rails and drive lines; calibrated so a
    // 16x16 chip's default weight-bank allowance stays within the
    // same order of area as the Table 2 fabric.
    return 0.25;
}

} // namespace sushi::sfq
