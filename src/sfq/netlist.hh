/**
 * @file
 * Netlist builder with resource accounting.
 *
 * A Netlist owns every cell of a gate-level design, hands out typed
 * factory methods, and keeps a running tally of Josephson junctions
 * and area, split into *logic* (functional cells) and *wiring* (JTL
 * interconnect) — the split the paper reports in Table 2.
 *
 * Interconnect is modelled as JTL chains: connectWire() accounts the
 * requested number of JTL stages (JJs, area, delay) without paying
 * the event-processing cost of simulating each stage individually.
 * makeJtlChain() builds real stage-by-stage chains when cell-accurate
 * wire behaviour is wanted (tests, waveform studies).
 */

#ifndef SUSHI_SFQ_NETLIST_HH
#define SUSHI_SFQ_NETLIST_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "sfq/cells.hh"
#include "sfq/simulator.hh"

namespace sushi::sfq {

/** JJ / area tally of a design, split by purpose. */
struct ResourceTally
{
    long logic_jjs = 0;
    long wiring_jjs = 0;
    double logic_area_um2 = 0.0;
    double wiring_area_um2 = 0.0;
    std::array<long, static_cast<std::size_t>(CellKind::kNumKinds)>
        cells_by_kind{};

    long totalJjs() const { return logic_jjs + wiring_jjs; }
    double totalAreaUm2() const
    {
        return logic_area_um2 + wiring_area_um2;
    }
    double totalAreaMm2() const { return totalAreaUm2() * 1e-6; }
    double wiringFraction() const
    {
        const long t = totalJjs();
        return t ? static_cast<double>(wiring_jjs) /
                       static_cast<double>(t)
                 : 0.0;
    }

    ResourceTally &operator+=(const ResourceTally &other);
};

/** Owns the cells of one gate-level design. */
class Netlist
{
  public:
    explicit Netlist(Simulator &sim) : sim_(sim) {}

    Netlist(const Netlist &) = delete;
    Netlist &operator=(const Netlist &) = delete;

    /// @name Cell factories (each registers resources as logic).
    /// @{
    Jtl &makeJtl(const std::string &name);
    Spl &makeSpl(const std::string &name);
    Spl3 &makeSpl3(const std::string &name);
    Cb &makeCb(const std::string &name);
    Cb3 &makeCb3(const std::string &name);
    Dff &makeDff(const std::string &name);
    Ndro &makeNdro(const std::string &name);
    Tffl &makeTffl(const std::string &name);
    Tffr &makeTffr(const std::string &name);
    DcSfq &makeDcSfq(const std::string &name);
    SfqDc &makeSfqDc(const std::string &name);
    PulseSource &makeSource(const std::string &name);
    PulseSink &makeSink(const std::string &name);
    /// @}

    /**
     * Connect @p src output @p out_port to @p dst input @p in_port
     * through @p jtl_stages of interconnect. The stages are accounted
     * as wiring JJs and contribute their propagation delay, but are
     * not instantiated as separate components.
     */
    void connectWire(Component &src, int out_port,
                     Component &dst, int in_port, int jtl_stages = 0);

    /**
     * Build an explicit chain of @p stages JTL cells between two
     * ports (each stage is a simulated component). Accounted as
     * wiring.
     */
    void makeJtlChain(const std::string &name, Component &src,
                      int out_port, Component &dst, int in_port,
                      int stages);

    /**
     * Build a splitter tree distributing @p src output @p out_port to
     * every (component, port) in @p dsts. RSFQ fan-out is one, so a
     * fan-out of N costs N-1 SPL cells (accounted as logic) plus
     * @p jtl_per_hop wiring stages on every tree edge.
     */
    void fanout(const std::string &name, Component &src, int out_port,
                const std::vector<std::pair<Component *, int>> &dsts,
                int jtl_per_hop = 0);

    /**
     * Build a confluence-buffer merge tree combining every source in
     * @p srcs onto @p dst input @p dst_port. A merge of N sources
     * costs N-1 CB cells (logic) plus @p jtl_per_hop wiring stages
     * per tree edge. Sources must keep their pulses spaced per
     * Table 1; the SUSHI encoder guarantees that.
     */
    void mergeTree(const std::string &name,
                   const std::vector<std::pair<Component *, int>> &srcs,
                   Component &dst, int dst_port, int jtl_per_hop = 0);

    /** Account extra wiring JJs that are not on any modelled path
     *  (e.g. track crossings: a crossing costs twice the width of the
     *  original transmission line, Sec. 4.2.2). */
    void addWiringOverhead(int jjs);

    /** Account extra logic JJs for structures carried by the design
     *  but not behaviourally modelled (e.g. the per-synapse weight
     *  configuration addressing cells). */
    void addLogicOverhead(int jjs);

    /** Resource tally of everything built so far. */
    const ResourceTally &resources() const { return tally_; }

    /**
     * Freeze the design into the simulator's compiled core and
     * return it. Every cell is already lowered at construction; this
     * completes the pass (fault-mask caches) and hands back the flat
     * representation for inspection. Simulator::run() freezes
     * implicitly, so calling this is optional but documents intent.
     */
    const CompiledNetlist &
    compile()
    {
        sim_.core().freeze();
        return sim_.core();
    }

    /** Owning simulator. */
    Simulator &sim() { return sim_; }

    /** Number of owned components. */
    std::size_t numComponents() const { return cells_.size(); }

  private:
    template <typename T>
    T &addCell(const std::string &name, CellKind kind);

    void accountCell(CellKind kind, bool wiring);

    Simulator &sim_;
    std::vector<std::unique_ptr<Component>> cells_;
    ResourceTally tally_;
};

} // namespace sushi::sfq

#endif // SUSHI_SFQ_NETLIST_HH
