/**
 * @file
 * Netlist partitioning for the parallel gate simulator.
 *
 * The compiled netlist is cut only along "slow" wires: every
 * connection whose end-to-end delay (source cell propagation delay +
 * interconnect delay) is below the lookahead threshold is contracted,
 * so tightly-coupled cell clusters — the inside of an NPE, a state
 * controller, a fan-out tree — always land in one partition. What
 * remains crossing partitions are the long inter-component links
 * (NoC hops, chip-to-chip wiring), and the minimum delay over those
 * crossings is the *lookahead*: a partition executing the window
 * [W, W + lookahead) can never receive a pulse dated inside the
 * window from another partition, which is what makes conservative
 * lock-step windows correct (classic CMB-style null-message-free
 * synchronization, here with a static lookahead).
 *
 * Partition assignment is deterministic: connected components are
 * formed by union-find over the contracted edges, then packed onto
 * lanes largest-first (LPT), ties broken by smallest cell id. The
 * plan depends only on the netlist and the thresholds — never on
 * thread scheduling — so every run of every thread count sees the
 * same cut.
 */

#ifndef SUSHI_SFQ_PARTITION_HH
#define SUSHI_SFQ_PARTITION_HH

#include <cstdint>
#include <vector>

#include "common/time.hh"

namespace sushi::sfq {

class CompiledNetlist;

/** A deterministic assignment of compiled cells to parallel lanes. */
struct PartitionPlan
{
    /** Dense cell id -> lane (partition) index. */
    std::vector<std::int32_t> lane_of;

    /** Dense cell id -> contracted connected component (diagnostic;
     *  lanes are unions of whole components). */
    std::vector<std::int32_t> component_of;

    /** Number of lanes actually used (>= 1). */
    int num_lanes = 1;

    /**
     * Minimum end-to-end delay over lane-crossing connections;
     * kTickNever when no connection crosses lanes (fully independent
     * partitions — a single unbounded window suffices).
     */
    Tick lookahead = kTickNever;

    std::size_t num_cells = 0;

    /** Number of connections crossing lanes. */
    std::size_t cross_edges = 0;
};

/**
 * Partition @p core into at most @p max_lanes lanes, contracting
 * every connection with end-to-end delay < @p min_lookahead.
 * Guarantees: every cell is assigned exactly one lane; every
 * lane-crossing connection has delay >= plan.lookahead >=
 * @p min_lookahead; the plan is a pure function of the netlist and
 * the two parameters.
 */
PartitionPlan partitionNetlist(const CompiledNetlist &core,
                               int max_lanes, Tick min_lookahead);

} // namespace sushi::sfq

#endif // SUSHI_SFQ_PARTITION_HH
