/**
 * @file
 * Pulse traces, pulse-level conversion and waveform comparison.
 *
 * The paper validates the fabricated chip by comparing oscilloscope
 * waveforms against simulation waveforms (Fig. 16), using pulse-level
 * conversion (Fig. 14): chip inputs are short high-level windows that
 * each launch one SFQ pulse, and every chip output pulse inverts a
 * sampled level. This module reproduces those conversions and the
 * equivalence check.
 *
 * Traces themselves are recorded by the compiled execution core:
 * probe cells (PulseSink, SfqDc) own slots in CompiledNetlist's
 * pooled trace storage, written index-addressed during delivery, and
 * the PulseTrace values handled here are views of those pools.
 */

#ifndef SUSHI_SFQ_WAVEFORM_HH
#define SUSHI_SFQ_WAVEFORM_HH

#include <string>
#include <vector>

#include "common/time.hh"

namespace sushi::sfq {

/** A pulse trace: ordered arrival times of SFQ pulses on one net. */
using PulseTrace = std::vector<Tick>;

/** One segment of a level waveform: level value from t until next. */
struct LevelStep
{
    Tick at;    ///< time the level switched to @c high
    bool high;  ///< the new level
};

/** A DC level waveform, as an oscilloscope records it. */
using LevelWave = std::vector<LevelStep>;

/**
 * Pulse-level conversion, output direction (Fig. 14): every pulse
 * inverts the sampled level, starting from low.
 */
LevelWave pulsesToLevels(const PulseTrace &pulses);

/**
 * Pulse-level conversion, recovery direction: each level toggle in
 * the oscilloscope record corresponds to one output pulse. This is
 * how the chip's "real output" is decoded back to a pulse sequence
 * (Fig. 16(b) -> (c)).
 */
PulseTrace levelsToPulses(const LevelWave &wave);

/**
 * Compare two traces for pulse-level equivalence: same pulse count,
 * and each pair of corresponding pulses within @p tolerance ticks.
 * Timing jitter between a behavioural and a gate-level model (or a
 * chip and a simulation) is expected; the *sequence* must match.
 *
 * @return empty string if equivalent, else a description of the
 *         first mismatch.
 */
std::string compareTraces(const PulseTrace &a, const PulseTrace &b,
                          Tick tolerance);

/**
 * Render traces as a compact ASCII waveform (one row per signal,
 * one column per time bucket; '|' marks a pulse). Used by the
 * waveform demo and Fig. 16 bench.
 */
std::string asciiWaveform(const std::vector<std::string> &names,
                          const std::vector<PulseTrace> &traces,
                          Tick bucket, int max_cols = 96);

/**
 * Count pulses in a trace within the half-open window
 * [@p from, @p to).
 */
std::size_t pulsesInWindow(const PulseTrace &trace, Tick from, Tick to);

} // namespace sushi::sfq

#endif // SUSHI_SFQ_WAVEFORM_HH
