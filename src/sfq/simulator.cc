#include "sfq/simulator.hh"

#include <utility>

#include "common/logging.hh"

namespace sushi::sfq {

void
Simulator::schedule(Tick when, EventQueue::Callback cb)
{
    if (when < now_) {
        sushi_panic("scheduling into the past: t=%lld now=%lld",
                    static_cast<long long>(when),
                    static_cast<long long>(now_));
    }
    queue_.schedule(when, std::move(cb));
}

void
Simulator::scheduleIn(Tick delta, EventQueue::Callback cb)
{
    schedule(now_ + delta, std::move(cb));
}

Tick
Simulator::run(Tick until)
{
    while (!queue_.empty() && queue_.nextTick() <= until) {
        // Advance time *before* executing so that callbacks observe
        // the correct now() and relative scheduling is exact.
        now_ = queue_.nextTick();
        queue_.runOne();
    }
    return now_;
}

void
Simulator::setPulseDropRate(double rate, std::uint64_t seed)
{
    sushi_assert(rate >= 0.0 && rate <= 1.0);
    drop_rate_ = rate;
    fault_rng_ = Rng(seed);
}

bool
Simulator::pulseDropped()
{
    if (drop_rate_ <= 0.0)
        return false;
    if (!fault_rng_.chance(drop_rate_))
        return false;
    ++dropped_;
    stats_.inc("sim.dropped_pulses");
    return true;
}

void
Simulator::reportViolation(const std::string &what)
{
    ++violations_;
    stats_.inc("sim.constraint_violations");
    switch (policy_) {
      case ViolationPolicy::Ignore:
        break;
      case ViolationPolicy::Warn:
        sushi_warn("timing constraint violated: %s", what.c_str());
        break;
      case ViolationPolicy::Fatal:
        sushi_fatal("timing constraint violated: %s", what.c_str());
    }
}

} // namespace sushi::sfq
