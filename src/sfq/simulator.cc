#include "sfq/simulator.hh"

#include <utility>

#include "common/logging.hh"

namespace sushi::sfq {

void
Simulator::schedule(Tick when, EventQueue::Callback cb)
{
    if (when < now_) {
        sushi_panic("scheduling into the past: t=%lld now=%lld",
                    static_cast<long long>(when),
                    static_cast<long long>(now_));
    }
    queue_.schedule(when, std::move(cb));
}

void
Simulator::scheduleIn(Tick delta, EventQueue::Callback cb)
{
    schedule(now_ + delta, std::move(cb));
}

Tick
Simulator::run(Tick until)
{
    while (!queue_.empty() && queue_.nextTick() <= until) {
        // Advance time *before* executing so that callbacks observe
        // the correct now() and relative scheduling is exact.
        now_ = queue_.nextTick();
        queue_.runOne();
    }
    return now_;
}

void
Simulator::reset()
{
    queue_.clear();
    now_ = 0;
    violations_ = 0;
    recovered_ = 0;
    pulses_ = 0;
    switch_energy_j_ = 0.0;
    violations_by_cell_.clear();
    faults_.resetCounters();
    stats_.clear();
}

void
Simulator::setPulseDropRate(double rate, std::uint64_t seed)
{
    sushi_assert(rate >= 0.0 && rate <= 1.0);
    faults_.clearFaults();
    faults_.reseed(seed);
    if (rate > 0.0) {
        FaultSpec drop;
        drop.kind = FaultKind::PulseDrop;
        drop.rate = rate;
        faults_.addFault(std::move(drop));
    }
}

bool
Simulator::pulseDropped()
{
    if (!faults_.anyDeliveryFaults())
        return false;
    return faults_.onDeliver(std::string{}, now_).dropped;
}

bool
Simulator::reportViolation(const std::string &cell,
                           const std::string &what)
{
    ++violations_;
    stats_.inc("sim.constraint_violations");
    if (!cell.empty())
        ++violations_by_cell_[cell];
    const std::string where = cell.empty() ? what : cell + ": " + what;
    switch (policy_) {
      case ViolationPolicy::Ignore:
        break;
      case ViolationPolicy::Warn:
        sushi_warn("timing constraint violated: %s", where.c_str());
        break;
      case ViolationPolicy::Recover:
        ++recovered_;
        stats_.inc("sim.recovered_pulses");
        return true;
      case ViolationPolicy::Fatal:
        throw TimingFault(cell, where);
    }
    return false;
}

} // namespace sushi::sfq
