#include "sfq/simulator.hh"

#include <cstring>
#include <utility>

#include "common/logging.hh"

namespace sushi::sfq {

void
Simulator::schedule(Tick when, Callback cb)
{
    if (when < now_) {
        sushi_panic("scheduling into the past: t=%lld now=%lld",
                    static_cast<long long>(when),
                    static_cast<long long>(now_));
    }
    std::int32_t slot;
    if (!cb_free_.empty()) {
        slot = cb_free_.back();
        cb_free_.pop_back();
        cb_pool_[static_cast<std::size_t>(slot)] = std::move(cb);
    } else {
        slot = static_cast<std::int32_t>(cb_pool_.size());
        cb_pool_.push_back(std::move(cb));
    }
    queue_.push(when, EventQueue::kCallbackCell, slot);
}

void
Simulator::scheduleIn(Tick delta, Callback cb)
{
    schedule(now_ + delta, std::move(cb));
}

Tick
Simulator::run(Tick until)
{
    core_.freeze();
    ExecCtx cx;
    cx.queue = &queue_;
    cx.pulses = &pulses_;
    cx.switch_count = switch_count_;
    cx.faults = &faults_.countersMut();
    EventQueue::Event ev;
    while (queue_.popNext(until, ev)) {
        // Advance time *before* executing so that deliveries observe
        // the correct now() and relative scheduling is exact.
        now_ = ev.when;
        cx.now = ev.when;
        if (ev.cell != EventQueue::kCallbackCell) {
            core_.deliver(ev.cell, ev.port, cx);
        } else {
            // Vacate the slot before invoking: the callback may
            // schedule further callbacks (and reuse this slot).
            const auto slot = static_cast<std::size_t>(ev.port);
            Callback cb = std::move(cb_pool_[slot]);
            cb_pool_[slot] = nullptr;
            cb_free_.push_back(ev.port);
            cb();
        }
    }
    return now_;
}

void
Simulator::reset()
{
    queue_.clear();
    cb_pool_.clear();
    cb_free_.clear();
    now_ = 0;
    violations_ = 0;
    recovered_ = 0;
    pulses_ = 0;
    std::memset(switch_count_, 0, sizeof switch_count_);
    extra_energy_j_ = 0.0;
    violations_by_cell_.clear();
    last_violation_.clear();
    last_v_when_ = -1;
    last_v_cell_ = -1;
    last_v_port_ = -1;
    core_.restoreState();
    faults_.resetCounters();
    stats_.clear();
}

void
Simulator::setPulseDropRate(double rate, std::uint64_t seed)
{
    sushi_assert(rate >= 0.0 && rate <= 1.0);
    faults_.clearFaults();
    faults_.reseed(seed);
    if (rate > 0.0) {
        FaultSpec drop;
        drop.kind = FaultKind::PulseDrop;
        drop.rate = rate;
        faults_.addFault(std::move(drop));
    }
}

bool
Simulator::pulseDropped()
{
    if (!faults_.anyDeliveryFaults())
        return false;
    return faults_.onDeliver(std::string{}, now_).dropped;
}

bool
Simulator::reportViolation(const std::string &cell,
                           const std::string &what,
                           const char *constraint, Tick prev, Tick at)
{
    // Legacy (unkeyed) entry point: always the most recent report,
    // and resets the stored key so a later keyed report wins again.
    const bool drop = reportViolationEvt(cell, what, constraint, prev,
                                         at, -1, -1, -1);
    {
        std::lock_guard<std::mutex> lk(violation_mu_);
        last_v_when_ = -1;
        last_v_cell_ = -1;
        last_v_port_ = -1;
    }
    return drop;
}

bool
Simulator::reportViolationEvt(const std::string &cell,
                              const std::string &what,
                              const char *constraint, Tick prev,
                              Tick at, Tick ev_when,
                              std::int32_t ev_cell,
                              std::int32_t ev_port)
{
    std::string where;
    {
        std::lock_guard<std::mutex> lk(violation_mu_);
        ++violations_;
        stats_.inc("sim.constraint_violations");
        if (!cell.empty())
            ++violations_by_cell_[cell];
        where = cell.empty() ? what : cell + ": " + what;
        // Max-key-wins: sequential execution reports in increasing
        // event order, so >= reproduces "most recent"; partitioned
        // lanes may report out of order and still converge on the
        // same final value.
        const bool newest =
            ev_when > last_v_when_ ||
            (ev_when == last_v_when_ &&
             (ev_cell > last_v_cell_ ||
              (ev_cell == last_v_cell_ && ev_port >= last_v_port_)));
        if (newest) {
            last_violation_ = where;
            last_v_when_ = ev_when;
            last_v_cell_ = ev_cell;
            last_v_port_ = ev_port;
        }
        if (policy_ == ViolationPolicy::Recover) {
            ++recovered_;
            stats_.inc("sim.recovered_pulses");
        }
    }
    switch (policy_) {
      case ViolationPolicy::Ignore:
        break;
      case ViolationPolicy::Warn:
        sushi_warn("timing constraint violated: %s", where.c_str());
        break;
      case ViolationPolicy::Recover:
        return true;
      case ViolationPolicy::Fatal:
        throw TimingFault(cell, where,
                          constraint != nullptr ? constraint : "",
                          prev, at);
    }
    return false;
}

} // namespace sushi::sfq
