#include "sfq/fault_model.hh"

#include <cmath>
#include <utility>

#include "common/logging.hh"

namespace sushi::sfq {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::PulseDrop:
        return "pulse_drop";
      case FaultKind::SpuriousPulse:
        return "spurious_pulse";
      case FaultKind::TimingJitter:
        return "timing_jitter";
      case FaultKind::StuckSet:
        return "stuck_set";
      case FaultKind::StuckReset:
        return "stuck_reset";
      case FaultKind::DeadCell:
        return "dead_cell";
    }
    sushi_panic("bad FaultKind %d", static_cast<int>(kind));
}

FaultModel::FaultModel(std::uint64_t seed) : seed_(seed), rng_(seed)
{
}

void
FaultModel::reseed(std::uint64_t seed)
{
    seed_ = seed;
    rng_ = Rng(seed);
}

void
FaultModel::addFault(FaultSpec spec)
{
    switch (spec.kind) {
      case FaultKind::PulseDrop:
      case FaultKind::SpuriousPulse:
        sushi_assert(spec.rate >= 0.0 && spec.rate <= 1.0);
        ++delivery_faults_;
        break;
      case FaultKind::TimingJitter:
        sushi_assert(spec.jitter_sigma >= 0.0);
        ++delivery_faults_;
        ++jitter_faults_;
        break;
      case FaultKind::StuckSet:
      case FaultKind::StuckReset:
      case FaultKind::DeadCell:
        ++cell_faults_;
        break;
    }
    specs_.push_back(std::move(spec));
    ++config_version_;
}

void
FaultModel::clearFaults()
{
    specs_.clear();
    delivery_faults_ = 0;
    cell_faults_ = 0;
    jitter_faults_ = 0;
    ++config_version_;
}

bool
FaultModel::matches(const FaultSpec &spec, const std::string &cell,
                    Tick now)
{
    if (now < spec.from || now >= spec.until)
        return false;
    if (spec.target.empty())
        return true;
    return cell.find(spec.target) != std::string::npos;
}

FaultModel::Delivery
FaultModel::onDeliver(const std::string &src, Tick now)
{
    Delivery d;
    for (const FaultSpec &spec : specs_) {
        switch (spec.kind) {
          case FaultKind::PulseDrop:
            // Evaluate matching faults even after a drop decision so
            // the consumed random stream — and therefore every later
            // decision — is independent of this delivery's fate.
            if (matches(spec, src, now) && rng_.chance(spec.rate) &&
                !d.dropped) {
                d.dropped = true;
                ++counters_.dropped;
            }
            break;
          case FaultKind::SpuriousPulse:
            if (matches(spec, src, now) && rng_.chance(spec.rate) &&
                !d.dropped) {
                ++d.inserted;
                ++counters_.inserted;
            }
            break;
          case FaultKind::TimingJitter:
            if (matches(spec, src, now) && spec.jitter_sigma > 0.0) {
                const double shift =
                    rng_.gaussian(0.0, spec.jitter_sigma);
                d.jitter += static_cast<Tick>(std::llround(shift));
            }
            break;
          case FaultKind::StuckSet:
          case FaultKind::StuckReset:
          case FaultKind::DeadCell:
            break; // cell faults: not a delivery decision
        }
    }
    if (d.jitter != 0)
        ++counters_.jittered;
    return d;
}

bool
FaultModel::suppressArrival(const std::string &cell, Tick now)
{
    for (const FaultSpec &spec : specs_) {
        if (spec.kind == FaultKind::DeadCell &&
            matches(spec, cell, now)) {
            ++counters_.suppressed;
            return true;
        }
    }
    return false;
}

bool
FaultModel::stuckSet(const std::string &cell, Tick now) const
{
    for (const FaultSpec &spec : specs_)
        if (spec.kind == FaultKind::StuckSet &&
            matches(spec, cell, now))
            return true;
    return false;
}

bool
FaultModel::stuckReset(const std::string &cell, Tick now) const
{
    for (const FaultSpec &spec : specs_)
        if (spec.kind == FaultKind::StuckReset &&
            matches(spec, cell, now))
            return true;
    return false;
}

FaultModel::Delivery
FaultModel::onDeliverMasked(std::uint64_t mask, Tick now)
{
    Delivery d;
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        const FaultSpec &spec = specs_[i];
        switch (spec.kind) {
          case FaultKind::PulseDrop:
            if (maskedMatch(i, mask, now) && rng_.chance(spec.rate) &&
                !d.dropped) {
                d.dropped = true;
                ++counters_.dropped;
            }
            break;
          case FaultKind::SpuriousPulse:
            if (maskedMatch(i, mask, now) && rng_.chance(spec.rate) &&
                !d.dropped) {
                ++d.inserted;
                ++counters_.inserted;
            }
            break;
          case FaultKind::TimingJitter:
            if (maskedMatch(i, mask, now) &&
                spec.jitter_sigma > 0.0) {
                const double shift =
                    rng_.gaussian(0.0, spec.jitter_sigma);
                d.jitter += static_cast<Tick>(std::llround(shift));
            }
            break;
          case FaultKind::StuckSet:
          case FaultKind::StuckReset:
          case FaultKind::DeadCell:
            break;
        }
    }
    if (d.jitter != 0)
        ++counters_.jittered;
    return d;
}

bool
FaultModel::suppressArrivalMasked(std::uint64_t mask, Tick now)
{
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        if (specs_[i].kind == FaultKind::DeadCell &&
            maskedMatch(i, mask, now)) {
            ++counters_.suppressed;
            return true;
        }
    }
    return false;
}

FaultModel::Delivery
FaultModel::onDeliverKeyed(std::uint64_t mask, Tick now,
                           std::uint64_t cell, std::uint32_t &ctr,
                           FaultCounters &c) const
{
    Delivery d;
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        const FaultSpec &spec = specs_[i];
        switch (spec.kind) {
          case FaultKind::PulseDrop:
            // Matching specs consume their counter values even after
            // a drop decision, so the per-cell stream position — and
            // therefore every later decision on this cell — is
            // independent of this delivery's fate (mirrors the
            // sequential-stream rule in onDeliver).
            if (maskedMatch(i, mask, now) &&
                keyedChance(spec.rate, seed_, cell, ctr) &&
                !d.dropped) {
                d.dropped = true;
                ++c.dropped;
            }
            break;
          case FaultKind::SpuriousPulse:
            if (maskedMatch(i, mask, now) &&
                keyedChance(spec.rate, seed_, cell, ctr) &&
                !d.dropped) {
                ++d.inserted;
                ++c.inserted;
            }
            break;
          case FaultKind::TimingJitter:
            if (maskedMatch(i, mask, now) &&
                spec.jitter_sigma > 0.0) {
                const double shift = keyedGaussian(
                    0.0, spec.jitter_sigma, seed_, cell, ctr);
                d.jitter += static_cast<Tick>(std::llround(shift));
            }
            break;
          case FaultKind::StuckSet:
          case FaultKind::StuckReset:
          case FaultKind::DeadCell:
            break;
        }
    }
    if (d.jitter != 0)
        ++c.jittered;
    return d;
}

bool
FaultModel::suppressArrivalKeyed(std::uint64_t mask, Tick now,
                                 FaultCounters &c) const
{
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        if (specs_[i].kind == FaultKind::DeadCell &&
            maskedMatch(i, mask, now)) {
            ++c.suppressed;
            return true;
        }
    }
    return false;
}

bool
FaultModel::stuckSetMasked(std::uint64_t mask, Tick now) const
{
    for (std::size_t i = 0; i < specs_.size(); ++i)
        if (specs_[i].kind == FaultKind::StuckSet &&
            maskedMatch(i, mask, now))
            return true;
    return false;
}

bool
FaultModel::stuckResetMasked(std::uint64_t mask, Tick now) const
{
    for (std::size_t i = 0; i < specs_.size(); ++i)
        if (specs_[i].kind == FaultKind::StuckReset &&
            maskedMatch(i, mask, now))
            return true;
    return false;
}

} // namespace sushi::sfq
