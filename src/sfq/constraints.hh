/**
 * @file
 * RSFQ cell input-timing constraints (paper Table 1).
 *
 * Each rule says: an input on channel B must lag the most recent input
 * on channel A by at least a minimum interval, otherwise the cell's
 * internal flux has not relaxed and behaviour is undefined. The values
 * are the paper's Table 1 (in ps); the paper notes it uses "larger
 * interval constraints to ensure the correct operation of the cells",
 * which the pulse encoder honours via a safety margin.
 */

#ifndef SUSHI_SFQ_CONSTRAINTS_HH
#define SUSHI_SFQ_CONSTRAINTS_HH

#include <string>
#include <vector>

#include "common/time.hh"
#include "sfq/cell_params.hh"

namespace sushi::sfq {

/** "Channel @p chan_b must lag channel @p chan_a by @p min_interval." */
struct ConstraintRule
{
    int chan_a;
    int chan_b;
    Tick min_interval;
    const char *label; ///< e.g. "din-clk"
};

/**
 * Canonical input-channel indices per cell type. These match the port
 * numbering of the cell classes in sfq/cells.hh.
 */
namespace chan {
// CB / CB3
constexpr int kCbDinA = 0;
constexpr int kCbDinB = 1;
constexpr int kCbDinC = 2;
// SPL / JTL
constexpr int kDin = 0;
// DFF
constexpr int kDffDin = 0;
constexpr int kDffClk = 1;
// NDRO
constexpr int kNdroDin = 0;
constexpr int kNdroRst = 1;
constexpr int kNdroClk = 2;
// TFF
constexpr int kTffClk = 0;
} // namespace chan

/** Constraint rules for the given cell type (may be empty). */
const std::vector<ConstraintRule> &constraintRules(CellKind kind);

/** Most input channels any library cell has (NDRO/CB3: 3). */
constexpr int kMaxChannels = 3;

/**
 * One incoming-edge rule: an arrival on the checked channel must lag
 * the most recent arrival on @p chan_a by @p min_interval. This is
 * ConstraintRule pre-filtered by destination channel, the form the
 * compiled inner loop consumes without scanning non-matching rules.
 */
struct IncomingRule
{
    int chan_a;
    Tick min_interval;
    const char *label;
};

/** A borrowed, immutable span of IncomingRule (iteration order is
 *  the constraintRules() order, so first-violation wins identically). */
struct IncomingRuleSpan
{
    const IncomingRule *data;
    int count;
    const IncomingRule *begin() const { return data; }
    const IncomingRule *end() const { return data + count; }
};

/**
 * The rules that constrain arrivals on @p channel of a @p kind cell.
 * Backed by a process-lifetime flat table; cheap enough to call per
 * arrival.
 */
IncomingRuleSpan incomingRules(CellKind kind, int channel);

/**
 * Canonical description of one timing violation, shared by the
 * compiled core and ConstraintChecker so diagnostics are identical on
 * both paths: cell kind, rule label, measured vs required interval,
 * and the two offending pulse times.
 */
std::string violationMessage(CellKind kind, const char *label,
                             Tick min_interval, Tick prev, Tick now);

/**
 * The single largest minimum interval across all rules of @p kind;
 * 0 if the cell has no rules. Used by encoders that need one safe
 * per-cell spacing value.
 */
Tick maxConstraint(CellKind kind);

/**
 * Global safe pulse spacing: the largest constraint in the whole
 * library times @p margin. The SUSHI pulse encoder spaces same-path
 * pulses by this much (Sec. 4.2.1: "we regulate the pulse interval
 * during input creation based on the cell constraints").
 */
Tick safePulseSpacing(double margin = 1.25);

/**
 * Tracks last-arrival times on each input channel of one cell
 * instance and checks the rules on every arrival.
 */
class ConstraintChecker
{
  public:
    ConstraintChecker(CellKind kind, int num_channels);

    /**
     * Record an arrival on @p channel at @p now.
     * @return a non-empty description of the violated rule if any
     *         rule fired, empty string otherwise.
     */
    std::string arrive(int channel, Tick now);

    /** Forget all arrival history (e.g. after a reset). */
    void reset();

  private:
    CellKind kind_;
    std::vector<Tick> last_;
};

/** One row of the printable Table-1 reproduction. */
struct ConstraintTableRow
{
    std::string cell;
    std::string rule;
    double min_ps;
};

/** All rules of all cells, for bench_table1_constraints. */
std::vector<ConstraintTableRow> constraintTable();

} // namespace sushi::sfq

#endif // SUSHI_SFQ_CONSTRAINTS_HH
