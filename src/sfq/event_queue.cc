#include "sfq/event_queue.hh"

#include <utility>

#include "common/logging.hh"

namespace sushi::sfq {

void
EventQueue::schedule(Tick when, Callback cb)
{
    sushi_assert(when >= 0);
    heap_.push(Event{when, next_seq_++, std::move(cb)});
}

Tick
EventQueue::nextTick() const
{
    return heap_.empty() ? kTickNever : heap_.top().when;
}

Tick
EventQueue::runOne()
{
    sushi_assert(!heap_.empty());
    // priority_queue::top() is const; the callback must be moved out
    // before pop, so copy the small header and move the callback.
    Event ev = std::move(const_cast<Event &>(heap_.top()));
    heap_.pop();
    ++executed_;
    ev.cb();
    return ev.when;
}

void
EventQueue::clear()
{
    heap_ = {};
}

} // namespace sushi::sfq
