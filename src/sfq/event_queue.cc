#include "sfq/event_queue.hh"

namespace sushi::sfq {

void
EventQueue::refill()
{
    while (cur_.empty()) {
        if (ring_count_ == 0) {
            // Everything pending sits past the ring: jump straight to
            // the overflow heap's earliest day instead of scanning
            // empty buckets one day at a time.
            sushi_assert(!overflow_.empty());
            cur_day_ = overflow_.front().when >> kDayBits;
        } else {
            ++cur_day_;
        }
        auto &bucket = days_[static_cast<std::size_t>(
            cur_day_ & (kNumDays - 1))];
        if (!bucket.empty()) {
            ring_count_ -= bucket.size();
            cur_.insert(cur_.end(), bucket.begin(), bucket.end());
            bucket.clear();
        }
        // Overflow events whose day has been reached join the
        // draining day. (An overflow day can undercut a ring day:
        // the ring window slides forward with cur_day_, so a later
        // push may ring-bucket a day that is *after* an event still
        // parked in overflow. Checking on every day advance keeps
        // global order.)
        while (!overflow_.empty() &&
               (overflow_.front().when >> kDayBits) <= cur_day_) {
            std::pop_heap(overflow_.begin(), overflow_.end(),
                          Later{});
            cur_.push_back(overflow_.back());
            overflow_.pop_back();
        }
        if (!cur_.empty())
            std::make_heap(cur_.begin(), cur_.end(), Later{});
    }
}

void
EventQueue::clear()
{
    for (auto &bucket : days_)
        bucket.clear();
    cur_.clear();
    overflow_.clear();
    ring_count_ = 0;
    size_ = 0;
    cur_day_ = 0;
    // next_seq_ and executed_ survive deliberately: eventsExecuted()
    // stays monotonic across Simulator::reset(), as before.
}

} // namespace sushi::sfq
