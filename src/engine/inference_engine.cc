#include "engine/inference_engine.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "snn/encoder.hh"

namespace sushi::engine {

namespace {

/** splitmix64: per-sample seed derivation (order-independent). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

void
appendJsonDouble(std::string &out, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

} // namespace

double
EngineRun::modeledMakespanPs() const
{
    double makespan = 0.0;
    for (const auto &st : per_replica)
        makespan = std::max(makespan, st.est_time_ps);
    return makespan;
}

InferenceEngine::InferenceEngine(
    std::shared_ptr<const CompiledModel> model,
    const EngineConfig &cfg)
    : model_(std::move(model)), cfg_(cfg)
{
    sushi_assert(model_ != nullptr);
    int replicas = cfg_.replicas;
    if (replicas <= 0)
        replicas = static_cast<int>(parallelWorkers());
    if (cfg_.shard_block == 0)
        cfg_.shard_block = 1;
    cfg_.replicas = replicas;
    // One chip per plan stage per replica group: the whole pipeline
    // of a multi-chip plan is pinned to its group.
    stages_ = model_->stageCount();
    chips_.reserve(static_cast<std::size_t>(replicas * stages_));
    chip_mu_.reserve(static_cast<std::size_t>(replicas));
    accounts_.resize(static_cast<std::size_t>(replicas));
    for (int r = 0; r < replicas; ++r) {
        for (int s = 0; s < stages_; ++s) {
            chips_.push_back(
                std::make_unique<chip::SushiChip>(model_->chip()));
            chips_.back()->setSimThreads(cfg_.sim_threads);
            if (cfg_.packed_kernels >= 0)
                chips_.back()->setPackedKernels(cfg_.packed_kernels !=
                                                0);
        }
        chip_mu_.push_back(std::make_unique<std::mutex>());
    }
    // Modelled NoC transport: one fabric per replica group, driven
    // sequentially under the replica lock. Single-stage plans have
    // no cut traffic to route, so the toggle is ignored there.
    if (cfg_.noc.enabled && stages_ > 1) {
        const compiler::MultiChipPlan *plan = model_->plan();
        sushi_assert(plan != nullptr);
        noc_.reserve(static_cast<std::size_t>(replicas));
        for (int r = 0; r < replicas; ++r)
            noc_.push_back(
                std::make_unique<noc::NocTransport>(*plan, cfg_.noc));
    }
}

const noc::NocTransport &
InferenceEngine::nocTransport(int replica) const
{
    sushi_assert(nocEnabled());
    sushi_assert(replica >= 0 && replica < replicas());
    return *noc_[static_cast<std::size_t>(replica)];
}

void
InferenceEngine::markReplicaDegraded(int replica, int slot)
{
    sushi_assert(replica >= 0 && replica < replicas());
    std::lock_guard<std::mutex> lock(
        *chip_mu_[static_cast<std::size_t>(replica)]);
    // The physical failure hits the whole group: every stage chip of
    // the replica remaps the slot (results stay bit-identical; only
    // the time/reload surcharges change).
    for (int s = 0; s < stages_; ++s)
        chipAt(replica, s).markNpeFailed(slot);
}

void
InferenceEngine::healReplica(int replica)
{
    sushi_assert(replica >= 0 && replica < replicas());
    std::lock_guard<std::mutex> lock(
        *chip_mu_[static_cast<std::size_t>(replica)]);
    for (int s = 0; s < stages_; ++s)
        chipAt(replica, s).clearFailedNpes();
}

bool
InferenceEngine::replicaDegraded(int replica) const
{
    return failedNpeSlots(replica) > 0;
}

int
InferenceEngine::failedNpeSlots(int replica) const
{
    sushi_assert(replica >= 0 && replica < replicas());
    std::lock_guard<std::mutex> lock(
        *chip_mu_[static_cast<std::size_t>(replica)]);
    // Degrade/heal keep every stage chip of the group in lockstep,
    // so stage 0 is authoritative.
    return chipAt(replica, 0).remapPlan().failed;
}

int
InferenceEngine::npeSlots() const
{
    return model_->chip().n;
}

void
InferenceEngine::recordBatchOutcome(int replica, bool ok,
                                    std::int64_t service_ns,
                                    std::size_t samples)
{
    sushi_assert(replica >= 0 && replica < replicas());
    std::lock_guard<std::mutex> lock(accounts_mu_);
    ReplicaAccount &acct =
        accounts_[static_cast<std::size_t>(replica)];
    ++acct.batches;
    acct.service_ns_total += service_ns;
    acct.last_service_ns = service_ns;
    if (ok) {
        acct.samples += samples;
        acct.consecutive_failures = 0;
    } else {
        ++acct.failures;
        ++acct.consecutive_failures;
    }
}

ReplicaAccount
InferenceEngine::replicaAccount(int replica) const
{
    sushi_assert(replica >= 0 && replica < replicas());
    ReplicaAccount acct;
    {
        std::lock_guard<std::mutex> lock(accounts_mu_);
        acct = accounts_[static_cast<std::size_t>(replica)];
    }
    acct.failed_npes =
        static_cast<std::uint64_t>(failedNpeSlots(replica));
    return acct;
}

void
InferenceEngine::clearReplicaStreak(int replica)
{
    sushi_assert(replica >= 0 && replica < replicas());
    std::lock_guard<std::mutex> lock(accounts_mu_);
    accounts_[static_cast<std::size_t>(replica)]
        .consecutive_failures = 0;
}

ReplicaRun
InferenceEngine::runOnReplica(int replica,
                              const Sample *const *samples,
                              std::size_t count)
{
    sushi_assert(replica >= 0 && replica < replicas());
    // Pin the model against ModelCache eviction and hold the replica
    // lock so degrade/heal mutations land on batch boundaries.
    CompiledModel::Pin pin(model_.get());
    std::lock_guard<std::mutex> lock(
        *chip_mu_[static_cast<std::size_t>(replica)]);
    ReplicaRun out;
    out.results.resize(count);
    out.per_sample.resize(count);

    if (stages_ == 1) {
        // Single-chip plan: the historical path, bit for bit.
        chip::SushiChip &chip = chipAt(replica, 0);
        const compiler::CompiledNetwork &net = model_->stageNet(0);
        for (std::size_t i = 0; i < count; ++i) {
            chip.resetStats();
            SampleResult &res = out.results[i];
            res.counts = chip.inferCounts(net, *samples[i]);
            res.prediction = static_cast<int>(
                std::max_element(res.counts.begin(),
                                 res.counts.end()) -
                res.counts.begin());
            out.per_sample[i] = chip.stats();
        }
        return out;
    }

    // Multi-chip plan: the stage chips run the sample in lockstep,
    // chained per time step through the inter-chip activation cut.
    // The stats delta merges the stage chips' records per sample
    // (frames/time_steps max, worst-chip utilisation, energy
    // recomputed from the summed synaptic work).
    const std::size_t out_dim =
        model_->network().layers().back().outDim();
    // NoC transport of this replica group (nullptr = ideal
    // transport). It never touches `act`, so spike results are
    // bit-identical either way; it only charges modelled fabric time
    // and congestion counters into the per-sample stats delta.
    noc::NocTransport *nt =
        noc_.empty() ? nullptr
                     : noc_[static_cast<std::size_t>(replica)].get();
    for (std::size_t i = 0; i < count; ++i) {
        for (int s = 0; s < stages_; ++s)
            chipAt(replica, s).resetStats();
        for (int s = 0; s < stages_; ++s)
            chipAt(replica, s).beginFrame();
        if (nt != nullptr)
            nt->beginSample();
        std::vector<int> counts(out_dim, 0);
        for (const auto &frame : *samples[i]) {
            chip::PulseVector act(frame.begin(), frame.end());
            if (nt != nullptr) {
                nt->beginStep();
                nt->hostIngress(act);
            }
            for (int s = 0; s < stages_; ++s) {
                act = chipAt(replica, s)
                          .stepNetwork(model_->stageNet(s), act);
                if (nt != nullptr && s < stages_ - 1)
                    nt->transferCut(s, act);
            }
            for (std::size_t o = 0; o < out_dim; ++o)
                counts[o] += act[o];
            chipAt(replica, stages_ - 1).countOutputSpikes(act);
            if (nt != nullptr) {
                nt->hostEgress(act);
                nt->endStep();
            }
        }
        for (int s = 0; s < stages_; ++s)
            chipAt(replica, s).finishRun();

        SampleResult &res = out.results[i];
        res.counts = std::move(counts);
        res.prediction = static_cast<int>(
            std::max_element(res.counts.begin(), res.counts.end()) -
            res.counts.begin());
        chip::InferenceStats delta = chipAt(replica, 0).stats();
        for (int s = 1; s < stages_; ++s)
            delta.accumulatePipeline(chipAt(replica, s).stats());
        if (nt != nullptr) {
            // Fold the sample's transport account into the delta: the
            // fabric serialises the pipeline's cut traffic, so its
            // cycles extend the modelled makespan.
            const noc::NocSampleStats ns = nt->finishSample();
            delta.noc_packets += ns.packets;
            delta.noc_flits += ns.flits;
            delta.noc_flit_hops += ns.flit_hops;
            delta.noc_hol_stall_cycles += ns.hol_stall_cycles;
            delta.noc_backpressure_stalls += ns.backpressure_stalls;
            delta.noc_latency_cycles += ns.latency_cycles;
            delta.noc_max_step_link_flits = std::max(
                delta.noc_max_step_link_flits, ns.max_step_link_flits);
            delta.noc_latency_ps += ns.latency_ps;
            delta.noc_max_link_utilisation =
                std::max(delta.noc_max_link_utilisation,
                         ns.max_link_utilisation);
            delta.noc_cut_flits = ns.cut_flits;
            delta.est_time_ps += ns.latency_ps;
        }
        delta.dynamic_energy_j =
            chip::dynamicEnergyJ(delta.synaptic_ops);
        out.per_sample[i] = delta;
    }
    return out;
}

ReplicaRun
InferenceEngine::runOnReplica(int replica,
                              const std::vector<Sample> &samples)
{
    std::vector<const Sample *> ptrs;
    ptrs.reserve(samples.size());
    for (const Sample &s : samples)
        ptrs.push_back(&s);
    return runOnReplica(replica, ptrs.data(), ptrs.size());
}

EngineRun
InferenceEngine::run(const std::vector<Sample> &samples)
{
    const auto wall_start = std::chrono::steady_clock::now();
    const std::size_t n = samples.size();

    EngineRun out;
    out.samples.resize(n);
    out.shard_of.assign(n, -1);
    out.per_replica.assign(chips_.size(), chip::InferenceStats{});

    // Active replica set: drain degraded replicas when asked to and
    // at least one healthy replica remains. (A fully degraded pool
    // still serves — behavioural results are bit-identical, only the
    // time/reload surcharges differ.)
    std::vector<int> active;
    for (int r = 0; r < replicas(); ++r)
        if (!(cfg_.drain_degraded && replicaDegraded(r)))
            active.push_back(r);
    if (active.empty())
        for (int r = 0; r < replicas(); ++r)
            active.push_back(r);
    out.active_replicas = static_cast<int>(active.size());
    if (n == 0)
        return out;

    // Shard plan: block round-robin over the active set, a pure
    // function of (n, active, shard_block).
    std::vector<std::vector<std::size_t>> shards(chips_.size());
    for (std::size_t i = 0; i < n; ++i) {
        const int owner = active[(i / cfg_.shard_block) %
                                 active.size()];
        out.shard_of[i] = owner;
        shards[static_cast<std::size_t>(owner)].push_back(i);
    }

    // Every worker drives its own replicas over their shards; stats
    // are captured per sample (reset before each) so the merge below
    // is independent of sharding and thread count.
    std::vector<chip::InferenceStats> per_sample(n);
    parallelFor(
        active.size(),
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t a = begin; a < end; ++a) {
                const auto r =
                    static_cast<std::size_t>(active[a]);
                std::vector<const Sample *> shard_ptrs;
                shard_ptrs.reserve(shards[r].size());
                for (std::size_t i : shards[r])
                    shard_ptrs.push_back(&samples[i]);
                ReplicaRun rr =
                    runOnReplica(active[a], shard_ptrs.data(),
                                 shard_ptrs.size());
                recordBatchOutcome(active[a], /*ok=*/true,
                                   /*service_ns=*/0,
                                   shard_ptrs.size());
                for (std::size_t k = 0; k < shards[r].size(); ++k) {
                    const std::size_t i = shards[r][k];
                    out.samples[i] = std::move(rr.results[k]);
                    per_sample[i] = rr.per_sample[k];
                }
            }
        },
        ParallelOptions{/*grain=*/1, cfg_.max_threads});

    // Deterministic merge: sample-index order, independent of the
    // shard plan and thread count.
    for (std::size_t i = 0; i < n; ++i) {
        out.merged.accumulate(per_sample[i]);
        out.per_replica[static_cast<std::size_t>(out.shard_of[i])]
            .accumulate(per_sample[i]);
    }
    // Energy is a pure function of synaptic work; recompute from the
    // merged totals so the model matches SushiChip's own accounting.
    out.merged.dynamic_energy_j =
        chip::dynamicEnergyJ(out.merged.synaptic_ops);
    for (auto &st : out.per_replica)
        st.dynamic_energy_j = chip::dynamicEnergyJ(st.synaptic_ops);

    out.wall_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    return out;
}

std::vector<Sample>
encodeSamples(const snn::Tensor &images, int t_steps,
              std::uint64_t seed)
{
    const std::size_t n = images.rows();
    const std::size_t dim = images.cols();
    std::vector<Sample> out(n);
    parallelFor(n, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            snn::PoissonEncoder enc(mix64(seed ^ mix64(i)));
            std::vector<float> pixels(images.row(i),
                                      images.row(i) + dim);
            const snn::Tensor fr = enc.encode(pixels, t_steps);
            Sample sample;
            sample.reserve(static_cast<std::size_t>(t_steps));
            for (int t = 0; t < t_steps; ++t) {
                std::vector<std::uint8_t> frame(dim);
                for (std::size_t d = 0; d < dim; ++d)
                    frame[d] =
                        fr.at(static_cast<std::size_t>(t), d) > 0.5f
                            ? 1
                            : 0;
                sample.push_back(std::move(frame));
            }
            out[i] = std::move(sample);
        }
    });
    return out;
}

std::string
statsJson(const chip::InferenceStats &stats)
{
    std::string out = "{";
    const auto field = [&out](const char *name, std::uint64_t v,
                              bool first = false) {
        if (!first)
            out += ", ";
        out += "\"";
        out += name;
        out += "\": ";
        out += std::to_string(v);
    };
    field("frames", stats.frames, true);
    field("time_steps", stats.time_steps);
    field("input_pulses", stats.input_pulses);
    field("synaptic_ops", stats.synaptic_ops);
    field("output_spikes", stats.output_spikes);
    field("underflow_spikes", stats.underflow_spikes);
    field("multi_fires", stats.multi_fires);
    field("reload_events", stats.reload_events);
    field("failed_npes", stats.failed_npes);
    field("remapped_neurons", stats.remapped_neurons);
    field("degraded_passes", stats.degraded_passes);
    // Compile-plan gauges: realizability headroom of the plan the
    // traffic actually ran on (ISSUE 8 serving diagnostics).
    field("disabled_neurons", stats.disabled_neurons);
    field("plan_reloads", stats.plan_reloads);
    out += ", \"est_time_ps\": ";
    appendJsonDouble(out, stats.est_time_ps);
    out += ", \"reload_time_ps\": ";
    appendJsonDouble(out, stats.reload_time_ps);
    out += ", \"dynamic_energy_j\": ";
    appendJsonDouble(out, stats.dynamic_energy_j);
    out += ", \"jj_utilisation\": ";
    appendJsonDouble(out, stats.jj_utilisation);
    out += ", \"area_utilisation\": ";
    appendJsonDouble(out, stats.area_utilisation);
    // NoC transport block (all zero / empty under the ideal
    // transport — kept unconditional so the schema is stable).
    field("noc_packets", stats.noc_packets);
    field("noc_flits", stats.noc_flits);
    field("noc_flit_hops", stats.noc_flit_hops);
    field("noc_hol_stall_cycles", stats.noc_hol_stall_cycles);
    field("noc_backpressure_stalls", stats.noc_backpressure_stalls);
    field("noc_latency_cycles", stats.noc_latency_cycles);
    field("noc_max_step_link_flits", stats.noc_max_step_link_flits);
    out += ", \"noc_latency_ps\": ";
    appendJsonDouble(out, stats.noc_latency_ps);
    out += ", \"noc_max_link_utilisation\": ";
    appendJsonDouble(out, stats.noc_max_link_utilisation);
    out += ", \"noc_cut_flits\": [";
    for (std::size_t c = 0; c < stats.noc_cut_flits.size(); ++c) {
        if (c != 0)
            out += ", ";
        out += std::to_string(stats.noc_cut_flits[c]);
    }
    out += "]}";
    return out;
}

} // namespace sushi::engine
