/**
 * @file
 * The shared compiled-model artifact and its process-wide cache.
 *
 * Compiling a binarized SSNN (bit-slicing, bucketing, scheduling,
 * preload computation) is pure and deterministic in the network and
 * chip geometry, so a replica pool must do it exactly once: every
 * SushiChip replica executes the same immutable CompiledModel. The
 * artifact owns its BinarySnn — compiler::CompiledNetwork points
 * back into the network it was compiled from, so the two must live
 * (and die) together; CompiledModel pins both behind one
 * shared_ptr and is neither copyable nor movable.
 *
 * A model compiled through a budget-enforcing DriverOptions preset
 * may come out as a multi-chip plan: stageCount() > 1, each stage an
 * immutable per-chip CompiledNetwork owning its own layer range (the
 * plan's ChipStage keeps the subnet alive behind a shared_ptr). The
 * engine pins each stage to one chip of a replica group and chains
 * them per time step.
 */

#ifndef SUSHI_ENGINE_COMPILED_MODEL_HH
#define SUSHI_ENGINE_COMPILED_MODEL_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "compiler/compile.hh"
#include "compiler/driver.hh"
#include "snn/binarize.hh"

namespace sushi::engine {

/** An immutable, shareable compile artifact. */
class CompiledModel
{
  public:
    /** Compile @p net for @p chip and wrap the result (the legacy
     *  single-chip driver preset, bit-identical to the historical
     *  compiler; always one stage). */
    static std::shared_ptr<const CompiledModel>
    compile(snn::BinarySnn net, const compiler::ChipConfig &chip);

    /**
     * Compile through an explicit driver preset. A budget-enforcing
     * preset may split the model into a multi-chip plan; throws
     * compiler::CompileError when the model cannot be realized.
     */
    static std::shared_ptr<const CompiledModel>
    compile(snn::BinarySnn net, const compiler::ChipConfig &chip,
            const compiler::DriverOptions &options);

    CompiledModel(const CompiledModel &) = delete;
    CompiledModel &operator=(const CompiledModel &) = delete;

    const snn::BinarySnn &network() const { return net_; }

    /** The single-chip artifact; asserts stageCount() == 1. */
    const compiler::CompiledNetwork &compiled() const;

    const compiler::ChipConfig &chip() const;

    /** Chips the plan needs (1 for every legacy-compiled model). */
    int stageCount() const;
    bool multiChip() const { return stageCount() > 1; }

    /** Compiled artifact of stage @p s (0 <= s < stageCount()). */
    const compiler::CompiledNetwork &stageNet(int s) const;

    /** The multi-chip plan, or nullptr for legacy-compiled models. */
    const compiler::MultiChipPlan *plan() const
    {
        return plan_ ? &*plan_ : nullptr;
    }

    /** Content fingerprint of (network, chip config); the cache key. */
    std::uint64_t fingerprint() const { return fingerprint_; }

    /**
     * Fingerprint without compiling (cache lookups). FNV-1a over the
     * binarized weights, thresholds, step count and chip geometry.
     */
    static std::uint64_t
    fingerprintOf(const snn::BinarySnn &net,
                  const compiler::ChipConfig &chip);

    /** Fingerprint salted with the driver preset (plan compiles). */
    static std::uint64_t
    fingerprintOf(const snn::BinarySnn &net,
                  const compiler::ChipConfig &chip,
                  const compiler::DriverOptions &options);

    /**
     * RAII execution pin. While any Pin on a model is alive the
     * ModelCache will not evict that model's entry: the engine pins
     * the model around every replica batch, so a cache thrashed by
     * many cold models never drops the artifact a batch is running
     * on (which would force an immediate recompile on the next
     * request). Pinning is advisory for correctness — shared_ptr
     * ownership already keeps the artifact alive — but it turns an
     * eviction-recompile storm into a deferred eviction.
     */
    class Pin
    {
      public:
        explicit Pin(const CompiledModel *model) : model_(model)
        {
            if (model_ != nullptr)
                model_->pins_.fetch_add(
                    1, std::memory_order_relaxed);
        }
        ~Pin()
        {
            if (model_ != nullptr)
                model_->pins_.fetch_sub(
                    1, std::memory_order_relaxed);
        }
        Pin(const Pin &) = delete;
        Pin &operator=(const Pin &) = delete;

      private:
        const CompiledModel *model_;
    };

    /** Live execution pins (replica batches referencing this model
     *  right now). */
    int pinCount() const
    {
        return pins_.load(std::memory_order_relaxed);
    }

  private:
    struct Key
    {
    }; // make_shared needs a public ctor; Key keeps it internal

  public:
    CompiledModel(Key, snn::BinarySnn net,
                  const compiler::ChipConfig &chip);
    CompiledModel(Key, snn::BinarySnn net,
                  const compiler::ChipConfig &chip,
                  const compiler::DriverOptions &options);

  private:
    snn::BinarySnn net_;
    /** Legacy single-chip artifact (unused when plan_ is set). */
    compiler::CompiledNetwork compiled_;
    /** Driver-preset plan (set by the options overload). */
    std::optional<compiler::MultiChipPlan> plan_;
    std::uint64_t fingerprint_;
    mutable std::atomic<int> pins_{0};
};

/**
 * Process-wide compile cache, keyed by content fingerprint.
 * Thread-safe; a hit returns the already-compiled shared artifact.
 *
 * The cache is bounded: once more than capacity() distinct models
 * have been inserted, the least-recently-used artifact is evicted
 * (long multi-model campaigns no longer grow it without limit).
 * Eviction only drops the cache's reference — holders of the
 * shared_ptr keep their artifact alive; refetching an evicted model
 * recompiles it.
 *
 * Eviction never races in-flight work: entries whose model carries
 * live execution pins (CompiledModel::Pin, taken by the engine for
 * the duration of every replica batch) are skipped — the deferral is
 * counted in evictionsDeferred() and retried on the next insert or
 * setCapacity() call, so the cache may transiently exceed its
 * capacity while every over-quota entry is pinned.
 */
class ModelCache
{
  public:
    /** Default artifact capacity of a new cache. */
    static constexpr std::size_t kDefaultCapacity = 32;

    /** Return the cached artifact for (net, chip), compiling on a
     *  miss. */
    std::shared_ptr<const CompiledModel>
    get(const snn::BinarySnn &net, const compiler::ChipConfig &chip);

    std::size_t size() const;
    std::uint64_t hits() const;
    std::uint64_t misses() const;

    /** Artifacts evicted by the LRU bound since construction. */
    std::uint64_t evictions() const;

    /** Evictions skipped because the entry was pinned by in-flight
     *  work at the time (each skip counts once per attempt). */
    std::uint64_t evictionsDeferred() const;

    /** Entries currently pinned by in-flight batches (gauge). */
    std::size_t pinned() const;

    /** Maximum artifacts kept (0 = unbounded). */
    std::size_t capacity() const;

    /** Change the bound; evicts LRU artifacts down to @p cap. */
    void setCapacity(std::size_t cap);

    void clear();

    /** The process-wide instance. */
    static ModelCache &shared();

  private:
    struct Entry
    {
        std::shared_ptr<const CompiledModel> model;
        std::list<std::uint64_t>::iterator lru_pos;
    };

    void evictOverCapacityLocked();

    mutable std::mutex mu_;
    std::unordered_map<std::uint64_t, Entry> map_;
    std::list<std::uint64_t> lru_; ///< front = most recently used
    std::size_t capacity_ = kDefaultCapacity;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t evictions_deferred_ = 0;
};

} // namespace sushi::engine

#endif // SUSHI_ENGINE_COMPILED_MODEL_HH
