#include "engine/compiled_model.hh"

#include <bit>
#include <iterator>

#include "common/logging.hh"

namespace sushi::engine {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void
fnv(std::uint64_t &h, std::uint64_t v)
{
    for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (8 * byte)) & 0xff;
        h *= kFnvPrime;
    }
}

} // namespace

std::uint64_t
CompiledModel::fingerprintOf(const snn::BinarySnn &net,
                             const compiler::ChipConfig &chip)
{
    std::uint64_t h = kFnvOffset;
    fnv(h, static_cast<std::uint64_t>(net.tSteps()));
    for (const auto &layer : net.layers()) {
        fnv(h, layer.outDim());
        fnv(h, layer.inDim());
        for (const auto &row : layer.weights) {
            // Pack the +-1 weights eight-per-byte-pair into words.
            std::uint64_t word = 0;
            int bits = 0;
            for (std::int8_t w : row) {
                word = (word << 1) | (w > 0 ? 1u : 0u);
                if (++bits == 64) {
                    fnv(h, word);
                    word = 0;
                    bits = 0;
                }
            }
            if (bits) {
                fnv(h, word);
                fnv(h, static_cast<std::uint64_t>(bits));
            }
        }
        for (int theta : layer.thresholds)
            fnv(h, static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(theta)));
    }
    fnv(h, static_cast<std::uint64_t>(chip.n));
    fnv(h, static_cast<std::uint64_t>(chip.sc_per_npe));
    fnv(h, chip.bucketing.bucketing ? 1 : 0);
    fnv(h, chip.bucketing.reorder ? 1 : 0);
    fnv(h, static_cast<std::uint64_t>(chip.bucketing.bucket_size));
    fnv(h, static_cast<std::uint64_t>(chip.bucketing.state_bits));
    fnv(h, static_cast<std::uint64_t>(chip.bucketing.mesh_width));
    return h;
}

std::uint64_t
CompiledModel::fingerprintOf(const snn::BinarySnn &net,
                             const compiler::ChipConfig &chip,
                             const compiler::DriverOptions &options)
{
    std::uint64_t h = fingerprintOf(net, chip);
    fnv(h, options.enforce_budget ? 1 : 0);
    fnv(h, options.score_schedules ? 1 : 0);
    fnv(h, options.allow_multichip ? 1 : 0);
    fnv(h, static_cast<std::uint64_t>(options.max_chips));
    fnv(h, static_cast<std::uint64_t>(options.budget.jj_cap));
    fnv(h, std::bit_cast<std::uint64_t>(
               options.budget.area_cap_mm2));
    return h;
}

CompiledModel::CompiledModel(Key, snn::BinarySnn net,
                             const compiler::ChipConfig &chip)
    : net_(std::move(net)),
      compiled_(compiler::compileNetwork(net_, chip)),
      fingerprint_(fingerprintOf(net_, chip))
{
}

CompiledModel::CompiledModel(Key, snn::BinarySnn net,
                             const compiler::ChipConfig &chip,
                             const compiler::DriverOptions &options)
    : net_(std::move(net)),
      plan_(compiler::CompilerDriver(options).compilePlan(net_,
                                                          chip)),
      fingerprint_(fingerprintOf(net_, chip, options))
{
}

const compiler::CompiledNetwork &
CompiledModel::compiled() const
{
    sushi_assert(stageCount() == 1);
    return stageNet(0);
}

const compiler::ChipConfig &
CompiledModel::chip() const
{
    return plan_ ? plan_->chip : compiled_.chip;
}

int
CompiledModel::stageCount() const
{
    return plan_ ? plan_->numChips() : 1;
}

const compiler::CompiledNetwork &
CompiledModel::stageNet(int s) const
{
    if (plan_) {
        sushi_assert(s >= 0 && s < plan_->numChips());
        return plan_->stages[static_cast<std::size_t>(s)]->net;
    }
    sushi_assert(s == 0);
    return compiled_;
}

std::shared_ptr<const CompiledModel>
CompiledModel::compile(snn::BinarySnn net,
                       const compiler::ChipConfig &chip)
{
    return std::make_shared<CompiledModel>(Key{}, std::move(net),
                                           chip);
}

std::shared_ptr<const CompiledModel>
CompiledModel::compile(snn::BinarySnn net,
                       const compiler::ChipConfig &chip,
                       const compiler::DriverOptions &options)
{
    return std::make_shared<CompiledModel>(Key{}, std::move(net),
                                           chip, options);
}

std::shared_ptr<const CompiledModel>
ModelCache::get(const snn::BinarySnn &net,
                const compiler::ChipConfig &chip)
{
    const std::uint64_t key = CompiledModel::fingerprintOf(net, chip);
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(key);
        if (it != map_.end()) {
            ++hits_;
            lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
            return it->second.model;
        }
    }
    // Compile outside the lock: misses on distinct models may
    // proceed concurrently. A racing duplicate compile of the same
    // model is wasted work, not an error — first insert wins.
    auto model = CompiledModel::compile(net, chip);
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
    auto it = map_.find(key);
    if (it != map_.end()) {
        // A racer inserted while we compiled; keep its artifact.
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        return it->second.model;
    }
    lru_.push_front(key);
    map_.emplace(key, Entry{model, lru_.begin()});
    // The walk may evict the entry we just inserted (when every
    // older entry is pinned), so return the local handle rather
    // than reading back through the map.
    evictOverCapacityLocked();
    return model;
}

void
ModelCache::evictOverCapacityLocked()
{
    if (capacity_ == 0 || map_.size() <= capacity_)
        return;
    // Walk from least- to most-recently-used, skipping entries whose
    // model is pinned by an in-flight replica batch. Skipped entries
    // stay resident (the cache transiently exceeds capacity); the
    // walk is retried on the next insert / setCapacity call.
    std::size_t over = map_.size() - capacity_;
    for (auto it = std::prev(lru_.end()); over > 0;) {
        const bool at_front = it == lru_.begin();
        const auto toward_front =
            at_front ? lru_.end() : std::prev(it);
        auto entry = map_.find(*it);
        if (entry->second.model->pinCount() > 0) {
            ++evictions_deferred_;
        } else {
            ++evictions_;
            map_.erase(entry);
            lru_.erase(it);
            --over;
        }
        if (at_front)
            break;
        it = toward_front;
    }
}

std::size_t
ModelCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

std::uint64_t
ModelCache::hits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
}

std::uint64_t
ModelCache::misses() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
}

std::uint64_t
ModelCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
}

std::uint64_t
ModelCache::evictionsDeferred() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_deferred_;
}

std::size_t
ModelCache::pinned() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto &[key, entry] : map_)
        n += entry.model->pinCount() > 0 ? 1 : 0;
    return n;
}

std::size_t
ModelCache::capacity() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_;
}

void
ModelCache::setCapacity(std::size_t cap)
{
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = cap;
    evictOverCapacityLocked();
}

void
ModelCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    lru_.clear();
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
    evictions_deferred_ = 0;
}

ModelCache &
ModelCache::shared()
{
    static ModelCache cache;
    return cache;
}

} // namespace sushi::engine
