/**
 * @file
 * Batched multi-chip inference: a pool of SushiChip replicas serving
 * a sharded dataset.
 *
 * The engine models the production deployment the ROADMAP aims at —
 * many chips behind one dispatcher — while staying bit-faithful to
 * the single-chip semantics: every sample's result is identical to
 * running it alone on one chip, and the merged statistics are
 * byte-identical regardless of worker-thread count.
 *
 * Determinism contract:
 *  - The shard plan is a pure function of (sample count, active
 *    replica set, shard_block); worker threads only execute it.
 *  - Each replica resets its statistics before every sample, so a
 *    sample's stats delta is independent of its position in the
 *    shard, and the merge (in sample-index order) is byte-identical
 *    across thread counts AND across replica counts.
 *  - Degraded replicas (failed NPEs, PR 1's fault model) are drained
 *    by default: they receive no shard and their work is
 *    redistributed across healthy replicas. Behavioural results are
 *    bit-identical either way; draining avoids the degraded-mode
 *    time and reload surcharges.
 */

#ifndef SUSHI_ENGINE_INFERENCE_ENGINE_HH
#define SUSHI_ENGINE_INFERENCE_ENGINE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "chip/sushi_chip.hh"
#include "engine/compiled_model.hh"
#include "noc/transport.hh"
#include "snn/tensor.hh"

namespace sushi::engine {

/** One inference request: binary input frames, one per time step. */
using Sample = std::vector<std::vector<std::uint8_t>>;

/** Engine knobs. */
struct EngineConfig
{
    /** Chip replicas in the pool; 0 selects parallelWorkers(). */
    int replicas = 0;

    /** Samples per round-robin shard block: sample i goes to active
     *  replica (i / shard_block) mod active_count. */
    std::size_t shard_block = 8;

    /** Cap on worker threads driving the replicas (0 = pool size).
     *  Results are byte-identical for every value; used by the
     *  determinism tests and bench. */
    unsigned max_threads = 0;

    /** Exclude degraded replicas from the shard plan. */
    bool drain_degraded = true;

    /** Worker threads inside each replica's neuron-evaluation loop
     *  (SushiChip::setSimThreads; <= 1 keeps replicas sequential).
     *  Orthogonal to max_threads, and — like it — byte-identical
     *  results at every setting. Not part of the model fingerprint:
     *  a host execution knob, not a chip property. */
    int sim_threads = 0;

    /** Replica kernel selection (SushiChip::setPackedKernels):
     *  -1 follows the process-wide snn::packed toggle, 0 forces the
     *  Npe-object oracle, 1 forces the closed-form fast kernel.
     *  Results and stats are bit-identical at every setting — like
     *  sim_threads, a host knob, not a chip property. */
    int packed_kernels = -1;

    /** Modelled NoC transport for multi-chip plan cuts (noc.enabled;
     *  off by default — the ideal zero-cost transport stays
     *  bit-identical to the historical path). With it on, spike
     *  results are still bit-identical to the ideal transport (the
     *  fabric never touches the payload); only latency and the
     *  noc_* counters in InferenceStats change. Ignored by
     *  single-stage plans. A host modelling knob, not part of the
     *  model fingerprint. */
    noc::NocConfig noc;
};

/** Per-sample inference outcome. */
struct SampleResult
{
    std::vector<int> counts; ///< output pulse counts per label
    int prediction = -1;     ///< argmax label (first on ties)
};

/** Result of a partial batch run on one replica (the serving
 *  layer's entry point). */
struct ReplicaRun
{
    std::vector<SampleResult> results;        ///< one per sample
    std::vector<chip::InferenceStats> per_sample; ///< stats deltas
};

/**
 * Per-replica error/latency account — the raw health signal the
 * serving layer's failure detector reads. The engine only records
 * what happened (the serving layer tells it batch outcomes via
 * recordBatchOutcome); detection thresholds and quarantine decisions
 * live in serve::HealthPolicy.
 */
struct ReplicaAccount
{
    std::uint64_t batches = 0;  ///< dispatches recorded
    std::uint64_t samples = 0;  ///< requests in successful batches
    std::uint64_t failures = 0; ///< failed dispatches
    std::uint64_t consecutive_failures = 0; ///< since last success
    std::int64_t service_ns_total = 0; ///< summed batch service time
    std::int64_t last_service_ns = 0;  ///< most recent batch
    std::uint64_t failed_npes = 0; ///< chip failed-slot gauge

    /** Mean service per recorded batch (0 if none). */
    double meanServiceNs() const
    {
        return batches == 0 ? 0.0
                            : static_cast<double>(service_ns_total) /
                                  static_cast<double>(batches);
    }
};

/** One completed batch. */
struct EngineRun
{
    std::vector<SampleResult> samples;

    /** Deterministic merge of per-sample stats in sample order. */
    chip::InferenceStats merged;

    /** Per-replica totals (index = replica id; drained replicas stay
     *  zero). */
    std::vector<chip::InferenceStats> per_replica;

    /** Replica that served each sample. */
    std::vector<int> shard_of;

    /** Replicas that actually received work. */
    int active_replicas = 0;

    /** Host wall-clock seconds spent in run(). */
    double wall_seconds = 0.0;

    /**
     * Modelled hardware makespan: the replicas run concurrently as
     * physical chips, so batch latency is the slowest replica's
     * modelled chip time.
     */
    double modeledMakespanPs() const;
};

/**
 * The batched multi-chip inference service.
 *
 * Each *replica* is a group of stageCount() chips: one chip per
 * stage of the model's (multi-chip) plan, chained per time step
 * through the inter-chip activation cut. Legacy single-chip models
 * keep exactly one chip per replica and the historical execution
 * path, bit for bit.
 */
class InferenceEngine
{
  public:
    explicit InferenceEngine(
        std::shared_ptr<const CompiledModel> model,
        const EngineConfig &cfg = {});

    const EngineConfig &config() const { return cfg_; }
    const CompiledModel &model() const { return *model_; }
    int replicas() const
    {
        return static_cast<int>(chips_.size()) / stages_;
    }

    /** Chips per replica group (the plan's stage count). */
    int stagesPerReplica() const { return stages_; }

    /** True when multi-chip cut traffic rides the modelled NoC
     *  fabric instead of the ideal transport. */
    bool nocEnabled() const { return !noc_.empty(); }

    /** The NoC transport of replica @p replica (placement, topology
     *  and fabric counters for tests/benches); asserts nocEnabled().
     */
    const noc::NocTransport &nocTransport(int replica) const;

    /** Mark output-NPE @p slot of replica @p replica failed (the
     *  PR 1 degraded mode). Serialized against any batch running on
     *  the same replica: the mark waits for the batch to finish, so
     *  a concurrent degrade lands on a batch boundary and never
     *  races the chip's remap plan mid-inference. */
    void markReplicaDegraded(int replica, int slot);

    /** Restore replica @p replica to full health (same batch-
     *  boundary serialization as markReplicaDegraded). */
    void healReplica(int replica);

    /** True if the replica currently has failed NPE slots. */
    bool replicaDegraded(int replica) const;

    /** Current failed output-NPE slots of @p replica (the gauge the
     *  serving layer surfaces per replica in ServerMetrics). */
    int failedNpeSlots(int replica) const;

    /** Output-NPE slots per replica (valid chaos degrade targets). */
    int npeSlots() const;

    /** Record the outcome of one dispatched batch into the per-
     *  replica account (called by the serving layer; run() records
     *  its own shards). Thread-safe. */
    void recordBatchOutcome(int replica, bool ok,
                            std::int64_t service_ns,
                            std::size_t samples);

    /** Snapshot of replica @p replica's account (failed_npes is
     *  refreshed from the chip at snapshot time). Thread-safe. */
    ReplicaAccount replicaAccount(int replica) const;

    /** Reset @p replica's consecutive-failure streak (after the
     *  serving layer readmits it). Thread-safe. */
    void clearReplicaStreak(int replica);

    /** Run one batch. Deterministic per the contract above. */
    EngineRun run(const std::vector<Sample> &samples);

    /**
     * Run @p count samples back to back on replica @p replica — the
     * batch-of-one / partial-batch entry point the serving layer's
     * dynamic batcher schedules through (run() shards onto it too).
     * Stats are captured per sample from a reset chip, so every
     * result and stats delta is bit-identical to running that sample
     * alone through a fresh SushiChip. Thread-safe for concurrent
     * calls on *distinct* replicas; a replica is not reentrant.
     */
    ReplicaRun runOnReplica(int replica, const Sample *const *samples,
                            std::size_t count);

    /** Convenience overload over a contiguous vector. */
    ReplicaRun runOnReplica(int replica,
                            const std::vector<Sample> &samples);

  private:
    /** Chip @p stage of replica group @p replica. */
    chip::SushiChip &chipAt(int replica, int stage) const
    {
        return *chips_[static_cast<std::size_t>(replica * stages_ +
                                                stage)];
    }

    std::shared_ptr<const CompiledModel> model_;
    EngineConfig cfg_;
    int stages_ = 1;
    /** Replica-major: chip s of group r at index r * stages_ + s. */
    std::vector<std::unique_ptr<chip::SushiChip>> chips_;

    /** Per-replica NoC transport (empty when the ideal transport is
     *  active); guarded by the same replica lock as the chips. */
    std::vector<std::unique_ptr<noc::NocTransport>> noc_;

    /** One lock per replica group: held for the whole of
     *  runOnReplica and by the degrade/heal mutators, so health
     *  mutations land on batch boundaries. */
    mutable std::vector<std::unique_ptr<std::mutex>> chip_mu_;

    mutable std::mutex accounts_mu_;
    std::vector<ReplicaAccount> accounts_;
};

/**
 * Poisson-encode a batch of images into engine samples. Each sample
 * is encoded from an independent RNG stream derived from (seed,
 * sample index), so the encoding of sample i never depends on batch
 * size or order.
 */
std::vector<Sample> encodeSamples(const snn::Tensor &images,
                                  int t_steps, std::uint64_t seed);

/**
 * Byte-deterministic JSON rendering of an InferenceStats record
 * (doubles at full precision): equal stats give equal strings, so
 * determinism tests compare bytes.
 */
std::string statsJson(const chip::InferenceStats &stats);

} // namespace sushi::engine

#endif // SUSHI_ENGINE_INFERENCE_ENGINE_HH
