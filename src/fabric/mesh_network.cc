#include "fabric/mesh_network.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sushi::fabric {

int
wMaxForN(int n)
{
    sushi_assert(n >= 1);
    // Calibrated: w_max * n is held near the neuron state budget.
    return std::clamp(64 / n, 3, 16);
}

MeshGate::MeshGate(sfq::Netlist &net, const MeshConfig &cfg) : cfg_(cfg)
{
    sushi_assert(cfg.n >= 1);
    const int n = cfg.n;
    const int w_max = cfg_.effectiveWMax();

    npe::NpeGate::Options in_opts;
    in_opts.link_stages = cfg.link_stages;
    in_opts.external_out = true; // out drives the row line

    npe::NpeGate::Options out_opts;
    out_opts.link_stages = cfg.link_stages;
    out_opts.external_in = true; // in is fed by the column merge
    out_opts.external_out = true; // out drives the SFQ/DC pad

    for (int i = 0; i < n; ++i) {
        in_npes_.push_back(std::make_unique<npe::NpeGate>(
            net, "in_npe" + std::to_string(i), cfg.sc_per_npe,
            in_opts));
        out_npes_.push_back(std::make_unique<npe::NpeGate>(
            net, "out_npe" + std::to_string(i), cfg.sc_per_npe,
            out_opts));
    }

    // Crosspoint weight structures.
    synapses_.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            synapses_[static_cast<std::size_t>(i)].push_back(
                std::make_unique<WeightStructureGate>(
                    net,
                    "syn" + std::to_string(i) + "_" +
                        std::to_string(j),
                    w_max));
        }
    }

    // Row distribution: input NPE i's spike fans out to every
    // crosspoint on row i. Row hops get longer further from the NPE;
    // row_stages is the per-hop cost.
    for (int i = 0; i < n; ++i) {
        std::vector<std::pair<sfq::Component *, int>> dsts;
        for (int j = 0; j < n; ++j) {
            auto &syn = synapse(i, j);
            dsts.emplace_back(&syn.inPort(), syn.inChan());
        }
        if (n == 1) {
            inputNpe(i).connectOut(*dsts[0].first, dsts[0].second,
                                   cfg.row_stages);
        } else {
            // Fan out through an SPL tree rooted at the NPE output.
            sfq::Spl &root = net.makeSpl("row" + std::to_string(i) +
                                         ".root");
            inputNpe(i).connectOut(root, 0, cfg.row_stages);
            const std::size_t mid = dsts.size() / 2;
            std::vector<std::pair<sfq::Component *, int>> lo(
                dsts.begin(), dsts.begin() + mid);
            std::vector<std::pair<sfq::Component *, int>> hi(
                dsts.begin() + mid, dsts.end());
            net.fanout("row" + std::to_string(i) + ".l", root, 0, lo,
                       cfg.row_stages);
            net.fanout("row" + std::to_string(i) + ".r", root, 1, hi,
                       cfg.row_stages);
        }
    }

    // Column merge: crosspoint outputs on column j merge into output
    // NPE j's chain input.
    for (int j = 0; j < n; ++j) {
        std::vector<std::pair<sfq::Component *, int>> srcs;
        for (int i = 0; i < n; ++i) {
            // Park each crosspoint output on a JTL so the merge tree
            // can treat all sources uniformly.
            sfq::Jtl &pad = net.makeJtl("col" + std::to_string(j) +
                                        ".pad" + std::to_string(i));
            synapse(i, j).connectOut(pad, 0, cfg.col_stages);
            srcs.emplace_back(&pad, 0);
        }
        net.mergeTree("col" + std::to_string(j), srcs,
                      outputNpe(j).inPort(), outputNpe(j).inChan(),
                      cfg.col_stages);
    }

    // Output drivers: SFQ/DC converters, the oscilloscope interface.
    for (int j = 0; j < n; ++j) {
        sfq::SfqDc &drv = net.makeSfqDc("drv" + std::to_string(j));
        outputNpe(j).connectOut(drv, 0, cfg.col_stages);
        drivers_.push_back(&drv);
    }

    // Line-crossing overhead: each crosspoint crosses the column line
    // over the row line (Sec. 4.2.2: twice the width of the original
    // transmission line).
    net.addWiringOverhead(cfg.crossing_jjs * n * n);
}

void
MeshGate::injectInput(int i, Tick when)
{
    inputNpe(i).injectIn(when);
}

Tick
MeshGate::configureWeights(
    const std::vector<std::vector<int>> &strengths, Tick start,
    Tick spacing)
{
    sushi_assert(static_cast<int>(strengths.size()) == cfg_.n);
    Tick done = start;
    for (int i = 0; i < cfg_.n; ++i) {
        sushi_assert(static_cast<int>(strengths[i].size()) == cfg_.n);
        for (int j = 0; j < cfg_.n; ++j) {
            // Parallel per synapse: each starts at `start`.
            const Tick t = synapse(i, j).configure(
                strengths[static_cast<std::size_t>(i)]
                         [static_cast<std::size_t>(j)],
                start, spacing);
            done = std::max(done, t);
        }
    }
    return done;
}

} // namespace sushi::fabric
