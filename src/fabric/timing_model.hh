/**
 * @file
 * Timing and throughput model of SUSHI, paper Sec. 6.3.
 *
 * Per-synaptic-operation time decomposes into a logic term (the cell
 * delays along the synapse -> NPE critical path, derived from the
 * library) and a transmission term that grows with the network
 * dimension (longer lines in bigger dies). The paper reports the
 * transmission share at ~6 % for the 1x1 design and ~53 % for the
 * 16x16 design; the peak throughput of the 16x16 mesh (256 synapses
 * operating in parallel) is 1,355 GSOPS.
 */

#ifndef SUSHI_FABRIC_TIMING_MODEL_HH
#define SUSHI_FABRIC_TIMING_MODEL_HH

#include "common/time.hh"
#include "fabric/mesh_network.hh"

namespace sushi::fabric {

/**
 * Cell-delay sum along the synaptic critical path: series switch
 * NDRO, the weight structure's split/merge chain, the column merge
 * depth and one SC hop of the destination NPE. Independent of die
 * size (that part is transmissionDelayPs).
 */
double synapseLogicDelayPs(const MeshConfig &cfg);

/**
 * Transmission-line delay per pulse for an N x N mesh: line length
 * scales with the die dimension. Calibrated so the transmission
 * share matches Sec. 6.3 (~6 % at 1x1, ~53 % at 16x16).
 */
double transmissionDelayPs(int n);

/** Total per-pulse processing time, logic + transmission. */
double pulseTimePs(const MeshConfig &cfg);

/** Fraction of pulseTimePs spent on transmission (Sec. 6.3). */
double transmissionShare(const MeshConfig &cfg);

/**
 * Peak synaptic throughput of an N x N mesh in GSOPS: all N^2
 * synapses processing back-to-back pulses.
 */
double peakGsops(const MeshConfig &cfg);

/**
 * Average share of inference wall-time spent on weight reloading
 * under the bucketed schedule (Sec. 4.2.2 reports ~20 % on average).
 * @param reload_events   weight reload pulse batches per time step
 * @param pulses_per_step input pulses processed per time step
 */
double reloadTimeShare(long reload_events, long pulses_per_step);

} // namespace sushi::fabric

#endif // SUSHI_FABRIC_TIMING_MODEL_HH
