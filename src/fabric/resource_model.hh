/**
 * @file
 * Resource (JJ / area) model of SUSHI designs, paper Sec. 4.3.
 *
 * Resources are counted by *building the actual gate-level netlist*
 * of the design and tallying its cells — not by closed-form guesses —
 * so the numbers stay consistent with the simulated design by
 * construction. The wiring-stage parameters and the layout-density
 * function are the calibrated constants (documented below and in
 * DESIGN.md Sec. 4.3), fit against the paper's aggregate anchors:
 *
 *   Table 2: 4x4 mesh (8 NPEs)  -> 45,542 JJs, 44.73 mm^2,
 *            68.13 % wiring / 31.87 % logic
 *   Table 4: 16x16 mesh (32 NPEs) -> 99,982 JJs, 103.75 mm^2
 *   Fig. 13: JJ and area growth from 2 to 32 NPEs
 */

#ifndef SUSHI_FABRIC_RESOURCE_MODEL_HH
#define SUSHI_FABRIC_RESOURCE_MODEL_HH

#include <vector>

#include "fabric/mesh_network.hh"
#include "sfq/netlist.hh"

namespace sushi::fabric {

/** One row of the Fig. 13 scaling study. */
struct DesignPoint
{
    int npes;          ///< 2N neurons
    int n;             ///< N x N mesh
    long total_jjs;
    long logic_jjs;
    long wiring_jjs;
    double area_mm2;
    double wiring_fraction;
};

/**
 * Mesh configuration used for the scaling studies at network size
 * @p n (the calibrated defaults plus the auto w_max rule).
 */
MeshConfig scalingMeshConfig(int n);

/** Build the mesh netlist for @p cfg and tally its resources. */
sfq::ResourceTally meshResources(const MeshConfig &cfg);

/**
 * Chip area for a design of @p total_jjs JJs at network size @p n.
 * Layout density decreases slightly with scale (longer lines, more
 * crossings spread the floorplan): calibrated affine density fit to
 * the Table 2 and Table 4 area anchors.
 */
double designAreaMm2(long total_jjs, int n);

/** Full design point (resources + area) for a mesh of size @p n. */
DesignPoint designPoint(int n);

/**
 * The Fig. 13 sweep: design points for 2, 4, 8, 16, 32 NPEs
 * (network sizes 1, 2, 4, 8, 16).
 */
std::vector<DesignPoint> fig13Sweep();

/** Paper anchor values, for benches to print alongside. */
namespace paper {
constexpr long kTable2TotalJjs = 45542;
constexpr long kTable2WiringJjs = 31026;
constexpr long kTable2LogicJjs = 14516;
constexpr double kTable2AreaMm2 = 44.73;
constexpr long kPeakJjs = 99982;
constexpr double kPeakAreaMm2 = 103.75;
} // namespace paper

} // namespace sushi::fabric

#endif // SUSHI_FABRIC_RESOURCE_MODEL_HH
