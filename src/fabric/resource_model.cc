#include "fabric/resource_model.hh"

#include "common/logging.hh"
#include "sfq/simulator.hh"

namespace sushi::fabric {

MeshConfig
scalingMeshConfig(int n)
{
    MeshConfig cfg;
    cfg.n = n;
    cfg.w_max = 0; // auto: wMaxForN
    // Wiring hops lengthen with the die: calibrated affine growth.
    cfg.row_stages = 2 + n / 4;
    cfg.col_stages = 2 + n / 4;
    cfg.crossing_jjs = 4;
    return cfg;
}

sfq::ResourceTally
meshResources(const MeshConfig &cfg)
{
    sfq::Simulator sim;
    sfq::Netlist net(sim);
    MeshGate mesh(net, cfg);
    return net.resources();
}

double
designAreaMm2(long total_jjs, int n)
{
    // Density fit: mm^2 per JJ = a0 + a1 * n (Table 2 / Table 4
    // anchors give 0.982e-3 at n=4 and 1.0377e-3 at n=16).
    const double a0 = 0.9634e-3;
    const double a1 = 0.00464e-3;
    return static_cast<double>(total_jjs) * (a0 + a1 * n);
}

DesignPoint
designPoint(int n)
{
    const MeshConfig cfg = scalingMeshConfig(n);
    const sfq::ResourceTally r = meshResources(cfg);
    DesignPoint p;
    p.npes = cfg.numNpes();
    p.n = n;
    p.total_jjs = r.totalJjs();
    p.logic_jjs = r.logic_jjs;
    p.wiring_jjs = r.wiring_jjs;
    p.area_mm2 = designAreaMm2(r.totalJjs(), n);
    p.wiring_fraction = r.wiringFraction();
    return p;
}

std::vector<DesignPoint>
fig13Sweep()
{
    std::vector<DesignPoint> points;
    for (int n : {1, 2, 4, 8, 16})
        points.push_back(designPoint(n));
    return points;
}

} // namespace sushi::fabric
