/**
 * @file
 * The mesh on-chip network of NPEs, paper Sec. 4.2.2 / Fig. 11(c).
 *
 * An N x N mesh is a bipartite crossbar: N input NPEs drive N row
 * lines; N output NPEs hang off N column lines; each of the N^2
 * crosspoints carries a configurable weight structure behind an NDRO
 * switch, so arbitrary connections (and per-pair weights) can be
 * programmed. Per Sec. 6.3, an N x N network holds 2N neurons and
 * N^2 synapses.
 *
 * Crossings between row and column transmission lines cost twice the
 * width of the original line (Sec. 4.2.2); the builder accounts that
 * as per-crosspoint wiring overhead.
 */

#ifndef SUSHI_FABRIC_MESH_NETWORK_HH
#define SUSHI_FABRIC_MESH_NETWORK_HH

#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "fabric/weight_structure.hh"
#include "npe/npe.hh"
#include "sfq/netlist.hh"

namespace sushi::fabric {

/**
 * The calibrated maximum weight strength for an N x N mesh. Larger
 * networks use smaller pulse-gain structures: the per-neuron pulse
 * influx is bounded by the NPE's state budget (2^K states across N
 * synapses), and the staggered delay wiring of a high-gain structure
 * is quadratic in the gain. Calibrated against Table 2 / Table 4.
 */
int wMaxForN(int n);

/** Geometry and wiring parameters of a mesh build. */
struct MeshConfig
{
    /** Network size: N x N crosspoints, 2N NPEs. */
    int n = 2;
    /** SCs per NPE (2^k neuron states). */
    int sc_per_npe = 10;
    /** Max weight strength; 0 selects wMaxForN(n). */
    int w_max = 0;
    /** JTL stages per SC-SC serial link. */
    int link_stages = 1;
    /** JTL stages per row-distribution hop. */
    int row_stages = 3;
    /** JTL stages per column-merge hop. */
    int col_stages = 3;
    /** Wiring JJs charged per line crossing at a crosspoint. */
    int crossing_jjs = 4;

    /** Effective w_max after the auto rule. */
    int effectiveWMax() const { return w_max ? w_max : wMaxForN(n); }

    /** Neurons in the network (2N). */
    int numNpes() const { return 2 * n; }

    /** Synapses in the network (N^2). */
    long numSynapses() const { return static_cast<long>(n) * n; }
};

/**
 * Gate-level mesh: full cell netlist, usable both for resource
 * accounting (any N) and for event-driven simulation (small N).
 */
class MeshGate
{
  public:
    MeshGate(sfq::Netlist &net, const MeshConfig &cfg);

    const MeshConfig &config() const { return cfg_; }

    /** Input-side NPE @p i (drives row i). */
    npe::NpeGate &inputNpe(int i) { return *in_npes_[checkN(i)]; }

    /** Output-side NPE @p j (fed by column j). */
    npe::NpeGate &outputNpe(int j) { return *out_npes_[checkN(j)]; }

    /** Weight structure at crosspoint (row @p i, column @p j). */
    WeightStructureGate &synapse(int i, int j)
    {
        return *synapses_[checkN(i)][checkN(j)];
    }

    /** Output driver (SFQ/DC) observing output NPE @p j's spikes. */
    sfq::SfqDc &outputDriver(int j) { return *drivers_[checkN(j)]; }

    /** Inject an external input pulse into input NPE @p i. */
    void injectInput(int i, Tick when);

    /**
     * Program all crosspoint strengths ([i][j], 0..w_max). Weight
     * reloading is parallel per synapse (Sec. 4.2.2), so the elapsed
     * time is the *maximum* over synapses, not the sum.
     * @return the time after which inference pulses may start.
     */
    Tick configureWeights(const std::vector<std::vector<int>> &strengths,
                          Tick start, Tick spacing);

  private:
    std::size_t
    checkN(int i) const
    {
        sushi_assert(i >= 0 && i < cfg_.n);
        return static_cast<std::size_t>(i);
    }

    MeshConfig cfg_;
    std::vector<std::unique_ptr<npe::NpeGate>> in_npes_;
    std::vector<std::unique_ptr<npe::NpeGate>> out_npes_;
    std::vector<std::vector<std::unique_ptr<WeightStructureGate>>>
        synapses_;
    std::vector<sfq::SfqDc *> drivers_;
};

} // namespace sushi::fabric

#endif // SUSHI_FABRIC_MESH_NETWORK_HH
