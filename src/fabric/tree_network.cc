#include "fabric/tree_network.hh"

#include "common/logging.hh"
#include "fabric/weight_structure.hh"

namespace sushi::fabric {

TreeGate::TreeGate(sfq::Netlist &net, const TreeConfig &cfg) : cfg_(cfg)
{
    sushi_assert(cfg.leaves >= 1);
    sushi_assert(cfg.leaf_gain >= 1);

    npe::NpeGate::Options leaf_opts;
    leaf_opts.link_stages = cfg.link_stages;
    leaf_opts.external_out = true;

    npe::NpeGate::Options root_opts;
    root_opts.link_stages = cfg.link_stages;
    root_opts.external_in = true;
    root_opts.external_out = true;

    for (int i = 0; i < cfg.leaves; ++i) {
        leaf_npes_.push_back(std::make_unique<npe::NpeGate>(
            net, "leaf" + std::to_string(i), cfg.sc_per_npe,
            leaf_opts));
    }
    root_npe_ = std::make_unique<npe::NpeGate>(net, "root",
                                               cfg.sc_per_npe,
                                               root_opts);

    // Each leaf output passes a fixed gain chain (one SPL+CB loop per
    // doubling, Fig. 10(a)) then joins the CB reduction tree.
    std::vector<std::pair<sfq::Component *, int>> srcs;
    for (int i = 0; i < cfg.leaves; ++i) {
        sfq::Component *src = nullptr;
        int src_port = 0;
        int gain = 1;
        int loop = 0;
        sfq::Jtl &pad =
            net.makeJtl("leaf" + std::to_string(i) + ".pad");
        leaf_npes_[static_cast<std::size_t>(i)]->connectOut(
            pad, 0, cfg.hop_stages);
        src = &pad;
        while (gain * 2 <= cfg.leaf_gain) {
            const std::string base = "leaf" + std::to_string(i) +
                                     ".gain" + std::to_string(loop);
            sfq::Spl &spl = net.makeSpl(base + ".spl");
            sfq::Cb &cb = net.makeCb(base + ".cb");
            net.connectWire(*src, src_port, spl, 0);
            net.connectWire(spl, 0, cb, 0);
            // The loop branch re-converges after a staggered delay
            // (Fig. 10(a)); stagger grows with the loop index so the
            // doubled pulse bursts stay clear of the CB constraints.
            net.connectWire(spl, 1, cb, 1,
                            kTapDelayStages * (loop + 1));
            src = &cb;
            src_port = 0;
            gain *= 2;
            ++loop;
        }
        srcs.emplace_back(src, src_port);
    }
    net.mergeTree("tree", srcs, root_npe_->inPort(),
                  root_npe_->inChan(), cfg.hop_stages);

    driver_ = &net.makeSfqDc("drv");
    root_npe_->connectOut(*driver_, 0, cfg.hop_stages);
}

npe::NpeGate &
TreeGate::inputNpe(int i)
{
    sushi_assert(i >= 0 && i < cfg_.leaves);
    return *leaf_npes_[static_cast<std::size_t>(i)];
}

void
TreeGate::injectInput(int i, Tick when)
{
    inputNpe(i).injectIn(when);
}

} // namespace sushi::fabric
