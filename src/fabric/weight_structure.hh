/**
 * @file
 * Pulse-gain weight structures, paper Sec. 4.2.1 / Fig. 10.
 *
 * Weights are encoded as pulse counts: an input pulse entering a
 * weight structure of strength w leaves as w pulses. The structure is
 * a main through-path plus (w_max - 1) gain taps; each tap splits the
 * pulse off the main line (SPL), gates it with a configurable NDRO
 * (Fig. 10(b)) and merges it back (CB) after a staggered JTL delay
 * long enough to honour the CB input constraints of Table 1.
 *
 * The staggered delay lines are the dominant wiring cost of a
 * high-gain structure: tap i needs ~i * kTapDelayStages JTL stages,
 * so wiring grows quadratically in w_max. This is why SUSHI scales
 * w_max down as the network grows (the neuron's state budget bounds
 * the per-neuron pulse influx anyway) — see fabric/resource_model.
 *
 * The tap delay lines are balanced against the split/merge chain so
 * that a fully-armed structure of ANY gain in [1, 16] produces
 * constraint-clean merged pulse trains (verified gate-level under
 * the fatal policy in tests/test_fabric.cc).
 */

#ifndef SUSHI_FABRIC_WEIGHT_STRUCTURE_HH
#define SUSHI_FABRIC_WEIGHT_STRUCTURE_HH

#include <string>
#include <vector>

#include "sfq/netlist.hh"

namespace sushi::fabric {

/** Default JTL stages per tap-delay increment (25 ps > 19.9 ps). */
constexpr int kTapDelayStages = 7;

/**
 * Behavioural weight structure: strength and an on/off switch.
 * process() turns one input pulse into `strength` output pulses.
 */
class WeightStructure
{
  public:
    /** @param w_max largest configurable strength (>= 1). */
    explicit WeightStructure(int w_max);

    /** Largest configurable strength. */
    int wMax() const { return w_max_; }

    /**
     * Configure the strength (0 disables the synapse entirely, as if
     * the series NDRO switch were left clear). Counts a reload if the
     * value actually changes.
     */
    void configure(int strength);

    /** Current strength. */
    int strength() const { return strength_; }

    /** Number of configure() calls that changed the value. */
    long reloads() const { return reloads_; }

    /**
     * Process one input pulse.
     * @return the number of output pulses (= strength).
     */
    int process() const { return strength_; }

  private:
    int w_max_;
    int strength_ = 1;
    long reloads_ = 0;
};

/**
 * Gate-level weight structure (Fig. 10(c)).
 *
 * Ports: one pulse input, one pulse output, plus configuration
 * channels — a series switch NDRO and one NDRO per gain tap. The
 * strength is (switch armed ? 1 + #armed taps : 0).
 */
class WeightStructureGate
{
  public:
    WeightStructureGate(sfq::Netlist &net, const std::string &name,
                        int w_max);

    int wMax() const { return w_max_; }

    /** The pulse input port (the series switch NDRO). */
    sfq::Component &inPort();
    /** Channel on inPort() that pulses enter through (NDRO clk). */
    int inChan() const { return sfq::chan::kNdroClk; }

    /** Connect the pulse output onward. */
    void connectOut(sfq::Component &dst, int port, int jtl_stages = 0);

    /**
     * Emit the configuration pulse train that sets the strength:
     * a reset of all config NDROs followed by din pulses arming the
     * switch and (strength - 1) taps. Returns the time after the last
     * configuration pulse.
     */
    Tick configure(int strength, Tick start, Tick spacing);

    /** Decoded current strength from the NDRO states. */
    int strength() const;

    /** Inject a clear pulse into the series switch NDRO (one of the
     *  pulses a Channel::SynRst program op expands to). */
    void injectSwitchClear(Tick when);

    /** Inject an arm pulse into the series switch NDRO. */
    void injectSwitchArm(Tick when);

  private:
    int w_max_;
    sfq::Ndro *switch_ndro_;
    sfq::Spl *in_spl_ = nullptr;       // only when w_max > 1
    std::vector<sfq::Spl *> tap_spls_;
    std::vector<sfq::Ndro *> tap_ndros_;
    std::vector<sfq::Cb *> tap_cbs_;
    sfq::Component *out_cell_;
    int out_port_;
};

/**
 * Logic JJs of one weight structure of the given w_max (switch NDRO,
 * per-tap SPL + NDRO + CB, and the per-synapse polarity/config pair).
 */
long weightStructureLogicJjs(int w_max);

/** Wiring JJs of the staggered tap delay lines (quadratic in w_max). */
long weightStructureWiringJjs(int w_max);

} // namespace sushi::fabric

#endif // SUSHI_FABRIC_WEIGHT_STRUCTURE_HH
