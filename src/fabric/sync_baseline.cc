#include "fabric/sync_baseline.hh"

#include <cmath>

#include "common/logging.hh"
#include "fabric/resource_model.hh"
#include "sfq/cell_params.hh"

namespace sushi::fabric {

SyncDesign
synchronousCounterpart(long logic_jjs, long clocked_cells,
                       long data_wiring_jjs)
{
    sushi_assert(logic_jjs >= 0);
    sushi_assert(clocked_cells >= 0);
    using sfq::CellKind;
    const long spl = sfq::cellParams(CellKind::SPL).jjs;
    const long jtl = sfq::cellParams(CellKind::JTL).jjs;

    SyncDesign d;
    d.logic_jjs = logic_jjs;
    d.data_wiring_jjs = data_wiring_jjs;
    // Clock tree: one splitter per clocked cell (fan-out 1).
    d.clock_tree_jjs = clocked_cells > 0
                           ? (clocked_cells - 1) * spl
                           : 0;
    // Clock delivery: each cell's clock line averages ~6 JTL stages
    // from its tree leaf (typical RSFQ clock-follow routing).
    d.clock_line_jjs = clocked_cells * 6 * jtl;
    // Skew balancing: pulses are aligned "by extending the length of
    // transmission lines" — shallow branches are padded to the tree
    // depth. On average half the tree depth of padding per cell.
    const double depth =
        clocked_cells > 1 ? std::ceil(std::log2(clocked_cells))
                          : 0.0;
    d.balancing_jjs = static_cast<long>(
        clocked_cells * (depth * 0.5) * 3.0 * jtl);
    return d;
}

SyncDesign
synchronousMesh(int n)
{
    const MeshConfig cfg = scalingMeshConfig(n);
    const sfq::ResourceTally r = meshResources(cfg);
    // Count the cells that would need clocking in a synchronous
    // re-implementation: every storage/logic cell (NDRO, TFF, DFF,
    // CB) — splitters and JTLs stay unclocked.
    long clocked = 0;
    using sfq::CellKind;
    for (CellKind k : {CellKind::NDRO, CellKind::TFFL, CellKind::TFFR,
                       CellKind::DFF, CellKind::CB, CellKind::CB3}) {
        clocked +=
            r.cells_by_kind[static_cast<std::size_t>(k)];
    }
    return synchronousCounterpart(r.logic_jjs, clocked,
                                  r.wiring_jjs);
}

} // namespace sushi::fabric
