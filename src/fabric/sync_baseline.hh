/**
 * @file
 * Synchronous-timing baseline model (paper Sec. 3A / Sec. 4.1).
 *
 * Conventional RSFQ digital designs are synchronous: every clocked
 * cell needs its own clocking line, and because pulses must arrive
 * aligned, lines are *lengthened* (extra JTLs) to balance skew. The
 * paper's design experience: "the wiring overhead for synchronous
 * timing-based superconducting structures typically accounts for
 * about 80 % of the total design". SUSHI's contribution is removing
 * that clock network entirely; this model quantifies the comparison
 * by constructing the hypothetical synchronous implementation of the
 * same logic content and counting its clock-network JJs.
 */

#ifndef SUSHI_FABRIC_SYNC_BASELINE_HH
#define SUSHI_FABRIC_SYNC_BASELINE_HH

namespace sushi::fabric {

/** Resource estimate of a synchronous implementation. */
struct SyncDesign
{
    long logic_jjs;        ///< the functional cells (same as async)
    long data_wiring_jjs;  ///< data-path interconnect
    long clock_tree_jjs;   ///< clock splitter tree
    long clock_line_jjs;   ///< per-cell clock JTL lines
    long balancing_jjs;    ///< skew-balancing extensions

    long
    totalJjs() const
    {
        return logic_jjs + data_wiring_jjs + clock_tree_jjs +
               clock_line_jjs + balancing_jjs;
    }

    long
    wiringJjs() const
    {
        return data_wiring_jjs + clock_tree_jjs + clock_line_jjs +
               balancing_jjs;
    }

    double
    wiringFraction() const
    {
        return static_cast<double>(wiringJjs()) /
               static_cast<double>(totalJjs());
    }
};

/**
 * Build the synchronous counterpart of a design with the given logic
 * content.
 * @param logic_jjs        functional-cell JJs of the design
 * @param clocked_cells    number of cells that would need a clock
 * @param data_wiring_jjs  the design's data-path wiring JJs
 */
SyncDesign synchronousCounterpart(long logic_jjs, long clocked_cells,
                                  long data_wiring_jjs);

/**
 * The synchronous counterpart of the SUSHI N x N mesh: same logic
 * and data wiring, plus the clock network its cells would need.
 */
SyncDesign synchronousMesh(int n);

} // namespace sushi::fabric

#endif // SUSHI_FABRIC_SYNC_BASELINE_HH
