/**
 * @file
 * The tree on-chip network, paper Sec. 4.2.2 / Fig. 11(a).
 *
 * The tree network merges N input NPEs onto one output NPE through a
 * CB reduction tree, with fixed pulse-gain stages providing "simple
 * distinctions of normalized weights" (an input at tree level d can
 * be given gain 2^g by non-configurable splitter loops). It cannot
 * express arbitrary connections, but it maximises SPL/CB utilisation
 * and avoids line crossings, so its resource footprint is far below
 * the mesh — the trade-off quantified in bench_table2_resources.
 */

#ifndef SUSHI_FABRIC_TREE_NETWORK_HH
#define SUSHI_FABRIC_TREE_NETWORK_HH

#include <memory>
#include <string>
#include <vector>

#include "npe/npe.hh"
#include "sfq/netlist.hh"

namespace sushi::fabric {

/** Geometry of a tree network build. */
struct TreeConfig
{
    /** Number of input NPEs (leaves). */
    int leaves = 4;
    /** SCs per NPE. */
    int sc_per_npe = 10;
    /** Fixed pulse gain applied at every leaf (>= 1, power of two
     *  gains realised by cascaded SPL/CB loops). */
    int leaf_gain = 1;
    /** JTL stages per tree hop. */
    int hop_stages = 2;
    /** JTL stages per SC-SC serial link. */
    int link_stages = 1;
};

/** Gate-level tree network. */
class TreeGate
{
  public:
    TreeGate(sfq::Netlist &net, const TreeConfig &cfg);

    const TreeConfig &config() const { return cfg_; }

    /** Leaf (input) NPE @p i. */
    npe::NpeGate &inputNpe(int i);

    /** The root (output) NPE. */
    npe::NpeGate &outputNpe() { return *root_npe_; }

    /** Output driver observing the root NPE's spikes. */
    sfq::SfqDc &outputDriver() { return *driver_; }

    /** Inject an external input pulse into leaf @p i. */
    void injectInput(int i, Tick when);

  private:
    TreeConfig cfg_;
    std::vector<std::unique_ptr<npe::NpeGate>> leaf_npes_;
    std::unique_ptr<npe::NpeGate> root_npe_;
    sfq::SfqDc *driver_;
};

} // namespace sushi::fabric

#endif // SUSHI_FABRIC_TREE_NETWORK_HH
