#include "fabric/timing_model.hh"

#include <cmath>

#include "sfq/cell_params.hh"

namespace sushi::fabric {

namespace {

double
delayPs(sfq::CellKind kind)
{
    return ticksToPs(sfq::cellParams(kind).delay);
}

/**
 * Transmission-line delay coefficients (ps): an affine function of
 * the network dimension, calibrated against the Sec. 6.3 anchors
 * (transmission share ~6 % at 1x1; 1,355 GSOPS peak at 16x16).
 */
constexpr double kTransBasePs = 6.69;
constexpr double kTransPerNPs = 5.71;

/** Cost of one weight-reload pulse batch at a synapse, ps. */
constexpr double kReloadBatchPs = 250.0;

/** Encoder pulse spacing cost per inference pulse, ps. */
constexpr double kPulseSpacingPs = 49.9;

} // namespace

double
synapseLogicDelayPs(const MeshConfig &cfg)
{
    using sfq::CellKind;
    const int w = cfg.effectiveWMax();
    // Series switch NDRO.
    double d = delayPs(CellKind::NDRO);
    // Weight structure split + merge chain (one SPL and one CB per
    // tap along the main line).
    d += (w - 1) * (delayPs(CellKind::SPL) + delayPs(CellKind::CB));
    // Column merge-tree depth.
    if (cfg.n > 1)
        d += std::ceil(std::log2(cfg.n)) * delayPs(CellKind::CB);
    // Destination SC entry: input merge, splitter, flip, armed
    // readout (Fig. 8(b) path to the first possible out pulse).
    d += delayPs(CellKind::CB3) + 2 * delayPs(CellKind::SPL) +
         delayPs(CellKind::TFFL) + delayPs(CellKind::NDRO);
    return d;
}

double
transmissionDelayPs(int n)
{
    return kTransBasePs + kTransPerNPs * n;
}

double
pulseTimePs(const MeshConfig &cfg)
{
    return synapseLogicDelayPs(cfg) + transmissionDelayPs(cfg.n);
}

double
transmissionShare(const MeshConfig &cfg)
{
    return transmissionDelayPs(cfg.n) / pulseTimePs(cfg);
}

double
peakGsops(const MeshConfig &cfg)
{
    // All N^2 synapses process pulses concurrently; each completes
    // one synaptic operation per pulseTime.
    const double ops_per_ps = cfg.numSynapses() / pulseTimePs(cfg);
    return ops_per_ps * 1e3; // ops/ps -> Gops/s
}

double
reloadTimeShare(long reload_events, long pulses_per_step)
{
    const double reload = reload_events * kReloadBatchPs;
    const double infer = pulses_per_step * kPulseSpacingPs;
    return reload + infer > 0 ? reload / (reload + infer) : 0.0;
}

} // namespace sushi::fabric
