#include "fabric/weight_structure.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sfq/cell_params.hh"
#include "sfq/constraints.hh"

namespace sushi::fabric {

using sfq::chan::kNdroClk;
using sfq::chan::kNdroDin;
using sfq::chan::kNdroRst;

namespace {

/**
 * JTL stages that delay tap @p i of a structure with @p w_max taps.
 *
 * Computed so every merged pulse is constraint-clean at every CB of
 * the merge chain for any gain: tap i must arrive at the output
 * exactly i staggers after the main pulse. Balancing the path
 * lengths (main: the SPL chain plus one CB; tap i: i SPLs, the gate
 * NDRO, this delay line and i+1 CBs) gives
 *
 *   stages(i) = ((w-1-i) * (d_spl) - d_ndro
 *                + i * (stagger - d_cb)) / d_jtl
 *
 * plus a routing-margin term that grows with the structure's span
 * (calibrated against the Table 2 wiring anchor).
 */
int
tapDelayStages(int w_max, int i)
{
    const double d_spl =
        ticksToPs(sfq::cellParams(sfq::CellKind::SPL).delay);
    const double d_cb =
        ticksToPs(sfq::cellParams(sfq::CellKind::CB).delay);
    const double d_ndro =
        ticksToPs(sfq::cellParams(sfq::CellKind::NDRO).delay);
    const double d_jtl =
        ticksToPs(sfq::cellParams(sfq::CellKind::JTL).delay);
    const double stagger = kTapDelayStages * d_jtl; // ~24.5 ps
    const double need = (w_max - 1 - i) * d_spl - d_ndro +
                        i * (stagger - d_cb);
    const int balanced =
        std::max(2, static_cast<int>(need / d_jtl) + 2);
    // Routing margin: outer taps route around the inner taps; the
    // per-tap allowance shrinks for wide structures whose balanced
    // delay lines already provide slack (fit to the Table 2 / peak
    // wiring anchors).
    const int margin = std::max(0, (i * (264 - 11 * w_max)) / 100);
    return balanced + margin;
}

/** Per-synapse configuration/polarity addressing logic (JJs). */
long
configExtrasJjs(int w_max)
{
    // One addressing SPL/NDRO pair per four taps, calibrated against
    // the Table 2 logic-JJ anchor.
    return std::max(0, 4 * w_max - 12);
}

} // namespace

WeightStructure::WeightStructure(int w_max) : w_max_(w_max)
{
    sushi_assert(w_max >= 1);
}

void
WeightStructure::configure(int strength)
{
    sushi_assert(strength >= 0 && strength <= w_max_);
    if (strength != strength_) {
        strength_ = strength;
        ++reloads_;
    }
}

WeightStructureGate::WeightStructureGate(sfq::Netlist &net,
                                         const std::string &name,
                                         int w_max)
    : w_max_(w_max)
{
    sushi_assert(w_max >= 1);
    switch_ndro_ = &net.makeNdro(name + ".sw");
    // Weight-configuration addressing cells (polarity pair + the
    // routing that delivers the per-synapse control stream of
    // Fig. 12(e)); carried as accounted logic, driven directly in
    // the behavioural model.
    net.addLogicOverhead(static_cast<int>(configExtrasJjs(w_max)));

    if (w_max == 1) {
        out_cell_ = switch_ndro_;
        out_port_ = 0;
        return;
    }

    // Split chain peeling one tap per SPL; the final through-output
    // is the main branch.
    sfq::Component *main_src = switch_ndro_;
    int main_port = 0;
    for (int i = 1; i < w_max; ++i) {
        sfq::Spl &spl =
            net.makeSpl(name + ".spl" + std::to_string(i));
        net.connectWire(*main_src, main_port, spl, 0);
        tap_spls_.push_back(&spl);
        main_src = &spl;
        main_port = 0; // out 0 continues the main line
    }

    // Merge chain: the taps merge among themselves from the deepest
    // CB down, and the *main* branch enters through the final CB so
    // it reaches the output first; each tap's delay line is balanced
    // so the merged pulses arrive one stagger apart.
    sfq::Component *merge_src = nullptr;
    int merge_port = 0;
    for (int i = w_max - 1; i >= 1; --i) {
        sfq::Ndro &tap =
            net.makeNdro(name + ".tap" + std::to_string(i));
        net.connectWire(*tap_spls_[static_cast<std::size_t>(i - 1)], 1,
                        tap, kNdroClk);
        tap_ndros_.push_back(&tap);
        if (merge_src == nullptr) {
            // Deepest tap: starts the chain on its own.
            merge_src = &tap;
            merge_port = 0;
            // Its stagger is realised on the chain entry below.
            continue;
        }
        sfq::Cb &cb = net.makeCb(name + ".cb" + std::to_string(i));
        net.connectWire(*merge_src, merge_port, cb, 0,
                        merge_src == tap_ndros_.front()
                            ? tapDelayStages(w_max, w_max - 1)
                            : 0);
        net.connectWire(tap, 0, cb, 1, tapDelayStages(w_max, i));
        tap_cbs_.push_back(&cb);
        merge_src = &cb;
        merge_port = 0;
    }
    // Final CB: the always-on main branch joins the tap chain.
    sfq::Cb &cb_main = net.makeCb(name + ".cb0");
    if (merge_src == tap_ndros_.front() && w_max == 2) {
        // Single tap: delay applied directly on its link.
        net.connectWire(*merge_src, merge_port, cb_main, 0,
                        tapDelayStages(w_max, 1));
    } else {
        net.connectWire(*merge_src, merge_port, cb_main, 0);
    }
    net.connectWire(*main_src, main_port, cb_main, 1);
    tap_cbs_.push_back(&cb_main);
    out_cell_ = &cb_main;
    out_port_ = 0;
}

sfq::Component &
WeightStructureGate::inPort()
{
    // Pulses enter through the series switch's read (clk) channel:
    // an armed switch passes them, a clear switch blocks the synapse.
    return *switch_ndro_;
}

void
WeightStructureGate::connectOut(sfq::Component &dst, int port,
                                int jtl_stages)
{
    out_cell_->connect(out_port_, dst, port,
                       jtl_stages *
                           sfq::cellParams(sfq::CellKind::JTL).delay);
}

Tick
WeightStructureGate::configure(int strength, Tick start, Tick spacing)
{
    sushi_assert(strength >= 0 && strength <= w_max_);
    Tick t = start;
    // Clear everything first (weights are reloaded through din/rst,
    // Sec. 4.2.1), then arm the switch and strength-1 taps.
    switch_ndro_->inject(kNdroRst, t);
    t += spacing;
    for (auto *tap : tap_ndros_) {
        tap->inject(kNdroRst, t);
        t += spacing;
    }
    if (strength >= 1) {
        switch_ndro_->inject(kNdroDin, t);
        t += spacing;
    }
    for (int i = 0; i < strength - 1; ++i) {
        tap_ndros_[static_cast<std::size_t>(i)]->inject(kNdroDin, t);
        t += spacing;
    }
    return t;
}

void
WeightStructureGate::injectSwitchClear(Tick when)
{
    switch_ndro_->inject(kNdroRst, when);
}

void
WeightStructureGate::injectSwitchArm(Tick when)
{
    switch_ndro_->inject(kNdroDin, when);
}

int
WeightStructureGate::strength() const
{
    if (!switch_ndro_->state())
        return 0;
    int s = 1;
    for (const auto *tap : tap_ndros_)
        s += tap->state() ? 1 : 0;
    return s;
}

long
weightStructureLogicJjs(int w_max)
{
    using sfq::CellKind;
    using sfq::cellParams;
    // Series switch + per-tap SPL/NDRO/CB + the per-synapse polarity
    // and configuration-addressing cells that route the
    // weight-control stream (Fig. 12(e)).
    return cellParams(CellKind::NDRO).jjs +
           static_cast<long>(w_max - 1) *
               (cellParams(CellKind::SPL).jjs +
                cellParams(CellKind::NDRO).jjs +
                cellParams(CellKind::CB).jjs) +
           configExtrasJjs(w_max);
}

long
weightStructureWiringJjs(int w_max)
{
    const long jj_per_stage =
        sfq::cellParams(sfq::CellKind::JTL).jjs;
    long stages = 0;
    for (int i = 1; i < w_max; ++i)
        stages += tapDelayStages(w_max, i);
    return stages * jj_per_stage;
}

} // namespace sushi::fabric
