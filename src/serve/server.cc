#include "serve/server.hh"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace sushi::serve {

namespace {

/** Cap real-mode condition waits: a periodic wake is harmless and
 *  keeps kNoDeadline arithmetic away from time_point overflow. */
constexpr std::int64_t kMaxWaitNs = 1'000'000'000;

} // namespace

const char *
rejectName(Reject r)
{
    switch (r) {
      case Reject::None: return "none";
      case Reject::QueueFull: return "queue_full";
      case Reject::DeadlineExceeded: return "deadline_exceeded";
      case Reject::ShuttingDown: return "shutting_down";
    }
    return "?";
}

Server::Server(std::shared_ptr<const engine::CompiledModel> model,
               const ServerConfig &cfg)
    : model_(std::move(model)),
      cfg_(cfg),
      engine_(model_, cfg.engine),
      epoch_(std::chrono::steady_clock::now())
{
    sushi_assert(cfg_.max_batch >= 1);
    sushi_assert(cfg_.max_queue >= 1);
    sushi_assert(cfg_.max_delay_ns >= 0);
    metrics_.replicas.resize(
        static_cast<std::size_t>(engine_.replicas()));
    if (cfg_.clock == ClockMode::Real) {
        workers_.reserve(metrics_.replicas.size());
        for (int r = 0; r < engine_.replicas(); ++r)
            workers_.emplace_back([this, r] { workerMain(r); });
    }
}

Server::~Server()
{
    shutdown();
}

std::int64_t
Server::now() const
{
    if (cfg_.clock == ClockMode::Virtual) {
        std::lock_guard<std::mutex> lock(mu_);
        return virtual_now_;
    }
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

std::future<Response>
Server::submit(engine::Sample sample, const RequestOptions &opts)
{
    if (cfg_.clock == ClockMode::Virtual) {
        std::lock_guard<std::mutex> lock(mu_);
        // Defer admission to runVirtual() at the current instant.
        return submitAtLocked(virtual_now_, std::move(sample), opts);
    }

    std::unique_lock<std::mutex> lock(mu_);
    const std::int64_t t =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count();
    Pending req;
    req.id = next_id_++;
    req.priority = opts.priority;
    req.submit_ns = t;
    req.deadline_ns = opts.deadline_ns;
    req.sample = std::move(sample);
    auto fut = req.promise.get_future();
    {
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        ++metrics_.submitted;
    }

    if (draining_ || stop_) {
        resolveReject(req, Reject::ShuttingDown, t);
        return fut;
    }
    if (req.deadline_ns <= t) {
        resolveReject(req, Reject::DeadlineExceeded, t);
        return fut;
    }
    shedExpiredLocked(t);
    if (pending_.size() >= cfg_.max_queue) {
        resolveReject(req, Reject::QueueFull, t);
        return fut;
    }
    admitLocked(std::move(req), t);
    work_cv_.notify_all();
    return fut;
}

std::future<Response>
Server::submitAt(std::int64_t arrival_ns, engine::Sample sample,
                 const RequestOptions &opts)
{
    sushi_assert(cfg_.clock == ClockMode::Virtual);
    std::lock_guard<std::mutex> lock(mu_);
    return submitAtLocked(arrival_ns, std::move(sample), opts);
}

std::future<Response>
Server::submitAtLocked(std::int64_t arrival_ns,
                       engine::Sample sample,
                       const RequestOptions &opts)
{
    Pending req;
    req.id = next_id_++;
    req.priority = opts.priority;
    req.submit_ns = arrival_ns;
    req.deadline_ns = opts.deadline_ns;
    req.sample = std::move(sample);
    auto fut = req.promise.get_future();
    {
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        ++metrics_.submitted;
    }
    if (draining_ || stop_) {
        resolveReject(req, Reject::ShuttingDown,
                      std::max(arrival_ns, virtual_now_));
        return fut;
    }
    arrivals_.push_back(Arrival{arrival_ns, std::move(req)});
    return fut;
}

void
Server::admitLocked(Pending &&req, std::int64_t t)
{
    std::uint64_t id = req.id;
    pending_.emplace(id, std::move(req));
    std::lock_guard<std::mutex> mlock(metrics_mu_);
    ++metrics_.accepted;
    if (metrics_.first_submit_ns < 0 || t < metrics_.first_submit_ns)
        metrics_.first_submit_ns = t;
}

void
Server::resolveReject(Pending &req, Reject reason,
                      std::int64_t event_ns)
{
    Response resp;
    resp.rejected = reason;
    resp.id = req.id;
    resp.submit_ns = req.submit_ns;
    resp.dispatch_ns = event_ns;
    resp.complete_ns = event_ns;
    {
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        switch (reason) {
          case Reject::QueueFull:
            ++metrics_.rejected_queue_full;
            break;
          case Reject::DeadlineExceeded:
            ++metrics_.rejected_deadline;
            break;
          case Reject::ShuttingDown:
            ++metrics_.rejected_shutdown;
            break;
          case Reject::None:
            break;
        }
        metrics_.last_event_ns =
            std::max(metrics_.last_event_ns, event_ns);
    }
    req.promise.set_value(std::move(resp));
}

void
Server::shedExpiredLocked(std::int64_t t)
{
    for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->second.deadline_ns <= t) {
            resolveReject(it->second, Reject::DeadlineExceeded, t);
            it = pending_.erase(it);
        } else {
            ++it;
        }
    }
}

bool
Server::flushReadyLocked(std::int64_t t, FlushCause *cause) const
{
    if (pending_.empty())
        return false;
    if (pending_.size() >= cfg_.max_batch) {
        *cause = FlushCause::Size;
        return true;
    }
    if (draining_ || stop_) {
        *cause = FlushCause::Drain;
        return true;
    }
    if (t - oldestSubmitLocked() >= cfg_.max_delay_ns) {
        *cause = FlushCause::Delay;
        return true;
    }
    return false;
}

Server::Batch
Server::takeBatchLocked(int replica, std::int64_t t, FlushCause cause)
{
    Batch batch;
    batch.replica = replica;
    batch.dispatch_ns = t;
    batch.cause = cause;

    // Selection order: priority desc, then arrival (id) asc.
    std::vector<std::pair<int, std::uint64_t>> order;
    order.reserve(pending_.size());
    for (const auto &[id, req] : pending_)
        order.emplace_back(req.priority, id);
    std::sort(order.begin(), order.end(),
              [](const auto &a, const auto &b) {
                  return a.first != b.first ? a.first > b.first
                                            : a.second < b.second;
              });
    const std::size_t take =
        std::min<std::size_t>(cfg_.max_batch, order.size());
    batch.reqs.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
        auto it = pending_.find(order[i].second);
        batch.reqs.push_back(std::move(it->second));
        pending_.erase(it);
    }
    return batch;
}

std::int64_t
Server::oldestSubmitLocked() const
{
    sushi_assert(!pending_.empty());
    // Ids are assigned under mu_ in admission order, so the smallest
    // id is the longest-waiting request.
    return pending_.begin()->second.submit_ns;
}

std::int64_t
Server::nearestDeadlineLocked() const
{
    std::int64_t nearest = kNoDeadline;
    for (const auto &[id, req] : pending_)
        nearest = std::min(nearest, req.deadline_ns);
    return nearest;
}

engine::ReplicaRun
Server::runBatch(Batch &batch)
{
    std::vector<const engine::Sample *> ptrs;
    ptrs.reserve(batch.reqs.size());
    for (const Pending &req : batch.reqs)
        ptrs.push_back(&req.sample);
    return engine_.runOnReplica(batch.replica, ptrs.data(),
                                ptrs.size());
}

std::int64_t
Server::virtualServiceNs(const engine::ReplicaRun &run) const
{
    double ps = 0.0;
    for (const auto &st : run.per_sample)
        ps += st.est_time_ps;
    auto ns = static_cast<std::int64_t>(
        std::llround(ps * cfg_.virtual_ns_per_ps));
    if (ns < 1)
        ns = 1;
    return ns + cfg_.batch_overhead_ns;
}

void
Server::finishBatch(Batch &batch, engine::ReplicaRun &run,
                    std::int64_t complete_ns)
{
    const auto n = batch.reqs.size();
    sushi_assert(run.results.size() == n);
    {
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        ++metrics_.batches;
        switch (batch.cause) {
          case FlushCause::Size: ++metrics_.flush_size; break;
          case FlushCause::Delay: ++metrics_.flush_delay; break;
          case FlushCause::Drain: ++metrics_.flush_drain; break;
        }
        metrics_.batch_size.sample(static_cast<std::int64_t>(n));
        auto &rep =
            metrics_.replicas[static_cast<std::size_t>(batch.replica)];
        ++rep.batches;
        rep.samples += n;
        rep.busy_ns += complete_ns - batch.dispatch_ns;
        for (std::size_t i = 0; i < n; ++i) {
            const Pending &req = batch.reqs[i];
            metrics_.queue_ns.sample(batch.dispatch_ns -
                                     req.submit_ns);
            metrics_.service_ns.sample(complete_ns -
                                       batch.dispatch_ns);
            metrics_.total_ns.sample(complete_ns - req.submit_ns);
            ++metrics_.completed;
            if (complete_ns > req.deadline_ns)
                ++metrics_.deadline_missed;
            metrics_.merged.accumulate(run.per_sample[i]);
        }
        // Energy is a pure function of synaptic work (matches the
        // engine's own merge).
        metrics_.merged.dynamic_energy_j =
            chip::dynamicEnergyJ(metrics_.merged.synaptic_ops);
        metrics_.last_event_ns =
            std::max(metrics_.last_event_ns, complete_ns);
    }
    for (std::size_t i = 0; i < n; ++i) {
        Pending &req = batch.reqs[i];
        Response resp;
        resp.result = std::move(run.results[i]);
        resp.id = req.id;
        resp.submit_ns = req.submit_ns;
        resp.dispatch_ns = batch.dispatch_ns;
        resp.complete_ns = complete_ns;
        resp.deadline_missed = complete_ns > req.deadline_ns;
        resp.replica = batch.replica;
        resp.batch_size = static_cast<int>(n);
        req.promise.set_value(std::move(resp));
    }
}

void
Server::workerMain(int replica)
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        const std::int64_t t =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - epoch_)
                .count();
        shedExpiredLocked(t);
        if (pending_.empty()) {
            drain_cv_.notify_all();
            if (stop_)
                return;
            work_cv_.wait(lock);
            continue;
        }
        FlushCause cause;
        if (flushReadyLocked(t, &cause)) {
            Batch batch = takeBatchLocked(replica, t, cause);
            ++in_flight_;
            lock.unlock();
            engine::ReplicaRun run = runBatch(batch);
            const std::int64_t done =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - epoch_)
                    .count();
            finishBatch(batch, run, done);
            lock.lock();
            --in_flight_;
            drain_cv_.notify_all();
            continue;
        }
        // Partial batch: sleep until the delay flush or the nearest
        // deadline, whichever comes first (capped; new arrivals
        // notify).
        std::int64_t wake = oldestSubmitLocked() + cfg_.max_delay_ns;
        wake = std::min(wake, nearestDeadlineLocked());
        wake = std::min(wake, t + kMaxWaitNs);
        work_cv_.wait_until(
            lock, epoch_ + std::chrono::nanoseconds(wake));
    }
}

void
Server::runVirtual()
{
    sushi_assert(cfg_.clock == ClockMode::Virtual);
    std::unique_lock<std::mutex> lock(mu_);
    runVirtualLocked(lock);
}

void
Server::runVirtualLocked(std::unique_lock<std::mutex> &lock)
{
    // Fire arrivals in logical-time order; ties keep submission
    // order (stable sort).
    std::stable_sort(arrivals_.begin(), arrivals_.end(),
                     [](const Arrival &a, const Arrival &b) {
                         return a.arrival_ns < b.arrival_ns;
                     });
    std::vector<Arrival> arrivals = std::move(arrivals_);
    arrivals_.clear();
    std::size_t next = 0;

    struct Running
    {
        Batch batch;
        engine::ReplicaRun run;
        std::int64_t complete_ns = 0;
    };
    std::vector<std::optional<Running>> running(
        static_cast<std::size_t>(engine_.replicas()));

    for (;;) {
        // Next event: arrival, completion, deadline expiry, or batch
        // flush (only meaningful while a replica is free).
        std::int64_t t = kNoDeadline;
        if (next < arrivals.size())
            t = std::min(t, arrivals[next].arrival_ns);
        bool any_free = false;
        for (std::size_t r = 0; r < running.size(); ++r) {
            if (running[r])
                t = std::min(t, running[r]->complete_ns);
            else
                any_free = true;
        }
        if (!pending_.empty()) {
            t = std::min(t, nearestDeadlineLocked());
            if (any_free) {
                if (pending_.size() >= cfg_.max_batch || draining_)
                    t = std::min(t, virtual_now_);
                else
                    t = std::min(t, oldestSubmitLocked() +
                                        cfg_.max_delay_ns);
            }
        }
        if (t == kNoDeadline)
            break; // nothing queued, running, or yet to arrive
        virtual_now_ = std::max(virtual_now_, t);

        // 1. Completions due, in (complete_ns, replica) order.
        std::vector<std::size_t> done;
        for (std::size_t r = 0; r < running.size(); ++r)
            if (running[r] &&
                running[r]->complete_ns <= virtual_now_)
                done.push_back(r);
        std::sort(done.begin(), done.end(),
                  [&](std::size_t a, std::size_t b) {
                      return running[a]->complete_ns !=
                                     running[b]->complete_ns
                                 ? running[a]->complete_ns <
                                       running[b]->complete_ns
                                 : a < b;
                  });
        for (std::size_t r : done) {
            finishBatch(running[r]->batch, running[r]->run,
                        running[r]->complete_ns);
            running[r].reset();
        }

        // 2. Shed queued requests whose deadlines have now passed,
        //    then fire due arrivals against the cleaned queue.
        shedExpiredLocked(virtual_now_);
        while (next < arrivals.size() &&
               arrivals[next].arrival_ns <= virtual_now_) {
            const std::int64_t at =
                std::max(arrivals[next].arrival_ns, virtual_now_);
            Pending req = std::move(arrivals[next].req);
            ++next;
            req.submit_ns = at;
            if (req.deadline_ns <= at) {
                resolveReject(req, Reject::DeadlineExceeded, at);
            } else if (pending_.size() >= cfg_.max_queue) {
                resolveReject(req, Reject::QueueFull, at);
            } else {
                admitLocked(std::move(req), at);
            }
        }

        // 3. Form batches on free replicas (ascending id), then
        //    execute them concurrently over the worker pool.
        std::vector<Batch> formed;
        for (std::size_t r = 0; r < running.size(); ++r) {
            if (running[r])
                continue;
            FlushCause cause;
            if (!flushReadyLocked(virtual_now_, &cause))
                break;
            formed.push_back(takeBatchLocked(static_cast<int>(r),
                                             virtual_now_, cause));
        }
        if (!formed.empty()) {
            std::vector<engine::ReplicaRun> runs(formed.size());
            lock.unlock();
            parallelFor(
                formed.size(),
                [&](std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i)
                        runs[i] = runBatch(formed[i]);
                },
                ParallelOptions{/*grain=*/1, cfg_.max_threads});
            lock.lock();
            for (std::size_t i = 0; i < formed.size(); ++i) {
                const auto r =
                    static_cast<std::size_t>(formed[i].replica);
                const std::int64_t service =
                    virtualServiceNs(runs[i]);
                running[r] = Running{std::move(formed[i]),
                                     std::move(runs[i]),
                                     virtual_now_ + service};
            }
        }
    }
    drain_cv_.notify_all();
}

void
Server::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    draining_ = true;
    if (cfg_.clock == ClockMode::Virtual) {
        runVirtualLocked(lock);
        return;
    }
    work_cv_.notify_all();
    drain_cv_.wait(lock, [this] {
        return pending_.empty() && in_flight_ == 0;
    });
}

void
Server::shutdown()
{
    drain();
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_ && workers_.empty())
            return;
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &t : workers_)
        t.join();
    workers_.clear();
}

ServerMetrics
Server::metrics() const
{
    std::lock_guard<std::mutex> mlock(metrics_mu_);
    return metrics_;
}

} // namespace sushi::serve
